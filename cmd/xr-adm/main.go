// xr-adm demonstrates the tuning system of §VI-D: online parameters are
// distributed to running contexts at runtime (keepalive interval, tracing
// mode, filter settings), offline parameters are rejected, and every
// change lands in the per-context flag log.
package main

import (
	"flag"
	"fmt"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

func main() {
	nodes := flag.Int("nodes", 3, "cluster size")
	flag.Parse()

	c := cluster.New(cluster.Options{Topology: fabric.ClusterClos(*nodes), Nodes: *nodes})
	c.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 32) })
	})
	var chans []*xrdma.Channel
	c.ConnectPairs(cluster.FullMeshPairs(*nodes), 7000, func(chs []*xrdma.Channel) { chans = chs })
	c.Eng.Run()

	fmt.Println("online parameters:", xrdma.OnlineFlagNames())

	// Distribute a configuration change fleet-wide, mid-traffic.
	for _, ch := range chans {
		ch.SendMsg(nil, 256, nil)
	}
	for i, n := range c.Nodes {
		must(n.Ctx.SetFlag("reqrsp_mode", "on"))
		must(n.Ctx.SetFlag("keepalive_intv_ms", "5"))
		must(n.Ctx.SetFlag("trace_sample_mask", "3")) // sample 1 in 4
		fmt.Printf("node %d reconfigured (reqrsp=%v keepalive=%v)\n",
			i, n.Ctx.Config().ReqRspMode, n.Ctx.Config().KeepaliveInterval)
	}
	c.Eng.RunFor(50 * sim.Millisecond)

	// Offline parameters stay fixed at runtime.
	if err := c.Nodes[0].Ctx.SetFlag("use_srq", "1"); err != nil {
		fmt.Println("offline parameter correctly rejected:", err)
	}
	if err := c.Nodes[0].Ctx.SetFlag("bogus", "1"); err != nil {
		fmt.Println("unknown parameter correctly rejected:", err)
	}

	// Traffic under the new settings produces trace records.
	done := 0
	for _, ch := range chans {
		ch.SendMsg(nil, 512, func(m *xrdma.Msg, err error) { done++ })
	}
	c.Eng.RunFor(50 * sim.Millisecond)
	fmt.Printf("%d traced round trips; node 0 trace ring has %d records\n",
		done, len(c.Nodes[0].Ctx.Tracer().Records()))

	fmt.Println("\nflag log on node 0:")
	for _, fc := range c.Nodes[0].Ctx.FlagLog() {
		fmt.Printf("  %v %s=%s\n", fc.At, fc.Name, fc.Value)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// xr-stat is the netstat analogue of §VI-B: it runs a brief workload on a
// small cluster and prints, for every node, the per-connection table
// pivoted from the telemetry registry's per-channel gauges, then the
// monitor's periodic samples for node 0, the full metric registry
// (grouped netstat -s style) with -all, and any flight-recorder dumps.
package main

import (
	"flag"
	"fmt"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/workload"
	"xrdma/internal/xrdma"
)

func main() {
	nodes := flag.Int("nodes", 4, "cluster size")
	dur := flag.Duration("dur", 0, "simulated workload duration (default 200ms)")
	seed := flag.Uint64("seed", 1, "seed")
	all := flag.Bool("all", false, "also print the full metric registry (every layer's counters)")
	flag.Parse()

	horizon := 200 * sim.Millisecond
	if *dur > 0 {
		horizon = sim.Dur(*dur)
	}
	c := cluster.New(cluster.Options{
		Topology: fabric.ClusterClos(*nodes), Nodes: *nodes, Seed: *seed,
		Config:   func(node int, cfg *xrdma.Config) { cfg.StatsInterval = 20 * sim.Millisecond },
	})
	c.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 128) })
	})
	var chans []*xrdma.Channel
	c.ConnectPairs(cluster.FullMeshPairs(*nodes), 7000, func(chs []*xrdma.Channel) { chans = chs })
	c.Eng.Run()
	var gens []*workload.OpenLoop
	for i, ch := range chans {
		g := workload.NewOpenLoop(ch, 300*sim.Microsecond, workload.MiceElephants(512, 32<<10, 0.2), *seed+uint64(i))
		g.Start()
		gens = append(gens, g)
	}
	c.Eng.RunFor(horizon)
	for _, g := range gens {
		g.Stop()
	}
	c.Eng.RunFor(20 * sim.Millisecond)

	for _, n := range c.Nodes {
		fmt.Print(xrdma.XRStat(n.Ctx))
		fmt.Println()
	}
	fmt.Println("monitor samples for node 0 (QPs, mem, msgs):")
	for _, s := range c.Mon.Samples[0] {
		fmt.Printf("  t=%-14v qps=%-3d occupy=%-9d in-use=%-9d sent=%-6d recv=%-6d slowpolls=%d\n",
			s.At, s.QPs, s.MemOccupied, s.MemInUse, s.MsgsSent, s.MsgsRecv, s.SlowPolls)
	}

	// One engine → one telemetry set, shared by every layer of this world.
	tel := telemetry.For(c.Eng)
	if *all {
		fmt.Println("\nmetric registry:")
		fmt.Print(tel.Reg.Table())
	}
	if dumps := tel.Flight.Dumps(); len(dumps) > 0 {
		fmt.Printf("\nflight recorder: %d dump(s)\n", len(dumps))
		for _, d := range dumps {
			fmt.Println(d.String())
		}
	}
}

// xr-stat is the netstat analogue of §VI-B: it runs a brief workload on a
// small cluster and prints, for every node, the per-connection table
// pivoted from the telemetry registry's per-channel gauges (including the
// path-doctor columns SCORE/VERDICT/REHASH/RETRY), then the monitor's
// periodic samples for node 0, the full metric registry (grouped
// netstat -s style) with -all, and any flight-recorder dumps. With -gray
// it browns out one spine path mid-run so the path-doctor columns and the
// path.verdict/path.rehash flight events show live values. With -mux it
// multiplexes channels over shared QP pools and caps per-channel gauge
// rows, so the table shows muxed "m<cid>" rows plus the per-peer
// aggregate rows that bound registry growth at scale. With -storm it
// exposes an MR window on node 1 and drives one-sided READ/WRITE(+imm)
// traffic from node 0, so the READS/WRITES/RDBYTES columns show live
// values alongside the two-sided workload. With -tenants it configures a
// weighted mouse/elephant tenant pair on one shared QP and overdrives the
// elephant's memory budget, so node 0's TENANT table and the
// tenant.budget/tenant.shed flight dumps show live values. With -upgrade
// it runs a mixed-version fleet — nodes 0 and 1 offer protocol v2 while
// the rest stay v1 — then drains the last node after the workload, so the
// VER/CAPS columns show the negotiated split, the DRAIN column and header
// show the lifecycle, and a dial into the draining node is refused with
// ErrDraining (drain.refuse flight event).
package main

import (
	"flag"
	"fmt"
	"os"

	"xrdma/internal/chaos"
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/workload"
	"xrdma/internal/xrdma"
)

func main() {
	nodes := flag.Int("nodes", 4, "cluster size")
	dur := flag.Duration("dur", 0, "simulated workload duration (default 200ms)")
	seed := flag.Uint64("seed", 1, "seed")
	all := flag.Bool("all", false, "also print the full metric registry (every layer's counters)")
	gray := flag.Bool("gray", false, "brown out one spine path mid-run (path-doctor demo)")
	mux := flag.Bool("mux", false, "multiplex channels over shared QP pools and cap per-channel gauge rows (scaling demo)")
	blame := flag.Bool("blame", false, "sample messages onto the blame plane and print the stage-attribution table")
	storm := flag.Bool("storm", false, "drive one-sided READ/WRITE(+imm) traffic against an MR window on node 1 (Storm-style dataplane demo)")
	tenants := flag.Bool("tenants", false, "run a mouse/elephant tenant pair on one shared QP with QoS limits (multi-tenant isolation demo)")
	upgrade := flag.Bool("upgrade", false, "mixed-version fleet: nodes 0-1 offer proto v2, the rest stay v1, last node drains at the end (VER/CAPS/DRAIN demo)")
	prom := flag.Bool("prom", false, "print the metric registry in Prometheus exposition format")
	flag.Parse()

	horizon := 200 * sim.Millisecond
	if *dur > 0 {
		horizon = sim.Dur(*dur)
	}
	topo := fabric.ClusterClos(*nodes)
	n := *nodes
	nicCfg := rnic.Config{}
	if *gray {
		// The gray demo needs two ToRs sharing an ECMP leaf tier, and a
		// deep RC retry horizon so the brownout stays gray (absorbed by
		// go-back-N) instead of escalating to retry exhaustion.
		topo = fabric.SmallClos()
		n = 8
		nicCfg = rnic.DefaultConfig()
		nicCfg.RetransTimeout = 1 * sim.Millisecond
		nicCfg.RetryLimit = 12
	}
	recPort := 0
	if *upgrade {
		// The handoff blob only carries channels the recovery plane can
		// re-establish, so the upgrade demo needs QPN indexing on.
		recPort = 7801
	}
	c := cluster.New(cluster.Options{
		Topology: topo, NICCfg: nicCfg, Nodes: n, Seed: *seed, RecoverPort: recPort,
		Config: func(node int, cfg *xrdma.Config) {
			cfg.StatsInterval = 20 * sim.Millisecond
			if *blame {
				// Blame tracing needs the req-rsp plane (the response
				// mirrors the remote stages back); sample 1-in-16.
				cfg.ReqRspMode = true
				cfg.TraceSampleN = 16
			}
			if *gray {
				cfg.StatsInterval = 1 * sim.Millisecond // doctor scan cadence
				cfg.PathRehashCooldown = 4 * sim.Millisecond
				cfg.RequestTimeout = 25 * sim.Millisecond
				cfg.RequestRetries = 2
				cfg.RetryBackoff = 1 * sim.Millisecond
			}
			if *mux {
				// Shared-QP demo: every channel to a peer rides a 2-QP
				// pool, and only the first 4 channels get individual
				// XR-Stat rows — the rest fold into per-peer aggregates,
				// which is what keeps the registry O(peers) at 100k
				// channels.
				cfg.QPsPerPeer = 2
				cfg.ChannelGaugeLimit = 4
			}
			if *upgrade {
				// Half the fleet already upgraded: 0 and 1 offer [1,2] and
				// settle v2 (with the drain-hint capability) between
				// themselves, while channels touching a v1-only node settle
				// the baseline. The short deadline keeps the closing drain
				// demo snappy.
				if node <= 1 {
					cfg.ProtoVerMax = 2
				}
				cfg.DrainDeadline = 10 * sim.Millisecond
			}
			if *tenants {
				// Tenant demo: both tenants share ONE mux QP so the DRR
				// scheduler arbitrates, and the elephant's memory budget
				// is small enough that its rendezvous streams overrun it
				// (ErrTenantBudget → MEMREJ column + shed flight dumps).
				cfg.QPsPerPeer = 1
				cfg.TenantShedCooldown = 5 * sim.Millisecond
				cfg.Tenants = []xrdma.TenantConfig{
					{Name: "mouse", Weight: 8},
					{Name: "elephant", Weight: 1,
						RateBps:    1 << 30,
						BurstBytes: 64 << 10,
						SendWindow: 16,
						MemBudget:  40 << 10},
				}
			}
		},
	})
	var srvChans []*xrdma.Channel // channels accepted by node 1 (the -storm window owner)
	c.ListenAll(7000, func(nd *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 128) })
		if *storm && nd.ID == 1 {
			srvChans = append(srvChans, ch)
		}
	})
	pairs := cluster.FullMeshPairs(n)
	var chans []*xrdma.Channel
	c.ConnectPairs(pairs, 7000, func(chs []*xrdma.Channel) { chans = chs })
	c.Eng.Run()
	if *mux {
		// A dozen extra channels from node 0 to node 1: they all share
		// node 0's existing 2-QP pool to that peer, and most of them land
		// past ChannelGaugeLimit so node 0's table shows both individual
		// "m<cid>" rows and the folded per-peer aggregate row.
		for i := 0; i < 12; i++ {
			c.Connect(0, 1, 7000, func(ch *xrdma.Channel, err error) {
				if err == nil {
					chans = append(chans, ch)
				}
			})
		}
		c.Eng.Run()
	}
	var oneSided *xrdma.Channel
	if *storm {
		// Node 1 exposes a window, grants it over every accepted channel's
		// ctrl plane, and node 0 drives speculative READs plus the odd
		// WRITE+imm against it — the responder's middleware stays asleep
		// for the reads, yet the gauges still tick.
		var win *xrdma.Window
		c.Nodes[1].Ctx.ExposeWindow(32<<10, func(w *xrdma.Window, err error) {
			if err != nil {
				panic(err)
			}
			win = w
		})
		c.Eng.Run()
		pat := win.Bytes()
		for i := range pat {
			pat[i] = byte(i*31 + 7)
		}
		for _, sc := range srvChans {
			sc.GrantWindow(win)
		}
		for i, p := range pairs {
			if p[0] == 0 && p[1] == 1 {
				oneSided = chans[i]
			}
		}
		c.Eng.Run()
		rw, ok := oneSided.PeerWindow(win.ID)
		if !ok {
			panic("xr-stat: window grant never arrived")
		}
		data := make([]byte, 1024)
		for i := 0; i < 64; i++ {
			i := i
			off := uint64((i % 16) * 1024)
			c.Eng.AfterBg(sim.Duration(i+1)*500*sim.Microsecond, func() {
				if i%4 == 3 {
					oneSided.WriteRemote(rw, off, data, uint32(i), func(error) {})
				} else {
					oneSided.ReadRemote(rw, off, 1024, func([]byte, error) {})
				}
			})
		}
	}
	if *tenants {
		// Labelled channels node 0 → node 1: one latency-sensitive mouse
		// ticking small requests, one elephant running two concurrent
		// 32 KiB rendezvous streams (the second overruns the 40 KiB memory
		// budget, rejecting loudly) plus a 4 KiB closed loop that keeps the
		// token bucket and DRR busy.
		ctx0 := c.Nodes[0].Ctx
		mouseCh, err := ctx0.ChannelTo(c.Nodes[1].ID, 7000, xrdma.WithTenant("mouse"))
		if err != nil {
			panic(err)
		}
		eleCh, err := ctx0.ChannelTo(c.Nodes[1].ID, 7000, xrdma.WithTenant("elephant"))
		if err != nil {
			panic(err)
		}
		var tick func()
		tick = func() {
			mouseCh.SendMsg(nil, 64, func(*xrdma.Msg, error) {})
			c.Eng.AfterBg(200*sim.Microsecond, tick)
		}
		c.Eng.AfterBg(200*sim.Microsecond, tick)
		var inline func()
		inline = func() { eleCh.SendMsg(nil, 4096, func(*xrdma.Msg, error) { inline() }) }
		c.Eng.AfterBg(50*sim.Microsecond, inline)
		for s := 0; s < 2; s++ {
			var pump func()
			pump = func() {
				eleCh.SendMsg(nil, 32<<10, func(_ *xrdma.Msg, err error) {
					if err != nil {
						c.Eng.AfterBg(1*sim.Millisecond, pump)
						return
					}
					pump()
				})
			}
			c.Eng.AfterBg(sim.Duration(s+1)*100*sim.Microsecond, pump)
		}
	}
	var gens []*workload.OpenLoop
	for i, ch := range chans {
		g := workload.NewOpenLoop(ch, 300*sim.Microsecond, workload.MiceElephants(512, 32<<10, 0.2), *seed+uint64(i))
		g.Start()
		gens = append(gens, g)
	}
	if *gray {
		// Warm up on the clean fabric, then degrade the exact spine path
		// the 0→4 channel rides (loss + corruption + added latency) and
		// let the doctor find its way off it.
		c.Eng.RunFor(50 * sim.Millisecond)
		var victim *xrdma.Channel
		for i, p := range pairs {
			if p[0] == 0 && p[1] == 4 {
				victim = chans[i]
			}
		}
		inj := chaos.New(c)
		leaf := fmt.Sprintf("pod0-leaf%d", fabric.ECMPIndex(victim.FlowHash(), 2))
		inj.Brownout("pod0-tor0", leaf, 0.1, 0.03, 20*sim.Microsecond)
		c.Eng.RunFor(horizon)
	} else {
		c.Eng.RunFor(horizon)
	}
	for _, g := range gens {
		g.Stop()
	}
	c.Eng.RunFor(20 * sim.Millisecond)

	var upBlob []byte
	var upRefused error
	if *upgrade {
		// Roll the last node out of service: Drain drives
		// Serving→Draining→Drained and seals the handoff blob once every
		// channel quiesces. A dial landing inside the window is refused
		// with ErrDraining — counted, flight-logged, and visible in the
		// DRAIN column below.
		last := n - 1
		if err := c.Nodes[last].Ctx.Drain(func(b []byte) { upBlob = b }); err != nil {
			panic(err)
		}
		c.Connect(0, last, 7000, func(_ *xrdma.Channel, err error) { upRefused = err })
		c.Eng.RunFor(20 * sim.Millisecond)
	}

	// One engine → one telemetry set, shared by every layer of this world.
	tel := telemetry.For(c.Eng)
	if *gray {
		// Freeze the flight ring so the path.verdict / path.rehash events
		// of the episode are preserved in a dump below.
		tel.Flight.ForceDump(c.Eng.Now(), "xr-stat: gray-path episode")
	}

	if *upgrade {
		last := c.Nodes[n-1].Ctx
		fmt.Printf("upgrade demo: node %d drained → handoff blob %dB, refusals=%d; dial during drain: %v\n\n",
			n-1, len(upBlob), last.Stats.DrainRefusals, upRefused)
	}
	if *storm {
		fmt.Printf("one-sided demo (node 0 → node 1): reads=%d rdbytes=%d writes=%d wrbytes=%d raerrs=%d\n\n",
			oneSided.Counters.Reads, oneSided.Counters.ReadBytes,
			oneSided.Counters.Writes, oneSided.Counters.WriteBytes,
			oneSided.Counters.RemoteAccessErrs)
	}
	for _, nd := range c.Nodes {
		fmt.Print(xrdma.XRStat(nd.Ctx))
		fmt.Println()
	}
	fmt.Println("monitor samples for node 0 (QPs, mem, msgs):")
	samples := c.Mon.History(0)
	if len(samples) > 20 {
		fmt.Printf("  (%d earlier samples elided)\n", len(samples)-20)
		samples = samples[len(samples)-20:]
	}
	for _, s := range samples {
		fmt.Printf("  t=%-14v qps=%-3d occupy=%-9d in-use=%-9d sent=%-6d recv=%-6d slowpolls=%d\n",
			s.At, s.QPs, s.MemOccupied, s.MemInUse, s.MsgsSent, s.MsgsRecv, s.SlowPolls)
	}

	if *blame {
		fmt.Println("\nblame attribution (engine-wide, sampled 1-in-16):")
		fmt.Print(tel.Blame.Table())
	}
	if *all {
		fmt.Println("\nmetric registry:")
		fmt.Print(tel.Reg.Table())
	}
	if *prom {
		fmt.Println("\nprometheus exposition:")
		tel.Reg.WritePrometheus(os.Stdout)
	}
	if dumps := tel.Flight.Dumps(); len(dumps) > 0 {
		fmt.Printf("\nflight recorder: %d dump(s)\n", len(dumps))
		for _, d := range dumps {
			fmt.Println(d.String())
		}
	}
}

// xr-mon is the fleet-diagnosis console of §VI: it runs a demo world with
// one injected fault while the xrmon collector watches the per-node agent
// rings, then prints the fleet table (per-node windowed rates + status),
// the incident log (open → escalate → close transitions with culprits,
// confidence and evidence) and, on request, the incident set as JSON or
// the detector state in Prometheus exposition format.
//
// Worlds: -world gray browns out one ECMP spine path under a heavy
// cross-ToR flow, so a gray-link incident opens against the dominant
// node and closes when the optic is "replaced"; -world crash kills one
// machine outright, so a node-down incident opens and stays open;
// -world fleet runs the full E26 drill (five fault classes in sequence)
// and prints its phase-vs-diagnosis table. With -watch every incident
// transition is printed live as it happens, plus periodic fleet-table
// snapshots.
package main

import (
	"flag"
	"fmt"
	"os"

	"xrdma/internal/bench"
	"xrdma/internal/chaos"
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
	"xrdma/internal/xrmon"
)

func main() {
	world := flag.String("world", "gray", "demo world: gray | crash | fleet")
	seed := flag.Uint64("seed", 42, "seed")
	watch := flag.Bool("watch", false, "print incident transitions live plus periodic fleet-table snapshots")
	jsonOut := flag.String("json", "", "write the incident report as JSON to this file ('-' for stdout)")
	prom := flag.Bool("prom", false, "print the detector state in Prometheus exposition format")
	flag.Parse()

	if *world == "fleet" {
		r := bench.Fleet(bench.Scale{Seed: *seed})
		fmt.Print(r.Table_.String())
		fmt.Println("\nincident log:")
		for _, line := range r.Lines {
			fmt.Println("  " + line)
		}
		return
	}
	if *world != "gray" && *world != "crash" {
		fmt.Fprintf(os.Stderr, "xr-mon: unknown world %q (want gray, crash or fleet)\n", *world)
		os.Exit(2)
	}

	// An 8-host two-ToR world: one cross-ToR and one intra-ToR channel per
	// node, steady background requests, compressed observability clocks.
	nicCfg := rnic.DefaultConfig()
	nicCfg.RetransTimeout = 1 * sim.Millisecond
	nicCfg.RetryLimit = 12 // deep retry horizon keeps the brownout gray
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   nicCfg,
		Seed:     *seed,
		Config: func(_ int, cfg *xrdma.Config) {
			cfg.StatsInterval = 2 * sim.Millisecond
			cfg.PathDoctor = false // the doctor would re-path around the fault we want diagnosed
			cfg.KeepaliveInterval = 2 * sim.Millisecond
			cfg.KeepaliveTimeout = 8 * sim.Millisecond
		},
	})
	eng := c.Eng
	col := xrmon.For(eng)
	for i := 0; i < 8; i++ {
		col.SetLocation(int32(i), fmt.Sprintf("pod0-tor%d", i/4), "pod0")
	}
	// The demo fleet is tiny and hot, so raise the gray symptom floor:
	// every far-ToR peer of a sick host catches a few corrupt frames, and
	// with only 8 nodes those slivers would otherwise read as "spread".
	col.Watch(xrmon.WatchConfig{GraySymptomMin: 30})
	if *watch {
		col.OnIncident(func(inc *xrmon.Incident, ev string) {
			fmt.Printf("t=%-12v %-9s class=%s culprit=%s conf=%d\n",
				eng.Now(), ev, inc.Class, inc.Culprit, inc.Confidence)
			if ev == "open" {
				for _, e := range inc.Evidence {
					fmt.Printf("             evidence: %s\n", e)
				}
			}
		})
	}

	c.ListenAll(7900, func(_ *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 0) })
	})
	pairs := [][2]int{
		{0, 4}, {1, 5}, {2, 6}, {3, 7}, {0, 1}, {2, 3}, {4, 5}, {6, 7},
		// Node 3 fans out to every host in the far ToR. A gray access link
		// splashes corruption onto whichever peer receives the rotten
		// frames; spreading node 3's flows keeps each peer's slice of the
		// symptoms small while node 3 itself aggregates every flow's
		// retransmits — which is exactly how the collector tells a sick
		// host apart from a sick fabric element.
		{3, 4}, {3, 5}, {3, 6},
	}
	var chans []*xrdma.Channel
	c.ConnectPairs(pairs, 7900, func(chs []*xrdma.Channel) { chans = chs })
	eng.Run()

	// Steady load everywhere; node 3 also drives heavy one-way cross-ToR
	// streams, so the gray world's retransmit symptoms concentrate on it.
	heavy := []*xrdma.Channel{chans[3], chans[8], chans[9], chans[10]} // 3→{7,4,5,6}
	var tick func()
	tick = func() {
		for _, ch := range chans[:8] {
			ch.SendMsg(make([]byte, 1024), 0, func(*xrdma.Msg, error) {})
		}
		if *world == "gray" {
			for _, ch := range heavy {
				ch.SendMsg(make([]byte, 1024), 0, nil)
				ch.SendMsg(make([]byte, 1024), 0, nil)
			}
		}
		eng.AfterBg(500*sim.Microsecond, tick)
	}
	eng.AfterBg(500*sim.Microsecond, tick)

	if *watch {
		var snap func()
		snap = func() {
			fmt.Printf("--- fleet table @ t=%v ---\n%s\n", eng.Now(), col.FleetTable())
			eng.AfterBg(100*sim.Millisecond, snap)
		}
		eng.AfterBg(100*sim.Millisecond, snap)
	}

	inj := chaos.New(c)
	horizon := 400 * sim.Millisecond
	switch *world {
	case "gray":
		// Impair node 3's own access link, so every one of its flows rots
		// and the collector must pin the fault to node 3, not the fabric.
		inj.Schedule([]chaos.Step{
			{At: 100 * sim.Millisecond, Name: "flaky optic", Do: func(i *chaos.Injector) {
				i.HostBrownout(3, 0.15, 0.03, 20*sim.Microsecond)
			}},
			{At: 250 * sim.Millisecond, Name: "optic replaced", Do: func(i *chaos.Injector) {
				i.ClearHostBrownout(3)
			}},
		})
	case "crash":
		inj.Schedule([]chaos.Step{
			{At: 100 * sim.Millisecond, Name: "machine dies", Do: func(i *chaos.Injector) {
				i.NodeCrash(5)
			}},
		})
		horizon = 300 * sim.Millisecond
	}
	eng.RunFor(horizon)

	fmt.Printf("%s\n", col.FleetTable())
	fmt.Println("incident log:")
	for _, line := range col.Log() {
		fmt.Println("  " + line)
	}
	if len(col.Incidents()) == 0 {
		fmt.Println("  (no incidents)")
	}
	fmt.Println("\nchaos log:")
	for _, line := range inj.Digest() {
		fmt.Println("  " + line)
	}

	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xr-mon: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := col.WriteJSON(w); err != nil {
			fmt.Fprintf(os.Stderr, "xr-mon: %v\n", err)
			os.Exit(1)
		}
	}
	if *prom {
		fmt.Println("\nprometheus exposition:")
		col.WritePrometheus(os.Stdout)
	}
}

// xr-server runs a standing echo server while synthetic clients arrive,
// work and leave — the long-running-daemon view of the toolset (§IV-A
// lists XR-server among the five utilities). It dumps XR-Stat
// periodically, showing channel churn, QP-cache reuse and memory-cache
// behaviour over time.
package main

import (
	"flag"
	"fmt"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/workload"
	"xrdma/internal/xrdma"
)

func main() {
	clients := flag.Int("clients", 6, "client nodes")
	rounds := flag.Int("rounds", 4, "arrive/work/leave rounds")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	c := cluster.New(cluster.Options{
		Topology: fabric.ClusterClos(*clients + 1), Nodes: *clients + 1, Seed: *seed,
	})
	server := c.Nodes[0].Ctx
	server.OnChannel(func(ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 256) })
	})
	if err := server.Listen(7000); err != nil {
		panic(err)
	}

	rng := sim.NewRNG(*seed)
	for round := 0; round < *rounds; round++ {
		var chans []*xrdma.Channel
		c.ConnectPairs(cluster.FanInPairs(*clients+1, 0), 7000, func(chs []*xrdma.Channel) { chans = chs })
		c.Eng.Run()
		var gens []*workload.OpenLoop
		for i, ch := range chans {
			g := workload.NewOpenLoop(ch, 200*sim.Microsecond,
				workload.MiceElephants(512, 64<<10, 0.15), *seed+uint64(round*100+i))
			g.Start()
			gens = append(gens, g)
		}
		c.Eng.RunFor(sim.Duration(100+rng.Intn(100)) * sim.Millisecond)
		for _, g := range gens {
			g.Stop()
		}
		c.Eng.RunFor(10 * sim.Millisecond)
		fmt.Printf("--- round %d (t=%v) ---\n", round, c.Eng.Now())
		fmt.Print(xrdma.XRStat(server))
		for _, ch := range chans {
			ch.Close()
		}
		c.Eng.Run()
		fmt.Printf("clients left: qp-cache=%d (reused next round), mem in-use=%d\n\n",
			server.QPs.Len(), server.Mem.InUseBytes)
	}
	fmt.Printf("server lifetime: opened=%d closed=%d broken=%d keepalive probes=%d\n",
		server.Stats.ChannelsOpened, server.Stats.ChannelsClosed,
		server.Stats.ChannelsBroken, server.Stats.KeepaliveProbes)
}

// reproduce runs every experiment of DESIGN.md's per-experiment index and
// prints the paper-style tables. Quick scale by default; -full runs closer
// to paper scale (slower). Individual experiments select with -only.
package main

import (
	"flag"
	"fmt"
	"strings"

	"xrdma/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "run at near-paper scale (slow)")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. fig7,fig10,establish)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	sc := bench.Quick()
	if *full {
		sc = bench.FullScale()
	}
	sc.Seed = *seed

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	if sel("fig7") {
		fmt.Println(bench.Fig7Left(sc).Table_.String())
		fmt.Println(bench.Fig7Middle(sc).Table_.String())
		fmt.Println(bench.Fig7Right(sc).Table_.String())
		fmt.Println(bench.TracingOverhead(sc).Table_.String())
	}
	if sel("establish") {
		fmt.Println(bench.Establishment(sc).Table_.String())
	}
	if sel("fig8") {
		fmt.Println(bench.Fig8EssdRamp(sc).Table_.String())
	}
	if sel("fig9") {
		fmt.Println(bench.Fig9RNRCounter(sc).Table_.String())
	}
	if sel("fig10") {
		fmt.Println(bench.Fig10FlowControl(sc).Table_.String())
		fmt.Println(bench.FragmentSweep(sc).Table_.String())
	}
	if sel("fig11") {
		fmt.Println(bench.Fig11OnlineUpgrade(sc).Table_.String())
	}
	if sel("fig12") {
		fmt.Println(bench.Fig12AntiJitter(sc, "ESSD").Table_.String())
		fmt.Println(bench.Fig12AntiJitter(sc, "X-DB").Table_.String())
	}
	if sel("qpscale") {
		fmt.Println(bench.QPScaling(sc).Table_.String())
	}
	if sel("srq") {
		fmt.Println(bench.SRQTradeoff(sc).Table_.String())
	}
	if sel("memmodes") {
		fmt.Println(bench.MemoryModes(sc).Table_.String())
	}
	if sel("footprint") {
		fmt.Println(bench.MixedFootprint(sc).Table_.String())
	}
	if sel("peak") {
		fmt.Println(bench.PeakStress(sc).Table_.String())
	}
	if sel("fig3") {
		fmt.Println(bench.Fig3Diurnal(sc).Table_.String())
	}
	if sel("loc") {
		fmt.Println(bench.LoCComparison().Table_.String())
	}
}

// reproduce runs every experiment of DESIGN.md's per-experiment index and
// prints the paper-style tables. Quick scale by default; -full runs closer
// to paper scale (slower). Individual experiments select with -only.
//
// Experiments are independent simulations (each builds its own engine and
// RNG from the seed), so -j runs them on a worker pool; output order is
// the registry order regardless of which worker finished first, and the
// numbers are bit-identical to a -j 1 run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"

	"xrdma/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "run at near-paper scale (slow)")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. fig7,fig10,establish)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	jobs := flag.Int("j", runtime.NumCPU(), "experiments to run concurrently")
	cpuProfile := flag.String("cpuprofile", "", "write CPU profile to file")
	memProfile := flag.String("memprofile", "", "write heap profile to file")
	flag.Parse()

	reg := bench.Experiments()
	valid := make(map[string]bool, len(reg))
	ids := make([]string, 0, len(reg))
	for _, e := range reg {
		valid[e.ID] = true
		ids = append(ids, e.ID)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	var unknown []string
	for id := range want {
		if !valid[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "reproduce: unknown experiment id(s): %s\nvalid ids: %s\n",
			strings.Join(unknown, ", "), strings.Join(ids, ", "))
		os.Exit(2)
	}

	sc := bench.Quick()
	if *full {
		sc = bench.FullScale()
	}
	sc.Seed = *seed

	var selected []bench.Experiment
	for _, e := range reg {
		if len(want) == 0 || want[e.ID] {
			selected = append(selected, e)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	run(selected, sc, *jobs)

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
	}
}

// run executes the selected experiments on up to jobs workers and prints
// each experiment's tables in selection order.
func run(selected []bench.Experiment, sc bench.Scale, jobs int) {
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(selected) {
		jobs = len(selected)
	}
	results := make([][]*bench.Table, len(selected))
	next := make(chan int, len(selected))
	for i := range selected {
		next <- i
	}
	close(next)

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = selected[i].Run(sc)
			}
		}()
	}
	wg.Wait()

	for _, ts := range results {
		for _, t := range ts {
			fmt.Println(t.String())
		}
	}
}

// reproduce runs every experiment of DESIGN.md's per-experiment index and
// prints the paper-style tables. Quick scale by default; -full runs closer
// to paper scale (slower). Individual experiments select with -only.
//
// Experiments are independent simulations (each builds its own engine and
// RNG from the seed), so -j runs them on a worker pool; output order is
// the registry order regardless of which worker finished first, and the
// numbers are bit-identical to a -j 1 run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"

	"xrdma/internal/bench"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/xrmon"
)

func main() {
	full := flag.Bool("full", false, "run at near-paper scale (slow)")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. fig7,fig10,establish)")
	seed := flag.Uint64("seed", 42, "simulation seed")
	jobs := flag.Int("j", runtime.NumCPU(), "experiments to run concurrently")
	cpuProfile := flag.String("cpuprofile", "", "write CPU profile to file")
	memProfile := flag.String("memprofile", "", "write heap profile to file")
	metrics := flag.Bool("metrics", false, "print the per-world metric registry after each experiment")
	metricsProm := flag.Bool("metrics-prom", false, "print each world's metric registry in Prometheus exposition format")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline of every observed world to this file")
	blamePath := flag.String("blame", "", "write each world's aggregate blame report (stage attribution) as JSON to this file")
	monPath := flag.String("mon", "", "write each world's fleet-diagnosis report (xrmon epoch, agents, incidents) as JSON to this file")
	flag.Parse()

	reg := bench.Experiments()
	valid := make(map[string]bool, len(reg))
	ids := make([]string, 0, len(reg))
	for _, e := range reg {
		valid[e.ID] = true
		ids = append(ids, e.ID)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	var unknown []string
	for id := range want {
		if !valid[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "reproduce: unknown experiment id(s): %s\nvalid ids: %s\n",
			strings.Join(unknown, ", "), strings.Join(ids, ", "))
		os.Exit(2)
	}

	sc := bench.Quick()
	if *full {
		sc = bench.FullScale()
	}
	sc.Seed = *seed

	// Telemetry collector: observes every engine the experiments create.
	// Timelines are captured only when -trace asks for them; each world's
	// ring is truncated at DefaultTraceCap events (oldest dropped first)
	// so a full run cannot produce a multi-gigabyte file by accident.
	var col *telemetry.Collector
	if *metrics || *metricsProm || *tracePath != "" || *blamePath != "" {
		col = &telemetry.Collector{}
		if *tracePath != "" {
			col.TraceCap = telemetry.DefaultTraceCap
		}
		sc.Observe = col.Observe
	}
	// Fleet-diagnosis export: remember each observed world's xrmon
	// collector (an engine-keyed singleton, so this attaches no new
	// machinery and perturbs nothing) and dump the reports after the run.
	var monMu sync.Mutex
	var mons map[string]*xrmon.Collector
	if *monPath != "" {
		mons = map[string]*xrmon.Collector{}
		prev := sc.Observe
		sc.Observe = func(eng *sim.Engine, label string) {
			if prev != nil {
				prev(eng, label)
			}
			monMu.Lock()
			mons[label] = xrmon.For(eng)
			monMu.Unlock()
		}
	}

	if *tracePath != "" && len(want) == 0 {
		fmt.Fprintf(os.Stderr, "reproduce: warning: -trace without -only captures every experiment's timeline; "+
			"rings truncate at %d events per world — use -only fig9,fig10 (or similar) for complete timelines\n",
			telemetry.DefaultTraceCap)
	}

	var selected []bench.Experiment
	for _, e := range reg {
		if len(want) == 0 || want[e.ID] {
			selected = append(selected, e)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	run(selected, sc, *jobs)

	if col != nil {
		if *metrics {
			printMetrics(col)
		}
		if *metricsProm {
			printMetricsProm(col)
		}
		if *tracePath != "" {
			if err := writeTrace(col, *tracePath); err != nil {
				fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
				os.Exit(1)
			}
		}
		if *blamePath != "" {
			if err := writeBlame(col, *blamePath); err != nil {
				fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *monPath != "" {
		if err := writeMon(mons, *monPath); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
	}
}

// run executes the selected experiments on up to jobs workers and prints
// each experiment's tables in selection order.
func run(selected []bench.Experiment, sc bench.Scale, jobs int) {
	if jobs < 1 {
		jobs = 1
	}
	if jobs > len(selected) {
		jobs = len(selected)
	}
	results := make([][]*bench.Table, len(selected))
	next := make(chan int, len(selected))
	for i := range selected {
		next <- i
	}
	close(next)

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = selected[i].Run(sc)
			}
		}()
	}
	wg.Wait()

	for _, ts := range results {
		for _, t := range ts {
			fmt.Println(t.String())
		}
	}
}

// printMetrics renders every observed world's metric registry as an
// aligned table, in label order (deterministic across -j values).
func printMetrics(col *telemetry.Collector) {
	for _, ob := range col.Observations() {
		fmt.Printf("== metrics: %s ==\n", ob.Label)
		fmt.Print(ob.Set.Reg.Table())
		fmt.Println()
	}
}

// printMetricsProm renders every observed world's metric registry in
// Prometheus exposition format, in label order.
func printMetricsProm(col *telemetry.Collector) {
	for _, ob := range col.Observations() {
		fmt.Printf("# world: %s\n", ob.Label)
		ob.Set.Reg.WritePrometheus(os.Stdout)
		fmt.Println()
	}
}

// writeBlame emits each observed world's aggregate blame report as one
// JSON document: {"worlds":[{"label":...,"blame":{...}},...]}. Worlds
// with no blame-traced messages are skipped.
func writeBlame(col *telemetry.Collector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	worlds := 0
	if _, err := f.WriteString(`{"worlds":[`); err != nil {
		f.Close()
		return err
	}
	for _, ob := range col.Observations() {
		if ob.Set.Blame.Count() == 0 {
			continue
		}
		sep := ","
		if worlds == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(f, `%s{"label":%q,"blame":`, sep, ob.Label); err != nil {
			f.Close()
			return err
		}
		if err := ob.Set.Blame.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if _, err := f.WriteString("}"); err != nil {
			f.Close()
			return err
		}
		worlds++
	}
	if _, err := f.WriteString("]}\n"); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if worlds == 0 {
		fmt.Fprintf(os.Stderr, "reproduce: no world produced blame records — run with -only blame\n")
	} else {
		fmt.Fprintf(os.Stderr, "reproduce: wrote %d blame report(s) to %s\n", worlds, path)
	}
	return nil
}

// writeMon emits each observed world's fleet-diagnosis report as one JSON
// document: {"worlds":[{"label":...,"report":{...}},...]}, in label order
// (deterministic across -j values). Worlds whose engines never created a
// context have zero agents and are skipped.
func writeMon(mons map[string]*xrmon.Collector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	labels := make([]string, 0, len(mons))
	for label, col := range mons {
		if len(col.Agents()) > 0 {
			labels = append(labels, label)
		}
	}
	sort.Strings(labels)
	if _, err := f.WriteString(`{"worlds":[`); err != nil {
		f.Close()
		return err
	}
	for i, label := range labels {
		sep := ","
		if i == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(f, `%s{"label":%q,"report":`, sep, label); err != nil {
			f.Close()
			return err
		}
		if err := mons[label].WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if _, err := f.WriteString("}"); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.WriteString("]}\n"); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "reproduce: wrote %d fleet-diagnosis report(s) to %s\n", len(labels), path)
	return nil
}

// writeTrace emits the merged Chrome trace_event JSON (one process per
// observed world) and reports any rings that overflowed.
func writeTrace(col *telemetry.Collector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := col.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	events, dropped := 0, uint64(0)
	for _, ob := range col.Observations() {
		events += ob.Set.Trace.Len()
		if d := ob.Set.Trace.Dropped(); d > 0 {
			dropped += d
			fmt.Fprintf(os.Stderr, "reproduce: trace ring for %q dropped %d oldest events (cap %d)\n",
				ob.Label, d, telemetry.DefaultTraceCap)
		}
	}
	fmt.Fprintf(os.Stderr, "reproduce: wrote %d trace events (%d worlds, %d dropped) to %s\n",
		events, len(col.Observations()), dropped, path)
	return nil
}

// xr-perf is the XR-Perf utility of §VI-B: a flexible load generator with
// customisable flow models (elephant/mice mixes, open or closed loop) that
// reports latency percentiles, goodput and the congestion counters the
// monitoring system collects.
package main

import (
	"flag"
	"fmt"
	"os"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/workload"
	"xrdma/internal/xrdma"
)

func main() {
	senders := flag.Int("senders", 8, "number of client nodes")
	mice := flag.Int("mice", 512, "mice payload bytes")
	elephant := flag.Int("elephant", 128<<10, "elephant payload bytes")
	elephantFrac := flag.Float64("elephant-frac", 0.2, "fraction of elephant flows")
	mode := flag.String("mode", "open", "open (poisson) or closed (fixed depth)")
	mean := flag.Duration("mean", 0, "open-loop mean inter-arrival (e.g. 500us)")
	depth := flag.Int("depth", 8, "closed-loop queue depth")
	dur := flag.Duration("dur", 0, "simulated duration (default 1s)")
	seed := flag.Uint64("seed", 1, "seed")
	prom := flag.Bool("prom", false, "print the metric registry in Prometheus exposition format")
	flag.Parse()

	horizon := sim.Second
	if *dur > 0 {
		horizon = sim.Dur(*dur)
	}
	meanArr := 500 * sim.Microsecond
	if *mean > 0 {
		meanArr = sim.Dur(*mean)
	}

	c := cluster.New(cluster.Options{
		Topology: fabric.ClusterClos(*senders + 1), Nodes: *senders + 1, Seed: *seed,
	})
	server := 0
	var served int64
	var bytes int64
	c.Nodes[server].Ctx.OnChannel(func(ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			served++
			bytes += int64(m.Len)
			m.Reply(nil, 64)
		})
	})
	if err := c.Nodes[server].Ctx.Listen(7000); err != nil {
		panic(err)
	}
	var chans []*xrdma.Channel
	c.ConnectPairs(cluster.FanInPairs(*senders+1, server), 7000, func(chs []*xrdma.Channel) { chans = chs })
	c.Eng.Run()
	fmt.Printf("xr-perf: %d channels up at %v\n", len(chans), c.Eng.Now())

	sizes := workload.MiceElephants(*mice, *elephant, *elephantFrac)
	lat := sim.NewSummaryCap(1 << 16)
	record := func(r workload.Result) {
		if r.Err == nil {
			lat.AddDuration(r.Latency)
		}
	}
	var stop []func()
	for i, ch := range chans {
		switch *mode {
		case "open":
			g := workload.NewOpenLoop(ch, meanArr, sizes, *seed+uint64(i))
			g.OnResult = record
			g.Start()
			stop = append(stop, g.Stop)
		case "closed":
			g := workload.NewClosedLoop(ch, *depth, sizes, *seed+uint64(i))
			g.OnResult = record
			g.Start()
			stop = append(stop, g.Stop)
		default:
			panic("mode must be open or closed")
		}
	}
	start := c.Eng.Now()
	c.Eng.RunUntil(start.Add(horizon))
	for _, s := range stop {
		s()
	}
	c.Eng.RunFor(50 * sim.Millisecond)
	el := c.Eng.Now().Sub(start).Seconds()

	fmt.Printf("served %d requests (%.0f/s), %.2f Gbps inbound\n",
		served, float64(served)/el, float64(bytes)*8/el/1e9)
	fmt.Printf("latency µs: mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
		lat.Mean(), lat.Percentile(50), lat.Percentile(95), lat.Percentile(99), lat.Max())
	var cnp, pause int64
	for _, n := range c.Nodes {
		cnp += n.NIC.Counters.CNPRecv
	}
	pause = c.Fab.Stats.PauseTX
	fmt.Printf("congestion: ECN=%d CNP=%d PFC-pause=%d drops=%d\n",
		c.Fab.Stats.ECNMarks, cnp, pause, c.Fab.Stats.Drops)
	fmt.Println()
	fmt.Print(xrdma.XRStat(c.Nodes[server].Ctx))
	if *prom {
		fmt.Println("\nprometheus exposition:")
		telemetry.For(c.Eng).Reg.WritePrometheus(os.Stdout)
	}
}

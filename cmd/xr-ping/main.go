// xr-ping builds the full-mesh connection matrix of §VI-B: every node
// pings every peer it shares a channel with, and the centralized monitor
// aggregates RTTs into the matrix view used to spot broken or slow paths.
// A -drop flag injects loss on one node to show how the matrix exposes it.
package main

import (
	"flag"
	"fmt"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

func main() {
	nodes := flag.Int("nodes", 6, "cluster size")
	slow := flag.Int("slow", -1, "node whose NIC gets 200µs filter delay (-1 = none)")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	c := cluster.New(cluster.Options{
		Topology: fabric.ClusterClos(*nodes), Nodes: *nodes, Seed: *seed,
	})
	c.ListenAll(7000, nil)
	var chans []*xrdma.Channel
	c.ConnectPairs(cluster.FullMeshPairs(*nodes), 7000, func(chs []*xrdma.Channel) { chans = chs })
	c.Eng.Run()
	fmt.Printf("mesh: %d channels across %d nodes\n", len(chans), *nodes)

	if *slow >= 0 && *slow < *nodes {
		if err := c.Nodes[*slow].Ctx.SetFlag("filter_delay_us", "200"); err != nil {
			panic(err)
		}
		fmt.Printf("injected 200µs delay on node %d\n", *slow)
	}

	var mx map[fabric.NodeID]map[fabric.NodeID]sim.Duration
	c.Mon.PingMatrix(func(m map[fabric.NodeID]map[fabric.NodeID]sim.Duration) { mx = m })
	c.Eng.Run()
	fmt.Println("\nRTT matrix (µs):")
	fmt.Print(xrdma.RenderMatrix(mx, c.Mon.Nodes()))
}

#!/bin/sh
# bench.sh — run the simulation-kernel and telemetry microbenchmarks and
# emit BENCH_kernel.json: current ns/op + allocs/op per benchmark next to
# the committed container/heap baseline, with the speedup factor.
# Telemetry benchmarks have no pre-rewrite baseline; their contract is
# allocs/op == 0 (enforced by the CI bench smoke), as are the untraced
# RNIC send path's and the one-sided READ requester path's. TracedSendPath
# is informational: its delta against UntracedSendPath is the armed cost
# of the blame plane.
# IdleChannelFootprint's contract is bytes/conn <= 1024 (the flyweight
# channel budget, also CI-gated); MuxSharedQPSend is informational — one
# request/response round trip through the shared-QP demux plane.
# BuddyAlloc's contract is allocs/op == 0 (CI-gated): steady-state buddy
# alloc/free reuses free-list capacity and never touches the heap.
# AgentSample's contract is allocs/op == 0 (CI-gated): the xrmon fleet
# agent samples its delta ring on every node's housekeeping tick.
#
# Usage: scripts/bench.sh [output.json]   (default: BENCH_kernel.json)
# Set REPRODUCE=1 to also time cmd/reproduce -full at -j 1 vs -j nproc
# (slow; the ratio only exceeds 1 on multi-core hosts).
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_kernel.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test ./internal/sim/ ./internal/telemetry/ ./internal/rnic/ ./internal/xrmon/ -run '^$' \
    -bench 'BenchmarkEngine|BenchmarkTelemetry|BenchmarkUntracedSendPath|BenchmarkTracedSendPath|BenchmarkOneSidedReadPath|BenchmarkAgentSample' -benchmem \
    -benchtime=2s -count=1 | tee "$tmp" >&2
go test ./internal/xrdma/ -run '^$' \
    -bench 'BenchmarkIdleChannelFootprint|BenchmarkMuxSharedQPSend|BenchmarkBuddyAlloc' -benchmem \
    -benchtime=1s -count=1 | tee -a "$tmp" >&2

# Baseline: container/heap scheduler + per-event heap allocation, measured
# on the same benchmarks before the 4-ary-heap/free-list rewrite.
awk '
BEGIN {
    base["EngineSchedule/depth=16"]   = 127.4; base_allocs["EngineSchedule/depth=16"]   = 1
    base["EngineSchedule/depth=256"]  = 224.3; base_allocs["EngineSchedule/depth=256"]  = 1
    base["EngineSchedule/depth=4096"] = 363.1; base_allocs["EngineSchedule/depth=4096"] = 1
    base["EngineChurn"]               = 319.2; base_allocs["EngineChurn"]               = 2
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns = ""; allocs = ""; bpc = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "allocs/op") allocs = $i
        if ($(i + 1) == "bytes/conn") bpc = $i
    }
    if (ns == "") next
    names[n] = name; nsop[n] = ns; al[n] = allocs; bytesconn[n] = bpc; n++
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) {
        b = (names[i] in base) ? base[names[i]] : 0
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s",
               names[i], nsop[i], (al[i] == "" ? "null" : al[i])
        if (bytesconn[i] != "")
            printf ", \"bytes_per_conn\": %s", bytesconn[i]
        if (b > 0)
            printf ", \"baseline_ns_per_op\": %s, \"baseline_allocs_per_op\": %s, \"speedup\": %.2f",
                   b, base_allocs[names[i]], b / nsop[i]
        printf "}%s\n", (i < n - 1 ? "," : "")
    }
    printf "  ],\n  \"baseline\": \"container/heap scheduler, pre-rewrite\"\n}\n"
}
' "$tmp" > "$out"

if [ "${REPRODUCE:-0}" = "1" ]; then
    go build -o "$tmp.bin" ./cmd/reproduce
    ncpu="$(getconf _NPROCESSORS_ONLN)"
    t0=$(date +%s); "$tmp.bin" -full -j 1 > /dev/null; t1=$(date +%s)
    "$tmp.bin" -full -j "$ncpu" > /dev/null; t2=$(date +%s)
    rm -f "$tmp.bin"
    seq=$((t1 - t0)); par=$((t2 - t1))
    [ "$par" -gt 0 ] || par=1
    # Splice the reproduce timing into the JSON before the closing brace.
    sed '$d' "$out" > "$tmp" && mv "$tmp" "$out"
    trap - EXIT
    printf ',\n  "reproduce_full": {"cpus": %s, "j1_seconds": %s, "jN_seconds": %s, "speedup": %s}\n}\n' \
        "$ncpu" "$seq" "$par" "$(awk "BEGIN{printf \"%.2f\", $seq/$par}")" >> "$out"
fi

echo "wrote $out" >&2

module xrdma

go 1.24

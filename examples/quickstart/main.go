// Quickstart: the X-RDMA ping-pong. This is the §VII-B simplification
// demo — compare with examples/rawverbs, which does the same job on the
// verbs API. The X-RDMA portion of this program is ~40 lines.
package main

import (
	"fmt"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/xrdma"
)

func main() {
	// Simulated two-node deployment (fabric + NICs + contexts).
	c := cluster.New(cluster.Options{Topology: fabric.SmallClos(), Nodes: 2})

	// --- server ---------------------------------------------------------
	server := c.Nodes[1].Ctx
	server.OnChannel(func(ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			fmt.Printf("server: %q (%d bytes)\n", m.Data, m.Len)
			m.Reply([]byte("pong"), 0)
		})
	})
	if err := server.Listen(4791); err != nil {
		panic(err)
	}

	// --- client ---------------------------------------------------------
	client := c.Nodes[0].Ctx
	client.Connect(c.Nodes[1].ID, 4791, func(ch *xrdma.Channel, err error) {
		if err != nil {
			panic(err)
		}
		ch.SendMsg([]byte("ping"), 0, func(resp *xrdma.Msg, err error) {
			if err != nil {
				panic(err)
			}
			fmt.Printf("client: %q after %v\n", resp.Data, c.Eng.Now())
		})
	})

	c.Eng.Run()
	fmt.Println("done:", xrdma.XRStat(client))
}

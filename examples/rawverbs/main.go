// The same ping-pong as examples/quickstart, written against the raw
// verbs facade — the §II-A "complex ritual": open the device, allocate a
// protection domain, register memory, create the completion queues and
// queue pair, drive the RESET→INIT→RTR→RTS state machine through the
// connection manager, pre-post receives, post sends, poll completions,
// and handle every error branch yourself. No keepalive, no seq-ack
// window, no flow control, no tracing — adding those is how you arrive
// at the ~2000 lines the paper counts for Pangu's data plane.
package main

import (
	"fmt"

	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/verbs"
)

const (
	port      = 4791
	queueLen  = 64
	bufBytes  = 4096
	recvSlots = 16
)

func main() {
	// Infrastructure: engine, fabric, two NICs.
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.SmallClos())
	serverNIC := rnic.New(eng, fab.Host(1), rnic.DefaultConfig())
	clientNIC := rnic.New(eng, fab.Host(0), rnic.DefaultConfig())
	net := verbs.NewCMNetwork()

	// --- server ---------------------------------------------------------
	serverCtx := verbs.Open(serverNIC)
	serverPD := serverCtx.AllocPD()
	serverCM := verbs.NewCM(serverCtx, net, fab.Host(1))

	// Register a receive arena. With raw verbs you manage this memory
	// yourself; nothing reclaims or re-registers it for you.
	serverMR := serverPD.RegMRNow(recvSlots*bufBytes, rnic.RegNonContinuous)

	serverSendCQ := rnic.NewCQ(queueLen)
	serverRecvCQ := rnic.NewCQ(queueLen)

	err := serverCM.Listen(port, func(req *verbs.ConnReq) {
		// Passive side: create a QP and walk it to RTS.
		serverNIC.CreateQP(queueLen, queueLen, serverSendCQ, serverRecvCQ, nil, func(qp *rnic.QP) {
			req.Accept(qp, func(conn *verbs.Conn, err error) {
				if err != nil {
					fmt.Println("server: accept failed:", err)
					return
				}
				// Pre-post receive buffers before traffic can arrive —
				// forget this and the sender sees RNR NAKs.
				for i := 0; i < recvSlots; i++ {
					addr := serverMR.Base + uint64(i*bufBytes)
					if err := qp.PostRecv(rnic.RecvWR{ID: uint64(i), Addr: addr, Len: bufBytes}); err != nil {
						fmt.Println("server: post recv:", err)
						return
					}
				}
				// Poll loop: consume requests, echo a response.
				serverRecvCQ.OnCompletion(func() {
					for _, cqe := range serverRecvCQ.Poll(queueLen) {
						if cqe.Status != rnic.StatusOK {
							fmt.Println("server: recv error:", cqe.Status)
							return
						}
						fmt.Printf("server: %q (%d bytes)\n", cqe.Data, cqe.Len)
						// Recycle the receive buffer.
						if err := qp.PostRecv(rnic.RecvWR{ID: cqe.WRID, Addr: cqe.Addr, Len: bufBytes}); err != nil {
							fmt.Println("server: repost:", err)
							return
						}
						// Echo. The payload must live in registered
						// memory you own until the completion arrives.
						pong := []byte("pong")
						wr := &rnic.SendWR{ID: 100, Op: rnic.OpSend, Len: len(pong), Data: pong}
						if err := qp.PostSend(wr); err != nil {
							fmt.Println("server: post send:", err)
							return
						}
					}
				})
				// Drain send completions or the CQ overflows eventually.
				serverSendCQ.OnCompletion(func() {
					for _, cqe := range serverSendCQ.Poll(queueLen) {
						if cqe.Status != rnic.StatusOK {
							fmt.Println("server: send error:", cqe.Status)
						}
					}
				})
			})
		})
	})
	if err != nil {
		panic(err)
	}

	// --- client ---------------------------------------------------------
	clientCtx := verbs.Open(clientNIC)
	clientPD := clientCtx.AllocPD()
	clientCM := verbs.NewCM(clientCtx, net, fab.Host(0))
	clientMR := clientPD.RegMRNow(recvSlots*bufBytes, rnic.RegNonContinuous)
	clientSendCQ := rnic.NewCQ(queueLen)
	clientRecvCQ := rnic.NewCQ(queueLen)

	clientCM.Connect(fab.Host(1).ID, port, nil, nil, queueLen, clientSendCQ, clientRecvCQ, nil,
		func(conn *verbs.Conn, err error) {
			if err != nil {
				fmt.Println("client: connect failed:", err)
				return
			}
			qp := conn.QP
			for i := 0; i < recvSlots; i++ {
				addr := clientMR.Base + uint64(i*bufBytes)
				if err := qp.PostRecv(rnic.RecvWR{ID: uint64(i), Addr: addr, Len: bufBytes}); err != nil {
					fmt.Println("client: post recv:", err)
					return
				}
			}
			clientRecvCQ.OnCompletion(func() {
				for _, cqe := range clientRecvCQ.Poll(queueLen) {
					if cqe.Status != rnic.StatusOK {
						fmt.Println("client: recv error:", cqe.Status)
						return
					}
					fmt.Printf("client: %q after %v\n", cqe.Data, eng.Now())
					if err := qp.PostRecv(rnic.RecvWR{ID: cqe.WRID, Addr: cqe.Addr, Len: bufBytes}); err != nil {
						fmt.Println("client: repost:", err)
					}
				}
			})
			clientSendCQ.OnCompletion(func() {
				for _, cqe := range clientSendCQ.Poll(queueLen) {
					if cqe.Status != rnic.StatusOK {
						fmt.Println("client: send error:", cqe.Status)
					}
				}
			})
			ping := []byte("ping")
			wr := &rnic.SendWR{ID: 1, Op: rnic.OpSend, Len: len(ping), Data: ping}
			if err := qp.PostSend(wr); err != nil {
				fmt.Println("client: post send:", err)
			}
		})

	eng.Run()
	fmt.Println("done")
}

// pangu: the block-server → chunk-server replication pipeline of §II-C,
// at demo scale. Front-end writes land on block servers and fan out to
// three chunk-server replicas over full-mesh X-RDMA channels — the incast
// pattern that motivates §V-C's flow control. The demo prints aggregate
// IOPS, latency percentiles and the fabric's congestion counters.
package main

import (
	"fmt"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/workload"
)

func main() {
	const (
		blocks  = 4
		chunks  = 8
		payload = 128 << 10
		depth   = 8
		horizon = 2 * sim.Second
	)
	c := cluster.New(cluster.Options{Topology: fabric.ClusterClos(blocks + chunks)})
	blockIDs := make([]int, blocks)
	chunkIDs := make([]int, chunks)
	for i := range blockIDs {
		blockIDs[i] = i
	}
	for i := range chunkIDs {
		chunkIDs[i] = blocks + i
	}

	p := workload.NewPangu(c, blockIDs, chunkIDs, 3)
	c.Eng.Run() // establish the replication mesh
	if !p.Ready() {
		panic("mesh not established")
	}
	fmt.Printf("mesh up at %v: %d block × %d chunk servers, 3 replicas\n",
		c.Eng.Now(), blocks, chunks)

	essd := workload.NewESSD(p, payload, depth)
	lat := sim.NewSummary()
	essd.Start(func(block int, l sim.Duration) { lat.AddDuration(l) })
	start := c.Eng.Now()
	c.Eng.RunUntil(start.Add(horizon))
	essd.Stop()
	c.Eng.Run()

	el := c.Eng.Now().Sub(start).Seconds()
	fmt.Printf("writes: %d (%.0f IOPS, %.2f Gbps replicated)\n",
		essd.Completed, float64(essd.Completed)/el,
		float64(essd.Completed)*payload*3*8/el/1e9)
	fmt.Printf("latency: mean=%.1fµs p50=%.1fµs p99=%.1fµs\n",
		lat.Mean(), lat.Percentile(50), lat.Percentile(99))

	var rnr, retrans, cnp int64
	for _, n := range c.Nodes {
		rnr += n.NIC.Counters.RNRNakSent
		retrans += n.NIC.Counters.Retransmits
		cnp += n.NIC.Counters.CNPRecv
	}
	fmt.Printf("fabric: ECN marks=%d pauses=%d drops=%d | NICs: RNR=%d retrans=%d CNP=%d\n",
		c.Fab.Stats.ECNMarks, c.Fab.Stats.PauseTX, c.Fab.Stats.Drops, rnr, retrans, cnp)
	if rnr != 0 {
		panic("X-RDMA replication must be RNR-free")
	}
}

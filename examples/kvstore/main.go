// kvstore: a Storm-style transactional key-value dataplane (after Storm,
// arXiv:1902.02411) on X-RDMA's one-sided verbs. The server exposes its
// table as an MR window of seqlock-framed slots — [head ver][seq|value]
// [tail ver] — and grants it to clients over the ctrl plane. GETs are
// speculative: a single RDMA READ of the slot, validated client-side
// (head==tail and even means a consistent snapshot; the responder's CPU
// never woke up). A READ that catches a writer's critical section in
// flight fails validation and falls back to the GET RPC. PUTs always
// ride RPC: the server owns the write path and holds each slot's seqlock
// for the critical section, so readers can never observe a torn value.
package main

import (
	"encoding/binary"
	"fmt"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

const (
	opPut = 1
	opGet = 2

	nkeys    = 4
	valBytes = 56 // 8-byte embedded seq + 48 payload bytes
	slotLen  = 8 + valBytes + 8
	holdTime = 5 * sim.Microsecond // server-side write critical section
)

var keyNames = [nkeys]string{"alpha", "beta", "gamma", "delta"}

// pattern fills b with the deterministic payload for (key, seq), so a
// reader can verify a snapshot is bit-consistent with its version.
func pattern(k int, seq uint64, b []byte) {
	for i := range b {
		b[i] = byte(uint64(k)*31 + seq*7 + uint64(i)*13 + 5)
	}
}

// server owns the table: the exposed window is the one-sided view, vals
// the authoritative copy RPC GETs serve from, and each slot's seqlock is
// held for holdTime around every mutation.
type server struct {
	eng  *sim.Engine
	win  *xrdma.Window
	vals [nkeys][]byte
	msgs int
}

func (s *server) serve(m *xrdma.Msg) {
	s.msgs++
	k := int(m.Data[1])
	switch m.Data[0] {
	case opGet:
		m.Reply(s.vals[k], 0)
	case opPut:
		seq := binary.LittleEndian.Uint64(m.Data[2:])
		slot := s.win.Bytes()[k*slotLen : (k+1)*slotLen]
		binary.LittleEndian.PutUint64(slot, 2*seq-1) // head odd: write in flight
		s.eng.AfterBg(holdTime, func() {
			val := make([]byte, valBytes)
			binary.LittleEndian.PutUint64(val, seq)
			pattern(k, seq, val[8:])
			copy(slot[8:], val)
			binary.LittleEndian.PutUint64(slot[8+valBytes:], 2*seq) // tail
			binary.LittleEndian.PutUint64(slot, 2*seq)              // head even: stable
			s.vals[k] = val
			m.Reply([]byte("OK"), 0)
		})
	}
}

func main() {
	c := cluster.New(cluster.Options{Topology: fabric.SmallClos(), Nodes: 8})
	eng := c.Eng

	// Server on node 4 (the far ToR): every op crosses the leaf tier.
	srv := &server{eng: eng}
	c.Nodes[4].Ctx.ExposeWindow(nkeys*slotLen, func(w *xrdma.Window, err error) {
		if err != nil {
			panic(err)
		}
		srv.win = w
	})
	eng.Run()
	for k := 0; k < nkeys; k++ {
		val := make([]byte, valBytes)
		pattern(k, 0, val[8:])
		copy(srv.win.Bytes()[k*slotLen+8:], val)
		srv.vals[k] = val
	}
	c.Nodes[4].Ctx.OnChannel(func(ch *xrdma.Channel) {
		ch.OnMessage(srv.serve)
		ch.GrantWindow(srv.win)
	})
	if err := c.Nodes[4].Ctx.Listen(6379); err != nil {
		panic(err)
	}

	var cli *xrdma.Channel
	c.Connect(0, 4, 6379, func(ch *xrdma.Channel, err error) {
		if err != nil {
			panic(err)
		}
		cli = ch
	})
	eng.Run()
	rw, ok := cli.PeerWindow(srv.win.ID)
	if !ok {
		panic("window grant never arrived")
	}

	var spec, fallbacks int
	get := func(k int, done func(seq uint64, payload []byte)) {
		rpc := func() {
			cli.SendMsg([]byte{opGet, byte(k)}, 0, func(m *xrdma.Msg, err error) {
				if err != nil {
					panic(err)
				}
				done(binary.LittleEndian.Uint64(m.Data), m.Data[8:])
			})
		}
		cli.ReadRemote(rw, uint64(k*slotLen), slotLen, func(b []byte, err error) {
			if err != nil {
				panic(err)
			}
			head := binary.LittleEndian.Uint64(b)
			tail := binary.LittleEndian.Uint64(b[8+valBytes:])
			seq := binary.LittleEndian.Uint64(b[8:16])
			if head == tail && head%2 == 0 && seq*2 == head {
				spec++
				done(seq, append([]byte(nil), b[16:8+valBytes]...))
				return
			}
			// Caught a writer's critical section in flight: the RPC
			// dataplane is the fallback, exactly as Storm prescribes.
			fallbacks++
			rpc()
		})
	}
	put := func(k int, seq uint64, done func()) {
		req := make([]byte, 10)
		req[0], req[1] = opPut, byte(k)
		binary.LittleEndian.PutUint64(req[2:], seq)
		cli.SendMsg(req, 0, func(_ *xrdma.Msg, err error) {
			if err != nil {
				panic(err)
			}
			done()
		})
	}

	// Quiet table: every speculative GET validates on the first try.
	put(0, 1, func() {
		get(0, func(seq uint64, payload []byte) {
			ok := len(payload) == valBytes-8
			for i, b := range payload {
				if b != byte(0*31+seq*7+uint64(i)*13+5) {
					ok = false
				}
			}
			fmt.Printf("GET %s → seq=%d intact=%v (speculative one-sided READ, responder asleep)\n",
				keyNames[0], seq, ok)
		})
	})
	eng.Run()

	// Contended key: a PUT lands mid-burst, so the READs that sample the
	// slot during its holdTime critical section fail validation and take
	// the RPC fallback — never a torn read.
	burst := 40
	for i := 0; i < burst; i++ {
		eng.AfterBg(sim.Duration(i+1)*sim.Microsecond, func() {
			get(1, func(seq uint64, _ []byte) {})
		})
	}
	eng.AfterBg(10*sim.Microsecond, func() { put(1, 1, func() {}) })
	eng.RunFor(5 * sim.Millisecond)

	fmt.Printf("burst on %s: %d GETs validated speculatively, %d caught the writer and fell back to RPC\n",
		keyNames[1], spec-1, fallbacks)
	fmt.Printf("client one-sided counters: reads=%d rdbytes=%d raerrs=%d\n",
		cli.Counters.Reads, cli.Counters.ReadBytes, cli.Counters.RemoteAccessErrs)
	fmt.Printf("server handler invocations: %d (PUTs + fallback GETs only — speculative reads cost zero responder CPU)\n",
		srv.msgs)
	fmt.Printf("\n%s", xrdma.XRStat(c.Mon.Context(fabric.NodeID(4))))
}

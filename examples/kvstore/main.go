// kvstore: a replicated key-value store over X-RDMA's built-in RPC — the
// kind of storage front end §II-C describes. Small GET/PUT requests ride
// the inline path; bulk values (and range scans) cross the 4 KB threshold
// and use the rendezvous large-message path transparently.
package main

import (
	"encoding/binary"
	"fmt"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// Tiny wire protocol on top of Msg payloads.
const (
	opPut = 1
	opGet = 2
)

func encodeReq(op byte, key string, val []byte) []byte {
	b := make([]byte, 3+len(key)+len(val))
	b[0] = op
	binary.LittleEndian.PutUint16(b[1:], uint16(len(key)))
	copy(b[3:], key)
	copy(b[3+len(key):], val)
	return b
}

func decodeReq(b []byte) (op byte, key string, val []byte) {
	op = b[0]
	kl := binary.LittleEndian.Uint16(b[1:])
	key = string(b[3 : 3+kl])
	val = b[3+kl:]
	return
}

type store struct {
	data map[string][]byte
}

func (s *store) serve(m *xrdma.Msg) {
	op, key, val := decodeReq(m.Data)
	switch op {
	case opPut:
		// Retain: the rendezvous buffer is recycled after the handler.
		cp := make([]byte, len(val))
		copy(cp, val)
		s.data[key] = cp
		m.Reply([]byte("OK"), 0)
	case opGet:
		v, ok := s.data[key]
		if !ok {
			m.Reply([]byte{}, 0)
			return
		}
		m.Reply(v, 0)
	}
}

func main() {
	c := cluster.New(cluster.Options{Topology: fabric.SmallClos(), Nodes: 3})

	// Two replicas.
	for _, i := range []int{1, 2} {
		s := &store{data: make(map[string][]byte)}
		c.Nodes[i].Ctx.OnChannel(func(ch *xrdma.Channel) { ch.OnMessage(s.serve) })
		if err := c.Nodes[i].Ctx.Listen(6379); err != nil {
			panic(err)
		}
	}

	// Client connects to both replicas.
	var reps []*xrdma.Channel
	c.ConnectPairs([][2]int{{0, 1}, {0, 2}}, 6379, func(chs []*xrdma.Channel) { reps = chs })
	c.Eng.Run()

	put := func(key string, val []byte, done func()) {
		remaining := len(reps)
		for _, ch := range reps {
			ch.SendMsg(encodeReq(opPut, key, val), 0, func(m *xrdma.Msg, err error) {
				if err != nil {
					panic(err)
				}
				remaining--
				if remaining == 0 {
					done()
				}
			})
		}
	}
	get := func(key string, done func([]byte)) {
		reps[0].SendMsg(encodeReq(opGet, key, nil), 0, func(m *xrdma.Msg, err error) {
			if err != nil {
				panic(err)
			}
			done(m.Retain())
		})
	}

	// A small value (inline path) and a 256 KB value (rendezvous path).
	small := []byte("inline value")
	big := make([]byte, 256<<10)
	for i := range big {
		big[i] = byte(i * 7)
	}

	start := c.Eng.Now()
	put("config", small, func() {
		put("blob", big, func() {
			get("config", func(v []byte) {
				fmt.Printf("GET config → %q\n", v)
			})
			get("blob", func(v []byte) {
				ok := len(v) == len(big)
				for i := range v {
					if v[i] != big[i] {
						ok = false
						break
					}
				}
				fmt.Printf("GET blob → %d bytes, intact=%v, elapsed=%v\n",
					len(v), ok, c.Eng.Now().Sub(start))
			})
		})
	})
	c.Eng.Run()

	// The large transfers went through the rendezvous machinery:
	fmt.Printf("client large sent=%d recv=%d; replica1 stats:\n%s",
		reps[0].Counters.LargeSent, reps[0].Counters.LargeRecv,
		xrdma.XRStat(c.Mon.Context(fabric.NodeID(1))))
	_ = sim.Second
}

// faultdrill: the analysis framework in action (§VI). The drill walks the
// bug classes of Table II: inject drops with the Filter and watch the
// reliability layer absorb them, crash a peer and watch keepalive reclaim
// the connection, break the RDMA plane with Mock enabled and watch the
// channel fall back to TCP, read the slow-poll log after the application
// hogs its thread, and brown out a spine path to watch the path doctor
// walk the verdict ladder, re-path via an ECMP flow-label rotation, and
// cover a withheld response with a budgeted request retry. Later drills
// overload a shared mux QP with a bulk elephant tenant and watch the
// isolation plane hold the mouse tenant's tail, reject budget overruns
// loudly, shed a late attach into the admission FIFO, and recover
// everything once the flood stops; a hot upgrade rolls both ends of a
// live channel v1→v2 — drain, handoff blob, restart, rehydrate, tail
// replay — without losing or duplicating a message; and the closing
// drill hands a gray access optic to the fleet diagnoser, which opens a
// gray-link incident against the sick host, escalates as the evidence
// concentrates, and closes it once the optic is replaced.
package main

import (
	"encoding/binary"
	"fmt"
	"sort"

	"xrdma/internal/chaos"
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/xrdma"
	"xrdma/internal/xrmon"
)

func main() {
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		Nodes:    4,
		MockPort: 9000,
		Config: func(node int, cfg *xrdma.Config) {
			cfg.KeepaliveInterval = 2 * sim.Millisecond
			cfg.KeepaliveTimeout = 10 * sim.Millisecond
			cfg.MockEnabled = true
			cfg.PollingWarnCycle = 20 * sim.Microsecond
		},
	})
	c.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(m.Retain(), 0) })
	})

	// ---- drill 1: Filter drops (bugs hard to reproduce → filter) -------
	var ch01 *xrdma.Channel
	c.Connect(0, 1, 7000, func(ch *xrdma.Channel, err error) { ch01 = ch })
	c.Eng.Run()
	must(c.Nodes[0].Ctx.SetFlag("filter_drop_rate", "0.15"))
	ok := 0
	for i := 0; i < 50; i++ {
		ch01.SendMsg([]byte("under fire"), 0, func(m *xrdma.Msg, err error) {
			if err == nil {
				ok++
			}
		})
	}
	c.Eng.RunFor(2 * sim.Second)
	must(c.Nodes[0].Ctx.SetFlag("filter_drop_rate", "0"))
	fmt.Printf("drill 1 (filter): %d/50 completed under 15%% drops, %d retransmissions\n",
		ok, c.Nodes[0].NIC.Counters.Retransmits)

	// ---- drill 2: crash + keepalive reclaim (broken network) -----------
	var ch02 *xrdma.Channel
	c.Connect(0, 2, 7000, func(ch *xrdma.Channel, err error) { ch02 = ch })
	c.Eng.Run()
	reclaimed := false
	// Disable the mock for this channel's failure by crashing TCP too.
	c.Nodes[2].TCP.Crash()
	ch02.OnClose(func(err error) { reclaimed = true; fmt.Printf("drill 2 (keepalive): reclaimed: %v\n", err) })
	c.Nodes[2].NIC.Crash()
	// Reclaim = keepalive deadline (one RC retry horizon) + the bounded
	// mock dial retries against the dead TCP stack before giving up.
	c.Eng.RunFor(600 * sim.Millisecond)
	if !reclaimed {
		panic("keepalive failed to reclaim dead peer")
	}
	fmt.Printf("drill 2: QP recycled into cache (size %d), probes=%d\n",
		c.Nodes[0].Ctx.QPs.Len(), c.Nodes[0].Ctx.Stats.KeepaliveProbes)

	// ---- drill 3: Mock fallback to TCP ---------------------------------
	var ch03 *xrdma.Channel
	c.Connect(0, 3, 7000, func(ch *xrdma.Channel, err error) { ch03 = ch })
	c.Eng.Run()
	c.Nodes[3].NIC.Crash() // RDMA plane dies, TCP stack survives
	c.Eng.RunFor(50 * sim.Millisecond)
	c.Nodes[3].NIC.Revive()
	c.Eng.RunFor(250 * sim.Millisecond)
	fmt.Printf("drill 3 (mock): channel mocked=%v closed=%v\n", ch03.Mocked(), ch03.Closed())
	got := false
	ch03.SendMsg([]byte("over tcp now"), 0, func(m *xrdma.Msg, err error) { got = err == nil })
	c.Eng.RunFor(100 * sim.Millisecond)
	fmt.Printf("drill 3: request over TCP fallback ok=%v (switches=%d)\n",
		got, c.Nodes[0].Ctx.Stats.MockSwitches)

	// ---- drill 4: slow-poll detection (jitter → tracing) ---------------
	c.Nodes[0].Ctx.InjectWork(500 * sim.Microsecond) // the allocator-lock stall of §VII-D
	ch01.SendMsg([]byte("after stall"), 0, nil)
	c.Eng.RunFor(10 * sim.Millisecond)
	slow := 0
	for _, e := range c.Nodes[0].Ctx.Log() {
		if len(e.Text) >= 9 && e.Text[:9] == "slow poll" {
			slow++
		}
	}
	fmt.Printf("drill 4 (tracing): %d slow-poll incidents in the self-adaptive log\n", slow)

	// ---- drill 5: chaos scheduler + health state machine ---------------
	// A fresh cluster with the recovery plane armed (RecoverPort) and a
	// short RC retry horizon, driven by the deterministic fault
	// scheduler: a pulled cable degrades the channel and recovery brings
	// it back to RDMA; a dead HCA exhausts the retry budget and lands on
	// the Mock fallback; the rebooted HCA is reclaimed by failback.
	nicCfg := rnic.DefaultConfig()
	nicCfg.RetransTimeout = 2 * sim.Millisecond
	nicCfg.RetryLimit = 3
	c5 := cluster.New(cluster.Options{
		Topology:    fabric.SmallClos(),
		NICCfg:      nicCfg,
		Nodes:       8,
		MockPort:    9000,
		RecoverPort: 9100,
		Config: func(node int, cfg *xrdma.Config) {
			cfg.MockEnabled = true
			cfg.KeepaliveInterval = 2 * sim.Millisecond
			cfg.KeepaliveTimeout = 8 * sim.Millisecond
		},
	})
	c5.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(m.Retain(), 0) })
	})
	var ch05 *xrdma.Channel
	c5.Connect(0, 4, 7000, func(ch *xrdma.Channel, err error) { ch05 = ch })
	c5.Eng.Run()
	ch05.OnHealthChange(func(h xrdma.HealthState) {
		fmt.Printf("drill 5 (chaos): t=%v channel -> %v\n", c5.Eng.Now(), h)
	})
	inj := chaos.New(c5)
	inj.Schedule([]chaos.Step{
		{At: 10 * sim.Millisecond, Name: "cable out", Do: func(i *chaos.Injector) { i.HostLinkDown(4) }},
		{At: 60 * sim.Millisecond, Name: "cable in", Do: func(i *chaos.Injector) { i.HostLinkUp(4) }},
		{At: 200 * sim.Millisecond, Name: "HCA dies", Do: func(i *chaos.Injector) { i.NicCrash(4) }},
		{At: 500 * sim.Millisecond, Name: "HCA swapped", Do: func(i *chaos.Injector) { i.NodeRestart(4) }},
	})
	c5.Eng.RunFor(800 * sim.Millisecond)
	fmt.Printf("drill 5: final health=%v mocked=%v (degraded=%d recoveries=%d mock-switches=%d failbacks=%d)\n",
		ch05.Health(), ch05.Mocked(),
		c5.Nodes[0].Ctx.Stats.Degraded, c5.Nodes[0].Ctx.Stats.Recoveries,
		c5.Nodes[0].Ctx.Stats.MockSwitches, c5.Nodes[0].Ctx.Stats.Failbacks)
	fmt.Println("drill 5 fault timeline:")
	for _, line := range inj.Digest() {
		fmt.Println("  " + line)
	}

	// ---- drill 6: gray failure — path doctor + budgeted retries --------
	// A brownout (loss + corruption + added latency, the link is up the
	// whole time) degrades the spine path the channel rides. The doctor
	// walks Clean → Suspect → Sick, rotates the QP flow label so ECMP
	// steers onto the other leaf, and the verdict returns to Clean — no
	// QP teardown, no recovery plane involved. Then the server withholds
	// one response past the request timeout and a budgeted retry covers
	// it, with receiver-side dedup keeping delivery exactly-once.
	nic6 := rnic.DefaultConfig()
	nic6.RetransTimeout = 1 * sim.Millisecond
	nic6.RetryLimit = 12 // deep horizon: the brownout must stay gray
	c6 := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   nic6,
		Nodes:    8,
		Config: func(node int, cfg *xrdma.Config) {
			cfg.StatsInterval = 1 * sim.Millisecond // doctor scan cadence
			cfg.PathRehashCooldown = 4 * sim.Millisecond
			cfg.RequestTimeout = 10 * sim.Millisecond
			cfg.RequestRetries = 2
			cfg.RetryBackoff = 1 * sim.Millisecond
		},
	})
	withhold := false
	handled := 0
	c6.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			handled++
			if withhold {
				withhold = false
				data := m.Retain()
				mm := m
				c6.Eng.After(15*sim.Millisecond, func() { mm.Reply(data, 0) })
				return
			}
			m.Reply(m.Retain(), 0)
		})
	})
	var ch06 *xrdma.Channel
	c6.Connect(0, 4, 7000, func(ch *xrdma.Channel, err error) { ch06 = ch })
	c6.Eng.Run()
	ch06.OnPathVerdict(func(v xrdma.PathVerdict) {
		fmt.Printf("drill 6 (gray): t=%v path -> %v (rehashes=%d)\n",
			c6.Eng.Now(), v, ch06.Rehashes())
	})
	inj6 := chaos.New(c6)
	leaf := fmt.Sprintf("pod0-leaf%d", fabric.ECMPIndex(ch06.FlowHash(), 2))
	resps, errs := 0, 0
	stop := false
	var tick func()
	tick = func() {
		if stop {
			return
		}
		ch06.SendMsg([]byte("gray load"), 0, func(m *xrdma.Msg, err error) {
			if err == nil {
				resps++
			} else {
				errs++
			}
		})
		c6.Eng.AfterBg(500*sim.Microsecond, tick)
	}
	c6.Eng.AfterBg(500*sim.Microsecond, tick)
	c6.Eng.AfterBg(20*sim.Millisecond, func() {
		inj6.Brownout("pod0-tor0", leaf, 0.12, 0.05, 20*sim.Microsecond)
	})
	c6.Eng.RunFor(150 * sim.Millisecond)
	stop = true
	c6.Eng.RunFor(50 * sim.Millisecond)
	inj6.ClearBrownout("pod0-tor0", leaf)
	fmt.Printf("drill 6: %d/%d responses under brownout (%d timed out), rehashes=%d retries=%d\n",
		resps, resps+errs, errs, ch06.Rehashes(), ch06.Counters.ReqRetries)
	for _, line := range ch06.PathLog() {
		fmt.Println("  " + line)
	}

	// Now the retry: one response is withheld past the request timeout;
	// the budgeted retry is deduplicated at the receiver (the handler
	// must not run again) and the late reply satisfies the request.
	withhold = true
	base := handled
	baseRetries := ch06.Counters.ReqRetries
	got6, errs6 := 0, 0
	ch06.SendMsg([]byte("withheld"), 0, func(m *xrdma.Msg, err error) {
		if err == nil {
			got6++
		} else {
			errs6++
		}
	})
	c6.Eng.RunFor(50 * sim.Millisecond)
	fmt.Printf("drill 6: withheld response — handler ran %d time(s), retries=%d, responses=%d errors=%d\n",
		handled-base, ch06.Counters.ReqRetries-baseRetries, got6, errs6)

	// ---- drill 7: shared-QP mux — one fault, one fix, N channels -------
	// Six channels to the same peer multiplexed over a single shared QP
	// (QPsPerPeer=1). The QP is the failure domain: a link flap degrades
	// and recovers all six channels through ONE re-establishment, and a
	// gray brownout is cured by ONE flow-label rotation — never once per
	// channel.
	nic7 := rnic.DefaultConfig()
	nic7.RetransTimeout = 1 * sim.Millisecond
	nic7.RetryLimit = 12
	c7 := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   nic7,
		Nodes:    8,
		Config: func(node int, cfg *xrdma.Config) {
			cfg.QPsPerPeer = 1
			cfg.KeepaliveInterval = 2 * sim.Millisecond
			cfg.KeepaliveTimeout = 8 * sim.Millisecond
			cfg.StatsInterval = 1 * sim.Millisecond
			cfg.PathRehashCooldown = 4 * sim.Millisecond
		},
	})
	c7.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(m.Retain(), 0) })
	})
	var chans7 []*xrdma.Channel
	for i := 0; i < 6; i++ {
		c7.Connect(0, 4, 7000, func(ch *xrdma.Channel, err error) {
			if err != nil {
				panic(err)
			}
			chans7 = append(chans7, ch)
		})
	}
	c7.Eng.Run()
	ctx7 := c7.Nodes[0].Ctx
	fmt.Printf("drill 7 (mux): %d channels attached over %d wire QP(s)\n",
		len(chans7), c7.Nodes[0].NIC.NumQPs())

	resps7, errs7, i7 := 0, 0, 0
	stop7 := false
	var tick7 func()
	tick7 = func() {
		if stop7 {
			return
		}
		ch := chans7[i7%len(chans7)]
		i7++
		ch.SendMsg([]byte("mux load"), 0, func(m *xrdma.Msg, err error) {
			if err == nil {
				resps7++
			} else {
				errs7++
			}
		})
		c7.Eng.AfterBg(300*sim.Microsecond, tick7)
	}
	c7.Eng.AfterBg(300*sim.Microsecond, tick7)

	// Phase 1: hard fault. The flap breaks the shared QP; keepalive
	// detects it and one redial re-attaches every channel.
	inj7 := chaos.New(c7)
	c7.Eng.AfterBg(20*sim.Millisecond, func() { inj7.HostLinkDown(4) })
	c7.Eng.AfterBg(50*sim.Millisecond, func() { inj7.HostLinkUp(4) })
	c7.Eng.RunFor(250 * sim.Millisecond)
	fmt.Printf("drill 7: link flap -> degraded=%d recoveries=%d (6 channels, one shared-QP event)\n",
		ctx7.Stats.Degraded, ctx7.Stats.Recoveries)

	// Phase 2: gray fault. Brown out the ToR–leaf link the shared QP
	// hashes onto (both directions — requests *and* acks suffer). The
	// doctor walks the whole ladder through the one shared QP: flow-label
	// rotations against the TX symptoms, cooperative PATH_HINTs for the
	// reverse-path ones, and when the gray persists on both directions it
	// spends its rehash budget and escalates — one re-establishment, six
	// channels healed, exactly once each.
	leaf7 := fmt.Sprintf("pod0-leaf%d", fabric.ECMPIndex(chans7[0].FlowHash(), 2))
	inj7.Brownout("pod0-tor0", leaf7, 0.12, 0.05, 20*sim.Microsecond)
	c7.Eng.RunFor(150 * sim.Millisecond)
	inj7.ClearBrownout("pod0-tor0", leaf7)
	stop7 = true
	c7.Eng.RunFor(50 * sim.Millisecond)
	healthy7 := 0
	for _, ch := range chans7 {
		if ch.Health() == xrdma.HealthHealthy {
			healthy7++
		}
	}
	fmt.Printf("drill 7: brownout -> rehashes=%d hints=%d escalations=%d recoveries=%d; %d/%d responses, %d/%d channels healthy\n",
		ctx7.Stats.PathRehashes, ctx7.Stats.PathHints, ctx7.Stats.PathEscalations,
		ctx7.Stats.Recoveries, resps7, resps7+errs7, healthy7, len(chans7))
	for _, line := range chans7[0].PathLog() {
		fmt.Println("  " + line)
	}

	// ---- drill 8: multi-tenant overload — elephant vs mouse ------------
	// Two tenants share ONE mux QP: a latency-sensitive mouse (weight 8)
	// and a bulk elephant (weight 1, rate/window/memory-limited). The
	// elephant floods the shared SQ and overruns its 40 KiB staging
	// budget; the DRR scheduler and the elephant's own limits hold the
	// mouse's tail, budget breaches reject loudly (never stall) and trip
	// a flight dump naming the culprit tenant, a late elephant attach is
	// shed into the admission FIFO, and once the flood stops the mouse's
	// tail and the queued attach both recover.
	c8 := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		Nodes:    8,
		Config: func(node int, cfg *xrdma.Config) {
			cfg.QPsPerPeer = 1
			cfg.AttachAdmission = 4
			cfg.TenantShedCooldown = 20 * sim.Millisecond
			cfg.Tenants = []xrdma.TenantConfig{
				{Name: "mouse", Weight: 8},
				{Name: "elephant", Weight: 1,
					RateBps:    1 << 30,
					BurstBytes: 64 << 10,
					SendWindow: 16,
					MemBudget:  40 << 10},
			}
		},
	})
	c8.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 16) })
	})
	ctx8 := c8.Nodes[0].Ctx
	mouse8, err8 := ctx8.ChannelTo(c8.Nodes[4].ID, 7000, xrdma.WithTenant("mouse"))
	must(err8)
	start8 := c8.Eng.Now()
	var contended, recovered []sim.Duration
	var tick8 func()
	tick8 = func() {
		if c8.Eng.Now().Sub(start8) >= 300*sim.Millisecond {
			return
		}
		at := c8.Eng.Now()
		mouse8.SendMsg(nil, 16, func(m *xrdma.Msg, err error) {
			if err != nil {
				return
			}
			lat := c8.Eng.Now().Sub(at)
			switch issued := at.Sub(start8); {
			case issued >= 250*sim.Millisecond:
				recovered = append(recovered, lat)
			case issued >= 30*sim.Millisecond && issued < 230*sim.Millisecond:
				contended = append(contended, lat)
			}
		})
		c8.Eng.AfterBg(200*sim.Microsecond, tick8)
	}
	c8.Eng.AfterBg(200*sim.Microsecond, tick8)
	budget8 := 0
	c8.Eng.AfterBg(10*sim.Millisecond, func() {
		for e := 0; e < 4; e++ {
			ech, err := ctx8.ChannelTo(c8.Nodes[4].ID, 7000, xrdma.WithTenant("elephant"))
			must(err)
			// Closed inline loops saturate the shared SQ...
			for l := 0; l < 8; l++ {
				var loop func()
				loop = func() {
					if c8.Eng.Now().Sub(start8) >= 230*sim.Millisecond {
						return
					}
					ech.SendMsg(nil, 4096, func(*xrdma.Msg, error) { loop() })
				}
				c8.Eng.AfterBg(sim.Duration(l+1)*10*sim.Microsecond, loop)
			}
			// ...and concurrent 32 KiB rendezvous streams overrun the
			// 40 KiB staging budget: ErrTenantBudget, retry later.
			var pump func()
			pump = func() {
				if c8.Eng.Now().Sub(start8) >= 230*sim.Millisecond {
					return
				}
				ech.SendMsg(nil, 32<<10, func(_ *xrdma.Msg, err error) {
					if err != nil {
						budget8++
						c8.Eng.AfterBg(2*sim.Millisecond, pump)
						return
					}
					pump()
				})
			}
			c8.Eng.AfterBg(sim.Duration(e)*50*sim.Microsecond, pump)
		}
	})
	var late8 *xrdma.Channel
	c8.Eng.AfterBg(120*sim.Millisecond, func() {
		ch, err := ctx8.ChannelTo(c8.Nodes[4].ID, 7000, xrdma.WithTenant("elephant"))
		must(err)
		late8 = ch
		ch.SendMsg(nil, 64, func(*xrdma.Msg, error) {})
	})
	c8.Eng.RunFor(400 * sim.Millisecond)

	fmt.Printf("drill 8 (tenants): mouse p99 contended=%v recovered=%v (%d/%d samples)\n",
		p99(contended), p99(recovered), len(contended), len(recovered))
	shed8 := 0
	var culprit8 uint32
	for _, d := range ctx8.Telemetry().Flight.Dumps() {
		if d.Reason == telemetry.CatTenantShed {
			shed8++
			if culprit8 == 0 {
				culprit8 = d.QPN
			}
		}
	}
	ele8 := ctx8.Tenant("elephant")
	fmt.Printf("drill 8: elephant budget rejections=%d (counter %d), shed dumps=%d naming tenant %d (%s)\n",
		budget8, ele8.MemRejects, shed8, culprit8, ctx8.Tenants()[culprit8-1].Name())
	fmt.Printf("drill 8: late elephant attach shed then established=%v (attach sheds=%d); tenant ledger:\n",
		late8.Attached(), ele8.AttachSheds)
	for _, line := range ctx8.TenantDigest() {
		fmt.Println("  " + line)
	}

	// ---- drill 9: hot upgrade — drain, restart, rehydrate --------------
	// Both ends of a live channel roll v1→v2 one at a time. Drain drives
	// Serving→Draining→Drained, seals the floors, unacked tail and channel
	// identities into a handoff blob, the restarted (now v2-capable)
	// instance rehydrates and re-establishes through the recovery plane,
	// and the replayed tail lands exactly-once at the survivor. Mixed
	// versions interoperate mid-roll; a probe dialed after both waves
	// negotiates v2.
	nic9 := rnic.DefaultConfig()
	nic9.RetransTimeout = 2 * sim.Millisecond
	nic9.RetryLimit = 3
	c9 := cluster.New(cluster.Options{
		Topology:    fabric.SmallClos(),
		NICCfg:      nic9,
		Nodes:       8,
		RecoverPort: 9100,
		Config: func(node int, cfg *xrdma.Config) {
			cfg.KeepaliveInterval = 2 * sim.Millisecond
			cfg.KeepaliveTimeout = 8 * sim.Millisecond
			cfg.RecoverRetries = 8
			cfg.RecoverBackoff = 1 * sim.Millisecond
			cfg.RecoverBackoffMax = 8 * sim.Millisecond
			cfg.RecoverDialTimeout = 20 * sim.Millisecond // cold post-restart caches
			cfg.DrainDeadline = 10 * sim.Millisecond
		},
	})
	recv9 := map[uint64]int{} // server-side deliveries per message ID
	echo9 := func(ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			if len(m.Data) >= 8 {
				recv9[binary.LittleEndian.Uint64(m.Data)]++
			}
			m.Reply(m.Retain(), 0)
		})
	}
	c9.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) { echo9(ch) })
	var ch09 *xrdma.Channel
	c9.Connect(0, 4, 7000, func(ch *xrdma.Channel, err error) { must(err); ch09 = ch })
	c9.Eng.Run()
	fmt.Printf("drill 9 (upgrade): before roll ver=%d caps=%#x\n",
		ch09.NegotiatedVersion(), ch09.PeerCaps())
	resps9, errs9 := 0, 0
	sent9, id9 := 0, uint64(0)
	stop9 := false
	var tick9 func()
	tick9 = func() {
		if stop9 {
			return
		}
		c9.Eng.AfterBg(500*sim.Microsecond, tick9)
		// Pause while our own instance drains: the blob freezes the tail,
		// the replay finishes the rest.
		if c9.Nodes[0].Ctx.DrainPhase() != xrdma.DrainServing || ch09.Closed() {
			return
		}
		id9++
		payload := make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, id9)
		sent9++
		ch09.SendMsg(payload, 0, func(m *xrdma.Msg, err error) {
			if err != nil {
				errs9++
				return
			}
			resps9++
		})
	}
	c9.Eng.AfterBg(500*sim.Microsecond, tick9)
	inj9 := chaos.New(c9)
	roll9 := func(node int) func() {
		return func() {
			inj9.DrainRestart(node,
				func(cfg *xrdma.Config) { cfg.ProtoVerMax = 2 },
				func(ctx *xrdma.Context) {
					ctx.OnChannel(func(ch *xrdma.Channel) {
						echo9(ch)
						if node == 0 && ch.Peer == c9.Nodes[4].ID {
							ch09 = ch // rehydrated successor of our channel
						}
					})
					must(ctx.Listen(7000))
				})
		}
	}
	c9.Eng.AfterBg(30*sim.Millisecond, roll9(4))
	c9.Eng.AfterBg(100*sim.Millisecond, roll9(0))
	c9.Eng.RunFor(200 * sim.Millisecond)
	stop9 = true
	c9.Eng.RunFor(50 * sim.Millisecond)
	dups9, delivered9 := 0, 0
	for _, n := range recv9 {
		delivered9++
		if n > 1 {
			dups9 += n - 1
		}
	}
	fmt.Printf("drill 9: %d sent, %d delivered (dups=%d), %d responses, %d errors across both rolls\n",
		sent9, delivered9, dups9, resps9, errs9)
	// The rehydrated channel keeps the version it negotiated at
	// establishment — renegotiation happens per-establishment, so only
	// channels dialed after the roll settle v2.
	fmt.Printf("drill 9: rehydrated channel keeps ver=%d caps=%#x (rehydrated=%d)\n",
		ch09.NegotiatedVersion(), ch09.PeerCaps(), c9.Nodes[0].Ctx.Stats.Rehydrated)
	probe9 := 0
	c9.Connect(0, 4, 7000, func(ch *xrdma.Channel, err error) {
		must(err)
		probe9 = int(ch.NegotiatedVersion())
	})
	c9.Eng.Run()
	fmt.Printf("drill 9: fresh probe negotiates v%d\n", probe9)
	fmt.Println("drill 9 upgrade timeline:")
	for _, line := range inj9.Digest() {
		fmt.Println("  " + line)
	}

	// ---- drill 10: fleet diagnosis — gray optic, incident lifecycle ----
	// The XR-Mon collector watches an 8-node fleet while one host's access
	// optic goes gray (loss + corruption, link stays up). Node 3 fans
	// heavy one-way streams across the far ToR, so each peer catches only
	// a sliver of the corruption while node 3 aggregates every flow's
	// retransmits — the signature that pins a sick host rather than a
	// sick fabric element. Node 2 runs a probe burst over the same bad
	// link during the onset; its share of the symptoms holds the opening
	// confidence down, and when the burst ends the incident escalates.
	// Replacing the optic closes it after the quiet horizon.
	nic10 := rnic.DefaultConfig()
	nic10.RetransTimeout = 1 * sim.Millisecond
	nic10.RetryLimit = 12 // the gray optic must stay gray
	c10 := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   nic10,
		Nodes:    8,
		Config: func(node int, cfg *xrdma.Config) {
			cfg.StatsInterval = 2 * sim.Millisecond
			cfg.PathDoctor = false // no self-healing: the diagnoser gets the stage
			cfg.KeepaliveInterval = 2 * sim.Millisecond
			cfg.KeepaliveTimeout = 8 * sim.Millisecond
		},
	})
	col10 := xrmon.For(c10.Eng)
	for i := 0; i < 8; i++ {
		col10.SetLocation(int32(i), fmt.Sprintf("pod0-tor%d", i/4), "pod0")
	}
	// Small hot fleet: raise the symptom floor so a far-ToR peer's sliver
	// of corrupt frames never reads as its own symptom, while node 2's
	// probe burst (and of course node 3 itself) clears it.
	// A longer open-hysteresis keeps the verdict from firing while the
	// sliding windows are still ramping into the fault.
	// A longer close-horizon rides through the stall dip after the probe
	// burst ends instead of flapping the incident closed and reopen.
	col10.Watch(xrmon.WatchConfig{GraySymptomMin: 30, OpenAfter: 6, CloseAfter: 16})
	col10.OnIncident(func(inc *xrmon.Incident, ev string) {
		fmt.Printf("drill 10 (fleet): t=%v %-8s class=%s culprit=%s conf=%d\n",
			c10.Eng.Now(), ev, inc.Class, inc.Culprit, inc.Confidence)
		if ev == "open" {
			for _, e := range inc.Evidence {
				fmt.Println("  evidence: " + e)
			}
		}
	})
	c10.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 0) })
	})
	pairs10 := [][2]int{
		{0, 4}, {1, 5}, {2, 6}, {3, 7}, {0, 1}, {2, 3}, {4, 5}, {6, 7},
		{3, 4}, {3, 5}, {3, 6}, // node 3's far-ToR fan-out
	}
	var chans10 []*xrdma.Channel
	c10.ConnectPairs(pairs10, 7000, func(chs []*xrdma.Channel) { chans10 = chs })
	c10.Eng.Run()
	heavy10 := []*xrdma.Channel{chans10[3], chans10[8], chans10[9], chans10[10]}
	probing10 := false
	var tick10 func()
	tick10 = func() {
		for _, ch := range chans10[:8] {
			ch.SendMsg(make([]byte, 1024), 0, func(*xrdma.Msg, error) {})
		}
		for _, ch := range heavy10 {
			ch.SendMsg(make([]byte, 1024), 0, nil)
			ch.SendMsg(make([]byte, 1024), 0, nil)
		}
		if probing10 { // node 2's probe burst shares the gray link
			for k := 0; k < 6; k++ {
				chans10[5].SendMsg(make([]byte, 1024), 0, func(*xrdma.Msg, error) {})
			}
		}
		c10.Eng.AfterBg(500*sim.Microsecond, tick10)
	}
	c10.Eng.AfterBg(500*sim.Microsecond, tick10)
	inj10 := chaos.New(c10)
	inj10.Schedule([]chaos.Step{
		{At: 30 * sim.Millisecond, Name: "optic goes gray", Do: func(i *chaos.Injector) {
			probing10 = true
			i.HostBrownout(3, 0.15, 0.03, 20*sim.Microsecond)
		}},
		{At: 70 * sim.Millisecond, Name: "probe burst ends", Do: func(i *chaos.Injector) {
			probing10 = false
		}},
		{At: 130 * sim.Millisecond, Name: "optic replaced", Do: func(i *chaos.Injector) {
			i.ClearHostBrownout(3)
		}},
	})
	c10.Eng.RunFor(250 * sim.Millisecond)
	fmt.Println("drill 10 root-cause report:")
	for _, line := range col10.Digest() {
		fmt.Println("  " + line)
	}
	fmt.Println("drill 10 fault timeline:")
	for _, line := range inj10.Digest() {
		fmt.Println("  " + line)
	}

	fmt.Println("\nfinal XR-Stat on node 0:")
	fmt.Print(xrdma.XRStat(c.Nodes[0].Ctx))
}

// p99 is the 99th-percentile of a latency sample (0 when empty).
func p99(lats []sim.Duration) sim.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]sim.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)*99+99)/100-1]
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

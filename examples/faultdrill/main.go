// faultdrill: the analysis framework in action (§VI). The drill walks the
// bug classes of Table II: inject drops with the Filter and watch the
// reliability layer absorb them, crash a peer and watch keepalive reclaim
// the connection, break the RDMA plane with Mock enabled and watch the
// channel fall back to TCP, and read the slow-poll log after the
// application hogs its thread.
package main

import (
	"fmt"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

func main() {
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		Nodes:    4,
		MockPort: 9000,
		Config: func(node int, cfg *xrdma.Config) {
			cfg.KeepaliveInterval = 2 * sim.Millisecond
			cfg.KeepaliveTimeout = 10 * sim.Millisecond
			cfg.MockEnabled = true
			cfg.PollingWarnCycle = 20 * sim.Microsecond
		},
	})
	c.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(m.Retain(), 0) })
	})

	// ---- drill 1: Filter drops (bugs hard to reproduce → filter) -------
	var ch01 *xrdma.Channel
	c.Connect(0, 1, 7000, func(ch *xrdma.Channel, err error) { ch01 = ch })
	c.Eng.Run()
	must(c.Nodes[0].Ctx.SetFlag("filter_drop_rate", "0.15"))
	ok := 0
	for i := 0; i < 50; i++ {
		ch01.SendMsg([]byte("under fire"), 0, func(m *xrdma.Msg, err error) {
			if err == nil {
				ok++
			}
		})
	}
	c.Eng.RunFor(2 * sim.Second)
	must(c.Nodes[0].Ctx.SetFlag("filter_drop_rate", "0"))
	fmt.Printf("drill 1 (filter): %d/50 completed under 15%% drops, %d retransmissions\n",
		ok, c.Nodes[0].NIC.Counters.Retransmits)

	// ---- drill 2: crash + keepalive reclaim (broken network) -----------
	var ch02 *xrdma.Channel
	c.Connect(0, 2, 7000, func(ch *xrdma.Channel, err error) { ch02 = ch })
	c.Eng.Run()
	reclaimed := false
	// Disable the mock for this channel's failure by crashing TCP too.
	c.Nodes[2].TCP.Crash()
	ch02.OnClose(func(err error) { reclaimed = true; fmt.Printf("drill 2 (keepalive): reclaimed: %v\n", err) })
	c.Nodes[2].NIC.Crash()
	c.Eng.RunFor(300 * sim.Millisecond)
	if !reclaimed {
		panic("keepalive failed to reclaim dead peer")
	}
	fmt.Printf("drill 2: QP recycled into cache (size %d), probes=%d\n",
		c.Nodes[0].Ctx.QPs.Len(), c.Nodes[0].Ctx.Stats.KeepaliveProbes)

	// ---- drill 3: Mock fallback to TCP ---------------------------------
	var ch03 *xrdma.Channel
	c.Connect(0, 3, 7000, func(ch *xrdma.Channel, err error) { ch03 = ch })
	c.Eng.Run()
	c.Nodes[3].NIC.Crash() // RDMA plane dies, TCP stack survives
	c.Eng.RunFor(50 * sim.Millisecond)
	c.Nodes[3].NIC.Revive()
	c.Eng.RunFor(250 * sim.Millisecond)
	fmt.Printf("drill 3 (mock): channel mocked=%v closed=%v\n", ch03.Mocked(), ch03.Closed())
	got := false
	ch03.SendMsg([]byte("over tcp now"), 0, func(m *xrdma.Msg, err error) { got = err == nil })
	c.Eng.RunFor(100 * sim.Millisecond)
	fmt.Printf("drill 3: request over TCP fallback ok=%v (switches=%d)\n",
		got, c.Nodes[0].Ctx.Stats.MockSwitches)

	// ---- drill 4: slow-poll detection (jitter → tracing) ---------------
	c.Nodes[0].Ctx.InjectWork(500 * sim.Microsecond) // the allocator-lock stall of §VII-D
	ch01.SendMsg([]byte("after stall"), 0, nil)
	c.Eng.RunFor(10 * sim.Millisecond)
	slow := 0
	for _, e := range c.Nodes[0].Ctx.Log() {
		if len(e.Text) >= 9 && e.Text[:9] == "slow poll" {
			slow++
		}
	}
	fmt.Printf("drill 4 (tracing): %d slow-poll incidents in the self-adaptive log\n", slow)

	fmt.Println("\nfinal XR-Stat on node 0:")
	fmt.Print(xrdma.XRStat(c.Nodes[0].Ctx))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// Package repro's root benchmark harness: one testing.B per table/figure
// of the paper's evaluation (§VII), wrapping the experiment functions in
// internal/bench. Each iteration runs the full experiment at quick scale
// and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every artefact. cmd/reproduce prints the full tables; the
// -full flag there runs closer to paper scale.
package repro

import (
	"testing"

	"xrdma/internal/bench"
)

func scale() bench.Scale { return bench.Quick() }

// BenchmarkFig7_MixedMessage regenerates Fig. 7 (left): small vs large vs
// mixed message modes.
func BenchmarkFig7_MixedMessage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig7Left(scale())
		b.ReportMetric(r.Mixed[0], "small_rtt_us")
		b.ReportMetric(r.Mixed[len(r.Mixed)-1], "16KB_rtt_us")
	}
}

// BenchmarkFig7_Middleware regenerates Fig. 7 (middle): the middleware
// comparison at small payloads.
func BenchmarkFig7_Middleware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig7Middle(scale())
		b.ReportMetric(r.RTT["xrdma-BD"][3], "xrdma_64B_us")
		b.ReportMetric(r.RTT["ibv-pingpong"][3], "ibv_64B_us")
		b.ReportMetric(r.RTT["ucx-am-rc"][3], "ucx_64B_us")
		b.ReportMetric(r.RTT["libfabric"][3], "libfabric_64B_us")
		b.ReportMetric(r.RTT["xio"][3], "xio_64B_us")
	}
}

// BenchmarkFig7_Large regenerates Fig. 7 (right): 4–32 KB payloads.
func BenchmarkFig7_Large(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig7Right(scale())
		b.ReportMetric(r.RTT["xrdma"][len(r.Sizes)-1], "xrdma_32KB_us")
	}
}

// BenchmarkTracingOverhead regenerates the §VII-A bare-data vs req-rsp
// comparison (paper: +2–4%).
func BenchmarkTracingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.TracingOverhead(scale())
		b.ReportMetric(r.OverheadPct[0], "overhead_pct_64B")
	}
}

// BenchmarkEstablishment regenerates §VII-C: 3946→2451 µs with the QP
// cache, and the mass-establishment storm.
func BenchmarkEstablishment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Establishment(scale())
		b.ReportMetric(r.ColdUS, "cold_us")
		b.ReportMetric(r.WarmUS, "qpcache_us")
		b.ReportMetric(r.SavingPct, "saving_pct")
		b.ReportMetric(r.MassColdSec/r.MassWarmSec, "mass_speedup")
	}
}

// BenchmarkFig8_EstablishRamp regenerates Fig. 8: ESSD IOPS ramp.
func BenchmarkFig8_EstablishRamp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig8EssdRamp(scale())
		b.ReportMetric(r.SteadyIOPS, "steady_iops")
		b.ReportMetric(r.RampSeconds, "ramp_s")
	}
}

// BenchmarkFig9_RNRFree regenerates Fig. 9: RNR counters raw vs X-RDMA.
func BenchmarkFig9_RNRFree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig9RNRCounter(scale())
		b.ReportMetric(r.RawRNRPerSec, "raw_rnr_per_s")
		b.ReportMetric(r.XRDMARNRPerSec, "xrdma_rnr_per_s")
	}
}

// BenchmarkFig10_FlowControl regenerates Fig. 10: incast bandwidth, CNPs
// and PFC pauses with and without flow control.
func BenchmarkFig10_FlowControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig10FlowControl(scale())
		b.ReportMetric(r.GoodputGbps["128KB"], "nofc_gbps")
		b.ReportMetric(r.GoodputGbps["128KB-fc"], "fc_gbps")
		b.ReportMetric(float64(r.CNPs["128KB-fc"])/float64(r.CNPs["128KB"]+1)*100, "fc_cnp_pct")
		b.ReportMetric(float64(r.PauseTX["128KB-fc"]), "fc_pause")
	}
}

// BenchmarkFig11_Upgrade regenerates Fig. 11: the online-upgrade QP ramp.
func BenchmarkFig11_Upgrade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig11OnlineUpgrade(scale())
		b.ReportMetric(r.BaseIOPS, "iops_before")
		b.ReportMetric(r.DuringIOPS, "iops_during")
	}
}

// BenchmarkFig12_AntiJitter regenerates Fig. 12: small-I/O latency through
// a bandwidth step.
func BenchmarkFig12_AntiJitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig12AntiJitter(scale(), "ESSD")
		b.ReportMetric(r.P99On, "p99_on_us")
		b.ReportMetric(r.P99Off, "p99_off_us")
	}
}

// BenchmarkQPScaling regenerates the §VII-F RNIC-cache sweep.
func BenchmarkQPScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.QPScaling(scale())
		b.ReportMetric(r.WorstPct, "worst_degradation_pct")
	}
}

// BenchmarkSRQ regenerates the §VII-F SRQ trade-off.
func BenchmarkSRQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.SRQTradeoff(scale())
		b.ReportMetric(r.SRQMemMB, "srq_mem_mb")
		b.ReportMetric(r.PerChannelMemMB, "perchan_mem_mb")
		b.ReportMetric(float64(r.SRQRNRs), "srq_rnrs")
	}
}

// BenchmarkMemoryModes regenerates the §VII-F registration-mode table.
func BenchmarkMemoryModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.MemoryModes(scale())
		b.ReportMetric(r.RegCostMS[0], "noncont_reg_ms")
		b.ReportMetric(r.RegCostMS[1], "cont_reg_ms")
		b.ReportMetric(r.RegCostMS[2], "hugepage_reg_ms")
	}
}

// BenchmarkMixedFootprint regenerates the §VII-A memory-footprint claim
// (large path needs 1–10% of small-mode memory).
func BenchmarkMixedFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.MixedFootprint(scale())
		b.ReportMetric(r.RatioPct[len(r.RatioPct)-1], "mixed_vs_small_pct")
	}
}

// BenchmarkPeakStress regenerates the §VII peak-throughput stress run.
func BenchmarkPeakStress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.PeakStress(scale())
		b.ReportMetric(r.AggregateOpsPerSec/1e6, "mops")
		b.ReportMetric(float64(r.Errors+r.RNRs+r.Broken), "exceptions")
	}
}

// BenchmarkFig3_Diurnal regenerates the Fig. 3 context plot.
func BenchmarkFig3_Diurnal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Fig3Diurnal(scale())
		b.ReportMetric(r.PeakGbps, "peak_gbps")
		b.ReportMetric(r.TroughGbps, "trough_gbps")
	}
}

// BenchmarkFragmentSweep runs the DESIGN.md ablation on fragment size.
func BenchmarkFragmentSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.FragmentSweep(scale())
		b.ReportMetric(r.Goodput[1], "frag64k_gbps")
	}
}

// Package workload provides the traffic generators and application models
// used by the evaluation: Poisson open-loop and fixed-depth closed-loop
// request drivers, mice/elephant size mixes (§VI-B XR-Perf), and scaled
// models of the three production systems of §II-C — Pangu's block→chunk
// replication (the incast source), ESSD's virtual-machine front-ends, and
// X-DB's query mix.
package workload

import (
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// SizeDist draws request payload sizes.
type SizeDist func(*sim.RNG) int

// Fixed always returns n.
func Fixed(n int) SizeDist { return func(*sim.RNG) int { return n } }

// Uniform draws uniformly from [lo, hi].
func Uniform(lo, hi int) SizeDist {
	return func(r *sim.RNG) int { return lo + r.Intn(hi-lo+1) }
}

// MiceElephants mixes small (mice) and large (elephant) flows — the
// XR-Perf flow-model knob of §VI-B.
func MiceElephants(mice, elephant int, elephantFrac float64) SizeDist {
	return func(r *sim.RNG) int {
		if r.Float64() < elephantFrac {
			return elephant
		}
		return mice
	}
}

// Result is one completed request observation.
type Result struct {
	Latency sim.Duration
	Size    int
	Err     error
}

// OpenLoop issues requests with exponential inter-arrival times,
// regardless of completions — the saturating/unsaturating pattern of
// Fig. 3.
type OpenLoop struct {
	Ch       *xrdma.Channel
	Mean     sim.Duration // mean inter-arrival
	Sizes    SizeDist
	OnResult func(Result)

	rng     *sim.RNG
	eng     *sim.Engine
	running bool
	Issued  int64
	Done    int64
}

// NewOpenLoop builds a generator (call Start to begin).
func NewOpenLoop(ch *xrdma.Channel, mean sim.Duration, sizes SizeDist, seed uint64) *OpenLoop {
	return &OpenLoop{Ch: ch, Mean: mean, Sizes: sizes, rng: sim.NewRNG(seed), eng: ch.Context().Engine()}
}

// Start begins issuing; Stop halts after in-flight requests complete.
func (g *OpenLoop) Start() {
	if g.running {
		return
	}
	g.running = true
	g.tick()
}

// Stop halts new issues.
func (g *OpenLoop) Stop() { g.running = false }

// SetMean retargets the arrival rate (load steps in Fig. 12).
func (g *OpenLoop) SetMean(mean sim.Duration) { g.Mean = mean }

func (g *OpenLoop) tick() {
	if !g.running {
		return
	}
	g.eng.AfterBg(g.rng.Exp(g.Mean), func() {
		if !g.running || g.Ch.Closed() {
			return
		}
		g.issue()
		g.tick()
	})
}

func (g *OpenLoop) issue() {
	size := g.Sizes(g.rng)
	start := g.eng.Now()
	g.Issued++
	g.Ch.SendMsg(nil, size, func(m *xrdma.Msg, err error) {
		g.Done++
		if g.OnResult != nil {
			g.OnResult(Result{Latency: g.eng.Now().Sub(start), Size: size, Err: err})
		}
	})
}

// ClosedLoop keeps Depth requests outstanding on a channel — the
// queue-depth-driven I/O model of ESSD front-ends.
type ClosedLoop struct {
	Ch       *xrdma.Channel
	Depth    int
	Sizes    SizeDist
	OnResult func(Result)

	rng     *sim.RNG
	eng     *sim.Engine
	running bool
	Done    int64
}

// NewClosedLoop builds a fixed-depth driver.
func NewClosedLoop(ch *xrdma.Channel, depth int, sizes SizeDist, seed uint64) *ClosedLoop {
	return &ClosedLoop{Ch: ch, Depth: depth, Sizes: sizes, rng: sim.NewRNG(seed), eng: ch.Context().Engine()}
}

// Start primes Depth requests.
func (g *ClosedLoop) Start() {
	if g.running {
		return
	}
	g.running = true
	for i := 0; i < g.Depth; i++ {
		g.issue()
	}
}

// Stop lets outstanding requests drain without replacement.
func (g *ClosedLoop) Stop() { g.running = false }

func (g *ClosedLoop) issue() {
	if !g.running || g.Ch.Closed() {
		return
	}
	size := g.Sizes(g.rng)
	start := g.eng.Now()
	g.Ch.SendMsg(nil, size, func(m *xrdma.Msg, err error) {
		g.Done++
		if g.OnResult != nil {
			g.OnResult(Result{Latency: g.eng.Now().Sub(start), Size: size, Err: err})
		}
		g.issue()
	})
}

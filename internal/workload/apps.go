package workload

import (
	"xrdma/internal/cluster"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// Pangu models the distributed file system of §II-C: block servers accept
// front-end writes and replicate each to Replicas chunk servers over
// full-mesh X-RDMA channels; the write acks when every replica lands.
// This fan-out is the incast traffic pattern the paper's flow control
// targets.
type Pangu struct {
	Cluster      *cluster.Cluster
	BlockServers []int
	ChunkServers []int
	Replicas     int

	// StorageLatency models the chunk server's local write (NVMe-ish).
	StorageLatency sim.Duration

	// chans[b][c] is block server b's channel to chunk server c.
	chans map[int]map[int]*xrdma.Channel
	ready bool

	// Counters.
	Writes    int64
	Replicas2 int64 // replica messages issued
}

// PanguPort is the CM port chunk servers listen on.
const PanguPort = 7100

// NewPangu wires the replication mesh; run the engine until Ready().
func NewPangu(c *cluster.Cluster, blocks, chunks []int, replicas int) *Pangu {
	p := &Pangu{
		Cluster: c, BlockServers: blocks, ChunkServers: chunks,
		Replicas: replicas, StorageLatency: 15 * sim.Microsecond,
		chans: make(map[int]map[int]*xrdma.Channel),
	}
	// Chunk servers: storage write handler.
	for _, cs := range chunks {
		node := c.Nodes[cs]
		node.Ctx.OnChannel(func(ch *xrdma.Channel) {
			ch.OnMessage(func(m *xrdma.Msg) {
				c.Eng.After(p.StorageLatency, func() { m.Reply(nil, 8) })
			})
		})
		if err := node.Ctx.Listen(PanguPort); err != nil {
			panic(err)
		}
	}
	// Block servers: full mesh to every chunk server.
	var pairs [][2]int
	var index [][2]int
	for _, bs := range blocks {
		p.chans[bs] = make(map[int]*xrdma.Channel)
		for _, cs := range chunks {
			pairs = append(pairs, [2]int{bs, cs})
			index = append(index, [2]int{bs, cs})
		}
	}
	c.ConnectPairs(pairs, PanguPort, func(chs []*xrdma.Channel) {
		for i, ch := range chs {
			p.chans[index[i][0]][index[i][1]] = ch
		}
		p.ready = true
	})
	return p
}

// Ready reports whether the replication mesh is established.
func (p *Pangu) Ready() bool { return p.ready }

// Channel exposes the block→chunk channel (diagnostics).
func (p *Pangu) Channel(block, chunk int) *xrdma.Channel { return p.chans[block][chunk] }

// Write replicates size bytes from a block server to Replicas chunk
// servers (round-robin placement by write count) and calls done when all
// replicas ack.
func (p *Pangu) Write(block int, size int, done func(err error)) {
	p.Writes++
	start := int(p.Writes) % len(p.ChunkServers)
	remaining := p.Replicas
	var failed error
	for r := 0; r < p.Replicas; r++ {
		cs := p.ChunkServers[(start+r)%len(p.ChunkServers)]
		ch := p.chans[block][cs]
		p.Replicas2++
		ch.SendMsg(nil, size, func(m *xrdma.Msg, err error) {
			if err != nil && failed == nil {
				failed = err
			}
			remaining--
			if remaining == 0 && done != nil {
				done(failed)
			}
		})
	}
}

// ESSD models the elastic block-storage front end: VMs running fixed
// queue-depth write streams into Pangu block servers (§VII-C measures its
// aggregate IOPS; Fig. 8 plots the ramp after a connection storm).
type ESSD struct {
	Pangu   *Pangu
	Payload int
	Depth   int // outstanding writes per VM stream

	Completed int64
	running   bool
}

// NewESSD attaches a front end issuing Payload-sized writes.
func NewESSD(p *Pangu, payload, depth int) *ESSD {
	return &ESSD{Pangu: p, Payload: payload, Depth: depth}
}

// Start launches one closed-loop stream per block server.
func (e *ESSD) Start(onComplete func(block int, lat sim.Duration)) {
	e.running = true
	eng := e.Pangu.Cluster.Eng
	for _, bs := range e.Pangu.BlockServers {
		bs := bs
		for d := 0; d < e.Depth; d++ {
			var issue func()
			issue = func() {
				if !e.running {
					return
				}
				start := eng.Now()
				e.Pangu.Write(bs, e.Payload, func(err error) {
					if err == nil {
						e.Completed++
						if onComplete != nil {
							onComplete(bs, eng.Now().Sub(start))
						}
					}
					issue()
				})
			}
			issue()
		}
	}
}

// Stop drains the streams.
func (e *ESSD) Stop() { e.running = false }

// XDBProfile is the X-DB query mix: mostly small point queries with a
// tail of larger scans (result sets above the 4 KB threshold exercise the
// large-message path).
func XDBProfile() SizeDist {
	return func(r *sim.RNG) int {
		switch {
		case r.Float64() < 0.85:
			return 256 + r.Intn(512) // point query
		case r.Float64() < 0.7:
			return 4 << 10 // medium row batch
		default:
			return 32 << 10 // scan chunk
		}
	}
}

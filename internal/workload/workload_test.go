package workload

import (
	"testing"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

func TestSizeDists(t *testing.T) {
	r := sim.NewRNG(1)
	if Fixed(128)(r) != 128 {
		t.Fatal("Fixed broken")
	}
	for i := 0; i < 1000; i++ {
		v := Uniform(10, 20)(r)
		if v < 10 || v > 20 {
			t.Fatalf("Uniform out of range: %d", v)
		}
	}
	d := MiceElephants(100, 100000, 0.3)
	large := 0
	for i := 0; i < 10000; i++ {
		if d(r) == 100000 {
			large++
		}
	}
	if large < 2700 || large > 3300 {
		t.Fatalf("elephant fraction off: %d/10000", large)
	}
}

func pairWorld(t testing.TB) (*cluster.Cluster, *xrdma.Channel) {
	t.Helper()
	c := cluster.New(cluster.Options{Topology: fabric.SmallClos(), Nodes: 2})
	c.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 32) })
	})
	var ch *xrdma.Channel
	c.Connect(0, 1, 7000, func(cch *xrdma.Channel, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ch = cch
	})
	c.Eng.Run()
	if ch == nil {
		t.Fatal("no channel")
	}
	return c, ch
}

func TestOpenLoopRate(t *testing.T) {
	c, ch := pairWorld(t)
	var lats []sim.Duration
	g := NewOpenLoop(ch, 100*sim.Microsecond, Fixed(256), 9)
	g.OnResult = func(r Result) {
		if r.Err == nil {
			lats = append(lats, r.Latency)
		}
	}
	g.Start()
	c.Eng.RunFor(100 * sim.Millisecond)
	g.Stop()
	c.Eng.RunFor(10 * sim.Millisecond)
	// ~1000 arrivals expected in 100ms at 100µs mean.
	if g.Issued < 800 || g.Issued > 1200 {
		t.Fatalf("open loop issued %d, want ≈1000", g.Issued)
	}
	if int64(len(lats)) != g.Done || g.Done < g.Issued-5 {
		t.Fatalf("done=%d issued=%d lats=%d", g.Done, g.Issued, len(lats))
	}
	for _, l := range lats {
		if l <= 0 {
			t.Fatal("non-positive latency")
		}
	}
}

func TestClosedLoopDepth(t *testing.T) {
	c, ch := pairWorld(t)
	g := NewClosedLoop(ch, 8, Fixed(512), 5)
	g.Start()
	c.Eng.RunFor(10 * sim.Millisecond)
	g.Stop()
	c.Eng.Run()
	if g.Done < 100 {
		t.Fatalf("closed loop completed only %d", g.Done)
	}
	// With the loop stopped everything drains.
	if ch.Inflight() != 0 {
		t.Fatalf("requests still inflight after stop: %d", ch.Inflight())
	}
}

func TestPanguReplication(t *testing.T) {
	c := cluster.New(cluster.Options{Topology: fabric.SmallClos()})
	p := NewPangu(c, []int{0, 1}, []int{4, 5, 6}, 3)
	c.Eng.Run()
	if !p.Ready() {
		t.Fatal("pangu mesh not ready")
	}
	done := 0
	for i := 0; i < 20; i++ {
		p.Write(0, 128<<10, func(err error) {
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			done++
		})
	}
	c.Eng.Run()
	if done != 20 {
		t.Fatalf("writes completed %d/20", done)
	}
	if p.Replicas2 != 60 {
		t.Fatalf("replica messages = %d, want 60", p.Replicas2)
	}
}

func TestESSDThroughput(t *testing.T) {
	c := cluster.New(cluster.Options{Topology: fabric.SmallClos()})
	p := NewPangu(c, []int{0, 1}, []int{4, 5, 6, 7}, 2)
	c.Eng.Run()
	e := NewESSD(p, 128<<10, 4)
	var lat sim.Summary
	e.Start(func(block int, l sim.Duration) { lat.AddDuration(l) })
	c.Eng.RunFor(50 * sim.Millisecond)
	e.Stop()
	c.Eng.Run()
	if e.Completed < 50 {
		t.Fatalf("ESSD completed only %d writes", e.Completed)
	}
	iops := float64(e.Completed) / 0.05
	t.Logf("ESSD: %d writes (%.0f IOPS), mean %.1fµs P99 %.1fµs",
		e.Completed, iops, lat.Mean(), lat.Percentile(99))
	if lat.Percentile(99) <= 0 {
		t.Fatal("latency summary empty")
	}
}

func TestXDBProfileShape(t *testing.T) {
	r := sim.NewRNG(3)
	d := XDBProfile()
	small, big := 0, 0
	for i := 0; i < 10000; i++ {
		v := d(r)
		if v <= 1024 {
			small++
		}
		if v > 4096 {
			big++
		}
	}
	if small < 8000 {
		t.Fatalf("point queries %d/10000, want ≥80%%", small)
	}
	if big == 0 {
		t.Fatal("no scans generated")
	}
}

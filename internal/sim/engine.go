// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every other subsystem in this repository — the fabric, the RNIC model,
// the X-RDMA middleware and the workload generators — runs on top of a
// single Engine. Time is virtual (nanosecond resolution) and advances only
// when events fire, so experiments covering simulated minutes complete in
// real milliseconds and are bit-for-bit reproducible for a given seed.
//
// The scheduler is built for throughput: a monomorphic 4-ary min-heap of
// *event nodes (no interface boxing, inlined sift operations) plus an
// engine-owned free-list, so the steady-state schedule→fire cycle performs
// zero heap allocations. Event handles are values carrying a generation
// counter, which keeps Pending/Cancel safe even after the underlying node
// has been recycled for a later event.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in simulated time, in nanoseconds since engine start.
type Time int64

// Duration is a span of simulated time, in nanoseconds. It is
// layout-compatible with time.Duration so the usual constants
// (time.Microsecond etc.) convert directly.
type Duration int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Dur converts a time.Duration into a sim Duration.
func Dur(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the duration in (fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports the duration in (fractional) microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Std converts a sim Duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (t Time) String() string { return Duration(t).String() }

func (d Duration) String() string {
	return time.Duration(d).String()
}

// event is a pooled scheduler node. Nodes are owned by the engine: they
// return to the free-list when they fire or are cancelled, and gen
// increments on every release so stale Event handles can detect reuse.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same instant
	fn  func()
	idx int32 // heap index; -1 while not queued
	gen uint64
	bg  bool // background: does not keep Run alive
}

// Event is a handle to a scheduled callback. Events are single-shot;
// cancelling an already-fired or already-cancelled event is a no-op. The
// zero Event is valid and never pending.
type Event struct {
	n   *event
	gen uint64
}

// Pending reports whether the event is still scheduled. A handle whose
// underlying node has fired, been cancelled, or been recycled for a later
// event reports false.
func (ev Event) Pending() bool {
	return ev.n != nil && ev.n.gen == ev.gen && ev.n.idx >= 0
}

// At reports when the event will fire. Zero once no longer pending.
func (ev Event) At() Time {
	if ev.Pending() {
		return ev.n.at
	}
	return 0
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the simulation model is run-to-complete, which mirrors
// X-RDMA's own thread model (one context per thread, no cross-thread
// synchronization on the data plane). Independent Engines are fully
// isolated, so separate experiments may run on separate goroutines.
type Engine struct {
	now     Time
	seq     uint64
	heap    []*event
	free    []*event
	stopped bool
	fired   uint64
	nonBg   int // foreground events pending

	aux map[any]any
}

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// Aux returns the engine-scoped value stored under key, or nil. Model
// packages use this to attach per-engine free-lists (packet pools, header
// pools) without global registries, keeping parallel experiments isolated.
func (e *Engine) Aux(key any) any {
	if e.aux == nil {
		return nil
	}
	return e.aux[key]
}

// SetAux stores an engine-scoped value under key.
func (e *Engine) SetAux(key, val any) {
	if e.aux == nil {
		e.aux = make(map[any]any)
	}
	e.aux[key] = val
}

// AuxInit returns the value stored under key, calling mk and storing its
// result on first use. This is the attachment hook for engine-keyed
// subsystems — the telemetry Set in particular — that must exist exactly
// once per engine regardless of which layer reaches for it first.
func (e *Engine) AuxInit(key any, mk func() any) any {
	if v := e.Aux(key); v != nil {
		return v
	}
	v := mk()
	e.SetAux(key, v)
	return v
}

// alloc takes a node from the free-list (or the heap allocator on a cold
// start) and stamps it with a fresh sequence number.
func (e *Engine) alloc(at Time, fn func()) *event {
	var n *event
	if k := len(e.free) - 1; k >= 0 {
		n = e.free[k]
		e.free[k] = nil
		e.free = e.free[:k]
	} else {
		n = &event{}
	}
	n.at = at
	n.seq = e.seq
	n.fn = fn
	n.bg = false
	e.seq++
	return n
}

// release invalidates all outstanding handles to n and returns it to the
// free-list.
func (e *Engine) release(n *event) {
	n.fn = nil
	n.idx = -1
	n.gen++
	e.free = append(e.free, n)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality, which is always a model bug.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	n := e.alloc(t, fn)
	e.nonBg++
	e.push(n)
	return Event{n: n, gen: n.gen}
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) Event {
	return e.At(e.now.Add(d), fn)
}

// AfterBg schedules a background event: it fires like any other event,
// but pending background events alone do not keep Run alive. Recurring
// maintenance timers (keepalive scans, statistics sampling) use this so a
// simulation with no real work left can drain.
func (e *Engine) AfterBg(d Duration, fn func()) Event {
	ev := e.At(e.now.Add(d), fn)
	ev.n.bg = true
	e.nonBg--
	return ev
}

// Cancel removes a pending event. Safe on the zero Event and on handles
// whose event has already fired, been cancelled, or been recycled.
func (e *Engine) Cancel(ev Event) {
	n := ev.n
	if n == nil || n.gen != ev.gen || n.idx < 0 {
		return
	}
	e.remove(int(n.idx))
	if !n.bg {
		e.nonBg--
	}
	e.release(n)
}

// Step fires the earliest pending event. It reports false when no events
// remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	n := e.popMin()
	e.now = n.at
	fn := n.fn
	if !n.bg {
		e.nonBg--
	}
	e.fired++
	// Release before dispatch: the node is reusable by anything fn
	// schedules, and handles to it already report not-pending.
	e.release(n)
	if fn != nil {
		fn()
	}
	return true
}

// Run processes events until no foreground events remain or Stop is
// called. Background maintenance timers left in the queue do not prolong
// the run.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.nonBg > 0 && e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to exactly t (even if the queue drained earlier).
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// MaxTime is the largest representable simulation instant.
const MaxTime = Time(math.MaxInt64)

// --- 4-ary min-heap -------------------------------------------------------
//
// A 4-ary layout halves the tree depth versus a binary heap, trading a few
// extra comparisons per level for far fewer cache-missing levels — the
// winning trade for the pop-heavy workload of a discrete-event loop. Order
// is (at, seq): earliest deadline first, FIFO within an instant.

func (e *Engine) push(n *event) {
	e.heap = append(e.heap, n)
	e.siftUp(len(e.heap)-1, n)
}

func (e *Engine) popMin() *event {
	h := e.heap
	last := len(h) - 1
	root := h[0]
	tail := h[last]
	h[last] = nil
	e.heap = h[:last]
	if last > 0 {
		e.siftDown(0, tail)
	}
	root.idx = -1
	return root
}

// remove extracts the node at heap index i.
func (e *Engine) remove(i int) {
	h := e.heap
	last := len(h) - 1
	n := h[i]
	tail := h[last]
	h[last] = nil
	e.heap = h[:last]
	if i < last {
		e.siftDown(i, tail)
		if int(tail.idx) == i {
			e.siftUp(i, tail)
		}
	}
	n.idx = -1
}

// siftUp places n at index i or above. n need not currently be in the
// slice at i; the final slot is written exactly once.
func (e *Engine) siftUp(i int, n *event) {
	h := e.heap
	for i > 0 {
		p := (i - 1) >> 2
		pn := h[p]
		if pn.at < n.at || (pn.at == n.at && pn.seq <= n.seq) {
			break
		}
		h[i] = pn
		pn.idx = int32(i)
		i = p
	}
	h[i] = n
	n.idx = int32(i)
}

// siftDown places n at index i or below.
func (e *Engine) siftDown(i int, n *event) {
	h := e.heap
	size := len(h)
	for {
		c := i<<2 + 1
		if c >= size {
			break
		}
		// Smallest of up to four children.
		m, mn := c, h[c]
		end := c + 4
		if end > size {
			end = size
		}
		for j := c + 1; j < end; j++ {
			cn := h[j]
			if cn.at < mn.at || (cn.at == mn.at && cn.seq < mn.seq) {
				m, mn = j, cn
			}
		}
		if n.at < mn.at || (n.at == mn.at && n.seq <= mn.seq) {
			break
		}
		h[i] = mn
		mn.idx = int32(i)
		i = m
	}
	h[i] = n
	n.idx = int32(i)
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every other subsystem in this repository — the fabric, the RNIC model,
// the X-RDMA middleware and the workload generators — runs on top of a
// single Engine. Time is virtual (nanosecond resolution) and advances only
// when events fire, so experiments covering simulated minutes complete in
// real milliseconds and are bit-for-bit reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in simulated time, in nanoseconds since engine start.
type Time int64

// Duration is a span of simulated time, in nanoseconds. It is
// layout-compatible with time.Duration so the usual constants
// (time.Microsecond etc.) convert directly.
type Duration int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Dur converts a time.Duration into a sim Duration.
func Dur(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the duration in (fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports the duration in (fractional) microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Std converts a sim Duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (t Time) String() string { return Duration(t).String() }

func (d Duration) String() string {
	return time.Duration(d).String()
}

// Event is a scheduled callback. Events are single-shot; cancelling an
// already-fired or already-cancelled event is a no-op.
type Event struct {
	at    Time
	seq   uint64 // FIFO tie-break for events at the same instant
	index int    // heap index; -1 once fired or cancelled
	bg    bool   // background: does not keep Run alive
	fn    func()
}

// At reports when the event will fire.
func (e *Event) At() Time { return e.at }

// Pending reports whether the event is still scheduled.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the simulation model is run-to-complete, which mirrors
// X-RDMA's own thread model (one context per thread, no cross-thread
// synchronization on the data plane).
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
	nonBg   int // foreground events pending
}

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are currently scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality, which is always a model bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	e.nonBg++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	return e.At(e.now.Add(d), fn)
}

// AfterBg schedules a background event: it fires like any other event,
// but pending background events alone do not keep Run alive. Recurring
// maintenance timers (keepalive scans, statistics sampling) use this so a
// simulation with no real work left can drain.
func (e *Engine) AfterBg(d Duration, fn func()) *Event {
	ev := e.At(e.now.Add(d), fn)
	ev.bg = true
	e.nonBg--
	return ev
}

// Cancel removes a pending event. Safe on nil, fired, or cancelled events.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.events, ev.index)
	ev.fn = nil
	if !ev.bg {
		e.nonBg--
	}
}

// Step fires the earliest pending event. It reports false when no events
// remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	if !ev.bg {
		e.nonBg--
	}
	e.fired++
	if fn != nil {
		fn()
	}
	return true
}

// Run processes events until no foreground events remain or Stop is
// called. Background maintenance timers left in the queue do not prolong
// the run.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.nonBg > 0 && e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to exactly t (even if the queue drained earlier).
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// MaxTime is the largest representable simulation instant.
const MaxTime = Time(math.MaxInt64)

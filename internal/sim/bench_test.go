package sim

import "testing"

// BenchmarkEngineSchedule measures the steady-state schedule→fire cycle:
// a fixed-size event population where every fired event schedules its
// successor. This is the kernel's hot path — every packet hop, timer and
// completion in the simulator goes through exactly this cycle.
func BenchmarkEngineSchedule(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		b.Run(benchName("depth", depth), func(b *testing.B) {
			e := NewEngine()
			var tick func()
			tick = func() { e.After(100, tick) }
			for i := 0; i < depth; i++ {
				e.After(Duration(i), tick)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// BenchmarkEngineChurn measures the schedule+cancel pattern that dominates
// timer-heavy models (RTO re-arming, ack coalescing): each iteration
// schedules two events, cancels one, and fires the other.
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine()
	// A standing population so cancels hit mid-heap, not the root.
	for i := 0; i < 64; i++ {
		e.After(Duration(1_000_000+i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keep := e.After(10, func() {})
		drop := e.After(500, func() {})
		e.Cancel(drop)
		_ = keep
		e.Step()
	}
}

func benchName(k string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return k + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return k + "=" + string(buf[i:])
}

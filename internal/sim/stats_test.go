package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary()
	if s.Mean() != 0 || s.Percentile(50) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary should report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Fatalf("P50 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
}

func TestSummaryAddAfterPercentile(t *testing.T) {
	s := NewSummary()
	s.Add(10)
	s.Add(20)
	_ = s.Percentile(50) // forces sort
	s.Add(1)
	if got := s.Percentile(1); got != 1 {
		t.Fatalf("P1 after re-add = %v, want 1", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestSummaryPercentileProperty(t *testing.T) {
	prop := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewSummary()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		prev := math.Inf(-1)
		for p := 1.0; p <= 100; p += 7 {
			q := s.Percentile(p)
			if q < prev || q < s.Min() || q > s.Max() {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: nearest-rank percentile matches a reference implementation.
func TestSummaryPercentileReference(t *testing.T) {
	prop := func(vals []float64, pRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p := float64(pRaw%100) + 1
		s := NewSummary()
		for _, v := range vals {
			s.Add(v)
		}
		ref := append([]float64(nil), vals...)
		sort.Float64s(ref)
		rank := int(math.Ceil(p / 100 * float64(len(ref))))
		if rank < 1 {
			rank = 1
		}
		return s.Percentile(p) == ref[rank-1]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryStddev(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.Tail(0.5) != 0 {
		t.Fatal("empty series should report zeros")
	}
	for i := 1; i <= 10; i++ {
		s.Append(Time(i), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Mean() != 5.5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Max() != 10 || s.Min() != 1 {
		t.Fatalf("Max/Min = %v/%v", s.Max(), s.Min())
	}
	// Tail(0.2) = mean of last 2 points = 9.5
	if got := s.Tail(0.2); got != 9.5 {
		t.Fatalf("Tail(0.2) = %v, want 9.5", got)
	}
}

func TestRateBucketing(t *testing.T) {
	e := NewEngine()
	var out Series
	r := NewRate(e, 100, &out)
	// 3 events in window [0,100), 2 in [100,200), none in [200,300).
	e.At(10, func() { r.Add(1) })
	e.At(20, func() { r.Add(2) })
	e.At(150, func() { r.Add(2) })
	e.At(310, func() { r.Add(1) })
	e.Run()
	r.Flush()
	want := []float64{3, 2, 0, 1}
	if len(out.Values) != len(want) {
		t.Fatalf("buckets = %v, want %v", out.Values, want)
	}
	for i := range want {
		if out.Values[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", out.Values, want)
		}
	}
	if out.Times[1] != 100 || out.Times[3] != 300 {
		t.Fatalf("bucket times = %v", out.Times)
	}
}

func TestSummaryCapNoGrowth(t *testing.T) {
	s := NewSummaryCap(100)
	if s.Count() != 0 || s.Mean() != 0 {
		t.Fatal("pre-sized summary should start empty")
	}
	allocs := testing.AllocsPerRun(10, func() {
		s.samples = s.samples[:0]
		s.sum, s.min, s.max = 0, math.Inf(1), math.Inf(-1)
		for i := 0; i < 100; i++ {
			s.Add(float64(i))
		}
	})
	if allocs != 0 {
		t.Errorf("Add within cap allocated %.0f times per run", allocs)
	}
	if s.Count() != 100 || s.Min() != 0 || s.Max() != 99 {
		t.Errorf("Count=%d Min=%v Max=%v", s.Count(), s.Min(), s.Max())
	}
}

package sim

import (
	"math"
	"sort"
)

// Summary accumulates scalar samples and answers mean/percentile queries.
// It keeps every sample; experiment populations here are small enough
// (≤ a few million) that exactness beats sketching.
type Summary struct {
	samples []float64
	sorted  bool
	sum     float64
	min     float64
	max     float64
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{min: math.Inf(1), max: math.Inf(-1)}
}

// NewSummaryCap returns an empty summary pre-sized for n samples, so a
// harness that knows its sample count up front (e.g. a fixed-iteration
// benchmark loop) takes no append-growth allocations while recording.
func NewSummaryCap(n int) *Summary {
	s := NewSummary()
	if n > 0 {
		s.samples = make([]float64, 0, n)
	}
	return s
}

// Add records one sample.
func (s *Summary) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

// AddDuration records a duration sample in microseconds.
func (s *Summary) AddDuration(d Duration) { s.Add(d.Micros()) }

// Count reports the number of samples.
func (s *Summary) Count() int { return len(s.samples) }

// Mean reports the arithmetic mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min reports the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.min
}

// Max reports the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.max
}

// Percentile reports the p-th percentile (0 < p <= 100) using
// nearest-rank, or 0 with no samples.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s.samples[rank-1]
}

// Stddev reports the population standard deviation.
func (s *Summary) Stddev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Series is a time series of (t, value) points, used for the
// bandwidth/latency/counter-over-time figures.
type Series struct {
	Name   string
	Times  []Time
	Values []float64
}

// Append adds one point.
func (s *Series) Append(t Time, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.Values) }

// Mean reports the mean of the values, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Max reports the largest value, or 0 when empty.
func (s *Series) Max() float64 {
	var m float64
	for i, v := range s.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Min reports the smallest value, or 0 when empty.
func (s *Series) Min() float64 {
	var m float64
	for i, v := range s.Values {
		if i == 0 || v < m {
			m = v
		}
	}
	return m
}

// Tail returns the mean of the last frac (0..1] of the points — the
// steady-state portion of a ramp-up series.
func (s *Series) Tail(frac float64) float64 {
	n := len(s.Values)
	if n == 0 {
		return 0
	}
	start := n - int(float64(n)*frac)
	if start < 0 {
		start = 0
	}
	if start >= n {
		start = n - 1
	}
	var sum float64
	for _, v := range s.Values[start:] {
		sum += v
	}
	return sum / float64(n-start)
}

// Rate tracks an event counter bucketed into fixed windows, producing a
// Series of per-window rates. Used for IOPS/CNP/RNR-per-interval plots.
type Rate struct {
	eng    *Engine
	window Duration
	start  Time
	count  float64
	out    *Series
}

// NewRate creates a bucketed rate recorder writing into out.
func NewRate(eng *Engine, window Duration, out *Series) *Rate {
	return &Rate{eng: eng, window: window, start: eng.Now(), out: out}
}

// Add records n events at the current time, flushing any completed windows.
func (r *Rate) Add(n float64) {
	r.catchUp()
	r.count += n
}

func (r *Rate) catchUp() {
	for r.eng.Now() >= r.start.Add(r.window) {
		r.out.Append(r.start, r.count)
		r.count = 0
		r.start = r.start.Add(r.window)
	}
}

// Flush emits the current partial window.
func (r *Rate) Flush() {
	r.catchUp()
	r.out.Append(r.start, r.count)
	r.count = 0
}

package sim

import "math"

// RNG is a small, fast, deterministic random source (splitmix64). The
// standard library's math/rand is avoided on purpose: its global state and
// historic seeding behaviour make cross-package determinism fragile, and
// experiments must replay identically from a seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed duration with the given mean.
// Used for Poisson arrival processes in the workload generators.
func (r *RNG) Exp(mean Duration) Duration {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	d := Duration(-math.Log(u) * float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}

// Norm returns a normally distributed value (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator; handy for giving each node or
// flow its own stream without correlating sequences.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

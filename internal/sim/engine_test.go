package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(30, func() { got = append(got, 3) })
	e.After(10, func() { got = append(got, 1) })
	e.After(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(10, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending")
	}
	e.Cancel(ev)
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and nil-cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.After(Duration(10*(i+1)), func() { got = append(got, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i*100), func() { count++ })
	}
	e.RunUntil(500)
	if count != 5 {
		t.Fatalf("RunUntil(500) fired %d events, want 5", count)
	}
	if e.Now() != 500 {
		t.Fatalf("clock = %v, want 500", e.Now())
	}
	e.RunFor(200)
	if count != 7 {
		t.Fatalf("after RunFor(200) fired %d events, want 7", count)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt the loop: fired %d", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(1, recurse)
		}
	}
	e.After(1, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("nested scheduling depth = %d, want 100", depth)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
}

// Property: for any batch of (delay, id) pairs, events fire in
// nondecreasing time order and same-time events fire in submission order.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		type firing struct {
			at  Time
			seq int
		}
		var fired []firing
		for i, d := range delays {
			i := i
			at := Time(d % 64) // force collisions
			e.At(at, func() { fired = append(fired, firing{e.Now(), i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationHelpers(t *testing.T) {
	if (2 * Microsecond).Micros() != 2 {
		t.Fatal("Micros conversion wrong")
	}
	if (3 * Second).Seconds() != 3 {
		t.Fatal("Seconds conversion wrong")
	}
	if Time(5).Add(10) != 15 {
		t.Fatal("Add wrong")
	}
	if Time(15).Sub(5) != 10 {
		t.Fatal("Sub wrong")
	}
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(30, func() { got = append(got, 3) })
	e.After(10, func() { got = append(got, 1) })
	e.After(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(10, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending")
	}
	e.Cancel(ev)
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(Event{})
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	evs := make([]Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.After(Duration(10*(i+1)), func() { got = append(got, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i*100), func() { count++ })
	}
	e.RunUntil(500)
	if count != 5 {
		t.Fatalf("RunUntil(500) fired %d events, want 5", count)
	}
	if e.Now() != 500 {
		t.Fatalf("clock = %v, want 500", e.Now())
	}
	e.RunFor(200)
	if count != 7 {
		t.Fatalf("after RunFor(200) fired %d events, want 7", count)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Stop did not halt the loop: fired %d", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(1, recurse)
		}
	}
	e.After(1, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("nested scheduling depth = %d, want 100", depth)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
}

// Property: for any batch of (delay, id) pairs, events fire in
// nondecreasing time order and same-time events fire in submission order.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		type firing struct {
			at  Time
			seq int
		}
		var fired []firing
		for i, d := range delays {
			i := i
			at := Time(d % 64) // force collisions
			e.At(at, func() { fired = append(fired, firing{e.Now(), i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Cancelling a background event must undo AfterBg's nonBg compensation,
// not double-decrement it — otherwise Run would exit early (or spin) once
// foreground work remains.
func TestEngineCancelBackgroundAccounting(t *testing.T) {
	e := NewEngine()
	bg := e.AfterBg(1000, func() {})
	if e.nonBg != 0 {
		t.Fatalf("nonBg after AfterBg = %d, want 0", e.nonBg)
	}
	e.Cancel(bg)
	if e.nonBg != 0 {
		t.Fatalf("nonBg after cancelling bg event = %d, want 0", e.nonBg)
	}
	fired := false
	e.After(10, func() { fired = true })
	if e.nonBg != 1 {
		t.Fatalf("nonBg with one fg event = %d, want 1", e.nonBg)
	}
	e.Run()
	if !fired {
		t.Fatal("foreground event did not fire after bg cancel")
	}
	if e.nonBg != 0 {
		t.Fatalf("nonBg after drain = %d, want 0", e.nonBg)
	}
	// Mixed population: cancel fg and bg, drain, accounting must balance.
	fg := e.After(100, func() {})
	bg2 := e.AfterBg(100, func() {})
	e.After(50, func() {})
	e.Cancel(fg)
	e.Cancel(bg2)
	e.Run()
	if e.nonBg != 0 || e.Pending() != 0 {
		t.Fatalf("after mixed cancel: nonBg=%d pending=%d, want 0/0", e.nonBg, e.Pending())
	}
}

// Cancelling from inside a firing callback: both another pending event and
// the (already-released) firing event itself must be safe.
func TestEngineCancelInsideCallback(t *testing.T) {
	e := NewEngine()
	var fired []string
	var self, victim Event
	self = e.After(10, func() {
		fired = append(fired, "a")
		e.Cancel(self)   // self-cancel while firing: no-op
		e.Cancel(victim) // cancel a later event mid-callback
	})
	victim = e.After(20, func() { fired = append(fired, "victim") })
	e.After(30, func() { fired = append(fired, "c") })
	e.Run()
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "c" {
		t.Fatalf("fired = %v, want [a c]", fired)
	}
	if e.nonBg != 0 {
		t.Fatalf("nonBg = %d, want 0", e.nonBg)
	}
}

// A stale handle to a fired event must not cancel the unrelated event that
// recycled its node — the generation counter is what prevents it.
func TestEngineStaleHandleAfterReuse(t *testing.T) {
	e := NewEngine()
	firstFired := false
	stale := e.After(10, func() { firstFired = true })
	e.Run()
	if !firstFired || stale.Pending() {
		t.Fatal("first event should have fired and be non-pending")
	}
	// The next schedule reuses the pooled node.
	secondFired := false
	fresh := e.After(10, func() { secondFired = true })
	if !fresh.Pending() {
		t.Fatal("fresh event should be pending")
	}
	if stale.Pending() {
		t.Fatal("stale handle reports pending after node reuse")
	}
	e.Cancel(stale) // must NOT cancel the recycled event
	if !fresh.Pending() {
		t.Fatal("stale cancel killed the recycled event")
	}
	e.Run()
	if !secondFired {
		t.Fatal("recycled event did not fire")
	}
}

// FIFO ordering of same-instant events must survive node reuse: recycled
// nodes get fresh sequence numbers, never their old ones.
func TestEngineFIFOAcrossPoolReuse(t *testing.T) {
	e := NewEngine()
	const k = 32
	for round := 0; round < 5; round++ {
		var got []int
		at := e.Now().Add(100)
		// Interleave schedule/cancel so reuse order is scrambled.
		for i := 0; i < k; i++ {
			i := i
			ev := e.At(at, func() { got = append(got, -1) })
			e.Cancel(ev)
			e.At(at, func() { got = append(got, i) })
		}
		e.Run()
		if len(got) != k {
			t.Fatalf("round %d: fired %d events, want %d", round, len(got), k)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("round %d: same-instant events not FIFO after reuse: %v", round, got)
			}
		}
	}
}

// The free-list must actually be used: steady-state churn should not grow
// the live node population.
func TestEnginePoolReuse(t *testing.T) {
	e := NewEngine()
	e.After(1, func() {})
	e.Run()
	if len(e.free) != 1 {
		t.Fatalf("free-list size = %d, want 1", len(e.free))
	}
	n := e.free[0]
	ev := e.After(1, func() {})
	if ev.n != n {
		t.Fatal("schedule did not reuse the pooled node")
	}
	e.Run()
}

func TestDurationHelpers(t *testing.T) {
	if (2 * Microsecond).Micros() != 2 {
		t.Fatal("Micros conversion wrong")
	}
	if (3 * Second).Seconds() != 3 {
		t.Fatal("Seconds conversion wrong")
	}
	if Time(5).Add(10) != 15 {
		t.Fatal("Add wrong")
	}
	if Time(15).Sub(5) != 10 {
		t.Fatal("Sub wrong")
	}
}

package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	prop := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(1234)
	const buckets, n = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(55)
	const mean = 1000 * Microsecond
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		d := r.Exp(mean)
		if d < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += float64(d)
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > float64(mean)*0.05 {
		t.Fatalf("Exp mean = %v, want within 5%% of %v", Duration(got), mean)
	}
}

func TestRNGNorm(t *testing.T) {
	r := NewRNG(77)
	var sum, ss float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		ss += v * v
	}
	mean := sum / n
	stddev := math.Sqrt(ss/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(stddev-2) > 0.1 {
		t.Fatalf("Norm stddev = %v, want ~2", stddev)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(11)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams correlated: %d/100 equal", same)
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(1)
	for _, fn := range []func(){
		func() { r.Intn(0) },
		func() { r.Int63n(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on non-positive bound")
				}
			}()
			fn()
		}()
	}
}

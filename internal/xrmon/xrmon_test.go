package xrmon

import (
	"bytes"
	"strings"
	"testing"

	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// fakeNode registers a synthetic node's watch-list metrics as plain
// gauges the test can move by hand, and returns the setter.
type fakeNode struct {
	vals map[string]int64
}

func newFakeNode(t *testing.T, eng *sim.Engine, node int32, tenants []TenantRef) (*Agent, *fakeNode) {
	t.Helper()
	reg := telemetry.For(eng).Reg
	f := &fakeNode{vals: map[string]int64{}}
	nic, ctx := "rnic."+itoa(int64(node))+".", "xrdma."+itoa(int64(node))+"."
	names := NodeWatchNames(nic, ctx)
	for _, tr := range tenants {
		names = append(names, TenantWatchNames(ctx, tr.ID)...)
	}
	for _, name := range names {
		name := name
		f.vals[name] = 0
		reg.GaugeFunc(name, func() int64 { return f.vals[name] })
	}
	a := For(eng).RegisterAgent(node, nic, ctx, tenants)
	if a.Missing() != 0 {
		t.Fatalf("agent for node %d has %d unresolved probes", node, a.Missing())
	}
	return a, f
}

func (f *fakeNode) set(name string, v int64) { f.vals[name] = v }
func (f *fakeNode) add(name string, d int64) { f.vals[name] += d }

func TestAgentDeltasAndWindow(t *testing.T) {
	eng := sim.NewEngine()
	a, f := newFakeNode(t, eng, 0, nil)

	name := "rnic.0.msgs_sent"
	for i := 1; i <= 3; i++ {
		f.add(name, 10)
		a.Sample(sim.Time(i) * sim.Time(sim.Millisecond))
	}
	if d := a.Delta(SlotMsgsSent); d != 10 {
		t.Fatalf("Delta = %d, want 10", d)
	}
	if w := a.WindowSum(SlotMsgsSent); w != 30 {
		t.Fatalf("WindowSum = %d, want 30", w)
	}
	if abs := a.Abs(SlotMsgsSent); abs != 30 {
		t.Fatalf("Abs = %d, want 30", abs)
	}
	if n := a.LastN(SlotMsgsSent, 2); n != 20 {
		t.Fatalf("LastN(2) = %d, want 20", n)
	}

	// Counter reset (NIC restart) clamps to zero instead of a negative
	// rate; gauges are allowed to fall.
	f.set(name, 0)
	f.set("xrdma.0.mem_inuse", -5) // gauge relative to its prior 0
	a.Sample(4 * sim.Time(sim.Millisecond))
	if d := a.Delta(SlotMsgsSent); d != 0 {
		t.Fatalf("reset delta = %d, want clamped 0", d)
	}
	if d := a.Delta(SlotMemInUse); d != -5 {
		t.Fatalf("gauge delta = %d, want -5", d)
	}
}

// The agent ring is a hard memory bound: no matter how many ticks run,
// storage stays len(names)·Window and only Window columns are valid —
// the agent-side half of the Monitor.MaxSamples satellite.
func TestAgentRingBound(t *testing.T) {
	eng := sim.NewEngine()
	a, f := newFakeNode(t, eng, 0, nil)
	ringLen, atLen := len(a.ring), len(a.at)
	for i := 1; i <= 10000; i++ {
		f.add("rnic.0.msgs_sent", 1)
		a.Sample(sim.Time(i) * sim.Time(sim.Microsecond))
	}
	if len(a.ring) != ringLen || len(a.at) != atLen {
		t.Fatalf("ring grew: %d->%d, at %d->%d", ringLen, len(a.ring), atLen, len(a.at))
	}
	if a.Len() != Window {
		t.Fatalf("Len = %d, want Window=%d", a.Len(), Window)
	}
	if a.Samples() != 10000 {
		t.Fatalf("Samples = %d, want 10000", a.Samples())
	}
	if w := a.WindowSum(SlotMsgsSent); w != Window {
		t.Fatalf("WindowSum = %d, want %d (only the last %d deltas)", w, Window, Window)
	}
}

func TestCollectorEpochsAndIncidentLifecycle(t *testing.T) {
	eng := sim.NewEngine()
	col := For(eng)
	if For(eng) != col {
		t.Fatal("For is not engine-keyed")
	}
	a0, f0 := newFakeNode(t, eng, 0, nil)
	a1, f1 := newFakeNode(t, eng, 1, []TenantRef{{ID: 1, Label: "elephant"}})
	col.SetLocation(0, "pod0-tor0", "pod0")
	col.SetLocation(1, "pod0-tor1", "pod0")
	col.Watch(WatchConfig{})

	var transitions []string
	col.OnIncident(func(inc *Incident, ev string) {
		transitions = append(transitions, ev+":"+inc.Class.String()+":"+inc.Culprit)
	})

	ms := sim.Time(sim.Millisecond)
	tick := func(i int) {
		f0.add("rnic.0.msgs_sent", 20)
		f0.add("rnic.0.msgs_recv", 20)
		f1.add("rnic.1.msgs_sent", 20)
		f1.add("rnic.1.msgs_recv", 20)
		a0.Sample(sim.Time(i) * ms)
		a1.Sample(sim.Time(i) * ms)
	}
	// Clean warm-up: no incidents may open.
	i := 1
	for ; i <= 6; i++ {
		tick(i)
	}
	if col.Epoch() != 6 {
		t.Fatalf("epoch = %d, want 6", col.Epoch())
	}
	if len(col.Incidents()) != 0 {
		t.Fatalf("clean phase opened incidents: %v", col.Digest())
	}

	// Tenant overload on node 1: budget rejects stream in.
	for ; i <= 12; i++ {
		f1.add("xrdma.1.tenant.1.mem_rejects", 4)
		tick(i)
	}
	open := col.OpenIncidents()
	if len(open) != 1 || open[0].Class != IncTenantOverload || open[0].Culprit != "tenant:elephant@node1" {
		t.Fatalf("tenant overload not diagnosed: %v", col.Digest())
	}
	if open[0].Confidence <= 0 || len(open[0].Evidence) == 0 {
		t.Fatalf("incident lacks confidence/evidence: %+v", open[0])
	}

	// Heal: window drains, incident closes after CloseAfter quiet epochs.
	for ; i <= 30; i++ {
		tick(i)
	}
	if n := len(col.OpenIncidents()); n != 0 {
		t.Fatalf("%d incidents still open after heal: %v", n, col.Digest())
	}
	incs := col.Incidents()
	if len(incs) != 1 || !incs[0].Closed || incs[0].ClosedAt == 0 {
		t.Fatalf("incident did not close cleanly: %v", col.Digest())
	}

	// Transitions fired in order, and the digest is replay-stable.
	if len(transitions) == 0 || !strings.HasPrefix(transitions[0], "open:tenant-overload:") {
		t.Fatalf("transitions = %v", transitions)
	}
	last := transitions[len(transitions)-1]
	if !strings.HasPrefix(last, "close:tenant-overload:") {
		t.Fatalf("last transition = %q, want close", last)
	}
	d1 := strings.Join(col.Digest(), "\n")
	d2 := strings.Join(col.Digest(), "\n")
	if d1 != d2 || d1 == "" {
		t.Fatal("digest unstable or empty")
	}
}

func TestNodeDownRule(t *testing.T) {
	eng := sim.NewEngine()
	col := For(eng)
	a0, f0 := newFakeNode(t, eng, 0, nil)
	a1, f1 := newFakeNode(t, eng, 1, nil)
	col.Watch(WatchConfig{})
	ms := sim.Time(sim.Millisecond)
	i := 1
	for ; i <= 6; i++ { // both active
		f0.add("rnic.0.msgs_sent", 10)
		f1.add("rnic.1.msgs_sent", 10)
		a0.Sample(sim.Time(i) * ms)
		a1.Sample(sim.Time(i) * ms)
	}
	// Node 1 flatlines; node 0 notices keepalive failures.
	for ; i <= 12; i++ {
		f0.add("rnic.0.msgs_sent", 10)
		if i == 8 {
			f0.add("xrdma.0.keepalive_fails", 1)
		}
		a0.Sample(sim.Time(i) * ms)
		a1.Sample(sim.Time(i) * ms)
	}
	open := col.OpenIncidents()
	if len(open) != 1 || open[0].Class != IncNodeDown || open[0].Culprit != "node1" {
		t.Fatalf("node-down not diagnosed: %v", col.Digest())
	}
	// The flatline alone keeps it open even after the keepalive window
	// drains (peers' counters freeze once their channels break).
	for ; i <= 40; i++ {
		f0.add("rnic.0.msgs_sent", 10)
		a0.Sample(sim.Time(i) * ms)
		a1.Sample(sim.Time(i) * ms)
	}
	if len(col.OpenIncidents()) != 1 {
		t.Fatalf("node-down closed while the node is still down: %v", col.Digest())
	}
}

func TestTopKDeterministic(t *testing.T) {
	eng := sim.NewEngine()
	col := For(eng)
	agents := make([]*Agent, 4)
	fakes := make([]*fakeNode, 4)
	for n := range agents {
		agents[n], fakes[n] = newFakeNode(t, eng, int32(n), nil)
	}
	for n := range agents {
		fakes[n].add("rnic."+itoa(int64(n))+".bytes_sent", int64(100*(n+1)))
		agents[n].Sample(sim.Time(sim.Millisecond))
	}
	top := col.TopK(SlotBytesSent, 2)
	if len(top) != 2 || top[0].Node != 3 || top[1].Node != 2 {
		t.Fatalf("TopK = %v", top)
	}
	// Ties break on registration order.
	for n := range agents {
		fakes[n].add("rnic."+itoa(int64(n))+".retransmits", 5)
		agents[n].Sample(2 * sim.Time(sim.Millisecond))
	}
	tied := col.TopK(SlotRetx, 3)
	if tied[0].Node != 0 || tied[1].Node != 1 || tied[2].Node != 2 {
		t.Fatalf("tie order = %v", tied)
	}
}

func TestExports(t *testing.T) {
	eng := sim.NewEngine()
	col := For(eng)
	a, f := newFakeNode(t, eng, 0, []TenantRef{{ID: 1, Label: "app"}})
	col.Watch(WatchConfig{})
	for i := 1; i <= 8; i++ {
		f.add("rnic.0.msgs_sent", 10)
		a.Sample(sim.Time(i) * sim.Time(sim.Millisecond))
	}
	var buf bytes.Buffer
	if err := col.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"epoch": 8`) {
		t.Fatalf("JSON export lacks epoch: %s", buf.String())
	}
	buf.Reset()
	if err := col.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, frag := range []string{"xrmon_epochs 8", "xrmon_agents 1", "xrmon_incidents_open 0", `xrmon_node_window{node="0",metric="msgs_sent"}`} {
		if !strings.Contains(expo, frag) {
			t.Fatalf("prometheus export lacks %q:\n%s", frag, expo)
		}
	}
	tbl := col.FleetTable()
	if !strings.Contains(tbl, "NODE") || !strings.Contains(tbl, "fleet: epoch=8") {
		t.Fatalf("fleet table malformed:\n%s", tbl)
	}
}

package xrmon

import (
	"testing"

	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// BenchmarkAgentSample times one agent tick — the cost the fleet plane
// adds to every context housekeeping cycle. The CI kernel gate pins
// allocs/op to 0: probes are pre-resolved, the delta ring is
// preallocated, and epoch close-out (fleet sample + baseline folds) is
// pure arithmetic.
func BenchmarkAgentSample(b *testing.B) {
	eng := sim.NewEngine()
	reg := telemetry.For(eng).Reg
	var live [64]int64
	k := 0
	mk := func(name string) {
		v := &live[k%len(live)]
		k++
		reg.GaugeFunc(name, func() int64 { return *v })
	}
	for _, name := range NodeWatchNames("rnic.0.", "xrdma.0.") {
		mk(name)
	}
	for _, name := range TenantWatchNames("xrdma.0.", 1) {
		mk(name)
	}
	for _, name := range FleetWatchNames() {
		mk(name)
	}
	col := For(eng)
	a := col.RegisterAgent(0, "rnic.0.", "xrdma.0.", []TenantRef{{ID: 1, Label: "app"}})
	if a.Missing() != 0 {
		b.Fatalf("%d probes unresolved", a.Missing())
	}

	now := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range live {
			live[j] += int64(j)
		}
		now += sim.Time(sim.Millisecond)
		a.Sample(now)
	}
}

package xrmon

import (
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// Window is the sliding-window depth of every agent's delta ring: each
// watched metric keeps its last Window per-tick deltas. At the default
// housekeeping cadence this is a few tens of milliseconds of history —
// enough for the detectors to smooth single-tick bursts without
// remembering stale symptoms past a heal.
const Window = 8

// Per-node slot indices into an agent's delta ring. The first NodeSlots
// slots are fixed for every agent; tenant slot blocks follow (see
// TenantSlot). Keep this table in sync with NodeWatchNames.
const (
	SlotMsgsSent = iota
	SlotMsgsRecv
	SlotBytesSent
	SlotBytesRecv
	SlotRetx
	SlotCorrupt
	SlotRNRSent
	SlotRNRRecv
	SlotCNPRecv
	SlotQPs
	SlotKaFails
	SlotChBroken
	SlotChannels
	SlotReqTimeouts
	SlotReqRetries
	SlotSlowPolls
	SlotDegraded
	SlotMemOccupied
	SlotMemInUse
	NodeSlots
)

// nodeSlotDef maps each node slot to its metric name suffix and which
// prefix (NIC counter vs middleware context) it lives under. gauge
// slots move both ways, so their deltas are not clamped on decrease.
var nodeSlotDef = [NodeSlots]struct {
	nic    bool
	suffix string
	gauge  bool
}{
	SlotMsgsSent:    {true, "msgs_sent", false},
	SlotMsgsRecv:    {true, "msgs_recv", false},
	SlotBytesSent:   {true, "bytes_sent", false},
	SlotBytesRecv:   {true, "bytes_recv", false},
	SlotRetx:        {true, "retransmits", false},
	SlotCorrupt:     {true, "corrupt_drops", false},
	SlotRNRSent:     {true, "rnr_nak_sent", false},
	SlotRNRRecv:     {true, "rnr_nak_recv", false},
	SlotCNPRecv:     {true, "cnp_recv", false},
	SlotQPs:         {true, "qps", true},
	SlotKaFails:     {false, "keepalive_fails", false},
	SlotChBroken:    {false, "channels_broken", false},
	SlotChannels:    {false, "channels", true},
	SlotReqTimeouts: {false, "req_timeouts", false},
	SlotReqRetries:  {false, "req_retries", false},
	SlotSlowPolls:   {false, "slow_polls", false},
	SlotDegraded:    {false, "degraded", true},
	SlotMemOccupied: {false, "mem_occupied", true},
	SlotMemInUse:    {false, "mem_inuse", true},
}

// Per-tenant slot offsets within one tenant block. Keep in sync with
// tenantSlotSuffix.
const (
	TSlotMemRejects = iota
	TSlotRateStalls
	TSlotSheds
	TSlotTxBytes
	TenantSlots
)

var tenantSlotSuffix = [TenantSlots]string{
	TSlotMemRejects: "mem_rejects",
	TSlotRateStalls: "rate_stalls",
	TSlotSheds:      "sheds",
	TSlotTxBytes:    "txbytes",
}

// Fleet-level slot indices: fabric-wide counters the collector samples
// once per epoch on its own internal agent.
const (
	FSlotPauseTx = iota
	FSlotECN
	FSlotDrops
	FSlotCorrupted
	FSlotDelivered
	FSlotDataBytes
	FleetSlots
)

var fleetSlotName = [FleetSlots]string{
	FSlotPauseTx:   "fabric.pause_tx",
	FSlotECN:       "fabric.ecn_marks",
	FSlotDrops:     "fabric.drops",
	FSlotCorrupted: "fabric.corrupted",
	FSlotDelivered: "fabric.delivered",
	FSlotDataBytes: "fabric.data_bytes",
}

// NodeWatchNames expands the node slot table into absolute metric names
// for one node: nicPrefix is the NIC counter family ("rnic.<id>.") and
// ctxPrefix the middleware family ("xrdma.<id>."). Exported so the
// rule-lint test can assert every name resolves against a live world.
func NodeWatchNames(nicPrefix, ctxPrefix string) []string {
	out := make([]string, NodeSlots)
	for i, def := range nodeSlotDef {
		if def.nic {
			out[i] = nicPrefix + def.suffix
		} else {
			out[i] = ctxPrefix + def.suffix
		}
	}
	return out
}

// TenantWatchNames expands one tenant's slot block into absolute names
// under "<ctxPrefix>tenant.<id>.".
func TenantWatchNames(ctxPrefix string, id uint16) []string {
	out := make([]string, TenantSlots)
	base := ctxPrefix + "tenant."
	for i, suffix := range tenantSlotSuffix {
		out[i] = base + itoa(int64(id)) + "." + suffix
	}
	return out
}

// FleetWatchNames lists the fabric-wide counters the collector samples.
func FleetWatchNames() []string {
	out := make([]string, FleetSlots)
	copy(out, fleetSlotName[:])
	return out
}

// itoa is a tiny allocation-free-enough int formatter for watch-list
// construction (attach time only, not the sampling path).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TenantRef names one tenant slot block on a node agent.
type TenantRef struct {
	ID    uint16
	Label string
}

// Agent is one node's sampler: a fixed watch list of registry metrics
// resolved to probes at attach, a per-slot sliding window of per-tick
// deltas, and per-slot EWMA baselines. Sample is called from the
// context's existing housekeeping tick, so attaching an agent adds no
// engine events — the simulation with and without xrmon is
// bit-identical. The steady-state sampling path performs no
// allocations: rings, watermarks and baselines are preallocated and
// probe reads are map-free.
type Agent struct {
	// Node is the fabric node id, or -1 for the collector's internal
	// fleet-level agent.
	Node int32

	col    *Collector
	notify bool // drive the collector's epoch counter from Sample

	names   []string
	clamp   []bool // counter slots clamp negative deltas (resets) to 0
	probes  []telemetry.Probe
	missing int

	last []int64   // absolute watermark per slot
	base []float64 // EWMA baseline of the per-tick delta per slot
	ring []int64   // slot-major: ring[slot*Window+k]
	at   [Window]sim.Time
	idx  int // next ring column to write
	n    int // samples taken so far

	// active latches once the node has shown real traffic (used by the
	// node-down rule so never-loaded nodes cannot flatline-match).
	active bool

	tenants []TenantRef
}

func newAgent(col *Collector, node int32, names []string, clamp []bool, tenants []TenantRef, notify bool) *Agent {
	a := &Agent{
		Node:    node,
		col:     col,
		notify:  notify,
		names:   names,
		clamp:   clamp,
		probes:  make([]telemetry.Probe, len(names)),
		last:    make([]int64, len(names)),
		base:    make([]float64, len(names)),
		ring:    make([]int64, len(names)*Window),
		tenants: tenants,
	}
	a.Rebind()
	return a
}

// Rebind re-resolves every probe against the registry. Called when a
// context re-registers its gauge families (node restart re-creates the
// context; Unregister+re-register allocates fresh metric slots that
// old probes cannot see).
func (a *Agent) Rebind() {
	a.missing = 0
	for i, name := range a.names {
		p, ok := a.col.set.Reg.Probe(name)
		a.probes[i] = p
		if !ok {
			a.missing++
		}
	}
}

// Sample reads every watched metric once and folds the delta since the
// previous tick into the ring. Steady state is 0 allocs/op: the only
// work is probe reads, integer subtraction and ring stores. Probes
// still missing (a gauge family registered after attach) are re-looked
// up by name — a map read, no allocation.
func (a *Agent) Sample(now sim.Time) {
	if a.missing > 0 {
		a.missing = 0
		for i := range a.probes {
			if !a.probes[i].Valid() {
				if p, ok := a.col.set.Reg.Probe(a.names[i]); ok {
					a.probes[i] = p
				} else {
					a.missing++
				}
			}
		}
	}
	col := a.idx
	for i := range a.probes {
		v := a.probes[i].Value()
		d := v - a.last[i]
		if d < 0 && a.clamp[i] {
			d = 0 // counter reset across a NIC restart
		}
		a.last[i] = v
		a.ring[i*Window+col] = d
	}
	a.at[col] = now
	a.idx = (col + 1) % Window
	a.n++
	if a.notify {
		a.col.noteSample(now)
	}
}

// Len reports how many ring columns hold real samples.
func (a *Agent) Len() int {
	if a.n < Window {
		return a.n
	}
	return Window
}

// Samples reports the total ticks observed (monotonic, beyond Window).
func (a *Agent) Samples() int { return a.n }

// Missing reports watch-list names that have not resolved yet.
func (a *Agent) Missing() int { return a.missing }

// Names returns the agent's watch list (absolute metric names, slot
// order). The slice is shared — callers must not mutate it.
func (a *Agent) Names() []string { return a.names }

// Tenants returns the tenant blocks in slot order.
func (a *Agent) Tenants() []TenantRef { return a.tenants }

// TenantSlot maps (tenant block t, per-tenant slot s) to a ring slot.
func (a *Agent) TenantSlot(t, s int) int { return NodeSlots + t*TenantSlots + s }

// Abs reports the latest absolute value sampled for slot.
func (a *Agent) Abs(slot int) int64 { return a.last[slot] }

// Delta reports the most recent per-tick delta for slot.
func (a *Agent) Delta(slot int) int64 {
	if a.n == 0 {
		return 0
	}
	return a.ring[slot*Window+(a.idx+Window-1)%Window]
}

// LastN sums the most recent k per-tick deltas (k ≤ Window).
func (a *Agent) LastN(slot, k int) int64 {
	if k > a.Len() {
		k = a.Len()
	}
	var sum int64
	for j := 1; j <= k; j++ {
		sum += a.ring[slot*Window+(a.idx+Window-j)%Window]
	}
	return sum
}

// WindowSum sums every valid delta in the ring — the detectors' view
// of "recent activity" for slot.
func (a *Agent) WindowSum(slot int) int64 {
	var sum int64
	for _, d := range a.ring[slot*Window : (slot+1)*Window] {
		sum += d
	}
	return sum
}

// Baseline reports the EWMA of slot's per-tick delta, updated once per
// collector epoch.
func (a *Agent) Baseline(slot int) float64 { return a.base[slot] }

// WindowRate reports slot's windowed delta per simulated second, for
// the fleet table. Zero until two samples span nonzero time.
func (a *Agent) WindowRate(slot int) float64 {
	n := a.Len()
	if n < 2 {
		return 0
	}
	newest := a.at[(a.idx+Window-1)%Window]
	oldest := a.at[(a.idx+Window-n)%Window]
	span := newest.Sub(oldest)
	if span <= 0 {
		return 0
	}
	return float64(a.LastN(slot, n-1)) / span.Seconds()
}

// updateBaselines folds the latest delta of every slot into the EWMA
// (weight 0.2, the path-doctor idiom) and latches the activity flag.
func (a *Agent) updateBaselines() {
	if a.n == 0 {
		return
	}
	last := (a.idx + Window - 1) % Window
	for slot := 0; slot < len(a.base); slot++ {
		a.base[slot] = 0.8*a.base[slot] + 0.2*float64(a.ring[slot*Window+last])
	}
	if !a.active && a.Delta(SlotMsgsSent)+a.Delta(SlotMsgsRecv) > 0 {
		a.active = true
	}
}

package xrmon

import (
	"encoding/json"
	"fmt"
	"io"
)

// incidentJSON is the export shape of one incident.
type incidentJSON struct {
	Class      string   `json:"class"`
	Culprit    string   `json:"culprit"`
	Nodes      []int32  `json:"nodes"`
	OpenedAt   string   `json:"opened_at"`
	LastSeen   string   `json:"last_seen"`
	ClosedAt   string   `json:"closed_at,omitempty"`
	Epochs     int      `json:"epochs"`
	Confidence int      `json:"confidence"`
	Closed     bool     `json:"closed"`
	Evidence   []string `json:"evidence"`
}

// WriteJSON exports the full incident set (open and closed, in open
// order) plus the epoch counter — the root-cause report surface.
func (c *Collector) WriteJSON(w io.Writer) error {
	doc := struct {
		Epoch     int64          `json:"epoch"`
		Agents    int            `json:"agents"`
		Incidents []incidentJSON `json:"incidents"`
	}{Epoch: c.epoch, Agents: len(c.agents), Incidents: []incidentJSON{}}
	for _, inc := range c.incidents {
		ij := incidentJSON{
			Class:      inc.Class.String(),
			Culprit:    inc.Culprit,
			Nodes:      inc.Nodes,
			OpenedAt:   inc.OpenedAt.String(),
			LastSeen:   inc.LastSeen.String(),
			Epochs:     inc.Epochs,
			Confidence: inc.Confidence,
			Closed:     inc.Closed,
			Evidence:   inc.Evidence,
		}
		if inc.Closed {
			ij.ClosedAt = inc.ClosedAt.String()
		}
		doc.Incidents = append(doc.Incidents, ij)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WritePrometheus exposes the detector state in the text exposition
// format. The collector writes its own families (xrmon_*) directly
// rather than registering them in the engine's registry, so attaching
// the plane never perturbs the registry digest the determinism tests
// compare.
func (c *Collector) WritePrometheus(w io.Writer) error {
	fmt.Fprintf(w, "# HELP xrmon_epochs completed fleet sampling rounds\n# TYPE xrmon_epochs counter\nxrmon_epochs %d\n", c.epoch)
	fmt.Fprintf(w, "# HELP xrmon_agents registered node agents\n# TYPE xrmon_agents gauge\nxrmon_agents %d\n", len(c.agents))
	fmt.Fprintf(w, "# HELP xrmon_incidents_total incidents opened, by class\n# TYPE xrmon_incidents_total counter\n")
	var totals [IncidentClassCount]int64
	var open int64
	for _, inc := range c.incidents {
		totals[inc.Class]++
		if !inc.Closed {
			open++
		}
	}
	for cl := IncidentClass(0); cl < IncidentClassCount; cl++ {
		fmt.Fprintf(w, "xrmon_incidents_total{class=%q} %d\n", cl.String(), totals[cl])
	}
	fmt.Fprintf(w, "# HELP xrmon_incidents_open currently open incidents\n# TYPE xrmon_incidents_open gauge\nxrmon_incidents_open %d\n", open)
	fmt.Fprintf(w, "# HELP xrmon_fleet_window fabric counter deltas over the sliding window\n# TYPE xrmon_fleet_window gauge\n")
	for slot := 0; slot < FleetSlots; slot++ {
		fmt.Fprintf(w, "xrmon_fleet_window{metric=%q} %d\n", fleetSlotName[slot], c.fleet.WindowSum(slot))
	}
	fmt.Fprintf(w, "# HELP xrmon_node_window per-node counter deltas over the sliding window\n# TYPE xrmon_node_window gauge\n")
	for _, node := range c.sortedNodes() {
		a := c.byNode[node]
		for _, slot := range []int{SlotMsgsSent, SlotBytesSent, SlotRetx, SlotCorrupt, SlotRNRSent, SlotKaFails} {
			_, err := fmt.Fprintf(w, "xrmon_node_window{node=\"%d\",metric=%q} %d\n",
				node, nodeSlotDef[slot].suffix, a.WindowSum(slot))
			if err != nil {
				return err
			}
		}
	}
	return nil
}

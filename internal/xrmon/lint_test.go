package xrmon_test

import (
	"testing"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/xrdma"
	"xrdma/internal/xrmon"
)

// Detector-rule lint: every metric name an xrmon rule can reference
// must resolve against a live registry built from a real world — the
// watch list is a contract with the gauge registrations in xrdma,
// rnic and fabric, and this test is what breaks when one of those
// families is renamed. A tenant is configured so the per-tenant slot
// blocks are linted too.
func TestRuleMetricNamesResolve(t *testing.T) {
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   rnic.DefaultConfig(),
		Nodes:    4,
		Config: func(_ int, cfg *xrdma.Config) {
			cfg.Tenants = []xrdma.TenantConfig{{Name: "app"}, {Name: "batch", MemBudget: 1 << 20}}
		},
		Seed: 7,
	})
	c.ListenAll(7600, func(_ *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 0) })
	})
	var ch *xrdma.Channel
	c.Connect(0, 1, 7600, func(cc *xrdma.Channel, err error) {
		if err != nil {
			t.Fatal(err)
		}
		ch = cc
	})
	c.Eng.Run()
	if ch == nil {
		t.Fatal("channel never established")
	}
	ch.SendMsg([]byte("lint"), 0, func(*xrdma.Msg, error) {})
	c.Eng.RunFor(50 * sim.Millisecond) // a few housekeeping ticks

	col := xrmon.For(c.Eng)
	if len(col.Agents()) != 4 {
		t.Fatalf("collector has %d agents, want one per context", len(col.Agents()))
	}
	reg := telemetry.For(c.Eng).Reg
	for _, a := range col.Agents() {
		if a.Missing() != 0 {
			var missing []string
			for _, name := range a.Names() {
				if _, ok := reg.Value(name); !ok {
					missing = append(missing, name)
				}
			}
			t.Errorf("node %d: %d watch-list names do not resolve: %v", a.Node, a.Missing(), missing)
		}
		if len(a.Tenants()) != 2 {
			t.Errorf("node %d: agent carries %d tenant blocks, want 2", a.Node, len(a.Tenants()))
		}
	}
	// Fleet-level names (fabric counters) must resolve too.
	for _, name := range xrmon.FleetWatchNames() {
		if _, ok := reg.Value(name); !ok {
			t.Errorf("fleet watch name %q does not resolve", name)
		}
	}
	if col.FleetAgent().Missing() != 0 {
		t.Errorf("fleet agent has %d unresolved probes", col.FleetAgent().Missing())
	}
	// The agents actually sampled: the housekeeping tick is wired up.
	if col.Epoch() == 0 {
		t.Fatal("no fleet epoch completed — monitor is not driving the agents")
	}
	if a := col.AgentFor(0); a == nil || a.Abs(xrmon.SlotMsgsSent) == 0 {
		t.Fatal("agent 0 never observed the traffic")
	}
}

// Package xrmon is the fleet diagnosis plane (XR-Mon v2): the
// cross-node half of the paper's §VI operations story. Per-node agents
// snapshot the engine-keyed telemetry registry on the existing
// housekeeping tick into fixed-size sliding-window delta rings; a
// central collector ingests the windows, runs anomaly detectors
// (static thresholds, EWMA baselines, top-share heavy hitters) and
// folds co-occurring symptoms through cross-layer correlation rules
// into ranked incidents — "incast, aggressor node 6", "gray link at
// node 3", "tenant elephant over budget on node 4" — each carrying
// metric-delta evidence, matching flight-recorder dump references and
// the top blame stage, plus a confidence score.
//
// Everything is deterministic and observer-invariant: agents ride the
// ticks the contexts already run, the collector closes an epoch
// synchronously inside the last agent's sample of a round, and no rule
// draws randomness — attaching the plane changes neither the engine's
// event count nor any workload result, and the incident log is
// bit-identical across -j parallelism.
package xrmon

import (
	"fmt"
	"sort"

	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

type auxKey struct{}

// For returns the engine's collector, creating it on first use. Like
// telemetry.For, the collector is engine-keyed: experiments running on
// concurrent goroutines share nothing.
func For(eng *sim.Engine) *Collector {
	return eng.AuxInit(auxKey{}, func() any { return newCollector(eng) }).(*Collector)
}

// Location places a node for the correlation rules' spread analysis.
type Location struct {
	Rack string // e.g. "pod0-tor1"
	Pod  string // e.g. "pod0"
}

// WatchConfig arms incident detection. Zero fields take defaults; all
// thresholds apply to window sums over the agents' delta rings.
type WatchConfig struct {
	// MinEpochs is the warm-up before any rule may fire — the first
	// deltas after attach are absolute values, not rates.
	MinEpochs int
	// OpenAfter is how many consecutive matching epochs a rule needs
	// before its incident opens — debounces single-epoch blips (a burst
	// retransmit spike is not a gray link).
	OpenAfter int
	// CloseAfter is how many quiet epochs close an open incident.
	CloseAfter int
	// RNRStorm is the windowed rnr_nak_sent count that marks a node a
	// slow receiver.
	RNRStorm int64
	// TenantErrs is the windowed mem_rejects+sheds count, and
	// TenantStalls the windowed rate_stalls count, that mark a tenant
	// overloaded.
	TenantErrs   int64
	TenantStalls int64
	// ECNMin is the fleet-windowed ecn_marks floor for incast when no
	// PFC pause was seen.
	ECNMin int64
	// IncastShare is the min percentage of fleet tx-bytes one node must
	// hold to be named the incast aggressor.
	IncastShare int64
	// GraySymptomMin is the min weighted symptom score (3·retx +
	// 2·corrupt) for a node to count as symptomatic; GrayShare the
	// percentage of the fleet symptom mass that pins the fault to one
	// node's link rather than the fabric.
	GraySymptomMin int64
	GrayShare      int64
}

func (w *WatchConfig) defaults() {
	if w.MinEpochs == 0 {
		w.MinEpochs = 3
	}
	if w.OpenAfter == 0 {
		w.OpenAfter = 2
	}
	if w.CloseAfter == 0 {
		w.CloseAfter = 4
	}
	if w.RNRStorm == 0 {
		w.RNRStorm = 10
	}
	if w.TenantErrs == 0 {
		w.TenantErrs = 3
	}
	if w.TenantStalls == 0 {
		w.TenantStalls = 20
	}
	if w.ECNMin == 0 {
		w.ECNMin = 16
	}
	if w.IncastShare == 0 {
		w.IncastShare = 45
	}
	if w.GraySymptomMin == 0 {
		w.GraySymptomMin = 6
	}
	if w.GrayShare == 0 {
		w.GrayShare = 60
	}
}

// Collector is the central half of the plane: it owns the per-node
// agents, advances the fleet epoch as sampling rounds complete, and —
// once Watch has armed it — runs the correlation rules at the end of
// every epoch.
type Collector struct {
	eng *sim.Engine
	set *telemetry.Set

	agents []*Agent // registration order — the determinism order
	byNode map[int32]*Agent
	fleet  *Agent

	sampled int
	epoch   int64

	watching bool
	cfg      WatchConfig
	loc      map[int32]Location

	incidents  []*Incident
	open       map[incidentKey]*Incident
	pending    map[incidentKey]*pendingMatch
	logLines   []string
	dumpsSeen  int
	onIncident func(*Incident, string)
}

// pendingMatch tracks a rule that is matching but has not yet persisted
// for OpenAfter consecutive epochs.
type pendingMatch struct {
	count int
	epoch int64
}

func newCollector(eng *sim.Engine) *Collector {
	c := &Collector{
		eng:    eng,
		set:    telemetry.For(eng),
		byNode: make(map[int32]*Agent),
		loc:     make(map[int32]Location),
		open:    make(map[incidentKey]*Incident),
		pending: make(map[incidentKey]*pendingMatch),
	}
	clamp := make([]bool, FleetSlots) // fabric stats are all cumulative
	for i := range clamp {
		clamp[i] = true
	}
	c.fleet = newAgent(c, -1, FleetWatchNames(), clamp, nil, false)
	return c
}

// RegisterAgent attaches (or re-binds) the agent for one node. The
// watch list is fixed at first attach: the node slot table expanded
// against the given prefixes plus one block per tenant. Re-registering
// (a context restart) re-resolves the probes and returns the existing
// agent so its history survives the roll.
func (c *Collector) RegisterAgent(node int32, nicPrefix, ctxPrefix string, tenants []TenantRef) *Agent {
	if a := c.byNode[node]; a != nil {
		a.Rebind()
		return a
	}
	names := NodeWatchNames(nicPrefix, ctxPrefix)
	clamp := make([]bool, 0, len(names)+len(tenants)*TenantSlots)
	for _, def := range nodeSlotDef {
		clamp = append(clamp, !def.gauge)
	}
	for _, t := range tenants {
		names = append(names, TenantWatchNames(ctxPrefix, t.ID)...)
		for range tenantSlotSuffix {
			clamp = append(clamp, true)
		}
	}
	a := newAgent(c, node, names, clamp, tenants, true)
	c.agents = append(c.agents, a)
	c.byNode[node] = a
	return a
}

// Agents returns the per-node agents in registration order.
func (c *Collector) Agents() []*Agent { return c.agents }

// AgentFor returns one node's agent (nil when unregistered).
func (c *Collector) AgentFor(node int32) *Agent { return c.byNode[node] }

// FleetAgent returns the collector's fabric-wide sampler.
func (c *Collector) FleetAgent() *Agent { return c.fleet }

// Epoch reports completed sampling rounds.
func (c *Collector) Epoch() int64 { return c.epoch }

// SetLocation places a node for the spread analysis (rack/pod).
func (c *Collector) SetLocation(node int32, rack, pod string) {
	c.loc[node] = Location{Rack: rack, Pod: pod}
}

// Watch arms incident detection with cfg (zero fields take defaults).
func (c *Collector) Watch(cfg WatchConfig) {
	cfg.defaults()
	c.cfg = cfg
	c.watching = true
}

// Watching reports whether detection is armed.
func (c *Collector) Watching() bool { return c.watching }

// OnIncident installs a transition callback: fn fires with "open",
// "escalate" or "close" as incidents change state.
func (c *Collector) OnIncident(fn func(*Incident, string)) { c.onIncident = fn }

// Incidents returns every incident (open and closed) in open order.
func (c *Collector) Incidents() []*Incident { return c.incidents }

// OpenIncidents returns the currently open incidents in open order.
func (c *Collector) OpenIncidents() []*Incident {
	var out []*Incident
	for _, inc := range c.incidents {
		if !inc.Closed {
			out = append(out, inc)
		}
	}
	return out
}

// Log returns the incident transition log — deterministic lines that
// double as the plane's digest.
func (c *Collector) Log() []string { return c.logLines }

// Digest renders the full diagnosis as deterministic lines: the
// transition log followed by one summary line per incident.
func (c *Collector) Digest() []string {
	out := make([]string, 0, len(c.logLines)+len(c.incidents))
	out = append(out, c.logLines...)
	for _, inc := range c.incidents {
		out = append(out, inc.summaryLine())
	}
	return out
}

// noteSample is called by every node agent at the end of Sample. When
// all registered agents have reported, the round closes: the fleet
// agent samples the fabric counters, the rules run, and the baselines
// fold in the new deltas — all synchronously inside the last agent's
// housekeeping tick, so the plane adds no engine events of its own.
func (c *Collector) noteSample(now sim.Time) {
	c.sampled++
	if c.sampled < len(c.agents) {
		return
	}
	c.sampled = 0
	c.epoch++
	c.fleet.Sample(now)
	if c.watching {
		c.evaluate(now)
	}
	c.fleet.updateBaselines()
	for _, a := range c.agents {
		a.updateBaselines()
	}
}

func (c *Collector) logf(format string, args ...any) {
	c.logLines = append(c.logLines, fmt.Sprintf(format, args...))
}

// nodeLabel names a node for culprit strings.
func nodeLabel(node int32) string { return "node" + itoa(int64(node)) }

// pods counts the distinct pods among the located symptomatic nodes.
func (c *Collector) spread(nodes []int32) (racks, pods int) {
	rs := map[string]bool{}
	ps := map[string]bool{}
	for _, n := range nodes {
		loc, ok := c.loc[n]
		if !ok {
			// Unlocated nodes count as their own rack, no pod info.
			rs[nodeLabel(n)] = true
			continue
		}
		rs[loc.Rack] = true
		if loc.Pod != "" {
			ps[loc.Pod] = true
		}
	}
	return len(rs), len(ps)
}

// FleetTable renders the per-node rate table from the agent rings —
// the xr-mon dashboard view.
func (c *Collector) FleetTable() string {
	var b []byte
	b = fmt.Appendf(b, "%-6s %-10s %-10s %-12s %-12s %-6s %-6s %-8s %-5s %-7s %s\n",
		"NODE", "TX/s", "RX/s", "TXB/s", "RXB/s", "RETX", "RNR", "CORRUPT", "KA", "CHANS", "STATUS")
	status := map[int32]string{}
	for _, inc := range c.incidents {
		if inc.Closed {
			continue
		}
		for _, n := range inc.Nodes {
			if status[n] == "" {
				status[n] = inc.Class.String()
			}
		}
	}
	for _, a := range c.agents {
		st := status[a.Node]
		if st == "" {
			st = "ok"
		}
		b = fmt.Appendf(b, "%-6d %-10.0f %-10.0f %-12.0f %-12.0f %-6d %-6d %-8d %-5d %-7d %s\n",
			a.Node, a.WindowRate(SlotMsgsSent), a.WindowRate(SlotMsgsRecv),
			a.WindowRate(SlotBytesSent), a.WindowRate(SlotBytesRecv),
			a.WindowSum(SlotRetx), a.WindowSum(SlotRNRSent), a.WindowSum(SlotCorrupt),
			a.WindowSum(SlotKaFails), a.Abs(SlotChannels), st)
	}
	f := c.fleet
	b = fmt.Appendf(b, "fleet: epoch=%d pause=%d ecn=%d drops=%d corrupted=%d open-incidents=%d\n",
		c.epoch, f.WindowSum(FSlotPauseTx), f.WindowSum(FSlotECN),
		f.WindowSum(FSlotDrops), f.WindowSum(FSlotCorrupted), len(c.OpenIncidents()))
	return string(b)
}

// sortedNodes returns the registered node ids ascending (used by
// exports; the agents slice itself stays in registration order).
func (c *Collector) sortedNodes() []int32 {
	out := make([]int32, 0, len(c.byNode))
	for n := range c.byNode {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package xrmon

import (
	"fmt"

	"xrdma/internal/sim"
)

// IncidentClass is the diagnosis a correlation rule emits.
type IncidentClass uint8

const (
	// IncNodeDown: a previously active node's NIC counters flatlined
	// while peers report keepalive failures — machine or HCA death.
	IncNodeDown IncidentClass = iota
	// IncGrayLink: retransmits+corruption concentrated on one node —
	// the §V-A flaky-optic class, pinned to that node's access path.
	IncGrayLink
	// IncFabricBrownout: the same symptoms spread across racks — a
	// shared fabric element (spine/leaf tier) is degrading everyone.
	IncFabricBrownout
	// IncIncast: fleet-wide PFC pause/ECN with one node's tx bytes
	// dominating — congestion with a nameable aggressor.
	IncIncast
	// IncSlowReceiver: one node streams RNR NAKs — its application is
	// not reposting receives fast enough (Fig. 9's pathology).
	IncSlowReceiver
	// IncTenantOverload: one tenant's budget rejects/sheds/stalls —
	// the noisy neighbour is being clamped by the isolation plane.
	IncTenantOverload

	IncidentClassCount
)

var incidentClassName = [IncidentClassCount]string{
	IncNodeDown:       "node-down",
	IncGrayLink:       "gray-link",
	IncFabricBrownout: "fabric-brownout",
	IncIncast:         "incast",
	IncSlowReceiver:   "slow-receiver",
	IncTenantOverload: "tenant-overload",
}

func (c IncidentClass) String() string {
	if int(c) < len(incidentClassName) {
		return incidentClassName[c]
	}
	return "unknown"
}

// incidentKey identifies one live incident: same class + same culprit
// across epochs is one incident, not many.
type incidentKey struct {
	class   IncidentClass
	culprit string
}

// Incident is one ranked diagnosis: a class, the named culprit, the
// implicated nodes, supporting evidence (metric deltas, flight-dump
// references, the top blame stage) and a 0–100 confidence score. An
// incident opens when its rule first matches, escalates as evidence
// strengthens, and closes after CloseAfter quiet epochs.
type Incident struct {
	Class      IncidentClass
	Culprit    string
	Nodes      []int32
	OpenedAt   sim.Time
	LastSeen   sim.Time
	ClosedAt   sim.Time
	Epochs     int
	Confidence int
	Evidence   []string
	Closed     bool

	quiet      int
	seenEpoch  int64
	loggedConf int
}

func (inc *Incident) summaryLine() string {
	state := "open"
	if inc.Closed {
		state = "closed"
	}
	return fmt.Sprintf("incident class=%s culprit=%s opened=%v epochs=%d conf=%d %s",
		inc.Class, inc.Culprit, inc.OpenedAt, inc.Epochs, inc.Confidence, state)
}

// match is one rule firing in one epoch.
type match struct {
	class    IncidentClass
	culprit  string
	conf     int
	nodes    []int32
	evidence []string
}

// NodeValue pairs a node with a windowed metric value (TopK output).
type NodeValue struct {
	Node  int32
	Value int64
}

// TopK extracts the k heaviest hitters for one slot's window sum
// across the node agents, descending; ties break on registration
// order, so the extraction is deterministic.
func (c *Collector) TopK(slot, k int) []NodeValue {
	out := make([]NodeValue, 0, len(c.agents))
	for _, a := range c.agents {
		out = append(out, NodeValue{Node: a.Node, Value: a.WindowSum(slot)})
	}
	// Stable selection sort of the top k — n is fleet-sized, not hot.
	for i := 0; i < len(out) && i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Value > out[best].Value {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TenantValue is one tenant heavy hitter.
type TenantValue struct {
	Node  int32
	Label string
	Value int64
}

// TopTenants extracts the k heaviest tenants fleet-wide for one
// per-tenant slot offset (TSlot*), descending, deterministic.
func (c *Collector) TopTenants(tslot, k int) []TenantValue {
	var out []TenantValue
	for _, a := range c.agents {
		for t, ref := range a.tenants {
			out = append(out, TenantValue{a.Node, ref.Label, a.WindowSum(a.TenantSlot(t, tslot))})
		}
	}
	for i := 0; i < len(out) && i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Value > out[best].Value {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// evaluate runs every correlation rule over the current windows and
// reconciles the matches against the open incidents. Rules run in a
// fixed order and scan agents in registration order, so the incident
// log is bit-identical across runs and across -j parallelism.
func (c *Collector) evaluate(now sim.Time) {
	if c.epoch < int64(c.cfg.MinEpochs) || len(c.agents) == 0 {
		return
	}
	var matches []match

	// Fleet-wide context shared by the rules.
	var kaW, corruptW int64
	for _, a := range c.agents {
		kaW += a.WindowSum(SlotKaFails)
		corruptW += a.WindowSum(SlotCorrupt)
	}
	pauseW := c.fleet.WindowSum(FSlotPauseTx)
	ecnW := c.fleet.WindowSum(FSlotECN)

	// Rule 1 — node-down. A live node's NIC always moves msgs_sent
	// within two epochs (keepalives fire every interval even under a
	// total partition), so a flatline on a previously active node means
	// the NIC itself is gone. Opening requires corroborating keepalive
	// failures somewhere in the fleet; once open, the flatline alone
	// keeps the incident alive (peer keepalive counters freeze after
	// their channels break, but the machine is still down).
	for _, a := range c.agents {
		if !a.active || a.Len() < 2 {
			continue
		}
		if a.LastN(SlotMsgsSent, 2)+a.LastN(SlotMsgsRecv, 2) != 0 {
			continue
		}
		key := incidentKey{IncNodeDown, nodeLabel(a.Node)}
		if kaW < 1 && c.open[key] == nil {
			continue
		}
		conf := 70
		if kaW > 0 {
			conf = 90
		}
		matches = append(matches, match{
			class:   IncNodeDown,
			culprit: nodeLabel(a.Node),
			conf:    conf,
			nodes:   []int32{a.Node},
			evidence: []string{
				fmt.Sprintf("node%d msgs window=0 (was active)", a.Node),
				fmt.Sprintf("fleet keepalive_fails window=%d", kaW),
			},
		})
	}

	// Rule 2 — slow receiver. One node streaming RNR NAKs (window ≥
	// RNRStorm and ≥ 2× the runner-up) is starving its receive queue.
	{
		var top *Agent
		var topW, secondW int64
		for _, a := range c.agents {
			w := a.WindowSum(SlotRNRSent)
			if top == nil || w > topW {
				secondW = topW
				top, topW = a, w
			} else if w > secondW {
				secondW = w
			}
		}
		if top != nil && topW >= c.cfg.RNRStorm && topW >= 2*secondW {
			conf := 60 + int(topW)
			if conf > 100 {
				conf = 100
			}
			matches = append(matches, match{
				class:   IncSlowReceiver,
				culprit: nodeLabel(top.Node),
				conf:    conf,
				nodes:   []int32{top.Node},
				evidence: []string{
					fmt.Sprintf("node%d rnr_nak_sent window=%d (runner-up %d)", top.Node, topW, secondW),
				},
			})
		}
	}

	// Rule 3 — tenant overload. The isolation plane is actively
	// clamping one tenant: budget rejects/sheds or rate stalls.
	for _, a := range c.agents {
		for t, ref := range a.tenants {
			rej := a.WindowSum(a.TenantSlot(t, TSlotMemRejects))
			sheds := a.WindowSum(a.TenantSlot(t, TSlotSheds))
			stalls := a.WindowSum(a.TenantSlot(t, TSlotRateStalls))
			if rej+sheds < c.cfg.TenantErrs && stalls < c.cfg.TenantStalls {
				continue
			}
			conf := 50 + int(rej+sheds)*5 + int(stalls)
			if conf > 100 {
				conf = 100
			}
			matches = append(matches, match{
				class:   IncTenantOverload,
				culprit: "tenant:" + ref.Label + "@" + nodeLabel(a.Node),
				conf:    conf,
				nodes:   []int32{a.Node},
				evidence: []string{
					fmt.Sprintf("tenant %s@node%d mem_rejects=%d sheds=%d rate_stalls=%d (window)",
						ref.Label, a.Node, rej, sheds, stalls),
				},
			})
		}
	}

	// Rule 4 — incast. Fabric-wide congestion signal (any PFC pause,
	// or ECN marks over the floor) plus one node holding the dominant
	// share of transmitted bytes: name the aggressor, record the top
	// receiver as the victim.
	if pauseW >= 1 || ecnW >= c.cfg.ECNMin {
		var totTx int64
		var agg *Agent
		var aggW int64
		for _, a := range c.agents {
			w := a.WindowSum(SlotBytesSent)
			totTx += w
			if agg == nil || w > aggW {
				agg, aggW = a, w
			}
		}
		if agg != nil && totTx > 0 && aggW*100 >= totTx*c.cfg.IncastShare {
			var victim *Agent
			var vicW int64
			for _, a := range c.agents {
				if w := a.WindowSum(SlotBytesRecv); victim == nil || w > vicW {
					victim, vicW = a, w
				}
			}
			share := int(aggW * 100 / totTx)
			matches = append(matches, match{
				class:   IncIncast,
				culprit: nodeLabel(agg.Node),
				conf:    share,
				nodes:   []int32{agg.Node, victim.Node},
				evidence: []string{
					fmt.Sprintf("fleet pause_tx window=%d ecn_marks window=%d", pauseW, ecnW),
					fmt.Sprintf("aggressor node%d tx share=%d%% (%dB of %dB)", agg.Node, share, aggW, totTx),
					fmt.Sprintf("victim node%d rx window=%dB", victim.Node, vicW),
				},
			})
		}
	}

	// Rule 5 — gray link vs fabric brownout. Weighted symptom score
	// per node (the path-doctor weights: retransmits ×3, corruption
	// ×2); corruption somewhere in the fleet is required, which keeps
	// crash-induced peer retransmits from masquerading as link rot.
	// One dominant node ⇒ its link is gray; symptoms spread across
	// racks ⇒ a shared fabric element, pinned to the spine tier when
	// they span pods.
	if corruptW >= 2 {
		var symNodes []int32
		var totSym, topSym int64
		var top *Agent
		for _, a := range c.agents {
			s := 3*a.WindowSum(SlotRetx) + 2*a.WindowSum(SlotCorrupt)
			if s < c.cfg.GraySymptomMin {
				continue
			}
			symNodes = append(symNodes, a.Node)
			totSym += s
			if top == nil || s > topSym {
				top, topSym = a, s
			}
		}
		// While a fabric brownout is open, any persisting symptoms — even
		// transiently concentrated on one node — are still the fabric's
		// fault: keep the open incident fed instead of splitting it into
		// a parade of per-node gray links as the symptom mix shifts.
		openBrownout := ""
		for _, inc := range c.incidents {
			if !inc.Closed && inc.Class == IncFabricBrownout {
				openBrownout = inc.Culprit
				break
			}
		}
		if top != nil {
			if openBrownout != "" {
				racks, pods := c.spread(symNodes)
				conf := 40 + 10*racks
				if conf > 100 {
					conf = 100
				}
				matches = append(matches, match{
					class:   IncFabricBrownout,
					culprit: openBrownout,
					conf:    conf,
					nodes:   symNodes,
					evidence: []string{
						fmt.Sprintf("%d nodes symptomatic across %d racks / %d pods", len(symNodes), racks, pods),
						fmt.Sprintf("fleet corrupt_drops window=%d, symptom mass=%d", corruptW, totSym),
					},
				})
			} else if topSym*100 >= totSym*c.cfg.GrayShare {
				path := nodeLabel(top.Node)
				if loc, ok := c.loc[top.Node]; ok {
					path = "host" + itoa(int64(top.Node)) + "<->" + loc.Rack
				}
				share := int(topSym * 100 / totSym)
				matches = append(matches, match{
					class:   IncGrayLink,
					culprit: nodeLabel(top.Node),
					conf:    share,
					nodes:   []int32{top.Node},
					evidence: []string{
						fmt.Sprintf("node%d retransmits window=%d corrupt_drops window=%d (symptom share %d%%)",
							top.Node, top.WindowSum(SlotRetx), top.WindowSum(SlotCorrupt), share),
						"path: " + path,
					},
				})
			} else if racks, pods := c.spread(symNodes); racks >= 2 {
				culprit := "fabric"
				if pods >= 2 {
					culprit = "fabric:spine"
				} else if pods == 1 {
					for _, n := range symNodes {
						if loc, ok := c.loc[n]; ok && loc.Pod != "" {
							culprit = "fabric:" + loc.Pod
							break
						}
					}
				}
				conf := 40 + 10*racks
				if conf > 100 {
					conf = 100
				}
				matches = append(matches, match{
					class:   IncFabricBrownout,
					culprit: culprit,
					conf:    conf,
					nodes:   symNodes,
					evidence: []string{
						fmt.Sprintf("%d nodes symptomatic across %d racks / %d pods", len(symNodes), racks, pods),
						fmt.Sprintf("fleet corrupt_drops window=%d, symptom mass=%d", corruptW, totSym),
					},
				})
			}
		}
	}

	c.reconcile(matches, now)
}

// reconcile folds this epoch's matches into the incident set.
func (c *Collector) reconcile(matches []match, now sim.Time) {
	for i := range matches {
		m := &matches[i]
		key := incidentKey{m.class, m.culprit}
		inc := c.open[key]
		if inc == nil {
			// Hysteresis: a rule must match OpenAfter consecutive epochs
			// before its incident opens.
			p := c.pending[key]
			if p == nil {
				p = &pendingMatch{}
				c.pending[key] = p
			}
			if p.epoch == c.epoch-1 {
				p.count++
			} else {
				p.count = 1
			}
			p.epoch = c.epoch
			if p.count < c.cfg.OpenAfter {
				continue
			}
			delete(c.pending, key)
			inc = &Incident{
				Class:      m.class,
				Culprit:    m.culprit,
				Nodes:      m.nodes,
				OpenedAt:   now,
				LastSeen:   now,
				Epochs:     1,
				Confidence: m.conf,
				loggedConf: m.conf,
			}
			inc.Evidence = append(inc.Evidence, m.evidence...)
			// Attach corroborating context frozen at open time: any new
			// flight-recorder dumps since the last incident, and the
			// current top blame stage if tracing is on.
			dumps := c.set.Flight.Dumps()
			for ; c.dumpsSeen < len(dumps); c.dumpsSeen++ {
				d := dumps[c.dumpsSeen]
				inc.Evidence = append(inc.Evidence,
					fmt.Sprintf("flight-dump: %s node=%d t=%v", d.Reason, d.Node, d.At))
			}
			if top, dur := c.set.Blame.Top(); dur > 0 {
				inc.Evidence = append(inc.Evidence, "blame-top: "+top.String())
			}
			c.open[key] = inc
			c.incidents = append(c.incidents, inc)
			c.logf("t=%v open class=%s culprit=%s conf=%d", now, inc.Class, inc.Culprit, inc.Confidence)
			if c.onIncident != nil {
				c.onIncident(inc, "open")
			}
		} else {
			inc.Epochs++
			inc.LastSeen = now
			inc.quiet = 0
			if m.conf > inc.Confidence {
				inc.Confidence = m.conf
			}
			if inc.Confidence >= inc.loggedConf+10 {
				inc.loggedConf = inc.Confidence
				c.logf("t=%v escalate class=%s culprit=%s conf=%d epochs=%d",
					now, inc.Class, inc.Culprit, inc.Confidence, inc.Epochs)
				if c.onIncident != nil {
					c.onIncident(inc, "escalate")
				}
			}
		}
		inc.seenEpoch = c.epoch
	}
	for key, p := range c.pending {
		if p.epoch < c.epoch { // streak broken this epoch — forget it
			delete(c.pending, key)
		}
	}
	for _, inc := range c.incidents {
		if inc.Closed || inc.seenEpoch == c.epoch {
			continue
		}
		inc.quiet++
		if inc.quiet >= c.cfg.CloseAfter {
			inc.Closed = true
			inc.ClosedAt = now
			delete(c.open, incidentKey{inc.Class, inc.Culprit})
			c.logf("t=%v close class=%s culprit=%s epochs=%d", now, inc.Class, inc.Culprit, inc.Epochs)
			if c.onIncident != nil {
				c.onIncident(inc, "close")
			}
		}
	}
}

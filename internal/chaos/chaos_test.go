package chaos

import (
	"strings"
	"testing"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

func smokeCluster(seed uint64) *cluster.Cluster {
	// Compress the RC retry horizon and keepalive clocks so a 50 ms
	// outage is long enough to trip failure detection in the smoke test.
	nic := rnic.DefaultConfig()
	nic.RetransTimeout = 2 * sim.Millisecond
	nic.RetryLimit = 3
	return cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   nic,
		Nodes:    8,
		Config: func(_ int, cfg *xrdma.Config) {
			cfg.MockEnabled = true
			cfg.KeepaliveInterval = 2 * sim.Millisecond
			cfg.KeepaliveTimeout = 8 * sim.Millisecond
		},
		MockPort:    9000,
		RecoverPort: 9100,
		Seed:        seed,
	})
}

// TestInjectorActionsAndCounters smoke-tests every injector verb against
// a live cluster: each must take effect, be undoable, and tick the right
// chaos.* counter. This is the CI chaos gate — it runs under -race.
func TestInjectorActionsAndCounters(t *testing.T) {
	c := smokeCluster(42)
	inj := New(c)

	inj.LinkDown("pod0-tor0", "pod0-leaf0")
	inj.LinkUp("pod0-tor0", "pod0-leaf0")
	inj.Brownout("pod0-tor0", "pod0-leaf1", 0.1, 0.01, sim.Microsecond)
	inj.ClearBrownout("pod0-tor0", "pod0-leaf1")
	inj.SwitchDown("pod0-leaf0")
	inj.SwitchUp("pod0-leaf0")
	inj.HostLinkDown(3)
	inj.HostLinkUp(3)
	inj.NodeCrash(7)
	inj.NodeRestart(7)
	inj.NicCrash(6)

	if got, want := inj.Faults(), int64(6); got != want {
		t.Errorf("fault counter %d, want %d", got, want)
	}
	if got, want := inj.Heals(), int64(5); got != want {
		t.Errorf("heal counter %d, want %d", got, want)
	}
	if len(inj.Log) != 11 {
		t.Errorf("log has %d events, want 11", len(inj.Log))
	}
}

func TestUnknownTargetsPanic(t *testing.T) {
	c := smokeCluster(42)
	inj := New(c)
	for name, fn := range map[string]func(){
		"link":   func() { inj.LinkDown("nope", "also-nope") },
		"switch": func() { inj.SwitchDown("spine99") },
		"host":   func() { inj.HostLinkDown(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad label did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestScheduleFiresAtExactOffsets: scheduled steps run at their simulated
// offsets and the digest is a pure function of the seed.
func TestScheduleFiresAtExactOffsets(t *testing.T) {
	run := func() []string {
		c := smokeCluster(42)
		inj := New(c)
		inj.Schedule([]Step{
			{At: 5 * sim.Millisecond, Name: "flap", Do: func(i *Injector) {
				i.LinkFlap("pod0-tor0", "pod0-leaf0", 3*sim.Millisecond)
			}},
			{At: 10 * sim.Millisecond, Name: "crash", Do: func(i *Injector) { i.NodeCrash(5) }},
			{At: 20 * sim.Millisecond, Name: "restart", Do: func(i *Injector) { i.NodeRestart(5) }},
		})
		c.Eng.RunFor(30 * sim.Millisecond)
		return inj.Digest()
	}
	d1 := run()
	want := []string{
		"t=5ms link.down pod0-tor0<->pod0-leaf0",
		"t=8ms link.up pod0-tor0<->pod0-leaf0",
		"t=10ms node.crash 5",
		"t=20ms node.restart 5",
	}
	if strings.Join(d1, "\n") != strings.Join(want, "\n") {
		t.Fatalf("digest:\n%s\nwant:\n%s", strings.Join(d1, "\n"), strings.Join(want, "\n"))
	}
	d2 := run()
	if strings.Join(d1, "\n") != strings.Join(d2, "\n") {
		t.Fatal("same seed produced different fault timelines")
	}
}

// TestFaultsPerturbLiveTraffic: a scheduled host-link flap against a
// live channel degrades it and the recovery machinery brings it back —
// the end-to-end smoke of scheduler + health machine together.
func TestFaultsPerturbLiveTraffic(t *testing.T) {
	c := smokeCluster(42)
	c.ListenAll(7000, func(_ *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(m.Retain(), m.Len) })
	})
	var ch *xrdma.Channel
	c.Connect(0, 4, 7000, func(cch *xrdma.Channel, err error) {
		if err != nil {
			t.Fatalf("connect: %v", err)
		}
		ch = cch
	})
	c.Eng.Run()

	degraded := false
	ch.OnHealthChange(func(h xrdma.HealthState) {
		if h != xrdma.HealthHealthy {
			degraded = true
		}
	})
	// Light keepalive traffic keeps the channel observed.
	inj := New(c)
	inj.Schedule([]Step{
		{At: 10 * sim.Millisecond, Name: "cable out", Do: func(i *Injector) { i.HostLinkDown(4) }},
		{At: 60 * sim.Millisecond, Name: "cable in", Do: func(i *Injector) { i.HostLinkUp(4) }},
	})
	c.Eng.RunFor(500 * sim.Millisecond)

	if !degraded {
		t.Fatal("host link outage never degraded the channel")
	}
	if ch.Health() != xrdma.HealthHealthy {
		t.Fatalf("channel ended %v, want recovery to Healthy", ch.Health())
	}
	if inj.Faults() != 1 || inj.Heals() != 1 {
		t.Errorf("counters: faults=%d heals=%d", inj.Faults(), inj.Heals())
	}
}

// Package chaos is the deterministic fault-scenario scheduler for the
// simulated deployments: it injects link, switch, port and node faults
// into a running cluster at exact simulated times, and heals them on the
// same schedule. Because every action rides the simulation engine, a
// scenario with a fixed seed produces a bit-identical fault (and
// recovery) timeline on every run — which is what lets the robustness
// experiments assert exactly-once delivery and golden recovery traces
// rather than eyeball flaky logs.
package chaos

import (
	"fmt"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/xrdma"
)

// Injector applies faults to one cluster. All methods are safe to call
// from engine callbacks; they take effect immediately in simulated time.
type Injector struct {
	C   *cluster.Cluster
	tel *telemetry.Set

	faults Counter
	heals  Counter

	// Log accumulates one line per action for scenario digests.
	Log []Event
}

// Counter aliases the telemetry counter so callers don't import telemetry
// for the two handles below.
type Counter = telemetry.Counter

// Event is one scheduler action, recorded for digest comparison.
type Event struct {
	At   sim.Time
	What string
}

// New builds an injector and registers its chaos.* counters.
func New(c *cluster.Cluster) *Injector {
	tel := telemetry.For(c.Eng)
	return &Injector{
		C:      c,
		tel:    tel,
		faults: tel.Reg.Counter("chaos.faults"),
		heals:  tel.Reg.Counter("chaos.heals"),
	}
}

// Faults reports injected faults; Heals reports healing actions.
func (i *Injector) Faults() int64 { return i.faults.Value() }
func (i *Injector) Heals() int64  { return i.heals.Value() }

func (i *Injector) note(heal bool, format string, args ...any) {
	now := i.C.Eng.Now()
	what := fmt.Sprintf(format, args...)
	i.Log = append(i.Log, Event{At: now, What: what})
	cat := telemetry.CatChaosFault
	if heal {
		cat = telemetry.CatChaosHeal
		i.heals.Inc()
	} else {
		i.faults.Inc()
	}
	i.tel.Flight.Record(now, cat, -1, 0, int64(len(i.Log)), 0)
	i.tel.Trace.Instant(what, "chaos", now, 0)
}

// --- link faults ------------------------------------------------------------

// LinkDown severs the link between the two labelled devices.
func (i *Injector) LinkDown(a, b string) {
	if !i.C.Fab.SetLinkState(a, b, false) {
		panic(fmt.Sprintf("chaos: no link %s<->%s", a, b))
	}
	i.note(false, "link.down %s<->%s", a, b)
}

// LinkUp restores a severed link.
func (i *Injector) LinkUp(a, b string) {
	if !i.C.Fab.SetLinkState(a, b, true) {
		panic(fmt.Sprintf("chaos: no link %s<->%s", a, b))
	}
	i.note(true, "link.up %s<->%s", a, b)
}

// LinkFlap downs a link and schedules its restoration after downFor.
func (i *Injector) LinkFlap(a, b string, downFor sim.Duration) {
	i.LinkDown(a, b)
	i.C.Eng.AfterBg(downFor, func() { i.LinkUp(a, b) })
}

// Brownout degrades a link without killing it: loss and corruption
// probabilities plus added one-way latency (a flaky optic, §V-A's "slow
// port" class of anomaly).
func (i *Injector) Brownout(a, b string, loss, corrupt float64, extra sim.Duration) {
	if !i.C.Fab.SetLinkImpairment(a, b, loss, corrupt, extra) {
		panic(fmt.Sprintf("chaos: no link %s<->%s", a, b))
	}
	i.note(false, "brownout %s<->%s loss=%g corrupt=%g extra=%v", a, b, loss, corrupt, extra)
}

// ClearBrownout removes a link impairment.
func (i *Injector) ClearBrownout(a, b string) {
	if !i.C.Fab.SetLinkImpairment(a, b, 0, 0, 0) {
		panic(fmt.Sprintf("chaos: no link %s<->%s", a, b))
	}
	i.note(true, "brownout.clear %s<->%s", a, b)
}

// HostBrownout degrades one host's access link without killing it — the
// gray "flaky optic at the NIC" class, pinned to a single machine so the
// fleet diagnoser can name the culprit node.
func (i *Injector) HostBrownout(node int, loss, corrupt float64, extra sim.Duration) {
	if !i.C.Fab.SetHostLinkImpairment(fabric.NodeID(node), loss, corrupt, extra) {
		panic(fmt.Sprintf("chaos: no host %d", node))
	}
	i.note(false, "hostlink.brownout %d loss=%g corrupt=%g extra=%v", node, loss, corrupt, extra)
}

// ClearHostBrownout removes a host-link impairment.
func (i *Injector) ClearHostBrownout(node int) {
	if !i.C.Fab.SetHostLinkImpairment(fabric.NodeID(node), 0, 0, 0) {
		panic(fmt.Sprintf("chaos: no host %d", node))
	}
	i.note(true, "hostlink.brownout.clear %d", node)
}

// --- switch faults ----------------------------------------------------------

// SwitchDown fails an entire switch (power loss): every attached link
// drops and neighbours' ECMP steers around the box.
func (i *Injector) SwitchDown(label string) {
	if !i.C.Fab.SetSwitchState(label, false) {
		panic(fmt.Sprintf("chaos: no switch %q", label))
	}
	i.note(false, "switch.down %s", label)
}

// SwitchUp restores a failed switch.
func (i *Injector) SwitchUp(label string) {
	if !i.C.Fab.SetSwitchState(label, true) {
		panic(fmt.Sprintf("chaos: no switch %q", label))
	}
	i.note(true, "switch.up %s", label)
}

// --- host faults ------------------------------------------------------------

// HostLinkDown pulls the host's access cable (NIC-to-ToR).
func (i *Injector) HostLinkDown(node int) {
	if !i.C.Fab.SetHostLink(fabric.NodeID(node), false) {
		panic(fmt.Sprintf("chaos: no host %d", node))
	}
	i.note(false, "hostlink.down %d", node)
}

// HostLinkUp replugs the host's access cable.
func (i *Injector) HostLinkUp(node int) {
	if !i.C.Fab.SetHostLink(fabric.NodeID(node), true) {
		panic(fmt.Sprintf("chaos: no host %d", node))
	}
	i.note(true, "hostlink.up %d", node)
}

// NodeCrash kills a whole machine: the RDMA NIC and the TCP stack both go
// silent without notifying any peer (§V-A's machine-failure class).
func (i *Injector) NodeCrash(node int) {
	n := i.C.Nodes[node]
	n.NIC.Crash()
	n.TCP.Crash()
	i.note(false, "node.crash %d", node)
}

// NodeRestart reboots a crashed machine: the NIC comes back with all QPs
// flushed-and-reset and registered memory gone, the TCP stack revives,
// and the middleware rebuilds its memory cache and re-establishes every
// channel through the health machinery.
func (i *Injector) NodeRestart(node int) {
	n := i.C.Nodes[node]
	n.NIC.Restart()
	n.TCP.Revive()
	n.Ctx.OnNICRestart()
	i.note(true, "node.restart %d", node)
}

// NicCrash kills only the RDMA plane of a node, leaving TCP up — the
// permanent-fault drill: channels must end on the Mock fallback because
// recovery dials can never succeed.
func (i *Injector) NicCrash(node int) {
	i.C.Nodes[node].NIC.Crash()
	i.note(false, "nic.crash %d", node)
}

// DrainRestart rolls one node's middleware under live traffic — the
// hot-upgrade verb: graceful drain (in-flight work runs to completion
// under the drain deadline), in-place restart at a possibly mutated
// configuration (typically a bumped ProtoVerMax), then rehydration of the
// handoff blob so the surviving channels re-establish through the
// recovery plane. prep runs between the restart and the rehydration so
// the scenario can re-install OnChannel handlers and listeners on the
// fresh context.
func (i *Injector) DrainRestart(node int, mutate func(*xrdma.Config), prep func(*xrdma.Context)) {
	n := i.C.Nodes[node]
	i.note(false, "node.drain %d", node)
	if err := n.Ctx.Drain(func(blob []byte) {
		ctx := i.C.Restart(node, mutate)
		if prep != nil {
			prep(ctx)
		}
		if err := ctx.Rehydrate(blob); err != nil {
			panic(fmt.Sprintf("chaos: rehydrate node %d: %v", node, err))
		}
		i.note(true, "node.upgrade %d handoff=%dB", node, len(blob))
	}); err != nil {
		panic(fmt.Sprintf("chaos: drain node %d: %v", node, err))
	}
}

// --- scenario scheduling ----------------------------------------------------

// Step is one scheduled action of a fault scenario.
type Step struct {
	At   sim.Duration // offset from Schedule()
	Name string
	Do   func(*Injector)
}

// Schedule arms every step at its offset from now. Steps run as
// background events: they never keep an otherwise-drained engine alive.
func (i *Injector) Schedule(steps []Step) {
	for _, s := range steps {
		s := s
		i.C.Eng.AfterBg(s.At, func() { s.Do(i) })
	}
}

// Digest renders the action log as deterministic lines ("t=... what"),
// the piece of the recovery timeline the golden tests compare.
func (i *Injector) Digest() []string {
	out := make([]string, len(i.Log))
	for k, e := range i.Log {
		out[k] = fmt.Sprintf("t=%v %s", e.At, e.What)
	}
	return out
}

package fabric

import (
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// Config holds fabric-wide parameters. Defaults model the paper's testbed:
// dual-port 25 Gbps ConnectX-4 Lx hosts on a 3-tier clos.
type Config struct {
	HostLinkBps   int64        // host–ToR link rate, bits/s
	FabricLinkBps int64        // switch–switch link rate, bits/s
	HostPropDelay sim.Duration // host–ToR propagation
	SwPropDelay   sim.Duration // switch–switch propagation
	SwitchDelay   sim.Duration // per-hop forwarding latency
	MTU           int          // max payload per packet

	// ECN (RED-like marking, DCQCN's Kmin/Kmax/Pmax).
	ECNKminBytes int
	ECNKmaxBytes int
	ECNPmax      float64

	// PFC thresholds on per-ingress-port buffer occupancy.
	PFCEnabled bool
	PFCXoff    int // pause above this many buffered bytes
	PFCXon     int // resume below this

	// Egress buffer cap per port; packets beyond it are dropped
	// (only reachable when PFC is disabled or control traffic floods).
	EgressCap int
}

// DefaultConfig returns parameters matching the deployment described in
// §VII ("Deployment at Alibaba"): 25 Gbps host links, 100 Gbps fabric
// links, 4 KB MTU, DCQCN-style ECN thresholds and PFC on.
func DefaultConfig() Config {
	return Config{
		HostLinkBps:   25_000_000_000,
		FabricLinkBps: 100_000_000_000,
		HostPropDelay: 200 * sim.Nanosecond,
		SwPropDelay:   500 * sim.Nanosecond,
		SwitchDelay:   300 * sim.Nanosecond,
		MTU:           4096,
		ECNKminBytes:  100 << 10,
		ECNKmaxBytes:  400 << 10,
		ECNPmax:       0.1,
		PFCEnabled:    true,
		PFCXoff:       512 << 10,
		PFCXon:        256 << 10,
		EgressCap:     4 << 20,
	}
}

// device is anything with ports: a switch or a host adapter.
type device interface {
	receive(p *Packet, in *Port)
	name() string
}

// Port is one side of a full-duplex link. It owns the egress queues for
// traffic leaving its device on that link.
type Port struct {
	eng   *sim.Engine
	owner device
	peer  *Port
	fab   *Fabric

	bps       int64
	propDelay sim.Duration

	ctrlQ pktRing
	dataQ pktRing
	qlen  int // queued data bytes (for ECN marking decisions)

	busy   bool
	paused bool // peer asked us to stop sending ClassData

	// txPkt is the frame currently serializing out of this port (valid
	// while busy); txDoneFn is the cached tx-complete continuation so
	// the per-frame schedule never allocates.
	txPkt    *Packet
	txDoneFn func()

	// Cumulative pause accounting for blame tracing: how long this
	// port's data class has been PFC-paused in total. Updated only on
	// pause transitions, read only for traced packets.
	pausedAt    sim.Time
	pausedTotal sim.Duration

	// Fault-injection state (chaos). down kills the egress half of the
	// link: queued packets are flushed and new sends drop. lossRate and
	// corruptRate model a browned-out optic (applied per transmitted RDMA
	// data frame); extraDelay adds fixed latency to propagation.
	down        bool
	lossRate    float64
	corruptRate float64
	extraDelay  sim.Duration

	// unbounded marks host-side ports: the sender's RNIC regulates its
	// own queue, so the host egress never tail-drops.
	unbounded bool

	// Ingress-side PFC state: bytes buffered in this device that arrived
	// through this port, and whether we have told the upstream peer to
	// stop sending.
	ingressBytes int
	pauseSent    bool
	pfcPauseAt   sim.Time // when the current pause window opened

	// Counters.
	TxBytes   int64
	TxPackets int64
	Drops     int64
}

func (pt *Port) serialize(bytes int) sim.Duration {
	return sim.Duration(int64(bytes) * 8 * int64(sim.Second) / pt.bps)
}

// QueueBytes reports currently queued data bytes (monitoring hook).
func (pt *Port) QueueBytes() int { return pt.qlen }

// Paused reports whether the peer has PFC-paused this port's data class.
func (pt *Port) Paused() bool { return pt.paused }

// linkUp reports whether both halves of the full-duplex link are alive.
func (pt *Port) linkUp() bool { return !pt.down && !pt.peer.down }

// setDown marks the egress half dead and flushes everything queued on it.
// In-flight frames (already serialized onto the wire) still deliver.
// Idempotent: the fabric-wide down-port count must stay exact, since a
// zero count is the routing fast path's licence to skip viability checks.
func (pt *Port) setDown() {
	if pt.down {
		return
	}
	pt.down = true
	pt.fab.downPorts++
	for pt.ctrlQ.len() > 0 {
		pt.dropFlushed(pt.ctrlQ.pop())
	}
	for pt.dataQ.len() > 0 {
		p := pt.dataQ.pop()
		pt.qlen -= p.wireSize()
		pt.dropFlushed(p)
	}
}

// setUp revives the egress half and restarts transmission.
func (pt *Port) setUp() {
	if !pt.down {
		return
	}
	pt.down = false
	pt.fab.downPorts--
	pt.kick()
}

func (pt *Port) dropFlushed(p *Packet) {
	pt.Drops++
	pt.fab.Stats.Drops++
	pt.releaseIngress(p)
	pt.fab.FreePacket(p)
}

// pauseTotalAt reports cumulative data-class pause time through now.
func (pt *Port) pauseTotalAt(now sim.Time) sim.Duration {
	if pt.paused {
		return pt.pausedTotal + now.Sub(pt.pausedAt)
	}
	return pt.pausedTotal
}

// send enqueues a packet for transmission out of this port.
func (pt *Port) send(p *Packet) {
	if pt.down {
		pt.dropFlushed(p)
		return
	}
	if p.Blame != nil {
		// Trace bit set: stamp this hop's enqueue so dequeue can
		// attribute egress residency and its PFC-pause share.
		p.blameEnqAt = pt.eng.Now()
		p.blamePauseRef = pt.pauseTotalAt(p.blameEnqAt)
	}
	if p.Class == ClassCtrl {
		pt.ctrlQ.push(p)
	} else {
		// With PFC on, ingress admission keeps buffers bounded and the
		// fabric is lossless; tail drops only exist in lossy mode.
		if !pt.unbounded && !pt.fab.cfg.PFCEnabled && pt.qlen+p.wireSize() > pt.fab.cfg.EgressCap {
			pt.Drops++
			pt.fab.Stats.Drops++
			pt.releaseIngress(p)
			pt.fab.FreePacket(p)
			return
		}
		pt.markECN(p)
		pt.dataQ.push(p)
		pt.qlen += p.wireSize()
	}
	pt.kick()
}

// markECN applies RED-style marking against the current egress queue depth,
// the switch-side half of DCQCN.
func (pt *Port) markECN(p *Packet) {
	if !p.ECT || p.Marked {
		return
	}
	cfg := pt.fab.cfg
	q := pt.qlen
	switch {
	case q <= cfg.ECNKminBytes:
		return
	case q >= cfg.ECNKmaxBytes:
		p.Marked = true
	default:
		frac := float64(q-cfg.ECNKminBytes) / float64(cfg.ECNKmaxBytes-cfg.ECNKminBytes)
		if pt.fab.rng.Float64() < frac*cfg.ECNPmax {
			p.Marked = true
		}
	}
	if p.Marked {
		pt.fab.Stats.ECNMarks++
		if p.Blame != nil {
			p.Blame.ECN++
		}
	}
}

// kick starts transmission if the port is idle and has eligible traffic.
func (pt *Port) kick() {
	if pt.busy || pt.down {
		return
	}
	var p *Packet
	switch {
	case pt.ctrlQ.len() > 0:
		p = pt.ctrlQ.pop()
	case pt.dataQ.len() > 0 && !pt.paused:
		p = pt.dataQ.pop()
		pt.qlen -= p.wireSize()
	default:
		return
	}
	if p.Blame != nil {
		now := pt.eng.Now()
		p.Blame.Queue += now.Sub(p.blameEnqAt)
		p.Blame.Pause += pt.pauseTotalAt(now) - p.blamePauseRef
	}
	pt.busy = true
	pt.txPkt = p
	if pt.txDoneFn == nil {
		pt.txDoneFn = pt.txDone
	}
	pt.eng.After(pt.serialize(p.wireSize()), pt.txDoneFn)
}

// txDone fires when the frame on the wire finishes serializing: it applies
// brownout impairments, schedules the propagation-delay arrival at the
// peer, and starts the next frame. A port transmits one frame at a time
// (busy), so the single txPkt slot is never contended.
func (pt *Port) txDone() {
	p := pt.txPkt
	pt.txPkt = nil
	pt.busy = false
	pt.TxBytes += int64(p.wireSize())
	pt.TxPackets++
	pt.releaseIngress(p)
	// Brownout impairments: drawn only when a rate is configured, so
	// the golden path never touches the RNG here. Only RDMA data
	// frames are impaired — the kernel TCP fallback path is assumed
	// to ride a separate, healthy NIC port.
	if pt.lossRate > 0 && p.Proto == ProtoRDMA && p.Class == ClassData &&
		pt.fab.rng.Float64() < pt.lossRate {
		pt.Drops++
		pt.fab.Stats.Drops++
		pt.fab.FreePacket(p)
		pt.kick()
		return
	}
	if pt.corruptRate > 0 && p.Proto == ProtoRDMA && p.Class == ClassData &&
		pt.fab.rng.Float64() < pt.corruptRate {
		p.Corrupt = true
		pt.fab.Stats.Corrupted++
	}
	if p.arriveFn == nil {
		p.initHopFns()
	}
	p.hopTo = pt.peer
	pt.eng.After(pt.propDelay+pt.extraDelay, p.arriveFn)
	pt.kick()
}

// releaseIngress returns the packet's bytes to the ingress accounting of
// the device it is leaving and lifts PFC if the buffer drained enough.
func (pt *Port) releaseIngress(p *Packet) {
	in := p.inPort
	p.inPort = nil
	if in == nil || !pt.fab.cfg.PFCEnabled {
		return
	}
	in.ingressBytes -= p.wireSize()
	if in.pauseSent && in.ingressBytes <= pt.fab.cfg.PFCXon {
		in.pauseSent = false
		in.sendPFC(false)
	}
}

// accountIngress charges an arriving data packet against this ingress port
// and emits a pause frame if the threshold is crossed.
func (pt *Port) accountIngress(p *Packet) {
	if !pt.fab.cfg.PFCEnabled || p.Class != ClassData {
		return
	}
	p.inPort = pt
	pt.ingressBytes += p.wireSize()
	if !pt.pauseSent && pt.ingressBytes > pt.fab.cfg.PFCXoff {
		pt.pauseSent = true
		pt.sendPFC(true)
	}
}

// sendPFC delivers a pause/resume indication to the peer. Pause frames are
// tiny and ride the wire ahead of data; the model applies them after one
// propagation delay without occupying the queue.
func (pt *Port) sendPFC(pause bool) {
	now := pt.eng.Now()
	if pause {
		pt.fab.Stats.PauseTX++
		pt.pfcPauseAt = now
		pt.fab.tel.Flight.Record(now, telemetry.CatPFCPause, -1, 0, int64(pt.ingressBytes), 1)
		pt.fab.tel.Trace.Instant("pfc.pause", "fabric", now, int64(pt.ingressBytes))
	} else {
		// The window closes when the resume goes out; the span covers
		// the whole ingress-pressure episode on this port.
		pt.fab.tel.Trace.Complete("pfc.pause", "fabric", pt.pfcPauseAt, now.Sub(pt.pfcPauseAt), int64(pt.ingressBytes))
	}
	peer := pt.peer
	pt.eng.After(pt.propDelay, func() {
		if pause != peer.paused {
			if pause {
				peer.pausedAt = peer.eng.Now()
			} else {
				peer.pausedTotal += peer.eng.Now().Sub(peer.pausedAt)
			}
		}
		peer.paused = pause
		if !pause {
			peer.kick()
		}
	})
}

// pktRing is a FIFO of packets backed by a power-of-two circular buffer:
// steady-state enqueue/dequeue never allocates, unlike the previous
// append/reslice queues that leaked their backing-array heads.
type pktRing struct {
	buf        []*Packet
	head, tail int // monotonically increasing; index = pos & (len(buf)-1)
}

func (r *pktRing) len() int { return r.tail - r.head }

func (r *pktRing) push(p *Packet) {
	if r.tail-r.head == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail&(len(r.buf)-1)] = p
	r.tail++
}

func (r *pktRing) pop() *Packet {
	i := r.head & (len(r.buf) - 1)
	p := r.buf[i]
	r.buf[i] = nil
	r.head++
	return p
}

func (r *pktRing) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 16
	}
	nb := make([]*Packet, n)
	cnt := r.tail - r.head
	for i := 0; i < cnt; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head, r.tail = nb, 0, cnt
}

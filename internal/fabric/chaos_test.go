package fabric

import (
	"testing"

	"xrdma/internal/sim"
)

// sendFlows pushes one packet per flow hash in each direction between a
// and b and returns how many the two sinks got in total.
func sendFlows(eng *sim.Engine, f *Fabric, sinks map[NodeID]*sink, a, b NodeID, flows int) int {
	beforeA, beforeB := len(sinks[a].got), len(sinks[b].got)
	for i := 0; i < flows; i++ {
		f.Host(a).Send(&Packet{Src: a, Dst: b, Size: 1000, FlowHash: uint64(i + 1), ECT: true})
		f.Host(b).Send(&Packet{Src: b, Dst: a, Size: 1000, FlowHash: uint64(i + 1), ECT: true})
	}
	eng.Run()
	return (len(sinks[a].got) - beforeA) + (len(sinks[b].got) - beforeB)
}

// TestLinkDownECMPReroutes: killing one ToR uplink must not lose a single
// cross-ToR packet — both the ToR that owns the dead uplink and the
// remote ToR (whose hash would steer flows into the now-dead leaf
// downlink) re-hash onto the surviving leaf, and the per-switch Rerouted
// counters show where the steering happened.
func TestLinkDownECMPReroutes(t *testing.T) {
	eng, f, sinks := buildSmall(t, DefaultConfig())
	const flows = 32

	if got := sendFlows(eng, f, sinks, 0, 5, flows); got != 2*flows {
		t.Fatalf("healthy fabric delivered %d/%d", got, 2*flows)
	}
	if f.Stats.Rerouted != 0 {
		t.Fatalf("healthy fabric rerouted %d packets", f.Stats.Rerouted)
	}

	if !f.SetLinkState("pod0-tor0", "pod0-leaf0", false) {
		t.Fatal("link not found")
	}
	if got := sendFlows(eng, f, sinks, 0, 5, flows); got != 2*flows {
		t.Fatalf("after uplink loss delivered %d/%d", got, 2*flows)
	}
	if f.Stats.Rerouted == 0 {
		t.Fatal("no packets counted as rerouted")
	}
	tor0 := f.SwitchByLabel("pod0-tor0")
	tor1 := f.SwitchByLabel("pod0-tor1")
	if tor0.Rerouted == 0 {
		t.Errorf("tor0 (dead uplink owner) rerouted %d", tor0.Rerouted)
	}
	if tor1.Rerouted == 0 {
		t.Errorf("tor1 (remote, viability-driven) rerouted %d", tor1.Rerouted)
	}

	// Heal: subsequent traffic spreads over both leaves again with no
	// further rerouting.
	f.SetLinkState("pod0-tor0", "pod0-leaf0", true)
	before := f.Stats.Rerouted
	if got := sendFlows(eng, f, sinks, 0, 5, flows); got != 2*flows {
		t.Fatalf("after heal delivered %d/%d", got, 2*flows)
	}
	if f.Stats.Rerouted != before {
		t.Errorf("healed fabric still rerouting: %d -> %d", before, f.Stats.Rerouted)
	}
}

// TestTorIsolationDropsWithCounters: with both uplinks dead the ToR has
// nowhere to steer — cross-ToR packets die at the ToR and the per-switch
// dead-route and drop counters record it.
func TestTorIsolationDropsWithCounters(t *testing.T) {
	eng, f, sinks := buildSmall(t, DefaultConfig())
	f.SetLinkState("pod0-tor0", "pod0-leaf0", false)
	f.SetLinkState("pod0-tor0", "pod0-leaf1", false)

	if got := sendFlows(eng, f, sinks, 0, 5, 8); got != 0 {
		t.Fatalf("partitioned fabric delivered %d packets", got)
	}
	tor0 := f.SwitchByLabel("pod0-tor0")
	tor1 := f.SwitchByLabel("pod0-tor1")
	if tor0.DeadDrops == 0 || tor0.Drops == 0 {
		t.Errorf("tor0 counters: DeadDrops=%d Drops=%d, want both > 0", tor0.DeadDrops, tor0.Drops)
	}
	// The reverse direction dies at tor1: every leaf has lost its path
	// down into tor0, so viability rules out both uplinks.
	if tor1.DeadDrops == 0 {
		t.Errorf("tor1 DeadDrops=%d, want > 0", tor1.DeadDrops)
	}
	if f.Stats.Drops == 0 {
		t.Error("fabric-wide drop counter never moved")
	}

	// Same-ToR traffic is unaffected by uplink loss.
	if got := sendFlows(eng, f, sinks, 0, 1, 4); got != 8 {
		t.Fatalf("same-ToR traffic delivered %d/8 during uplink outage", got)
	}

	f.SetLinkState("pod0-tor0", "pod0-leaf0", true)
	f.SetLinkState("pod0-tor0", "pod0-leaf1", true)
	if got := sendFlows(eng, f, sinks, 0, 5, 8); got != 16 {
		t.Fatalf("healed fabric delivered %d/16", got)
	}
}

// TestSwitchFailureSteersAroundBox: powering off a leaf reroutes every
// flow that hashed through it; powering it back on restores spreading.
func TestSwitchFailureSteersAroundBox(t *testing.T) {
	eng, f, sinks := buildSmall(t, DefaultConfig())
	if !f.SetSwitchState("pod0-leaf0", false) {
		t.Fatal("switch not found")
	}
	if got := sendFlows(eng, f, sinks, 1, 6, 16); got != 32 {
		t.Fatalf("leaf failure: delivered %d/32", got)
	}
	if f.Stats.Rerouted == 0 {
		t.Error("no rerouting recorded around dead leaf")
	}
	leaf0 := f.SwitchByLabel("pod0-leaf0")
	if leaf0.Drops != 0 {
		// Nothing was in flight when the box died; new traffic must never
		// reach it.
		t.Errorf("dead leaf saw %d drops of traffic routed into it", leaf0.Drops)
	}
	f.SetSwitchState("pod0-leaf0", true)
	if got := sendFlows(eng, f, sinks, 1, 6, 16); got != 32 {
		t.Fatalf("after power-on: delivered %d/32", got)
	}
}

// TestHostLinkPullIsolatesOneHost: a pulled access cable kills that
// host's traffic (counted at its ToR) and nobody else's.
func TestHostLinkPullIsolatesOneHost(t *testing.T) {
	eng, f, sinks := buildSmall(t, DefaultConfig())
	if !f.SetHostLink(5, false) {
		t.Fatal("host not found")
	}
	f.Host(0).Send(&Packet{Src: 0, Dst: 5, Size: 1000, FlowHash: 3, ECT: true})
	f.Host(0).Send(&Packet{Src: 0, Dst: 6, Size: 1000, FlowHash: 4, ECT: true})
	eng.Run()
	if len(sinks[5].got) != 0 {
		t.Fatalf("unplugged host received %d packets", len(sinks[5].got))
	}
	if len(sinks[6].got) != 1 {
		t.Fatalf("bystander host received %d/1 packets", len(sinks[6].got))
	}
	// Viability propagates the dead access port upstream: the sender's
	// own ToR already sees no viable route and drops there, exactly like
	// a fabric whose IGP withdrew the /32.
	if tor0 := f.SwitchByLabel("pod0-tor0"); tor0.DeadDrops == 0 {
		t.Error("sender's ToR never counted the unreachable host")
	}
	f.SetHostLink(5, true)
	f.Host(0).Send(&Packet{Src: 0, Dst: 5, Size: 1000, FlowHash: 5, ECT: true})
	eng.Run()
	if len(sinks[5].got) != 1 {
		t.Fatal("replugged host got no traffic")
	}
}

// TestBrownoutLossAndCorruption: impairments drop or corrupt frames
// per-probability and clear cleanly.
func TestBrownoutLossAndCorruption(t *testing.T) {
	eng, f, sinks := buildSmall(t, DefaultConfig())
	// Total loss on one uplink: flows hashed through it vanish (the link
	// is up, so ECMP does not steer around a lossy optic — that is the
	// middleware's job to detect, §V-A).
	if !f.SetLinkImpairment("pod0-tor0", "pod0-leaf0", 1.0, 0, 0) {
		t.Fatal("link not found")
	}
	got := sendFlows(eng, f, sinks, 0, 5, 16)
	if got == 0 || got == 32 {
		t.Fatalf("total loss on one of two ECMP paths delivered %d/32, want partial", got)
	}

	// Certain corruption: everything arrives, marked, and counted.
	f.SetLinkImpairment("pod0-tor0", "pod0-leaf0", 0, 1.0, 0)
	before := len(sinks[5].got)
	corrBefore := f.Stats.Corrupted
	for i := 0; i < 16; i++ {
		f.Host(0).Send(&Packet{Src: 0, Dst: 5, Size: 1000, FlowHash: uint64(100 + i), ECT: true})
	}
	eng.Run()
	delivered := sinks[5].got[before:]
	if len(delivered) != 16 {
		t.Fatalf("corruption-only brownout delivered %d/16", len(delivered))
	}
	corrupt := 0
	for _, p := range delivered {
		if p.Corrupt {
			corrupt++
		}
	}
	if corrupt == 0 {
		t.Fatal("no delivered packet carried the corruption mark")
	}
	if f.Stats.Corrupted == corrBefore {
		t.Error("fabric corruption counter never moved")
	}

	// Clearing the impairment restores clean delivery.
	f.SetLinkImpairment("pod0-tor0", "pod0-leaf0", 0, 0, 0)
	before = len(sinks[5].got)
	for i := 0; i < 8; i++ {
		f.Host(0).Send(&Packet{Src: 0, Dst: 5, Size: 1000, FlowHash: uint64(200 + i), ECT: true})
	}
	eng.Run()
	for _, p := range sinks[5].got[before:] {
		if p.Corrupt {
			t.Fatal("packet corrupted after impairment cleared")
		}
	}
	if n := len(sinks[5].got) - before; n != 8 {
		t.Fatalf("cleared link delivered %d/8", n)
	}
}

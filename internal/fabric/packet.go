// Package fabric simulates the Ethernet clos network X-RDMA runs over at
// Alibaba (§II-B of the paper): spine/leaf/ToR switches, ECMP routing,
// RED-style ECN marking for DCQCN, and priority flow control (PFC) for a
// lossless RoCEv2 fabric. Congestion phenomena — incast queue build-up,
// CNP-eligible marking, pause propagation — emerge from the queueing model
// rather than being scripted.
package fabric

import (
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// NodeID identifies a host attached to the fabric.
type NodeID int

// Packet class. Control packets (CNPs, acks, pause frames) ride a strict
// high-priority class that PFC never pauses, mirroring how RoCEv2 deploys
// CNPs on a dedicated priority.
type Class uint8

const (
	// ClassData is PFC-protected lossless bulk traffic.
	ClassData Class = iota
	// ClassCtrl is high-priority control traffic (CNP, hardware acks).
	ClassCtrl
)

// EthOverhead is the per-frame wire overhead (preamble, headers, FCS, IFG)
// added to every packet's payload when computing serialization time.
const EthOverhead = 62

// Proto selects which host endpoint consumes a delivered packet: the RNIC,
// the connection-manager control plane, or the kernel TCP stack.
type Proto uint8

const (
	ProtoRDMA Proto = iota
	ProtoCM
	ProtoTCP
)

// Packet is one wire frame. RNICs segment messages into MTU-sized packets;
// the fabric never fragments further.
type Packet struct {
	Src, Dst NodeID
	Size     int    // payload bytes on the wire (excluding EthOverhead)
	FlowHash uint64 // ECMP key, stable per (QP, direction)
	Class    Class
	Proto    Proto

	ECT    bool // ECN-capable transport (DCQCN data packets)
	Marked bool // congestion experienced (set by switches)

	// Corrupt marks a frame whose payload was damaged in flight (chaos
	// injection). The fabric still delivers it — FCS checking happens at
	// the receiving NIC, which drops and counts it.
	Corrupt bool

	// Payload is opaque to the fabric; the RNIC model stores its
	// protocol header here.
	Payload any

	// SentAt is stamped by the sending host when the packet first hits
	// the wire; used for fabric-level latency accounting.
	SentAt sim.Time

	// Blame, when non-nil, is the packet's trace bit: an INT-style
	// per-message accumulator that every hop stamps egress-queue
	// residency, PFC-pause share and ECN marks into. Untraced packets
	// carry nil and the stamping branches never execute, keeping the
	// hot path untouched.
	Blame *telemetry.PktBlame

	// inPort tracks the ingress port inside the current device, for PFC
	// buffer accounting. Managed by the fabric only.
	inPort *Port

	// blameEnqAt / blamePauseRef record the current hop's enqueue time
	// and the egress port's cumulative pause time at enqueue, so dequeue
	// can attribute this hop's residency. Managed by ports, and only
	// when Blame is set.
	blameEnqAt    sim.Time
	blamePauseRef sim.Duration

	// hopTo plus the two cached closures schedule the per-hop events
	// (link arrival at the peer, switch forwarding delay) without
	// allocating: the closures capture only the packet, are built once
	// per Packet, and survive free-list recycling. hopTo holds the
	// target port of the one hop currently scheduled — a packet is in
	// exactly one place, so the slot is never contended. Managed by the
	// fabric only.
	hopTo     *Port
	arriveFn  func()
	forwardFn func()
}

// initHopFns builds the packet's cached hop closures. Invoked lazily at
// the first scheduled hop, so packets constructed directly by tests work
// too; free-listed packets keep theirs across recycling.
func (p *Packet) initHopFns() {
	p.arriveFn = func() {
		to := p.hopTo
		p.hopTo = nil
		to.owner.receive(p, to)
	}
	p.forwardFn = func() {
		to := p.hopTo
		p.hopTo = nil
		to.send(p)
	}
}

// wireSize is the number of bytes that occupy the link.
func (p *Packet) wireSize() int { return p.Size + EthOverhead }

// Endpoint consumes packets delivered to a host. The RNIC model implements
// this. Ownership contract: the packet is only valid for the duration of
// the HandlePacket call — the fabric recycles it immediately afterwards,
// so implementations must copy any fields (or payload references) they
// need beyond that point.
type Endpoint interface {
	HandlePacket(p *Packet)
}

package fabric

import (
	"fmt"

	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// Stats aggregates fabric-wide counters; the paper's Fig. 10 plots CNPs and
// TX pause frames, both of which originate here (marks) or at RNICs (CNPs).
type Stats struct {
	ECNMarks  int64 // data packets marked congestion-experienced
	PauseTX   int64 // PFC pause frames emitted
	Drops     int64 // tail drops (PFC off, buffer exhaustion, dead links)
	Delivered int64 // packets handed to endpoints
	DataBytes int64 // payload bytes delivered
	Corrupted int64 // frames damaged by chaos corruption injection
	Rerouted  int64 // packets ECMP re-hashed around a dead link
}

// Fabric owns the devices, links, global counters and the marking RNG.
type Fabric struct {
	Eng   *sim.Engine
	Stats Stats

	cfg      Config
	rng      *sim.RNG
	tel      *telemetry.Set
	hosts    map[NodeID]*Host
	switches []*Switch

	// downPorts counts port halves currently administratively down. While
	// zero (the healthy fabric — and every golden run), routing takes the
	// original fast path with no viability checks at all.
	downPorts int

	// pktFree recycles Packet structs: at steady state every hop of every
	// flow reuses the same handful of nodes instead of hammering the GC.
	pktFree []*Packet
}

// NewPacket returns a zeroed packet from the fabric's free-list (or a fresh
// one on a cold start). Senders fill it and pass it to Host.Send; the
// fabric reclaims it at its single termination point (delivery or drop).
func (f *Fabric) NewPacket() *Packet {
	if k := len(f.pktFree) - 1; k >= 0 {
		p := f.pktFree[k]
		f.pktFree[k] = nil
		f.pktFree = f.pktFree[:k]
		return p
	}
	return &Packet{}
}

// FreePacket zeroes p and returns it to the free-list. Callers must hold
// the only live reference; endpoints never retain packets past
// HandlePacket, so the delivery path can free unconditionally.
func (f *Fabric) FreePacket(p *Packet) {
	if p == nil {
		return
	}
	arrive, forward := p.arriveFn, p.forwardFn
	*p = Packet{}
	p.arriveFn, p.forwardFn = arrive, forward
	f.pktFree = append(f.pktFree, p)
}

// New creates an empty fabric; attach hosts and switches via the topology
// builders.
func New(eng *sim.Engine, cfg Config, seed uint64) *Fabric {
	f := &Fabric{
		Eng:   eng,
		cfg:   cfg,
		rng:   sim.NewRNG(seed),
		hosts: make(map[NodeID]*Host),
		tel:   telemetry.For(eng),
	}
	// Aggregate counters are plain fields; the registry reads them through
	// GaugeFuncs at snapshot time, so the packet path pays nothing. The
	// queue gauges iterate whatever switches the topology builder attaches
	// later — closures see the live slice.
	reg := f.tel.Reg
	reg.GaugeFunc("fabric.ecn_marks", func() int64 { return f.Stats.ECNMarks })
	reg.GaugeFunc("fabric.pause_tx", func() int64 { return f.Stats.PauseTX })
	reg.GaugeFunc("fabric.drops", func() int64 { return f.Stats.Drops })
	reg.GaugeFunc("fabric.delivered", func() int64 { return f.Stats.Delivered })
	reg.GaugeFunc("fabric.data_bytes", func() int64 { return f.Stats.DataBytes })
	reg.GaugeFunc("fabric.corrupted", func() int64 { return f.Stats.Corrupted })
	reg.GaugeFunc("fabric.rerouted", func() int64 { return f.Stats.Rerouted })
	reg.GaugeFunc("fabric.queue_bytes", func() int64 {
		var total int64
		for _, s := range f.switches {
			total += int64(s.QueueBytes())
		}
		return total
	})
	reg.GaugeFunc("fabric.max_port_queue", func() int64 {
		var m int64
		for _, s := range f.switches {
			if q := int64(s.MaxPortQueue()); q > m {
				m = q
			}
		}
		return m
	})
	return f
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Host returns the adapter for a node.
func (f *Fabric) Host(id NodeID) *Host { return f.hosts[id] }

// Hosts returns the number of attached hosts.
func (f *Fabric) Hosts() int { return len(f.hosts) }

// Switches exposes the switch list for monitoring tools.
func (f *Fabric) Switches() []*Switch { return f.switches }

// link wires two ports together full-duplex.
func (f *Fabric) link(a, b device, bps int64, prop sim.Duration) (pa, pb *Port) {
	pa = &Port{eng: f.Eng, owner: a, fab: f, bps: bps, propDelay: prop}
	pb = &Port{eng: f.Eng, owner: b, fab: f, bps: bps, propDelay: prop}
	pa.peer, pb.peer = pb, pa
	return pa, pb
}

// Host is a node's network adapter: a single logical port toward its ToR.
// The RNIC model sits on top via the Endpoint interface and does its own
// scheduling; the host port still serializes at line rate and honours PFC.
type Host struct {
	ID   NodeID
	fab  *Fabric
	port *Port
	eps  [3]Endpoint // indexed by Proto
}

func (h *Host) name() string { return fmt.Sprintf("host%d", h.ID) }

// Attach registers the RDMA packet consumer (the RNIC model).
func (h *Host) Attach(ep Endpoint) { h.AttachProto(ProtoRDMA, ep) }

// AttachProto registers the consumer for one protocol plane.
func (h *Host) AttachProto(proto Proto, ep Endpoint) { h.eps[proto] = ep }

// Fabric returns the fabric this host is attached to (packet-pool access
// for the protocol models riding on the host).
func (h *Host) Fabric() *Fabric { return h.fab }

// Send puts a packet on the wire toward its destination.
func (h *Host) Send(p *Packet) {
	p.SentAt = h.fab.Eng.Now()
	h.port.send(p)
}

// LinkBps reports the host link rate.
func (h *Host) LinkBps() int64 { return h.port.bps }

// TxQueueBytes reports bytes queued in the host egress port — the RNIC's
// view of local congestion.
func (h *Host) TxQueueBytes() int { return h.port.QueueBytes() }

// TxPaused reports whether the ToR has PFC-paused this host.
func (h *Host) TxPaused() bool { return h.port.Paused() }

func (h *Host) receive(p *Packet, in *Port) {
	// Host adapters sink packets immediately: the RNIC model applies its
	// own processing delays. No ingress PFC accounting at the host; the
	// RNIC is assumed to drain at line rate (RNR is modeled above, at
	// the queue-pair level, where the paper's issues live).
	h.fab.Stats.Delivered++
	if p.Class == ClassData {
		h.fab.Stats.DataBytes += int64(p.Size)
	}
	if ep := h.eps[p.Proto]; ep != nil {
		ep.HandlePacket(p)
	}
	// Delivery is the packet's end of life; endpoints copy what they keep.
	h.fab.FreePacket(p)
}

// Switch is a store-and-forward device with per-destination ECMP route
// tables computed by the topology builder.
type Switch struct {
	Label string
	Tier  int // 0=ToR, 1=leaf, 2=spine
	fab   *Fabric
	ports []*Port
	// routes maps destination node → candidate egress ports (ECMP set).
	routes map[NodeID][]*Port

	// Topology bookkeeping used by the route builder.
	pod       int
	uplinks   []*Port
	downlinks []downlink
	hostPorts []hostlink

	// down marks a failed switch: in-flight arrivals drop, and every
	// egress port is dead so neighbours' ECMP steers around it.
	down bool

	// Per-switch fault counters (chaos observability).
	Drops     int64 // packets this switch had to discard
	DeadDrops int64 // discarded because every candidate egress was dead
	Rerouted  int64 // re-hashed onto a live port after the primary died
}

func (s *Switch) name() string { return s.Label }

// QueueBytes sums queued bytes across all egress ports (monitoring).
func (s *Switch) QueueBytes() int {
	total := 0
	for _, p := range s.ports {
		total += p.QueueBytes()
	}
	return total
}

// MaxPortQueue reports the deepest egress queue (hotspot detection).
func (s *Switch) MaxPortQueue() int {
	m := 0
	for _, p := range s.ports {
		if q := p.QueueBytes(); q > m {
			m = q
		}
	}
	return m
}

func (s *Switch) receive(p *Packet, in *Port) {
	if s.down {
		// A dead switch sinks whatever was already in flight toward it.
		s.Drops++
		s.fab.Stats.Drops++
		s.fab.FreePacket(p)
		return
	}
	out := s.route(p)
	if out == nil {
		s.Drops++
		s.fab.Stats.Drops++
		s.fab.FreePacket(p)
		return
	}
	in.accountIngress(p)
	if p.forwardFn == nil {
		p.initHopFns()
	}
	p.hopTo = out
	s.fab.Eng.After(s.fab.cfg.SwitchDelay, p.forwardFn)
}

// routeViabilityDepth bounds the viability recursion: the longest clos
// path is tor→leaf→spine→leaf→tor→host, so looking four switches ahead
// sees every possible dead end.
const routeViabilityDepth = 4

// ecmpMix is the multiplicative mix every switch applies to a flow key
// before reducing it to a candidate index.
const ecmpMix = 0x9e3779b97f4a7c15

// ECMPIndex is the deterministic per-flow candidate choice among n
// equal-cost ports. Exported so path-aware tooling (the gray-failure
// doctor's experiments and drills) can predict which leaf a given QP
// flow key rides — ToR uplink candidates are appended in leaf order, so
// the index maps directly to "podX-leaf<idx>".
func ECMPIndex(hash uint64, n int) int {
	return int((hash * ecmpMix) % uint64(n))
}

func (s *Switch) route(p *Packet) *Port {
	cands := s.routes[p.Dst]
	if len(cands) == 0 {
		return nil
	}
	var pick *Port
	if len(cands) == 1 {
		pick = cands[0]
	} else {
		// ECMP: deterministic per-flow hash so a flow never reorders.
		pick = cands[ECMPIndex(p.FlowHash, len(cands))]
	}
	if s.fab.downPorts == 0 || s.viable(pick, p.Dst, routeViabilityDepth) {
		return pick
	}
	// Primary path is dead — either this very link or everything past the
	// next hop (a leaf that lost its only downlink to the destination
	// ToR, the converged-routing view a real fabric gets from its IGP
	// withdrawing the prefix). Re-hash the same flow key over the viable
	// subset so routing stays deterministic per flow, or drop if the
	// destination is unreachable from here.
	var liveArr [8]*Port
	live := liveArr[:0]
	for _, c := range cands {
		if s.viable(c, p.Dst, routeViabilityDepth) {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		s.DeadDrops++
		return nil
	}
	s.Rerouted++
	s.fab.Stats.Rerouted++
	return live[ECMPIndex(p.FlowHash, len(live))]
}

// viable reports whether pt can still make progress toward dst: the link
// is up and, when the next hop is a switch, that switch retains a viable
// route of its own. Clos route tables descend the hierarchy monotonically
// (up toward spines, then strictly down), so the recursion cannot loop.
func (s *Switch) viable(pt *Port, dst NodeID, depth int) bool {
	if !pt.linkUp() {
		return false
	}
	next, ok := pt.peer.owner.(*Switch)
	if !ok {
		return true // host port: delivery itself
	}
	if next.down {
		return false
	}
	if depth <= 0 {
		return true
	}
	for _, c := range next.routes[dst] {
		if next.viable(c, dst, depth-1) {
			return true
		}
	}
	return false
}

package fabric

import (
	"testing"
	"testing/quick"

	"xrdma/internal/sim"
)

type sink struct {
	got   []Packet // copies: the fabric recycles packets after delivery
	times []sim.Time
	eng   *sim.Engine
}

func (s *sink) HandlePacket(p *Packet) {
	s.got = append(s.got, *p)
	s.times = append(s.times, s.eng.Now())
}

func buildSmall(t *testing.T, cfg Config) (*sim.Engine, *Fabric, map[NodeID]*sink) {
	t.Helper()
	eng := sim.NewEngine()
	f := New(eng, cfg, 1)
	BuildClos(f, SmallClos())
	sinks := make(map[NodeID]*sink)
	for i := 0; i < f.Hosts(); i++ {
		s := &sink{eng: eng}
		sinks[NodeID(i)] = s
		f.Host(NodeID(i)).Attach(s)
	}
	return eng, f, sinks
}

func TestDeliverySameTor(t *testing.T) {
	eng, f, sinks := buildSmall(t, DefaultConfig())
	f.Host(0).Send(&Packet{Src: 0, Dst: 1, Size: 1000, FlowHash: 1, ECT: true})
	eng.Run()
	if len(sinks[1].got) != 1 {
		t.Fatalf("host1 received %d packets, want 1", len(sinks[1].got))
	}
	// One host link up + one down + one ToR hop: latency should be a few µs.
	lat := sim.Duration(sinks[1].times[0])
	if lat <= 0 || lat > 10*sim.Microsecond {
		t.Fatalf("same-ToR latency %v outside (0, 10µs]", lat)
	}
}

func TestDeliveryCrossTor(t *testing.T) {
	eng, f, sinks := buildSmall(t, DefaultConfig())
	// Hosts 0..3 on tor0, 4..7 on tor1.
	f.Host(0).Send(&Packet{Src: 0, Dst: 5, Size: 1000, FlowHash: 2, ECT: true})
	eng.Run()
	if len(sinks[5].got) != 1 {
		t.Fatalf("host5 received %d packets, want 1", len(sinks[5].got))
	}
	if f.Stats.Delivered != 1 {
		t.Fatalf("Stats.Delivered = %d", f.Stats.Delivered)
	}
}

func TestCrossPodDelivery(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, DefaultConfig(), 1)
	BuildClos(f, Topology{Pods: 2, LeavesPerPod: 2, TorsPerPod: 2, HostsPerTor: 2})
	last := NodeID(f.Hosts() - 1)
	s := &sink{eng: eng}
	f.Host(last).Attach(s)
	f.Host(0).Send(&Packet{Src: 0, Dst: last, Size: 500, FlowHash: 3, ECT: true})
	eng.Run()
	if len(s.got) != 1 {
		t.Fatalf("cross-pod packet not delivered")
	}
}

func TestInOrderPerFlow(t *testing.T) {
	eng, f, sinks := buildSmall(t, DefaultConfig())
	const n = 200
	for i := 0; i < n; i++ {
		i := i
		eng.At(sim.Time(i*100), func() {
			f.Host(0).Send(&Packet{Src: 0, Dst: 6, Size: 1500, FlowHash: 42, ECT: true, Payload: i})
		})
	}
	eng.Run()
	if len(sinks[6].got) != n {
		t.Fatalf("received %d, want %d", len(sinks[6].got), n)
	}
	for i, p := range sinks[6].got {
		if p.Payload.(int) != i {
			t.Fatalf("flow reordered at %d: got payload %v", i, p.Payload)
		}
	}
}

func TestECMPUsesMultiplePaths(t *testing.T) {
	eng, f, _ := buildSmall(t, DefaultConfig())
	// Distinct flows from tor0 to tor1 should spread over both leaves.
	for i := 0; i < 64; i++ {
		f.Host(0).Send(&Packet{Src: 0, Dst: 4, Size: 100, FlowHash: uint64(i*2654435761 + 17), ECT: true})
	}
	eng.Run()
	used := 0
	for _, sw := range f.Switches() {
		if sw.Tier == 1 {
			var bytes int64
			for _, p := range sw.ports {
				bytes += p.TxBytes
			}
			if bytes > 0 {
				used++
			}
		}
	}
	if used < 2 {
		t.Fatalf("ECMP used %d leaves, want 2", used)
	}
}

// Property: ECMP is deterministic per flow hash — the same flow always
// takes the same path (no reordering risk).
func TestECMPDeterministicProperty(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, DefaultConfig(), 1)
	BuildClos(f, SmallClos())
	var tor *Switch
	for _, sw := range f.Switches() {
		if sw.Tier == 0 {
			tor = sw
			break
		}
	}
	prop := func(hash uint64) bool {
		p1 := &Packet{Src: 0, Dst: 7, FlowHash: hash}
		p2 := &Packet{Src: 0, Dst: 7, FlowHash: hash}
		return tor.route(p1) == tor.route(p2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestECNMarkingUnderCongestion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ECNKminBytes = 10_000
	cfg.ECNKmaxBytes = 40_000
	eng, f, sinks := buildSmall(t, cfg)
	// Incast: hosts 1,2,3 blast host 0 simultaneously.
	for src := 1; src <= 3; src++ {
		for i := 0; i < 100; i++ {
			f.Host(NodeID(src)).Send(&Packet{Src: NodeID(src), Dst: 0, Size: 4096, FlowHash: uint64(src), ECT: true})
		}
	}
	eng.Run()
	if f.Stats.ECNMarks == 0 {
		t.Fatal("incast produced no ECN marks")
	}
	marked := 0
	for _, p := range sinks[0].got {
		if p.Marked {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no marked packets reached the receiver")
	}
}

func TestNoECNWhenIdle(t *testing.T) {
	eng, f, _ := buildSmall(t, DefaultConfig())
	for i := 0; i < 10; i++ {
		i := i
		eng.At(sim.Time(i)*sim.Time(100*sim.Microsecond), func() {
			f.Host(0).Send(&Packet{Src: 0, Dst: 1, Size: 1000, FlowHash: 9, ECT: true})
		})
	}
	eng.Run()
	if f.Stats.ECNMarks != 0 {
		t.Fatalf("idle network marked %d packets", f.Stats.ECNMarks)
	}
}

func TestPFCPreventsDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EgressCap = 64 << 10 // tiny buffers
	cfg.PFCXoff = 32 << 10
	cfg.PFCXon = 16 << 10
	eng, f, sinks := buildSmall(t, cfg)
	const n = 500
	sent := 0
	for src := 1; src <= 3; src++ {
		for i := 0; i < n; i++ {
			src, i := src, i
			eng.At(sim.Time(i)*sim.Time(200*sim.Nanosecond), func() {
				f.Host(NodeID(src)).Send(&Packet{Src: NodeID(src), Dst: 0, Size: 4096, FlowHash: uint64(src*1000 + i), ECT: true})
			})
			sent++
		}
	}
	eng.Run()
	if f.Stats.Drops != 0 {
		t.Fatalf("lossless fabric dropped %d packets", f.Stats.Drops)
	}
	if len(sinks[0].got) != sent {
		t.Fatalf("delivered %d, want %d", len(sinks[0].got), sent)
	}
	if f.Stats.PauseTX == 0 {
		t.Fatal("expected PFC pause frames under pressure with tiny buffers")
	}
}

func TestDropsWithoutPFC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PFCEnabled = false
	cfg.EgressCap = 32 << 10
	eng, f, _ := buildSmall(t, cfg)
	for src := 1; src <= 3; src++ {
		for i := 0; i < 300; i++ {
			f.Host(NodeID(src)).Send(&Packet{Src: NodeID(src), Dst: 0, Size: 4096, FlowHash: uint64(src), ECT: true})
		}
	}
	eng.Run()
	if f.Stats.Drops == 0 {
		t.Fatal("lossy fabric with tiny buffers should drop under incast")
	}
}

func TestCtrlClassBypassesPause(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EgressCap = 64 << 10
	cfg.PFCXoff = 16 << 10
	cfg.PFCXon = 8 << 10
	eng, f, sinks := buildSmall(t, cfg)
	// Saturate host0's downlink, then inject a ctrl packet; it must still
	// arrive promptly (ctrl is never paused and jumps the data queue).
	for i := 0; i < 200; i++ {
		f.Host(1).Send(&Packet{Src: 1, Dst: 0, Size: 4096, FlowHash: 1, ECT: true})
	}
	var ctrlArrive sim.Time
	eng.At(sim.Time(50*sim.Microsecond), func() {
		f.Host(2).Send(&Packet{Src: 2, Dst: 0, Size: 16, FlowHash: 2, Class: ClassCtrl, Payload: "cnp"})
	})
	eng.Run()
	for i, p := range sinks[0].got {
		if p.Class == ClassCtrl {
			ctrlArrive = sinks[0].times[i]
		}
	}
	if ctrlArrive == 0 {
		t.Fatal("ctrl packet never arrived")
	}
	if d := ctrlArrive - sim.Time(50*sim.Microsecond); d > sim.Time(20*sim.Microsecond) {
		t.Fatalf("ctrl packet delayed %v behind bulk data", sim.Duration(d))
	}
}

func TestBandwidthCeiling(t *testing.T) {
	eng, f, sinks := buildSmall(t, DefaultConfig())
	// Blast 25 MB host0→host4 and check goodput ≈ link rate.
	const total = 25 << 20
	mtu := f.Config().MTU
	for off := 0; off < total; off += mtu {
		f.Host(0).Send(&Packet{Src: 0, Dst: 4, Size: mtu, FlowHash: 7, ECT: true})
	}
	eng.Run()
	elapsed := sim.Duration(sinks[4].times[len(sinks[4].times)-1])
	gbps := float64(total) * 8 / elapsed.Seconds() / 1e9
	if gbps > 25.0 {
		t.Fatalf("goodput %.2f Gbps exceeds 25 Gbps link", gbps)
	}
	if gbps < 20.0 {
		t.Fatalf("goodput %.2f Gbps too far below line rate", gbps)
	}
}

func TestTopologyValidation(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, DefaultConfig(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid topology did not panic")
		}
	}()
	BuildClos(f, Topology{})
}

func TestClusterClosSizing(t *testing.T) {
	top := ClusterClos(64)
	if top.Hosts() < 64 {
		t.Fatalf("ClusterClos(64) has %d hosts", top.Hosts())
	}
	eng := sim.NewEngine()
	f := New(eng, DefaultConfig(), 1)
	BuildClos(f, top)
	if f.Hosts() != top.Hosts() {
		t.Fatalf("built %d hosts, want %d", f.Hosts(), top.Hosts())
	}
	// Every pair of a sample must be routable.
	s := &sink{eng: eng}
	f.Host(NodeID(top.Hosts() - 1)).Attach(s)
	f.Host(0).Send(&Packet{Src: 0, Dst: NodeID(top.Hosts() - 1), Size: 64, FlowHash: 5})
	eng.Run()
	if len(s.got) != 1 {
		t.Fatal("sample route in ClusterClos failed")
	}
}

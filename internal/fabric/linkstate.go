package fabric

import "xrdma/internal/sim"

// Link-state fault injection (chaos plane). Links are addressed by the
// labels of the devices they join: switches by Label ("pod0-leaf1",
// "spine0"), hosts by "host<id>". All operations are idempotent and take
// effect immediately in simulated time; frames already propagating on the
// wire still arrive (photons do not care about routing tables), while
// queued frames on a downed port are flushed and counted as drops.

// devicePorts iterates all ports in the fabric, handing each to fn with
// its owning device's name. Used by the label-addressed chaos API.
func (f *Fabric) devicePorts(fn func(owner string, pt *Port)) {
	for _, s := range f.switches {
		for _, pt := range s.ports {
			fn(s.Label, pt)
		}
	}
	for _, h := range f.hosts {
		fn(h.name(), h.port)
	}
}

// portsBetween returns the two halves of the full-duplex link between the
// named devices, or nil if no such link exists.
func (f *Fabric) portsBetween(a, b string) (pa, pb *Port) {
	f.devicePorts(func(owner string, pt *Port) {
		if owner == a && pt.peer.owner.name() == b {
			pa = pt
			pb = pt.peer
		}
	})
	return pa, pb
}

// SwitchByLabel looks a switch up by its topology label.
func (f *Fabric) SwitchByLabel(label string) *Switch {
	for _, s := range f.switches {
		if s.Label == label {
			return s
		}
	}
	return nil
}

// SetLinkState brings the link between devices a and b down or up (both
// directions). Returns false if the link does not exist.
func (f *Fabric) SetLinkState(a, b string, up bool) bool {
	pa, pb := f.portsBetween(a, b)
	if pa == nil {
		return false
	}
	if up {
		pa.setUp()
		pb.setUp()
	} else {
		pa.setDown()
		pb.setDown()
	}
	f.tel.Trace.Instant(linkEvName(up), "fabric", f.Eng.Now(), 0)
	return true
}

// SetLinkImpairment configures a brownout on the link between a and b:
// loss probability, corruption probability and added latency, applied to
// both directions. Zero values clear the impairment. Returns false if the
// link does not exist.
func (f *Fabric) SetLinkImpairment(a, b string, loss, corrupt float64, extra sim.Duration) bool {
	pa, pb := f.portsBetween(a, b)
	if pa == nil {
		return false
	}
	for _, pt := range [...]*Port{pa, pb} {
		pt.lossRate = loss
		pt.corruptRate = corrupt
		pt.extraDelay = extra
	}
	return true
}

// SetSwitchState fails or restores an entire switch: every attached link
// goes down with it, so neighbours' ECMP steers around the box, and any
// frame already in flight toward it is sunk. Returns false for an unknown
// label.
func (f *Fabric) SetSwitchState(label string, up bool) bool {
	s := f.SwitchByLabel(label)
	if s == nil {
		return false
	}
	s.down = !up
	for _, pt := range s.ports {
		if up {
			pt.setUp()
		} else {
			pt.setDown()
		}
	}
	f.tel.Trace.Instant(switchEvName(up), "fabric", f.Eng.Now(), int64(s.Tier))
	return true
}

// SetHostLink cuts or restores a host's access link (NIC-to-ToR cable
// pull). Returns false for an unknown host.
func (f *Fabric) SetHostLink(id NodeID, up bool) bool {
	h := f.hosts[id]
	if h == nil {
		return false
	}
	if up {
		h.port.setUp()
		h.port.peer.setUp()
	} else {
		h.port.setDown()
		h.port.peer.setDown()
	}
	return true
}

// SetHostLinkImpairment configures a brownout on one host's access link —
// the gray "flaky optic at the NIC" class, pinned to a single machine:
// loss probability, corruption probability and added latency, applied to
// both directions. Zero values clear the impairment. Returns false for an
// unknown host.
func (f *Fabric) SetHostLinkImpairment(id NodeID, loss, corrupt float64, extra sim.Duration) bool {
	h := f.hosts[id]
	if h == nil {
		return false
	}
	for _, pt := range [...]*Port{h.port, h.port.peer} {
		pt.lossRate = loss
		pt.corruptRate = corrupt
		pt.extraDelay = extra
	}
	return true
}

func linkEvName(up bool) string {
	if up {
		return "link.up"
	}
	return "link.down"
}

func switchEvName(up bool) string {
	if up {
		return "switch.up"
	}
	return "switch.down"
}

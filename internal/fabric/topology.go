package fabric

import "fmt"

// Topology describes a clos network like Alibaba's HAIL architecture
// (Fig. 1 of the paper): PODs of ToR and leaf switches under a spine layer,
// with a configurable number of hosts per ToR.
type Topology struct {
	Pods         int
	LeavesPerPod int
	TorsPerPod   int
	HostsPerTor  int
}

// SmallClos is a compact topology for microbenchmarks: one pod, two leaves,
// two ToRs, four hosts per ToR.
func SmallClos() Topology {
	return Topology{Pods: 1, LeavesPerPod: 2, TorsPerPod: 2, HostsPerTor: 4}
}

// ClusterClos approximates one production sub-cluster at reduced scale.
// Up to 256 hosts fit a single pod (16 ToRs of 16 hosts); beyond that
// the ToRs split across spine-connected pods of at most 16 ToRs each,
// matching the paper's multi-pod HAIL fabric — a 4000-host ask yields a
// 16-pod clos rather than one implausibly wide pod.
func ClusterClos(hosts int) Topology {
	torNeeded := (hosts + 15) / 16
	if torNeeded < 2 {
		torNeeded = 2
	}
	pods := (torNeeded + 15) / 16
	tors := (torNeeded + pods - 1) / pods
	return Topology{Pods: pods, LeavesPerPod: 4, TorsPerPod: tors, HostsPerTor: 16}
}

// Hosts reports how many hosts the topology contains.
func (t Topology) Hosts() int { return t.Pods * t.TorsPerPod * t.HostsPerTor }

// BuildClos constructs the switches, hosts and links, and computes ECMP
// route tables. Host IDs are assigned 0..Hosts()-1 in (pod, tor, slot)
// order.
func BuildClos(f *Fabric, t Topology) {
	if t.Pods < 1 || t.LeavesPerPod < 1 || t.TorsPerPod < 1 || t.HostsPerTor < 1 {
		panic("fabric: invalid topology")
	}
	spines := t.LeavesPerPod // one spine plane per leaf position
	spineSw := make([]*Switch, spines)
	if t.Pods > 1 {
		for i := range spineSw {
			spineSw[i] = f.newSwitch(fmt.Sprintf("spine%d", i), 2)
		}
	}

	id := NodeID(0)
	for pod := 0; pod < t.Pods; pod++ {
		leaves := make([]*Switch, t.LeavesPerPod)
		for l := range leaves {
			leaves[l] = f.newSwitch(fmt.Sprintf("pod%d-leaf%d", pod, l), 1)
			if t.Pods > 1 {
				// Each leaf connects to its spine plane.
				pl, ps := f.link(leaves[l], spineSw[l], f.cfg.FabricLinkBps, f.cfg.SwPropDelay)
				leaves[l].ports = append(leaves[l].ports, pl)
				spineSw[l].ports = append(spineSw[l].ports, ps)
				leaves[l].uplinks = append(leaves[l].uplinks, pl)
				spineSw[l].downlinks = append(spineSw[l].downlinks, downlink{port: ps, pod: pod})
			}
		}
		for tor := 0; tor < t.TorsPerPod; tor++ {
			sw := f.newSwitch(fmt.Sprintf("pod%d-tor%d", pod, tor), 0)
			for _, leaf := range leaves {
				pt, pl := f.link(sw, leaf, f.cfg.FabricLinkBps, f.cfg.SwPropDelay)
				sw.ports = append(sw.ports, pt)
				leaf.ports = append(leaf.ports, pl)
				sw.uplinks = append(sw.uplinks, pt)
				leaf.downlinks = append(leaf.downlinks, downlink{port: pl, tor: sw})
			}
			for slot := 0; slot < t.HostsPerTor; slot++ {
				h := &Host{ID: id, fab: f}
				ph, pt := f.link(h, sw, f.cfg.HostLinkBps, f.cfg.HostPropDelay)
				ph.unbounded = true
				h.port = ph
				sw.ports = append(sw.ports, pt)
				sw.hostPorts = append(sw.hostPorts, hostlink{port: pt, id: id})
				sw.pod = pod
				f.hosts[id] = h
				id++
			}
		}
	}
	f.computeRoutes()
}

type downlink struct {
	port *Port
	tor  *Switch // leaf → tor
	pod  int     // spine → pod
}

type hostlink struct {
	port *Port
	id   NodeID
}

func (f *Fabric) newSwitch(label string, tier int) *Switch {
	s := &Switch{Label: label, Tier: tier, fab: f, routes: make(map[NodeID][]*Port)}
	f.switches = append(f.switches, s)
	reg := f.tel.Reg
	reg.GaugeFunc("fabric."+label+".drops", func() int64 { return s.Drops })
	reg.GaugeFunc("fabric."+label+".dead_drops", func() int64 { return s.DeadDrops })
	reg.GaugeFunc("fabric."+label+".rerouted", func() int64 { return s.Rerouted })
	return s
}

// computeRoutes fills each switch's per-destination ECMP port sets using
// the clos hierarchy: ToRs send unknown destinations up to all leaves,
// leaves route to member ToRs or up to their spine plane, spines route to
// the destination pod's leaf.
func (f *Fabric) computeRoutes() {
	// Map host → its ToR and pod for downward routing.
	hostTor := make(map[NodeID]*Switch)
	for _, sw := range f.switches {
		if sw.Tier != 0 {
			continue
		}
		for _, hl := range sw.hostPorts {
			hostTor[hl.id] = sw
		}
	}
	for _, sw := range f.switches {
		for id := range f.hosts {
			dstTor := hostTor[id]
			switch sw.Tier {
			case 0: // ToR
				if dstTor == sw {
					for _, hl := range sw.hostPorts {
						if hl.id == id {
							sw.routes[id] = []*Port{hl.port}
						}
					}
				} else {
					sw.routes[id] = sw.uplinks
				}
			case 1: // leaf
				found := false
				for _, dl := range sw.downlinks {
					if dl.tor == dstTor {
						sw.routes[id] = []*Port{dl.port}
						found = true
						break
					}
				}
				if !found {
					sw.routes[id] = sw.uplinks
				}
			case 2: // spine
				for _, dl := range sw.downlinks {
					if dl.pod == dstTor.pod {
						sw.routes[id] = []*Port{dl.port}
					}
				}
			}
		}
	}
}

package baseline

import (
	"testing"

	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
)

func newPair(t testing.TB, p Profile) *Pair {
	t.Helper()
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.SmallClos())
	a := rnic.New(eng, fab.Host(0), rnic.DefaultConfig())
	b := rnic.New(eng, fab.Host(5), rnic.DefaultConfig())
	return NewPair(p, a, b)
}

func TestPingPongCompletes(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			pr := newPair(t, p)
			rtt := pr.MeasureRTT(64, 20)
			if rtt < 3*sim.Microsecond || rtt > 30*sim.Microsecond {
				t.Fatalf("%s 64B RTT %v implausible", p.Name, rtt)
			}
		})
	}
}

func TestProfileOrdering(t *testing.T) {
	// Fig. 7 middle: ibv < ucx < libfabric < xio at small sizes.
	var rtts []sim.Duration
	for _, p := range Profiles() {
		pr := newPair(t, p)
		rtts = append(rtts, pr.MeasureRTT(64, 50))
	}
	for i := 1; i < len(rtts); i++ {
		if rtts[i] <= rtts[i-1] {
			t.Fatalf("profile ordering violated: %v", rtts)
		}
	}
	t.Logf("ibv=%v ucx=%v libfabric=%v xio=%v", rtts[0], rtts[1], rtts[2], rtts[3])
}

func TestLatencyGrowsWithSize(t *testing.T) {
	pr := newPair(t, UcxAmRc)
	small := pr.MeasureRTT(64, 20)
	big := pr.MeasureRTT(4096, 20)
	if big <= small {
		t.Fatalf("4KB (%v) should beat 64B (%v)? no", big, small)
	}
}

func TestRendezvousPath(t *testing.T) {
	// Above EagerMax the transfer switches to ctrl+READ; it must still
	// complete and cost more than an eager message of threshold size.
	pr := newPair(t, UcxAmRc)
	eager := pr.MeasureRTT(UcxAmRc.EagerMax, 10)
	rndv := pr.MeasureRTT(UcxAmRc.EagerMax+1, 10)
	if rndv <= eager {
		t.Fatalf("rendezvous (%v) should cost more than eager at threshold (%v)", rndv, eager)
	}
	big := pr.MeasureRTT(256<<10, 5)
	if big <= rndv {
		t.Fatalf("256KB rendezvous (%v) should dominate threshold rendezvous (%v)", big, rndv)
	}
}

func TestCtrlCodec(t *testing.T) {
	b := encodeCtrl(12345, 0x7f0000001234, 99)
	size, addr, rkey, ok := decodeCtrl(b)
	if !ok || size != 12345 || addr != 0x7f0000001234 || rkey != 99 {
		t.Fatalf("codec roundtrip failed: %d %x %d %v", size, addr, rkey, ok)
	}
	if _, _, _, ok := decodeCtrl(nil); ok {
		t.Fatal("nil decoded as ctrl")
	}
	if _, _, _, ok := decodeCtrl(make([]byte, 22)); ok {
		t.Fatal("zero bytes decoded as ctrl")
	}
}

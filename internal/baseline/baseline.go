// Package baseline implements the comparator stacks of Fig. 7: the raw
// ibv_rc_pingpong (the "ideal baseline... no extra overhead other than the
// primitive RDMA operations"), and middlewares shaped like ucx-am-rc,
// libfabric and Accelio/xio. All run over the same verbs/rnic substrate,
// so differences come from exactly what the paper compares: per-operation
// software cost, header bytes, and eager/rendezvous thresholds.
//
// Profiles are calibrated against published ping-pong numbers (§VII-A:
// xrdma 5.60 µs vs ucx-am-rc 5.87 µs vs libfabric 6.20 µs; xio notably
// slower; X-RDMA within 10% of ibv_rc_pingpong).
package baseline

import (
	"encoding/binary"
	"fmt"

	"xrdma/internal/rnic"
	"xrdma/internal/sim"
)

// Profile characterises one middleware's software data path.
type Profile struct {
	Name     string
	SendCost sim.Duration // per-op CPU before the doorbell
	RecvCost sim.Duration // per-delivery CPU (poll, dispatch, header parse)
	HdrBytes int          // wire header added to every message
	EagerMax int          // payloads above this use a rendezvous round
}

// The comparator profiles.
var (
	// IbvPingpong is the primitive-operations-only ideal.
	IbvPingpong = Profile{Name: "ibv-pingpong", SendCost: 40 * sim.Nanosecond, RecvCost: 40 * sim.Nanosecond, HdrBytes: 0, EagerMax: 1 << 30}
	// UcxAmRc is UCX's active-message RC transport.
	UcxAmRc = Profile{Name: "ucx-am-rc", SendCost: 210 * sim.Nanosecond, RecvCost: 190 * sim.Nanosecond, HdrBytes: 32, EagerMax: 8 << 10}
	// Libfabric models the OFI rxm/verbs path.
	Libfabric = Profile{Name: "libfabric", SendCost: 370 * sim.Nanosecond, RecvCost: 330 * sim.Nanosecond, HdrBytes: 48, EagerMax: 16 << 10}
	// Xio models Accelio's heavyweight abstraction layers.
	Xio = Profile{Name: "xio", SendCost: 900 * sim.Nanosecond, RecvCost: 800 * sim.Nanosecond, HdrBytes: 64, EagerMax: 8 << 10}
)

// Profiles lists all comparators in the order Fig. 7 plots them.
func Profiles() []Profile { return []Profile{IbvPingpong, UcxAmRc, Libfabric, Xio} }

// Pair is two connected endpoints of one profile, with the server side in
// echo mode — the ping-pong fixture of §VII-A.
type Pair struct {
	Profile Profile
	eng     *sim.Engine
	cli     *endpoint
	srv     *endpoint
}

type endpoint struct {
	p      Profile
	eng    *sim.Engine
	nic    *rnic.NIC
	qp     *rnic.QP
	selfMR *rnic.MR
	echo   bool
	onResp func(size int)

	readCbs []func()

	// Reused poll buffers (allocation-free CQ draining).
	scqeBuf, rcqeBuf []rnic.CQE
}

const recvDepth = 128
const recvBuf = 64 << 10

// rendezvous control wire format: magic(2) size(8) addr(8) rkey(4).
const ctrlMagic = 0x5242 // "RB"
const ctrlBytes = 22

func encodeCtrl(size int, addr uint64, rkey uint32) []byte {
	b := make([]byte, ctrlBytes)
	binary.LittleEndian.PutUint16(b, ctrlMagic)
	binary.LittleEndian.PutUint64(b[2:], uint64(size))
	binary.LittleEndian.PutUint64(b[10:], addr)
	binary.LittleEndian.PutUint32(b[18:], rkey)
	return b
}

func decodeCtrl(b []byte) (size int, addr uint64, rkey uint32, ok bool) {
	if len(b) < ctrlBytes || binary.LittleEndian.Uint16(b) != ctrlMagic {
		return 0, 0, 0, false
	}
	return int(binary.LittleEndian.Uint64(b[2:])), binary.LittleEndian.Uint64(b[10:]), binary.LittleEndian.Uint32(b[18:]), true
}

// NewPair wires client and server endpoints between two NICs.
func NewPair(p Profile, a, b *rnic.NIC) *Pair {
	qa, qb := rnic.ConnectLoopback(a, b, 4*recvDepth)
	mkEp := func(nic *rnic.NIC, qp *rnic.QP) *endpoint {
		ep := &endpoint{p: p, eng: nic.Engine(), nic: nic, qp: qp}
		ep.selfMR = nic.Mem.Register(8<<20, rnic.RegNonContinuous)
		for i := 0; i < recvDepth; i++ {
			if err := qp.PostRecv(rnic.RecvWR{ID: uint64(i), Len: recvBuf}); err != nil {
				panic(err)
			}
		}
		return ep
	}
	cli := mkEp(a, qa)
	srv := mkEp(b, qb)
	srv.echo = true
	cli.attach()
	srv.attach()
	return &Pair{Profile: p, eng: a.Engine(), cli: cli, srv: srv}
}

func (ep *endpoint) attach() {
	ep.qp.RecvCQ.OnCompletion(ep.drainRecv)
	ep.qp.SendCQ.OnCompletion(ep.drainSend)
	ep.drainRecv()
	ep.drainSend()
}

func (ep *endpoint) drainSend() {
	ep.scqeBuf = ep.qp.SendCQ.PollAppend(ep.scqeBuf[:0], 1024)
	for _, cqe := range ep.scqeBuf {
		if cqe.Op == rnic.OpRead && len(ep.readCbs) > 0 {
			cb := ep.readCbs[0]
			ep.readCbs = ep.readCbs[1:]
			cb()
		}
	}
}

func (ep *endpoint) drainRecv() {
	ep.rcqeBuf = ep.qp.RecvCQ.PollAppend(ep.rcqeBuf[:0], 1024)
	for _, cqe := range ep.rcqeBuf {
		cqe := cqe
		ep.eng.After(ep.p.RecvCost, func() { ep.handle(cqe) })
	}
}

func (ep *endpoint) handle(cqe rnic.CQE) {
	ep.qp.PostRecv(rnic.RecvWR{ID: cqe.WRID, Len: recvBuf})
	if size, addr, rkey, ok := decodeCtrl(cqe.Data); ok {
		// Rendezvous: pull the payload, then deliver.
		ep.readCbs = append(ep.readCbs, func() { ep.deliver(size) })
		ep.qp.PostSend(&rnic.SendWR{
			Op: rnic.OpRead, Len: size, Local: ep.selfMR.Base,
			RAddr: addr, RKey: rkey,
		})
		return
	}
	ep.deliver(cqe.Len - ep.p.HdrBytes)
}

func (ep *endpoint) deliver(size int) {
	if ep.echo {
		ep.send(size)
		return
	}
	if ep.onResp != nil {
		ep.onResp(size)
	}
}

func (ep *endpoint) send(size int) {
	ep.eng.After(ep.p.SendCost, func() {
		if size > ep.p.EagerMax {
			ctrl := encodeCtrl(size, ep.selfMR.Base, ep.selfMR.RKey)
			ep.qp.PostSend(&rnic.SendWR{Op: rnic.OpSend, Len: ep.p.HdrBytes + ctrlBytes, Data: ctrl, Unsignaled: true})
			return
		}
		ep.qp.PostSend(&rnic.SendWR{Op: rnic.OpSend, Len: ep.p.HdrBytes + size, Unsignaled: true})
	})
}

// Call issues one ping and invokes cb when the echoed pong arrives.
func (pr *Pair) Call(size int, cb func()) {
	pr.cli.onResp = func(int) { cb() }
	pr.cli.send(size)
}

// MeasureRTT runs n sequential ping-pongs of the given payload size and
// returns the mean round-trip time.
func (pr *Pair) MeasureRTT(size, n int) sim.Duration {
	var total sim.Duration
	done := 0
	var issue func()
	issue = func() {
		start := pr.eng.Now()
		pr.Call(size, func() {
			total += pr.eng.Now().Sub(start)
			done++
			if done < n {
				issue()
			}
		})
	}
	issue()
	pr.eng.Run()
	if done != n {
		panic(fmt.Sprintf("baseline %s: completed %d/%d pings", pr.Profile.Name, done, n))
	}
	return total / sim.Duration(n)
}

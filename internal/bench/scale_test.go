package bench

import (
	"strings"
	"testing"
)

// TestScaleWorld is the E22 acceptance gate: the multi-pod world holds
// ≥10× more live channels than wire QPs, conserves every message, keeps
// idle descriptors un-dialed, and fits the heap budget.
func TestScaleWorld(t *testing.T) {
	r := ScaleWorld(Quick())
	if r.Pods < 2 {
		t.Errorf("smoke world has %d pods, want multi-pod", r.Pods)
	}
	if r.MuxRatio < 10 {
		t.Errorf("channel/QP ratio %.1f, want >= 10 (chans=%d qps=%d)", r.MuxRatio, r.ActiveChans, r.WireQPs)
	}
	if r.Lost != 0 {
		t.Errorf("%d of %d requests lost", r.Lost, r.Sent)
	}
	if r.Dups != 0 {
		t.Errorf("%d duplicated deliveries (exactly-once violated)", r.Dups)
	}
	if r.SendErrs != 0 {
		t.Errorf("%d sends rejected", r.SendErrs)
	}
	if r.Resps != r.Sent {
		t.Errorf("%d responses for %d requests", r.Resps, r.Sent)
	}
	if r.Sent < 1000 {
		t.Errorf("only %d requests sent — load generator broken", r.Sent)
	}
	if r.IdleAttach != 0 {
		t.Errorf("%d idle descriptors attached — lazy establishment broken", r.IdleAttach)
	}
	if !r.HeapOK {
		t.Errorf("heap %d MiB exceeds budget %d MiB", r.HeapBytes>>20, r.HeapBudget>>20)
	}
}

// TestScaleDeterministic asserts the digest is a pure function of the
// seed: bit-identical across sequential reruns and across concurrent
// goroutines (the -j 1 vs -j 8 guarantee of cmd/reproduce).
func TestScaleDeterministic(t *testing.T) {
	base := strings.Join(ScaleWorld(Quick()).Digest(), "\n")
	again := strings.Join(ScaleWorld(Quick()).Digest(), "\n")
	if base != again {
		t.Fatalf("sequential reruns diverge:\n--- first ---\n%s\n--- second ---\n%s", base, again)
	}
	results := make([]string, 4)
	done := make(chan int)
	for i := range results {
		go func(i int) {
			results[i] = strings.Join(ScaleWorld(Quick()).Digest(), "\n")
			done <- i
		}(i)
	}
	for range results {
		<-done
	}
	for i, d := range results {
		if d != base {
			t.Fatalf("concurrent run %d diverges from sequential baseline:\n%s\nvs\n%s", i, d, base)
		}
	}
}

package bench

import (
	"encoding/binary"
	"fmt"
	"sort"

	"xrdma/internal/chaos"
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// E20 "grayhaul": the gray-failure drill. One spine path of a SmallClos
// browns out permanently (loss + corruption + added latency, never a
// hard link-down) under a steady cross-ToR request load. RC go-back-N
// absorbs the damage, so the PR 3 health machine correctly never fires —
// and without further help the channel pays the degraded path forever.
// The experiment runs three arms on identical worlds:
//
//	clean       no fault            — the baseline tail
//	doctor-off  fault, doctor off   — the gray failure: p99 stays inflated
//	doctor-on   fault, doctor on    — the path doctor detects the sick
//	            path from counter deltas and rotates the ECMP flow label
//	            onto the healthy spine; the tail returns to ~baseline
//
// The acceptance criteria live in TestGrayhaul: doctor-on p99 within
// 1.15× of clean, doctor-off visibly worse, zero lost and zero duplicate
// requests everywhere, and a bit-identical digest across runs and -j.

// GrayArm is the outcome of one arm.
type GrayArm struct {
	Name string

	Sent      int // requests issued by the client
	Delivered int // requests the server saw at least once
	Dups      int // requests the server saw more than once
	Lost      int // requests the server never saw
	Resps     int // responses the client consumed
	SendErrs  int // SendMsg rejections (channel dead — must stay 0)

	Retries  int64 // client request retries (budgeted)
	Rehashes int64 // flow-label rotations, client + server
	// FirstRehash is fault→first client-side rotation (0 = none).
	FirstRehash sim.Duration

	// P50/P99 are over requests issued in the tail window (sentAt ≥
	// grayTailFrom), after any re-pathing has settled.
	P50, P99 sim.Duration

	PathLog  []string // client then server doctor logs
	ChaosLog []string
}

// GrayhaulResult aggregates the drill.
type GrayhaulResult struct {
	Clean, Off, On *GrayArm
	Table_         Table
}

// Digest renders every arm's fault log, doctor log and final counters as
// one deterministic line list: same seed ⇒ bit-identical digest.
func (r *GrayhaulResult) Digest() []string {
	var out []string
	for _, a := range []*GrayArm{r.Clean, r.Off, r.On} {
		out = append(out, "arm "+a.Name)
		out = append(out, a.ChaosLog...)
		out = append(out, a.PathLog...)
		out = append(out, fmt.Sprintf("sent=%d delivered=%d dups=%d lost=%d resps=%d errs=%d retries=%d rehashes=%d p50=%v p99=%v",
			a.Sent, a.Delivered, a.Dups, a.Lost, a.Resps, a.SendErrs, a.Retries, a.Rehashes, a.P50, a.P99))
	}
	return out
}

const (
	grayFaultAt  = 100 * sim.Millisecond
	grayTick     = 500 * sim.Microsecond
	graySendStop = 500 * sim.Millisecond
	grayHorizon  = 650 * sim.Millisecond
	grayTailFrom = 350 * sim.Millisecond
)

// grayKnobs compresses the doctor's clocks to the drill horizon. The
// retry budget is enabled so the tail of requests stranded on the old
// path during re-pathing gets re-issued instead of timing out.
func grayKnobs(doctor bool) func(int, *xrdma.Config) {
	return func(_ int, cfg *xrdma.Config) {
		cfg.PathDoctor = doctor
		cfg.PathRehashLimit = 6
		cfg.PathRehashCooldown = 4 * sim.Millisecond
		cfg.StatsInterval = 1 * sim.Millisecond // doctor scan cadence
		cfg.RequestTimeout = 25 * sim.Millisecond
		cfg.RequestRetries = 2
		cfg.RetryBackoff = 1 * sim.Millisecond
		cfg.KeepaliveInterval = 5 * sim.Millisecond
		cfg.KeepaliveTimeout = 50 * sim.Millisecond
	}
}

// grayNIC keeps the RC retry horizon deep: a brownout must be absorbed
// by go-back-N (the gray failure), never escalate to retry exhaustion
// (the PR 3 hard-failure path).
func grayNIC() rnic.Config {
	nic := rnic.DefaultConfig()
	nic.RetransTimeout = 1 * sim.Millisecond
	nic.RetryLimit = 12
	return nic
}

func grayPercentile(ds []sim.Duration, p float64) sim.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]sim.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// runGrayArm drives one arm on a fresh SmallClos world: client node 0
// (pod0-tor0) to server node 4 (pod0-tor1), so every request crosses the
// leaf tier the brownout hits. No Mock or recovery plane is attached —
// the doctor must heal the path without them (SendErrs asserts that the
// escalation path never fired).
func runGrayArm(sc Scale, name string, doctor, fault bool) *GrayArm {
	a := &GrayArm{Name: name}
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   grayNIC(),
		Nodes:    8,
		Config:   grayKnobs(doctor),
		Seed:     sc.Seed,
	})
	sc.observe(c.Eng, "gray/"+name)
	eng := c.Eng

	recvCount := map[uint64]int{}
	var srv *xrdma.Channel
	c.ListenAll(7400, func(n *cluster.Node, ch *xrdma.Channel) {
		if n.ID == 4 {
			srv = ch
		}
		ch.OnMessage(func(m *xrdma.Msg) {
			id := binary.LittleEndian.Uint64(m.Data)
			recvCount[id]++
			m.Reply(m.Data[:8], 0)
		})
	})

	var ch *xrdma.Channel
	c.Connect(0, 4, 7400, func(cch *xrdma.Channel, err error) {
		if err != nil {
			panic(err)
		}
		ch = cch
	})
	eng.Run()
	if ch == nil || srv == nil {
		panic("grayhaul: channel never established")
	}

	// Steady load: one 16-byte id-carrying request per tick. Latency is
	// recorded per id so the tail window can be sliced by issue time.
	start := eng.Now()
	var nextID uint64
	sentAt := map[uint64]sim.Time{}
	respSeen := map[uint64]int{}
	var tailLats []sim.Duration
	var tick func()
	tick = func() {
		if eng.Now().Sub(start) >= graySendStop {
			return
		}
		id := nextID
		nextID++
		buf := make([]byte, 16)
		binary.LittleEndian.PutUint64(buf, id)
		a.Sent++
		sentAt[id] = eng.Now()
		err := ch.SendMsg(buf, 0, func(m *xrdma.Msg, err error) {
			if err != nil {
				return
			}
			rid := binary.LittleEndian.Uint64(m.Data)
			respSeen[rid]++
			if at := sentAt[rid]; at.Sub(start) >= grayTailFrom {
				tailLats = append(tailLats, eng.Now().Sub(at))
			}
		})
		if err != nil {
			a.SendErrs++
		}
		eng.AfterBg(grayTick, tick)
	}
	eng.AfterBg(grayTick, tick)

	inj := chaos.New(c)
	if fault {
		// Brown out exactly the spine path the client's requests ride:
		// the ToR's uplink candidates are in leaf order, so the ECMP
		// index of the channel's flow key names the leaf directly.
		inj.Schedule([]chaos.Step{{At: grayFaultAt, Name: "gray brownout", Do: func(i *chaos.Injector) {
			idx := fabric.ECMPIndex(ch.FlowHash(), 2)
			i.Brownout("pod0-tor0", fmt.Sprintf("pod0-leaf%d", idx), 0.12, 0.05, 20*sim.Microsecond)
		}}})
	}

	eng.RunUntil(start.Add(grayHorizon))

	a.Retries = ch.Counters.ReqRetries
	a.Rehashes = ch.Rehashes() + srv.Rehashes()
	if at := ch.FirstRehashAt(); at != 0 {
		a.FirstRehash = at.Sub(start.Add(grayFaultAt))
	}
	for _, l := range ch.PathLog() {
		a.PathLog = append(a.PathLog, "client "+l)
	}
	for _, l := range srv.PathLog() {
		a.PathLog = append(a.PathLog, "server "+l)
	}
	a.ChaosLog = inj.Digest()
	for id := uint64(0); id < nextID; id++ {
		n := recvCount[id]
		switch {
		case n == 0:
			a.Lost++
		default:
			a.Delivered++
			if n > 1 {
				a.Dups++
			}
		}
	}
	a.Resps = len(respSeen)
	a.P50 = grayPercentile(tailLats, 0.50)
	a.P99 = grayPercentile(tailLats, 0.99)
	return a
}

// Grayhaul runs the three arms and renders the E20 table.
func Grayhaul(sc Scale) *GrayhaulResult {
	r := &GrayhaulResult{
		Clean: runGrayArm(sc, "clean", true, false),
		Off:   runGrayArm(sc, "doctor-off", false, true),
		On:    runGrayArm(sc, "doctor-on", true, true),
	}
	t := Table{
		ID:     "E20/Grayhaul",
		Title:  "Gray failure: permanent spine brownout vs path doctor (cross-ToR pair, SmallClos)",
		Header: []string{"arm", "p50", "p99", "sent", "resps", "retries", "rehashes", "1st-rehash", "dups", "lost"},
	}
	for _, a := range []*GrayArm{r.Clean, r.Off, r.On} {
		fr := "-"
		if a.FirstRehash != 0 {
			fr = a.FirstRehash.String()
		}
		t.Addf(a.Name, a.P50.String(), a.P99.String(), a.Sent, a.Resps, a.Retries, a.Rehashes, fr, a.Dups, a.Lost)
	}
	t.Note("p50/p99 over requests issued after t=%v (re-pathing settled); brownout never clears", grayTailFrom)
	t.Note("doctor-on must return the tail to ≤1.15× clean; doctor-off stays degraded — the health machine alone never acts on a gray path")
	r.Table_ = t
	return r
}

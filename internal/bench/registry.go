package bench

// Experiment is one entry of DESIGN.md's per-experiment index: a stable
// id (what cmd/reproduce -only matches), a title, and a Run function
// producing the rendered tables. Every Run builds its own Engine, Fabric
// and RNG from the Scale it is handed, so distinct experiments are fully
// isolated and safe to run on concurrent goroutines.
type Experiment struct {
	ID    string
	Title string
	Run   func(sc Scale) []*Table
}

func tables(ts ...Table) []*Table {
	out := make([]*Table, len(ts))
	for i := range ts {
		t := ts[i]
		out[i] = &t
	}
	return out
}

// Experiments returns the registry in canonical print order — the order
// cmd/reproduce emits tables regardless of how many workers ran them.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig7", Title: "Latency/throughput vs baselines + tracing overhead", Run: func(sc Scale) []*Table {
			return tables(Fig7Left(sc).Table_, Fig7Middle(sc).Table_, Fig7Right(sc).Table_, TracingOverhead(sc).Table_)
		}},
		{ID: "establish", Title: "Connection establishment (QP cache)", Run: func(sc Scale) []*Table {
			return tables(Establishment(sc).Table_)
		}},
		{ID: "fig8", Title: "ESSD ramp", Run: func(sc Scale) []*Table {
			return tables(Fig8EssdRamp(sc).Table_)
		}},
		{ID: "fig9", Title: "RNR NAK counter", Run: func(sc Scale) []*Table {
			return tables(Fig9RNRCounter(sc).Table_)
		}},
		{ID: "fig10", Title: "Flow control + fragment sweep", Run: func(sc Scale) []*Table {
			return tables(Fig10FlowControl(sc).Table_, FragmentSweep(sc).Table_)
		}},
		{ID: "fig11", Title: "Online upgrade", Run: func(sc Scale) []*Table {
			return tables(Fig11OnlineUpgrade(sc).Table_)
		}},
		{ID: "fig12", Title: "Anti-jitter (ESSD, X-DB)", Run: func(sc Scale) []*Table {
			return tables(Fig12AntiJitter(sc, "ESSD").Table_, Fig12AntiJitter(sc, "X-DB").Table_)
		}},
		{ID: "qpscale", Title: "QP scaling", Run: func(sc Scale) []*Table {
			return tables(QPScaling(sc).Table_)
		}},
		{ID: "srq", Title: "SRQ trade-off", Run: func(sc Scale) []*Table {
			return tables(SRQTradeoff(sc).Table_)
		}},
		{ID: "memmodes", Title: "Memory registration modes", Run: func(sc Scale) []*Table {
			return tables(MemoryModes(sc).Table_)
		}},
		{ID: "footprint", Title: "Mixed-deployment footprint", Run: func(sc Scale) []*Table {
			return tables(MixedFootprint(sc).Table_)
		}},
		{ID: "peak", Title: "Peak stress", Run: func(sc Scale) []*Table {
			return tables(PeakStress(sc).Table_)
		}},
		{ID: "fig3", Title: "Diurnal load", Run: func(sc Scale) []*Table {
			return tables(Fig3Diurnal(sc).Table_)
		}},
		{ID: "robust", Title: "Chaos drill: fault classes, recovery and fallback", Run: func(sc Scale) []*Table {
			return tables(ChaosDrill(sc).Table_)
		}},
		{ID: "gray", Title: "Gray failure: path doctor, ECMP re-pathing, budgeted retries", Run: func(sc Scale) []*Table {
			return tables(Grayhaul(sc).Table_)
		}},
		{ID: "blame", Title: "Blame attribution: injected cause vs top-blamed stage", Run: func(sc Scale) []*Table {
			return tables(BlameAttribution(sc).Table_)
		}},
		{ID: "scale", Title: "Fitting the 4000-node world: QP mux, flyweight channels, heap budget", Run: func(sc Scale) []*Table {
			return tables(ScaleWorld(sc).Table_)
		}},
		{ID: "storm", Title: "Storm-style KV: one-sided speculative reads vs RPC", Run: func(sc Scale) []*Table {
			return tables(Storm(sc).Table_)
		}},
		{ID: "tenants", Title: "Multi-tenant isolation: QoS scheduling, bounded memory, graceful shed", Run: func(sc Scale) []*Table {
			return tables(Tenants(sc).Table_)
		}},
		{ID: "upgrade", Title: "Hot upgrade: version negotiation, graceful drain, rolling restart under live traffic", Run: func(sc Scale) []*Table {
			return tables(Upgrade(sc).Table_)
		}},
		{ID: "fleet", Title: "Fleet diagnosis: cross-node anomaly detection, correlation, root-cause reports", Run: func(sc Scale) []*Table {
			return tables(Fleet(sc).Table_)
		}},
		{ID: "loc", Title: "Lines-of-code comparison", Run: func(Scale) []*Table {
			return tables(LoCComparison().Table_)
		}},
	}
}

package bench

import (
	"strings"
	"testing"
)

// TestTenants is the E24 acceptance gate: the elephant's flood stays
// contained by its own limits (DRR weight, token bucket, window
// partition, memory budget) so the mouse's contended tail holds within
// 1.25× of its alone baseline; budget breaches reject loudly and shed
// new attaches, flight dumps name the culprit, and the shed clears once
// the load drops.
func TestTenants(t *testing.T) {
	r := Tenants(Quick())
	alone, shared := r.Alone, r.Shared

	for _, a := range []*TenantArm{alone, shared} {
		if a.MouseLost != 0 || a.MouseDups != 0 {
			t.Errorf("%s: mouse dups=%d lost=%d — conservation violated", a.Name, a.MouseDups, a.MouseLost)
		}
		if a.SendErrs != 0 {
			t.Errorf("%s: %d mouse send errors", a.Name, a.SendErrs)
		}
	}

	// Isolation: the shared-arm mouse tail must stay within ε=25% of the
	// alone baseline while the elephant is at full load.
	if limit := alone.P99 + alone.P99/4; shared.P99 > limit {
		t.Errorf("isolation broken: shared mouse p99 %v > 1.25x alone %v", shared.P99, alone.P99)
	}

	// Overload degrades gracefully, never silently: the elephant's memory
	// budget rejects allocations with ErrTenantBudget...
	if shared.EleBudgetErr == 0 {
		t.Error("zero ErrTenantBudget completions — the memory budget never bit, test is vacuous")
	}
	// ...each episode trips a flight dump naming the elephant (tenant id
	// 2 — second entry of the config table) in the QPN field...
	if shared.ShedDumps == 0 {
		t.Error("zero tenant.shed flight dumps")
	}
	if shared.ShedCulprit != 2 {
		t.Errorf("shed dump names tenant %d, want elephant (2)", shared.ShedCulprit)
	}
	// ...and late attaches are shed into the admission FIFO, establishing
	// only after the elephant stops.
	if shared.LateAttached != tenLateChans {
		t.Errorf("late elephant channels attached=%d of %d after the load dropped", shared.LateAttached, tenLateChans)
	}
	for _, line := range shared.TenantLog {
		if strings.HasPrefix(line, "tenant elephant") && (strings.Contains(line, "ashed=0") || strings.Contains(line, "sheds=0 ")) {
			t.Errorf("elephant never shed: %s", line)
		}
	}

	// Recovered window: with the elephant gone, the shared-arm mouse tail
	// must return to the alone baseline's neighborhood.
	if limit := alone.RecovP99 + alone.RecovP99/4; shared.RecovP99 > limit {
		t.Errorf("no recovery: shared mouse recovered p99 %v > 1.25x alone %v", shared.RecovP99, alone.RecovP99)
	}
}

// TestTenantsDeterministic: the digest is a pure function of the seed —
// bit-identical across sequential reruns and across 4 concurrent
// goroutines (the -j 1 vs -j 8 guarantee of cmd/reproduce).
func TestTenantsDeterministic(t *testing.T) {
	base := strings.Join(Tenants(Quick()).Digest(), "\n")
	again := strings.Join(Tenants(Quick()).Digest(), "\n")
	if base != again {
		t.Fatalf("sequential reruns diverge:\n--- first ---\n%s\n--- second ---\n%s", base, again)
	}
	results := make([]string, 4)
	done := make(chan int)
	for i := range results {
		go func(i int) {
			results[i] = strings.Join(Tenants(Quick()).Digest(), "\n")
			done <- i
		}(i)
	}
	for range results {
		<-done
	}
	for i, d := range results {
		if d != base {
			t.Fatalf("concurrent run %d diverges from sequential baseline:\n%s\nvs\n%s", i, d, base)
		}
	}
}

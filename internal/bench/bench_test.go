package bench

// These tests assert the paper's *shapes*: orderings, ratios and
// crossovers from §VII. Absolute microseconds belong to the authors'
// testbed; what must reproduce is who wins, by roughly what factor, and
// where behaviour changes.

import (
	"testing"
)

func TestFig7MiddleOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Fig7Middle(Quick())
	t.Log("\n" + r.Table_.String())
	for i := range r.Sizes {
		ibv := r.RTT["ibv-pingpong"][i]
		bd := r.RTT["xrdma-BD"][i]
		rr := r.RTT["xrdma-reqrsp"][i]
		ucx := r.RTT["ucx-am-rc"][i]
		lf := r.RTT["libfabric"][i]
		xio := r.RTT["xio"][i]
		if !(ibv < bd) {
			t.Errorf("size %d: ibv (%v) should be the floor, xrdma-BD %v", r.Sizes[i], ibv, bd)
		}
		// §VII-A: X-RDMA within ~10% of ibv_rc_pingpong.
		if bd > ibv*1.15 {
			t.Errorf("size %d: xrdma-BD %.2f >15%% over ibv %.2f", r.Sizes[i], bd, ibv)
		}
		if !(bd <= ucx && ucx < lf && lf < xio) {
			t.Errorf("size %d: ordering broken bd=%v ucx=%v lf=%v xio=%v", r.Sizes[i], bd, ucx, lf, xio)
		}
		if rr < bd {
			t.Errorf("size %d: req-rsp (%v) cheaper than bare-data (%v)?", r.Sizes[i], rr, bd)
		}
	}
}

func TestFig7LeftMixedStrategy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Fig7Left(Quick())
	t.Log("\n" + r.Table_.String())
	for i, s := range r.Sizes {
		// Large mode always costs more than small mode (the extra
		// one-sided round), and the gap shrinks with size.
		if r.Large[i] <= r.Small[i] {
			t.Errorf("size %d: large %v ≤ small %v", s, r.Large[i], r.Small[i])
		}
		// Mixed tracks small below the 4KB threshold, large above.
		if s <= 4096 && r.Mixed[i] > r.Small[i]*1.05 {
			t.Errorf("size %d: mixed %v deviates from small %v below threshold", s, r.Mixed[i], r.Small[i])
		}
		if s > 4096 && r.Mixed[i] > r.Large[i]*1.05 {
			t.Errorf("size %d: mixed %v deviates from large %v above threshold", s, r.Mixed[i], r.Large[i])
		}
	}
	// Relative penalty of the large path shrinks as payloads grow.
	first := r.Large[0] / r.Small[0]
	last := r.Large[len(r.Sizes)-1] / r.Small[len(r.Sizes)-1]
	if last >= first {
		t.Errorf("large-path penalty should shrink with size: %0.2f → %0.2f", first, last)
	}
}

func TestTracingOverheadBand(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := TracingOverhead(Quick())
	t.Log("\n" + r.Table_.String())
	for i, s := range r.Sizes {
		if r.OverheadPct[i] <= 0 {
			t.Errorf("size %d: tracing should cost something (%.2f%%)", s, r.OverheadPct[i])
		}
		if r.OverheadPct[i] > 8 {
			t.Errorf("size %d: tracing overhead %.2f%% far above the paper's 2–4%%", s, r.OverheadPct[i])
		}
	}
}

func TestEstablishmentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Establishment(Quick())
	t.Log("\n" + r.Table_.String())
	if r.WarmUS >= r.ColdUS {
		t.Fatal("QP cache did not speed establishment")
	}
	if r.SavingPct < 25 || r.SavingPct > 55 {
		t.Errorf("saving %.1f%% far from the paper's 38%%", r.SavingPct)
	}
	if r.MassWarmSec >= r.MassColdSec {
		t.Error("mass establishment: warm should beat cold")
	}
	ratio := r.MassColdSec / r.MassWarmSec
	if ratio < 1.5 {
		t.Errorf("mass cold/warm ratio %.2f, paper shows ≈3.3×", ratio)
	}
	// TCP is orders of magnitude faster to establish (§III Issue 3).
	if r.TCPEstablishUS > r.ColdUS/10 {
		t.Errorf("tcp %.0fµs vs rdma %.0fµs: gap too small", r.TCPEstablishUS, r.ColdUS)
	}
}

func TestFig8Ramp(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Fig8EssdRamp(Quick())
	t.Log("\n" + r.Table_.String())
	if r.SteadyIOPS <= 0 {
		t.Fatal("no steady state reached")
	}
	if r.RampSeconds <= 0 || r.RampSeconds > 2 {
		t.Errorf("ramp %.2fs, paper: steady within 2s", r.RampSeconds)
	}
	// Sustained until the end (no collapse).
	lastReal := r.IOPS.Values[r.IOPS.Len()-2] // final bucket is a partial flush
	if lastReal*10 < r.SteadyIOPS*0.5 {
		t.Errorf("throughput collapsed: last bucket %.0f vs steady %.0f", lastReal*10, r.SteadyIOPS)
	}
}

func TestFig9RNRFree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Fig9RNRCounter(Quick())
	t.Log("\n" + r.Table_.String())
	if r.RawRNRPerSec <= 0 {
		t.Fatal("raw RDMA produced no RNR under bursts — pressure too low to compare")
	}
	if r.XRDMARNRPerSec != 0 {
		t.Fatalf("X-RDMA must be RNR-free, measured %.2f/s", r.XRDMARNRPerSec)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Fig10FlowControl(Quick())
	t.Log("\n" + r.Table_.String())
	g128, gfc := r.GoodputGbps["128KB"], r.GoodputGbps["128KB-fc"]
	if gfc <= g128 {
		t.Fatalf("fc goodput %.2f should beat uncontrolled %.2f", gfc, g128)
	}
	gain := (gfc - g128) / g128 * 100
	if gain < 1 {
		t.Errorf("fc gain %.1f%% — should be clearly positive (paper ≈24%% on the production fabric; see EXPERIMENTS.md)", gain)
	}
	if r.CNPs["128KB-fc"] >= r.CNPs["128KB"]/2 {
		t.Errorf("fc CNPs %d should be a small fraction of %d", r.CNPs["128KB-fc"], r.CNPs["128KB"])
	}
	if r.PauseTX["128KB-fc"] > r.PauseTX["128KB"]/20 {
		t.Errorf("fc pause %d should be ≈0 vs %d", r.PauseTX["128KB-fc"], r.PauseTX["128KB"])
	}
	// Flow control must dominate every uncontrolled variant on pause
	// frames — the paper's "TX pause directly minimized to nearly zero".
	if r.PauseTX["128KB-fc"] > r.PauseTX["64KB"]/20 {
		t.Errorf("fc pause %d should also be ≈0 vs 64KB's %d", r.PauseTX["128KB-fc"], r.PauseTX["64KB"])
	}
}

func TestFig11UpgradeHarmless(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Fig11OnlineUpgrade(Quick())
	t.Log("\n" + r.Table_.String())
	if r.QPs.Values[r.QPs.Len()-1] <= r.QPs.Values[1] {
		t.Fatal("QP count did not ramp")
	}
	if r.DuringIOPS < r.BaseIOPS*0.9 {
		t.Errorf("upgrade wave hurt throughput: %.0f → %.0f", r.BaseIOPS, r.DuringIOPS)
	}
	if r.MemInUse.Max() > r.MemOccupy.Max() {
		t.Error("in-use exceeded occupied")
	}
}

func TestFig12AntiJitterShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Fig12AntiJitter(Quick(), "ESSD")
	t.Log("\n" + r.Table_.String())
	if r.ThroughputRatioOn < 2 {
		t.Errorf("bandwidth step ×%.2f too small to call a burst", r.ThroughputRatioOn)
	}
	if r.P99On >= r.P99Off {
		t.Errorf("anti-jitter p99 %.1fµs should beat uncontrolled %.1fµs", r.P99On, r.P99Off)
	}
	if r.P99Off < 2*r.P99On {
		t.Errorf("tail separation too small: on=%.1f off=%.1f", r.P99On, r.P99Off)
	}
}

func TestQPScalingUnder10Pct(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := QPScaling(Quick())
	t.Log("\n" + r.Table_.String())
	if r.WorstPct >= 10 {
		t.Errorf("QP-cache degradation %.1f%%, paper <10%%", r.WorstPct)
	}
	if r.WorstPct <= 0 {
		t.Error("cache sweep showed no effect at all — model inert")
	}
}

func TestSRQShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := SRQTradeoff(Quick())
	t.Log("\n" + r.Table_.String())
	if r.SRQMemMB >= r.PerChannelMemMB/2 {
		t.Errorf("SRQ memory %.2fMB should be well under per-channel %.2fMB", r.SRQMemMB, r.PerChannelMemMB)
	}
	if r.PerChannelRNRs != 0 {
		t.Errorf("per-channel mode must stay RNR-free, got %d", r.PerChannelRNRs)
	}
	if r.SRQRNRs == 0 {
		t.Error("undersized SRQ under synchronized bursts should RNR")
	}
}

func TestMemoryModesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := MemoryModes(Quick())
	t.Log("\n" + r.Table_.String())
	// Data-path latency comparable across modes (±5%).
	base := r.PingUS[0]
	for i, m := range r.Modes {
		if r.PingUS[i] < base*0.95 || r.PingUS[i] > base*1.05 {
			t.Errorf("mode %s latency %.2f deviates from %.2f", m, r.PingUS[i], base)
		}
	}
	// Continuous registration is the most expensive; hugepage cheapest.
	if !(r.RegCostMS[1] > r.RegCostMS[0] && r.RegCostMS[0] > r.RegCostMS[2]) {
		t.Errorf("registration cost ordering wrong: %v", r.RegCostMS)
	}
}

func TestMixedFootprintBand(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := MixedFootprint(Quick())
	t.Log("\n" + r.Table_.String())
	for i, d := range r.Depths {
		if r.RatioPct[i] < 1 || r.RatioPct[i] > 15 {
			t.Errorf("depth %d: mixed/small = %.1f%%, paper band 1–10%%", d, r.RatioPct[i])
		}
	}
	// Deeper windows widen the gap (more pre-posted buffers).
	if r.RatioPct[len(r.RatioPct)-1] >= r.RatioPct[0] {
		t.Errorf("footprint ratio should shrink with depth: %v", r.RatioPct)
	}
}

func TestPeakStressClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := PeakStress(Quick())
	t.Log("\n" + r.Table_.String())
	if r.Errors != 0 || r.RNRs != 0 || r.Broken != 0 {
		t.Fatalf("stress not clean: errs=%d rnr=%d broken=%d", r.Errors, r.RNRs, r.Broken)
	}
	if r.AggregateOpsPerSec < 1e6 {
		t.Errorf("aggregate %.0f ops/s implausibly low", r.AggregateOpsPerSec)
	}
}

func TestFig3DiurnalShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Fig3Diurnal(Quick())
	t.Log("\n" + r.Table_.String())
	if r.PeakGbps < 5*r.TroughGbps {
		t.Errorf("saturated/unsaturated contrast too small: %.2f vs %.2f", r.PeakGbps, r.TroughGbps)
	}
}

func TestLoCComparisonShape(t *testing.T) {
	r := LoCComparison()
	t.Log("\n" + r.Table_.String())
	if r.QuickstartLoC == 0 || r.RawVerbsLoC == 0 {
		t.Skip("example sources not present")
	}
	if r.QuickstartLoC >= r.RawVerbsLoC/2 {
		t.Errorf("quickstart %d LoC vs raw verbs %d: simplification too weak", r.QuickstartLoC, r.RawVerbsLoC)
	}
}

func TestFragmentSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := FragmentSweep(Quick())
	t.Log("\n" + r.Table_.String())
	for i := range r.FragKB {
		if r.Goodput[i] <= 0 {
			t.Fatalf("fragment %dKB produced no goodput", r.FragKB[i])
		}
	}
}

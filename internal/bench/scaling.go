package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// QPScalingResult is the RNIC context-cache sweep (§VII-F "Influence of
// RNIC cache is limited").
type QPScalingResult struct {
	QPCounts  []int
	LatencyUS []float64
	WorstPct  float64 // degradation of the largest sweep point vs the first
	Table_    Table
}

// QPScaling measures ping latency while cycling round-robin over N QPs so
// the on-NIC context cache thrashes. Paper: <10% impact up to 60 K QPs.
func QPScaling(sc Scale) *QPScalingResult {
	counts := []int{64, 512, 2048, 8192}
	pings := 400
	if sc.Full {
		counts = append(counts, 30000, 60000)
		pings = 2000
	}
	r := &QPScalingResult{QPCounts: counts}
	for _, n := range counts {
		eng := sim.NewEngine()
		sc.observe(eng, fmt.Sprintf("qpscale/%d", n))
		fab := fabric.New(eng, fabric.DefaultConfig(), sc.Seed)
		fabric.BuildClos(fab, fabric.SmallClos())
		a := rnic.New(eng, fab.Host(0), rnic.DefaultConfig())
		b := rnic.New(eng, fab.Host(5), rnic.DefaultConfig())
		qps := make([][2]*rnic.QP, n)
		for i := range qps {
			qa, qb := rnic.ConnectLoopback(a, b, 8)
			qb.PostRecv(rnic.RecvWR{ID: 1, Len: 4096})
			qps[i] = [2]*rnic.QP{qa, qb}
		}
		var total sim.Duration
		done := 0
		var issue func(i int)
		issue = func(i int) {
			pair := qps[i%n]
			start := eng.Now()
			pair[1].RecvCQ.OnCompletion(func() {
				for range pair[1].RecvCQ.Poll(8) {
					total += eng.Now().Sub(start)
					done++
					pair[1].PostRecv(rnic.RecvWR{ID: 1, Len: 4096})
					if done < pings {
						issue(i + 1)
					}
				}
			})
			pair[0].PostSend(&rnic.SendWR{Op: rnic.OpSend, Len: 64, Unsignaled: true})
		}
		issue(0)
		eng.Run()
		r.LatencyUS = append(r.LatencyUS, (total / sim.Duration(done)).Micros())
	}
	first := r.LatencyUS[0]
	last := r.LatencyUS[len(r.LatencyUS)-1]
	r.WorstPct = (last - first) / first * 100
	t := Table{ID: "E11/§VII-F", Title: "QP count vs one-way latency (context cache)",
		Header: []string{"QPs", "latency(µs)", "vs 64 QPs"}}
	for i, n := range counts {
		t.Addf(n, r.LatencyUS[i], pct(r.LatencyUS[i], first))
	}
	t.Note("paper: cache influence <10%% up to 60K QPs")
	r.Table_ = t
	return r
}

func pct(v, base float64) string {
	return fmt.Sprintf("%+.1f%%", (v-base)/base*100)
}

// SRQResult is the shared-receive-queue trade-off (§VII-F).
type SRQResult struct {
	// Recv-buffer bytes registered with and without SRQ for the same
	// channel count.
	PerChannelMemMB float64
	SRQMemMB        float64
	// RNR NAKs under overload with an undersized SRQ — the risk that
	// keeps SRQ disabled by default.
	SRQRNRs        int64
	PerChannelRNRs int64
	Table_         Table
}

// SRQTradeoff builds a 16-channel server both ways and measures memory
// and RNR behaviour under burst pressure.
func SRQTradeoff(sc Scale) *SRQResult {
	clients := 8
	run := func(useSRQ bool) (memMB float64, rnrs int64) {
		c := cluster.New(cluster.Options{
			Topology: fabric.ClusterClos(clients + 1), Nodes: clients + 1, Seed: sc.Seed,
			Config: func(node int, cfg *xrdma.Config) {
				cfg.KeepaliveInterval = 0
				if node == 0 && useSRQ {
					cfg.UseSRQ = true
					// Undersized on purpose: shared queues are sized
					// for the average, and bursts overrun them.
					cfg.SRQSize = 16
				}
			},
		})
		if useSRQ {
			sc.observe(c.Eng, "srq/shared")
		} else {
			sc.observe(c.Eng, "srq/per-channel")
		}
		srv := c.Nodes[0].Ctx
		srv.OnChannel(func(ch *xrdma.Channel) {
			ch.OnMessage(func(m *xrdma.Msg) {
				// Application work between polls: with a shared queue
				// this is what lets synchronized bursts outrun reposting.
				srv.InjectWork(2 * sim.Microsecond)
				m.Reply(nil, 8)
			})
		})
		srv.Listen(7000)
		var chans []*xrdma.Channel
		c.ConnectPairs(cluster.FanInPairs(clients+1, 0), 7000, func(chs []*xrdma.Channel) { chans = chs })
		c.Eng.Run()
		memMB = float64(srv.Mem.InUseBytes) / 1e6
		// Synchronized bursts from all clients.
		for round := 0; round < 20; round++ {
			for _, ch := range chans {
				for k := 0; k < 16; k++ {
					ch.SendMsg(nil, 512, nil)
				}
			}
			c.Eng.RunFor(500 * sim.Microsecond)
		}
		c.Eng.RunFor(100 * sim.Millisecond)
		rnrs = c.Nodes[0].NIC.Counters.RNRNakSent
		return memMB, rnrs
	}
	r := &SRQResult{}
	r.PerChannelMemMB, r.PerChannelRNRs = run(false)
	r.SRQMemMB, r.SRQRNRs = run(true)
	t := Table{ID: "E12/§VII-F", Title: "SRQ trade-off: memory vs RNR risk",
		Header: []string{"mode", "recv mem (MB)", "RNR NAKs"}}
	t.Addf("per-channel RQ", r.PerChannelMemMB, r.PerChannelRNRs)
	t.Addf("SRQ (undersized)", r.SRQMemMB, r.SRQRNRs)
	t.Note("paper: SRQ cuts memory but violates the RNR-free principle; disabled by default")
	r.Table_ = t
	return r
}

// MemoryModesResult compares registration strategies (§VII-F).
type MemoryModesResult struct {
	Modes     []string
	RegCostMS []float64 // registering a 64 MB cache
	PingUS    []float64 // large-message latency per mode
	Table_    Table
}

// MemoryModes reproduces the non-continuous / continuous / hugepage
// comparison: comparable data-path latency, very different registration
// behaviour (continuous allocation is the one that triggers reclaim
// stalls at scale).
func MemoryModes(sc Scale) *MemoryModesResult {
	n := 20
	if sc.Full {
		n = 100
	}
	r := &MemoryModesResult{}
	t := Table{ID: "E13/§VII-F", Title: "memory registration modes",
		Header: []string{"mode", "reg 64MB (ms)", "64KB ping (µs)"}}
	for _, mode := range []rnic.RegMode{rnic.RegNonContinuous, rnic.RegContinuous, rnic.RegHugePage} {
		mode := mode
		cost := float64(rnic.RegCost(64<<20, mode)) / 1e6
		lat := xrdmaRTT(sc, "memmodes/"+mode.String(), func(cfg *xrdma.Config) { cfg.MemMode = mode }, 64<<10, n).Micros()
		r.Modes = append(r.Modes, mode.String())
		r.RegCostMS = append(r.RegCostMS, cost)
		r.PingUS = append(r.PingUS, lat)
		t.Addf(mode.String(), cost, lat)
	}
	t.Note("paper: non-continuous performs comparably with fewer fragmentation issues; X-RDMA avoids continuous physical memory")
	r.Table_ = t
	return r
}

// FootprintResult is the mixed-message memory comparison (E14, §VII-A).
type FootprintResult struct {
	Depths      []int
	SmallModeMB []float64
	MixedModeMB []float64
	RatioPct    []float64
	Table_      Table
}

// MixedFootprint measures registered receive memory when a 32 KB workload
// runs (a) fully inline (small-message mode sized for the payload) versus
// (b) the mixed strategy (4 KB buffers + on-demand rendezvous), across
// window depths. Paper: the large path needs only 1–10% of the small
// path's memory depending on CQ depth.
func MixedFootprint(sc Scale) *FootprintResult {
	r := &FootprintResult{}
	depths := []int{16, 32, 64}
	payload := 64 << 10
	for _, d := range depths {
		run := func(smallMode bool) float64 {
			c := cluster.New(cluster.Options{
				Topology: fabric.SmallClos(), Nodes: 8, Seed: sc.Seed,
				Config: func(node int, cfg *xrdma.Config) {
					cfg.KeepaliveInterval = 0
					cfg.WindowDepth = d
					cfg.MRSize = 256 << 10
					if smallMode {
						cfg.SmallMsgSize = payload
					}
				},
			})
			if smallMode {
				sc.observe(c.Eng, fmt.Sprintf("footprint/depth%d-small", d))
			} else {
				sc.observe(c.Eng, fmt.Sprintf("footprint/depth%d-mixed", d))
			}
			c.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
				ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 8) })
			})
			// 7 clients → node 0's peers; measure client 0's footprint
			// with channels to all others (full mesh from node 0).
			pairs := [][2]int{}
			for j := 1; j < 8; j++ {
				pairs = append(pairs, [2]int{0, j})
			}
			var chans []*xrdma.Channel
			c.ConnectPairs(pairs, 7000, func(chs []*xrdma.Channel) { chans = chs })
			c.Eng.Run()
			// Push some traffic so rendezvous staging is exercised.
			for _, ch := range chans {
				for k := 0; k < 4; k++ {
					ch.SendMsg(nil, payload, nil)
				}
			}
			c.Eng.Run()
			return float64(c.Nodes[0].NIC.Mem.PeakRegisteredBytes) / 1e6
		}
		small := run(true)
		mixed := run(false)
		r.Depths = append(r.Depths, d)
		r.SmallModeMB = append(r.SmallModeMB, small)
		r.MixedModeMB = append(r.MixedModeMB, mixed)
		r.RatioPct = append(r.RatioPct, mixed/small*100)
	}
	t := Table{ID: "E14/§VII-A", Title: "mixed-message memory footprint (64 KB payloads)",
		Header: []string{"depth", "small-mode (MB)", "mixed (MB)", "mixed/small %"}}
	for i, d := range r.Depths {
		t.Addf(d, r.SmallModeMB[i], r.MixedModeMB[i], r.RatioPct[i])
	}
	t.Note("paper: large-message path needs 1–10%% of small-mode memory depending on CQ depth")
	r.Table_ = t
	return r
}

// LoCResult is the programming-simplification comparison (§VII-B).
type LoCResult struct {
	QuickstartLoC int
	RawVerbsLoC   int
	SavingPct     float64
	Table_        Table
}

// LoCComparison counts the example sources: the same ping-pong written on
// X-RDMA's API versus raw verbs (paper: ~40 LoC vs ~200+, and 2000→40 for
// Pangu's data plane).
func LoCComparison() *LoCResult {
	_, self, _, _ := runtime.Caller(0)
	root := filepath.Join(filepath.Dir(self), "..", "..")
	count := func(rel string) int {
		b, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			return 0
		}
		n := 0
		for _, line := range strings.Split(string(b), "\n") {
			s := strings.TrimSpace(line)
			if s == "" || strings.HasPrefix(s, "//") {
				continue
			}
			n++
		}
		return n
	}
	r := &LoCResult{
		QuickstartLoC: count("examples/quickstart/main.go"),
		RawVerbsLoC:   count("examples/rawverbs/main.go"),
	}
	if r.RawVerbsLoC > 0 {
		r.SavingPct = float64(r.RawVerbsLoC-r.QuickstartLoC) / float64(r.RawVerbsLoC) * 100
	}
	t := Table{ID: "E16/§VII-B", Title: "programming simplification (ping-pong LoC)",
		Header: []string{"program", "LoC", "paper"}}
	t.Addf("X-RDMA quickstart", r.QuickstartLoC, "~40 (50 for sockets)")
	t.Addf("raw verbs", r.RawVerbsLoC, "≥200")
	t.Addf("saving (%)", r.SavingPct, "")
	r.Table_ = t
	return r
}

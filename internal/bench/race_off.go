//go:build !race

package bench

// raceHeapMul widens heap budgets when the race detector instruments the
// build (shadow memory and allocation padding inflate HeapAlloc several
// fold). Plain builds assert the real budget.
const raceHeapMul = 1

// Package bench regenerates every table and figure of the paper's
// evaluation (§VII). Each experiment is a pure function of a Scale (quick
// for tests, full for cmd/reproduce) returning raw numbers plus a
// rendered, paper-style table; the package's tests assert the *shapes*
// the paper reports — orderings, ratios, crossovers — rather than
// absolute microseconds, since the substrate is a simulator rather than
// the authors' testbed.
package bench

import (
	"fmt"
	"strings"

	"xrdma/internal/sim"
)

// Scale selects experiment sizing.
type Scale struct {
	// Full runs closer to paper scale (more nodes, longer horizon).
	Full bool
	// Seed drives all randomness.
	Seed uint64
	// Observe, when non-nil, is called once per simulation engine an
	// experiment creates, before the workload runs. cmd/reproduce uses it
	// to attach the telemetry collector (metrics snapshots + timeline
	// capture) to every world without the experiments knowing about it.
	Observe func(eng *sim.Engine, label string)
}

// observe invokes the Observe hook if one is installed.
func (sc Scale) observe(eng *sim.Engine, label string) {
	if sc.Observe != nil {
		sc.Observe(eng, label)
	}
}

// Quick is the default test/bench scale.
func Quick() Scale { return Scale{Seed: 42} }

// FullScale is used by cmd/reproduce -full.
func FullScale() Scale { return Scale{Full: true, Seed: 42} }

// Table is a rendered experiment result.
type Table struct {
	ID     string // experiment id from DESIGN.md (e.g. "E7/Fig10")
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row of formatted cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Addf appends a row, formatting each value with %v / %.2f as fits.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note records a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			w := 8
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

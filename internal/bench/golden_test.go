package bench

import (
	"sync"
	"testing"

	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// Golden-seed determinism anchors. These exact numbers were captured on
// the container/heap scheduler before the 4-ary-heap/pooling rewrite and
// must never drift: the simulation is run-to-complete with a total event
// order of (time, sequence), so any change to these values means the
// kernel reordered events or a model drew differently from its RNG —
// i.e. the experiments in REPRODUCE.md are no longer comparable across
// versions. Update them only for a deliberate, documented model change.
const (
	goldenSeed       = 42
	goldenPingSize   = 512
	goldenPingCount  = 50
	goldenFiredCount = 4476
	goldenMeanRTT    = 7165 * sim.Nanosecond
	goldenFig9Raw    = 1297.0
	goldenFig9XRDMA  = 0.0
)

func TestGoldenSeedDeterminism(t *testing.T) {
	f := newPingFixture(Scale{Seed: goldenSeed}, "golden", nil)
	rtt := f.rtt(goldenPingSize, goldenPingCount)
	if rtt != goldenMeanRTT {
		t.Errorf("mean RTT for seed=%d: got %v, want %v", goldenSeed, rtt, goldenMeanRTT)
	}
	if fired := f.c.Eng.Fired(); fired != goldenFiredCount {
		t.Errorf("Engine.Fired() for seed=%d: got %d, want %d", goldenSeed, fired, goldenFiredCount)
	}
}

func TestGoldenSeedFig9(t *testing.T) {
	r := Fig9RNRCounter(Quick())
	if r.RawRNRPerSec != goldenFig9Raw {
		t.Errorf("Fig9 raw RNR/s: got %v, want %v", r.RawRNRPerSec, goldenFig9Raw)
	}
	if r.XRDMARNRPerSec != goldenFig9XRDMA {
		t.Errorf("Fig9 X-RDMA RNR/s: got %v, want %v", r.XRDMARNRPerSec, goldenFig9XRDMA)
	}
}

// Re-running the same seed twice in one process must be bit-identical:
// engine-keyed pools and free-lists must not let one run's state leak
// into the next.
func TestGoldenSeedRepeatable(t *testing.T) {
	a := newPingFixture(Scale{Seed: goldenSeed}, "golden", nil)
	rttA, firedA := a.rtt(goldenPingSize, goldenPingCount), a.c.Eng.Fired()
	b := newPingFixture(Scale{Seed: goldenSeed}, "golden", nil)
	rttB, firedB := b.rtt(goldenPingSize, goldenPingCount), b.c.Eng.Fired()
	if rttA != rttB || firedA != firedB {
		t.Errorf("same seed diverged: rtt %v vs %v, fired %d vs %d", rttA, rttB, firedA, firedB)
	}
}

// metricsDigest runs the golden ping workload and returns the full metric
// registry rendered as sorted name=value lines.
func metricsDigest() string {
	f := newPingFixture(Scale{Seed: goldenSeed}, "golden", nil)
	f.rtt(goldenPingSize, goldenPingCount)
	return telemetry.For(f.c.Eng).Reg.Digest()
}

// The telemetry registry is part of the determinism contract: the digest
// of every metric after the golden workload must be bit-identical whether
// experiments run sequentially or concurrently (cmd/reproduce -j N keys
// each engine's registry off the engine, so runs share nothing).
func TestGoldenMetricsDigestAcrossParallelism(t *testing.T) {
	want := metricsDigest()
	if want == "" {
		t.Fatal("empty metrics digest — no metrics registered")
	}
	const workers = 8
	got := make([]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = metricsDigest()
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Fatalf("worker %d digest diverged from sequential run:\n--- want ---\n%s--- got ---\n%s", i, want, g)
		}
	}
}

package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"xrdma/internal/chaos"
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// E23 "storm": the one-sided transactional dataplane, after Storm
// (arXiv:1902.02411). A server exposes its KV table as an MR window;
// entries are seqlock-framed ([head ver][seq][data][tail ver]). Readers
// GET speculatively with one RDMA READ and validate the version pair
// locally — head==tail and even means the snapshot is consistent; any
// mismatch means a writer's critical section was caught in flight and
// the client falls back to a GET RPC. PUTs always ride RPC (the server
// owns the write path and holds each entry's seqlock for a modelled
// critical section). Three read/write mixes run on both planes:
//
//	rpc        every GET is a request/response — the responder's CPU is
//	           on every read's critical path
//	one-sided  speculative READ + validation, RPC fallback only under
//	           write contention
//
// The Storm tradeoff this reproduces: at read-mostly mixes the
// one-sided GET beats RPC on latency and the responder handles almost
// no messages; as the write share grows, validation failures route an
// increasing share of reads through the RPC fallback, narrowing the
// gap. Safety is absolute at every mix: zero stale reads (validated
// snapshot ≥ the last acknowledged write at issue time, payload
// bit-consistent with its version), zero duplicated or lost PUTs.
//
// The digest is a pure function of the seed — bit-identical across
// sequential reruns and concurrent goroutines (TestStormDeterministic).

const (
	stormKeys     = 8
	stormValBytes = 248 // 8-byte embedded seq + 240 pattern bytes
	stormSlot     = 8 + stormValBytes + 8
	stormOpsQuick = 300
	stormOpsFull  = 1200
	stormSpan     = 1200 * sim.Microsecond // issue window for each op class
	stormHold     = 6 * sim.Microsecond    // server-side write critical section
)

const (
	stormOpPut = 1
	stormOpGet = 2
)

// stormPattern fills b with the deterministic payload for (key, seq).
func stormPattern(key int, seq uint64, b []byte) {
	for i := range b {
		b[i] = byte(uint64(key)*31 + seq*7 + uint64(i)*13 + 5)
	}
}

func stormPatternOK(key int, seq uint64, b []byte) bool {
	for i := range b {
		if b[i] != byte(uint64(key)*31+seq*7+uint64(i)*13+5) {
			return false
		}
	}
	return true
}

// stormServer owns the table: the exposed window is the one-sided view,
// vals is the authoritative copy RPC reads serve from, and the per-key
// seqlock is held for stormHold around every window mutation.
type stormServer struct {
	eng     *sim.Engine
	win     *xrdma.Window
	vals    [stormKeys][]byte
	busy    [stormKeys]bool
	pending [stormKeys][]func()
	msgs    int
	applied map[uint64]int // putID → application count (exactly-once ledger)
}

func (s *stormServer) serve(m *xrdma.Msg) {
	s.msgs++
	switch m.Data[0] {
	case stormOpGet:
		k := int(m.Data[1])
		m.Reply(s.vals[k], 0)
	case stormOpPut:
		k := int(m.Data[1])
		seq := binary.LittleEndian.Uint64(m.Data[2:])
		s.put(k, seq, m)
	}
}

// put runs one seqlock critical section: head goes odd immediately, the
// data and tail land stormHold later, and only then does head return to
// even and the PUT get acknowledged. Overlapping PUTs to one key queue
// behind the lock.
func (s *stormServer) put(k int, seq uint64, m *xrdma.Msg) {
	if s.busy[k] {
		s.pending[k] = append(s.pending[k], func() { s.put(k, seq, m) })
		return
	}
	s.busy[k] = true
	s.applied[uint64(k)<<32|seq]++
	slot := s.win.Bytes()[k*stormSlot : (k+1)*stormSlot]
	binary.LittleEndian.PutUint64(slot, 2*seq-1) // head odd: write in flight
	s.eng.AfterBg(stormHold, func() {
		val := make([]byte, stormValBytes)
		binary.LittleEndian.PutUint64(val, seq)
		stormPattern(k, seq, val[8:])
		copy(slot[8:], val)
		binary.LittleEndian.PutUint64(slot[8+stormValBytes:], 2*seq) // tail
		binary.LittleEndian.PutUint64(slot, 2*seq)                   // head even: stable
		s.vals[k] = val
		s.busy[k] = false
		m.Reply([]byte("OK"), 0)
		if q := s.pending[k]; len(q) > 0 {
			s.pending[k] = q[1:]
			q[0]()
		}
	})
}

// StormArm is one (mix, plane) run.
type StormArm struct {
	Name string

	Gets      int // GETs issued
	SpecOK    int // speculative READs that validated
	Fallbacks int // validation failures routed to the RPC fallback
	Puts      int // PUTs issued
	GetErrs   int // GETs that completed with an error (must be 0)
	Stale     int // validated GETs older than the acked floor (must be 0)
	Dups      int // PUTs applied more than once (must be 0)
	Lost      int // GETs or PUTs that never completed (must be 0)

	ServerMsgs int // responder handler invocations — the CPU-cost proxy
	P50, P99   sim.Duration

	// Chaos-arm observables (not part of the digest schema decision —
	// deterministic like everything else, but only asserted by the
	// brownout test).
	Retransmits int64
	Drops       int64
	AccessErrs  int64
	BlameTop    string
	BlameMsgs   int64

	WinHash uint64
}

func (a *StormArm) digestLine() string {
	return fmt.Sprintf("arm %s gets=%d spec=%d fb=%d puts=%d errs=%d stale=%d dups=%d lost=%d srvmsgs=%d p50=%v p99=%v win=%016x",
		a.Name, a.Gets, a.SpecOK, a.Fallbacks, a.Puts, a.GetErrs,
		a.Stale, a.Dups, a.Lost, a.ServerMsgs, a.P50, a.P99, a.WinHash)
}

// StormResult aggregates E23.
type StormResult struct {
	Arms   []*StormArm
	Table_ Table
}

// Arm returns a named arm (nil if absent).
func (r *StormResult) Arm(name string) *StormArm {
	for _, a := range r.Arms {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Digest renders the deterministic outcome of every arm.
func (r *StormResult) Digest() []string {
	out := make([]string, 0, len(r.Arms))
	for _, a := range r.Arms {
		out = append(out, a.digestLine())
	}
	return out
}

// runStormArm drives one arm on a fresh SmallClos world: reader node 0
// and writer node 1 (pod0-tor0) against server node 4 (pod0-tor1), so
// every op crosses the leaf tier. fault browns out the reader's spine
// path mid-run — recovery must come from the shared go-back-N machinery
// (retransmits), never from a second reliability plane.
func runStormArm(sc Scale, name string, onesided bool, gets, puts int, fault bool) *StormArm {
	a := &StormArm{Name: name, Gets: gets, Puts: puts}
	nic := grayNIC() // RetransTimeout 1 ms, RetryLimit 12: brownouts are survivable
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   nic,
		Nodes:    8,
		Config:   func(_ int, cfg *xrdma.Config) { blameKnobs(cfg) },
		Seed:     sc.Seed,
	})
	sc.observe(c.Eng, "storm/"+name)
	eng := c.Eng

	srv := &stormServer{eng: eng, applied: make(map[uint64]int)}
	var winID uint64
	c.Nodes[4].Ctx.ExposeWindow(stormKeys*stormSlot, func(w *xrdma.Window, err error) {
		if err != nil {
			panic(fmt.Sprintf("storm: expose: %v", err))
		}
		srv.win = w
		winID = w.ID
	})
	eng.Run()
	if srv.win == nil {
		panic("storm: window never registered")
	}
	for k := 0; k < stormKeys; k++ {
		slot := srv.win.Bytes()[k*stormSlot : (k+1)*stormSlot]
		val := make([]byte, stormValBytes)
		stormPattern(k, 0, val[8:])
		copy(slot[8:], val)
		srv.vals[k] = val
	}

	c.ListenAll(7600, func(_ *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(srv.serve)
		ch.GrantWindow(srv.win)
	})
	var reader, writer *xrdma.Channel
	c.ConnectPairs([][2]int{{0, 4}, {1, 4}}, 7600, func(cs []*xrdma.Channel) {
		reader, writer = cs[0], cs[1]
	})
	eng.Run()
	if reader == nil || writer == nil {
		panic("storm: channels never established")
	}
	rw, haveWin := reader.PeerWindow(winID)
	if !haveWin {
		panic("storm: window grant never arrived")
	}

	// Deterministic key sequences, shared between the rpc and one-sided
	// planes of the same mix so the workloads are identical.
	rng := sim.NewRNG(sc.Seed ^ uint64(gets)<<20 ^ uint64(puts))
	getKeys := make([]int, gets)
	for i := range getKeys {
		getKeys[i] = rng.Intn(stormKeys)
	}
	putKeys := make([]int, puts)
	putSeq := make([]uint64, puts)
	var nextSeq [stormKeys]uint64
	for i := range putKeys {
		k := rng.Intn(stormKeys)
		nextSeq[k]++
		putKeys[i], putSeq[i] = k, nextSeq[k]
	}

	// acked[k] is the newest PUT seq acknowledged to the writer — the
	// linearizability floor every later GET must see.
	var acked [stormKeys]uint64
	var lats []sim.Duration
	done := 0

	finish := func(k int, floor uint64, t0 sim.Time, val []byte) {
		seq := binary.LittleEndian.Uint64(val)
		if seq < floor || !stormPatternOK(k, seq, val[8:]) {
			a.Stale++
		}
		lats = append(lats, eng.Now().Sub(t0))
		done++
	}
	rpcGet := func(k int, floor uint64, t0 sim.Time) {
		req := []byte{stormOpGet, byte(k)}
		reader.SendMsg(req, 0, func(m *xrdma.Msg, err error) {
			if err != nil {
				a.GetErrs++
				return
			}
			finish(k, floor, t0, m.Data)
		})
	}
	issueGet := func(k int) {
		floor := acked[k]
		t0 := eng.Now()
		if !onesided {
			rpcGet(k, floor, t0)
			return
		}
		reader.ReadRemote(rw, uint64(k*stormSlot), stormSlot, func(b []byte, err error) {
			if err == nil {
				head := binary.LittleEndian.Uint64(b)
				tail := binary.LittleEndian.Uint64(b[8+stormValBytes:])
				seq := binary.LittleEndian.Uint64(b[8:])
				if head == tail && head%2 == 0 && seq*2 == head {
					a.SpecOK++
					finish(k, floor, t0, b[8:8+stormValBytes])
					return
				}
			} else {
				a.GetErrs++
			}
			// Contention (or a degraded plane): the write-RPC dataplane is
			// the fallback, exactly as Storm prescribes.
			a.Fallbacks++
			rpcGet(k, floor, t0)
		})
	}

	// Issue times are drawn uniformly over the span rather than gridded:
	// a fixed tick would phase-lock READ arrivals against the write
	// critical sections and deterministically dodge (or hit) contention.
	start := eng.Now()
	for i := 0; i < gets; i++ {
		k := getKeys[i]
		at := sim.Duration(1 + rng.Int63n(int64(stormSpan)))
		eng.AfterBg(at, func() { issueGet(k) })
	}
	putsDone := 0
	if puts > 0 {
		// Sorted issue times: seqs were assigned in schedule order, so
		// per-key writes must leave the writer in that same order.
		times := make([]sim.Duration, puts)
		for i := range times {
			times[i] = sim.Duration(1 + rng.Int63n(int64(stormSpan)))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		for i := 0; i < puts; i++ {
			k, seq := putKeys[i], putSeq[i]
			eng.AfterBg(times[i], func() {
				req := make([]byte, 10)
				req[0], req[1] = stormOpPut, byte(k)
				binary.LittleEndian.PutUint64(req[2:], seq)
				writer.SendMsg(req, 0, func(_ *xrdma.Msg, err error) {
					if err != nil {
						return
					}
					if seq > acked[k] {
						acked[k] = seq
					}
					putsDone++
				})
			})
		}
	}

	if fault {
		inj := chaos.New(c)
		inj.Schedule([]chaos.Step{{At: 200 * sim.Microsecond, Name: "storm brownout", Do: func(i *chaos.Injector) {
			idx := fabric.ECMPIndex(reader.FlowHash(), 2)
			i.Brownout("pod0-tor0", fmt.Sprintf("pod0-leaf%d", idx), 0.25, 0, 10*sim.Microsecond)
		}}})
	}

	horizon := 10 * sim.Millisecond
	if fault {
		// Brownout recovery is RTO-paced (1 ms timer): leave room for the
		// unluckiest read to retransmit several times.
		horizon = 80 * sim.Millisecond
	}
	eng.RunUntil(start.Add(horizon))

	a.Lost = (gets - done - a.GetErrs) + (puts - putsDone)
	for i := 0; i < puts; i++ {
		switch n := srv.applied[uint64(putKeys[i])<<32|putSeq[i]]; {
		case n == 0:
			a.Lost++
		case n > 1:
			a.Dups++
		}
	}
	a.ServerMsgs = srv.msgs
	a.P50 = grayPercentile(lats, 0.50)
	a.P99 = grayPercentile(lats, 0.99)
	a.Retransmits = c.Nodes[0].NIC.Counters.Retransmits
	a.Drops = c.Fab.Stats.Drops
	a.AccessErrs = c.Nodes[4].NIC.Counters.AccessErrors
	blame := c.Nodes[0].Ctx.Telemetry().Blame
	top, _ := blame.Top()
	a.BlameTop = top.String()
	a.BlameMsgs = blame.Count()

	// Window hash: the final seqlock state of every entry, in key order.
	h := fnv.New64a()
	h.Write(srv.win.Bytes())
	var b8 [8]byte
	for k := 0; k < stormKeys; k++ {
		binary.LittleEndian.PutUint64(b8[:], binary.LittleEndian.Uint64(srv.vals[k]))
		h.Write(b8[:])
	}
	a.WinHash = h.Sum64()
	return a
}

// Storm runs E23: three mixes × two planes.
func Storm(sc Scale) *StormResult {
	ops := stormOpsQuick
	if sc.Full {
		ops = stormOpsFull
	}
	mixes := []struct {
		name       string
		gets, puts int
	}{
		{"read100", ops, 0},
		{"read95", ops * 95 / 100, ops * 5 / 100},
		{"read50", ops / 2, ops / 2},
	}
	r := &StormResult{}
	for _, m := range mixes {
		r.Arms = append(r.Arms,
			runStormArm(sc, m.name+"/rpc", false, m.gets, m.puts, false),
			runStormArm(sc, m.name+"/one-sided", true, m.gets, m.puts, false))
	}
	t := Table{
		ID:    "E23/Storm",
		Title: "Storm-style KV: speculative one-sided GET + version validation vs RPC",
		Header: []string{"arm", "gets", "spec", "fallback", "puts",
			"p50", "p99", "srv msgs", "stale", "dups", "lost"},
	}
	for _, a := range r.Arms {
		t.Addf(a.Name, a.Gets, a.SpecOK, a.Fallbacks, a.Puts,
			a.P50.String(), a.P99.String(), a.ServerMsgs, a.Stale, a.Dups, a.Lost)
	}
	t.Notes = append(t.Notes,
		"one-sided GET: single RDMA READ of the seqlock-framed entry, validated locally (head==tail, even, seq consistent)",
		"validation failure = a writer's critical section caught in flight → GET retried over the RPC fallback",
		"srv msgs counts responder handler invocations: the responder-CPU cost the one-sided plane removes",
		"stale counts validated reads older than the acked floor at issue — the transactional guarantee (must be 0)")
	r.Table_ = t
	return r
}

package bench

import (
	"encoding/binary"
	"fmt"

	"xrdma/internal/chaos"
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/xrdma"
)

// E21 "blame": causal per-message tracing answers "where did my p99 go?".
// Three arms each inject one known latency cause into a fresh SmallClos
// world while every request rides the blame plane (TraceSampleN=1); the
// top-blamed stage of the aggregate report must name the injected cause:
//
//	incast    7 clients burst into one server — ToR egress queueing
//	          (fabric.queue) must dominate
//	brownout  one spine path silently drops/corrupts under steady load —
//	          RC retransmit recovery (recover.rto) must dominate
//	slowrecv  the server runs a tiny SRQ it cannot refill fast enough —
//	          RNR backoff (recover.rnr) must dominate
//
// TestBlame asserts the verdicts and that the digest is bit-identical
// across runs and -j parallelism.

// BlameArm is the outcome of one injected-cause arm.
type BlameArm struct {
	Name  string
	Cause string          // what was injected
	Want  telemetry.Stage // the stage that must top the report

	Msgs   int64  // blame-traced messages reconstructed
	Resps  int    // responses the clients consumed
	Top    string // top-blamed stage of the aggregate
	Match  bool   // Top == Want
	Report string // rendered Blame.Table()

	Digest_ []string
}

// BlameResult aggregates the experiment.
type BlameResult struct {
	Incast, Brownout, SlowRecv *BlameArm
	Table_                     Table
}

// Digest renders every arm's blame aggregate as deterministic lines:
// same seed ⇒ bit-identical, sequential or parallel.
func (r *BlameResult) Digest() []string {
	var out []string
	for _, a := range []*BlameArm{r.Incast, r.Brownout, r.SlowRecv} {
		out = append(out, fmt.Sprintf("arm %s resps=%d", a.Name, a.Resps))
		out = append(out, a.Digest_...)
	}
	return out
}

// blameKnobs is the common configuration: req-rsp mode with every message
// blame-sampled, no doctor/retry planes (the injected cause must persist
// and the RTT must stay honest), keepalive off.
func blameKnobs(cfg *xrdma.Config) {
	cfg.ReqRspMode = true
	cfg.TraceSampleN = 1
	cfg.PathDoctor = false
	cfg.KeepaliveInterval = 0
	cfg.SlowThreshold = 10 * sim.Millisecond // suspect plane quiet: N=1 samples everything
}

// blameFinish extracts the verdict from the engine-wide aggregate.
func blameFinish(a *BlameArm, c *cluster.Cluster) *BlameArm {
	b := c.Nodes[0].Ctx.Telemetry().Blame
	top, _ := b.Top()
	a.Msgs = b.Count()
	a.Top = top.String()
	a.Match = top == a.Want
	a.Report = b.Table()
	a.Digest_ = b.Digest()
	return a
}

// runBlameIncast: 7 clients on a SmallClos burst 8×2KB requests into one
// server every 100 µs — a Pangu-style incast. Every burst converges on
// the server ToR's single 25 Gbps egress port, so switch egress-queue
// residency dominates each request's critical path. DCQCN is disabled so
// the senders keep the queue standing instead of pacing it away.
func runBlameIncast(sc Scale) *BlameArm {
	a := &BlameArm{Name: "incast", Cause: "ToR egress incast queueing", Want: telemetry.StageFabricQueue}
	nic := rnic.DefaultConfig()
	nic.DCQCN.Enabled = false
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   nic,
		Nodes:    8,
		Config:   func(_ int, cfg *xrdma.Config) { blameKnobs(cfg) },
		Seed:     sc.Seed,
	})
	sc.observe(c.Eng, "blame/incast")
	eng := c.Eng

	c.ListenAll(7500, func(_ *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 64) })
	})
	var chans []*xrdma.Channel
	c.ConnectPairs(cluster.FanInPairs(8, 4), 7500, func(cs []*xrdma.Channel) { chans = cs })
	eng.Run()
	if chans == nil {
		panic("blame/incast: channels never established")
	}

	const (
		burst   = 8
		payload = 2048
		tick    = 100 * sim.Microsecond
		stopAt  = 5 * sim.Millisecond
		horizon = 8 * sim.Millisecond
	)
	start := eng.Now()
	resps := 0
	var fire func()
	fire = func() {
		if eng.Now().Sub(start) >= stopAt {
			return
		}
		for _, ch := range chans {
			for i := 0; i < burst; i++ {
				buf := make([]byte, payload)
				ch.SendMsg(buf, 0, func(m *xrdma.Msg, err error) {
					if err == nil {
						resps++
					}
				})
			}
		}
		eng.AfterBg(tick, fire)
	}
	eng.AfterBg(tick, fire)
	eng.RunUntil(start.Add(horizon))
	a.Resps = resps
	return blameFinish(a, c)
}

// runBlameBrownout: the E20 gray failure under the blame plane — the
// exact spine path the client's requests ride silently drops 12% and
// corrupts 5% of packets. RC go-back-N absorbs every loss with a 1 ms
// retransmit timeout, so recover.rto must dominate the traced tail.
func runBlameBrownout(sc Scale) *BlameArm {
	a := &BlameArm{Name: "brownout", Cause: "spine brownout (loss + corruption)", Want: telemetry.StageRTORecovery}
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   grayNIC(), // RetransTimeout 1 ms, RetryLimit 12
		Nodes:    8,
		Config:   func(_ int, cfg *xrdma.Config) { blameKnobs(cfg) },
		Seed:     sc.Seed,
	})
	sc.observe(c.Eng, "blame/brownout")
	eng := c.Eng

	c.ListenAll(7501, func(_ *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			m.Reply(m.Data[:8], 0)
		})
	})
	var ch *xrdma.Channel
	c.Connect(0, 4, 7501, func(cch *xrdma.Channel, err error) {
		if err != nil {
			panic(err)
		}
		ch = cch
	})
	eng.Run()
	if ch == nil {
		panic("blame/brownout: channel never established")
	}

	const (
		tick    = 500 * sim.Microsecond
		faultAt = 20 * sim.Millisecond
		stopAt  = 120 * sim.Millisecond
		horizon = 160 * sim.Millisecond
	)
	start := eng.Now()
	resps := 0
	var id uint64
	var tickFn func()
	tickFn = func() {
		if eng.Now().Sub(start) >= stopAt {
			return
		}
		buf := make([]byte, 16)
		binary.LittleEndian.PutUint64(buf, id)
		id++
		ch.SendMsg(buf, 0, func(m *xrdma.Msg, err error) {
			if err == nil {
				resps++
			}
		})
		eng.AfterBg(tick, tickFn)
	}
	eng.AfterBg(tick, tickFn)

	inj := chaos.New(c)
	inj.Schedule([]chaos.Step{{At: faultAt, Name: "blame brownout", Do: func(i *chaos.Injector) {
		idx := fabric.ECMPIndex(ch.FlowHash(), 2)
		i.Brownout("pod0-tor0", fmt.Sprintf("pod0-leaf%d", idx), 0.12, 0.05, 20*sim.Microsecond)
	}}})

	eng.RunUntil(start.Add(horizon))
	a.Resps = resps
	return blameFinish(a, c)
}

// runBlameSlowRecv: the server shares a 4-deep SRQ across two bursting
// clients — every burst overruns the receive queue, the server RNR-NAKs,
// and the clients sit out the RNR timer before retransmitting. The RNR
// backoff (recover.rnr) must dominate the traced critical paths.
func runBlameSlowRecv(sc Scale) *BlameArm {
	a := &BlameArm{Name: "slowrecv", Cause: "slow receiver (SRQ exhaustion → RNR)", Want: telemetry.StageRNRRecovery}
	nic := rnic.DefaultConfig()
	nic.RNRTimer = 300 * sim.Microsecond
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   nic,
		Nodes:    8,
		Config: func(node int, cfg *xrdma.Config) {
			blameKnobs(cfg)
			if node == 4 {
				cfg.UseSRQ = true
				cfg.SRQSize = 4
			}
		},
		Seed: sc.Seed,
	})
	sc.observe(c.Eng, "blame/slowrecv")
	eng := c.Eng

	c.ListenAll(7502, func(_ *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 64) })
	})
	var chans []*xrdma.Channel
	c.ConnectPairs([][2]int{{0, 4}, {1, 4}}, 7502, func(cs []*xrdma.Channel) { chans = cs })
	eng.Run()
	if chans == nil {
		panic("blame/slowrecv: channels never established")
	}

	const (
		burst   = 16
		tick    = 300 * sim.Microsecond
		stopAt  = 10 * sim.Millisecond
		horizon = 20 * sim.Millisecond
	)
	start := eng.Now()
	resps := 0
	var fire func()
	fire = func() {
		if eng.Now().Sub(start) >= stopAt {
			return
		}
		for _, ch := range chans {
			for i := 0; i < burst; i++ {
				buf := make([]byte, 256)
				ch.SendMsg(buf, 0, func(m *xrdma.Msg, err error) {
					if err == nil {
						resps++
					}
				})
			}
		}
		eng.AfterBg(tick, fire)
	}
	eng.AfterBg(tick, fire)
	eng.RunUntil(start.Add(horizon))
	a.Resps = resps
	return blameFinish(a, c)
}

// BlameAttribution runs the three arms and renders the E21 table.
func BlameAttribution(sc Scale) *BlameResult {
	r := &BlameResult{
		Incast:   runBlameIncast(sc),
		Brownout: runBlameBrownout(sc),
		SlowRecv: runBlameSlowRecv(sc),
	}
	t := Table{
		ID:     "E21/Blame",
		Title:  "Blame attribution: injected cause vs top-blamed stage (SmallClos, every message traced)",
		Header: []string{"arm", "injected cause", "msgs", "resps", "top stage", "match"},
	}
	for _, a := range []*BlameArm{r.Incast, r.Brownout, r.SlowRecv} {
		t.Addf(a.Name, a.Cause, a.Msgs, a.Resps, a.Top, a.Match)
	}
	t.Note("top stage = largest total residency across reconstructed critical paths (PFC share and residual excluded)")
	t.Note("each arm is a fresh world; the verdict must name the injected cause for the plane to be trustworthy")
	r.Table_ = t
	return r
}

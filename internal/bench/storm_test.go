package bench

import (
	"strings"
	"testing"

	"xrdma/internal/telemetry"
)

// TestStorm is the E23 acceptance gate: the Storm tradeoff reproduces
// (one-sided GETs beat RPC at read-mostly mixes with almost no responder
// CPU; the write-RPC fallback engages under contention) and the
// transactional guarantees hold at every mix.
func TestStorm(t *testing.T) {
	r := Storm(Quick())
	for _, a := range r.Arms {
		if a.Stale != 0 {
			t.Errorf("%s: %d stale reads — version validation broken", a.Name, a.Stale)
		}
		if a.Dups != 0 || a.Lost != 0 {
			t.Errorf("%s: dups=%d lost=%d — conservation violated", a.Name, a.Dups, a.Lost)
		}
		if a.GetErrs != 0 {
			t.Errorf("%s: %d GET errors", a.Name, a.GetErrs)
		}
		if a.AccessErrs != 0 {
			t.Errorf("%s: %d remote-access errors on a clean run", a.Name, a.AccessErrs)
		}
	}
	for _, mix := range []string{"read100", "read95"} {
		rpc, one := r.Arm(mix+"/rpc"), r.Arm(mix+"/one-sided")
		if one.P50 >= rpc.P50 {
			t.Errorf("%s: one-sided p50 %v not better than RPC %v", mix, one.P50, rpc.P50)
		}
		if one.P99 >= rpc.P99 {
			t.Errorf("%s: one-sided p99 %v not better than RPC %v", mix, one.P99, rpc.P99)
		}
		if one.ServerMsgs >= rpc.ServerMsgs/2 {
			t.Errorf("%s: one-sided server msgs %d not well below RPC %d — responder CPU not offloaded",
				mix, one.ServerMsgs, rpc.ServerMsgs)
		}
	}
	if a := r.Arm("read100/one-sided"); a.Fallbacks != 0 || a.SpecOK != a.Gets {
		t.Errorf("read100: spec=%d fallbacks=%d of %d gets — no writers, every READ must validate",
			a.SpecOK, a.Fallbacks, a.Gets)
	}
	if a := r.Arm("read50/one-sided"); a.Fallbacks == 0 {
		t.Error("read50: zero fallbacks — write contention never caught a critical section")
	}
	// Final store state must be plane-independent: same mix, same writes,
	// same bytes — reads never perturb the table.
	for _, mix := range []string{"read100", "read95", "read50"} {
		if a, b := r.Arm(mix+"/rpc"), r.Arm(mix+"/one-sided"); a.WinHash != b.WinHash {
			t.Errorf("%s: final store diverges between planes (%016x vs %016x)", mix, a.WinHash, b.WinHash)
		}
	}
}

// TestStormBrownout browns out the reader's spine path mid-run: every
// speculative READ must still complete via the shared go-back-N
// machinery — retransmits on the reader's own QP, zero stale reads,
// zero fallbacks (loss is not contention), and the blame plane pinning
// the inflated tail on read.fetch. No second reliability plane exists
// to hide behind.
func TestStormBrownout(t *testing.T) {
	a := runStormArm(Quick(), "brownout/one-sided", true, 200, 0, true)
	if a.Lost != 0 || a.GetErrs != 0 {
		t.Fatalf("brownout: lost=%d errs=%d — reads did not recover", a.Lost, a.GetErrs)
	}
	if a.Stale != 0 {
		t.Fatalf("brownout: %d stale reads", a.Stale)
	}
	if a.Fallbacks != 0 {
		t.Fatalf("brownout: %d fallbacks — loss must be absorbed by retransmission, not re-routed", a.Fallbacks)
	}
	if a.Retransmits == 0 {
		t.Fatal("brownout: zero retransmits — the fault never bit, test is vacuous")
	}
	if a.BlameMsgs == 0 || a.BlameTop != telemetry.StageReadFetch.String() {
		t.Fatalf("brownout: blame top %q over %d msgs, want %q", a.BlameTop, a.BlameMsgs, telemetry.StageReadFetch)
	}
}

// TestStormDeterministic: the digest is a pure function of the seed —
// bit-identical across sequential reruns and across 4 concurrent
// goroutines (the -j 1 vs -j 8 guarantee of cmd/reproduce).
func TestStormDeterministic(t *testing.T) {
	base := strings.Join(Storm(Quick()).Digest(), "\n")
	again := strings.Join(Storm(Quick()).Digest(), "\n")
	if base != again {
		t.Fatalf("sequential reruns diverge:\n--- first ---\n%s\n--- second ---\n%s", base, again)
	}
	results := make([]string, 4)
	done := make(chan int)
	for i := range results {
		go func(i int) {
			results[i] = strings.Join(Storm(Quick()).Digest(), "\n")
			done <- i
		}(i)
	}
	for range results {
		<-done
	}
	for i, d := range results {
		if d != base {
			t.Fatalf("concurrent run %d diverges from sequential baseline:\n%s\nvs\n%s", i, d, base)
		}
	}
}

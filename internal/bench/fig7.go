package bench

import (
	"fmt"

	"xrdma/internal/baseline"
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// pingFixture is a two-node X-RDMA echo world.
type pingFixture struct {
	c   *cluster.Cluster
	cli *xrdma.Channel
}

func newPingFixture(sc Scale, label string, mutate func(*xrdma.Config)) *pingFixture {
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(), Nodes: 6, Seed: sc.Seed,
		Config: func(node int, cfg *xrdma.Config) {
			cfg.KeepaliveInterval = 0 // quiesce probes during measurement
			if mutate != nil {
				mutate(cfg)
			}
		},
	})
	sc.observe(c.Eng, label)
	c.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, m.Len) })
	})
	var cli *xrdma.Channel
	c.Connect(0, 5, 7000, func(ch *xrdma.Channel, err error) {
		if err != nil {
			panic(err)
		}
		cli = ch
	})
	c.Eng.Run()
	return &pingFixture{c: c, cli: cli}
}

// rtt measures the mean echo round trip for a payload size.
func (f *pingFixture) rtt(size, n int) sim.Duration {
	var total sim.Duration
	done := 0
	var issue func()
	issue = func() {
		start := f.c.Eng.Now()
		f.cli.SendMsg(nil, size, func(m *xrdma.Msg, err error) {
			if err != nil {
				panic(err)
			}
			total += f.c.Eng.Now().Sub(start)
			done++
			if done < n {
				issue()
			}
		})
	}
	issue()
	f.c.Eng.Run()
	if done != n {
		panic(fmt.Sprintf("bench: %d/%d pings", done, n))
	}
	return total / sim.Duration(n)
}

// xrdmaRTT builds a fresh fixture and measures one point.
func xrdmaRTT(sc Scale, label string, mutate func(*xrdma.Config), size, n int) sim.Duration {
	return newPingFixture(sc, label, mutate).rtt(size, n)
}

func fig7Sizes(lo, hi int) []int {
	var out []int
	for s := lo; s <= hi; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Fig7LeftResult holds the mixed-message comparison (µs per size).
type Fig7LeftResult struct {
	Sizes  []int
	Small  []float64 // small-message mode forced for all sizes
	Large  []float64 // rendezvous mode forced for all sizes
	Mixed  []float64 // production mixed strategy (4 KB threshold)
	Table_ Table
}

// Fig7Left reproduces the left panel: xrdma small-msg vs large-msg vs the
// mixed strategy across 2 B – 16 KB.
func Fig7Left(sc Scale) *Fig7LeftResult {
	n := 30
	if sc.Full {
		n = 200
	}
	sizes := fig7Sizes(2, 16<<10)
	r := &Fig7LeftResult{Sizes: sizes}
	smallMode := func(cfg *xrdma.Config) { cfg.SmallMsgSize = 32 << 10 }
	largeMode := func(cfg *xrdma.Config) { cfg.SmallMsgSize = 0 }
	fSmall := newPingFixture(sc, "fig7-left/small", smallMode)
	fLarge := newPingFixture(sc, "fig7-left/large", largeMode)
	fMixed := newPingFixture(sc, "fig7-left/mixed", nil)
	for _, s := range sizes {
		r.Small = append(r.Small, fSmall.rtt(s, n).Micros())
		r.Large = append(r.Large, fLarge.rtt(s, n).Micros())
		r.Mixed = append(r.Mixed, fMixed.rtt(s, n).Micros())
	}
	t := Table{
		ID: "E1/Fig7-left", Title: "X-RDMA message modes, ping-pong RTT (µs)",
		Header: []string{"size", "small-msg", "large-msg", "mixed"},
	}
	for i, s := range sizes {
		t.Addf(sizeLabel(s), r.Small[i], r.Large[i], r.Mixed[i])
	}
	t.Note("paper: large-msg ≈ +40%% under 128 B, converging above (≤10%% past 128 B); mixed tracks small below the 4 KB threshold")
	r.Table_ = t
	return r
}

// Fig7MiddleResult compares middlewares at small sizes.
type Fig7MiddleResult struct {
	Sizes  []int
	Stacks []string
	RTT    map[string][]float64 // µs, by stack name
	Table_ Table
}

// Fig7Middle reproduces the middle panel: xrdma-BD, xrdma-reqrsp, xio,
// ucx-am-rc, ibv-pingpong and libfabric from 8 B to 4 KB.
func Fig7Middle(sc Scale) *Fig7MiddleResult {
	n := 30
	if sc.Full {
		n = 200
	}
	sizes := fig7Sizes(8, 4096)
	r := &Fig7MiddleResult{
		Sizes:  sizes,
		Stacks: []string{"xrdma-BD", "xrdma-reqrsp", "ibv-pingpong", "ucx-am-rc", "libfabric", "xio"},
		RTT:    make(map[string][]float64),
	}
	fBD := newPingFixture(sc, "fig7-middle/xrdma-BD", nil)
	fRR := newPingFixture(sc, "fig7-middle/xrdma-reqrsp", func(cfg *xrdma.Config) { cfg.ReqRspMode = true })
	pairs := map[string]*baseline.Pair{}
	for _, p := range baseline.Profiles() {
		eng := sim.NewEngine()
		sc.observe(eng, "fig7-middle/"+p.Name)
		fab := fabric.New(eng, fabric.DefaultConfig(), sc.Seed)
		fabric.BuildClos(fab, fabric.SmallClos())
		a := rnic.New(eng, fab.Host(0), rnic.DefaultConfig())
		b := rnic.New(eng, fab.Host(5), rnic.DefaultConfig())
		pairs[p.Name] = baseline.NewPair(p, a, b)
	}
	for _, s := range sizes {
		r.RTT["xrdma-BD"] = append(r.RTT["xrdma-BD"], fBD.rtt(s, n).Micros())
		r.RTT["xrdma-reqrsp"] = append(r.RTT["xrdma-reqrsp"], fRR.rtt(s, n).Micros())
		for name, pr := range pairs {
			r.RTT[name] = append(r.RTT[name], pr.MeasureRTT(s, n).Micros())
		}
	}
	t := Table{ID: "E2/Fig7-middle", Title: "middleware ping-pong RTT (µs), 8 B – 4 KB",
		Header: append([]string{"size"}, r.Stacks...)}
	for i, s := range sizes {
		row := []any{sizeLabel(s)}
		for _, st := range r.Stacks {
			row = append(row, r.RTT[st][i])
		}
		t.Addf(row...)
	}
	t.Note("paper ordering: ibv < xrdma-BD (≤10%% over ibv) < ucx-am-rc (5.87µs) < libfabric (6.20µs) < xio; xrdma 5.60µs")
	r.Table_ = t
	return r
}

// Fig7RightResult extends to 4–32 KB.
type Fig7RightResult struct {
	Sizes  []int
	Stacks []string
	RTT    map[string][]float64
	Table_ Table
}

// Fig7Right reproduces the right panel (large sizes).
func Fig7Right(sc Scale) *Fig7RightResult {
	n := 20
	if sc.Full {
		n = 100
	}
	sizes := fig7Sizes(4096, 32<<10)
	r := &Fig7RightResult{
		Sizes:  sizes,
		Stacks: []string{"xrdma", "ibv-pingpong", "ucx-am-rc", "libfabric"},
		RTT:    make(map[string][]float64),
	}
	fx := newPingFixture(sc, "fig7-right/xrdma", nil)
	for _, s := range sizes {
		r.RTT["xrdma"] = append(r.RTT["xrdma"], fx.rtt(s, n).Micros())
	}
	for _, p := range []baseline.Profile{baseline.IbvPingpong, baseline.UcxAmRc, baseline.Libfabric} {
		eng := sim.NewEngine()
		sc.observe(eng, "fig7-right/"+p.Name)
		fab := fabric.New(eng, fabric.DefaultConfig(), sc.Seed)
		fabric.BuildClos(fab, fabric.SmallClos())
		a := rnic.New(eng, fab.Host(0), rnic.DefaultConfig())
		b := rnic.New(eng, fab.Host(5), rnic.DefaultConfig())
		pr := baseline.NewPair(p, a, b)
		for _, s := range sizes {
			r.RTT[p.Name] = append(r.RTT[p.Name], pr.MeasureRTT(s, n).Micros())
		}
	}
	t := Table{ID: "E3/Fig7-right", Title: "large-message ping-pong RTT (µs), 4–32 KB",
		Header: append([]string{"size"}, r.Stacks...)}
	for i, s := range sizes {
		row := []any{sizeLabel(s)}
		for _, st := range r.Stacks {
			row = append(row, r.RTT[st][i])
		}
		t.Addf(row...)
	}
	r.Table_ = t
	return r
}

// TracingOverheadResult quantifies req-rsp mode's cost (E4, §VII-A).
type TracingOverheadResult struct {
	Sizes       []int
	BareUS      []float64
	ReqRspUS    []float64
	OverheadPct []float64
	Table_      Table
}

// TracingOverhead measures bare-data vs req-rsp latency.
func TracingOverhead(sc Scale) *TracingOverheadResult {
	n := 60
	if sc.Full {
		n = 400
	}
	sizes := []int{64, 512, 4096}
	r := &TracingOverheadResult{Sizes: sizes}
	fB := newPingFixture(sc, "tracing/bare", nil)
	fT := newPingFixture(sc, "tracing/reqrsp", func(cfg *xrdma.Config) { cfg.ReqRspMode = true })
	t := Table{ID: "E4/§VII-A", Title: "tracing overhead: bare-data vs req-rsp (µs)",
		Header: []string{"size", "bare", "req-rsp", "overhead%"}}
	for _, s := range sizes {
		b := fB.rtt(s, n).Micros()
		tr := fT.rtt(s, n).Micros()
		pct := (tr - b) / b * 100
		r.BareUS = append(r.BareUS, b)
		r.ReqRspUS = append(r.ReqRspUS, tr)
		r.OverheadPct = append(r.OverheadPct, pct)
		t.Addf(sizeLabel(s), b, tr, pct)
	}
	t.Note("paper: +2–4%%, ≈200 ns per ping-pong")
	r.Table_ = t
	return r
}

func sizeLabel(s int) string {
	switch {
	case s >= 1<<20:
		return fmt.Sprintf("%dM", s>>20)
	case s >= 1024:
		return fmt.Sprintf("%dK", s>>10)
	default:
		return fmt.Sprintf("%dB", s)
	}
}

package bench

import (
	"encoding/binary"
	"fmt"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/xrdma"
)

// E24 "tenants": the multi-tenant isolation drill. One client host runs
// two tenants over the SAME shared mux QP (QPsPerPeer=1) to one server:
//
//	mouse     latency-sensitive: one 16-byte request per tick, weight 8
//	elephant  bulk: closed-loop 4 KiB inline floods plus a 32 KiB
//	          rendezvous stream per channel, weight 1, rate-limited,
//	          window-partitioned, and memory-budgeted
//
// Two arms on identical worlds isolate the interference question:
//
//	alone   only the mouse runs — the baseline tail
//	shared  mouse + elephant contend for the shared SQ, the send window,
//	        the token bucket and the staging pool
//
// The acceptance criteria live in TestTenants: the mouse's contended p99
// stays within 1.25× of its alone baseline (the DRR scheduler and the
// elephant's own limits absorb the flood), the elephant's memory budget
// rejects allocations (ErrTenantBudget, never a silent stall) and starts
// shed episodes whose flight dumps name the elephant, late elephant
// attaches are shed into the admission FIFO and establish only after the
// load drops, and the digest is bit-identical across reruns and -j.

const (
	tenMouseTick   = 200 * sim.Microsecond
	tenEleFrom     = 10 * sim.Millisecond
	tenEleStop     = 250 * sim.Millisecond
	tenLateAt      = 150 * sim.Millisecond
	tenMouseStop   = 320 * sim.Millisecond
	tenHorizon     = 420 * sim.Millisecond
	tenTailFrom    = 50 * sim.Millisecond  // contended window start
	tenRecovFrom   = 270 * sim.Millisecond // recovered window start
	tenEleChans    = 4
	tenEleLoops    = 8 // concurrent inline request loops per elephant channel
	tenEleInline   = 4096
	tenEleLarge    = 32 << 10
	tenLateChans   = 3
	tenMouseMarker = uint64(0x6d6f757365) // "mouse"
)

// tenantsKnobs is shared by both arms so the worlds differ only in
// offered load.
func tenantsKnobs(_ int, cfg *xrdma.Config) {
	cfg.QPsPerPeer = 1
	cfg.AttachAdmission = 4
	cfg.TenantShedCooldown = 20 * sim.Millisecond
	cfg.Tenants = []xrdma.TenantConfig{
		{Name: "mouse", Weight: 8},
		{Name: "elephant", Weight: 1,
			RateBps:    1 << 30,
			BurstBytes: 64 << 10,
			SendWindow: 16,
			MemBudget:  40 << 10},
	}
}

// TenantArm is the outcome of one arm.
type TenantArm struct {
	Name string

	MouseSent  int
	MouseResps int
	MouseDups  int
	MouseLost  int
	SendErrs   int

	// Contended window (elephant active) and recovered window (after the
	// elephant stops) tails.
	P50, P99           sim.Duration
	RecovP50, RecovP99 sim.Duration

	// Shared arm only.
	EleSent      int // elephant SendMsg calls issued
	EleBudgetErr int // ErrTenantBudget completions (admission verdicts)
	LateAttached int // late elephant channels established by drill end

	ShedDumps   int    // flight dumps with reason tenant.shed
	ShedCulprit uint32 // QPN field of the first shed dump = culprit tenant id

	TenantLog []string // client-side TenantDigest lines
}

// TenantsResult aggregates the drill.
type TenantsResult struct {
	Alone, Shared *TenantArm
	Table_        Table
}

// Digest renders both arms as deterministic lines: same seed ⇒
// bit-identical digest, sequentially and across concurrent goroutines.
func (r *TenantsResult) Digest() []string {
	var out []string
	for _, a := range []*TenantArm{r.Alone, r.Shared} {
		out = append(out, "arm "+a.Name)
		out = append(out, fmt.Sprintf("mouse sent=%d resps=%d dups=%d lost=%d errs=%d p50=%v p99=%v recov_p50=%v recov_p99=%v",
			a.MouseSent, a.MouseResps, a.MouseDups, a.MouseLost, a.SendErrs, a.P50, a.P99, a.RecovP50, a.RecovP99))
		out = append(out, fmt.Sprintf("elephant sent=%d budget_errs=%d late_attached=%d shed_dumps=%d culprit=%d",
			a.EleSent, a.EleBudgetErr, a.LateAttached, a.ShedDumps, a.ShedCulprit))
		out = append(out, a.TenantLog...)
	}
	return out
}

// runTenantArm drives one arm on a fresh SmallClos world: client node 0
// to server node 4 (cross-ToR), every tenant multiplexed onto the single
// shared QP the config allows.
func runTenantArm(sc Scale, name string, elephant bool) *TenantArm {
	a := &TenantArm{Name: name}
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		Nodes:    8,
		Config:   tenantsKnobs,
		Seed:     sc.Seed,
	})
	sc.observe(c.Eng, "tenants/"+name)
	eng := c.Eng

	recvCount := map[uint64]int{}
	c.ListenAll(7500, func(_ *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			if len(m.Data) >= 16 && binary.LittleEndian.Uint64(m.Data) == tenMouseMarker {
				recvCount[binary.LittleEndian.Uint64(m.Data[8:])]++
				m.Reply(m.Data[:16], 0)
				return
			}
			m.Reply(nil, 8)
		})
	})

	ctx := c.Nodes[0].Ctx
	srv := c.Nodes[4].ID
	mouse, err := ctx.ChannelTo(srv, 7500, xrdma.WithTenant("mouse"))
	if err != nil {
		panic(fmt.Sprintf("tenants: mouse ChannelTo: %v", err))
	}

	// Mouse load: one id-stamped request per tick; latencies are sliced
	// into the contended and recovered windows by issue time.
	start := eng.Now()
	var nextID uint64
	sentAt := map[uint64]sim.Time{}
	respSeen := map[uint64]int{}
	var tailLats, recovLats []sim.Duration
	var mouseTick func()
	mouseTick = func() {
		if eng.Now().Sub(start) >= tenMouseStop {
			return
		}
		id := nextID
		nextID++
		buf := make([]byte, 16)
		binary.LittleEndian.PutUint64(buf, tenMouseMarker)
		binary.LittleEndian.PutUint64(buf[8:], id)
		a.MouseSent++
		sentAt[id] = eng.Now()
		err := mouse.SendMsg(buf, 0, func(m *xrdma.Msg, err error) {
			if err != nil {
				return
			}
			rid := binary.LittleEndian.Uint64(m.Data[8:])
			respSeen[rid]++
			at := sentAt[rid]
			lat := eng.Now().Sub(at)
			switch issued := at.Sub(start); {
			case issued >= tenRecovFrom:
				recovLats = append(recovLats, lat)
			case issued >= tenTailFrom && issued < tenEleStop:
				tailLats = append(tailLats, lat)
			}
		})
		if err != nil {
			a.SendErrs++
		}
		eng.AfterBg(tenMouseTick, mouseTick)
	}
	eng.AfterBg(tenMouseTick, mouseTick)

	var late []*xrdma.Channel
	if elephant {
		eng.AfterBg(tenEleFrom, func() {
			for ei := 0; ei < tenEleChans; ei++ {
				ch, err := ctx.ChannelTo(srv, 7500, xrdma.WithTenant("elephant"))
				if err != nil {
					panic(fmt.Sprintf("tenants: elephant ChannelTo: %v", err))
				}
				// Inline flood: closed request loops that saturate the
				// shared SQ until the DRR and token bucket push back.
				for l := 0; l < tenEleLoops; l++ {
					var loop func()
					loop = func() {
						if eng.Now().Sub(start) >= tenEleStop {
							return
						}
						a.EleSent++
						ch.SendMsg(nil, tenEleInline, func(_ *xrdma.Msg, _ error) { loop() })
					}
					eng.AfterBg(sim.Duration(l+1)*10*sim.Microsecond, loop)
				}
				// Rendezvous stream: back-to-back 32 KiB staged sends; the
				// memory budget admits one staging at a time, so concurrent
				// streams reject with ErrTenantBudget and retry.
				var pump func()
				pump = func() {
					if eng.Now().Sub(start) >= tenEleStop {
						return
					}
					a.EleSent++
					ch.SendMsg(nil, tenEleLarge, func(_ *xrdma.Msg, err error) {
						if err != nil {
							a.EleBudgetErr++
							eng.AfterBg(2*sim.Millisecond, pump)
							return
						}
						pump()
					})
				}
				eng.AfterBg(sim.Duration(ei)*50*sim.Microsecond, pump)
			}
		})
		// Late attaches arrive mid-episode: the shed gate must queue them
		// (never dial) and release them only after the load drops.
		eng.AfterBg(tenLateAt, func() {
			for i := 0; i < tenLateChans; i++ {
				ch, err := ctx.ChannelTo(srv, 7500, xrdma.WithTenant("elephant"))
				if err != nil {
					panic(fmt.Sprintf("tenants: late ChannelTo: %v", err))
				}
				late = append(late, ch)
				ch.SendMsg(nil, 64, func(*xrdma.Msg, error) {})
			}
		})
	}

	eng.RunUntil(start.Add(tenHorizon))

	for id := uint64(0); id < nextID; id++ {
		switch n := recvCount[id]; {
		case n == 0:
			a.MouseLost++
		default:
			if n > 1 {
				a.MouseDups++
			}
		}
		a.MouseResps += respSeen[id]
	}
	a.P50 = grayPercentile(tailLats, 0.50)
	a.P99 = grayPercentile(tailLats, 0.99)
	a.RecovP50 = grayPercentile(recovLats, 0.50)
	a.RecovP99 = grayPercentile(recovLats, 0.99)
	for _, ch := range late {
		if ch.Attached() {
			a.LateAttached++
		}
	}
	for _, d := range ctx.Telemetry().Flight.Dumps() {
		if d.Reason == telemetry.CatTenantShed {
			a.ShedDumps++
			if a.ShedCulprit == 0 {
				a.ShedCulprit = d.QPN
			}
		}
	}
	a.TenantLog = ctx.TenantDigest()
	return a
}

// Tenants runs E24 and renders the table.
func Tenants(sc Scale) *TenantsResult {
	r := &TenantsResult{
		Alone:  runTenantArm(sc, "alone", false),
		Shared: runTenantArm(sc, "shared", true),
	}
	t := Table{
		ID:    "E24/Tenants",
		Title: "Multi-tenant isolation: elephant flood vs latency-sensitive mouse on one shared QP",
		Header: []string{"arm", "mouse-p50", "mouse-p99", "recov-p99", "sent", "resps", "dups", "lost",
			"ele-sent", "budget-errs", "shed-dumps", "late-attach"},
	}
	for _, a := range []*TenantArm{r.Alone, r.Shared} {
		t.Addf(a.Name, a.P50.String(), a.P99.String(), a.RecovP99.String(),
			a.MouseSent, a.MouseResps, a.MouseDups, a.MouseLost,
			a.EleSent, a.EleBudgetErr, a.ShedDumps, a.LateAttached)
	}
	t.Note("both tenants share ONE mux QP (QPsPerPeer=1); mouse weight 8, elephant weight 1 + rate/window/memory limits")
	t.Note("mouse contended p99 must stay within 1.25x of alone; budget breaches reject with ErrTenantBudget and shed new attaches")
	t.Note("shed flight dumps name the culprit tenant id in the QPN field; late attaches establish after the elephant stops")
	r.Table_ = t
	return r
}

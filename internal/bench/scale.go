package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// E22 "scale": the 4000-node fitting test. §III Issue 1's arithmetic —
// full-mesh services on thousands of hosts need millions of QPs — is the
// reason the mux plane exists; this experiment checks the arithmetic on
// a multi-pod ClusterClos world. Every host gets a full software stack
// (NIC, TCP, context). A set of client nodes opens many channels per
// peer over QP multiplexing (Config.QPsPerPeer shared QPs, SRQ receives,
// wire-header demux) plus a crowd of idle flyweight descriptors that
// never attach, then drives a request/response load across pods.
//
// Three properties are asserted, all from the system's own accounting:
//
//	multiplexing  — ≥10× more live channels than wire QPs
//	conservation  — every request delivered exactly once, every
//	                response returned; idle descriptors never dialed
//	footprint     — world + channels + traffic fit a fixed heap budget
//	                (runtime.ReadMemStats, race-adjusted)
//
// The digest is a pure function of the seed: bit-identical across
// sequential reruns and across concurrent goroutines (-j 1 vs -j 8).

// Scale sizing. Smoke spans 2 pods; -full builds the ~4000-host world
// the paper's production clusters run (16 pods of 16 ToRs × 16 hosts).
const (
	scaleSmokeHosts   = 320
	scaleFullHosts    = 4096
	scaleChansPerPeer = 24 // active channels multiplexed per peer pair
	scaleReqsPerChan  = 3
	scaleReqBytes     = 64

	// Heap budgets for HeapOK (adjusted by raceHeapMul under -race).
	// The smoke world (320 stacks, ~1500 live + 2400 idle channels)
	// measures ~35 MB; the full world (4096 stacks, ~12k live channels)
	// ~320 MB. Budgets leave ~2× headroom so Go-version allocator drift
	// doesn't flap the gate while a per-channel state regression (the
	// flyweight structure growing eager maps again) still trips it.
	scaleSmokeHeapBudget = 96 << 20
	scaleFullHeapBudget  = 768 << 20
)

// ScaleResult aggregates the drill.
type ScaleResult struct {
	Hosts, Pods int

	ActiveChans int // channels opened, both ends (system accounting)
	IdleChans   int // lazy descriptors created and never touched
	IdleAttach  int // idle descriptors that wrongly attached (must be 0)
	WireQPs     int // live QPs across every NIC at the end
	MuxRatio    float64

	Sent, Delivered, Dups, Lost, Resps int
	SendErrs                           int

	HeapBytes  int64 // measured (not in the digest or table: host-dependent)
	HeapBudget int64 // race-adjusted budget HeapOK compares against
	HeapOK     bool

	DigestHash uint64
	Table_     Table
}

// Digest renders the deterministic outcome: world shape, channel/QP
// accounting, conservation counters and the per-server delivery hash.
// Heap bytes are excluded — they are a property of the host Go runtime,
// not of the simulation.
func (r *ScaleResult) Digest() []string {
	return []string{
		fmt.Sprintf("world hosts=%d pods=%d", r.Hosts, r.Pods),
		fmt.Sprintf("chans active=%d idle=%d idle_attached=%d qps=%d ratio=%.1f",
			r.ActiveChans, r.IdleChans, r.IdleAttach, r.WireQPs, r.MuxRatio),
		fmt.Sprintf("traffic sent=%d delivered=%d dups=%d lost=%d resps=%d errs=%d",
			r.Sent, r.Delivered, r.Dups, r.Lost, r.Resps, r.SendErrs),
		fmt.Sprintf("digest=%016x", r.DigestHash),
	}
}

func scaleHeap() int64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// ScaleWorld runs E22.
func ScaleWorld(sc Scale) *ScaleResult {
	hosts, clients, peersPer, idlePer := scaleSmokeHosts, 8, 4, 300
	budget := int64(scaleSmokeHeapBudget)
	horizon := 120 * sim.Millisecond
	if sc.Full {
		hosts, clients, peersPer, idlePer = scaleFullHosts, 32, 8, 1000
		budget = scaleFullHeapBudget
		horizon = 400 * sim.Millisecond
	}
	topo := fabric.ClusterClos(hosts)
	r := &ScaleResult{Hosts: topo.Hosts(), Pods: topo.Pods, HeapBudget: budget * raceHeapMul}

	heap0 := scaleHeap()

	c := cluster.New(cluster.Options{
		Topology: topo,
		Seed:     sc.Seed,
		Config: func(_ int, cfg *xrdma.Config) {
			cfg.QPsPerPeer = 2
			cfg.AttachAdmission = 16
			cfg.ChannelGaugeLimit = 8
		},
	})
	sc.observe(c.Eng, "scale")
	eng := c.Eng

	// Per-server exactly-once ledger, indexed by request id.
	recvCount := make(map[uint64]int)
	c.ListenAll(9000, func(_ *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			id := binary.LittleEndian.Uint64(m.Data)
			recvCount[id]++
			m.Reply(m.Data[:8], 0)
		})
	})

	// Clients live on pod0/ToR0; each talks to peersPer distinct servers
	// in later pods (every request crosses at least the leaf tier, most
	// cross the spine). Servers may be shared between clients — each
	// (client, server) pair still owns its QPsPerPeer shared QPs, and QP
	// accounting reads the NICs directly.
	podSize := topo.TorsPerPod * topo.HostsPerTor
	type pair struct {
		ch     *xrdma.Channel
		client int
	}
	var active []pair
	var idle []*xrdma.Channel
	respSeen := make(map[uint64]int)
	for ci := 0; ci < clients; ci++ {
		ctx := c.Nodes[ci].Ctx
		for pi := 0; pi < peersPer; pi++ {
			// Server host: walk pods round-robin, one fresh ToR slot each.
			srvIdx := podSize + ((ci*peersPer+pi)*topo.HostsPerTor+7)%(r.Hosts-podSize)
			srv := c.Nodes[srvIdx].ID
			for k := 0; k < scaleChansPerPeer; k++ {
				ch, err := ctx.ChannelTo(srv, 9000)
				if err != nil {
					panic(fmt.Sprintf("scale: ChannelTo: %v", err))
				}
				active = append(active, pair{ch: ch, client: ci})
			}
		}
		// Flyweight crowd: descriptors to hosts this client never
		// messages. They must stay a few hundred bytes each — no QP, no
		// window, no buffers — which is what the heap budget polices.
		for j := 0; j < idlePer; j++ {
			tgt := c.Nodes[(podSize+ci*idlePer+j)%r.Hosts].ID
			ch, err := ctx.ChannelTo(tgt, 9001)
			if err != nil {
				panic(fmt.Sprintf("scale: idle ChannelTo: %v", err))
			}
			idle = append(idle, ch)
		}
	}

	// Staggered load: requests carry a unique id; replies echo it back.
	start := eng.Now()
	for i := range active {
		p := active[i]
		chIdx := uint64(i)
		kick := sim.Duration(1+i%64) * 50 * sim.Microsecond
		for s := 0; s < scaleReqsPerChan; s++ {
			id := chIdx<<16 | uint64(s)
			at := kick + sim.Duration(s)*150*sim.Microsecond
			eng.AfterBg(at, func() {
				buf := make([]byte, scaleReqBytes)
				binary.LittleEndian.PutUint64(buf, id)
				r.Sent++
				err := p.ch.SendMsg(buf, 0, func(m *xrdma.Msg, err error) {
					if err != nil {
						return
					}
					respSeen[binary.LittleEndian.Uint64(m.Data)]++
				})
				if err != nil {
					r.SendErrs++
				}
			})
		}
	}
	eng.RunUntil(start.Add(horizon))

	// Accounting, from the system's own counters.
	for _, n := range c.Nodes {
		r.ActiveChans += int(n.Ctx.Stats.ChannelsOpened)
		r.WireQPs += n.NIC.NumQPs()
	}
	r.IdleChans = len(idle)
	for _, ch := range idle {
		if ch.Attached() {
			r.IdleAttach++
		}
	}
	if r.WireQPs > 0 {
		r.MuxRatio = float64(r.ActiveChans) / float64(r.WireQPs)
	}
	for i := range active {
		for s := 0; s < scaleReqsPerChan; s++ {
			id := uint64(i)<<16 | uint64(s)
			switch n := recvCount[id]; {
			case n == 0:
				r.Lost++
			default:
				r.Delivered++
				if n > 1 {
					r.Dups++
				}
			}
			r.Resps += respSeen[id]
		}
	}

	// Delivery hash: per-request receipt counts in id order, so any
	// reordering of effects (not just totals) breaks the digest.
	h := fnv.New64a()
	var b [8]byte
	for i := range active {
		for s := 0; s < scaleReqsPerChan; s++ {
			id := uint64(i)<<16 | uint64(s)
			binary.LittleEndian.PutUint64(b[:], id<<8|uint64(recvCount[id]))
			h.Write(b[:])
		}
	}
	r.DigestHash = h.Sum64()

	r.HeapBytes = scaleHeap() - heap0
	r.HeapOK = r.HeapBytes <= r.HeapBudget

	heapCell := fmt.Sprintf("FAIL (> %d MiB)", r.HeapBudget>>20)
	if r.HeapOK {
		heapCell = fmt.Sprintf("PASS (<= %d MiB)", r.HeapBudget>>20)
	}
	t := Table{
		ID:    "E22/Scale",
		Title: "Fitting the 4000-node world: QP multiplexing, flyweight channels, heap budget",
		Header: []string{"hosts", "pods", "chans", "idle", "qps", "chan/qp",
			"sent", "delivered", "dups", "lost", "resps", "heap"},
	}
	t.Addf(r.Hosts, r.Pods, r.ActiveChans, r.IdleChans, r.WireQPs,
		fmt.Sprintf("%.1f", r.MuxRatio), r.Sent, r.Delivered, r.Dups, r.Lost, r.Resps, heapCell)
	t.Notes = append(t.Notes,
		"channels are flyweight descriptors multiplexed onto Config.QPsPerPeer shared QPs per peer node",
		"idle descriptors never dial: no QP, no window, a few hundred bytes each",
		"heap verdict text is deterministic; measured bytes are host-specific and excluded from the digest")
	r.Table_ = t
	return r
}

package bench

import (
	"encoding/binary"
	"fmt"
	"testing"

	"xrdma/internal/chaos"
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// TestCorruptionAccounting drives a request load across a link that
// corrupts frames and audits the damage end to end: every corrupt frame
// the fabric produced is dropped and counted at a NIC (the two ledgers
// must match exactly), and not one corrupt byte reaches the application
// — payload integrity survives because go-back-N retransmits what the
// NIC discarded.
func TestCorruptionAccounting(t *testing.T) {
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   grayNIC(), // fast RTO so go-back-N keeps pace with the damage
		Nodes:    8,
		Config: func(_ int, cfg *xrdma.Config) {
			cfg.PathDoctor = false // keep traffic pinned to the corrupting path
		},
		Seed: 42,
	})
	eng := c.Eng

	pattern := func(id uint64) []byte {
		buf := make([]byte, 64)
		binary.LittleEndian.PutUint64(buf, id)
		for i := 8; i < len(buf); i++ {
			buf[i] = byte(id*7 + uint64(i))
		}
		return buf
	}

	var payloadErrs, delivered int
	c.ListenAll(7500, func(_ *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			id := binary.LittleEndian.Uint64(m.Data)
			want := pattern(id)
			delivered++
			for i, b := range m.Data {
				if b != want[i] {
					payloadErrs++
					break
				}
			}
			m.Reply(m.Data[:8], 0)
		})
	})

	var ch *xrdma.Channel
	c.Connect(0, 4, 7500, func(cch *xrdma.Channel, err error) {
		if err != nil {
			panic(err)
		}
		ch = cch
	})
	eng.Run()

	// Corrupt (never lose) frames on the exact spine path the channel
	// rides, in both directions of the link.
	inj := chaos.New(c)
	idx := fabric.ECMPIndex(ch.FlowHash(), 2)
	inj.Brownout("pod0-tor0", fmt.Sprintf("pod0-leaf%d", idx), 0, 0.2, 0)

	const total = 200
	start := eng.Now()
	sent := 0
	resps := map[uint64]bool{}
	var tick func()
	tick = func() {
		if sent >= total {
			return
		}
		id := uint64(sent)
		sent++
		ch.SendMsg(pattern(id), 0, func(m *xrdma.Msg, err error) {
			if err == nil {
				resps[binary.LittleEndian.Uint64(m.Data)] = true
			}
		})
		eng.AfterBg(500*sim.Microsecond, tick)
	}
	eng.AfterBg(500*sim.Microsecond, tick)
	eng.RunUntil(start.Add(1000 * sim.Millisecond))

	if delivered != total {
		t.Errorf("server saw %d of %d requests", delivered, total)
	}
	if len(resps) != total {
		t.Errorf("client got %d of %d responses", len(resps), total)
	}
	if payloadErrs != 0 {
		t.Errorf("%d corrupted payloads reached the application", payloadErrs)
	}

	// The two corruption ledgers must agree: frames damaged by the
	// fabric vs frames dropped at receiving NICs.
	fabCorrupt := c.Fab.Stats.Corrupted
	var nicDrops int64
	for _, n := range c.Nodes {
		nicDrops += n.NIC.Counters.CorruptDrops
	}
	if fabCorrupt == 0 {
		t.Fatalf("fault injected but fabric corrupted no frames — drill is vacuous")
	}
	if nicDrops != fabCorrupt {
		t.Errorf("accounting mismatch: fabric corrupted %d frames, NICs dropped %d", fabCorrupt, nicDrops)
	}
}

// TestCorruptionBlameIsolation: corrupt drops are charged to the
// destination QP, so damage on one channel's spine path must never
// sicken another channel that shares the node. The cross-ToR pair rides
// the browned-out leaf tier and must re-path; the same-ToR channel on
// the same NIC (whose node-global CorruptDrops counter is climbing the
// whole time) never touches a leaf and its doctor must stay Clean — no
// sympathy rotations, no escalation.
func TestCorruptionBlameIsolation(t *testing.T) {
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   grayNIC(),
		Nodes:    8,
		Config:   grayKnobs(true),
		Seed:     42,
	})
	eng := c.Eng

	var srvCross *xrdma.Channel
	c.ListenAll(7600, func(n *cluster.Node, ch *xrdma.Channel) {
		if n.ID == 4 {
			srvCross = ch
		}
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(m.Retain(), m.Len) })
	})
	var cross, local *xrdma.Channel
	c.Connect(0, 4, 7600, func(ch *xrdma.Channel, err error) {
		if err != nil {
			panic(err)
		}
		cross = ch
	})
	c.Connect(0, 1, 7600, func(ch *xrdma.Channel, err error) {
		if err != nil {
			panic(err)
		}
		local = ch
	})
	eng.Run()
	if cross == nil || local == nil || srvCross == nil {
		t.Fatal("channel establishment failed")
	}

	// Brown out both legs the cross-ToR pair rides — the client's TX leaf
	// at tor0 and the server's TX leaf at tor1 — so corrupt frames are
	// guaranteed to be dropped (and counted) at node 0's NIC, the node
	// the healthy channel shares.
	inj := chaos.New(c)
	idxC := fabric.ECMPIndex(cross.FlowHash(), 2)
	idxS := fabric.ECMPIndex(srvCross.FlowHash(), 2)
	inj.Brownout("pod0-tor0", fmt.Sprintf("pod0-leaf%d", idxC), 0, 0.05, 20*sim.Microsecond)
	if idxS != idxC {
		inj.Brownout("pod0-tor1", fmt.Sprintf("pod0-leaf%d", idxS), 0, 0.05, 20*sim.Microsecond)
	}

	start := eng.Now()
	var tick func()
	tick = func() {
		if eng.Now().Sub(start) >= 300*sim.Millisecond {
			return
		}
		for _, ch := range []*xrdma.Channel{cross, local} {
			buf := make([]byte, 16)
			ch.SendMsg(buf, 0, func(m *xrdma.Msg, err error) {})
		}
		eng.AfterBg(500*sim.Microsecond, tick)
	}
	eng.AfterBg(500*sim.Microsecond, tick)
	eng.RunUntil(start.Add(400 * sim.Millisecond))

	if cross.Rehashes()+srvCross.Rehashes() == 0 {
		t.Error("cross-ToR pair never re-pathed off the damaged leaves — drill is vacuous")
	}
	if got := c.Nodes[0].NIC.Counters.CorruptDrops; got == 0 {
		t.Error("node 0 NIC saw no corrupt drops — drill not exercising shared-node blame")
	}
	if v := local.PathVerdict(); v != xrdma.PathClean {
		t.Errorf("same-ToR channel verdict %v — blamed for another path's damage", v)
	}
	if n := local.Rehashes(); n != 0 {
		t.Errorf("same-ToR channel rotated its flow label %d times on an undamaged path", n)
	}
	if lg := local.PathLog(); len(lg) != 0 {
		t.Errorf("same-ToR channel saw verdict transitions: %v", lg)
	}
}

package bench

import (
	"encoding/binary"
	"fmt"
	"testing"

	"xrdma/internal/chaos"
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// TestCorruptionAccounting drives a request load across a link that
// corrupts frames and audits the damage end to end: every corrupt frame
// the fabric produced is dropped and counted at a NIC (the two ledgers
// must match exactly), and not one corrupt byte reaches the application
// — payload integrity survives because go-back-N retransmits what the
// NIC discarded.
func TestCorruptionAccounting(t *testing.T) {
	c := cluster.New(cluster.Options{
		Topology: fabric.SmallClos(),
		NICCfg:   grayNIC(), // fast RTO so go-back-N keeps pace with the damage
		Nodes:    8,
		Config: func(_ int, cfg *xrdma.Config) {
			cfg.PathDoctor = false // keep traffic pinned to the corrupting path
		},
		Seed: 42,
	})
	eng := c.Eng

	pattern := func(id uint64) []byte {
		buf := make([]byte, 64)
		binary.LittleEndian.PutUint64(buf, id)
		for i := 8; i < len(buf); i++ {
			buf[i] = byte(id*7 + uint64(i))
		}
		return buf
	}

	var payloadErrs, delivered int
	c.ListenAll(7500, func(_ *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			id := binary.LittleEndian.Uint64(m.Data)
			want := pattern(id)
			delivered++
			for i, b := range m.Data {
				if b != want[i] {
					payloadErrs++
					break
				}
			}
			m.Reply(m.Data[:8], 0)
		})
	})

	var ch *xrdma.Channel
	c.Connect(0, 4, 7500, func(cch *xrdma.Channel, err error) {
		if err != nil {
			panic(err)
		}
		ch = cch
	})
	eng.Run()

	// Corrupt (never lose) frames on the exact spine path the channel
	// rides, in both directions of the link.
	inj := chaos.New(c)
	idx := fabric.ECMPIndex(ch.FlowHash(), 2)
	inj.Brownout("pod0-tor0", fmt.Sprintf("pod0-leaf%d", idx), 0, 0.2, 0)

	const total = 200
	start := eng.Now()
	sent := 0
	resps := map[uint64]bool{}
	var tick func()
	tick = func() {
		if sent >= total {
			return
		}
		id := uint64(sent)
		sent++
		ch.SendMsg(pattern(id), 0, func(m *xrdma.Msg, err error) {
			if err == nil {
				resps[binary.LittleEndian.Uint64(m.Data)] = true
			}
		})
		eng.AfterBg(500*sim.Microsecond, tick)
	}
	eng.AfterBg(500*sim.Microsecond, tick)
	eng.RunUntil(start.Add(1000 * sim.Millisecond))

	if delivered != total {
		t.Errorf("server saw %d of %d requests", delivered, total)
	}
	if len(resps) != total {
		t.Errorf("client got %d of %d responses", len(resps), total)
	}
	if payloadErrs != 0 {
		t.Errorf("%d corrupted payloads reached the application", payloadErrs)
	}

	// The two corruption ledgers must agree: frames damaged by the
	// fabric vs frames dropped at receiving NICs.
	fabCorrupt := c.Fab.Stats.Corrupted
	var nicDrops int64
	for _, n := range c.Nodes {
		nicDrops += n.NIC.Counters.CorruptDrops
	}
	if fabCorrupt == 0 {
		t.Fatalf("fault injected but fabric corrupted no frames — drill is vacuous")
	}
	if nicDrops != fabCorrupt {
		t.Errorf("accounting mismatch: fabric corrupted %d frames, NICs dropped %d", fabCorrupt, nicDrops)
	}
}

package bench

import (
	"fmt"

	"xrdma/internal/chaos"
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
	"xrdma/internal/xrmon"
)

// FleetPhase is one chaos-injected fault class of the fleet-diagnosis
// drill and what the collector made of it.
type FleetPhase struct {
	Name    string
	Class   xrmon.IncidentClass // expected diagnosis
	Culprit string              // expected culprit label
	FaultAt sim.Time
	Hit     bool         // an incident with the expected class+culprit opened
	Detect  sim.Duration // fault → incident open
	Conf    int
	Epochs  int
	Closed  bool // closed again by the horizon (transient classes heal)
}

// FleetResult is the outcome of E26: a multi-rack world with five fault
// classes injected in sequence, diagnosed online by the xrmon collector.
type FleetResult struct {
	Phases []*FleetPhase
	// CleanOpens counts incidents opened before the first fault — the
	// false-positive budget for the warm-up, which must be zero.
	CleanOpens int
	// ExtraOpens counts opened incidents no phase claims — wrong-class or
	// wrong-culprit diagnoses.
	ExtraOpens int
	Incidents  []*xrmon.Incident
	Lines      []string // deterministic digest: fault log + incident log
	Table_     Table
}

// Digest renders the run as deterministic lines: same seed ⇒ bit-identical
// output, sequential or across concurrent goroutines.
func (r *FleetResult) Digest() []string { return r.Lines }

// fleetKnobs compresses the observability clocks the way chaosKnobs
// compresses the recovery clocks: 2 ms stats epochs so the 8-epoch
// detection window spans 16 ms, keepalives fast enough to corroborate a
// node death within one window. The path doctor is disabled on purpose —
// it would re-path around the injected brownout and hide the very
// symptoms the fleet plane is supposed to diagnose.
func fleetKnobs(node int, cfg *xrdma.Config) {
	cfg.StatsInterval = 2 * sim.Millisecond
	cfg.PathDoctor = false
	cfg.KeepaliveInterval = 2 * sim.Millisecond
	cfg.KeepaliveTimeout = 8 * sim.Millisecond
	// Tenant channels require the mux-QP layout, and mux needs SRQ mode on
	// both ends of a dial, so the whole fleet runs the production layout.
	cfg.QPsPerPeer = 1
	if node == fleetTenantNode {
		// The elephant tenant lives on node 4 with a deliberately tiny
		// registered-memory budget; the overload phase runs straight
		// into it.
		cfg.Tenants = []xrdma.TenantConfig{{Name: "elephant", MemBudget: 64 << 10}}
	}
	if node == fleetRNRNode {
		// Node 10 shares one undersized receive queue across its
		// channels — the Fig. 9 slow-receiver configuration.
		cfg.UseSRQ = true
		cfg.SRQSize = 4
	}
}

const (
	fleetPort       = 7700
	fleetTick       = 500 * sim.Microsecond
	fleetMsgBytes   = 1024
	fleetTenantNode = 4
	fleetRNRNode    = 10
	fleetRNRSender  = 2
	fleetCrashNode  = 9

	fleetIncastFrom   = 250 * sim.Millisecond
	fleetIncastTo     = 350 * sim.Millisecond
	fleetBrownFrom    = 450 * sim.Millisecond
	fleetBrownTo      = 550 * sim.Millisecond
	fleetRNRFrom      = 650 * sim.Millisecond
	fleetRNRTo        = 750 * sim.Millisecond
	fleetTenantFrom   = 850 * sim.Millisecond
	fleetTenantTo     = 950 * sim.Millisecond
	fleetCrashAt      = 1050 * sim.Millisecond
	fleetHorizon      = 1150 * sim.Millisecond
)

// Fleet is E26: the fleet-diagnosis drill. One 16-host two-pod clos world
// runs steady background traffic while five fault classes are injected in
// sequence with clean gaps between them; the xrmon collector watches the
// per-node agents online and must (a) stay silent through the clean
// warm-up, (b) open an incident of exactly the expected class with exactly
// the expected culprit for every fault, and (c) close the transient
// incidents once their faults heal.
func Fleet(sc Scale) *FleetResult {
	r := &FleetResult{}
	topo := fabric.Topology{Pods: 2, LeavesPerPod: 2, TorsPerPod: 2, HostsPerTor: 4}
	c := cluster.New(cluster.Options{
		Topology: topo,
		NICCfg:   chaosNIC(),
		Config:   fleetKnobs,
		Seed:     sc.Seed,
	})
	sc.observe(c.Eng, "fleet/world")
	eng := c.Eng

	col := xrmon.For(eng)
	for i := 0; i < topo.Hosts(); i++ {
		pod := i / (topo.TorsPerPod * topo.HostsPerTor)
		tor := (i / topo.HostsPerTor) % topo.TorsPerPod
		col.SetLocation(int32(i), fmt.Sprintf("pod%d-tor%d", pod, tor), fmt.Sprintf("pod%d", pod))
	}
	// Stronger debounce than the defaults: 3 consecutive matching epochs
	// to open (brownout symptom mixes shift epoch to epoch) and 8 quiet
	// epochs to close (bursty faults pause longer than one window).
	col.Watch(xrmon.WatchConfig{OpenAfter: 3, CloseAfter: 8})

	// Phase-gated fault behaviour the load loop consults.
	var incastOn, rnrOn, tenantOn, rnrSlow bool

	c.ListenAll(fleetPort, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			if int(n.ID) == fleetRNRNode && rnrSlow {
				// Application work between polls: this is what lets the
				// burst outrun SRQ reposting and stream RNR NAKs.
				n.Ctx.InjectWork(4 * sim.Microsecond)
			}
			m.Reply(nil, 0)
		})
	})

	// Base mesh: one cross-pod channel per node pair i→i+8 and one
	// intra-rack channel even→odd, so every host terminates exactly two
	// channels and the node-9 crash leaves its peers with live traffic.
	var pairs [][2]int
	for i := 0; i < 8; i++ {
		pairs = append(pairs, [2]int{i, i + 8})
	}
	for i := 0; i < topo.Hosts(); i += 2 {
		pairs = append(pairs, [2]int{i, i + 1})
	}
	// Incast channels: nodes 5 and 6 both target node 7 (same ToR).
	incastBase := len(pairs)
	pairs = append(pairs, [2]int{5, 7}, [2]int{6, 7})

	var chans []*xrdma.Channel
	c.ConnectPairs(pairs, fleetPort, func(chs []*xrdma.Channel) { chans = chs })
	eng.Run()
	if chans == nil {
		panic("fleet: channel mesh never established")
	}
	base, inc5, inc6 := chans[:incastBase], chans[incastBase], chans[incastBase+1]

	// The elephant tenant's channel from node 4 into pod 1.
	tenantCh, err := c.Nodes[fleetTenantNode].Ctx.ChannelTo(c.Nodes[12].ID, fleetPort, xrdma.WithTenant("elephant"))
	if err != nil {
		panic(fmt.Sprintf("fleet: tenant ChannelTo: %v", err))
	}
	eng.Run()

	start := eng.Now()
	var faultLog []string
	mark := func(what string) {
		faultLog = append(faultLog, fmt.Sprintf("t=%v %s", eng.Now().Sub(start), what))
	}

	drop := func(*xrdma.Msg, error) {}
	send := func(ch *xrdma.Channel, n int) {
		ch.SendMsg(make([]byte, n), 0, drop) // error = channel dead; diagnosis is the point
	}
	var tick func()
	tick = func() {
		if eng.Now().Sub(start) >= fleetHorizon {
			return
		}
		for _, ch := range base {
			send(ch, fleetMsgBytes)
		}
		if incastOn {
			// Aggressor node 6 pushes ~3× node 5 into the shared victim;
			// the combined offered load oversubscribes host 7's 25 Gbps
			// downlink and lights up ECN/PFC at the ToR.
			send(inc5, 256<<10)
			for k := 0; k < 3; k++ {
				send(inc6, 256<<10)
			}
		}
		if rnrOn {
			for k := 0; k < 32; k++ {
				send(base[fleetRNRSender], fleetMsgBytes) // base[2] is 2→10
			}
		}
		if tenantOn {
			// 128 KiB rendezvous sends against a 64 KiB budget: every
			// allocation rejects and the isolation plane sheds.
			send(tenantCh, 128<<10)
			send(tenantCh, 128<<10)
		}
		eng.AfterBg(fleetTick, tick)
	}
	eng.AfterBg(fleetTick, tick)

	inj := chaos.New(c)
	at := func(d sim.Duration, f func()) { eng.AfterBg(d, f) }
	at(fleetIncastFrom, func() { incastOn = true; mark("fault incast-burst on (5,6 -> 7)") })
	at(fleetIncastTo, func() { incastOn = false; mark("heal incast-burst off") })
	at(fleetBrownFrom, func() { inj.Brownout("pod0-leaf0", "spine0", 0.12, 0.05, 20*sim.Microsecond) })
	at(fleetBrownTo, func() { inj.ClearBrownout("pod0-leaf0", "spine0") })
	at(fleetRNRFrom, func() { rnrOn, rnrSlow = true, true; mark("fault rnr-storm on (2 -> 10)") })
	at(fleetRNRTo, func() { rnrOn, rnrSlow = false, false; mark("heal rnr-storm off") })
	at(fleetTenantFrom, func() { tenantOn = true; mark("fault elephant-tenant on (4 -> 12)") })
	at(fleetTenantTo, func() { tenantOn = false; mark("heal elephant-tenant off") })
	at(fleetCrashAt, func() { inj.NodeCrash(fleetCrashNode) })

	eng.RunUntil(start.Add(fleetHorizon))

	r.Phases = []*FleetPhase{
		{Name: "incast-burst", Class: xrmon.IncIncast, Culprit: "node6", FaultAt: start.Add(fleetIncastFrom)},
		{Name: "spine-brownout", Class: xrmon.IncFabricBrownout, Culprit: "fabric:spine", FaultAt: start.Add(fleetBrownFrom)},
		{Name: "rnr-storm", Class: xrmon.IncSlowReceiver, Culprit: "node10", FaultAt: start.Add(fleetRNRFrom)},
		{Name: "elephant-tenant", Class: xrmon.IncTenantOverload, Culprit: "tenant:elephant@node4", FaultAt: start.Add(fleetTenantFrom)},
		{Name: "node-crash", Class: xrmon.IncNodeDown, Culprit: "node9", FaultAt: start.Add(fleetCrashAt)},
	}
	r.Incidents = col.Incidents()
	firstFault := r.Phases[0].FaultAt
	claimed := make(map[*xrmon.Incident]bool)
	for _, ph := range r.Phases {
		// A phase claims every incident carrying its exact diagnosis — a
		// bursty fault may close and legitimately reopen — and reports
		// detection latency from the first.
		for _, inc := range r.Incidents {
			if claimed[inc] || inc.Class != ph.Class || inc.Culprit != ph.Culprit || inc.OpenedAt < ph.FaultAt {
				continue
			}
			claimed[inc] = true
			if !ph.Hit {
				ph.Hit = true
				ph.Detect = inc.OpenedAt.Sub(ph.FaultAt)
			}
			if inc.Confidence > ph.Conf {
				ph.Conf = inc.Confidence
			}
			ph.Epochs += inc.Epochs
			ph.Closed = inc.Closed
		}
	}
	for _, inc := range r.Incidents {
		if inc.OpenedAt < firstFault {
			r.CleanOpens++
		} else if !claimed[inc] {
			r.ExtraOpens++
		}
	}

	r.Lines = append(r.Lines, faultLog...)
	r.Lines = append(r.Lines, inj.Digest()...)
	r.Lines = append(r.Lines, col.Digest()...)

	t := Table{
		ID:     "E26/Fleet",
		Title:  "Fleet diagnosis: injected fault class vs diagnosed incident (16 hosts, 2 pods)",
		Header: []string{"phase", "want", "diagnosed", "culprit", "detect", "conf", "epochs", "closed"},
	}
	for _, ph := range r.Phases {
		diag := "MISSED"
		if ph.Hit {
			diag = ph.Class.String()
		}
		closed := "open"
		if ph.Closed {
			closed = "yes"
		}
		t.Addf(ph.Name, ph.Class.String(), diag, ph.Culprit, ph.Detect.String(), ph.Conf, ph.Epochs, closed)
	}
	t.Addf("(clean warm-up)", "-", fmt.Sprintf("%d incidents", r.CleanOpens), "-", "-", "-", "-", "-")
	t.Note("every phase must be diagnosed with its exact class and culprit; warm-up and extra opens must be 0")
	t.Note("transient classes close after the fault heals; node-crash stays open through the horizon")
	r.Table_ = t
	return r
}

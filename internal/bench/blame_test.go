package bench

import (
	"strings"
	"testing"
)

// TestBlame is the blame-attribution acceptance gate (E21): each arm
// injects one known latency cause and the top-blamed stage of the
// reconstructed critical paths must name it.
func TestBlame(t *testing.T) {
	r := BlameAttribution(Quick())
	for _, a := range []*BlameArm{r.Incast, r.Brownout, r.SlowRecv} {
		if a.Msgs < 50 {
			t.Errorf("%s: only %d blame-traced messages reconstructed — sampling broken", a.Name, a.Msgs)
		}
		if a.Resps < 50 {
			t.Errorf("%s: only %d responses delivered — load generator broken", a.Name, a.Resps)
		}
		if !a.Match {
			t.Errorf("%s: top-blamed stage %q, want %q (injected: %s)\n%s",
				a.Name, a.Top, a.Want, a.Cause, a.Report)
		}
	}
}

// TestBlameDeterministic asserts the whole experiment — every arm's
// blame aggregate, stage totals and quantiles — is a pure function of
// the seed: bit-identical across sequential reruns and across concurrent
// goroutines (the -j 1 vs -j 8 guarantee of cmd/reproduce).
func TestBlameDeterministic(t *testing.T) {
	base := strings.Join(BlameAttribution(Quick()).Digest(), "\n")
	again := strings.Join(BlameAttribution(Quick()).Digest(), "\n")
	if base != again {
		t.Fatalf("sequential reruns diverge:\n--- first ---\n%s\n--- second ---\n%s", base, again)
	}
	results := make([]string, 4)
	done := make(chan int)
	for i := range results {
		go func(i int) {
			results[i] = strings.Join(BlameAttribution(Quick()).Digest(), "\n")
			done <- i
		}(i)
	}
	for range results {
		<-done
	}
	for i, d := range results {
		if d != base {
			t.Fatalf("concurrent run %d diverges from sequential baseline:\n%s\nvs\n%s", i, d, base)
		}
	}
}

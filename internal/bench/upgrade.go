package bench

import (
	"encoding/binary"
	"fmt"

	"xrdma/internal/chaos"
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// E25 "upgrade": the hot-upgrade drill. A 4-node cluster carries a live
// full-mesh of id-stamped request streams plus a background elephant
// (32 KiB rendezvous stream, its own tenant binding) while every node is
// rolled in sequence from protocol v1 to v2:
//
//	drain      in-flight work completes under the drain deadline; new
//	           attaches are refused with ErrDraining
//	restart    the middleware instance is replaced in place at
//	           ProtoVerMax=2; NIC, TCP stack and CM endpoint survive
//	rehydrate  the handoff blob restores every channel Degraded with its
//	           window floors, replay tail and negotiation verdict, and
//	           the recovery plane re-establishes the transport
//
// The acceptance criteria live in TestUpgrade: not one message lost or
// duplicated across the whole wave (the seq-ack window dedups the replay
// exactly like a transient-fault recovery), rehydrated channels keep
// speaking the version they negotiated (a v2 restart does NOT bump v1
// peers mid-flight), a fresh mixed-version channel settles on v1 while a
// fresh post-wave channel settles on v2, and the digest is bit-identical
// sequentially and across concurrent goroutines.

const (
	upNodes    = 4
	upPort     = 7500
	upTick     = 500 * sim.Microsecond
	upEleSize  = 32 << 10
	upFirstAt  = 50 * sim.Millisecond
	upWaveGap  = 80 * sim.Millisecond // waves at 50/130/210/290 ms
	upMidAt    = 90 * sim.Millisecond // node 0 is v2, node 3 still v1
	upSendStop = 380 * sim.Millisecond
	upFinalAt  = 400 * sim.Millisecond
	upHorizon  = 520 * sim.Millisecond
)

// upStream is one client→server request stream and its conservation
// ledger. The id space is tagged per stream so the shared server-side
// delivery count can attribute every request.
type upStream struct {
	From, To int
	Tag      uint64
	Elephant bool

	ch     *xrdma.Channel
	nextID uint64
	sentOK map[uint64]bool

	Sent     int // SendMsg calls accepted (err == nil)
	Refused  int // SendMsg rejections (ErrDraining / closed instance)
	Resps    int // responses consumed
	RespDups int // responses seen twice for one id (must stay 0)
	Dups     int // server-side duplicate deliveries (must stay 0)
	Lost     int // accepted sends the server never saw (must stay 0)
}

func (s *upStream) key(id uint64) uint64 { return s.Tag<<40 | id }

// UpgradeResult aggregates the drill.
type UpgradeResult struct {
	Streams []*upStream

	// Version probes: a fresh channel dialed mid-wave (upgraded node 0 →
	// legacy node 3) and two dialed after the full wave (both ends v2).
	MidVer     uint8
	MidCaps    uint32
	FinalVer   uint8
	FinalCaps  uint32
	FinalVerHi uint8 // second post-wave probe (1→2)

	// Whole-cluster counters summed over every instance that lived.
	Rehydrated    int64
	Degraded      int64
	DrainRefusals int64
	VerMismatches int64

	Unhealthy int // stream channels not Healthy at the horizon

	ChaosLog []string
	Table_   Table
}

// Digest renders the drill as deterministic lines: same seed ⇒
// bit-identical digest, sequentially and across concurrent goroutines.
func (r *UpgradeResult) Digest() []string {
	out := append([]string{}, r.ChaosLog...)
	for _, s := range r.Streams {
		kind := "stream"
		if s.Elephant {
			kind = "elephant"
		}
		out = append(out, fmt.Sprintf("%s %d->%d sent=%d refused=%d resps=%d resp_dups=%d dups=%d lost=%d",
			kind, s.From, s.To, s.Sent, s.Refused, s.Resps, s.RespDups, s.Dups, s.Lost))
	}
	out = append(out, fmt.Sprintf("mid ver=%d caps=%#x final ver=%d/%d caps=%#x",
		r.MidVer, r.MidCaps, r.FinalVer, r.FinalVerHi, r.FinalCaps))
	out = append(out, fmt.Sprintf("rehydrated=%d degraded=%d drain_refusals=%d ver_mismatches=%d unhealthy=%d",
		r.Rehydrated, r.Degraded, r.DrainRefusals, r.VerMismatches, r.Unhealthy))
	return out
}

// upgradeKnobs compresses the recovery clocks (chaosKnobs ratios) so each
// restart's degrade→recover cycle fits inside one wave gap. Every node
// starts legacy: ProtoVerMax unset ⇒ v1, no hello on the wire.
func upgradeKnobs(_ int, cfg *xrdma.Config) {
	cfg.KeepaliveInterval = 2 * sim.Millisecond
	cfg.KeepaliveTimeout = 8 * sim.Millisecond
	cfg.RecoverRetries = 8
	cfg.RecoverBackoff = 1 * sim.Millisecond
	cfg.RecoverBackoffMax = 8 * sim.Millisecond
	// A restarted instance dials with a cold memory cache — the recv-pool
	// registrations alone eat several ms — so the dial budget is wider
	// than the chaos drill's.
	cfg.RecoverDialTimeout = 20 * sim.Millisecond
	cfg.FailbackInterval = 25 * sim.Millisecond
	cfg.DrainDeadline = 10 * sim.Millisecond
	cfg.Tenants = []xrdma.TenantConfig{{Name: "elephant", Weight: 1}}
}

// Upgrade runs E25: roll every node v1→v2 under live load.
func Upgrade(sc Scale) *UpgradeResult {
	r := &UpgradeResult{}
	c := cluster.New(cluster.Options{
		Topology:    fabric.SmallClos(),
		NICCfg:      chaosNIC(),
		Nodes:       upNodes,
		Config:      upgradeKnobs,
		RecoverPort: 7801,
		Seed:        sc.Seed,
	})
	sc.observe(c.Eng, "upgrade")
	eng := c.Eng

	// Streams: the full mesh (client = lower id) plus the elephant, which
	// rides its own tenant-bound channel 0→3 so rehydration can tell it
	// apart from the plain stream to the same peer.
	pairs := cluster.FullMeshPairs(upNodes)
	for k, p := range pairs {
		r.Streams = append(r.Streams, &upStream{
			From: p[0], To: p[1], Tag: uint64(k + 1), sentOK: map[uint64]bool{},
		})
	}
	ele := &upStream{From: 0, To: upNodes - 1, Tag: uint64(len(pairs) + 1),
		Elephant: true, sentOK: map[uint64]bool{}}
	r.Streams = append(r.Streams, ele)

	// Server-side delivery ledger, shared by every node's echo handler:
	// key = stream tag | id, value = exact delivery count.
	recvCount := map[uint64]int{}
	respSeen := map[uint64]int{}
	echo := func(m *xrdma.Msg) {
		if len(m.Data) < 16 {
			m.Reply(nil, 8)
			return
		}
		recvCount[binary.LittleEndian.Uint64(m.Data)<<40|binary.LittleEndian.Uint64(m.Data[8:])]++
		m.Reply(m.Data[:16], 0)
	}

	// install wires one channel on node i: the echo handler always, and —
	// when this is a rehydrated client-side channel — the stream pointer
	// swap, so the live load resumes on the restarted instance's channel.
	install := func(node int, ch *xrdma.Channel) {
		ch.OnMessage(echo)
		for _, s := range r.Streams {
			if s.From != node || c.Nodes[s.To].ID != ch.Peer {
				continue
			}
			if s.Elephant != (ch.TenantOf() != nil) {
				continue
			}
			s.ch = ch
		}
	}
	c.ListenAll(upPort, func(n *cluster.Node, ch *xrdma.Channel) {
		install(int(n.ID), ch)
	})

	// Classic (non-mux) channels: only those carry the per-channel QP
	// state the handoff blob serializes. The elephant binds its tenant so
	// rehydration can tell it apart from the plain 0→3 stream.
	for _, s := range r.Streams {
		s := s
		c.Connect(s.From, s.To, upPort, func(ch *xrdma.Channel, err error) {
			if err != nil {
				panic(fmt.Sprintf("upgrade: connect %d->%d: %v", s.From, s.To, err))
			}
			if s.Elephant {
				if err := ch.BindTenant("elephant"); err != nil {
					panic(fmt.Sprintf("upgrade: bind elephant tenant: %v", err))
				}
			}
			s.ch = ch
		})
	}
	eng.Run()
	for _, s := range r.Streams {
		if s.ch == nil {
			panic(fmt.Sprintf("upgrade: stream %d->%d never established", s.From, s.To))
		}
	}

	// Live load: one id-stamped 16-byte request per tick per stream; the
	// elephant sends a 32 KiB rendezvous payload with the same header. A
	// stream pauses while its own client instance is draining (a balancer
	// would stop routing there), but keeps firing at draining SERVERS —
	// that in-flight traffic is what the drain deadline and the replay
	// tail must conserve.
	start := eng.Now()
	var tickFor func(s *upStream) func()
	tickFor = func(s *upStream) func() {
		var tick func()
		tick = func() {
			if eng.Now().Sub(start) >= upSendStop {
				return
			}
			eng.AfterBg(upTick, tick)
			if c.Nodes[s.From].Ctx.DrainPhase() != xrdma.DrainServing {
				return
			}
			id := s.nextID
			s.nextID++
			size := 0
			buf := make([]byte, 16)
			if s.Elephant {
				buf = make([]byte, upEleSize)
				size = upEleSize
			}
			binary.LittleEndian.PutUint64(buf, s.Tag)
			binary.LittleEndian.PutUint64(buf[8:], id)
			err := s.ch.SendMsg(buf, size, func(m *xrdma.Msg, err error) {
				if err != nil {
					return
				}
				respSeen[s.Tag<<40|binary.LittleEndian.Uint64(m.Data[8:])]++
			})
			if err != nil {
				s.Refused++
				return
			}
			s.Sent++
			s.sentOK[id] = true
		}
		return tick
	}
	for _, s := range r.Streams {
		eng.AfterBg(upTick, tickFor(s))
	}

	// The rolling wave: drain → restart at ProtoVerMax=2 → re-listen →
	// rehydrate, one node per wave gap. Drained instances' counters are
	// harvested before Restart discards the old context.
	inj := chaos.New(c)
	var steps []chaos.Step
	for i := 0; i < upNodes; i++ {
		node := i
		steps = append(steps, chaos.Step{
			At:   upFirstAt + sim.Duration(node)*upWaveGap,
			Name: fmt.Sprintf("roll %d", node),
			Do: func(in *chaos.Injector) {
				old := c.Nodes[node].Ctx
				in.DrainRestart(node,
					func(cfg *xrdma.Config) { cfg.ProtoVerMax = 2 },
					func(ctx *xrdma.Context) {
						r.Degraded += old.Stats.Degraded
						r.DrainRefusals += old.Stats.DrainRefusals
						r.VerMismatches += old.Stats.VerMismatches
						ctx.OnChannel(func(ch *xrdma.Channel) { install(node, ch) })
						if err := ctx.Listen(upPort); err != nil {
							panic(fmt.Sprintf("upgrade: re-listen node %d: %v", node, err))
						}
					})
			},
		})
	}
	inj.Schedule(steps)

	// Version probes: fresh channels negotiate from scratch, so they show
	// the live verdict of the moment — v1 while any end is legacy, v2
	// once both ends rolled.
	probe := func(from, to int, got func(ver uint8, caps uint32)) {
		c.Connect(from, to, upPort, func(ch *xrdma.Channel, err error) {
			if err != nil {
				panic(fmt.Sprintf("upgrade: probe %d->%d: %v", from, to, err))
			}
			got(ch.NegotiatedVersion(), ch.PeerCaps())
			ch.Close()
		})
	}
	eng.AfterBg(upMidAt, func() {
		probe(0, upNodes-1, func(v uint8, caps uint32) { r.MidVer, r.MidCaps = v, caps })
	})
	eng.AfterBg(upFinalAt, func() {
		probe(0, upNodes-1, func(v uint8, caps uint32) { r.FinalVer, r.FinalCaps = v, caps })
		probe(1, 2, func(v uint8, _ uint32) { r.FinalVerHi = v })
	})

	eng.RunUntil(start.Add(upHorizon))

	// Conservation: every accepted send was delivered exactly once, every
	// response arrived at most once.
	for _, s := range r.Streams {
		for id := uint64(0); id < s.nextID; id++ {
			if !s.sentOK[id] {
				continue
			}
			switch n := recvCount[s.key(id)]; {
			case n == 0:
				s.Lost++
			case n > 1:
				s.Dups++
			}
			if n := respSeen[s.key(id)]; n > 0 {
				s.Resps++
				if n > 1 {
					s.RespDups++
				}
			}
		}
		if s.ch == nil || s.ch.Health() != xrdma.HealthHealthy {
			r.Unhealthy++
		}
	}
	for _, n := range c.Nodes {
		r.Rehydrated += n.Ctx.Stats.Rehydrated
		r.Degraded += n.Ctx.Stats.Degraded
		r.DrainRefusals += n.Ctx.Stats.DrainRefusals
		r.VerMismatches += n.Ctx.Stats.VerMismatches
	}
	r.ChaosLog = inj.Digest()

	t := Table{
		ID:    "E25/Upgrade",
		Title: "Hot upgrade: rolling restart v1→v2 under live full-mesh load + background elephant",
		Header: []string{"stream", "sent", "refused", "resps", "dups", "lost"},
	}
	for _, s := range r.Streams {
		name := fmt.Sprintf("%d->%d", s.From, s.To)
		if s.Elephant {
			name += " (elephant)"
		}
		t.Addf(name, s.Sent, s.Refused, s.Resps, s.Dups, s.Lost)
	}
	t.Addf("versions", fmt.Sprintf("mid=%d", r.MidVer), fmt.Sprintf("final=%d/%d", r.FinalVer, r.FinalVerHi),
		fmt.Sprintf("rehyd=%d", r.Rehydrated), fmt.Sprintf("refus=%d", r.DrainRefusals), fmt.Sprintf("mism=%d", r.VerMismatches))
	t.Note("each node drains (ErrDraining refusals, in-flight completes), restarts at ProtoVerMax=2, rehydrates its handoff blob")
	t.Note("rehydrated channels keep their negotiated verdict (v1); fresh channels settle v1 mid-wave, v2 once both ends rolled")
	t.Note("conservation bar: zero lost, zero duplicate deliveries across every stream, elephant included")
	r.Table_ = t
	return r
}

package bench

import (
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/workload"
	"xrdma/internal/xrdma"
)

// Fig11Result is the online-upgrade observation: QP count ramps while the
// running workload's IOPS stays unharmed and the memory cache tracks
// bandwidth.
type Fig11Result struct {
	QPs        *sim.Series
	IOPS       *sim.Series
	MemOccupy  *sim.Series
	MemInUse   *sim.Series
	BaseIOPS   float64 // before the upgrade wave
	DuringIOPS float64 // while connections ramp
	Table_     Table
}

// Fig11OnlineUpgrade reproduces Fig. 11: a serving node under steady load
// receives an "online upgrade" wave — a stream of new clients
// establishing channels (QP number climbs) — without hurting throughput;
// memory-cache occupy/in-use follow the bandwidth.
func Fig11OnlineUpgrade(sc Scale) *Fig11Result {
	nodes := 10
	wave := 24
	horizon := 1200 * sim.Millisecond
	if sc.Full {
		nodes = 24
		wave = 200
		horizon = 6 * sim.Second
	}
	c := cluster.New(cluster.Options{Topology: fabric.ClusterClos(nodes), Nodes: nodes, Seed: sc.Seed})
	sc.observe(c.Eng, "fig11")
	server := 0
	r := &Fig11Result{
		QPs: &sim.Series{Name: "QPs"}, IOPS: &sim.Series{Name: "IOPS"},
		MemOccupy: &sim.Series{Name: "occupy"}, MemInUse: &sim.Series{Name: "in-use"},
	}
	rate := sim.NewRate(c.Eng, 50*sim.Millisecond, r.IOPS)
	c.Nodes[server].Ctx.OnChannel(func(ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			rate.Add(1)
			m.Reply(nil, 128)
		})
	})
	c.Nodes[server].Ctx.Listen(7000)

	// Steady base load from two clients.
	var base []*xrdma.Channel
	c.ConnectPairs([][2]int{{1, server}, {2, server}}, 7000, func(chs []*xrdma.Channel) { base = chs })
	c.Eng.Run()
	var gens []*workload.ClosedLoop
	for i, ch := range base {
		g := workload.NewClosedLoop(ch, 8, workload.Fixed(16<<10), sc.Seed+uint64(i))
		g.Start()
		gens = append(gens, g)
	}

	// Sampler.
	var sample func()
	sample = func() {
		now := c.Eng.Now()
		r.QPs.Append(now, float64(c.Nodes[server].NIC.NumQPs()))
		r.MemOccupy.Append(now, float64(c.Nodes[server].Ctx.Mem.OccupiedBytes()))
		r.MemInUse.Append(now, float64(c.Nodes[server].Ctx.Mem.InUseBytes))
		if now < sim.Time(horizon) {
			c.Eng.AfterBg(20*sim.Millisecond, sample)
		}
	}
	sample()

	// Upgrade wave: from t=horizon/3, new clients connect steadily, run
	// briefly, and stay connected.
	third := horizon / 3
	c.Eng.AfterBg(third, func() {
		interval := (horizon / 3) / sim.Duration(wave)
		for i := 0; i < wave; i++ {
			i := i
			c.Eng.AfterBg(sim.Duration(i)*interval, func() {
				from := 3 + i%(nodes-3)
				c.Connect(from, server, 7000, func(ch *xrdma.Channel, err error) {
					if err != nil {
						return
					}
					g := workload.NewClosedLoop(ch, 2, workload.Fixed(4<<10), sc.Seed+uint64(100+i))
					g.Start()
					gens = append(gens, g)
				})
			})
		}
	})

	c.Eng.RunUntil(sim.Time(horizon))
	for _, g := range gens {
		g.Stop()
	}
	rate.Flush()

	// IOPS before vs during the wave (per-50ms buckets → per-second).
	buckets := r.IOPS.Values
	n := len(buckets)
	pre := buckets[n/6 : n/3]
	during := buckets[n/2 : 5*n/6]
	r.BaseIOPS = meanOf(pre) * 20
	r.DuringIOPS = meanOf(during) * 20
	t := Table{ID: "E9/Fig11", Title: "online upgrade: QP ramp vs throughput and memory cache",
		Header: []string{"metric", "measured", "paper"}}
	t.Addf("QPs before", r.QPs.Values[1], "steady")
	t.Addf("QPs after", r.QPs.Values[r.QPs.Len()-1], "ramped")
	t.Addf("IOPS before wave", r.BaseIOPS, "unharmed")
	t.Addf("IOPS during wave", r.DuringIOPS, "unharmed (no jitter)")
	t.Addf("mem occupy (MB)", r.MemOccupy.Max()/1e6, "tracks bandwidth")
	t.Addf("mem in-use (MB)", r.MemInUse.Max()/1e6, "≤ occupy")
	r.Table_ = t
	return r
}

func meanOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Fig12Result is the anti-jitter comparison under a load burst.
type Fig12Result struct {
	App string
	// Latency (µs) and bandwidth before and during a ~3× load burst,
	// with X-RDMA's anti-jitter machinery on vs off.
	BaseLatOn, BurstLatOn   float64
	BaseLatOff, BurstLatOff float64
	P99On, P99Off           float64
	ThroughputRatioOn       float64 // burst/base goodput
	Table_                  Table
}

// fig12Run reproduces the Fig. 12 situation: a serving node carries
// latency-sensitive small I/O (plotted) when a bulk-write wave arrives
// and bandwidth steps by several ×. Each client keeps a latency channel
// (small requests, closed loop) separate from its data channel (bursty
// large writes) — the usual production split. With the anti-jitter
// machinery (fragmentation + outstanding-WR queueing complementing
// DCQCN), the step must not move small-I/O latency; without it the pause
// storms of Fig. 10 bleed into every flow sharing the fabric.
func fig12Run(sc Scale, sizes workload.SizeDist, payload int, antiJitter bool) (base, burst, p99 float64, ratio float64) {
	senders := 16
	phase := 300 * sim.Millisecond
	if sc.Full {
		senders = 24
		phase = 2 * sim.Second
	}
	c := cluster.New(cluster.Options{
		Topology: fabric.ClusterClos(senders + 1), Nodes: senders + 1, Seed: sc.Seed,
		Config: func(node int, cfg *xrdma.Config) {
			cfg.KeepaliveInterval = 0
			if antiJitter {
				cfg.MaxOutstandingWRs = 4
			} else {
				cfg.FragmentSize = 1 << 30
				cfg.MaxOutstandingWRs = 1 << 20
			}
		},
	})
	if antiJitter {
		sc.observe(c.Eng, "fig12/anti-jitter-on")
	} else {
		sc.observe(c.Eng, "fig12/anti-jitter-off")
	}
	server := 0
	var miceBytes, bulkBytes int64
	inBurst := false
	c.Nodes[server].Ctx.OnChannel(func(ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			if inBurst {
				if m.Len > 4096 {
					bulkBytes += int64(m.Len)
				} else {
					miceBytes += int64(m.Len)
				}
			}
			m.Reply(nil, 64)
		})
	})
	c.Nodes[server].Ctx.Listen(7000)
	// Two channels per sender: [0..senders) latency, [senders..) data.
	pairs := append(cluster.FanInPairs(senders+1, server), cluster.FanInPairs(senders+1, server)...)
	var chans []*xrdma.Channel
	c.ConnectPairs(pairs, 7000, func(chs []*xrdma.Channel) { chans = chs })
	c.Eng.Run()
	latChans, dataChans := chans[:senders], chans[senders:]

	// Pre-size for a full phase of closed-loop mice so recording stays
	// allocation-free on the measurement path.
	baseLat := sim.NewSummaryCap(1 << 15)
	burstLat := sim.NewSummaryCap(1 << 15)
	var mice []*workload.ClosedLoop
	for i, ch := range latChans {
		g := workload.NewClosedLoop(ch, 1, sizes, sc.Seed+uint64(i))
		g.OnResult = func(res workload.Result) {
			if res.Err != nil {
				return
			}
			if inBurst {
				burstLat.AddDuration(res.Latency)
			} else {
				baseLat.AddDuration(res.Latency)
			}
		}
		g.Start()
		mice = append(mice, g)
	}
	c.Eng.RunFor(phase)

	// Bulk wave: bursty open-loop large writes (the dotted-box step).
	inBurst = true
	rng := sim.NewRNG(sc.Seed ^ 0xf12)
	running := true
	for _, ch := range dataChans {
		ch := ch
		var loop func()
		loop = func() {
			if !running || ch.Closed() {
				return
			}
			// Sized to ≈60% of the victim link: the paper's burst is a
			// large but absorbable step, not an overload.
			n := 2 + rng.Intn(5)
			for i := 0; i < n; i++ {
				ch.SendMsg(nil, payload, nil)
			}
			c.Eng.AfterBg(rng.Exp(4*sim.Millisecond), loop)
		}
		loop()
	}
	c.Eng.RunFor(phase)
	running = false
	for _, g := range mice {
		g.Stop()
	}
	c.Eng.RunFor(50 * sim.Millisecond)

	// The "bandwidth step": total served bytes during the wave relative
	// to the latency traffic alone.
	ratio = float64(miceBytes+bulkBytes) / float64(miceBytes+1)
	return baseLat.Mean(), burstLat.Mean(), burstLat.Percentile(99), ratio
}

// Fig12AntiJitter reproduces Fig. 12 for ESSD-like and X-DB-like traffic:
// with the anti-jitter strategies the latency has "no significant
// increment" through a ≈300% throughput step; without them it balloons.
func Fig12AntiJitter(sc Scale, app string) *Fig12Result {
	// Latency-side request mix and bulk payload by application.
	var sizes workload.SizeDist
	payload := 128 << 10
	if app == "ESSD" {
		sizes = workload.Fixed(4 << 10)
	} else {
		sizes = workload.Fixed(512)
		payload = 256 << 10 // bulk scan results
	}
	r := &Fig12Result{App: app}
	r.BaseLatOn, r.BurstLatOn, r.P99On, r.ThroughputRatioOn = fig12Run(sc, sizes, payload, true)
	r.BaseLatOff, r.BurstLatOff, r.P99Off, _ = fig12Run(sc, sizes, payload, false)
	t := Table{ID: "E10/Fig12-" + app, Title: app + " anti-jitter under a ≈300% load step",
		Header: []string{"variant", "base mice lat(µs)", "burst mice lat(µs)", "burst mice p99(µs)", "burst/base"}}
	t.Addf("anti-jitter ON", r.BaseLatOn, r.BurstLatOn, r.P99On, r.BurstLatOn/r.BaseLatOn)
	t.Addf("anti-jitter OFF", r.BaseLatOff, r.BurstLatOff, r.P99Off, r.BurstLatOff/r.BaseLatOff)
	t.Addf("bandwidth step ×", r.ThroughputRatioOn, "", "", "")
	t.Note("paper: throughput steps ≈300%% with no significant latency increment when protocol extension + resource management are active")
	r.Table_ = t
	return r
}

// PeakStressResult is the scaled shopping-spree stress test (E15).
type PeakStressResult struct {
	AggregateOpsPerSec float64
	Errors             int64
	RNRs               int64
	Broken             int64
	Table_             Table
}

// PeakStress drives a full-mesh cluster at maximum closed-loop smalls and
// verifies zero exceptions — the §VII "35.78 M requests/s, no exception"
// claim at simulation scale.
func PeakStress(sc Scale) *PeakStressResult {
	nodes := 8
	horizon := 300 * sim.Millisecond
	depth := 16
	if sc.Full {
		nodes = 16
		horizon = 2 * sim.Second
		depth = 32
	}
	c := cluster.New(cluster.Options{Topology: fabric.ClusterClos(nodes), Nodes: nodes, Seed: sc.Seed})
	sc.observe(c.Eng, "peak")
	c.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 64) })
	})
	var chans []*xrdma.Channel
	c.ConnectPairs(cluster.FullMeshPairs(nodes), 7000, func(chs []*xrdma.Channel) { chans = chs })
	c.Eng.Run()
	r := &PeakStressResult{}
	var done int64
	var errs int64
	var gens []*workload.ClosedLoop
	for i, ch := range chans {
		g := workload.NewClosedLoop(ch, depth, workload.Fixed(256), sc.Seed+uint64(i))
		g.OnResult = func(res workload.Result) {
			if res.Err != nil {
				errs++
			} else {
				done++
			}
		}
		g.Start()
		gens = append(gens, g)
	}
	start := c.Eng.Now()
	c.Eng.RunUntil(start.Add(horizon))
	for _, g := range gens {
		g.Stop()
	}
	el := c.Eng.Now().Sub(start).Seconds()
	r.AggregateOpsPerSec = float64(done) / el
	r.Errors = errs
	for _, n := range c.Nodes {
		r.RNRs += n.NIC.Counters.RNRNakSent
		r.Broken += n.Ctx.Stats.ChannelsBroken
	}
	t := Table{ID: "E15/§VII", Title: "peak stress, full mesh closed-loop smalls",
		Header: []string{"metric", "measured", "paper"}}
	t.Addf("aggregate ops/s", r.AggregateOpsPerSec, "35.78M (4000 servers)")
	t.Addf("errors", r.Errors, "0")
	t.Addf("RNR NAKs", r.RNRs, "0")
	t.Addf("broken channels", r.Broken, "0")
	r.Table_ = t
	return r
}

// Fig3Result is the diurnal saturated/unsaturated pattern (context figure).
type Fig3Result struct {
	Bandwidth  *sim.Series
	PeakGbps   float64
	TroughGbps float64
	Table_     Table
}

// Fig3Diurnal generates the switching saturated/unsaturated load of the
// PolarDB monitoring plot: an open-loop generator whose rate follows a
// two-level day/night pattern.
func Fig3Diurnal(sc Scale) *Fig3Result {
	c := cluster.New(cluster.Options{Topology: fabric.SmallClos(), Nodes: 2, Seed: sc.Seed})
	sc.observe(c.Eng, "fig3")
	c.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) { m.Reply(nil, 64) })
	})
	var cli *xrdma.Channel
	c.Connect(0, 1, 7000, func(ch *xrdma.Channel, err error) { cli = ch })
	c.Eng.Run()
	r := &Fig3Result{Bandwidth: &sim.Series{Name: "Gbps"}}
	var bytes int64
	g := workload.NewOpenLoop(cli, 500*sim.Microsecond, workload.MiceElephants(4<<10, 64<<10, 0.3), sc.Seed)
	g.OnResult = func(res workload.Result) {
		if res.Err == nil {
			bytes += int64(res.Size)
		}
	}
	g.Start()
	// 8 "hours" of 100 ms each, alternating saturated/unsaturated.
	for h := 0; h < 8; h++ {
		if h%2 == 0 {
			g.SetMean(80 * sim.Microsecond) // saturated
		} else {
			g.SetMean(2 * sim.Millisecond) // quiet
		}
		before := bytes
		c.Eng.RunFor(100 * sim.Millisecond)
		gbps := float64(bytes-before) * 8 / 0.1 / 1e9
		r.Bandwidth.Append(c.Eng.Now(), gbps)
	}
	g.Stop()
	r.PeakGbps = r.Bandwidth.Max()
	r.TroughGbps = r.Bandwidth.Min()
	t := Table{ID: "E17/Fig3", Title: "diurnal saturated/unsaturated traffic pattern",
		Header: []string{"metric", "measured"}}
	t.Addf("peak (Gbps)", r.PeakGbps)
	t.Addf("trough (Gbps)", r.TroughGbps)
	t.Addf("peak/trough", r.PeakGbps/(r.TroughGbps+1e-9))
	r.Table_ = t
	return r
}

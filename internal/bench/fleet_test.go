package bench

import (
	"strings"
	"sync"
	"testing"
)

// TestFleet is E26's acceptance bar: every injected fault class must be
// diagnosed with exactly the expected incident class AND culprit, the
// clean warm-up must produce zero incidents, and nothing may open that no
// fault explains.
func TestFleet(t *testing.T) {
	r := Fleet(Quick())
	if r.CleanOpens != 0 {
		t.Errorf("clean warm-up opened %d incidents:\n%s", r.CleanOpens, strings.Join(r.Lines, "\n"))
	}
	if r.ExtraOpens != 0 {
		t.Errorf("%d incidents match no injected fault:\n%s", r.ExtraOpens, strings.Join(r.Lines, "\n"))
	}
	for _, ph := range r.Phases {
		if !ph.Hit {
			t.Errorf("phase %s: no %s incident with culprit %q:\n%s",
				ph.Name, ph.Class, ph.Culprit, strings.Join(r.Lines, "\n"))
			continue
		}
		if ph.Conf <= 0 || ph.Epochs < 1 {
			t.Errorf("phase %s: weak diagnosis conf=%d epochs=%d", ph.Name, ph.Conf, ph.Epochs)
		}
		// Transient faults heal and their incidents must close; the node
		// crash is permanent and must still be open at the horizon.
		if ph.Name == "node-crash" {
			if ph.Closed {
				t.Errorf("node-crash incident closed while the node is still down")
			}
		} else if !ph.Closed {
			t.Errorf("phase %s: incident still open after the fault healed", ph.Name)
		}
	}
}

// TestFleetDeterministic: the full diagnosis digest — fault log, chaos
// log, incident transitions — is bit-identical run-to-run and across
// concurrent goroutines (each run owns its engine; nothing leaks).
func TestFleetDeterministic(t *testing.T) {
	want := strings.Join(Fleet(Quick()).Digest(), "\n")
	if want == "" {
		t.Fatal("empty digest")
	}
	if got := strings.Join(Fleet(Quick()).Digest(), "\n"); got != want {
		t.Fatalf("sequential rerun diverged:\n--- first\n%s\n--- second\n%s", want, got)
	}
	got := make([]string, 4)
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = strings.Join(Fleet(Quick()).Digest(), "\n")
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Fatalf("concurrent run %d diverged from sequential digest", i)
		}
	}
}

package bench

import (
	"fmt"

	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// Fig10Result is the incast flow-control comparison (§VII-C): 64 KB
// payloads, 128 KB payloads, and 128 KB with X-RDMA flow control
// (fragmentation + outstanding-WR queueing).
type Fig10Result struct {
	Variants []string
	// GoodputGbps is the victim's mean application goodput.
	GoodputGbps map[string]float64
	// CNPs and PauseTX are totals over the run.
	CNPs    map[string]int64
	PauseTX map[string]int64
	// Series: per-100ms goodput for plotting.
	Series map[string]*sim.Series
	Table_ Table
}

// fig10Run drives one incast variant: bursty open-loop senders (the
// saturated/unsaturated switching of Fig. 3) feeding one victim. With flow
// control off, messages are not fragmented and the victim pulls with an
// effectively unlimited outstanding-WR budget — raw DCQCN alone absorbs
// the bursts. With flow control on, 64 KB fragments plus the tuned
// outstanding-WR limit (N=4 here: ≈256 KB in flight, several
// bandwidth-delay products) shape demand before the fabric must react.
func fig10Run(sc Scale, payload int, fc bool, mean sim.Duration, horizon sim.Duration, senders int) (gbps float64, cnps, pause int64, series *sim.Series) {
	c := cluster.New(cluster.Options{
		Topology: fabric.ClusterClos(senders + 1),
		Nodes:    senders + 1,
		Seed:     sc.Seed,
		Config: func(node int, cfg *xrdma.Config) {
			cfg.KeepaliveInterval = 0
			if fc {
				cfg.MaxOutstandingWRs = 4
			} else {
				cfg.FragmentSize = 1 << 30
				cfg.MaxOutstandingWRs = 1 << 20
			}
		},
	})
	variant := fmt.Sprintf("fig10/%dKB", payload>>10)
	if fc {
		variant += "-fc"
	}
	sc.observe(c.Eng, variant)
	victim := 0
	var recvBytes int64
	series = &sim.Series{Name: "goodput"}
	rate := sim.NewRate(c.Eng, 50*sim.Millisecond, series)
	c.Nodes[victim].Ctx.OnChannel(func(ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			recvBytes += int64(m.Len)
			rate.Add(float64(m.Len))
			m.Reply(nil, 8)
		})
	})
	if err := c.Nodes[victim].Ctx.Listen(7000); err != nil {
		panic(err)
	}
	pairs := cluster.FanInPairs(senders+1, victim)
	var chans []*xrdma.Channel
	c.ConnectPairs(pairs, 7000, func(chs []*xrdma.Channel) { chans = chs })
	c.Eng.Run()
	rng := sim.NewRNG(sc.Seed ^ 0xf10)
	running := true
	for _, ch := range chans {
		ch := ch
		var loop func()
		loop = func() {
			if !running || ch.Closed() {
				return
			}
			// A violent burst (≈1 MB), then an exponential gap: the
			// synchronized spikes that overwhelm reactive DCQCN.
			n := 4 + rng.Intn(9)
			for i := 0; i < n; i++ {
				ch.SendMsg(nil, payload, nil)
			}
			c.Eng.AfterBg(rng.Exp(mean), loop)
		}
		loop()
	}
	start := c.Eng.Now()
	c.Eng.RunUntil(start.Add(horizon))
	running = false
	rate.Flush()
	elapsed := c.Eng.Now().Sub(start)
	gbps = float64(recvBytes) * 8 / elapsed.Seconds() / 1e9
	// CNPs received by senders = congestion signalled; pause frames from
	// the fabric.
	for i := 1; i <= senders; i++ {
		cnps += c.Nodes[i].NIC.Counters.CNPRecv
	}
	pause = c.Fab.Stats.PauseTX
	return gbps, cnps, pause, series
}

// Fig10FlowControl reproduces Fig. 10. Paper: flow control improves
// bandwidth ≈24%, cuts CNPs to 1–2% and TX pause to ≈0.
func Fig10FlowControl(sc Scale) *Fig10Result {
	horizon := 600 * sim.Millisecond
	senders := 16
	if sc.Full {
		horizon = 5 * sim.Second
		senders = 24
	}
	r := &Fig10Result{
		Variants:    []string{"64KB", "128KB", "128KB-fc"},
		GoodputGbps: map[string]float64{},
		CNPs:        map[string]int64{},
		PauseTX:     map[string]int64{},
		Series:      map[string]*sim.Series{},
	}
	type cfg struct {
		name    string
		payload int
		fc      bool
		mean    sim.Duration
	}
	// Inter-burst means keep offered *bytes* equal across payload sizes:
	// a burst averages 8 messages, so 128 KB bursts fire half as often.
	for _, v := range []cfg{
		{"64KB", 64 << 10, false, 1600 * sim.Microsecond},
		{"128KB", 128 << 10, false, 3200 * sim.Microsecond},
		{"128KB-fc", 128 << 10, true, 3200 * sim.Microsecond},
	} {
		g, cn, pa, se := fig10Run(sc, v.payload, v.fc, v.mean, horizon, senders)
		r.GoodputGbps[v.name] = g
		r.CNPs[v.name] = cn
		r.PauseTX[v.name] = pa
		r.Series[v.name] = se
	}
	t := Table{ID: "E7/Fig10", Title: "incast: payload size and flow control vs congestion",
		Header: []string{"variant", "goodput(Gbps)", "CNPs", "TX-pause"}}
	for _, v := range r.Variants {
		t.Addf(v, r.GoodputGbps[v], r.CNPs[v], r.PauseTX[v])
	}
	t.Note("paper: fc improves bandwidth ≈24%%, CNP count → 1–2%%, TX pause → ≈0; this model reproduces the CNP/pause shape fully and a smaller goodput gain (simulated DCQCN recovers faster than the paper's production fabric — see EXPERIMENTS.md)")
	r.Table_ = t
	return r
}

// FragmentSweepResult is the ablation on fragment size (DESIGN.md §4).
type FragmentSweepResult struct {
	FragKB  []int
	Goodput []float64
	CNPs    []int64
	Table_  Table
}

// FragmentSweep ablates the 64 KB fragmentation choice: too small
// saturates the RNIC with WRs, too large reintroduces blocking.
func FragmentSweep(sc Scale) *FragmentSweepResult {
	horizon := 300 * sim.Millisecond
	if sc.Full {
		horizon = 2 * sim.Second
	}
	r := &FragmentSweepResult{}
	t := Table{ID: "A1/frag-sweep", Title: "fragment size ablation (128 KB incast)",
		Header: []string{"frag", "goodput(Gbps)", "CNPs"}}
	for _, kb := range []int{16, 64, 256} {
		kb := kb
		c := cluster.New(cluster.Options{
			Topology: fabric.ClusterClos(9), Nodes: 9, Seed: sc.Seed,
			Config: func(node int, cfg *xrdma.Config) {
				cfg.KeepaliveInterval = 0
				cfg.FragmentSize = kb << 10
			},
		})
		sc.observe(c.Eng, fmt.Sprintf("frag-sweep/%dKB", kb))
		var recvBytes int64
		c.Nodes[0].Ctx.OnChannel(func(ch *xrdma.Channel) {
			ch.OnMessage(func(m *xrdma.Msg) {
				recvBytes += int64(m.Len)
				m.Reply(nil, 8)
			})
		})
		c.Nodes[0].Ctx.Listen(7000)
		var chans []*xrdma.Channel
		c.ConnectPairs(cluster.FanInPairs(9, 0), 7000, func(chs []*xrdma.Channel) { chans = chs })
		c.Eng.Run()
		running := true
		for _, ch := range chans {
			ch := ch
			for k := 0; k < 4; k++ {
				var issue func()
				issue = func() {
					if !running || ch.Closed() {
						return
					}
					ch.SendMsg(nil, 128<<10, func(m *xrdma.Msg, err error) {
						if err == nil {
							issue()
						}
					})
				}
				issue()
			}
		}
		start := c.Eng.Now()
		c.Eng.RunUntil(start.Add(horizon))
		running = false
		g := float64(recvBytes) * 8 / c.Eng.Now().Sub(start).Seconds() / 1e9
		var cn int64
		for i := 1; i < 9; i++ {
			cn += c.Nodes[i].NIC.Counters.CNPRecv
		}
		r.FragKB = append(r.FragKB, kb)
		r.Goodput = append(r.Goodput, g)
		r.CNPs = append(r.CNPs, cn)
		t.Addf(sizeLabel(kb<<10), g, cn)
	}
	r.Table_ = t
	return r
}

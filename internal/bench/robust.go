package bench

import (
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/tcpnet"
	"xrdma/internal/verbs"
	"xrdma/internal/workload"
	"xrdma/internal/xrdma"
)

// EstablishmentResult reproduces §VII-C "Establishment Time".
type EstablishmentResult struct {
	ColdUS, WarmUS float64 // single connection, without/with QP cache
	SavingPct      float64
	MassConns      int
	MassColdSec    float64 // rdma_cm-style (no cache)
	MassWarmSec    float64 // with warmed QP cache
	TCPEstablishUS float64
	Table_         Table
}

// Establishment measures single-connection cold vs QP-cache establishment
// and the mass-establishment storm (paper: 3946 µs → 2451 µs, −38%; 4096
// connections ≈10 s with rdma_cm vs ≈3 s with X-RDMA).
func Establishment(sc Scale) *EstablishmentResult {
	r := &EstablishmentResult{}

	// Single connection, cold then warm.
	{
		c := cluster.New(cluster.Options{Topology: fabric.SmallClos(), Nodes: 2, Seed: sc.Seed})
		sc.observe(c.Eng, "establish/single")
		c.ListenAll(7000, nil)
		var ch *xrdma.Channel
		t0 := c.Eng.Now()
		c.Connect(0, 1, 7000, func(cch *xrdma.Channel, err error) {
			if err != nil {
				panic(err)
			}
			ch = cch
		})
		c.Eng.Run()
		r.ColdUS = c.Eng.Now().Sub(t0).Micros()
		ch.Close()
		c.Eng.Run()
		t1 := c.Eng.Now()
		c.Connect(0, 1, 7000, func(cch *xrdma.Channel, err error) {
			if err != nil {
				panic(err)
			}
		})
		c.Eng.Run()
		r.WarmUS = c.Eng.Now().Sub(t1).Micros()
		r.SavingPct = (r.ColdUS - r.WarmUS) / r.ColdUS * 100
	}

	// Mass establishment storm: N connections from a pool of clients to a
	// pool of servers, cold (rdma_cm path) vs warmed QP caches.
	conns := 128
	if sc.Full {
		conns = 4096
	}
	r.MassConns = conns
	massRun := func(prewarm bool) float64 {
		c := cluster.New(cluster.Options{Topology: fabric.ClusterClos(16), Nodes: 16, Seed: sc.Seed})
		if prewarm {
			sc.observe(c.Eng, "establish/mass-warm")
		} else {
			sc.observe(c.Eng, "establish/mass-cold")
		}
		c.ListenAll(7000, nil)
		if prewarm {
			// Fill QP caches — on both ends — by opening and closing a
			// first wave, so the measured storm runs entirely on
			// recycled QPs: production steady-state after a restart.
			var wave []*xrdma.Channel
			pairs := make([][2]int, conns)
			for i := range pairs {
				pairs[i] = [2]int{i % 8, 8 + i%8}
			}
			c.ConnectPairs(pairs, 7000, func(chs []*xrdma.Channel) { wave = chs })
			c.Eng.Run()
			for _, ch := range wave {
				ch.Close()
			}
			for _, n := range c.Nodes {
				for _, ch := range n.Ctx.Channels() {
					ch.Close()
				}
			}
			c.Eng.Run()
		}
		pairs := make([][2]int, conns)
		for i := range pairs {
			pairs[i] = [2]int{i % 8, 8 + i%8}
		}
		t0 := c.Eng.Now()
		done := false
		c.ConnectPairs(pairs, 7000, func([]*xrdma.Channel) { done = true })
		c.Eng.Run()
		if !done {
			panic("bench: mass establishment incomplete")
		}
		return c.Eng.Now().Sub(t0).Seconds()
	}
	r.MassColdSec = massRun(false)
	r.MassWarmSec = massRun(true)

	// TCP comparison point (§III Issue 3: ~100 µs).
	{
		eng := sim.NewEngine()
		sc.observe(eng, "establish/tcp")
		fab := fabric.New(eng, fabric.DefaultConfig(), sc.Seed)
		fabric.BuildClos(fab, fabric.SmallClos())
		a := tcpnet.New(eng, fab.Host(0), tcpnet.DefaultConfig())
		b := tcpnet.New(eng, fab.Host(1), tcpnet.DefaultConfig())
		b.Listen(80, func(*tcpnet.Conn) {})
		t0 := eng.Now()
		established := false
		a.Dial(fab.Host(1).ID, 80, func(_ *tcpnet.Conn, err error) {
			if err != nil {
				panic(err)
			}
			established = true
		})
		eng.Run()
		if !established {
			panic("bench: tcp dial failed")
		}
		r.TCPEstablishUS = sim.Duration(eng.Now() - t0).Micros()
	}

	t := Table{ID: "E8/§VII-C", Title: "connection establishment",
		Header: []string{"metric", "measured", "paper"}}
	t.Addf("single cold (µs)", r.ColdUS, "3946")
	t.Addf("single QP-cache (µs)", r.WarmUS, "2451")
	t.Addf("saving (%)", r.SavingPct, "38")
	t.Addf("mass conns", r.MassConns, "4096")
	t.Addf("mass cold (s)", r.MassColdSec, "~10")
	t.Addf("mass QP-cache (s)", r.MassWarmSec, "~3")
	t.Addf("tcp single (µs)", r.TCPEstablishUS, "~100")
	r.Table_ = t
	return r
}

// Fig8Result is the ESSD ramp after a connection storm.
type Fig8Result struct {
	IOPS        *sim.Series // per 100 ms bucket
	SteadyIOPS  float64
	RampSeconds float64 // time to reach 90% of steady state
	Table_      Table
}

// Fig8EssdRamp reproduces Fig. 8: an ESSD cluster (128 KB payloads) cold
// starts — every channel establishes, then closed-loop writes ramp to
// steady state. The paper reports reaching ≈6 K IOPS within 2 s.
func Fig8EssdRamp(sc Scale) *Fig8Result {
	nodes, blocks, chunks := 12, []int{0, 1, 2, 3}, []int{4, 5, 6, 7, 8, 9, 10, 11}
	horizon := 1500 * sim.Millisecond
	depth := 4
	if sc.Full {
		nodes = 48
		blocks = blocks[:0]
		chunks = chunks[:0]
		for i := 0; i < 16; i++ {
			blocks = append(blocks, i)
		}
		for i := 16; i < 48; i++ {
			chunks = append(chunks, i)
		}
		horizon = 10 * sim.Second
		depth = 16
	}
	c := cluster.New(cluster.Options{Topology: fabric.ClusterClos(nodes), Nodes: nodes, Seed: sc.Seed})
	sc.observe(c.Eng, "fig8")
	r := &Fig8Result{IOPS: &sim.Series{Name: "IOPS"}}
	rate := sim.NewRate(c.Eng, 100*sim.Millisecond, r.IOPS)

	p := workload.NewPangu(c, blocks, chunks, 3)
	e := workload.NewESSD(p, 128<<10, depth)
	// The workload starts the moment the mesh is up — the ramp includes
	// establishment, exactly what Fig. 8 plots.
	poll := func() {}
	poll = func() {
		if p.Ready() {
			e.Start(func(int, sim.Duration) { rate.Add(1) })
			return
		}
		c.Eng.After(10*sim.Millisecond, poll)
	}
	poll()
	c.Eng.RunUntil(sim.Time(horizon))
	e.Stop()
	rate.Flush()

	r.SteadyIOPS = r.IOPS.Tail(0.25) * 10 // per-100ms → per-second
	for i, v := range r.IOPS.Values {
		if v*10 >= 0.9*r.SteadyIOPS {
			r.RampSeconds = sim.Duration(r.IOPS.Times[i]).Seconds() + 0.1
			break
		}
	}
	t := Table{ID: "E5/Fig8", Title: "ESSD aggregate IOPS ramp (128 KB writes)",
		Header: []string{"metric", "measured", "paper"}}
	t.Addf("steady IOPS", r.SteadyIOPS, "~6000")
	t.Addf("ramp to 90% (s)", r.RampSeconds, "<2")
	t.Note("per-100ms buckets: first=%v last=%v", r.IOPS.Values[0], r.IOPS.Values[r.IOPS.Len()-1])
	r.Table_ = t
	return r
}

// Fig9Result compares RNR error rates, raw RDMA vs X-RDMA.
type Fig9Result struct {
	RawRNRPerSec   float64
	XRDMARNRPerSec float64
	RawSeries      *sim.Series
	Table_         Table
}

// Fig9RNRCounter reproduces Fig. 9: bursty Pangu-style traffic into
// receivers. Raw RDMA (no application-layer window, shallow receive
// queues) produces a steady trickle of RNR NAKs (paper: 0.91 average);
// X-RDMA's seq-ack window keeps the counter at exactly zero.
func Fig9RNRCounter(sc Scale) *Fig9Result {
	horizon := 1 * sim.Second
	if sc.Full {
		horizon = 10 * sim.Second
	}
	r := &Fig9Result{RawSeries: &sim.Series{Name: "raw RNR"}}

	// Raw RDMA: sender posts bursts straight to the QP; receiver keeps a
	// shallow RQ and reposts with application-side delay (it is busy —
	// the realistic condition the paper describes).
	{
		eng := sim.NewEngine()
		sc.observe(eng, "fig9/raw")
		fab := fabric.New(eng, fabric.DefaultConfig(), sc.Seed)
		fabric.BuildClos(fab, fabric.SmallClos())
		cfg := rnic.DefaultConfig()
		a := rnic.New(eng, fab.Host(0), cfg)
		b := rnic.New(eng, fab.Host(5), cfg)
		qa, qb := rnic.ConnectLoopback(a, b, 512)
		const rq = 16
		for i := 0; i < rq; i++ {
			qb.PostRecv(rnic.RecvWR{ID: uint64(i), Len: 8 << 10})
		}
		// Receiver reposts each consumed buffer after application
		// processing time.
		qb.RecvCQ.OnCompletion(func() {})
		repost := func() {
			for _, cqe := range qb.RecvCQ.Poll(64) {
				cqe := cqe
				eng.After(12*sim.Microsecond, func() {
					qb.PostRecv(rnic.RecvWR{ID: cqe.WRID, Len: 8 << 10})
				})
			}
		}
		qb.RecvCQ.OnCompletion(repost)
		rng := sim.NewRNG(sc.Seed)
		rate := sim.NewRate(eng, 100*sim.Millisecond, r.RawSeries)
		var lastRNR int64
		var burst func()
		burst = func() {
			if eng.Now() >= sim.Time(horizon) {
				return
			}
			// Burst of writes then sends — bursts overrun the RQ.
			n := 8 + rng.Intn(24)
			for i := 0; i < n; i++ {
				qa.PostSend(&rnic.SendWR{Op: rnic.OpSend, Len: 2048, Unsignaled: true})
			}
			if d := a.Counters.RNRNakRecv - lastRNR; d > 0 {
				rate.Add(float64(d))
				lastRNR = a.Counters.RNRNakRecv
			}
			eng.AfterBg(rng.Exp(500*sim.Microsecond), burst)
		}
		burst()
		eng.RunUntil(sim.Time(horizon))
		rate.Flush()
		r.RawRNRPerSec = float64(a.Counters.RNRNakRecv) / sim.Duration(horizon).Seconds()
	}

	// X-RDMA: same offered burst pattern through channels.
	{
		c := cluster.New(cluster.Options{Topology: fabric.SmallClos(), Nodes: 6, Seed: sc.Seed})
		sc.observe(c.Eng, "fig9/xrdma")
		c.ListenAll(7000, func(n *cluster.Node, ch *xrdma.Channel) {
			ch.OnMessage(func(m *xrdma.Msg) {
				// Application processing delay, like the raw case.
				c.Eng.After(12*sim.Microsecond, func() { m.Reply(nil, 8) })
			})
		})
		var cli *xrdma.Channel
		c.Connect(0, 5, 7000, func(ch *xrdma.Channel, err error) { cli = ch })
		c.Eng.Run()
		rng := sim.NewRNG(sc.Seed)
		var burst func()
		burst = func() {
			if c.Eng.Now() >= sim.Time(horizon) {
				return
			}
			n := 8 + rng.Intn(24)
			for i := 0; i < n; i++ {
				cli.SendMsg(nil, 2048, nil)
			}
			c.Eng.AfterBg(rng.Exp(500*sim.Microsecond), burst)
		}
		burst()
		c.Eng.RunUntil(sim.Time(horizon))
		r.XRDMARNRPerSec = float64(c.Nodes[0].NIC.Counters.RNRNakRecv) / sim.Duration(horizon).Seconds()
	}

	t := Table{ID: "E6/Fig9", Title: "RNR NAK rate under bursty traffic",
		Header: []string{"stack", "RNR/s", "paper"}}
	t.Addf("raw RDMA", r.RawRNRPerSec, "0.91 avg, spiky")
	t.Addf("X-RDMA", r.XRDMARNRPerSec, "0 (RNR-free)")
	r.Table_ = t
	return r
}

var _ = verbs.ResolveCost // establishment cost constants live in verbs

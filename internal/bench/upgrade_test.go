package bench

import (
	"strings"
	"testing"
)

// TestUpgrade is the E25 acceptance gate: a full rolling wave v1→v2 under
// live full-mesh load conserves every message exactly once, rehydrated
// channels keep their negotiated verdict, fresh channels track the
// cluster's live version mix, and every stream ends Healthy on RDMA.
func TestUpgrade(t *testing.T) {
	r := Upgrade(Quick())

	// Conservation: the whole point of the drain deadline + handoff tail +
	// seq-ack replay is that a rolling restart is invisible to the ledger.
	for _, s := range r.Streams {
		if s.Lost != 0 || s.Dups != 0 {
			t.Errorf("stream %d->%d: dups=%d lost=%d — conservation violated", s.From, s.To, s.Dups, s.Lost)
		}
		if s.RespDups != 0 {
			t.Errorf("stream %d->%d: %d duplicate responses", s.From, s.To, s.RespDups)
		}
		if s.Sent == 0 {
			t.Errorf("stream %d->%d: zero accepted sends — test is vacuous", s.From, s.To)
		}
	}

	// Mixed-version interop: a fresh channel dialed while node 3 was still
	// legacy settles on v1; after the wave, fresh channels settle on v2.
	if r.MidVer != 1 {
		t.Errorf("mid-wave fresh channel negotiated v%d, want v1 (node 3 was legacy)", r.MidVer)
	}
	if r.FinalVer != 2 || r.FinalVerHi != 2 {
		t.Errorf("post-wave fresh channels negotiated v%d/v%d, want v2/v2", r.FinalVer, r.FinalVerHi)
	}
	if r.VerMismatches != 0 {
		t.Errorf("%d negotiation failures — every pairing here has overlapping ranges", r.VerMismatches)
	}

	// The wave actually exercised the plane: every node rehydrated at
	// least its client channels, peers degraded and recovered, and the
	// drain gate refused work at least once.
	if r.Rehydrated == 0 {
		t.Error("zero rehydrated channels — the handoff path never ran")
	}
	if r.Degraded == 0 {
		t.Error("zero degraded channels — no restart perturbed a peer, test is vacuous")
	}
	if r.Unhealthy != 0 {
		t.Errorf("%d streams not Healthy at the horizon — recovery did not converge", r.Unhealthy)
	}

	// The chaos log shows all four waves completing with a handoff blob.
	joined := strings.Join(r.ChaosLog, "\n")
	for _, want := range []string{"node.drain 0", "node.upgrade 0", "node.drain 3", "node.upgrade 3"} {
		if !strings.Contains(joined, want) {
			t.Errorf("chaos log missing %q:\n%s", want, joined)
		}
	}
}

// TestUpgradeDeterministic: the digest is a pure function of the seed —
// bit-identical across sequential reruns and across 4 concurrent
// goroutines (the -j 1 vs -j 8 guarantee of cmd/reproduce).
func TestUpgradeDeterministic(t *testing.T) {
	base := strings.Join(Upgrade(Quick()).Digest(), "\n")
	again := strings.Join(Upgrade(Quick()).Digest(), "\n")
	if base != again {
		t.Fatalf("sequential reruns diverge:\n--- first ---\n%s\n--- second ---\n%s", base, again)
	}
	results := make([]string, 4)
	done := make(chan int)
	for i := range results {
		go func(i int) {
			results[i] = strings.Join(Upgrade(Quick()).Digest(), "\n")
			done <- i
		}(i)
	}
	for range results {
		<-done
	}
	for i, d := range results {
		if d != base {
			t.Fatalf("concurrent run %d diverges from sequential baseline:\n%s\nvs\n%s", i, d, base)
		}
	}
}

package bench

import (
	"strings"
	"testing"

	"xrdma/internal/xrdma"
)

// TestChaosDrill is the robustness acceptance gate: every transient fault
// class ends back on RDMA, the permanent class ends on the Mock fallback,
// and no class loses or duplicates a single message.
func TestChaosDrill(t *testing.T) {
	r := ChaosDrill(Quick())
	if len(r.Classes) != 6 {
		t.Fatalf("expected 6 fault classes, got %d", len(r.Classes))
	}
	for _, cl := range r.Classes {
		if cl.Final != cl.Want {
			t.Errorf("%s: final health %v, want %v (timeline: %v)", cl.Name, cl.Final, cl.Want, cl.Timeline)
		}
		if cl.Dups != 0 {
			t.Errorf("%s: %d duplicated deliveries (exactly-once violated)", cl.Name, cl.Dups)
		}
		if cl.Lost != 0 {
			t.Errorf("%s: %d lost messages of %d sent", cl.Name, cl.Lost, cl.Sent)
		}
		if cl.SendErrs != 0 {
			t.Errorf("%s: %d sends rejected — channel died", cl.Name, cl.SendErrs)
		}
		if cl.Resps != cl.Sent {
			t.Errorf("%s: %d responses for %d requests", cl.Name, cl.Resps, cl.Sent)
		}
		if cl.Sent < 100 {
			t.Errorf("%s: only %d messages sent — load generator broken", cl.Name, cl.Sent)
		}
	}
	// The faults must actually have perturbed the channel somewhere: the
	// drill is vacuous if no class ever left Healthy.
	perturbed := 0
	for _, cl := range r.Classes {
		if len(cl.Timeline) > 0 {
			perturbed++
		}
	}
	if perturbed < 3 {
		t.Errorf("only %d classes perturbed the channel — faults not biting", perturbed)
	}
	// The ECMP control must ride through a single uplink loss untouched.
	if ec := r.Classes[0]; len(ec.Timeline) != 0 {
		t.Errorf("ecmp-reroute: channel perturbed despite redundant uplink: %v", ec.Timeline)
	}
}

// TestChaosDrillDeterministic asserts the recovery timeline is a pure
// function of the seed: bit-identical digests when run twice sequentially
// and when the classes run on concurrent goroutines (the -j 1 vs -j 8
// guarantee of cmd/reproduce).
func TestChaosDrillDeterministic(t *testing.T) {
	base := strings.Join(ChaosDrill(Quick()).Digest(), "\n")
	again := strings.Join(ChaosDrill(Quick()).Digest(), "\n")
	if base != again {
		t.Fatalf("sequential reruns diverge:\n--- first ---\n%s\n--- second ---\n%s", base, again)
	}
	results := make([]string, 4)
	done := make(chan int)
	for i := range results {
		go func(i int) {
			results[i] = strings.Join(ChaosDrill(Quick()).Digest(), "\n")
			done <- i
		}(i)
	}
	for range results {
		<-done
	}
	for i, d := range results {
		if d != base {
			t.Fatalf("concurrent run %d diverges from sequential baseline:\n%s\nvs\n%s", i, d, base)
		}
	}
}

// TestChaosDrillSeedSensitivity: a different seed must still satisfy the
// acceptance bar (the recovery machinery is robust, not tuned to one
// lucky schedule).
func TestChaosDrillSeedSensitivity(t *testing.T) {
	r := ChaosDrill(Scale{Seed: 7})
	for _, cl := range r.Classes {
		if cl.Final != cl.Want {
			t.Errorf("seed 7 %s: final %v want %v (timeline %v)", cl.Name, cl.Final, cl.Want, cl.Timeline)
		}
		if cl.Dups != 0 || cl.Lost != 0 {
			t.Errorf("seed 7 %s: dups=%d lost=%d", cl.Name, cl.Dups, cl.Lost)
		}
	}
	_ = xrdma.HealthHealthy
}

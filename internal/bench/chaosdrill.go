package bench

import (
	"encoding/binary"
	"fmt"

	"xrdma/internal/chaos"
	"xrdma/internal/cluster"
	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/xrdma"
)

// ChaosClass is the outcome of one fault class of the robustness drill: a
// steady request load between a cross-ToR node pair while the chaos
// scheduler injects one class of fault, and (for transient classes) heals
// it. The acceptance bar is the paper's §VI-C availability story —
// transient faults end back on RDMA, permanent RDMA loss ends on the Mock
// fallback, and in either case not a single message is lost or delivered
// twice.
type ChaosClass struct {
	Name    string
	Want    xrdma.HealthState
	Final   xrdma.HealthState
	FaultAt sim.Time
	// Detect is fault→first health transition; Settle is fault→last
	// transition (the channel's recovery timeline has gone quiet). Both
	// are zero when the fault never perturbed the channel (ECMP absorbed
	// it).
	Detect sim.Duration
	Settle sim.Duration

	Sent      int // requests issued by the client
	Delivered int // requests the server saw at least once
	Dups      int // requests the server saw more than once
	Lost      int // requests the server never saw
	Resps     int // responses the client consumed
	SendErrs  int // SendMsg rejections (channel dead)

	// Timeline is the health-transition log ("t=... state"), the piece of
	// the run the determinism test compares bit-for-bit across runs.
	Timeline []string
	ChaosLog []string
}

// ChaosDrillResult aggregates the drill.
type ChaosDrillResult struct {
	Classes []*ChaosClass
	Table_  Table
}

// Digest renders every class's fault log and health timeline as one
// deterministic line list: same seed ⇒ bit-identical digest.
func (r *ChaosDrillResult) Digest() []string {
	var out []string
	for _, cl := range r.Classes {
		out = append(out, "class "+cl.Name)
		out = append(out, cl.ChaosLog...)
		out = append(out, cl.Timeline...)
		out = append(out, fmt.Sprintf("final=%v sent=%d dups=%d lost=%d", cl.Final, cl.Sent, cl.Dups, cl.Lost))
	}
	return out
}

// chaosKnobs compresses every failure-detection and recovery clock so a
// full degrade→recover→failback cycle fits a ~1 s drill horizon. The
// ratios between the clocks mirror production (keepalive ≪ dial timeout ≪
// grace), only the absolute scale shrinks.
func chaosKnobs(_ int, cfg *xrdma.Config) {
	cfg.MockEnabled = true
	cfg.KeepaliveInterval = 2 * sim.Millisecond
	cfg.KeepaliveTimeout = 8 * sim.Millisecond
	cfg.MockDialRetries = 4
	cfg.MockDialBackoff = 1 * sim.Millisecond
	cfg.RecoverRetries = 8
	cfg.RecoverBackoff = 1 * sim.Millisecond
	cfg.RecoverBackoffMax = 8 * sim.Millisecond
	cfg.RecoverDialTimeout = 5 * sim.Millisecond
	cfg.FailbackInterval = 25 * sim.Millisecond
}

// chaosNIC shortens the RC retry horizon to match: (RetryLimit+2)·RTO is
// the hardware's own failure-detection bound.
func chaosNIC() rnic.Config {
	nic := rnic.DefaultConfig()
	nic.RetransTimeout = 2 * sim.Millisecond
	nic.RetryLimit = 3
	return nic
}

// runChaosClass drives one fault class on a fresh SmallClos world. The
// client (node 0, pod0-tor0) talks to the server (node 4, pod0-tor1), so
// every byte crosses the leaf tier the faults target.
func runChaosClass(sc Scale, name string, want xrdma.HealthState, steps []chaos.Step) *ChaosClass {
	cl := &ChaosClass{Name: name, Want: want}
	c := cluster.New(cluster.Options{
		Topology:    fabric.SmallClos(),
		NICCfg:      chaosNIC(),
		Nodes:       8,
		Config:      chaosKnobs,
		MockPort:    9300,
		RecoverPort: 9400,
		Seed:        sc.Seed,
	})
	sc.observe(c.Eng, "robust/"+name)
	eng := c.Eng

	recvCount := map[uint64]int{}
	c.ListenAll(7300, func(_ *cluster.Node, ch *xrdma.Channel) {
		ch.OnMessage(func(m *xrdma.Msg) {
			id := binary.LittleEndian.Uint64(m.Data)
			recvCount[id]++
			m.Reply(m.Data[:8], 0)
		})
	})

	var ch *xrdma.Channel
	c.Connect(0, 4, 7300, func(cch *xrdma.Channel, err error) {
		if err != nil {
			panic(err)
		}
		ch = cch
	})
	eng.Run()
	if ch == nil {
		panic("chaos drill: channel never established")
	}

	var transAt []sim.Time
	ch.OnHealthChange(func(h xrdma.HealthState) {
		transAt = append(transAt, eng.Now())
		cl.Timeline = append(cl.Timeline, fmt.Sprintf("t=%v %v", eng.Now(), h))
	})

	// Steady request load: one 16-byte request every 500 µs until
	// sendStop, each carrying its own id so the server can count exact
	// deliveries. The drill keeps sending straight through the outage —
	// that backlog is precisely what the seq-ack window must replay
	// exactly once.
	const (
		tickEvery = 500 * sim.Microsecond
		sendStop  = 450 * sim.Millisecond
		horizon   = 1000 * sim.Millisecond
	)
	start := eng.Now()
	var nextID uint64
	respSeen := map[uint64]int{}
	var tick func()
	tick = func() {
		if eng.Now().Sub(start) >= sendStop {
			return
		}
		id := nextID
		nextID++
		buf := make([]byte, 16)
		binary.LittleEndian.PutUint64(buf, id)
		cl.Sent++
		err := ch.SendMsg(buf, 0, func(m *xrdma.Msg, err error) {
			if err == nil {
				respSeen[binary.LittleEndian.Uint64(m.Data)]++
			}
		})
		if err != nil {
			cl.SendErrs++
		}
		eng.AfterBg(tickEvery, tick)
	}
	eng.AfterBg(tickEvery, tick)

	inj := chaos.New(c)
	inj.Schedule(steps)

	eng.RunUntil(start.Add(horizon))

	cl.Final = ch.Health()
	if ch.Mocked() && cl.Final == xrdma.HealthRecovering {
		// The horizon can land inside one of the periodic failback probe
		// windows; with the mock conn still attached the channel is
		// serving on the fallback the whole time, so report that.
		cl.Final = xrdma.HealthFallback
	}
	cl.ChaosLog = inj.Digest()
	if len(inj.Log) > 0 {
		cl.FaultAt = inj.Log[0].At
		// First/last health transition after the first fault.
		var firstT, lastT sim.Time
		for _, ev := range transAt {
			if ev < cl.FaultAt {
				continue
			}
			if firstT == 0 {
				firstT = ev
			}
			lastT = ev
		}
		if firstT != 0 {
			cl.Detect = firstT.Sub(cl.FaultAt)
			cl.Settle = lastT.Sub(cl.FaultAt)
		}
	}
	for id := uint64(0); id < nextID; id++ {
		n := recvCount[id]
		switch {
		case n == 0:
			cl.Lost++
		default:
			cl.Delivered++
			if n > 1 {
				cl.Dups++
			}
		}
	}
	cl.Resps = len(respSeen)
	return cl
}

// ChaosDrill reproduces the §VI-C robustness story as five fault classes
// plus an ECMP-absorbed control.
func ChaosDrill(sc Scale) *ChaosDrillResult {
	ms := func(n int) sim.Duration { return sim.Duration(n) * sim.Millisecond }
	r := &ChaosDrillResult{}

	classes := []struct {
		name  string
		want  xrdma.HealthState
		steps []chaos.Step
	}{
		{"ecmp-reroute", xrdma.HealthHealthy, []chaos.Step{
			{At: ms(50), Name: "leaf0 uplink down", Do: func(i *chaos.Injector) { i.LinkDown("pod0-tor0", "pod0-leaf0") }},
			{At: ms(250), Name: "leaf0 uplink up", Do: func(i *chaos.Injector) { i.LinkUp("pod0-tor0", "pod0-leaf0") }},
		}},
		{"hostlink-flap", xrdma.HealthHealthy, []chaos.Step{
			{At: ms(50), Name: "server cable out", Do: func(i *chaos.Injector) { i.HostLinkDown(4) }},
			{At: ms(110), Name: "server cable in", Do: func(i *chaos.Injector) { i.HostLinkUp(4) }},
		}},
		{"leaf-partition", xrdma.HealthHealthy, []chaos.Step{
			{At: ms(50), Name: "both leaves down", Do: func(i *chaos.Injector) {
				i.SwitchDown("pod0-leaf0")
				i.SwitchDown("pod0-leaf1")
			}},
			{At: ms(130), Name: "both leaves up", Do: func(i *chaos.Injector) {
				i.SwitchUp("pod0-leaf0")
				i.SwitchUp("pod0-leaf1")
			}},
		}},
		{"brownout", xrdma.HealthHealthy, []chaos.Step{
			{At: ms(50), Name: "flaky optic", Do: func(i *chaos.Injector) {
				i.Brownout("pod0-tor0", "pod0-leaf0", 0.30, 0.05, 20*sim.Microsecond)
			}},
			{At: ms(250), Name: "optic replaced", Do: func(i *chaos.Injector) { i.ClearBrownout("pod0-tor0", "pod0-leaf0") }},
		}},
		{"node-restart", xrdma.HealthHealthy, []chaos.Step{
			{At: ms(50), Name: "server crash", Do: func(i *chaos.Injector) { i.NodeCrash(4) }},
			{At: ms(120), Name: "server reboot", Do: func(i *chaos.Injector) { i.NodeRestart(4) }},
		}},
		{"nic-loss-permanent", xrdma.HealthFallback, []chaos.Step{
			{At: ms(50), Name: "server HCA dies", Do: func(i *chaos.Injector) { i.NicCrash(4) }},
		}},
	}

	t := Table{
		ID:     "E19/Robust",
		Title:  "Chaos drill: fault classes vs channel outcome (cross-ToR pair, SmallClos)",
		Header: []string{"class", "final", "detect", "settle", "sent", "delivered", "dups", "lost", "resps"},
	}
	for _, spec := range classes {
		cl := runChaosClass(sc, spec.name, spec.want, spec.steps)
		r.Classes = append(r.Classes, cl)
		det, set := "-", "-"
		if cl.Detect > 0 {
			det, set = cl.Detect.String(), cl.Settle.String()
		}
		t.Addf(cl.Name, cl.Final.String(), det, set, cl.Sent, cl.Delivered, cl.Dups, cl.Lost, cl.Resps)
	}
	t.Note("transient classes must end Healthy (back on RDMA); nic-loss-permanent must end Fallback (Mock/TCP)")
	t.Note("dups and lost must be 0 in every class: the seq-ack window replays the unacked tail and the receiver dedups")
	r.Table_ = t
	return r
}

package bench

import (
	"strings"
	"testing"

	"xrdma/internal/sim"
)

// TestGrayhaul is the gray-failure acceptance gate (E20): under a
// permanent spine brownout the doctor re-paths the channel back to a
// clean tail, while the doctor-off arm stays visibly degraded — and in
// no arm is a single request lost, duplicated or rejected.
func TestGrayhaul(t *testing.T) {
	r := Grayhaul(Quick())
	for _, a := range []*GrayArm{r.Clean, r.Off, r.On} {
		if a.Dups != 0 {
			t.Errorf("%s: %d duplicated deliveries (exactly-once violated)", a.Name, a.Dups)
		}
		if a.Lost != 0 {
			t.Errorf("%s: %d lost requests of %d sent", a.Name, a.Lost, a.Sent)
		}
		if a.SendErrs != 0 {
			t.Errorf("%s: %d sends rejected — the doctor escalated a healable path", a.Name, a.SendErrs)
		}
		if a.Resps != a.Sent {
			t.Errorf("%s: %d responses for %d requests", a.Name, a.Resps, a.Sent)
		}
		if a.Sent < 100 {
			t.Errorf("%s: only %d requests sent — load generator broken", a.Name, a.Sent)
		}
	}
	if r.Clean.Rehashes != 0 {
		t.Errorf("clean arm rotated %d flow labels with no fault injected", r.Clean.Rehashes)
	}
	// The gray failure must actually be gray: doctor-off degraded but alive.
	if r.Off.P99 < 2*r.Clean.P99 {
		t.Errorf("doctor-off p99 %v not degraded vs clean %v — brownout not biting", r.Off.P99, r.Clean.P99)
	}
	if r.Off.Rehashes != 0 {
		t.Errorf("doctor-off rotated %d flow labels with the doctor disabled", r.Off.Rehashes)
	}
	// The cure: doctor-on re-paths and the tail returns to ~baseline.
	if r.On.Rehashes < 1 {
		t.Errorf("doctor-on never rotated a flow label")
	}
	if r.On.FirstRehash <= 0 || r.On.FirstRehash > 60*sim.Millisecond {
		t.Errorf("doctor-on first rehash %v after fault, want within (0, 60ms]", r.On.FirstRehash)
	}
	if limit := r.Clean.P99 * 115 / 100; r.On.P99 > limit {
		t.Errorf("doctor-on p99 %v exceeds 1.15× clean (%v) — re-pathing did not restore the tail", r.On.P99, limit)
	}
}

// TestGrayhaulDeterministic asserts the whole drill — fault schedule,
// verdict log, rehash log, latency percentiles — is a pure function of
// the seed: bit-identical across sequential reruns and across concurrent
// goroutines (the -j 1 vs -j 8 guarantee of cmd/reproduce).
func TestGrayhaulDeterministic(t *testing.T) {
	base := strings.Join(Grayhaul(Quick()).Digest(), "\n")
	again := strings.Join(Grayhaul(Quick()).Digest(), "\n")
	if base != again {
		t.Fatalf("sequential reruns diverge:\n--- first ---\n%s\n--- second ---\n%s", base, again)
	}
	results := make([]string, 4)
	done := make(chan int)
	for i := range results {
		go func(i int) {
			results[i] = strings.Join(Grayhaul(Quick()).Digest(), "\n")
			done <- i
		}(i)
	}
	for range results {
		<-done
	}
	for i, d := range results {
		if d != base {
			t.Fatalf("concurrent run %d diverges from sequential baseline:\n%s\nvs\n%s", i, d, base)
		}
	}
}

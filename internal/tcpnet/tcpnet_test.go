package tcpnet

import (
	"bytes"
	"testing"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
)

func newPair(t testing.TB, cfg Config) (*sim.Engine, *Stack, *Stack) {
	t.Helper()
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.SmallClos())
	a := New(eng, fab.Host(0), cfg)
	b := New(eng, fab.Host(5), cfg)
	return eng, a, b
}

func TestDialAndSend(t *testing.T) {
	eng, a, b := newPair(t, DefaultConfig())
	var srvConn *Conn
	var got []Message
	b.Listen(80, func(c *Conn) {
		srvConn = c
		c.OnMessage = func(m Message) { got = append(got, m) }
	})
	var cli *Conn
	var establishedAt sim.Time
	a.Dial(b.Node, 80, func(c *Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		cli = c
		establishedAt = eng.Now()
	})
	eng.Run()
	if cli == nil || srvConn == nil {
		t.Fatal("connection not established")
	}
	// TCP establishment must be ~100µs, not milliseconds (§III Issue 3).
	el := sim.Duration(establishedAt)
	if el < 50*sim.Microsecond || el > 300*sim.Microsecond {
		t.Fatalf("TCP establishment %v outside [50µs, 300µs]", el)
	}

	payload := []byte("tcp message payload")
	cli.Send(payload, 0, nil)
	eng.Run()
	if len(got) != 1 || !bytes.Equal(got[0].Data, payload) {
		t.Fatalf("message lost/corrupt: %+v", got)
	}
}

func TestMultiSegmentMessage(t *testing.T) {
	eng, a, b := newPair(t, DefaultConfig())
	var got []Message
	b.Listen(80, func(c *Conn) {
		c.OnMessage = func(m Message) { got = append(got, m) }
	})
	var cli *Conn
	a.Dial(b.Node, 80, func(c *Conn, err error) { cli = c })
	eng.Run()
	payload := make([]byte, 50_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	cli.Send(payload, 0, nil)
	eng.Run()
	if len(got) != 1 || !bytes.Equal(got[0].Data, payload) {
		t.Fatal("multi-segment message corrupted")
	}
}

func TestSizeOnlyMessages(t *testing.T) {
	eng, a, b := newPair(t, DefaultConfig())
	var got []Message
	b.Listen(80, func(c *Conn) {
		c.OnMessage = func(m Message) { got = append(got, m) }
	})
	var cli *Conn
	a.Dial(b.Node, 80, func(c *Conn, err error) { cli = c })
	eng.Run()
	cli.Send(nil, 128<<10, nil)
	eng.Run()
	if len(got) != 1 || got[0].Len != 128<<10 || got[0].Data != nil {
		t.Fatalf("size-only message: %+v", got)
	}
}

func TestRefused(t *testing.T) {
	eng, a, b := newPair(t, DefaultConfig())
	var gotErr error
	a.Dial(b.Node, 81, func(c *Conn, err error) { gotErr = err })
	eng.Run()
	if gotErr != ErrRefused {
		t.Fatalf("err = %v, want ErrRefused", gotErr)
	}
}

func TestCloseNotifiesPeer(t *testing.T) {
	eng, a, b := newPair(t, DefaultConfig())
	var srvConn *Conn
	var srvClosed error
	closed := false
	b.Listen(80, func(c *Conn) {
		srvConn = c
		c.OnClose = func(err error) { closed = true; srvClosed = err }
	})
	var cli *Conn
	a.Dial(b.Node, 80, func(c *Conn, err error) { cli = c })
	eng.Run()
	cli.Close()
	eng.Run()
	if !closed || srvClosed != ErrClosed {
		t.Fatalf("peer not notified of close: %v %v", closed, srvClosed)
	}
	if srvConn.Open() {
		t.Fatal("server conn still open")
	}
	// Send after close errors.
	var sendErr error
	cli.Send([]byte("x"), 0, func(err error) { sendErr = err })
	eng.Run()
	if sendErr != ErrClosed {
		t.Fatalf("send after close: %v", sendErr)
	}
}

func TestKeepaliveDetectsDeadPeer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KeepaliveInterval = 5 * sim.Millisecond
	cfg.KeepaliveTimeout = 10 * sim.Millisecond
	eng, a, b := newPair(t, cfg)
	b.Listen(80, func(c *Conn) {})
	var cli *Conn
	var deadErr error
	a.Dial(b.Node, 80, func(c *Conn, err error) {
		cli = c
		c.OnClose = func(e error) { deadErr = e }
	})
	eng.RunFor(1 * sim.Millisecond)
	if cli == nil {
		t.Fatal("no connection")
	}
	b.Crash()
	eng.RunFor(200 * sim.Millisecond)
	if deadErr != ErrPeerDead {
		t.Fatalf("keepalive never detected dead peer: %v", deadErr)
	}
	if cli.Open() {
		t.Fatal("connection still open after keepalive timeout")
	}
}

func TestKeepaliveQuietOnHealthyPeer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KeepaliveInterval = 5 * sim.Millisecond
	cfg.KeepaliveTimeout = 10 * sim.Millisecond
	eng, a, b := newPair(t, cfg)
	b.Listen(80, func(c *Conn) {})
	var cli *Conn
	closed := false
	a.Dial(b.Node, 80, func(c *Conn, err error) {
		cli = c
		c.OnClose = func(error) { closed = true }
	})
	eng.RunFor(100 * sim.Millisecond)
	if cli == nil || closed || !cli.Open() {
		t.Fatal("healthy idle connection was torn down")
	}
}

func TestManyMessagesOrdered(t *testing.T) {
	eng, a, b := newPair(t, DefaultConfig())
	var got []Message
	b.Listen(80, func(c *Conn) {
		c.OnMessage = func(m Message) { got = append(got, m) }
	})
	var cli *Conn
	a.Dial(b.Node, 80, func(c *Conn, err error) { cli = c })
	eng.Run()
	const n = 100
	for i := 0; i < n; i++ {
		cli.Send([]byte{byte(i)}, 0, nil)
	}
	eng.Run()
	if len(got) != n {
		t.Fatalf("received %d/%d", len(got), n)
	}
	for i, m := range got {
		if m.Data[0] != byte(i) {
			t.Fatalf("reordered at %d", i)
		}
	}
	if a.MsgsSent != n || b.MsgsRecv != n {
		t.Fatalf("counters %d/%d", a.MsgsSent, b.MsgsRecv)
	}
}

// Package tcpnet models a kernel TCP/IP stack over the same fabric the
// RNICs use. It exists for three of the paper's comparison points:
// TCP's ~100 µs connection establishment versus rdma_cm's milliseconds
// (§III Issue 3), TCP keepalive as the robustness baseline X-RDMA's
// keepalive imitates (§V-A), and the Mock mechanism that temporarily
// switches a channel from RDMA to TCP during network anomalies (§VI-C).
//
// The stack is deliberately simple — message-oriented, fixed kernel-path
// costs, no congestion control — because its role is functional and
// comparative, not a TCP study. It relies on the PFC-lossless fabric for
// delivery and asserts in-order arrival per connection.
package tcpnet

import (
	"errors"
	"fmt"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
)

// Config models kernel-path costs: syscall, data copies, protocol
// processing and softirq wakeups on both sides.
type Config struct {
	SendSyscall  sim.Duration // user→kernel: syscall + copy + segmentation
	RecvPath     sim.Duration // interrupt + stack + copy + wakeup
	CopyPerKB    sim.Duration // added copy cost per KiB of payload
	MSS          int
	HandshakeRTT int // messages exchanged during connect (3-way)

	// KeepaliveInterval, when >0, probes idle connections; a missed
	// probe reply closes the connection with ErrPeerDead.
	KeepaliveInterval sim.Duration
	KeepaliveTimeout  sim.Duration

	// DialTimeout fails a connect whose handshake never completes.
	DialTimeout sim.Duration
}

// DefaultConfig reflects the usual several-microsecond kernel overheads
// that motivate kernel bypass in the first place (§II-A).
func DefaultConfig() Config {
	return Config{
		SendSyscall:  6 * sim.Microsecond,
		RecvPath:     9 * sim.Microsecond,
		CopyPerKB:    80 * sim.Nanosecond,
		MSS:          4096,
		HandshakeRTT: 3,

		KeepaliveInterval: 0, // off unless asked for (like SO_KEEPALIVE)
		KeepaliveTimeout:  30 * sim.Millisecond,
		DialTimeout:       100 * sim.Millisecond,
	}
}

// ErrDialTimeout is returned when the handshake never completes.
var ErrDialTimeout = errors.New("tcpnet: dial timeout")

// Errors surfaced to connection callbacks.
var (
	ErrRefused  = errors.New("tcpnet: connection refused")
	ErrClosed   = errors.New("tcpnet: connection closed")
	ErrPeerDead = errors.New("tcpnet: keepalive timeout")
	ErrReset    = errors.New("tcpnet: connection reset (segment loss)")
)

// Message is what OnMessage delivers.
type Message struct {
	Data []byte
	Len  int
}

// Stack is one node's TCP endpoint.
type Stack struct {
	Node fabric.NodeID
	cfg  Config
	eng  *sim.Engine
	host *fabric.Host

	alive     bool
	listeners map[int]func(*Conn)
	conns     map[connKey]*Conn
	nextPort  int

	// Counters.
	MsgsSent, MsgsRecv int64
	BytesSent          int64
}

type connKey struct {
	localPort  int
	remote     fabric.NodeID
	remotePort int
}

// segment is the wire payload.
type segment struct {
	kind    uint8 // 0 data, 1 SYN, 2 SYNACK, 3 ACK(handshake), 4 FIN, 5 keepalive, 6 keepalive-ack, 7 RST
	srcPort int
	dstPort int
	seq     uint64
	msgLen  int
	offset  int
	last    bool
	data    []byte
}

// New attaches a TCP stack to a host.
func New(eng *sim.Engine, host *fabric.Host, cfg Config) *Stack {
	s := &Stack{
		Node: host.ID, cfg: cfg, eng: eng, host: host, alive: true,
		listeners: make(map[int]func(*Conn)),
		conns:     make(map[connKey]*Conn),
		nextPort:  40000,
	}
	host.AttachProto(fabric.ProtoTCP, s)
	return s
}

// Crash silences the stack (machine failure).
func (s *Stack) Crash() { s.alive = false }

// Revive restores it.
func (s *Stack) Revive() { s.alive = true }

// Listen accepts connections on port.
func (s *Stack) Listen(port int, accept func(*Conn)) error {
	if _, dup := s.listeners[port]; dup {
		return fmt.Errorf("tcpnet: port %d in use", port)
	}
	s.listeners[port] = accept
	return nil
}

// Unlisten releases a port so a restarted middleware instance on the same
// node can re-register its listener. Unknown ports are a no-op.
func (s *Stack) Unlisten(port int) {
	delete(s.listeners, port)
}

// Conn is one established, message-oriented connection.
type Conn struct {
	stack      *Stack
	key        connKey
	Remote     fabric.NodeID
	RemotePort int

	open      bool
	sendSeq   uint64
	recvSeq   uint64
	partial   []byte
	partialAt int

	OnMessage func(Message)
	OnClose   func(error)

	lastHeard sim.Time
	kaEvent   sim.Event
	kaWaiting bool

	// dialDone is stashed on the dialing side until the SYNACK arrives.
	dialDone func(*Conn, error)
}

// EstablishTime is exported for the establishment benchmarks: handshake
// plus listen-side accept cost, ~100 µs end to end on a quiet fabric.
const EstablishTime = 100 * sim.Microsecond

// Dial opens a connection; done fires when established (three-way
// handshake plus a fixed kernel setup cost calibrated to ~100 µs).
func (s *Stack) Dial(remote fabric.NodeID, port int, done func(*Conn, error)) {
	local := s.nextPort
	s.nextPort++
	key := connKey{localPort: local, remote: remote, remotePort: port}
	c := &Conn{stack: s, key: key, Remote: remote, RemotePort: port}
	s.conns[key] = c
	c.dialDone = done
	// SYN after kernel socket setup; the rest of the ~100µs is the
	// handshake RTTs and accept-side processing.
	s.eng.After(40*sim.Microsecond, func() {
		s.send(remote, &segment{kind: 1, srcPort: local, dstPort: port}, 1)
	})
	if s.cfg.DialTimeout > 0 {
		s.eng.AfterBg(s.cfg.DialTimeout, func() {
			if c.dialDone != nil {
				cb := c.dialDone
				c.dialDone = nil
				delete(s.conns, key)
				cb(nil, ErrDialTimeout)
			}
		})
	}
}

func (s *Stack) send(to fabric.NodeID, seg *segment, size int) {
	if !s.alive {
		return
	}
	p := s.host.Fabric().NewPacket()
	p.Src, p.Dst, p.Size, p.Proto = s.Node, to, size, fabric.ProtoTCP
	p.FlowHash = uint64(seg.srcPort)<<16 ^ uint64(seg.dstPort) ^ uint64(to)<<32 ^ uint64(s.Node)<<48
	p.Payload = seg
	s.host.Send(p)
}

// Send transmits one message; cb (optional) fires when the last byte hits
// the wire (kernel buffer semantics, not delivery acknowledgement).
func (c *Conn) Send(data []byte, length int, cb func(error)) {
	s := c.stack
	if !c.open {
		if cb != nil {
			cb(ErrClosed)
		}
		return
	}
	if data != nil {
		length = len(data)
	}
	cost := s.cfg.SendSyscall + sim.Duration(int64(length)/1024)*s.cfg.CopyPerKB
	s.eng.After(cost, func() {
		if !c.open {
			if cb != nil {
				cb(ErrClosed)
			}
			return
		}
		off := 0
		for {
			seg := length - off
			if seg > s.cfg.MSS {
				seg = s.cfg.MSS
			}
			sg := &segment{
				kind: 0, srcPort: c.key.localPort, dstPort: c.key.remotePort,
				seq: c.sendSeq, msgLen: length, offset: off, last: off+seg >= length,
			}
			if data != nil {
				sg.data = data[off : off+seg]
			}
			c.sendSeq++
			s.send(c.Remote, sg, seg+40)
			off += seg
			if sg.last {
				break
			}
		}
		s.MsgsSent++
		s.BytesSent += int64(length)
		if cb != nil {
			cb(nil)
		}
	})
}

// Close tears the connection down and notifies the peer.
func (c *Conn) Close() {
	if !c.open {
		return
	}
	c.open = false
	c.stopKA()
	c.stack.send(c.Remote, &segment{kind: 4, srcPort: c.key.localPort, dstPort: c.key.remotePort}, 40)
	delete(c.stack.conns, c.key)
	if c.OnClose != nil {
		c.OnClose(nil)
	}
}

func (c *Conn) teardown(err error) {
	if !c.open {
		return
	}
	c.open = false
	c.stopKA()
	delete(c.stack.conns, c.key)
	if c.OnClose != nil {
		c.OnClose(err)
	}
}

// Open reports whether the connection is usable.
func (c *Conn) Open() bool { return c.open }

// --- keepalive -------------------------------------------------------------

func (c *Conn) armKA() {
	s := c.stack
	if s.cfg.KeepaliveInterval <= 0 {
		return
	}
	c.kaEvent = s.eng.AfterBg(s.cfg.KeepaliveInterval, func() {
		if !c.open {
			return
		}
		if s.eng.Now().Sub(c.lastHeard) < s.cfg.KeepaliveInterval {
			c.armKA()
			return
		}
		// Probe and wait.
		c.kaWaiting = true
		s.send(c.Remote, &segment{kind: 5, srcPort: c.key.localPort, dstPort: c.key.remotePort}, 40)
		c.kaEvent = s.eng.AfterBg(s.cfg.KeepaliveTimeout, func() {
			if c.kaWaiting && c.open {
				c.teardown(ErrPeerDead)
			}
		})
	})
}

func (c *Conn) stopKA() {
	c.stack.eng.Cancel(c.kaEvent)
	c.kaEvent = sim.Event{}
}

// --- receive ---------------------------------------------------------------

// HandlePacket implements fabric.Endpoint.
func (s *Stack) HandlePacket(p *fabric.Packet) {
	if !s.alive {
		return
	}
	seg, ok := p.Payload.(*segment)
	if !ok {
		return
	}
	switch seg.kind {
	case 1: // SYN
		accept, ok := s.listeners[seg.dstPort]
		if !ok {
			s.send(p.Src, &segment{kind: 7, srcPort: seg.dstPort, dstPort: seg.srcPort}, 40)
			return
		}
		src := p.Src // p is recycled before the deferred work runs
		key := connKey{localPort: seg.dstPort, remote: src, remotePort: seg.srcPort}
		c := &Conn{stack: s, key: key, Remote: src, RemotePort: seg.srcPort, open: true}
		c.lastHeard = s.eng.Now()
		s.conns[key] = c
		// Accept-side kernel work before SYNACK.
		s.eng.After(25*sim.Microsecond, func() {
			s.send(src, &segment{kind: 2, srcPort: c.key.localPort, dstPort: c.key.remotePort}, 40)
			c.armKA()
			accept(c)
		})
	case 2: // SYNACK
		src := p.Src // p is recycled before the deferred work runs
		key := connKey{localPort: seg.dstPort, remote: src, remotePort: seg.srcPort}
		c := s.conns[key]
		if c == nil || c.open {
			return
		}
		s.eng.After(25*sim.Microsecond, func() {
			c.open = true
			c.lastHeard = s.eng.Now()
			s.send(src, &segment{kind: 3, srcPort: c.key.localPort, dstPort: c.key.remotePort}, 40)
			c.armKA()
			if c.dialDone != nil {
				done := c.dialDone
				c.dialDone = nil
				done(c, nil)
			}
		})
	case 3: // handshake ACK — nothing further needed
	case 7: // RST
		key := connKey{localPort: seg.dstPort, remote: p.Src, remotePort: seg.srcPort}
		if c := s.conns[key]; c != nil {
			if c.dialDone != nil {
				done := c.dialDone
				c.dialDone = nil
				delete(s.conns, key)
				done(nil, ErrRefused)
				return
			}
			c.teardown(ErrClosed)
		}
	case 4: // FIN
		key := connKey{localPort: seg.dstPort, remote: p.Src, remotePort: seg.srcPort}
		if c := s.conns[key]; c != nil {
			c.teardown(ErrClosed)
		}
	case 5: // keepalive probe
		key := connKey{localPort: seg.dstPort, remote: p.Src, remotePort: seg.srcPort}
		if c := s.conns[key]; c != nil {
			c.lastHeard = s.eng.Now()
		}
		s.send(p.Src, &segment{kind: 6, srcPort: seg.dstPort, dstPort: seg.srcPort}, 40)
	case 6: // keepalive ack
		key := connKey{localPort: seg.dstPort, remote: p.Src, remotePort: seg.srcPort}
		if c := s.conns[key]; c != nil {
			c.lastHeard = s.eng.Now()
			c.kaWaiting = false
			c.stopKA()
			c.armKA()
		}
	case 0: // data
		key := connKey{localPort: seg.dstPort, remote: p.Src, remotePort: seg.srcPort}
		c := s.conns[key]
		if c == nil || !c.open {
			return
		}
		c.lastHeard = s.eng.Now()
		c.kaWaiting = false
		if seg.seq != c.recvSeq {
			// A gap means segments died on the wire (a downed link or
			// failed switch flushed them). The model has no retransmit,
			// so behave like a hard reset: RST the sender and tear down.
			// Layers above (the Mock channel) own reconnection.
			s.send(p.Src, &segment{kind: 7, srcPort: seg.dstPort, dstPort: seg.srcPort}, 40)
			c.teardown(ErrReset)
			return
		}
		c.recvSeq++
		if seg.offset == 0 {
			if seg.data != nil {
				c.partial = make([]byte, seg.msgLen)
			} else {
				c.partial = nil
			}
			c.partialAt = 0
		}
		if seg.data != nil && c.partial != nil {
			copy(c.partial[seg.offset:], seg.data)
		}
		c.partialAt = seg.offset + s.cfg.MSS
		if !seg.last {
			return
		}
		s.MsgsRecv++
		data := c.partial
		c.partial = nil
		msgLen := seg.msgLen
		cost := s.cfg.RecvPath + sim.Duration(int64(msgLen)/1024)*s.cfg.CopyPerKB
		s.eng.After(cost, func() {
			if c.open && c.OnMessage != nil {
				c.OnMessage(Message{Data: data, Len: msgLen})
			}
		})
	}
}

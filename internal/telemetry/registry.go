package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
)

// kind discriminates the metric variants stored in a Registry.
type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	gaugeFuncKind
	histKind
)

type metric struct {
	name string
	kind kind
	v    int64
	fn   func() int64
	h    *histData
}

// histData is a log₂-bucket histogram: bucket i counts observations v
// with bits.Len64(uint64(v)) == i, i.e. bucket 0 holds zeros and bucket
// i≥1 holds [2^(i-1), 2^i).
type histData struct {
	buckets [64]int64
	count   int64
	sum     int64
}

// Counter is a pre-resolved handle to a monotonically increasing value.
// The zero Counter is a no-op, so optional instrumentation needs no nil
// checks at call sites.
type Counter struct{ m *metric }

// Add increments the counter by d.
func (c Counter) Add(d int64) {
	if c.m != nil {
		c.m.v += d
	}
}

// Inc increments the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c Counter) Value() int64 {
	if c.m == nil {
		return 0
	}
	return c.m.v
}

// Gauge is a pre-resolved handle to a value that can move both ways.
type Gauge struct{ m *metric }

// Set stores v.
func (g Gauge) Set(v int64) {
	if g.m != nil {
		g.m.v = v
	}
}

// Add moves the gauge by d.
func (g Gauge) Add(d int64) {
	if g.m != nil {
		g.m.v += d
	}
}

// Value reads the gauge.
func (g Gauge) Value() int64 {
	if g.m == nil {
		return 0
	}
	return g.m.v
}

// Histogram is a pre-resolved handle to a log₂-bucket histogram.
type Histogram struct{ h *histData }

// Observe records one sample. Negative samples land in bucket 0.
func (h Histogram) Observe(v int64) {
	if h.h == nil {
		return
	}
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.h.buckets[idx]++
	h.h.count++
	h.h.sum += v
}

// Count reports how many samples were observed.
func (h Histogram) Count() int64 {
	if h.h == nil {
		return 0
	}
	return h.h.count
}

// quantile estimates the q-th percentile (0 < q ≤ 100) from the log₂
// buckets. The bucket where the cumulative count crosses ⌈count·q/100⌉
// bounds the answer to [2^(i-1), 2^i); within the bucket the estimate
// interpolates linearly by rank, assuming samples spread evenly across
// the bucket's range. All arithmetic is integer, so the estimate is
// bit-identical across runs; a rank landing on the last sample of a
// bucket reports the bucket's inclusive upper edge, which keeps the
// old coarse behaviour as the interpolation's boundary case.
func (d *histData) quantile(q int64) int64 {
	if d.count == 0 {
		return 0
	}
	target := (d.count*q + 99) / 100
	var cum int64
	for i, n := range d.buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			lo := int64(1) << uint(i-1)
			hi := (int64(1) << uint(i)) - 1 // wraps to MaxInt64 for i=63, intentionally
			rank := target - (cum - n)      // 1..n within this bucket
			span := hi - lo
			// span/n*rank + span%n*rank/n avoids overflowing the
			// span·rank product for the huge top buckets.
			return lo + span/n*rank + span%n*rank/n
		}
	}
	return int64(^uint64(0) >> 1)
}

// Entry is one named value in a registry snapshot.
type Entry struct {
	Name  string
	Value int64
}

// Registry holds the named metrics of one engine. It is not
// goroutine-safe: like the engine it is keyed to, a registry belongs to
// exactly one experiment goroutine.
type Registry struct {
	byName map[string]*metric
	order  []*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) get(name string, k kind) *metric {
	if m, ok := r.byName[name]; ok {
		if m.kind != k {
			panic(fmt.Sprintf("telemetry: %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{name: name, kind: k}
	if k == histKind {
		m.h = &histData{}
	}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter resolves (registering on first use) a counter handle.
func (r *Registry) Counter(name string) Counter {
	return Counter{m: r.get(name, counterKind)}
}

// Gauge resolves (registering on first use) a gauge handle.
func (r *Registry) Gauge(name string) Gauge {
	return Gauge{m: r.get(name, gaugeKind)}
}

// Histogram resolves (registering on first use) a histogram handle.
func (r *Registry) Histogram(name string) Histogram {
	return Histogram{h: r.get(name, histKind).h}
}

// GaugeFunc registers a gauge whose value is computed by fn, evaluated
// only at snapshot time — the mechanism for exposing existing counter
// structs with zero hot-path cost. Re-registering a name replaces fn.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	m := r.get(name, gaugeFuncKind)
	m.fn = fn
}

// Unregister removes a metric (no-op if absent). Needed for per-channel
// metrics whose QP numbers recycle through the QP cache.
func (r *Registry) Unregister(name string) {
	m, ok := r.byName[name]
	if !ok {
		return
	}
	delete(r.byName, name)
	for i, o := range r.order {
		if o == m {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// Probe is a pre-resolved read-only handle over a metric of any kind —
// the zero-allocation way for a periodic sampler (the xrmon agents) to
// read the same metric every tick without re-hashing its name. A probe
// tracks its metric through GaugeFunc re-registration (the fn is
// replaced on the same slot), but a name that is Unregistered and later
// re-registered gets a fresh slot: holders must re-resolve then.
type Probe struct{ m *metric }

// Probe resolves a read handle; ok is false when the name is absent
// (the returned probe then reads zero and reports Valid()==false).
func (r *Registry) Probe(name string) (Probe, bool) {
	m, ok := r.byName[name]
	return Probe{m: m}, ok
}

// Valid reports whether the probe is bound to a metric.
func (p Probe) Valid() bool { return p.m != nil }

// Value evaluates the probed metric the way Registry.Value does
// (histograms report their sample count); an unbound probe reads 0.
func (p Probe) Value() int64 {
	if p.m == nil {
		return 0
	}
	switch p.m.kind {
	case gaugeFuncKind:
		return p.m.fn()
	case histKind:
		return p.m.h.count
	default:
		return p.m.v
	}
}

// Value evaluates the metric called name; ok is false when absent.
// Histograms report their sample count.
func (r *Registry) Value(name string) (v int64, ok bool) {
	m, present := r.byName[name]
	if !present {
		return 0, false
	}
	switch m.kind {
	case gaugeFuncKind:
		return m.fn(), true
	case histKind:
		return m.h.count, true
	default:
		return m.v, true
	}
}

// Snapshot evaluates every metric and returns entries sorted by name.
// Histograms expand into .count, .sum, .p50 and .p99 entries.
func (r *Registry) Snapshot() []Entry {
	out := make([]Entry, 0, len(r.order)+3*len(r.order)/2)
	for _, m := range r.order {
		switch m.kind {
		case gaugeFuncKind:
			out = append(out, Entry{m.name, m.fn()})
		case histKind:
			out = append(out,
				Entry{m.name + ".count", m.h.count},
				Entry{m.name + ".sum", m.h.sum},
				Entry{m.name + ".p50", m.h.quantile(50)},
				Entry{m.name + ".p99", m.h.quantile(99)})
		default:
			out = append(out, Entry{m.name, m.v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Digest renders the snapshot as sorted "name=value" lines — the
// bit-identical-across-`-j` determinism fingerprint.
func (r *Registry) Digest() string {
	var b strings.Builder
	for _, e := range r.Snapshot() {
		fmt.Fprintf(&b, "%s=%d\n", e.Name, e.Value)
	}
	return b.String()
}

// Diff returns after-minus-before for every name in after (names only
// in before are dropped; names only in after diff against zero).
func Diff(before, after []Entry) []Entry {
	prev := make(map[string]int64, len(before))
	for _, e := range before {
		prev[e.Name] = e.Value
	}
	out := make([]Entry, 0, len(after))
	for _, e := range after {
		out = append(out, Entry{e.Name, e.Value - prev[e.Name]})
	}
	return out
}

// Table renders the snapshot as a netstat-style aligned table, grouped
// by the first dotted name component with a blank line between groups.
func (r *Registry) Table() string {
	return RenderEntries(r.Snapshot())
}

// promName sanitizes a metric name to the Prometheus charset
// [a-zA-Z0-9_:]: dots (and anything else illegal) become underscores,
// and a leading digit is escaped with an underscore.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus emits every metric in the Prometheus text exposition
// format (version 0.0.4): a # HELP and # TYPE line per family, then
// the sample. Counters map to counter, gauges and gauge funcs to
// gauge, and histograms to native histogram families: one cumulative
// `le` bucket per used log₂ bucket (upper edge 2^i-1, inclusive, which
// matches Prometheus's ≤ semantics exactly), the mandatory le="+Inf"
// bucket, then _sum and _count. Output is in sorted-name order so it
// is deterministic across runs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms := make([]*metric, len(r.order))
	copy(ms, r.order)
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		name := promName(m.name)
		switch m.kind {
		case counterKind:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, m.name, name, name, m.v)
		case histKind:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, m.name, name)
			top := 0
			for i, n := range m.h.buckets {
				if n > 0 {
					top = i
				}
			}
			var cum int64
			for i := 0; i <= top; i++ {
				cum += m.h.buckets[i]
				ub := int64(0)
				if i > 0 {
					ub = (int64(1) << uint(i)) - 1
				}
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, ub, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, m.h.count)
			fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, m.h.sum, name, m.h.count)
		default:
			v := m.v
			if m.kind == gaugeFuncKind {
				v = m.fn()
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, m.name, name, name, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderEntries renders pre-snapshotted entries the way Table does.
func RenderEntries(entries []Entry) string {
	width := 0
	for _, e := range entries {
		if len(e.Name) > width {
			width = len(e.Name)
		}
	}
	var b strings.Builder
	group := ""
	for i, e := range entries {
		g := e.Name
		if dot := strings.IndexByte(g, '.'); dot >= 0 {
			g = g[:dot]
		}
		if i > 0 && g != group {
			b.WriteByte('\n')
		}
		group = g
		fmt.Fprintf(&b, "%-*s %12d\n", width, e.Name, e.Value)
	}
	return b.String()
}

package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"

	"xrdma/internal/sim"
)

// Stage identifies one segment of a blame-traced message's critical
// path. The order is the causal order of a request/response round
// trip; Chrome-trace child spans are laid out in this order inside the
// parent message span.
type Stage uint8

const (
	StageTxStall     Stage = iota // sender tx-window stall (middleware)
	StageSQWait                   // RNIC send-queue + flow-control wait
	StageSerialize                // RNIC pipeline + wire serialization
	StageFabricQueue              // per-switch egress-queue residency, both directions
	StagePFCPause                 // share of fabric residency under PFC pause (overlap)
	StageRTORecovery              // retransmit-timeout recovery
	StageRNRRecovery              // RNR-NAK backoff recovery
	StageReassembly               // receiver reassembly: first fragment → app dispatch
	StageHandler                  // responder app handler + reply staging
	StageReadFetch                // one-sided READ residency: issue → data landed locally
	StageWriteFlush               // one-sided WRITE residency: issue → remote placement acked
	StageResidual                 // propagation, acks, completion costs — unattributed
	StageCount
)

var stageNames = [StageCount]string{
	StageTxStall:     "tx.stall",
	StageSQWait:      "sq.wait",
	StageSerialize:   "serialize",
	StageFabricQueue: "fabric.queue",
	StagePFCPause:    "fabric.pfc",
	StageRTORecovery: "recover.rto",
	StageRNRRecovery: "recover.rnr",
	StageReassembly:  "reassembly",
	StageHandler:     "handler",
	StageReadFetch:   "read.fetch",
	StageWriteFlush:  "write.flush",
	StageResidual:    "residual",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// PktBlame is the in-band (INT-style) accumulator for one direction of
// a blame-sampled message. The sending middleware allocates it, every
// packet of the message references it, and fabric devices stamp
// residency into it only when the reference — the packet's trace bit —
// is set, so untraced packets never touch this code.
type PktBlame struct {
	Queue   sim.Duration // summed egress-queue wait across all hops
	Pause   sim.Duration // share of Queue spent under PFC pause
	ECN     int64        // packets ECN-marked in flight
	FirstAt sim.Time     // earliest first-fragment arrival at the receiving NIC
}

// BlameRec is one traced message's reconstructed critical path: the
// round-trip latency decomposed into causal stages.
type BlameRec struct {
	MsgID  uint64
	Node   int32 // requester node
	QPN    uint32
	Tenant uint16 // requesting channel's tenant id (0 = untenanted)
	At     sim.Time // request issue time
	RTT    sim.Duration
	Dur    [StageCount]sim.Duration
	ECN    int64 // ECN marks seen by this message's packets
}

// Top returns the most expensive attributed stage of this record
// (excluding the PFC overlap share and the unattributed residual).
func (r *BlameRec) Top() Stage {
	best, bestD := StageResidual, sim.Duration(-1)
	for s := Stage(0); s < StageCount; s++ {
		if s == StagePFCPause || s == StageResidual {
			continue
		}
		if r.Dur[s] > bestD {
			best, bestD = s, r.Dur[s]
		}
	}
	return best
}

// DefaultBlameCap bounds the ring of recent per-message records kept
// for drill-down; the aggregate histograms are unbounded.
const DefaultBlameCap = 4096

// Blame aggregates stage-attributed latency across every traced
// message of one engine: per-stage log₂ latency histograms plus a ring
// of recent records. Like the Registry it is engine-keyed and
// single-goroutine.
type Blame struct {
	recent *Ring[BlameRec]
	stages [StageCount]histData
	rtt    histData
	ecn    int64

	// Tenant dimension: per-tenant RTT histograms, populated only by
	// records carrying a non-zero tenant id (zero-tenant runs never
	// allocate the map, keeping their digests byte-identical).
	tenants map[uint16]*histData
}

// NewBlame creates an empty aggregator.
func NewBlame() *Blame { return &Blame{recent: NewRing[BlameRec](DefaultBlameCap)} }

// Observe folds one reconstructed record into the aggregate. Stages
// with zero residency are not observed, so each stage histogram's
// count reads "messages that spent time here".
func (b *Blame) Observe(rec *BlameRec) {
	b.recent.Push(*rec)
	for s := Stage(0); s < StageCount; s++ {
		if d := rec.Dur[s]; d > 0 {
			h := &b.stages[s]
			h.buckets[bucketOf(int64(d))]++
			h.count++
			h.sum += int64(d)
		}
	}
	b.rtt.buckets[bucketOf(int64(rec.RTT))]++
	b.rtt.count++
	b.rtt.sum += int64(rec.RTT)
	b.ecn += rec.ECN
	if rec.Tenant != 0 {
		if b.tenants == nil {
			b.tenants = make(map[uint16]*histData)
		}
		h := b.tenants[rec.Tenant]
		if h == nil {
			h = &histData{}
			b.tenants[rec.Tenant] = h
		}
		h.buckets[bucketOf(int64(rec.RTT))]++
		h.count++
		h.sum += int64(rec.RTT)
	}
}

// TenantIDs reports the tenant ids observed so far, ascending.
func (b *Blame) TenantIDs() []uint16 {
	ids := make([]uint16, 0, len(b.tenants))
	for id := range b.tenants {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TenantStats reports (messages, total RTT) observed for one tenant.
func (b *Blame) TenantStats(id uint16) (count int64, total sim.Duration) {
	h := b.tenants[id]
	if h == nil {
		return 0, 0
	}
	return h.count, sim.Duration(h.sum)
}

// TenantQuantile reports an upper bound for tenant id's q-th percentile
// round-trip time.
func (b *Blame) TenantQuantile(id uint16, q int64) sim.Duration {
	h := b.tenants[id]
	if h == nil {
		return 0
	}
	return sim.Duration(h.quantile(q))
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Count reports how many messages were observed.
func (b *Blame) Count() int64 { return b.rtt.count }

// ECNMarks reports total ECN marks across observed messages.
func (b *Blame) ECNMarks() int64 { return b.ecn }

// Recent returns the retained per-message records, oldest first.
func (b *Blame) Recent() []BlameRec { return b.recent.Snapshot() }

// StageStats reports (messages, total residency) attributed to s.
func (b *Blame) StageStats(s Stage) (count int64, total sim.Duration) {
	return b.stages[s].count, sim.Duration(b.stages[s].sum)
}

// StageQuantile reports an upper bound for stage s's q-th percentile
// residency among messages that spent time in s.
func (b *Blame) StageQuantile(s Stage, q int64) sim.Duration {
	return sim.Duration(b.stages[s].quantile(q))
}

// Top names the stage with the largest total attributed residency —
// the blame verdict. The PFC share (an overlap of fabric.queue) and
// the residual (unattributed by definition) never win.
func (b *Blame) Top() (Stage, sim.Duration) {
	best, bestD := StageResidual, sim.Duration(-1)
	for s := Stage(0); s < StageCount; s++ {
		if s == StagePFCPause || s == StageResidual {
			continue
		}
		if d := sim.Duration(b.stages[s].sum); d > bestD {
			best, bestD = s, d
		}
	}
	if bestD <= 0 {
		return StageResidual, 0
	}
	return best, bestD
}

// share reports stage s's fraction of total round-trip time, percent.
func (b *Blame) share(s Stage) float64 {
	if b.rtt.sum == 0 {
		return 0
	}
	return float64(b.stages[s].sum) / float64(b.rtt.sum) * 100
}

// Table renders the blame report: every stage's message count, total
// residency, share of round-trip time and tail quantiles.
func (b *Blame) Table() string {
	var w strings.Builder
	fmt.Fprintf(&w, "blame report: %d messages, mean RTT %v, %d ECN marks\n",
		b.rtt.count, b.meanRTT(), b.ecn)
	fmt.Fprintf(&w, "%-14s %8s %14s %7s %12s %12s\n", "STAGE", "MSGS", "TOTAL", "SHARE%", "P50", "P99")
	for s := Stage(0); s < StageCount; s++ {
		h := &b.stages[s]
		fmt.Fprintf(&w, "%-14s %8d %14v %7.1f %12v %12v\n",
			s.String(), h.count, sim.Duration(h.sum), b.share(s),
			sim.Duration(h.quantile(50)), sim.Duration(h.quantile(99)))
	}
	top, total := b.Top()
	fmt.Fprintf(&w, "top blame: %s (%v, %.1f%% of round-trip time)\n", top, total, b.share(top))
	return w.String()
}

func (b *Blame) meanRTT() sim.Duration {
	if b.rtt.count == 0 {
		return 0
	}
	return sim.Duration(b.rtt.sum / b.rtt.count)
}

// Summary is the one-line verdict frozen into flight-recorder dumps.
func (b *Blame) Summary() string {
	if b.rtt.count == 0 {
		return "blame: no traced messages"
	}
	top, _ := b.Top()
	return fmt.Sprintf("blame: n=%d top=%s share=%.1f%% p99=%v mean-rtt=%v",
		b.rtt.count, top, b.share(top), b.StageQuantile(top, 99), b.meanRTT())
}

// Digest renders the aggregate as deterministic lines (integer
// nanosecond sums, no floats): the -j determinism fingerprint.
func (b *Blame) Digest() []string {
	out := make([]string, 0, StageCount+1)
	top, _ := b.Top()
	out = append(out, fmt.Sprintf("blame msgs=%d rtt_sum=%d ecn=%d top=%s",
		b.rtt.count, b.rtt.sum, b.ecn, top))
	for s := Stage(0); s < StageCount; s++ {
		h := &b.stages[s]
		out = append(out, fmt.Sprintf("stage %s count=%d sum=%d p99=%d",
			s.String(), h.count, h.sum, h.quantile(99)))
	}
	for _, id := range b.TenantIDs() {
		h := b.tenants[id]
		out = append(out, fmt.Sprintf("tenant %d count=%d rtt_sum=%d p99=%d",
			id, h.count, h.sum, h.quantile(99)))
	}
	return out
}

// WriteJSON emits the aggregate blame report as a JSON object for
// `reproduce -blame out.json`.
func (b *Blame) WriteJSON(w io.Writer) error {
	top, _ := b.Top()
	if _, err := fmt.Fprintf(w, `{"messages":%d,"rtt_sum_ns":%d,"ecn_marks":%d,"top":%q,"stages":[`,
		b.rtt.count, b.rtt.sum, b.ecn, top.String()); err != nil {
		return err
	}
	for s := Stage(0); s < StageCount; s++ {
		h := &b.stages[s]
		sep := ","
		if s == 0 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, `%s{"stage":%q,"count":%d,"sum_ns":%d,"share_pct":%.2f,"p50_ns":%d,"p99_ns":%d}`,
			sep, s.String(), h.count, h.sum, b.share(s), h.quantile(50), h.quantile(99)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}")
	return err
}

// EmitSpans lays one record out on the timeline as Chrome-trace spans:
// a parent "blame.msg" span covering the whole round trip, with one
// child span per non-zero stage tiled left-to-right inside it (the PFC
// share overlaps fabric.queue, so it is skipped to keep the tiling
// exact). Children are clamped to the parent so stage over-attribution
// (overlapping stages on a congested path) never escapes the span.
func (b *Blame) EmitSpans(tl *Timeline, track string, rec *BlameRec) {
	if !tl.Enabled() {
		return
	}
	tl.Complete("blame.msg", track, rec.At, rec.RTT, int64(rec.MsgID))
	end := rec.At.Add(rec.RTT)
	cursor := rec.At
	for s := Stage(0); s < StageCount; s++ {
		if s == StagePFCPause {
			continue
		}
		d := rec.Dur[s]
		if d <= 0 {
			continue
		}
		if cursor.Add(d) > end {
			d = end.Sub(cursor)
		}
		if d <= 0 {
			break
		}
		tl.Complete(s.String(), track, cursor, d, int64(rec.MsgID))
		cursor = cursor.Add(d)
	}
}

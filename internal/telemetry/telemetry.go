package telemetry

import "xrdma/internal/sim"

// Set bundles the telemetry facilities of one engine.
type Set struct {
	Reg    *Registry
	Trace  *Timeline
	Flight *Flight
	Blame  *Blame

	eng *sim.Engine
}

type auxKey struct{}

// For returns the engine's telemetry Set, creating and attaching it on
// first use via the engine's Aux hook. Every layer (fabric, rnic,
// xrdma, bench, cmd tools) resolves the same Set for the same engine,
// and independent engines — one per `-j` worker — share nothing.
func For(eng *sim.Engine) *Set {
	return eng.AuxInit(auxKey{}, func() any {
		s := &Set{
			Reg:    NewRegistry(),
			Trace:  &Timeline{},
			Flight: NewFlight(DefaultFlightCap),
			Blame:  NewBlame(),
			eng:    eng,
		}
		// Invariant-trip dumps carry the blame verdict frozen at the
		// same instant as the event history.
		s.Flight.SetSummary(s.Blame.Summary)
		// The simulation kernel's own vitals, read at snapshot time.
		s.Reg.GaugeFunc("sim.fired", func() int64 { return int64(eng.Fired()) })
		s.Reg.GaugeFunc("sim.pending", func() int64 { return int64(eng.Pending()) })
		return s
	}).(*Set)
}

// Now returns the engine's current simulated time — the timestamp every
// record in this Set is keyed by.
func (s *Set) Now() sim.Time { return s.eng.Now() }

package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"xrdma/internal/sim"
)

func TestRingOverwriteOldest(t *testing.T) {
	r := NewRing[int](4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", r.Cap())
	}
	for i := 0; i < 6; i++ {
		r.Push(i)
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	want := []int{2, 3, 4, 5}
	got := r.Snapshot()
	for i, w := range want {
		if got[i] != w || r.At(i) != w {
			t.Fatalf("element %d = %d/%d, want %d", i, got[i], r.At(i), w)
		}
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("len after reset = %d", r.Len())
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {3, 4}, {4, 4}, {5, 8}, {4096, 4096}} {
		if got := NewRing[byte](tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRegistryHandlesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("b.count")
	g := r.Gauge("a.gauge")
	r.GaugeFunc("c.fn", func() int64 { return 7 })
	h := r.Histogram("d.hist")

	c.Add(3)
	c.Inc()
	g.Set(10)
	g.Add(-2)
	h.Observe(0)
	h.Observe(5) // bucket [4,8): p50 interpolates to 5, p99 hits the edge 7
	h.Observe(5)

	snap := r.Snapshot()
	want := map[string]int64{
		"a.gauge":      8,
		"b.count":      4,
		"c.fn":         7,
		"d.hist.count": 3,
		"d.hist.sum":   10,
		"d.hist.p50":   5,
		"d.hist.p99":   7,
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d: %v", len(snap), len(want), snap)
	}
	for i, e := range snap {
		if i > 0 && snap[i-1].Name >= e.Name {
			t.Errorf("snapshot not sorted: %q before %q", snap[i-1].Name, e.Name)
		}
		if want[e.Name] != e.Value {
			t.Errorf("%s = %d, want %d", e.Name, e.Value, want[e.Name])
		}
	}
	if v, ok := r.Value("b.count"); !ok || v != 4 {
		t.Errorf("Value(b.count) = %d,%v", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("Value(missing) reported ok")
	}
}

func TestRegistrySameNameReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("shared counter = %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind did not panic")
		}
	}()
	r.Gauge("x")
}

func TestRegistryUnregister(t *testing.T) {
	r := NewRegistry()
	r.Counter("keep").Inc()
	r.Counter("drop").Inc()
	r.Unregister("drop")
	r.Unregister("absent") // no-op
	if got := r.Digest(); got != "keep=1\n" {
		t.Fatalf("digest = %q", got)
	}
}

func TestRegistryDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	before := r.Snapshot()
	c.Add(5)
	d := Diff(before, r.Snapshot())
	if len(d) != 1 || d[0].Name != "n" || d[0].Value != 5 {
		t.Fatalf("diff = %v", d)
	}
}

func TestZeroHandlesAreNoOps(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("zero handles retained state")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for i := 0; i < 99; i++ {
		h.Observe(1) // bucket [1,2) → upper bound 1
	}
	h.Observe(1 << 20)
	d := r.get("h", histKind).h
	if p50 := d.quantile(50); p50 != 1 {
		t.Errorf("p50 = %d, want 1", p50)
	}
	if p99 := d.quantile(99); p99 != 1 {
		t.Errorf("p99 = %d, want 1", p99)
	}
	if p100 := d.quantile(100); p100 != (1<<21)-1 {
		t.Errorf("p100 = %d, want %d", p100, (1<<21)-1)
	}
}

func TestTimelineDisabledRecordsNothing(t *testing.T) {
	var tl Timeline
	tl.Instant("x", "t", 0, 0)
	tl.Complete("y", "t", 0, 1, 0)
	if tl.Len() != 0 || tl.Enabled() {
		t.Fatal("disabled timeline recorded events")
	}
}

func TestTimelineJSONIsValidChromeTrace(t *testing.T) {
	var tl Timeline
	tl.Enable(64)
	tl.Instant("dcqcn.cut", "rnic.0", 1500, 42)
	tl.Complete("pfc.pause", "fabric", 1000, 2500, 9)
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// process_name + thread_name ×2 + the two events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d trace events, want 5:\n%s", len(doc.TraceEvents), buf.String())
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["M"] != 3 || phases["i"] != 1 || phases["X"] != 1 {
		t.Fatalf("phase mix = %v", phases)
	}
}

func TestFlightTripNamesCulprit(t *testing.T) {
	f := NewFlight(16)
	f.Record(100, CatFilterDrop, 0, 7, 512, 0)
	f.Record(200, CatRetransmit, 0, 7, 1, 0)
	d := f.Trip(300, CatRetryExhausted, 0, 7)
	if d.Reason != CatRetryExhausted || len(d.Events) != 3 {
		t.Fatalf("dump = %+v", d)
	}
	s := d.String()
	for _, want := range []string{"retransmit.exhausted", "filter.drop", "retransmit", "qpn=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("dump does not name %q:\n%s", want, s)
		}
	}
	if len(f.Dumps()) != 1 {
		t.Fatalf("dumps = %d", len(f.Dumps()))
	}
}

func TestFlightDumpCap(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 12; i++ {
		f.Trip(sim.Time(i), CatWindowStall, 0, 0)
	}
	if len(f.Dumps()) != 8 {
		t.Fatalf("retained %d dumps, want 8", len(f.Dumps()))
	}
	if f.Dumps()[7].At != 11 {
		t.Fatalf("newest dump at %v, want 11", f.Dumps()[7].At)
	}
}

func TestForIsEngineKeyed(t *testing.T) {
	e1, e2 := sim.NewEngine(), sim.NewEngine()
	s1, s2 := For(e1), For(e2)
	if s1 == s2 {
		t.Fatal("distinct engines share a telemetry set")
	}
	if For(e1) != s1 {
		t.Fatal("For is not idempotent per engine")
	}
	e1.After(time1, func() {})
	e1.Run()
	if v, _ := s1.Reg.Value("sim.fired"); v != 1 {
		t.Fatalf("sim.fired = %d, want 1", v)
	}
	if v, _ := s2.Reg.Value("sim.fired"); v != 0 {
		t.Fatalf("other engine's sim.fired = %d, want 0", v)
	}
}

const time1 = sim.Microsecond

func TestCollectorMergedTrace(t *testing.T) {
	col := &Collector{TraceCap: 64}
	e1, e2 := sim.NewEngine(), sim.NewEngine()
	col.Observe(e1, "b.second")
	col.Observe(e2, "a.first")
	For(e1).Trace.Instant("x", "t", 10, 0)
	For(e2).Trace.Instant("y", "t", 20, 0)
	var buf bytes.Buffer
	if err := col.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	obs := col.Observations()
	if obs[0].Label != "a.first" || obs[1].Label != "b.second" {
		t.Fatalf("observations not sorted by label: %v", obs)
	}
	// 2 process_name + 2 thread_name + 2 events.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d trace events, want 6:\n%s", len(doc.TraceEvents), buf.String())
	}
}

func TestZeroAllocHotPaths(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	var tl Timeline
	tl.Enable(1024)
	f := NewFlight(256)

	check := func(name string, fn func()) {
		t.Helper()
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", name, allocs)
		}
	}
	check("Counter.Add", func() { c.Add(1) })
	check("Histogram.Observe", func() { h.Observe(1234) })
	check("Timeline.Instant", func() { tl.Instant("n", "t", 1, 2) })
	check("Timeline.Complete", func() { tl.Complete("n", "t", 1, 2, 3) })
	check("Flight.Record", func() { f.Record(1, CatRetransmit, 0, 1, 2, 3) })
}

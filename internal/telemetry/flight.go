package telemetry

import (
	"fmt"
	"strings"

	"xrdma/internal/sim"
)

// Category classifies flight-recorder events. Categories are small
// integers so recording stays allocation-free; String renders the
// protocol-level name a dump shows the operator.
type Category uint8

// Flight-recorder event categories, covering the Table II bug classes
// (drop, slow-op, leak, fallback) and the protocol invariants whose
// breach trips an automatic dump.
const (
	CatNone Category = iota
	CatFilterDrop
	CatSlowOp
	CatSlowPoll
	CatKeepaliveProbe
	CatKeepaliveFail
	CatMockSwitch
	CatRNRNakSent
	CatRNRNakRecv
	CatRNRStorm
	CatRetransmit
	CatRetryExhausted
	CatWindowStall
	CatDCQCNCut
	CatPFCPause
	CatQPState
	CatQPError
	CatReqTimeout
	CatChannelDegraded
	CatChannelRecovered
	CatFailback
	CatChaosFault
	CatChaosHeal
	CatCorruptDrop
	CatPathVerdict
	CatPathRehash
	CatReqRetry
	CatRemoteAccess
	CatTenantBudget
	CatTenantShed
	CatMemPressure
	CatVerMismatch
	CatDrain
	catCount
)

var catNames = [catCount]string{
	CatNone:             "none",
	CatFilterDrop:       "filter.drop",
	CatSlowOp:           "slow.op",
	CatSlowPoll:         "slow.poll",
	CatKeepaliveProbe:   "keepalive.probe",
	CatKeepaliveFail:    "keepalive.fail",
	CatMockSwitch:       "mock.switch",
	CatRNRNakSent:       "rnr.nak.sent",
	CatRNRNakRecv:       "rnr.nak.recv",
	CatRNRStorm:         "rnr.storm",
	CatRetransmit:       "retransmit",
	CatRetryExhausted:   "retransmit.exhausted",
	CatWindowStall:      "window.stall",
	CatDCQCNCut:         "dcqcn.cut",
	CatPFCPause:         "pfc.pause",
	CatQPState:          "qp.state",
	CatQPError:          "qp.error",
	CatReqTimeout:       "req.timeout",
	CatChannelDegraded:  "ch.degraded",
	CatChannelRecovered: "ch.recovered",
	CatFailback:         "ch.failback",
	CatChaosFault:       "chaos.fault",
	CatChaosHeal:        "chaos.heal",
	CatCorruptDrop:      "corrupt.drop",
	CatPathVerdict:      "path.verdict",
	CatPathRehash:       "path.rehash",
	CatReqRetry:         "req.retry",
	CatRemoteAccess:     "remote.access",
	CatTenantBudget:     "tenant.budget",
	CatTenantShed:       "tenant.shed",
	CatMemPressure:      "mem.pressure",
	CatVerMismatch:      "ver.mismatch",
	CatDrain:            "drain",
}

func (c Category) String() string {
	if int(c) < len(catNames) && catNames[c] != "" {
		return catNames[c]
	}
	return fmt.Sprintf("cat(%d)", uint8(c))
}

// FlightEvent is one fixed-size flight-recorder record. A and B carry
// category-specific detail (sizes, rates, states).
type FlightEvent struct {
	At   sim.Time
	Cat  Category
	Node int32
	QPN  uint32
	A, B int64
}

// Dump is a frozen copy of the recorder taken when an invariant
// tripped.
type Dump struct {
	Reason Category
	Note   string // optional, set by ForceDump
	At     sim.Time
	Node   int32
	QPN    uint32
	Blame  string // blame verdict frozen at dump time (see Flight.SetSummary)
	Events []FlightEvent
}

// String renders the dump with category names so the log names the
// culprit: the reason line first, then the recorded history
// oldest-first.
func (d *Dump) String() string {
	var b strings.Builder
	reason := d.Reason.String()
	if d.Note != "" {
		reason = d.Note
	}
	fmt.Fprintf(&b, "flight dump: reason=%s node=%d qpn=%d at=%v (%d events)\n",
		reason, d.Node, d.QPN, d.At, len(d.Events))
	if d.Blame != "" {
		fmt.Fprintf(&b, "  %s\n", d.Blame)
	}
	for _, e := range d.Events {
		fmt.Fprintf(&b, "  %12v %-20s node=%-3d qpn=%-6d a=%-10d b=%d\n",
			e.At, e.Cat.String(), e.Node, e.QPN, e.A, e.B)
	}
	return b.String()
}

// Flight is an always-on last-N-events recorder. Record is cheap enough
// to leave enabled everywhere; Trip freezes the history the moment a
// protocol invariant breaks.
type Flight struct {
	ring     *Ring[FlightEvent]
	dumps    []Dump
	maxDumps int
	summary  func() string
}

// SetSummary installs a callback evaluated at freeze time; its result
// is stored in the dump so the dump carries the state of the world —
// e.g. the blame verdict — at the instant the invariant tripped.
func (f *Flight) SetSummary(fn func() string) { f.summary = fn }

// DefaultFlightCap is the per-engine flight-recorder depth.
const DefaultFlightCap = 256

// NewFlight creates a recorder keeping the last capacity events and up
// to 8 dumps.
func NewFlight(capacity int) *Flight {
	return &Flight{ring: NewRing[FlightEvent](capacity), maxDumps: 8}
}

// Record appends one event, overwriting the oldest when full.
func (f *Flight) Record(at sim.Time, cat Category, node int32, qpn uint32, a, b int64) {
	f.ring.Push(FlightEvent{At: at, Cat: cat, Node: node, QPN: qpn, A: a, B: b})
}

// Trip records the breach itself, then freezes the recorder contents
// into a new Dump (keeping at most the last maxDumps dumps) and returns
// it.
func (f *Flight) Trip(at sim.Time, reason Category, node int32, qpn uint32) *Dump {
	f.Record(at, reason, node, qpn, 0, 0)
	return f.freeze(Dump{Reason: reason, At: at, Node: node, QPN: qpn})
}

// ForceDump freezes the recorder on demand (manual drills, tooling).
func (f *Flight) ForceDump(at sim.Time, note string) *Dump {
	return f.freeze(Dump{Reason: CatNone, Note: note, At: at})
}

func (f *Flight) freeze(d Dump) *Dump {
	d.Events = f.ring.Snapshot()
	if f.summary != nil {
		d.Blame = f.summary()
	}
	if len(f.dumps) >= f.maxDumps {
		copy(f.dumps, f.dumps[1:])
		f.dumps = f.dumps[:len(f.dumps)-1]
	}
	f.dumps = append(f.dumps, d)
	return &f.dumps[len(f.dumps)-1]
}

// Dumps returns the retained dumps, oldest first.
func (f *Flight) Dumps() []Dump { return f.dumps }

// Len reports live events currently in the ring.
func (f *Flight) Len() int { return f.ring.Len() }

package telemetry

import "testing"

// The telemetry hot paths share the kernel's allocation discipline:
// scripts/bench.sh records these in BENCH_kernel.json and the CI bench
// smoke step fails the build if any reports >0 allocs/op.

func BenchmarkTelemetryCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkTelemetryHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkTelemetrySpanEmit(b *testing.B) {
	var tl Timeline
	tl.Enable(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Complete("rtt", "xrdma.0", 1000, 7165, int64(i))
	}
}

func BenchmarkTelemetryInstantEmit(b *testing.B) {
	var tl Timeline
	tl.Enable(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Instant("dcqcn.cut", "rnic.0", 1000, int64(i))
	}
}

func BenchmarkTelemetryBlameObserve(b *testing.B) {
	bl := NewBlame()
	rec := BlameRec{MsgID: 1, RTT: 7165}
	rec.Dur[StageSerialize] = 500
	rec.Dur[StageFabricQueue] = 3000
	rec.Dur[StageResidual] = 3665
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.MsgID = uint64(i)
		bl.Observe(&rec)
	}
}

func BenchmarkTelemetryFlightRecord(b *testing.B) {
	f := NewFlight(DefaultFlightCap)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Record(1000, CatRetransmit, 0, 7, int64(i), 0)
	}
}

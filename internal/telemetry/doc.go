// Package telemetry is the cross-layer observability subsystem: a
// metrics registry (counters, gauges, log₂-bucket histograms), a
// timeline tracer exportable as Chrome trace_event JSON, and an
// always-on flight recorder dumped when a protocol invariant trips.
//
// State is engine-keyed: telemetry.For(eng) attaches one Set per
// sim.Engine through Engine.Aux, so concurrent experiments share
// nothing and a parallel reproduce run stays bit-identical.
//
// Determinism contract: telemetry is entirely passive. It never
// schedules engine events and never consumes random numbers — it only
// reads and writes plain fields — so golden-seed results are unchanged
// whether the tracer is enabled or not. Hot-path entry points
// (Counter.Add, Histogram.Observe, Timeline.Instant/Complete,
// Flight.Record) are allocation-free: handles are pre-resolved at
// registration time and rings are pre-sized, so no map lookup or heap
// growth happens per event.
package telemetry

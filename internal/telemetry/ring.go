package telemetry

// Ring is a bounded overwrite-oldest ring buffer. Capacity is rounded
// up to a power of two and allocated once, so Push never grows the
// backing array: when full, the oldest element is dropped and counted.
type Ring[T any] struct {
	buf        []T
	head, tail uint64 // monotonic; live window is [head, tail)
}

// NewRing creates a ring holding at least capacity elements (rounded up
// to a power of two, minimum 1).
func NewRing[T any](capacity int) *Ring[T] {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{buf: make([]T, n)}
}

// Push appends v, overwriting the oldest element when full.
func (r *Ring[T]) Push(v T) {
	if r.tail-r.head == uint64(len(r.buf)) {
		r.head++
	}
	r.buf[r.tail&uint64(len(r.buf)-1)] = v
	r.tail++
}

// Len reports the number of live elements.
func (r *Ring[T]) Len() int { return int(r.tail - r.head) }

// Cap reports the fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Dropped reports how many elements were overwritten before being read.
func (r *Ring[T]) Dropped() uint64 { return r.head }

// At returns the i-th live element, 0 being the oldest.
func (r *Ring[T]) At(i int) T {
	return r.buf[(r.head+uint64(i))&uint64(len(r.buf)-1)]
}

// AppendTo appends the live elements to dst, oldest first.
func (r *Ring[T]) AppendTo(dst []T) []T {
	for i := r.head; i < r.tail; i++ {
		dst = append(dst, r.buf[i&uint64(len(r.buf)-1)])
	}
	return dst
}

// Snapshot returns the live elements oldest-first in a fresh slice.
func (r *Ring[T]) Snapshot() []T {
	if r.Len() == 0 {
		return nil
	}
	return r.AppendTo(make([]T, 0, r.Len()))
}

// Reset empties the ring without releasing the buffer.
func (r *Ring[T]) Reset() { r.head, r.tail = 0, 0 }

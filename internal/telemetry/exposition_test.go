package telemetry

import (
	"bufio"
	"bytes"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Within-bucket interpolation must track the exact quantiles of a known
// distribution far better than the old bucket-upper-bound answer, and
// must stay deterministic (pure integer math). The distribution is
// uniform 0..4095: every log₂ bucket above 2^k is exactly half full of
// the range it covers, so the exact quantile is computable in closed
// form and the interpolated answer should land on it (the per-bucket
// rank model is exact for uniform data).
func TestQuantileInterpolationUniform(t *testing.T) {
	var d histData
	const n = 4096
	for v := int64(0); v < n; v++ {
		idx := 0
		if v > 0 {
			idx = len(strconv.FormatInt(v, 2)) // bits.Len for positive v
		}
		d.buckets[idx]++
		d.count++
		d.sum += v
	}
	// Exact q-th percentile of sorted 0..4095 at target rank ⌈n·q/100⌉
	// is the value target-1.
	for _, q := range []int64{25, 50, 75, 90, 99, 100} {
		target := (d.count*q + 99) / 100
		exact := target - 1
		got := d.quantile(q)
		if got != exact {
			t.Errorf("p%d = %d, want exact %d", q, got, exact)
		}
	}
	// Repeatability: the estimate must be bit-identical across calls.
	if a, b := d.quantile(99), d.quantile(99); a != b {
		t.Fatalf("quantile not deterministic: %d vs %d", a, b)
	}
}

// The interpolated estimate degrades gracefully on non-uniform data: it
// must stay within the crossing bucket's [lo, hi] range, and the old
// behaviour (bucket upper bound) must remain the boundary case when the
// rank lands on the bucket's last sample.
func TestQuantileInterpolationBounds(t *testing.T) {
	var d histData
	for i := 0; i < 99; i++ {
		d.buckets[1]++ // value 1
		d.count++
		d.sum++
	}
	d.buckets[21]++ // one sample in [2^20, 2^21)
	d.count++
	d.sum += 1 << 20
	if p50 := d.quantile(50); p50 != 1 {
		t.Errorf("p50 = %d, want 1", p50)
	}
	if p100 := d.quantile(100); p100 != (1<<21)-1 {
		t.Errorf("p100 = %d, want upper edge %d (single-sample bucket)", p100, (1<<21)-1)
	}
}

// WritePrometheus must emit log₂ histograms as native histogram
// families. The test scrapes the exposition and re-parses it line by
// line: cumulative le buckets must be monotonic, the +Inf bucket must
// equal _count, and _sum/_count must match the observations.
func TestPrometheusHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("xrdma.0.rtt_ns")
	var wantSum, wantCount int64
	for _, v := range []int64{0, 1, 3, 3, 7, 100, 1000, 1000, 4000} {
		h.Observe(v)
		wantSum += v
		wantCount++
	}
	r.Counter("xrdma.0.polls").Add(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	if !strings.Contains(expo, "# TYPE xrdma_0_rtt_ns histogram") {
		t.Fatalf("exposition lacks native histogram TYPE line:\n%s", expo)
	}

	// Re-parse: collect every sample line of the histogram family.
	type bkt struct {
		le  string
		cum int64
	}
	var bkts []bkt
	var gotSum, gotCount int64
	var haveSum, haveCount bool
	sc := bufio.NewScanner(strings.NewReader(expo))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		switch {
		case strings.HasPrefix(fields[0], "xrdma_0_rtt_ns_bucket{le="):
			le := strings.TrimSuffix(strings.TrimPrefix(fields[0], `xrdma_0_rtt_ns_bucket{le="`), `"}`)
			bkts = append(bkts, bkt{le, v})
		case fields[0] == "xrdma_0_rtt_ns_sum":
			gotSum, haveSum = v, true
		case fields[0] == "xrdma_0_rtt_ns_count":
			gotCount, haveCount = v, true
		}
	}
	if !haveSum || !haveCount {
		t.Fatalf("exposition lacks _sum/_count:\n%s", expo)
	}
	if gotSum != wantSum || gotCount != wantCount {
		t.Fatalf("sum/count = %d/%d, want %d/%d", gotSum, gotCount, wantSum, wantCount)
	}
	if len(bkts) < 2 || bkts[len(bkts)-1].le != "+Inf" {
		t.Fatalf("bucket list must end with +Inf: %v", bkts)
	}
	if bkts[len(bkts)-1].cum != wantCount {
		t.Fatalf("+Inf bucket = %d, want count %d", bkts[len(bkts)-1].cum, wantCount)
	}
	prev := int64(-1)
	var edges []int64
	for _, b := range bkts[:len(bkts)-1] {
		if b.cum < prev {
			t.Fatalf("cumulative buckets not monotonic: %v", bkts)
		}
		prev = b.cum
		e, err := strconv.ParseInt(b.le, 10, 64)
		if err != nil {
			t.Fatalf("non-numeric le %q", b.le)
		}
		edges = append(edges, e)
	}
	if !sort.SliceIsSorted(edges, func(i, j int) bool { return edges[i] < edges[j] }) {
		t.Fatalf("le edges not ascending: %v", edges)
	}
	// Cross-check one cumulative value against the raw observations:
	// le="7" must cover {0,1,3,3,7} = 5 samples.
	found := false
	for _, b := range bkts {
		if b.le == "7" {
			found = true
			if b.cum != 5 {
				t.Fatalf(`le="7" cumulative = %d, want 5`, b.cum)
			}
		}
	}
	if !found {
		t.Fatalf(`exposition lacks the le="7" bucket: %v`, bkts)
	}
	// The exposition is deterministic.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != expo {
		t.Fatal("exposition not deterministic across calls")
	}
}

// Probe handles must read every metric kind, survive GaugeFunc
// re-registration (same slot, replaced fn), and go stale only through
// Unregister — exactly the contract the xrmon agents rely on.
func TestProbeHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(7)
	live := int64(3)
	r.GaugeFunc("g", func() int64 { return live })
	h := r.Histogram("h")
	h.Observe(1)
	h.Observe(2)

	for _, tc := range []struct {
		name string
		want int64
	}{{"c", 7}, {"g", 3}, {"h", 2}} {
		p, ok := r.Probe(tc.name)
		if !ok || !p.Valid() {
			t.Fatalf("Probe(%q) did not resolve", tc.name)
		}
		if got := p.Value(); got != tc.want {
			t.Fatalf("Probe(%q).Value() = %d, want %d", tc.name, got, tc.want)
		}
	}

	// GaugeFunc re-registration replaces fn on the same slot: old probes
	// must see the new closure.
	p, _ := r.Probe("g")
	r.GaugeFunc("g", func() int64 { return 42 })
	if got := p.Value(); got != 42 {
		t.Fatalf("probe missed GaugeFunc re-registration: %d, want 42", got)
	}

	if p, ok := r.Probe("missing"); ok || p.Valid() || p.Value() != 0 {
		t.Fatal("absent probe must be invalid and read 0")
	}
}

// The interpolation shows up in Snapshot's derived .p50/.p99 entries.
func TestSnapshotQuantilesInterpolated(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for v := int64(0); v < 1024; v++ {
		h.Observe(v)
	}
	var p50 int64
	for _, e := range r.Snapshot() {
		if e.Name == "lat.p50" {
			p50 = e.Value
		}
	}
	if p50 != 511 {
		t.Fatalf("lat.p50 = %d, want interpolated 511 (old coarse answer was %d)", p50, int64(1)<<9*2-1)
	}
}

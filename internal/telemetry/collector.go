package telemetry

import (
	"io"
	"sort"
	"sync"

	"xrdma/internal/sim"
)

// DefaultTraceCap bounds each observed engine's timeline ring. A full
// reproduce run creates dozens of engines and a busy engine can emit an
// event per message hop, so rings are truncated at this cap (oldest
// events overwritten, drop count reported) rather than growing into a
// multi-gigabyte timeline.
const DefaultTraceCap = 1 << 16

// Observation pairs an engine's telemetry Set with the experiment label
// it was created under.
type Observation struct {
	Label string
	Set   *Set
}

// Collector gathers the telemetry Sets of every engine an experiment
// run creates. Observe is safe to call from concurrent `-j` workers;
// everything it collects is read only after the run completes.
type Collector struct {
	// TraceCap, when positive, enables each observed engine's timeline
	// with a ring of this capacity.
	TraceCap int

	mu  sync.Mutex
	obs []Observation
}

// Observe registers an engine under label. Matches the bench.Scale
// Observe hook signature; call it right after creating an engine,
// before the workload runs, so the timeline catches everything.
func (c *Collector) Observe(eng *sim.Engine, label string) {
	s := For(eng)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.TraceCap > 0 && !s.Trace.Enabled() {
		s.Trace.Enable(c.TraceCap)
	}
	c.obs = append(c.obs, Observation{Label: label, Set: s})
}

// Observations returns the collected sets sorted by label, so output
// order is independent of `-j` scheduling.
func (c *Collector) Observations() []Observation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Observation, len(c.obs))
	copy(out, c.obs)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// WriteTrace merges every observed timeline into one Chrome trace_event
// JSON document: one pid per observation, process_name metadata set to
// its label. Load the file in chrome://tracing or Perfetto.
func (c *Collector) WriteTrace(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	for i, o := range c.Observations() {
		first = o.Set.Trace.writeJSONEvents(w, i+1, o.Label, first)
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ns\"}\n")
	return err
}

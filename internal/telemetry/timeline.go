package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"xrdma/internal/sim"
)

// Event kinds, mirroring the Chrome trace_event phases they export as.
const (
	KindInstant  byte = 'i' // a point in time
	KindComplete byte = 'X' // a span with start + duration
)

// Event is one timeline record. Name and Track should be static strings
// (or strings interned once at registration) so recording never
// allocates.
type Event struct {
	Name  string
	Track string
	At    sim.Time
	Dur   sim.Duration
	Arg   int64
	Kind  byte
}

// Timeline records structured spans and instant events in a bounded
// ring. It is disabled (a single branch per call, no work) until Enable
// is invoked — how a trace-capable build keeps golden-seed runs
// bit-identical with sampling off.
type Timeline struct {
	enabled bool
	ring    *Ring[Event]
}

// Enabled reports whether events are being recorded.
func (t *Timeline) Enabled() bool { return t.enabled }

// Enable starts recording into a ring of at least capacity events
// (rounded up to a power of two). When the ring fills, the oldest
// events are overwritten and counted as dropped.
func (t *Timeline) Enable(capacity int) {
	t.ring = NewRing[Event](capacity)
	t.enabled = true
}

// Disable stops recording; the ring contents remain exportable.
func (t *Timeline) Disable() { t.enabled = false }

// Instant records a point event on track at time at.
func (t *Timeline) Instant(name, track string, at sim.Time, arg int64) {
	if !t.enabled {
		return
	}
	t.ring.Push(Event{Name: name, Track: track, At: at, Arg: arg, Kind: KindInstant})
}

// Complete records a span that started at start and lasted dur.
func (t *Timeline) Complete(name, track string, start sim.Time, dur sim.Duration, arg int64) {
	if !t.enabled {
		return
	}
	t.ring.Push(Event{Name: name, Track: track, At: start, Dur: dur, Kind: KindComplete, Arg: arg})
}

// Len reports recorded events currently held.
func (t *Timeline) Len() int {
	if t.ring == nil {
		return 0
	}
	return t.ring.Len()
}

// Dropped reports events overwritten after the ring filled.
func (t *Timeline) Dropped() uint64 {
	if t.ring == nil {
		return 0
	}
	return t.ring.Dropped()
}

// Events returns the recorded events oldest-first.
func (t *Timeline) Events() []Event {
	if t.ring == nil {
		return nil
	}
	return t.ring.Snapshot()
}

// writeJSONEvents emits the timeline's events as Chrome trace_event
// objects (without the surrounding array) for process id pid, preceded
// by process/thread metadata. first says whether the caller has emitted
// no array elements yet; the updated value is returned. Timestamps are
// simulated time in microseconds. Tracks map to thread ids in
// sorted-name order so output is deterministic.
func (t *Timeline) writeJSONEvents(w io.Writer, pid int, process string, first bool) bool {
	evs := t.Events()
	if len(evs) == 0 {
		return first
	}
	tracks := map[string]int{}
	var names []string
	for _, e := range evs {
		if _, ok := tracks[e.Track]; !ok {
			tracks[e.Track] = 0
			names = append(names, e.Track)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		tracks[n] = i + 1
	}
	comma := func() {
		if first {
			first = false
			return
		}
		io.WriteString(w, ",\n")
	}
	comma()
	fmt.Fprintf(w, `  {"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, pid, process)
	for _, n := range names {
		comma()
		fmt.Fprintf(w, `  {"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`, pid, tracks[n], n)
	}
	for _, e := range evs {
		comma()
		ts := float64(e.At) / 1e3
		switch e.Kind {
		case KindComplete:
			fmt.Fprintf(w, `  {"name":%q,"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"v":%d}}`,
				e.Name, pid, tracks[e.Track], ts, float64(e.Dur)/1e3, e.Arg)
		default:
			fmt.Fprintf(w, `  {"name":%q,"ph":"i","pid":%d,"tid":%d,"ts":%.3f,"s":"t","args":{"v":%d}}`,
				e.Name, pid, tracks[e.Track], ts, e.Arg)
		}
	}
	return first
}

// WriteJSON emits this timeline alone as a complete Chrome trace_event
// JSON document (the {"traceEvents": [...]} object form).
func (t *Timeline) WriteJSON(w io.Writer, process string) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	t.writeJSONEvents(w, 1, process, true)
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ns\"}\n")
	return err
}

// EventCountByName tallies recorded events per name — a test helper for
// asserting that specific protocol moments (pfc.pause, dcqcn.cut, …)
// made it onto the timeline.
func (t *Timeline) EventCountByName() map[string]int {
	out := map[string]int{}
	for _, e := range t.Events() {
		out[e.Name]++
	}
	return out
}

// String summarises the timeline for debugging.
func (t *Timeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %d events (%d dropped)\n", t.Len(), t.Dropped())
	return b.String()
}

package xrdma

import (
	"errors"
	"fmt"
	"sort"

	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// The tenancy plane (RDMAvisor-style "RDMA as a service"): channels carry
// a tenant label, and every shared resource of the context — the send
// window, the wire rate, the shared-QP send queue, the registered-memory
// pool — is partitioned per tenant so an elephant cannot starve a
// latency-sensitive neighbor. A context with no Config.Tenants runs the
// legacy single-implicit-tenant plane, byte-identical on the wire and
// event-identical in the engine.

// ErrUnknownTenant rejects ChannelTo(WithTenant) against a name missing
// from Config.Tenants.
var ErrUnknownTenant = errors.New("xrdma: unknown tenant")

// Tenant is the runtime state of one declared tenant: QoS limits, shed
// state, memory accounting and counters. Counter fields are exported for
// XR-Stat and experiments; they are written only on the engine goroutine.
type Tenant struct {
	id    uint16
	cfg   TenantConfig
	ctx   *Context
	label [8]byte

	// Token bucket (RateBps): lazily refilled from engine-time deltas;
	// one refill event is armed only while a sender is actually throttled.
	tokens      float64
	lastRefill  sim.Time
	refillArmed bool

	// Send-window partition (SendWindow): windowed frames in flight
	// across all of the tenant's channels.
	inflight int

	// Channels stalled on the rate bucket or the window partition, FIFO.
	waiters []*Channel

	// Shed ladder: until shedUntil, new attaches from this tenant are
	// queued instead of started.
	shedUntil   sim.Time
	shedExpArmd bool

	// Block-rounded registered-memory footprint (MemBudget accounting).
	memUsed int64

	// Counters.
	Sent        int64 // windowed frames transmitted
	Recvd       int64 // windowed frames received
	TxBytes     int64 // wire bytes transmitted
	RxBytes     int64 // payload bytes received
	RateStalls  int64 // pump stalls on the token bucket
	WinStalls   int64 // pump stalls on the window partition
	MemRejects  int64 // allocations rejected with ErrTenantBudget
	Sheds       int64 // shed episodes started
	AttachSheds int64 // attaches queued by the shed ladder
	DRRQueued   int64 // frames that waited in a DRR queue
	RTTCount    int64 // delivered responses (blame/latency dimension)
	RTTSumNs    int64
}

// ID returns the tenant's wire id (index into Config.Tenants + 1).
func (t *Tenant) ID() uint16 { return t.id }

// Name returns the tenant's configured name.
func (t *Tenant) Name() string { return t.cfg.Name }

// MemUsed reports the tenant's block-rounded pool footprint.
func (t *Tenant) MemUsed() int64 { return t.memUsed }

// Shedding reports whether the tenant is inside a shed episode.
func (t *Tenant) Shedding() bool {
	return t.ctx.eng.Now() < t.shedUntil
}

// initTenants builds the tenant table from Config.Tenants and registers
// the per-tenant gauge family. Called from NewContext only when the
// table is non-empty, so zero-tenant contexts carry none of this.
func (c *Context) initTenants() {
	c.tenantByName = make(map[string]*Tenant, len(c.cfg.Tenants))
	for i, tc := range c.cfg.Tenants {
		if tc.Weight <= 0 {
			tc.Weight = 1
		}
		if tc.RateBps > 0 && tc.BurstBytes <= 0 {
			tc.BurstBytes = tc.RateBps / 100
			if tc.BurstBytes < 64<<10 {
				tc.BurstBytes = 64 << 10
			}
		}
		t := &Tenant{id: uint16(i + 1), cfg: tc, ctx: c, tokens: float64(tc.BurstBytes)}
		copy(t.label[:], tc.Name)
		c.tenants = append(c.tenants, t)
		c.tenantByName[tc.Name] = t
		c.registerTenantGauges(t)
	}
}

// registerTenantGauges publishes one gauge row family per tenant under
// "<track>.tenant.<id>.<field>" — the same registry the Prometheus
// exposition and the XR-Stat TENANT table read.
func (c *Context) registerTenantGauges(t *Tenant) {
	reg := c.tel.Reg
	prefix := fmt.Sprintf("%s.tenant.%d.", c.track, t.id)
	for _, g := range []struct {
		name string
		fn   func() int64
	}{
		{"weight", func() int64 { return int64(t.cfg.Weight) }},
		{"sent", func() int64 { return t.Sent }},
		{"recv", func() int64 { return t.Recvd }},
		{"txbytes", func() int64 { return t.TxBytes }},
		{"rxbytes", func() int64 { return t.RxBytes }},
		{"inflight", func() int64 { return int64(t.inflight) }},
		{"rate_stalls", func() int64 { return t.RateStalls }},
		{"win_stalls", func() int64 { return t.WinStalls }},
		{"mem_used", func() int64 { return t.memUsed }},
		{"mem_budget", func() int64 { return t.cfg.MemBudget }},
		{"mem_rejects", func() int64 { return t.MemRejects }},
		{"sheds", func() int64 { return t.Sheds }},
		{"attach_sheds", func() int64 { return t.AttachSheds }},
		{"drr_queued", func() int64 { return t.DRRQueued }},
		{"rtt_count", func() int64 { return t.RTTCount }},
		{"rtt_sum_ns", func() int64 { return t.RTTSumNs }},
	} {
		reg.GaugeFunc(prefix+g.name, g.fn)
	}
}

// Tenant resolves a configured tenant by name (nil if absent).
func (c *Context) Tenant(name string) *Tenant { return c.tenantByName[name] }

// Tenants returns the tenant table in id order.
func (c *Context) Tenants() []*Tenant { return c.tenants }

// tenantByID resolves a wire tenant id (nil when out of table).
func (c *Context) tenantByID(id uint16) *Tenant {
	if id == 0 || int(id) > len(c.tenants) {
		return nil
	}
	return c.tenants[id-1]
}

// tenantByLabel resolves a wire label against the local table; used when
// the peer's numeric id does not line up (foreign or re-ordered tables).
func (c *Context) tenantByLabel(label [8]byte) *Tenant {
	for _, t := range c.tenants {
		if t.label == label {
			return t
		}
	}
	return nil
}

// resolveTenant binds an inbound frame's tenant identity: the numeric id
// when both tables agree (the id's label matches), the label otherwise.
// A label naming no local tenant counts and degrades to untenanted.
func (c *Context) resolveTenant(h *wireHdr) *Tenant {
	if t := c.tenantByID(h.Tenant); t != nil && t.label == h.TLabel {
		return t
	}
	if t := c.tenantByLabel(h.TLabel); t != nil {
		return t
	}
	c.tenantUnknown++
	return nil
}

// ChannelOpt configures a channel at creation (ChannelTo).
type ChannelOpt func(*Channel) error

// WithTenant labels the channel with a configured tenant; the label is
// carried to the passive side on CHAN_OPEN (mux) or the first data frame.
func WithTenant(name string) ChannelOpt {
	return func(ch *Channel) error {
		t := ch.ctx.tenantByName[name]
		if t == nil {
			return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
		}
		ch.tenant = t
		return nil
	}
}

// BindTenant labels an already-created channel (classic Connect path,
// which has no option plumbing). It must run before the first send.
func (ch *Channel) BindTenant(name string) error {
	t := ch.ctx.tenantByName[name]
	if t == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	ch.tenant = t
	return nil
}

// TenantOf returns the channel's tenant (nil when unlabelled).
func (ch *Channel) TenantOf() *Tenant { return ch.tenant }

// ---------------------------------------------------------------------------
// Shed ladder: budget breaches and global memory pressure shed *new*
// attaches (admission FIFO reuse) while established traffic is merely
// backpressured — graceful degradation, never collapse.

// noteBudgetReject records an ErrTenantBudget rejection and starts (or
// extends) a shed episode. The first breach of an episode trips a flight
// dump naming the culprit tenant in the QPN field.
func (t *Tenant) noteBudgetReject(want int64) {
	t.MemRejects++
	c := t.ctx
	now := c.eng.Now()
	c.tel.Flight.Record(now, telemetry.CatTenantBudget, int32(c.Node()), uint32(t.id), t.memUsed+want, t.cfg.MemBudget)
	cool := c.cfg.TenantShedCooldown
	if cool <= 0 {
		return
	}
	if now >= t.shedUntil {
		t.Sheds++
		t.shedUntil = now.Add(cool)
		c.tel.Flight.Trip(now, telemetry.CatTenantShed, int32(c.Node()), uint32(t.id))
		c.logf("tenant %q over memory budget (%d+%d > %d): shedding new attaches for %v",
			t.cfg.Name, t.memUsed, want, t.cfg.MemBudget, cool)
	} else {
		t.shedUntil = now.Add(cool)
	}
	t.armShedExpiry()
}

// armShedExpiry schedules the un-shed kick; breaches extending the
// episode re-arm from the callback so one event is live at a time.
func (t *Tenant) armShedExpiry() {
	if t.shedExpArmd {
		return
	}
	t.shedExpArmd = true
	c := t.ctx
	c.eng.AfterBg(t.shedUntil.Sub(c.eng.Now()), func() {
		t.shedExpArmd = false
		if c.eng.Now() < t.shedUntil {
			t.armShedExpiry() // episode was extended meanwhile
			return
		}
		c.logf("tenant %q shed episode over", t.cfg.Name)
		c.attachKick()
	})
}

// shedGated reports whether this channel's attach must queue: its tenant
// is shedding, or the whole context is under memory pressure.
func (ch *Channel) shedGated() bool {
	if ch.ctx.memPressure {
		return true
	}
	return ch.tenant != nil && ch.tenant.Shedding()
}

// attachKick re-examines the admission FIFO after a shed episode or the
// global memory pressure clears: queued heads whose gate lifted start
// their attach, bounded by AttachAdmission as usual. One bounded pass —
// still-gated channels rotate to the tail and wait for the next kick.
func (c *Context) attachKick() {
	n := len(c.attachQ)
	for i := 0; i < n && len(c.attachQ) > 0; i++ {
		if lim := c.cfg.AttachAdmission; lim > 0 && c.attachActive >= lim {
			return
		}
		next := c.attachQ[0]
		c.attachQ = c.attachQ[1:]
		if next.closed || next.attach != attachQueued {
			continue
		}
		if next.shedGated() {
			c.attachQ = append(c.attachQ, next)
			continue
		}
		next.startAttach()
	}
}

// setMemPressure flips the context's global memory-pressure gate
// (watermarks over MemPoolBytes). Onset trips a flight dump naming the
// heaviest tenant; clearing kicks the attach FIFO.
func (c *Context) setMemPressure(on bool) {
	if c.memPressure == on {
		return
	}
	c.memPressure = on
	now := c.eng.Now()
	if on {
		culprit := uint32(0)
		var worst int64 = -1
		for _, t := range c.tenants {
			if t.memUsed > worst {
				worst, culprit = t.memUsed, uint32(t.id)
			}
		}
		c.tel.Flight.Trip(now, telemetry.CatMemPressure, int32(c.Node()), culprit)
		c.logf("memory pressure: pool %d/%d bytes, shedding new attaches", c.Mem.PoolInUseBytes, c.cfg.MemPoolBytes)
	} else {
		c.tel.Flight.Record(now, telemetry.CatMemPressure, int32(c.Node()), 0, 0, 0)
		c.logf("memory pressure cleared")
		c.attachKick()
	}
}

// ---------------------------------------------------------------------------
// Weighted deficit-round-robin at the shared SQ. A muxQP in a tenanted
// context owns one sqSched: below the burst the frame posts directly
// (the NIC pipeline arbitrates), above it frames queue per tenant and
// drain on send completions, quantum × weight per round. Per-channel
// FIFO is preserved — a channel's frames all sit in one tenant queue.

type sqItem struct {
	ch *Channel
	qp *rnic.QP
	wr *rnic.SendWR
	cb func(rnic.CQE)
}

type tenantSQ struct {
	items   []sqItem
	deficit int64
}

type sqSched struct {
	c       *Context
	qpn     func() uint32 // current QPN for telemetry (tracks adoption)
	burst   int
	quantum int64
	gen     uint64 // bumped on reset so stale completions don't drain
	pending int    // WRs posted and not yet completed
	backlog int    // frames waiting in tenant queues
	queues  map[uint16]*tenantSQ
	ring    []uint16 // round-robin order of backlogged tenant ids
	cur     int
}

func newSQSched(c *Context, qpn func() uint32) *sqSched {
	burst := c.cfg.TenantSQBurst
	if burst <= 0 {
		burst = 4
	}
	q := int64(c.cfg.TenantQuantum)
	if q <= 0 {
		q = 4096
	}
	return &sqSched{c: c, qpn: qpn, burst: burst, quantum: q, queues: make(map[uint16]*tenantSQ)}
}

func (s *sqSched) weight(id uint16) int64 {
	if id == 0 || int(id) > len(s.c.tenants) {
		return 1
	}
	return int64(s.c.tenants[id-1].cfg.Weight)
}

// submit either posts the frame directly (idle SQ under the burst) or
// enqueues it on its tenant's queue for DRR drain.
func (s *sqSched) submit(ch *Channel, qp *rnic.QP, wr *rnic.SendWR, cb func(rnic.CQE)) {
	item := sqItem{ch: ch, qp: qp, wr: wr, cb: cb}
	if s.pending < s.burst && s.backlog == 0 {
		s.post(item)
		return
	}
	id := uint16(0)
	if ch.tenant != nil {
		id = ch.tenant.id
		ch.tenant.DRRQueued++
	}
	q := s.queues[id]
	if q == nil {
		q = &tenantSQ{}
		s.queues[id] = q
	}
	if len(q.items) == 0 {
		s.ring = append(s.ring, id)
	}
	q.items = append(q.items, item)
	s.backlog++
	s.drain()
}

func (s *sqSched) post(item sqItem) {
	s.pending++
	gen := s.gen
	s.c.flow.post(item.qp, item.wr, func(cqe rnic.CQE) {
		if s.gen == gen {
			s.pending--
		}
		if item.cb != nil {
			item.cb(cqe)
		}
		if s.gen == gen {
			s.drain()
		}
	})
}

// drain serves tenant queues deficit-round-robin while the SQ has burst
// room: each visit credits quantum × weight; frames send while the
// deficit covers them; an emptied queue leaves the ring with its deficit
// forfeited (classic DRR, so an idle tenant accrues nothing).
func (s *sqSched) drain() {
	for s.pending < s.burst && s.backlog > 0 {
		if s.cur >= len(s.ring) {
			s.cur = 0
		}
		id := s.ring[s.cur]
		q := s.queues[id]
		if len(q.items) == 0 {
			q.deficit = 0
			s.ring = append(s.ring[:s.cur], s.ring[s.cur+1:]...)
			continue
		}
		q.deficit += s.quantum * s.weight(id)
		for len(q.items) > 0 && s.pending < s.burst {
			item := q.items[0]
			if item.ch.closed {
				q.items = q.items[1:]
				s.backlog--
				continue
			}
			cost := int64(item.wr.Len)
			if q.deficit < cost {
				break
			}
			q.deficit -= cost
			q.items = q.items[1:]
			s.backlog--
			s.post(item)
		}
		if len(q.items) == 0 {
			q.deficit = 0
			s.ring = append(s.ring[:s.cur], s.ring[s.cur+1:]...)
		} else {
			s.cur++
		}
	}
}

// reset drops queued frames and forgets outstanding completions — the
// shared QP died or was adopted; the windows' replay (requeueUnacked)
// re-submits everything that still matters.
func (s *sqSched) reset() {
	s.gen++
	s.pending = 0
	s.backlog = 0
	s.queues = make(map[uint16]*tenantSQ)
	s.ring = s.ring[:0]
	s.cur = 0
}

// ---------------------------------------------------------------------------
// XR-Stat TENANT rows.

// tenantRows renders the per-tenant table for XRStat; empty in
// zero-tenant contexts.
func (c *Context) tenantRows() []string {
	if len(c.tenants) == 0 {
		return nil
	}
	rows := make([]string, 0, len(c.tenants)+1)
	rows = append(rows, fmt.Sprintf("%-10s %3s %3s %9s %9s %12s %12s %5s %7s %7s %10s %8s %6s %6s",
		"TENANT", "ID", "WT", "SENT", "RECV", "TXBYTES", "RXBYTES", "INFL", "RSTALL", "WSTALL", "MEMUSED", "REJECTS", "SHEDS", "ASHED"))
	for _, t := range c.tenants {
		rows = append(rows, fmt.Sprintf("%-10s %3d %3d %9d %9d %12d %12d %5d %7d %7d %10d %8d %6d %6d",
			t.cfg.Name, t.id, t.cfg.Weight, t.Sent, t.Recvd, t.TxBytes, t.RxBytes,
			t.inflight, t.RateStalls, t.WinStalls, t.memUsed, t.MemRejects, t.Sheds, t.AttachSheds))
	}
	return rows
}

// TenantDigest renders deterministic per-tenant lines for experiment
// digests (sorted by id; empty without tenants).
func (c *Context) TenantDigest() []string {
	if len(c.tenants) == 0 {
		return nil
	}
	ts := append([]*Tenant(nil), c.tenants...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })
	out := make([]string, 0, len(ts))
	for _, t := range ts {
		out = append(out, fmt.Sprintf("tenant %s sent=%d recv=%d tx=%d rx=%d rstall=%d wstall=%d mem=%d rejects=%d sheds=%d ashed=%d rtt_n=%d rtt_sum=%d",
			t.cfg.Name, t.Sent, t.Recvd, t.TxBytes, t.RxBytes, t.RateStalls, t.WinStalls,
			t.memUsed, t.MemRejects, t.Sheds, t.AttachSheds, t.RTTCount, t.RTTSumNs))
	}
	return out
}

package xrdma

import (
	"bytes"
	"fmt"
	"testing"

	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/tcpnet"
	"xrdma/internal/verbs"
)

// testWorld wires N nodes with contexts over a small clos fabric.
type testWorld struct {
	eng  *sim.Engine
	fab  *fabric.Fabric
	mon  *Monitor
	ctxs []*Context
	nics []*rnic.NIC
}

func newWorld(t testing.TB, n int, mutate func(i int, cfg *Config)) *testWorld {
	t.Helper()
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	top := fabric.SmallClos()
	if n > top.Hosts() {
		top = fabric.ClusterClos(n)
	}
	fabric.BuildClos(fab, top)
	net := verbs.NewCMNetwork()
	mon := NewMonitor()
	w := &testWorld{eng: eng, fab: fab, mon: mon}
	for i := 0; i < n; i++ {
		host := fab.Host(fabric.NodeID(i))
		nic := rnic.New(eng, host, rnic.DefaultConfig())
		w.nics = append(w.nics, nic)
		vc := verbs.Open(nic)
		cm := verbs.NewCM(vc, net, host)
		cfg := DefaultConfig()
		if mutate != nil {
			mutate(i, &cfg)
		}
		tcp := tcpnet.New(eng, host, tcpnet.DefaultConfig())
		ctx := NewContext(Options{
			Verbs: vc, CM: cm, Host: host, Config: cfg, Monitor: mon,
			TCP: tcp, MockPort: 9000, Seed: uint64(i + 1),
		})
		w.ctxs = append(w.ctxs, ctx)
	}
	return w
}

// connect establishes a channel from ctx i to ctx j (which must Listen
// first) and returns both ends.
func (w *testWorld) connect(t testing.TB, i, j, port int) (*Channel, *Channel) {
	t.Helper()
	var server *Channel
	w.ctxs[j].OnChannel(func(ch *Channel) { server = ch })
	if err := w.ctxs[j].Listen(port); err != nil {
		t.Fatal(err)
	}
	var client *Channel
	w.ctxs[i].Connect(fabric.NodeID(j), port, func(ch *Channel, err error) {
		if err != nil {
			t.Fatalf("connect: %v", err)
		}
		client = ch
	})
	w.eng.Run()
	if client == nil || server == nil {
		t.Fatal("channel establishment failed")
	}
	return client, server
}

// echoServer makes the server reply with the request payload.
func echoServer(ch *Channel) {
	ch.OnMessage(func(m *Msg) {
		m.Reply(m.Retain(), m.Len)
	})
}

func TestSmallRequestResponse(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5000)
	echoServer(srv)
	payload := []byte("ping over xrdma")
	var resp *Msg
	err := cli.SendMsg(payload, 0, func(m *Msg, err error) {
		if err != nil {
			t.Fatalf("response err: %v", err)
		}
		resp = m
	})
	if err != nil {
		t.Fatal(err)
	}
	w.eng.Run()
	if resp == nil || !bytes.Equal(resp.Data, payload) {
		t.Fatalf("echo failed: %+v", resp)
	}
	if cli.Counters.ReqsSent != 1 || cli.Counters.RespsRecv != 1 {
		t.Fatalf("counters: %+v", cli.Counters)
	}
}

func TestLargeRequestRendezvous(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5001)
	payload := make([]byte, 300<<10) // 300 KB → fragmented READ pull
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	var got []byte
	srv.OnMessage(func(m *Msg) {
		got = m.Retain()
		m.Reply([]byte("ok"), 0)
	})
	var done bool
	cli.SendMsg(payload, 0, func(m *Msg, err error) {
		if err != nil {
			t.Fatalf("resp: %v", err)
		}
		done = true
	})
	w.eng.Run()
	if !done || !bytes.Equal(got, payload) {
		t.Fatal("large request corrupted or lost")
	}
	if srv.Counters.LargeRecv != 1 || cli.Counters.LargeSent != 1 {
		t.Fatalf("rendezvous counters: %+v %+v", srv.Counters, cli.Counters)
	}
	// Fragmentation: 300KB at 64KB fragments → ≥5 READ WRs.
	if w.ctxs[1].flow.Fragments < 5 {
		t.Fatalf("expected fragmented pull, got %d fragments", w.ctxs[1].flow.Fragments)
	}
	// Staged buffer must be released after the ack round.
	if w.ctxs[0].Mem.InUseBytes != 0 {
		// recv buffers of the channel remain in use; count only staging:
		// staging release is visible as Frees > Allocs - live recv bufs.
		t.Logf("note: client InUse=%d (channel recv buffers)", w.ctxs[0].Mem.InUseBytes)
	}
	if cli.Counters.WindowStalls != 0 {
		t.Fatalf("single message should not stall")
	}
}

func TestLargeResponseReadReplaceWrite(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5002)
	blob := make([]byte, 150<<10)
	for i := range blob {
		blob[i] = byte(i ^ 77)
	}
	srv.OnMessage(func(m *Msg) { m.Reply(blob, 0) })
	var resp []byte
	cli.SendMsg([]byte("get"), 0, func(m *Msg, err error) {
		if err != nil {
			t.Fatalf("resp: %v", err)
		}
		resp = m.Retain()
	})
	w.eng.Run()
	if !bytes.Equal(resp, blob) {
		t.Fatal("large response corrupted")
	}
	if srv.Counters.LargeSent != 1 || cli.Counters.LargeRecv != 1 {
		t.Fatalf("large response counters wrong: %+v %+v", srv.Counters, cli.Counters)
	}
}

func TestManyRequestsInOrder(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5003)
	var gotOrder []int
	srv.OnMessage(func(m *Msg) {
		gotOrder = append(gotOrder, int(m.Data[0])<<8|int(m.Data[1]))
		m.Reply(m.Retain(), 0)
	})
	const n = 500 // well beyond the window depth of 32
	resps := 0
	for i := 0; i < n; i++ {
		cli.SendMsg([]byte{byte(i >> 8), byte(i)}, 0, func(m *Msg, err error) {
			if err != nil {
				t.Fatalf("resp %v", err)
			}
			resps++
		})
	}
	w.eng.Run()
	if resps != n || len(gotOrder) != n {
		t.Fatalf("completed %d/%d (server saw %d)", resps, n, len(gotOrder))
	}
	for i, v := range gotOrder {
		if v != i {
			t.Fatalf("server delivery out of order at %d: %d", i, v)
		}
	}
	if cli.Counters.WindowStalls == 0 {
		t.Fatal("500 requests over a 32-deep window must stall at least once")
	}
	if w.nics[1].Counters.RNRNakSent != 0 {
		t.Fatalf("X-RDMA must be RNR-free, receiver sent %d RNR NAKs", w.nics[1].Counters.RNRNakSent)
	}
}

func TestMixedSmallLargeOrdering(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5004)
	var sizes []int
	srv.OnMessage(func(m *Msg) {
		sizes = append(sizes, m.Len)
	})
	want := []int{100, 200 << 10, 50, 8 << 10, 5, 64 << 10, 9000}
	for _, s := range want {
		cli.SendMsg(nil, s, nil) // one-way, size-only
	}
	w.eng.Run()
	if len(sizes) != len(want) {
		t.Fatalf("delivered %d/%d", len(sizes), len(want))
	}
	// Delivery semantics: inline messages deliver in order among
	// themselves; rendezvous messages deliver when their pull completes.
	// Everything must arrive with sizes intact.
	counts := map[int]int{}
	for _, s := range want {
		counts[s]++
	}
	var smallGot []int
	for _, s := range sizes {
		counts[s]--
		if s <= 4096 {
			smallGot = append(smallGot, s)
		}
	}
	for s, n := range counts {
		if n != 0 {
			t.Fatalf("size %d count mismatch (%d): %v", s, n, sizes)
		}
	}
	wantSmall := []int{100, 50, 5}
	for i := range wantSmall {
		if i >= len(smallGot) || smallGot[i] != wantSmall[i] {
			t.Fatalf("inline subsequence reordered: %v", smallGot)
		}
	}
}

func TestStandaloneAcksFlowForOneWayTraffic(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5005)
	srv.OnMessage(func(m *Msg) {}) // never replies
	const n = 200
	for i := 0; i < n; i++ {
		cli.SendMsg(nil, 64, nil)
	}
	w.eng.Run()
	if srv.Counters.MsgsRecv != n {
		t.Fatalf("server received %d/%d", srv.Counters.MsgsRecv, n)
	}
	if srv.Counters.AcksSent == 0 {
		t.Fatal("no standalone acks with one-way traffic")
	}
	if cli.Inflight() != 0 {
		t.Fatalf("window never drained: %d inflight", cli.Inflight())
	}
}

func TestKeepaliveReclaimsDeadPeer(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.KeepaliveInterval = 2 * sim.Millisecond
		cfg.KeepaliveTimeout = 10 * sim.Millisecond
		cfg.MockEnabled = false
	})
	cli, _ := w.connect(t, 0, 1, 5006)
	var closeErr error
	cli.OnClose(func(err error) { closeErr = err })
	qpCacheBefore := w.ctxs[0].QPs.Len()
	w.nics[1].Crash()
	w.eng.RunFor(500 * sim.Millisecond)
	if closeErr == nil {
		t.Fatal("keepalive never detected the dead peer")
	}
	if !cli.Closed() {
		t.Fatal("channel not reclaimed")
	}
	if w.ctxs[0].QPs.Len() != qpCacheBefore+1 {
		t.Fatalf("QP not recycled after reclaim: cache %d → %d", qpCacheBefore, w.ctxs[0].QPs.Len())
	}
	if w.ctxs[0].Stats.KeepaliveProbes == 0 {
		t.Fatal("no probes were sent")
	}
	if w.ctxs[0].Mem.InUseBytes != 0 {
		t.Fatalf("leaked %d bytes of RDMA memory after reclaim", w.ctxs[0].Mem.InUseBytes)
	}
}

func TestKeepaliveQuietOnHealthyIdle(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.KeepaliveInterval = 2 * sim.Millisecond
		cfg.KeepaliveTimeout = 10 * sim.Millisecond
	})
	cli, srv := w.connect(t, 0, 1, 5007)
	w.eng.RunFor(200 * sim.Millisecond)
	if cli.Closed() || srv.Closed() {
		t.Fatal("healthy idle channel was reclaimed")
	}
	if w.ctxs[0].Stats.KeepaliveProbes == 0 {
		t.Fatal("idle channel should have been probed")
	}
	// Probes are zero-byte writes: the server application saw nothing.
	if srv.Counters.MsgsRecv != 0 {
		t.Fatal("keepalive probes woke the peer application")
	}
}

func TestRequestTimeout(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.RequestTimeout = 5 * sim.Millisecond
		cfg.StatsInterval = 1 * sim.Millisecond
		cfg.KeepaliveInterval = 0 // isolate the timeout path
	})
	cli, srv := w.connect(t, 0, 1, 5008)
	srv.OnMessage(func(m *Msg) {}) // swallow
	var gotErr error
	cli.SendMsg([]byte("hello?"), 0, func(m *Msg, err error) { gotErr = err })
	w.eng.RunFor(50 * sim.Millisecond)
	if gotErr != ErrTimeout {
		t.Fatalf("expected ErrTimeout, got %v", gotErr)
	}
	if w.ctxs[0].Stats.ReqTimeouts != 1 {
		t.Fatalf("timeout counter = %d", w.ctxs[0].Stats.ReqTimeouts)
	}
}

func TestQPCacheSpeedsReconnect(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, _ := w.connect(t, 0, 1, 5009)
	start := w.eng.Now()
	_ = start
	cli.Close()
	w.eng.Run()
	if w.ctxs[0].QPs.Len() == 0 {
		t.Fatal("closed channel did not populate the QP cache")
	}
	// Reconnect must hit the cache.
	t0 := w.eng.Now()
	var cli2 *Channel
	w.ctxs[0].Connect(1, 5009, func(ch *Channel, err error) {
		if err != nil {
			t.Fatalf("reconnect: %v", err)
		}
		cli2 = ch
	})
	w.eng.Run()
	warm := w.eng.Now().Sub(t0)
	if cli2 == nil {
		t.Fatal("reconnect failed")
	}
	if w.ctxs[0].QPs.Hits == 0 {
		t.Fatal("reconnect missed the QP cache")
	}
	// Cold establishment pays ~1.5ms creation that warm skips.
	if warm > 4*sim.Millisecond {
		t.Fatalf("warm reconnect took %v", warm)
	}
	t.Logf("warm reconnect: %v", warm)
}

func TestSetFlagOnlineOffline(t *testing.T) {
	w := newWorld(t, 1, nil)
	c := w.ctxs[0]
	if err := c.SetFlag("keepalive_intv_ms", "25"); err != nil {
		t.Fatal(err)
	}
	if c.cfg.KeepaliveInterval != 25*sim.Millisecond {
		t.Fatalf("flag not applied: %v", c.cfg.KeepaliveInterval)
	}
	if err := c.SetFlag("use_srq", "1"); err == nil {
		t.Fatal("offline flag must be rejected online")
	}
	if err := c.SetFlag("no_such_flag", "1"); err == nil {
		t.Fatal("unknown flag must error")
	}
	if err := c.SetFlag("reqrsp_mode", "on"); err != nil || !c.cfg.ReqRspMode {
		t.Fatalf("reqrsp_mode: %v", err)
	}
	if len(c.FlagLog()) != 2 {
		t.Fatalf("flag log has %d entries", len(c.FlagLog()))
	}
	if len(OnlineFlagNames()) < 5 {
		t.Fatal("online flag registry too small")
	}
}

func TestTracingOneWayLatencyWithSkew(t *testing.T) {
	// Node 1's clock runs 30µs ahead; without sync the one-way numbers
	// are skewed, after SyncClock they are sane.
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	fabric.BuildClos(fab, fabric.SmallClos())
	net := verbs.NewCMNetwork()
	mon := NewMonitor()
	mk := func(node fabric.NodeID, skew sim.Duration) *Context {
		host := fab.Host(node)
		nic := rnic.New(eng, host, rnic.DefaultConfig())
		vc := verbs.Open(nic)
		cfg := DefaultConfig()
		cfg.ReqRspMode = true
		return NewContext(Options{Verbs: vc, CM: verbs.NewCM(vc, net, host), Host: host,
			Config: cfg, Monitor: mon, ClockSkew: skew, Seed: uint64(node) + 7})
	}
	c0 := mk(0, 0)
	c1 := mk(1, 30*sim.Microsecond)
	var srv *Channel
	c1.OnChannel(func(ch *Channel) { srv = ch })
	c1.Listen(6000)
	var cli *Channel
	c0.Connect(1, 6000, func(ch *Channel, err error) { cli = ch })
	eng.Run()
	if cli == nil || srv == nil {
		t.Fatal("setup failed")
	}
	echoServer(srv)

	var offset sim.Duration
	cli.SyncClock(3, func(off sim.Duration, err error) {
		if err != nil {
			t.Fatalf("sync: %v", err)
		}
		offset = off
	})
	eng.Run()
	// True offset is +30µs (peer ahead).
	if offset < 25*sim.Microsecond || offset > 35*sim.Microsecond {
		t.Fatalf("estimated offset %v, want ≈30µs", offset)
	}
	// Server syncs too so its inbound trace records decompose.
	var srvOff sim.Duration
	srv.SyncClock(3, func(off sim.Duration, err error) { srvOff = off })
	eng.Run()
	if srvOff > -25*sim.Microsecond {
		t.Fatalf("server offset %v, want ≈-30µs", srvOff)
	}

	cli.SendMsg([]byte("traced"), 0, func(*Msg, error) {})
	eng.Run()
	recs := c1.Tracer().Records()
	var reqRec *TraceRecord
	for i := range recs {
		if recs[i].Kind == "REQ" {
			reqRec = &recs[i]
		}
	}
	if reqRec == nil {
		t.Fatal("no REQ trace record at server")
	}
	// One-way latency must be positive and a few µs, not ±30µs skewed.
	if reqRec.OneWay < 1*sim.Microsecond || reqRec.OneWay > 20*sim.Microsecond {
		t.Fatalf("decomposed one-way %v implausible", reqRec.OneWay)
	}
}

func TestTracingOverheadSmall(t *testing.T) {
	// req-rsp mode must cost only a few hundred ns per message (§VII-A:
	// +2–4%).
	lat := func(reqrsp bool) sim.Duration {
		w := newWorld(t, 2, func(i int, cfg *Config) { cfg.ReqRspMode = reqrsp })
		cli, srv := w.connect(t, 0, 1, 5010)
		echoServer(srv)
		var total sim.Duration
		const n = 50
		done := 0
		var issue func()
		issue = func() {
			start := w.eng.Now()
			cli.SendMsg([]byte("x"), 0, func(m *Msg, err error) {
				if err != nil {
					t.Fatal(err)
				}
				total += w.eng.Now().Sub(start)
				done++
				if done < n {
					issue()
				}
			})
		}
		issue()
		w.eng.Run()
		if done != n {
			t.Fatalf("completed %d/%d", done, n)
		}
		return total / n
	}
	bare := lat(false)
	traced := lat(true)
	if traced <= bare {
		t.Fatalf("tracing should cost something: bare=%v traced=%v", bare, traced)
	}
	overhead := float64(traced-bare) / float64(bare)
	if overhead > 0.10 {
		t.Fatalf("tracing overhead %.1f%% too high (paper: 2–4%%)", overhead*100)
	}
	t.Logf("bare=%v traced=%v overhead=%.1f%%", bare, traced, overhead*100)
}

func TestPingAndMatrix(t *testing.T) {
	w := newWorld(t, 3, nil)
	cli01, _ := w.connect(t, 0, 1, 5011)
	cli02, _ := w.connect(t, 0, 2, 5012)
	_, _ = cli01, cli02
	var rtt sim.Duration
	cli01.Ping(func(r, _ sim.Duration, err error) {
		if err != nil {
			t.Fatal(err)
		}
		rtt = r
	})
	w.eng.Run()
	if rtt < 2*sim.Microsecond || rtt > 50*sim.Microsecond {
		t.Fatalf("ping rtt %v implausible", rtt)
	}
	var mx map[fabric.NodeID]map[fabric.NodeID]sim.Duration
	w.mon.PingMatrix(func(m map[fabric.NodeID]map[fabric.NodeID]sim.Duration) { mx = m })
	w.eng.Run()
	if mx == nil || mx[0][1] == 0 || mx[0][2] == 0 {
		t.Fatalf("ping matrix incomplete: %v", mx)
	}
	out := RenderMatrix(mx, w.mon.Nodes())
	if len(out) == 0 {
		t.Fatal("empty matrix rendering")
	}
}

func TestXRStatOutput(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5013)
	echoServer(srv)
	for i := 0; i < 10; i++ {
		cli.SendMsg([]byte("stat"), 0, func(*Msg, error) {})
	}
	w.eng.Run()
	out := XRStat(w.ctxs[0])
	if len(out) == 0 || !bytes.Contains([]byte(out), []byte("QPN")) {
		t.Fatalf("XRStat output malformed:\n%s", out)
	}
}

func TestFilterDropsRecovered(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) { cfg.KeepaliveInterval = 50 * sim.Millisecond })
	cli, srv := w.connect(t, 0, 1, 5014)
	echoServer(srv)
	// 20% drops on node 0's NIC — reliability must recover everything.
	if err := w.ctxs[0].SetFlag("filter_drop_rate", "0.2"); err != nil {
		t.Fatal(err)
	}
	const n = 100
	done := 0
	for i := 0; i < n; i++ {
		cli.SendMsg([]byte("drop me maybe"), 0, func(m *Msg, err error) {
			if err != nil {
				t.Fatalf("request failed under filter: %v", err)
			}
			done++
		})
	}
	w.eng.RunFor(2 * sim.Second)
	if done != n {
		t.Fatalf("completed %d/%d under 20%% drops", done, n)
	}
	if w.nics[0].Counters.Retransmits == 0 {
		t.Fatal("drops should have forced retransmissions")
	}
	// Turn the filter off and verify it stops interfering.
	w.ctxs[0].SetFlag("filter_drop_rate", "0")
	before := w.nics[0].Counters.Retransmits
	done = 0
	for i := 0; i < 50; i++ {
		cli.SendMsg([]byte("clean"), 0, func(m *Msg, err error) { done++ })
	}
	w.eng.RunFor(1 * sim.Second)
	if done != 50 {
		t.Fatalf("clean run incomplete: %d/50", done)
	}
	if w.nics[0].Counters.Retransmits != before {
		t.Fatal("retransmissions continued after filter removal")
	}
}

func TestFilterDelayInflatesLatency(t *testing.T) {
	measure := func(delayUS string) sim.Duration {
		w := newWorld(t, 2, nil)
		cli, srv := w.connect(t, 0, 1, 5015)
		echoServer(srv)
		if delayUS != "" {
			if err := w.ctxs[0].SetFlag("filter_delay_us", delayUS); err != nil {
				t.Fatal(err)
			}
		}
		var rtt sim.Duration
		start := w.eng.Now()
		cli.SendMsg([]byte("d"), 0, func(*Msg, error) { rtt = w.eng.Now().Sub(start) })
		w.eng.Run()
		return rtt
	}
	base := measure("")
	slow := measure("100")
	if slow < base+90*sim.Microsecond {
		t.Fatalf("filter delay not applied: base=%v slow=%v", base, slow)
	}
}

func TestMockFallbackKeepsChannelAlive(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.MockEnabled = true
		cfg.KeepaliveInterval = 2 * sim.Millisecond
		cfg.KeepaliveTimeout = 8 * sim.Millisecond
	})
	cli, srv := w.connect(t, 0, 1, 5016)
	echoServer(srv)
	// Sanity over RDMA first.
	ok := 0
	cli.SendMsg([]byte("rdma"), 0, func(m *Msg, err error) {
		if err == nil {
			ok++
		}
	})
	w.eng.Run()
	if ok != 1 {
		t.Fatal("RDMA path broken before mock test")
	}
	// Break the RDMA plane only: crash+revive the server NIC so QPs die
	// but the (separate) TCP stack keeps running.
	w.nics[1].Crash()
	w.eng.RunFor(30 * sim.Millisecond)
	w.nics[1].Revive()
	// Failure detection waits out the full RC retry horizon before
	// declaring the peer dead, so give the switch time to happen.
	w.eng.RunFor(400 * sim.Millisecond)
	if cli.Closed() || !cli.Mocked() {
		t.Fatalf("client channel should be mocked: closed=%v mocked=%v", cli.Closed(), cli.Mocked())
	}
	if srv.Closed() || !srv.Mocked() {
		t.Fatalf("server channel should be mocked: closed=%v mocked=%v", srv.Closed(), srv.Mocked())
	}
	// Traffic continues over TCP.
	got := 0
	cli.SendMsg([]byte("over tcp"), 0, func(m *Msg, err error) {
		if err != nil {
			t.Fatalf("mocked request: %v", err)
		}
		if string(m.Data) != "over tcp" {
			t.Fatalf("mock payload corrupted: %q", m.Data)
		}
		got++
	})
	w.eng.RunFor(50 * sim.Millisecond)
	if got != 1 {
		t.Fatal("request over mock never completed")
	}
	if w.ctxs[0].Stats.MockSwitches != 1 {
		t.Fatalf("mock switches = %d", w.ctxs[0].Stats.MockSwitches)
	}
}

func TestForceMock(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) { cfg.MockEnabled = true })
	cli, srv := w.connect(t, 0, 1, 5017)
	echoServer(srv)
	if err := cli.ForceMock(); err != nil {
		t.Fatal(err)
	}
	if err := srv.ForceMock(); err != nil {
		t.Fatal(err)
	}
	w.eng.RunFor(10 * sim.Millisecond)
	got := 0
	cli.SendMsg([]byte("manual mock"), 0, func(m *Msg, err error) {
		if err != nil {
			t.Fatalf("force-mocked request: %v", err)
		}
		got++
	})
	w.eng.RunFor(20 * sim.Millisecond)
	if got != 1 {
		t.Fatal("request over forced mock never completed")
	}
}

func TestSlowPollDetection(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.PollingWarnCycle = 20 * sim.Microsecond
	})
	cli, srv := w.connect(t, 0, 1, 5018)
	echoServer(srv)
	before := w.ctxs[0].Stats.SlowPolls
	// The application hogs the thread for 200µs — like the allocator
	// lock incident in §VII-D.
	w.ctxs[0].InjectWork(200 * sim.Microsecond)
	cli.SendMsg([]byte("x"), 0, func(*Msg, error) {})
	w.eng.Run()
	if w.ctxs[0].Stats.SlowPolls == before {
		t.Fatal("slow poll not detected")
	}
	found := false
	for _, e := range w.ctxs[0].Log() {
		if bytes.Contains([]byte(e.Text), []byte("slow poll")) {
			found = true
		}
	}
	if !found {
		t.Fatal("slow poll not logged")
	}
}

func TestMonitorSamples(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) { cfg.StatsInterval = 1 * sim.Millisecond })
	cli, srv := w.connect(t, 0, 1, 5019)
	echoServer(srv)
	for i := 0; i < 20; i++ {
		cli.SendMsg(nil, 1024, func(*Msg, error) {})
	}
	w.eng.RunFor(20 * sim.Millisecond)
	samples := w.mon.History(0)
	if len(samples) < 5 {
		t.Fatalf("monitor collected %d samples", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Channels != 1 || last.MsgsSent == 0 || last.MemOccupied == 0 {
		t.Fatalf("sample content wrong: %+v", last)
	}
	if got, ok := w.mon.Latest(0); !ok || got != last {
		t.Fatalf("Latest(0) = %+v ok=%v, want tail of History", got, ok)
	}
}

// MaxSamples must actually bound per-node sample memory in long runs:
// the ring overwrites in place once full, so neither the slice length
// nor its backing array may grow past the cap, and History returns the
// newest MaxSamples observations oldest-first.
func TestMonitorMaxSamplesBoundsMemory(t *testing.T) {
	w := newWorld(t, 2, nil)
	w.mon.MaxSamples = 64
	c := w.ctxs[0]
	for i := 0; i < 10000; i++ {
		w.eng.RunFor(1 * sim.Microsecond) // advance the clock between samples
		w.mon.sample(c)
	}
	buf := w.mon.samples[0]
	if len(buf) != 64 || cap(buf) > 128 {
		t.Fatalf("ring len=%d cap=%d, want len=64 and cap bounded near MaxSamples", len(buf), cap(buf))
	}
	h := w.mon.History(0)
	if len(h) != 64 {
		t.Fatalf("History returned %d samples, want 64", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i].At < h[i-1].At {
			t.Fatalf("History out of order at %d: %v < %v", i, h[i].At, h[i-1].At)
		}
	}
	latest, ok := w.mon.Latest(0)
	if !ok || latest != h[63] {
		t.Fatalf("Latest = %+v, want newest history entry", latest)
	}
}

func TestChannelCloseReleasesResources(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5020)
	echoServer(srv)
	for i := 0; i < 10; i++ {
		cli.SendMsg([]byte("work"), 0, func(*Msg, error) {})
	}
	w.eng.Run()
	cli.Close()
	w.eng.Run()
	c := w.ctxs[0]
	if c.NumChannels() != 0 {
		t.Fatal("channel still registered")
	}
	if c.Mem.InUseBytes != 0 {
		t.Fatalf("leaked %d bytes", c.Mem.InUseBytes)
	}
	if c.QPs.Len() != 1 {
		t.Fatalf("QP cache has %d entries, want 1", c.QPs.Len())
	}
	// Pending requests fail on close.
	w2 := newWorld(t, 2, nil)
	cli2, srv2 := w2.connect(t, 0, 1, 5021)
	srv2.OnMessage(func(m *Msg) {}) // no reply
	var gotErr error
	cli2.SendMsg([]byte("never answered"), 0, func(m *Msg, err error) { gotErr = err })
	w2.eng.RunFor(1 * sim.Millisecond)
	cli2.Close()
	w2.eng.Run()
	if gotErr != ErrChannelClosed {
		t.Fatalf("pending request error = %v", gotErr)
	}
}

func TestSRQMode(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.UseSRQ = true
		cfg.SRQSize = 256
	})
	cli, srv := w.connect(t, 0, 1, 5022)
	echoServer(srv)
	done := 0
	for i := 0; i < 100; i++ {
		cli.SendMsg([]byte("via srq"), 0, func(m *Msg, err error) {
			if err != nil {
				t.Fatalf("srq request: %v", err)
			}
			done++
		})
	}
	w.eng.Run()
	if done != 100 {
		t.Fatalf("completed %d/100 in SRQ mode", done)
	}
}

func TestNopBreaksStall(t *testing.T) {
	// Pathological config: acks only after 1000 receives and a very long
	// delayed-ack timer; the NOP path is then the only unblocker.
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.AckEvery = 1000
		cfg.AckDelay = 10 * sim.Second
		cfg.WindowDepth = 4
		cfg.DeadlockScan = 200 * sim.Microsecond
	})
	cli, srv := w.connect(t, 0, 1, 5023)
	srv.OnMessage(func(m *Msg) {}) // one-way sink, no replies
	const n = 40
	for i := 0; i < n; i++ {
		cli.SendMsg(nil, 64, nil)
	}
	w.eng.RunFor(1 * sim.Second)
	if srv.Counters.MsgsRecv != n {
		t.Fatalf("NOP failed to unblock: %d/%d delivered (nops=%d)",
			srv.Counters.MsgsRecv, n, cli.Counters.NopsSent)
	}
	if cli.Counters.NopsSent == 0 {
		t.Fatal("expected NOP messages under ack starvation")
	}
}

func TestHybridPollingEventWake(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) { cfg.KeepaliveInterval = 0 })
	cli, srv := w.connect(t, 0, 1, 5024)
	echoServer(srv)
	// Long quiet period → contexts fall into event mode.
	w.eng.RunFor(50 * sim.Millisecond)
	if !w.ctxs[0].eventMode && !w.ctxs[1].eventMode {
		t.Fatal("contexts never entered event mode while idle")
	}
	wakesBefore := w.ctxs[1].Stats.EventWakes
	done := false
	cli.SendMsg([]byte("wake up"), 0, func(m *Msg, err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	w.eng.RunFor(10 * sim.Millisecond)
	if !done {
		t.Fatal("request across event-mode contexts never completed")
	}
	if w.ctxs[1].Stats.EventWakes == wakesBefore {
		t.Fatal("server context was never event-woken")
	}
}

func TestGetEventFDStable(t *testing.T) {
	w := newWorld(t, 2, nil)
	if w.ctxs[0].GetEventFD() == w.ctxs[1].GetEventFD() {
		t.Fatal("event fds collide")
	}
	if w.ctxs[0].GetEventFD() != w.ctxs[0].GetEventFD() {
		t.Fatal("event fd unstable")
	}
}

func TestMemIsolationDetectsOverrun(t *testing.T) {
	w := newWorld(t, 1, func(i int, cfg *Config) { cfg.MemIsolation = true })
	c := w.ctxs[0]
	var buf Buffer
	c.Mem.Alloc(128, func(b Buffer, err error) {
		if err != nil {
			t.Fatal(err)
		}
		buf = b
	})
	w.eng.Run()
	if !buf.Valid() {
		t.Fatal("alloc failed")
	}
	if !c.Mem.CheckIntegrity(buf) {
		t.Fatal("fresh buffer fails integrity")
	}
	// Out-of-bound write: one byte past the end.
	raw := buf.MR.Slice(buf.Addr, buf.Len+1)
	raw[buf.Len] = 0xFF
	if c.Mem.CheckIntegrity(buf) {
		t.Fatal("overrun not detected")
	}
	c.Mem.Free(buf)
	if c.Mem.Corruptions != 1 {
		t.Fatalf("corruption counter = %d", c.Mem.Corruptions)
	}
}

func TestContextCloseShutsDown(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5025)
	_ = srv
	w.ctxs[0].Close()
	w.eng.Run()
	if !cli.Closed() {
		t.Fatal("context close left channels open")
	}
	if err := cli.SendMsg([]byte("x"), 0, nil); err != ErrChannelClosed {
		t.Fatalf("send after close: %v", err)
	}
}

func TestConcurrentChannelsIndependentWindows(t *testing.T) {
	w := newWorld(t, 3, nil)
	cli1, srv1 := w.connect(t, 0, 1, 5026)
	cli2, srv2 := w.connect(t, 0, 2, 5027)
	echoServer(srv1)
	echoServer(srv2)
	done1, done2 := 0, 0
	for i := 0; i < 100; i++ {
		cli1.SendMsg(nil, 256, func(*Msg, error) { done1++ })
		cli2.SendMsg(nil, 256, func(*Msg, error) { done2++ })
	}
	w.eng.Run()
	if done1 != 100 || done2 != 100 {
		t.Fatalf("channels interfered: %d/%d", done1, done2)
	}
}

func TestStatsSampleString(t *testing.T) {
	// Smoke-check the String helpers don't explode.
	w := newWorld(t, 2, nil)
	cli, _ := w.connect(t, 0, 1, 5028)
	s := cli.String()
	if len(s) == 0 {
		t.Fatal("empty channel string")
	}
	_ = fmt.Sprintf("%v", TraceRecord{Kind: "RTT", RTT: 5 * sim.Microsecond})
}

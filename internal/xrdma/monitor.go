package xrdma

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
)

// Monitor is the centralized monitoring plane of §VI-B: contexts register
// and periodically push samples; XR-Stat, XR-Ping's connection matrix and
// the per-machine dashboards read from here.
type Monitor struct {
	contexts map[fabric.NodeID]*Context

	// Samples per node, appended on every context housekeeping tick.
	Samples map[fabric.NodeID][]Sample
	// cap per node to bound memory in long runs.
	MaxSamples int
}

// Sample is one periodic observation of a node.
type Sample struct {
	At          sim.Time
	Channels    int
	QPs         int
	MemOccupied int64
	MemInUse    int64
	MsgsSent    int64
	MsgsRecv    int64
	BytesSent   int64
	BytesRecv   int64
	RNRRecv     int64
	Retransmits int64
	CNPRecv     int64
	SlowPolls   int64
}

// NewMonitor creates an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		contexts:   make(map[fabric.NodeID]*Context),
		Samples:    make(map[fabric.NodeID][]Sample),
		MaxSamples: 100000,
	}
}

func (m *Monitor) register(c *Context) { m.contexts[c.Node()] = c }

// Context returns a registered context by node.
func (m *Monitor) Context(id fabric.NodeID) *Context { return m.contexts[id] }

// Nodes lists registered nodes in order.
func (m *Monitor) Nodes() []fabric.NodeID {
	out := make([]fabric.NodeID, 0, len(m.contexts))
	for id := range m.contexts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sample reads one observation off the metric registry. The monitor is a
// pure registry consumer: every figure below comes from a gauge that the
// context or NIC registered, not from reaching into their structs.
func (m *Monitor) sample(c *Context) {
	reg := c.tel.Reg
	get := func(name string) int64 {
		v, _ := reg.Value(name)
		return v
	}
	xt := c.track + "."
	nt := fmt.Sprintf("rnic.%d.", c.Node())
	s := Sample{
		At:          c.eng.Now(),
		Channels:    int(get(xt + "channels")),
		QPs:         int(get(nt + "qps")),
		MemOccupied: get(xt + "mem_occupied"),
		MemInUse:    get(xt + "mem_inuse"),
		MsgsSent:    get(nt + "msgs_sent"),
		MsgsRecv:    get(nt + "msgs_recv"),
		BytesSent:   get(nt + "bytes_sent"),
		BytesRecv:   get(nt + "bytes_recv"),
		RNRRecv:     get(nt + "rnr_nak_recv"),
		Retransmits: get(nt + "retransmits"),
		CNPRecv:     get(nt + "cnp_recv"),
		SlowPolls:   get(xt + "slow_polls"),
	}
	node := c.Node()
	m.Samples[node] = append(m.Samples[node], s)
	if len(m.Samples[node]) > m.MaxSamples {
		m.Samples[node] = m.Samples[node][1:]
	}
}

// --- XR-Stat (§VI-B) ----------------------------------------------------------

// XRStat renders the netstat-like per-connection table for one node. It
// is a pure registry consumer: the header reads the context gauges and
// each row is pivoted from the node's per-channel gauge entries
// ("xrdma.<node>.ch.<qpn>.<field>") in one registry snapshot.
func XRStat(c *Context) string {
	reg := c.tel.Reg
	get := func(name string) int64 {
		v, _ := reg.Value(c.track + "." + name)
		return v
	}
	var b strings.Builder
	fmt.Fprintf(&b, "node %d: %d channels, mem occupy=%d in-use=%d, qp-cache=%d, drain=%s\n",
		c.Node(), get("channels"), get("mem_occupied"), get("mem_inuse"), get("qp_cache"),
		DrainState(get("drain_state")))
	if dropped := c.trace.Dropped(); dropped > 0 {
		fmt.Fprintf(&b, "trace ring truncated: %d records overwritten (cap %d)\n",
			dropped, c.trace.ring.Cap())
	}
	fmt.Fprintf(&b, "%-6s %-6s %-9s %-9s %-10s %-10s %-7s %-6s %-6s %-6s %-8s %-6s %-6s %-6s %-6s %-9s %-6s %-4s %-5s %-8s\n",
		"QPN", "PEER", "SENT", "RECV", "TXBYTES", "RXBYTES", "STALLS", "RNR", "RETX",
		"SCORE", "VERDICT", "REHASH", "RETRY", "READS", "WRITES", "RDBYTES", "RAERRS",
		"VER", "CAPS", "DRAIN")
	// Three row families share the registry: "ch.<qpn>" (exclusive-QP
	// channels), "mch.<cid>" (muxed channels — stable cid identity), and
	// "peeragg.<peer>" (channels folded past ChannelGaugeLimit).
	chPrefix := c.track + ".ch."
	mchPrefix := c.track + ".mch."
	aggPrefix := c.track + ".peeragg."
	rows := make(map[int]map[string]int64)
	mrows := make(map[int]map[string]int64)
	arows := make(map[int]map[string]int64)
	var qpns, cids, aggPeers []int
	add := func(into map[int]map[string]int64, keys *[]int, rest string, v int64) {
		dot := strings.IndexByte(rest, '.')
		if dot < 0 {
			return
		}
		key, err := strconv.Atoi(rest[:dot])
		if err != nil {
			return
		}
		row, ok := into[key]
		if !ok {
			row = make(map[string]int64)
			into[key] = row
			*keys = append(*keys, key)
		}
		row[rest[dot+1:]] = v
	}
	for _, e := range reg.Snapshot() {
		switch {
		case strings.HasPrefix(e.Name, chPrefix):
			add(rows, &qpns, e.Name[len(chPrefix):], e.Value)
		case strings.HasPrefix(e.Name, mchPrefix):
			add(mrows, &cids, e.Name[len(mchPrefix):], e.Value)
		case strings.HasPrefix(e.Name, aggPrefix):
			add(arows, &aggPeers, e.Name[len(aggPrefix):], e.Value)
		}
	}
	sort.Ints(qpns)
	sort.Ints(cids)
	sort.Ints(aggPeers)
	writeRow := func(label string, r map[string]int64) {
		fmt.Fprintf(&b, "%-6s %-6d %-9d %-9d %-10d %-10d %-7d %-6d %-6d %-6.2f %-8s %-6d %-6d %-6d %-6d %-9d %-6d %-4d %-5s %-8s\n",
			label, r["peer"], r["sent"], r["recv"], r["txbytes"], r["rxbytes"],
			r["stalls"], r["rnr"], r["retx"],
			float64(r["path_score"])/100, PathVerdict(r["path_verdict"]).String(),
			r["rehashes"], r["req_retries"],
			r["reads"], r["writes"], r["rdbytes"], r["raerrs"],
			r["ver"], fmt.Sprintf("%#x", r["caps"]), DrainState(r["drain"]))
	}
	for _, q := range qpns {
		writeRow(strconv.Itoa(q), rows[q])
	}
	for _, cid := range cids {
		// Muxed rows print the channel id; the wire QPN changes across
		// shared-QP recoveries and is not the channel's identity.
		writeRow("m"+strconv.Itoa(cid), mrows[cid])
	}
	if len(aggPeers) > 0 {
		var folded int64
		for _, p := range aggPeers {
			folded += arows[p]["chans"]
		}
		fmt.Fprintf(&b, "(+%d channels above ChannelGaugeLimit=%d, folded into per-peer aggregates)\n",
			folded, c.cfg.ChannelGaugeLimit)
		fmt.Fprintf(&b, "%-8s %-6s %-9s %-9s %-10s %-10s %-6s\n",
			"PEERAGG", "CHANS", "SENT", "RECV", "TXBYTES", "RXBYTES", "RETRY")
		for _, p := range aggPeers {
			r := arows[p]
			fmt.Fprintf(&b, "%-8d %-6d %-9d %-9d %-10d %-10d %-6d\n",
				p, r["chans"], r["sent"], r["recv"], r["txbytes"], r["rxbytes"], r["req_retries"])
		}
	}
	for _, row := range c.tenantRows() {
		b.WriteString(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// --- XR-Ping connection matrix (§VI-B) -----------------------------------------

// PingMatrix pings every registered pair that shares a channel and returns
// RTTs in a matrix keyed by [src][dst]; entries without a channel are
// absent. done fires when all outstanding pings resolve.
func (m *Monitor) PingMatrix(done func(map[fabric.NodeID]map[fabric.NodeID]sim.Duration)) {
	result := make(map[fabric.NodeID]map[fabric.NodeID]sim.Duration)
	outstanding := 0
	finished := false
	check := func() {
		if outstanding == 0 && finished {
			done(result)
		}
	}
	for id, c := range m.contexts {
		seen := make(map[fabric.NodeID]bool)
		for _, ch := range c.Channels() {
			if seen[ch.Peer] || ch.Closed() {
				continue
			}
			seen[ch.Peer] = true
			src, dst := id, ch.Peer
			outstanding++
			ch.Ping(func(rtt, _ sim.Duration, err error) {
				outstanding--
				if err == nil {
					if result[src] == nil {
						result[src] = make(map[fabric.NodeID]sim.Duration)
					}
					result[src][dst] = rtt
				}
				check()
			})
		}
	}
	finished = true
	check()
}

// RenderMatrix prints a ping matrix with microsecond entries.
func RenderMatrix(mx map[fabric.NodeID]map[fabric.NodeID]sim.Duration, nodes []fabric.NodeID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s", "")
	for _, d := range nodes {
		fmt.Fprintf(&b, "%8d", d)
	}
	b.WriteByte('\n')
	for _, s := range nodes {
		fmt.Fprintf(&b, "%6d", s)
		for _, d := range nodes {
			if rtt, ok := mx[s][d]; ok {
				fmt.Fprintf(&b, "%7.1fu", rtt.Micros())
			} else {
				fmt.Fprintf(&b, "%8s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

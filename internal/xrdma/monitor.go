package xrdma

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/xrmon"
)

// Monitor is the centralized monitoring plane of §VI-B: contexts register
// and periodically push samples; XR-Stat, XR-Ping's connection matrix and
// the per-machine dashboards read from here. Since XR-Mon v2 the monitor
// is a thin veneer over the per-node xrmon agents: registering a context
// attaches an agent to the engine's fleet collector, the housekeeping
// tick drives the agent's delta ring, and the legacy Sample history is
// assembled from the agent's absolute watermarks into a bounded ring.
type Monitor struct {
	contexts map[fabric.NodeID]*Context
	agents   map[fabric.NodeID]*xrmon.Agent

	// Bounded per-node sample rings (see MaxSamples); read via History.
	samples map[fabric.NodeID][]Sample
	head    map[fabric.NodeID]int

	// MaxSamples caps each node's retained samples: once a ring is
	// full, new samples overwrite the oldest in place, so a long run's
	// per-node memory is MaxSamples·sizeof(Sample) regardless of
	// duration.
	MaxSamples int
}

// Sample is one periodic observation of a node.
type Sample struct {
	At          sim.Time
	Channels    int
	QPs         int
	MemOccupied int64
	MemInUse    int64
	MsgsSent    int64
	MsgsRecv    int64
	BytesSent   int64
	BytesRecv   int64
	RNRRecv     int64
	Retransmits int64
	CNPRecv     int64
	SlowPolls   int64
}

// NewMonitor creates an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		contexts:   make(map[fabric.NodeID]*Context),
		agents:     make(map[fabric.NodeID]*xrmon.Agent),
		samples:    make(map[fabric.NodeID][]Sample),
		head:       make(map[fabric.NodeID]int),
		MaxSamples: 100000,
	}
}

// register attaches a context and its xrmon agent. A restart re-registers
// the same node: the collector keeps the agent (and its window history)
// and re-binds its probes against the fresh gauge registrations.
func (m *Monitor) register(c *Context) {
	m.contexts[c.Node()] = c
	node := int32(c.Node())
	var trefs []xrmon.TenantRef
	for _, t := range c.Tenants() {
		trefs = append(trefs, xrmon.TenantRef{ID: t.ID(), Label: t.Name()})
	}
	m.agents[c.Node()] = xrmon.For(c.eng).RegisterAgent(
		node, fmt.Sprintf("rnic.%d.", node), c.track+".", trefs)
}

// Agent returns the xrmon agent sampling a node (nil if unregistered).
func (m *Monitor) Agent(id fabric.NodeID) *xrmon.Agent { return m.agents[id] }

// Context returns a registered context by node.
func (m *Monitor) Context(id fabric.NodeID) *Context { return m.contexts[id] }

// Nodes lists registered nodes in order.
func (m *Monitor) Nodes() []fabric.NodeID {
	out := make([]fabric.NodeID, 0, len(m.contexts))
	for id := range m.contexts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sample drives the node's xrmon agent (which reads the registry once
// into its delta ring) and folds the agent's absolute watermarks into
// the legacy Sample history. Still a pure registry consumer — every
// figure comes from a gauge the context or NIC registered — but the
// registry is now read exactly once per tick, by the agent.
func (m *Monitor) sample(c *Context) {
	node := c.Node()
	a := m.agents[node]
	if a == nil {
		return
	}
	a.Sample(c.eng.Now())
	s := Sample{
		At:          c.eng.Now(),
		Channels:    int(a.Abs(xrmon.SlotChannels)),
		QPs:         int(a.Abs(xrmon.SlotQPs)),
		MemOccupied: a.Abs(xrmon.SlotMemOccupied),
		MemInUse:    a.Abs(xrmon.SlotMemInUse),
		MsgsSent:    a.Abs(xrmon.SlotMsgsSent),
		MsgsRecv:    a.Abs(xrmon.SlotMsgsRecv),
		BytesSent:   a.Abs(xrmon.SlotBytesSent),
		BytesRecv:   a.Abs(xrmon.SlotBytesRecv),
		RNRRecv:     a.Abs(xrmon.SlotRNRRecv),
		Retransmits: a.Abs(xrmon.SlotRetx),
		CNPRecv:     a.Abs(xrmon.SlotCNPRecv),
		SlowPolls:   a.Abs(xrmon.SlotSlowPolls),
	}
	buf := m.samples[node]
	if len(buf) < m.MaxSamples {
		m.samples[node] = append(buf, s)
		return
	}
	h := m.head[node]
	buf[h] = s
	m.head[node] = (h + 1) % m.MaxSamples
}

// History returns a node's retained samples oldest-first. The slice is
// a copy; at most MaxSamples entries are retained per node.
func (m *Monitor) History(node fabric.NodeID) []Sample {
	buf := m.samples[node]
	out := make([]Sample, 0, len(buf))
	h := m.head[node]
	out = append(out, buf[h:]...)
	out = append(out, buf[:h]...)
	return out
}

// Latest returns a node's most recent sample; ok is false before the
// first housekeeping tick.
func (m *Monitor) Latest(node fabric.NodeID) (Sample, bool) {
	buf := m.samples[node]
	if len(buf) == 0 {
		return Sample{}, false
	}
	return buf[(m.head[node]+len(buf)-1)%len(buf)], true
}

// --- XR-Stat (§VI-B) ----------------------------------------------------------

// XRStat renders the netstat-like per-connection table for one node. It
// is a pure registry consumer: the header reads the context gauges and
// each row is pivoted from the node's per-channel gauge entries
// ("xrdma.<node>.ch.<qpn>.<field>") in one registry snapshot.
func XRStat(c *Context) string {
	reg := c.tel.Reg
	get := func(name string) int64 {
		v, _ := reg.Value(c.track + "." + name)
		return v
	}
	var b strings.Builder
	fmt.Fprintf(&b, "node %d: %d channels, mem occupy=%d in-use=%d, qp-cache=%d, drain=%s\n",
		c.Node(), get("channels"), get("mem_occupied"), get("mem_inuse"), get("qp_cache"),
		DrainState(get("drain_state")))
	// Windowed rates from the node's xrmon agent ring (the last few
	// housekeeping ticks), when the context is monitored.
	if c.monitor != nil {
		if a := c.monitor.Agent(c.Node()); a != nil && a.Len() >= 2 {
			fmt.Fprintf(&b, "window(%d ticks): tx=%.0f msg/s %.0f B/s, rx=%.0f msg/s %.0f B/s, retx=%d rnr=%d corrupt=%d ka-fails=%d\n",
				a.Len(),
				a.WindowRate(xrmon.SlotMsgsSent), a.WindowRate(xrmon.SlotBytesSent),
				a.WindowRate(xrmon.SlotMsgsRecv), a.WindowRate(xrmon.SlotBytesRecv),
				a.WindowSum(xrmon.SlotRetx), a.WindowSum(xrmon.SlotRNRSent),
				a.WindowSum(xrmon.SlotCorrupt), a.WindowSum(xrmon.SlotKaFails))
		}
	}
	if dropped := c.trace.Dropped(); dropped > 0 {
		fmt.Fprintf(&b, "trace ring truncated: %d records overwritten (cap %d)\n",
			dropped, c.trace.ring.Cap())
	}
	fmt.Fprintf(&b, "%-6s %-6s %-9s %-9s %-10s %-10s %-7s %-6s %-6s %-6s %-8s %-6s %-6s %-6s %-6s %-9s %-6s %-4s %-5s %-8s\n",
		"QPN", "PEER", "SENT", "RECV", "TXBYTES", "RXBYTES", "STALLS", "RNR", "RETX",
		"SCORE", "VERDICT", "REHASH", "RETRY", "READS", "WRITES", "RDBYTES", "RAERRS",
		"VER", "CAPS", "DRAIN")
	// Three row families share the registry: "ch.<qpn>" (exclusive-QP
	// channels), "mch.<cid>" (muxed channels — stable cid identity), and
	// "peeragg.<peer>" (channels folded past ChannelGaugeLimit).
	chPrefix := c.track + ".ch."
	mchPrefix := c.track + ".mch."
	aggPrefix := c.track + ".peeragg."
	rows := make(map[int]map[string]int64)
	mrows := make(map[int]map[string]int64)
	arows := make(map[int]map[string]int64)
	var qpns, cids, aggPeers []int
	add := func(into map[int]map[string]int64, keys *[]int, rest string, v int64) {
		dot := strings.IndexByte(rest, '.')
		if dot < 0 {
			return
		}
		key, err := strconv.Atoi(rest[:dot])
		if err != nil {
			return
		}
		row, ok := into[key]
		if !ok {
			row = make(map[string]int64)
			into[key] = row
			*keys = append(*keys, key)
		}
		row[rest[dot+1:]] = v
	}
	for _, e := range reg.Snapshot() {
		switch {
		case strings.HasPrefix(e.Name, chPrefix):
			add(rows, &qpns, e.Name[len(chPrefix):], e.Value)
		case strings.HasPrefix(e.Name, mchPrefix):
			add(mrows, &cids, e.Name[len(mchPrefix):], e.Value)
		case strings.HasPrefix(e.Name, aggPrefix):
			add(arows, &aggPeers, e.Name[len(aggPrefix):], e.Value)
		}
	}
	sort.Ints(qpns)
	sort.Ints(cids)
	sort.Ints(aggPeers)
	writeRow := func(label string, r map[string]int64) {
		fmt.Fprintf(&b, "%-6s %-6d %-9d %-9d %-10d %-10d %-7d %-6d %-6d %-6.2f %-8s %-6d %-6d %-6d %-6d %-9d %-6d %-4d %-5s %-8s\n",
			label, r["peer"], r["sent"], r["recv"], r["txbytes"], r["rxbytes"],
			r["stalls"], r["rnr"], r["retx"],
			float64(r["path_score"])/100, PathVerdict(r["path_verdict"]).String(),
			r["rehashes"], r["req_retries"],
			r["reads"], r["writes"], r["rdbytes"], r["raerrs"],
			r["ver"], fmt.Sprintf("%#x", r["caps"]), DrainState(r["drain"]))
	}
	for _, q := range qpns {
		writeRow(strconv.Itoa(q), rows[q])
	}
	for _, cid := range cids {
		// Muxed rows print the channel id; the wire QPN changes across
		// shared-QP recoveries and is not the channel's identity.
		writeRow("m"+strconv.Itoa(cid), mrows[cid])
	}
	if len(aggPeers) > 0 {
		var folded int64
		for _, p := range aggPeers {
			folded += arows[p]["chans"]
		}
		fmt.Fprintf(&b, "(+%d channels above ChannelGaugeLimit=%d, folded into per-peer aggregates)\n",
			folded, c.cfg.ChannelGaugeLimit)
		fmt.Fprintf(&b, "%-8s %-6s %-9s %-9s %-10s %-10s %-6s\n",
			"PEERAGG", "CHANS", "SENT", "RECV", "TXBYTES", "RXBYTES", "RETRY")
		for _, p := range aggPeers {
			r := arows[p]
			fmt.Fprintf(&b, "%-8d %-6d %-9d %-9d %-10d %-10d %-6d\n",
				p, r["chans"], r["sent"], r["recv"], r["txbytes"], r["rxbytes"], r["req_retries"])
		}
	}
	for _, row := range c.tenantRows() {
		b.WriteString(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// --- XR-Ping connection matrix (§VI-B) -----------------------------------------

// PingMatrix pings every registered pair that shares a channel and returns
// RTTs in a matrix keyed by [src][dst]; entries without a channel are
// absent. done fires when all outstanding pings resolve.
func (m *Monitor) PingMatrix(done func(map[fabric.NodeID]map[fabric.NodeID]sim.Duration)) {
	result := make(map[fabric.NodeID]map[fabric.NodeID]sim.Duration)
	outstanding := 0
	finished := false
	check := func() {
		if outstanding == 0 && finished {
			done(result)
		}
	}
	for id, c := range m.contexts {
		seen := make(map[fabric.NodeID]bool)
		for _, ch := range c.Channels() {
			if seen[ch.Peer] || ch.Closed() {
				continue
			}
			seen[ch.Peer] = true
			src, dst := id, ch.Peer
			outstanding++
			ch.Ping(func(rtt, _ sim.Duration, err error) {
				outstanding--
				if err == nil {
					if result[src] == nil {
						result[src] = make(map[fabric.NodeID]sim.Duration)
					}
					result[src][dst] = rtt
				}
				check()
			})
		}
	}
	finished = true
	check()
}

// RenderMatrix prints a ping matrix with microsecond entries.
func RenderMatrix(mx map[fabric.NodeID]map[fabric.NodeID]sim.Duration, nodes []fabric.NodeID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s", "")
	for _, d := range nodes {
		fmt.Fprintf(&b, "%8d", d)
	}
	b.WriteByte('\n')
	for _, s := range nodes {
		fmt.Fprintf(&b, "%6d", s)
		for _, d := range nodes {
			if rtt, ok := mx[s][d]; ok {
				fmt.Fprintf(&b, "%7.1fu", rtt.Micros())
			} else {
				fmt.Fprintf(&b, "%8s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

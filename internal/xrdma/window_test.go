package xrdma

import (
	"testing"
	"testing/quick"
)

func TestTxWindowBasics(t *testing.T) {
	w := newTxWindow(4)
	if !w.canSend() || w.inflight() != 0 {
		t.Fatal("fresh window wrong")
	}
	var acked []uint64
	for i := 0; i < 4; i++ {
		seq := w.next(nil)
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d", seq)
		}
		acked = append(acked, seq)
	}
	if w.canSend() {
		t.Fatal("full window should refuse")
	}
	w.ack(2)
	if w.inflight() != 2 || !w.canSend() {
		t.Fatalf("after ack(2): inflight=%d", w.inflight())
	}
	// Stale ack ignored.
	w.ack(1)
	if w.acked != 2 {
		t.Fatal("ack regressed")
	}
	_ = acked
}

func TestTxWindowOnAckedCallbacks(t *testing.T) {
	w := newTxWindow(8)
	var fired []uint64
	for i := 1; i <= 5; i++ {
		seq := uint64(i)
		w.next(func() { fired = append(fired, seq) })
	}
	w.ack(3)
	if len(fired) != 3 || fired[0] != 1 || fired[2] != 3 {
		t.Fatalf("on_acked order: %v", fired)
	}
	w.ack(5)
	if len(fired) != 5 || fired[4] != 5 {
		t.Fatalf("on_acked completion: %v", fired)
	}
}

func TestTxWindowOverflowPanics(t *testing.T) {
	w := newTxWindow(1)
	w.next(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow must panic")
		}
	}()
	w.next(nil)
}

func TestTxWindowAckBeyondSeqPanics(t *testing.T) {
	w := newTxWindow(4)
	w.next(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("ack beyond seq must panic")
		}
	}()
	w.ack(2)
}

func TestRxWindowContiguousAck(t *testing.T) {
	w := newRxWindow(4)
	w.receive(1, true)
	if w.ackValue() != 1 {
		t.Fatalf("rta = %d", w.ackValue())
	}
	// 2 pending (rendezvous), 3 done: rta must stall at 1.
	w.receive(2, false)
	w.receive(3, true)
	if w.ackValue() != 1 {
		t.Fatalf("rta advanced past a hole: %d", w.ackValue())
	}
	w.markRecved(2)
	if w.ackValue() != 3 {
		t.Fatalf("rta = %d, want 3", w.ackValue())
	}
	// Stale markRecved tolerated.
	w.markRecved(1)
	if w.ackValue() != 3 {
		t.Fatal("stale mark moved rta")
	}
}

func TestRxWindowOutOfOrderPanics(t *testing.T) {
	w := newRxWindow(4)
	w.receive(1, true)
	defer func() {
		if recover() == nil {
			t.Fatal("gap must panic")
		}
	}()
	w.receive(3, true)
}

func TestRxWindowOverrunPanics(t *testing.T) {
	w := newRxWindow(2)
	w.receive(1, false)
	w.receive(2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("window overrun must panic")
		}
	}()
	w.receive(3, false)
}

// Property: for any interleaving of receives (some deferred) and
// completions, RTA equals the longest contiguous completed prefix and
// never regresses.
func TestWindowAlgebraProperty(t *testing.T) {
	prop := func(deferred []bool, order []uint8) bool {
		depth := 64
		w := newRxWindow(depth)
		if len(deferred) > depth {
			deferred = deferred[:depth]
		}
		pending := []uint64{}
		for i, d := range deferred {
			seq := uint64(i + 1)
			w.receive(seq, !d)
			if d {
				pending = append(pending, seq)
			}
		}
		// Complete pending in an arbitrary order.
		prevRTA := w.ackValue()
		for _, o := range order {
			if len(pending) == 0 {
				break
			}
			idx := int(o) % len(pending)
			seq := pending[idx]
			pending = append(pending[:idx], pending[idx+1:]...)
			w.markRecved(seq)
			if w.ackValue() < prevRTA {
				return false // regression
			}
			prevRTA = w.ackValue()
		}
		if len(pending) == 0 && w.ackValue() != w.wta {
			return false // everything done → rta == wta
		}
		// RTA must sit exactly before the first still-pending seq.
		minPending := uint64(1 << 62)
		for _, p := range pending {
			if p < minPending {
				minPending = p
			}
		}
		if len(pending) > 0 && w.ackValue() >= minPending {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: sender and receiver windows agree — a sender driven by the
// receiver's ackValue never overflows and eventually drains.
func TestWindowPairProperty(t *testing.T) {
	prop := func(msgCount uint8, deferMask uint64) bool {
		depth := 8
		tx := newTxWindow(depth)
		rx := newRxWindow(depth)
		n := int(msgCount%64) + 1
		sent := 0
		pendingPulls := []uint64{}
		for sent < n {
			for sent < n && tx.canSend() {
				seq := tx.next(nil)
				sent++
				deferred := deferMask&(1<<(seq%64)) != 0
				rx.receive(seq, !deferred)
				if deferred {
					pendingPulls = append(pendingPulls, seq)
				}
			}
			if !tx.canSend() && len(pendingPulls) > 0 {
				// Complete the oldest pull, then ack.
				rx.markRecved(pendingPulls[0])
				pendingPulls = pendingPulls[1:]
			}
			tx.ack(rx.ackValue())
			if tx.inflight() > uint64(depth) {
				return false
			}
			if !tx.canSend() && len(pendingPulls) == 0 && rx.ackValue() == rx.wta && tx.inflight() > 0 {
				return false // stuck with nothing pending
			}
		}
		for len(pendingPulls) > 0 {
			rx.markRecved(pendingPulls[0])
			pendingPulls = pendingPulls[1:]
		}
		tx.ack(rx.ackValue())
		return tx.inflight() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

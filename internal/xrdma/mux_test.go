package xrdma

import (
	"encoding/binary"
	"fmt"
	"testing"

	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/tcpnet"
	"xrdma/internal/verbs"
)

// muxKnobs enables QP multiplexing on every node.
func muxKnobs(qpsPerPeer int) func(int, *Config) {
	return func(_ int, cfg *Config) {
		cfg.QPsPerPeer = qpsPerPeer
	}
}

// openMuxed opens n client channels from ctx i to ctx j over the mux
// plane and waits for every attach to complete.
func openMuxed(t testing.TB, w *testWorld, i, j, port, n int) ([]*Channel, []*Channel) {
	t.Helper()
	var servers []*Channel
	w.ctxs[j].OnChannel(func(ch *Channel) { servers = append(servers, ch) })
	if err := w.ctxs[j].Listen(port); err != nil {
		t.Fatal(err)
	}
	clients := make([]*Channel, 0, n)
	for k := 0; k < n; k++ {
		w.ctxs[i].Connect(fabric.NodeID(j), port, func(ch *Channel, err error) {
			if err != nil {
				t.Fatalf("mux connect: %v", err)
			}
			clients = append(clients, ch)
		})
	}
	w.eng.Run()
	if len(clients) != n || len(servers) != n {
		t.Fatalf("established %d client / %d server channels, want %d", len(clients), len(servers), n)
	}
	return clients, servers
}

// TestMuxManyChannelsShareQPPool: N channels to the same peer must ride
// exactly QPsPerPeer shared QPs — the §III Issue 1 scaling fix — and
// plain request-response must work on every one of them.
func TestMuxManyChannelsShareQPPool(t *testing.T) {
	const chans, pool = 12, 2
	w := newWorld(t, 2, muxKnobs(pool))
	clients, servers := openMuxed(t, w, 0, 1, 6000, chans)
	for _, srv := range servers {
		echoServer(srv)
	}

	if got := len(w.ctxs[0].muxQPs); got != pool {
		t.Fatalf("client created %d shared QPs, want %d", got, pool)
	}
	if got := len(w.ctxs[1].muxQPs); got != pool {
		t.Fatalf("server created %d shared QPs, want %d", got, pool)
	}
	if got := w.ctxs[0].NumChannels(); got != chans {
		t.Fatalf("NumChannels=%d, want %d", got, chans)
	}
	// Channels spread across the pool: no QP hoards them all.
	for _, mx := range w.ctxs[0].muxQPs {
		if len(mx.chans) == 0 || len(mx.chans) == chans {
			t.Fatalf("degenerate channel placement: %d of %d on one QP", len(mx.chans), chans)
		}
	}

	// Every channel echoes independently.
	resps := 0
	for k, cli := range clients {
		payload := []byte(fmt.Sprintf("chan-%d", k))
		cli.SendMsg(payload, 0, func(m *Msg, err error) {
			if err != nil {
				t.Fatalf("echo on channel: %v", err)
			}
			resps++
		})
	}
	w.eng.Run()
	if resps != chans {
		t.Fatalf("%d of %d channels echoed", resps, chans)
	}
}

// TestMuxLazyAttachAndAdmission: ChannelTo returns a cheap descriptor —
// no QP, no windows, no dial — until the first send; with an admission
// cap the attach storm serializes but every channel still establishes.
func TestMuxLazyAttachAndAdmission(t *testing.T) {
	const chans = 8
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.QPsPerPeer = 2
		cfg.AttachAdmission = 2
	})
	var servers []*Channel
	w.ctxs[1].OnChannel(func(ch *Channel) {
		servers = append(servers, ch)
		echoServer(ch)
	})
	if err := w.ctxs[1].Listen(6001); err != nil {
		t.Fatal(err)
	}

	descs := make([]*Channel, 0, chans)
	for k := 0; k < chans; k++ {
		ch, err := w.ctxs[0].ChannelTo(1, 6001)
		if err != nil {
			t.Fatal(err)
		}
		descs = append(descs, ch)
	}
	// Descriptors are inert: no QPs dialed, nothing attached, no windows.
	if len(w.ctxs[0].muxQPs) != 0 {
		t.Fatalf("lazy descriptors dialed %d QPs", len(w.ctxs[0].muxQPs))
	}
	for _, ch := range descs {
		if ch.Attached() || ch.tx != nil || ch.pending != nil || ch.recvBufs != nil {
			t.Fatal("descriptor carries eager state")
		}
	}

	// First send triggers attach; all eight complete despite the cap of 2.
	resps := 0
	for k, ch := range descs {
		payload := []byte(fmt.Sprintf("lazy-%d", k))
		if err := ch.SendMsg(payload, 0, func(m *Msg, err error) {
			if err != nil {
				t.Fatalf("lazy send: %v", err)
			}
			resps++
		}); err != nil {
			t.Fatal(err)
		}
	}
	w.eng.Run()
	if resps != chans {
		t.Fatalf("%d of %d lazy channels delivered", resps, chans)
	}
	for _, ch := range descs {
		if !ch.Attached() {
			t.Fatal("channel never attached")
		}
	}
	if len(servers) != chans {
		t.Fatalf("server accepted %d channels, want %d", len(servers), chans)
	}
}

// TestMuxRecoveryRecoversAllChannelsOnce: one broken shared QP is one
// failure domain — a link flap must degrade and recover every attached
// channel together, with exactly-once delivery per channel across the
// outage and a single shared-QP recovery (not one per channel).
func TestMuxRecoveryRecoversAllChannelsOnce(t *testing.T) {
	const chans = 6
	w := newRecoverWorld(t, 2, func(i int, cfg *Config) {
		cfg.MockEnabled = false // muxed channels have no per-channel mock
		cfg.QPsPerPeer = 1
	})
	clients, servers := openMuxed(t, w, 0, 1, 6002, chans)
	streams := make([]*idStream, chans)
	for k := range servers {
		streams[k] = newIDStream(servers[k])
		streams[k].run(w.eng, clients[k], 500*sim.Microsecond, 150*sim.Millisecond)
	}

	w.eng.AfterBg(20*sim.Millisecond, func() { w.fab.SetHostLink(1, false) })
	w.eng.AfterBg(60*sim.Millisecond, func() { w.fab.SetHostLink(1, true) })
	w.eng.RunFor(400 * sim.Millisecond)

	for k, cli := range clients {
		if cli.Health() != HealthHealthy {
			t.Fatalf("channel %d ended health=%v, want healthy", k, cli.Health())
		}
	}
	if w.ctxs[0].Stats.Degraded == 0 {
		t.Fatal("fault never detected — test is vacuous")
	}
	// The QP is the failure domain: degradations and recoveries are
	// counted per shared QP, never amplified per channel.
	if got := w.ctxs[0].Stats.Degraded; got >= chans {
		t.Errorf("Degraded=%d for %d channels on 1 QP — per-channel amplification", got, chans)
	}
	if w.ctxs[0].Stats.Recoveries == 0 {
		t.Fatal("shared QP never re-established")
	}
	for k, s := range streams {
		if s.sent == 0 {
			t.Fatalf("stream %d sent nothing", k)
		}
		s.check(t)
	}
}

// newMuxGrayWorld builds a world tuned for gray-failure drills: a deep
// RC retry horizon (the brownout must be absorbed by go-back-N, never
// escalate to hard failure) and compressed doctor clocks.
func newMuxGrayWorld(t testing.TB, n int, mutate func(i int, cfg *Config)) *testWorld {
	t.Helper()
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	top := fabric.SmallClos()
	fabric.BuildClos(fab, top)
	net := verbs.NewCMNetwork()
	mon := NewMonitor()
	w := &testWorld{eng: eng, fab: fab, mon: mon}
	nicCfg := rnic.DefaultConfig()
	nicCfg.RetransTimeout = 1 * sim.Millisecond
	nicCfg.RetryLimit = 12
	for i := 0; i < n; i++ {
		host := fab.Host(fabric.NodeID(i))
		nic := rnic.New(eng, host, nicCfg)
		w.nics = append(w.nics, nic)
		vc := verbs.Open(nic)
		cm := verbs.NewCM(vc, net, host)
		cfg := DefaultConfig()
		cfg.PathRehashLimit = 6
		cfg.PathRehashCooldown = 4 * sim.Millisecond
		cfg.StatsInterval = 1 * sim.Millisecond
		cfg.KeepaliveInterval = 5 * sim.Millisecond
		cfg.KeepaliveTimeout = 50 * sim.Millisecond
		if mutate != nil {
			mutate(i, &cfg)
		}
		tcp := tcpnet.New(eng, host, tcpnet.DefaultConfig())
		ctx := NewContext(Options{
			Verbs: vc, CM: cm, Host: host, Config: cfg, Monitor: mon,
			TCP: tcp, MockPort: 9000, Seed: uint64(i + 1),
		})
		w.ctxs = append(w.ctxs, ctx)
	}
	return w
}

// TestMuxPathDoctorRotatesOncePerQP: a gray link under a shared QP must
// be diagnosed once per QP — one flow-label rotation covering all
// channels, each of which observes the verdict transition.
func TestMuxPathDoctorRotatesOncePerQP(t *testing.T) {
	const chans = 5
	w := newMuxGrayWorld(t, 8, muxKnobs(1))
	clients, servers := openMuxed(t, w, 0, 4, 6003, chans) // cross-ToR: 2 uplinks
	for _, srv := range servers {
		echoServer(srv)
	}
	verdicts := make([]int, chans)
	for k, cli := range clients {
		k := k
		cli.OnPathVerdict(func(PathVerdict) { verdicts[k]++ })
	}

	// Brown out the exact uplink the shared QP hashes onto (loss +
	// corruption + added latency — the grayhaul fault shape).
	mx := w.ctxs[0].muxQPs[0]
	idx := fabric.ECMPIndex(clients[0].FlowHash(), 2)
	w.fab.SetLinkImpairment("pod0-tor0", fmt.Sprintf("pod0-leaf%d", idx), 0.12, 0.05, 20*sim.Microsecond)

	// Steady traffic on every channel feeds the scorer.
	stop := false
	for _, cli := range clients {
		cli := cli
		var tick func()
		tick = func() {
			if stop {
				return
			}
			cli.SendMsg([]byte("gray"), 0, func(m *Msg, err error) {})
			w.eng.AfterBg(300*sim.Microsecond, tick)
		}
		w.eng.AfterBg(300*sim.Microsecond, tick)
	}
	w.eng.AfterBg(150*sim.Millisecond, func() {
		stop = true
		w.fab.SetLinkImpairment("pod0-tor0", fmt.Sprintf("pod0-leaf%d", idx), 0, 0, 0)
	})
	w.eng.RunFor(300 * sim.Millisecond)

	if mx.doctor.rehashes == 0 {
		t.Fatal("sick path never rotated the flow label")
	}
	if got := w.ctxs[0].Stats.PathRehashes; got >= int64(chans) {
		t.Errorf("PathRehashes=%d for %d channels on 1 QP — per-channel amplification", got, chans)
	}
	for k, cli := range clients {
		if verdicts[k] == 0 {
			t.Errorf("channel %d never observed a verdict transition", k)
		}
		// The channel-level accessor reads the shared doctor.
		if cli.Rehashes() != mx.doctor.rehashes {
			t.Errorf("channel %d Rehashes=%d, shared doctor says %d", k, cli.Rehashes(), mx.doctor.rehashes)
		}
	}
}

// TestMuxChannelCloseIsolated: closing one muxed channel tears down both
// halves of that channel only — its shared QP and every sibling keep
// working.
func TestMuxChannelCloseIsolated(t *testing.T) {
	const chans = 4
	w := newWorld(t, 2, muxKnobs(1))
	clients, servers := openMuxed(t, w, 0, 1, 6004, chans)
	for _, srv := range servers {
		echoServer(srv)
	}
	var closedErr error
	closed := false
	servers[1].OnClose(func(err error) { closed = true; closedErr = err })

	clients[1].Close()
	w.eng.RunFor(5 * sim.Millisecond)
	if !closed || closedErr != nil {
		t.Fatalf("peer close: ran=%v err=%v, want clean close notification", closed, closedErr)
	}
	if w.ctxs[0].NumChannels() != chans-1 || w.ctxs[1].NumChannels() != chans-1 {
		t.Fatalf("channel counts after close: %d/%d, want %d",
			w.ctxs[0].NumChannels(), w.ctxs[1].NumChannels(), chans-1)
	}
	if w.ctxs[0].muxQPs[0].dead {
		t.Fatal("channel close killed the shared QP")
	}

	// Survivors still echo.
	resps := 0
	for k, cli := range clients {
		if k == 1 {
			continue
		}
		cli.SendMsg([]byte("still here"), 0, func(m *Msg, err error) {
			if err != nil {
				t.Fatalf("survivor echo: %v", err)
			}
			resps++
		})
	}
	w.eng.Run()
	if resps != chans-1 {
		t.Fatalf("%d of %d surviving channels echoed", resps, chans-1)
	}
}

// TestMuxGaugeLimitAggregates: past ChannelGaugeLimit, channels fold
// into one per-peer aggregate gauge row instead of 14 gauges each; the
// aggregate sums match the per-channel counters exactly.
func TestMuxGaugeLimitAggregates(t *testing.T) {
	const chans, limit = 6, 2
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.QPsPerPeer = 1
		cfg.ChannelGaugeLimit = limit
	})
	clients, servers := openMuxed(t, w, 0, 1, 6005, chans)
	for _, srv := range servers {
		echoServer(srv)
	}
	c := w.ctxs[0]
	if c.gaugedChannels != limit {
		t.Fatalf("gaugedChannels=%d, want %d", c.gaugedChannels, limit)
	}
	if c.aggChannels != chans-limit {
		t.Fatalf("aggChannels=%d, want %d", c.aggChannels, chans-limit)
	}

	sends := 0
	for k, cli := range clients {
		for n := 0; n <= k; n++ { // distinct per-channel counts
			sends++
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, uint64(k<<8|n))
			cli.SendMsg(buf, 0, func(m *Msg, err error) {})
		}
	}
	w.eng.Run()

	reg := c.tel.Reg
	agg, ok := reg.Value(fmt.Sprintf("%s.peeragg.1.sent", c.track))
	if !ok {
		t.Fatal("no per-peer aggregate gauge registered")
	}
	var want int64
	for k, cli := range clients {
		if k < limit {
			continue // individually gauged
		}
		want += cli.Counters.MsgsSent
	}
	if agg != want {
		t.Fatalf("aggregate sent=%d, per-channel sum=%d", agg, want)
	}
	if n, ok := reg.Value(fmt.Sprintf("%s.peeragg.1.chans", c.track)); !ok || n != int64(chans-limit) {
		t.Fatalf("aggregate chans=%d ok=%v, want %d", n, ok, chans-limit)
	}

	// Closing an aggregated channel shrinks the aggregate.
	clients[chans-1].Close()
	w.eng.RunFor(5 * sim.Millisecond)
	if c.aggChannels != chans-limit-1 {
		t.Fatalf("aggChannels=%d after close, want %d", c.aggChannels, chans-limit-1)
	}
	_ = sends
}

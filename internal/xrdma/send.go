package xrdma

import (
	"errors"
	"fmt"

	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// ErrAlreadyReplied guards double replies.
var ErrAlreadyReplied = errors.New("xrdma: message already replied")

// SendMsg sends a request (xrdma_send_msg). data may be nil for size-only
// simulation, in which case size gives the payload length. cb, when
// non-nil, receives the response (request-response is X-RDMA's native mode,
// §IV-C); a nil cb makes the message one-way.
//
// Small payloads (≤ SmallMsgSize) travel inline over SEND; larger ones are
// staged in the memory cache and announced, and the receiver pulls them
// with fragmented RDMA READ. Every message goes through the seq-ack
// window regardless of transport — a channel that is degraded, recovering
// or running on the TCP mock keeps accepting sends, and the window
// replays/dedups across cutovers.
func (ch *Channel) SendMsg(data []byte, size int, cb func(*Msg, error)) error {
	if ch.closed {
		return ErrChannelClosed
	}
	if data != nil {
		size = len(data)
	}
	msgID := ch.ctx.nextMsgID()
	if cb != nil {
		rs := &reqState{cb: cb, sentAt: ch.ctx.eng.Now()}
		if ch.ctx.cfg.RequestRetries > 0 {
			// Retain an owned copy of the payload so a timeout can
			// re-issue the request under the same MsgID (budgeted retries,
			// pathdoctor.go) — the caller is free to reuse its buffer the
			// moment SendMsg returns, and a retry must transmit the
			// original bytes.
			if data != nil {
				rs.data = append([]byte(nil), data...)
			}
			rs.size = size
		}
		if ch.pending == nil {
			ch.pending = make(map[uint64]*reqState)
		}
		ch.pending[msgID] = rs
		ch.Counters.ReqsSent++
	}
	ps := &pendingSend{kind: kindReq, data: data, size: size, msgID: msgID}
	if cb == nil {
		ps.oneWay = true
	}
	ch.enqueue(ps)
	return nil
}

// Reply answers a request (responses ride the same window; large ones use
// read-replace-write: the responder stages the payload and the requester
// pulls it with RDMA READ, §IV-C).
func (m *Msg) Reply(data []byte, size int) error {
	if !m.IsReq {
		return fmt.Errorf("xrdma: Reply on a non-request message")
	}
	if m.replied {
		return ErrAlreadyReplied
	}
	m.replied = true
	ch := m.Ch
	if ch.closed {
		return ErrChannelClosed
	}
	if data != nil {
		size = len(data)
	}
	if ent, ok := ch.respCache[m.MsgID]; ok {
		// Retain the response so a duplicate of this request (a client
		// retry whose original response was lost) can be answered from
		// cache without re-invoking the handler.
		ent.replied = true
		ent.size = size
		if data != nil {
			ent.data = make([]byte, len(data))
			copy(ent.data, data)
		}
	}
	ps := &pendingSend{kind: kindResp, data: data, size: size, msgID: m.MsgID}
	if mb := m.blame; mb != nil && mb.rx != nil {
		// The request rode the blame plane: mirror what this side knows —
		// request-direction fabric residency (the in-band accumulator) and
		// local reassembly — back inside the response. Handler time is
		// stamped at response transmit.
		e := &respEcho{reqQueue: mb.rx.Queue, reqPause: mb.rx.Pause, ecn: mb.rx.ECN, recvAt: m.RecvAt}
		if mb.rx.FirstAt > 0 && m.RecvAt > mb.rx.FirstAt {
			e.reasm = m.RecvAt.Sub(mb.rx.FirstAt)
		}
		ps.echo = e
	}
	ch.enqueue(ps)
	return nil
}

func (ch *Channel) enqueue(ps *pendingSend) {
	ps.enqAt = ch.ctx.eng.Now()
	ch.sendQ = append(ch.sendQ, ps)
	if len(ch.sendQ) > ch.Counters.SendQueuePeak {
		ch.Counters.SendQueuePeak = len(ch.sendQ)
	}
	ch.pump()
}

// pump drains the send queue head-of-line in order: window slots gate
// everything; rendezvous messages additionally wait for their staging
// buffer. Strict FIFO keeps wire sequence numbers in submission order.
// The pump also encodes the health gates: a degraded/recovering channel
// holds traffic, a mocked channel waits for its TCP conn, and a freshly
// recovered passive side holds until the peer's QP proves live.
func (ch *Channel) pump() {
	c := ch.ctx
	if ch.attach != attachDone {
		// Lazy mux descriptor: the first queued send is what triggers the
		// QP-pool attach; traffic drains from finishAttach.
		if len(ch.sendQ) > 0 && !ch.closed {
			ch.requestAttach()
		}
		return
	}
	for len(ch.sendQ) > 0 && !ch.closed {
		if ch.resumeOnRx {
			return
		}
		if ch.mock != nil {
			if !ch.mock.ready {
				return
			}
		} else if ch.health != HealthHealthy {
			return
		}
		ps := ch.sendQ[0]
		if !ch.tx.canSend() {
			if !ch.stallFlag {
				ch.stallFlag = true
				ch.Counters.WindowStalls++
				ch.tx.Stalls++
			}
			return
		}
		// Over the mock transport everything goes inline — TCP has no
		// rendezvous read, and ps.data is still at hand.
		large := ps.size > c.cfg.SmallMsgSize && ch.mock == nil
		if large && !ps.ready {
			if !ps.staging {
				ps.staging = true
				c.Mem.AllocT(ch.tenant, ps.size, func(buf Buffer, err error) {
					if ch.closed || ch.mock != nil {
						// The channel died or cut over to mock while the
						// staging allocation was in flight; the message
						// will go inline (or nowhere).
						if err == nil {
							c.Mem.Free(buf)
						}
						ps.staging = false
						if !ch.closed {
							ch.pump()
						}
						return
					}
					if err != nil {
						ch.ctx.logf("stage alloc failed: %v", err)
						ch.sendQ = ch.sendQ[1:]
						// Budget/pool exhaustion is an admission verdict,
						// not a stall: the caller's completion fails now
						// instead of timing out with the message silently
						// dropped.
						ch.failSend(ps, err)
						ch.pump()
						return
					}
					if ps.data != nil {
						copy(buf.Bytes(), ps.data)
					}
					ps.staged = buf
					ps.ready = true
					ps.staging = false
					ch.pump()
				})
			}
			return
		}
		// Tenant QoS gate: the token bucket and window partition admit
		// exactly one frame per true return, immediately transmitted.
		if t := ch.tenant; t != nil && !t.admit(ch, hdrSize+ps.size) {
			return
		}
		ch.stallFlag = false
		ch.sendQ = ch.sendQ[1:]
		ch.transmit(ps, large)
	}
}

func (ch *Channel) transmit(ps *pendingSend, large bool) {
	c := ch.ctx
	kind := ps.kind
	if large {
		if kind == kindReq {
			kind = kindLargeReq
		} else {
			kind = kindLargeResp
		}
		ch.Counters.LargeSent++
	}
	// The record in ch.sent keeps the message replayable until the peer
	// acks it; the on-acked callback retires it and frees any staged
	// rendezvous payload.
	var seq uint64
	seq = ch.tx.next(func() {
		delete(ch.sent, seq)
		if ps.staged.Valid() {
			c.Mem.Free(ps.staged)
			ps.staged = Buffer{}
		}
		if t := ch.tenant; t != nil {
			t.noteAcked(ch)
		}
	})
	if ch.sent == nil {
		ch.sent = make(map[uint64]*pendingSend)
	}
	ch.sent[seq] = ps
	h := wireHdr{
		Kind: kind, Ver: ch.negVer, Seq: seq, Ack: ch.rx.ackValue(),
		MsgID: ps.msgID, Size: uint32(ps.size),
	}
	if ch.mx != nil {
		h.Chan = ch.peerCID
	}
	if t := ch.tenant; t != nil {
		t.noteSend(ch)
		if ch.peerCap(capTenant) {
			// The label extension is negotiation-gated: local QoS accounting
			// always runs, but wire bytes the peer did not advertise for are
			// never emitted.
			h.Flags |= flagTenant
			h.Tenant = t.id
			h.TLabel = t.label
		}
	}
	if ps.oneWay {
		h.Flags |= flagOneWay
	}
	if large {
		h.Addr = ps.staged.Addr
		h.RKey = ps.staged.MR.RKey
	}
	if c.cfg.ReqRspMode && (c.cfg.TraceSampleMask == 0 || ps.msgID&c.cfg.TraceSampleMask == 0) {
		h.Flags |= flagTraced
		h.T1 = int64(c.LocalClock())
	}
	// Blame plane (causal per-message tracing): sampled requests carry the
	// blame bit end-to-end; responses to blamed requests mirror the remote
	// stages. Inline RDMA messages only — mock/rendezvous stay unsampled.
	var blameAcc *telemetry.PktBlame
	if c.cfg.ReqRspMode && ch.mock == nil {
		switch {
		case kind == kindReq && !ps.oneWay && ch.peerCap(capBlame) && ch.blameSampled(ps.msgID):
			h.Flags |= flagTraced | flagBlame
			h.T1 = int64(c.LocalClock())
			blameAcc = &telemetry.PktBlame{}
		case kind == kindResp && ps.echo != nil:
			h.Flags |= flagTraced | flagBlame
			h.T1 = int64(c.LocalClock())
			h.BQueue = int64(ps.echo.reqQueue)
			h.BPause = int64(ps.echo.reqPause)
			h.BReasm = int64(ps.echo.reasm)
			h.BHandler = int64(c.eng.Now().Sub(ps.echo.recvAt))
			h.BECN = ps.echo.ecn
			blameAcc = &telemetry.PktBlame{}
		}
	}
	hb := h.wireBytes()
	wireLen := hb
	if !large {
		wireLen += ps.size
	}
	if t := ch.tenant; t != nil {
		t.Sent++
		t.TxBytes += int64(wireLen)
	}
	var buf []byte
	if !large && ps.data != nil {
		buf = make([]byte, hb+len(ps.data))
		h.encode(buf)
		copy(buf[hb:], ps.data)
	} else {
		buf = make([]byte, hb)
		h.encode(buf)
	}
	ch.noteAckCarried()
	if ch.mock != nil {
		ch.mock.conn.Send(buf, wireLen, nil)
		ch.Counters.MsgsSent++
		ch.Counters.BytesSent += int64(ps.size)
		ch.lastComm = c.eng.Now()
		c.tel.Trace.Instant("msg.send", c.track, ch.lastComm, int64(ps.size))
		if h.Flags&flagTraced != 0 {
			c.trace.onSend(ch, &h)
		}
		return
	}
	wr := &rnic.SendWR{Op: rnic.OpSend, Len: wireLen, Data: buf, Blame: blameAcc}
	if blameAcc != nil && kind == kindReq {
		if rs, ok := ch.pending[ps.msgID]; ok {
			rs.blame = &reqBlame{
				enqAt: ps.enqAt, txAt: c.eng.Now(), wr: wr, acc: blameAcc,
				rtoRef: ch.qp.Counters.RTORecoveryNs, rnrRef: ch.qp.Counters.RNRRecoveryNs,
			}
		}
	}
	sendCB := func(cqe rnic.CQE) {
		if cqe.Status != rnic.StatusOK && !ch.closed && cqe.QPN == ch.qp.QPN {
			// The QPN guard drops stale flushes: a recovery that already
			// swapped in a replacement QP flushes the old one's WRs, and
			// those completions must not re-fail the fresh transport.
			ch.fail(fmt.Errorf("xrdma: send failed: %v", cqe.Status))
		}
	}
	if ch.mx != nil && ch.mx.sched != nil {
		// Tenanted shared QP: the DRR scheduler arbitrates the SQ so the
		// mux pool honors tenant weights instead of FIFO head-of-line.
		ch.mx.sched.submit(ch, ch.qp, wr, sendCB)
	} else {
		c.flow.post(ch.qp, wr, sendCB)
	}
	ch.Counters.MsgsSent++
	ch.Counters.BytesSent += int64(ps.size)
	ch.lastComm = c.eng.Now()
	c.tel.Trace.Instant("msg.send", c.track, ch.lastComm, int64(ps.size))
	if h.Flags&flagTraced != 0 {
		c.trace.onSend(ch, &h)
	}
}

// failSend surfaces a send that could not be staged (tenant budget, pool
// exhaustion): the pending response waiter fails now instead of timing
// out with the message silently dropped. One-way sends and responses have
// no waiter; their drop is the backpressure.
func (ch *Channel) failSend(ps *pendingSend, err error) {
	if ps.kind != kindReq {
		return
	}
	rs, ok := ch.pending[ps.msgID]
	if !ok {
		return
	}
	delete(ch.pending, ps.msgID)
	if rs.cb != nil {
		rs.cb(nil, err)
	}
}

// blameSuspectBudget is how many requests a slow-op incident force-samples.
const blameSuspectBudget = 4

// blameSampled decides whether a request joins the causal trace plane:
// every TraceSampleN-th message, plus the suspect budget a slow-op
// incident armed. TraceSampleN == 0 keeps the plane (and this branch's
// allocations) entirely off.
func (ch *Channel) blameSampled(msgID uint64) bool {
	n := ch.ctx.cfg.TraceSampleN
	if n == 0 {
		return false
	}
	if ch.blameSuspect > 0 {
		ch.blameSuspect--
		return true
	}
	return msgID%n == 0
}

// sendCtrl emits a window-exempt control message (ack/NOP/ping/pong).
func (ch *Channel) sendCtrl(kind msgKind) {
	ch.sendCtrlHdr(&wireHdr{Kind: kind})
}

func (ch *Channel) sendCtrlHdr(h *wireHdr) {
	if ch.closed || ch.rx == nil {
		// rx is nil only on an unattached mux descriptor — there is no wire
		// yet to put a control frame on.
		return
	}
	h.Ver = ch.negVer
	h.Ack = ch.rx.ackValue()
	if ch.mx != nil {
		h.Chan = ch.peerCID
	}
	if ch.mock != nil {
		if !ch.mock.ready {
			return
		}
		buf := make([]byte, h.wireBytes())
		h.encode(buf)
		ch.mock.conn.Send(buf, len(buf), nil)
		if h.Kind == kindAck {
			ch.Counters.AcksSent++
			ch.ctx.Stats.AcksSent++
		}
		ch.noteAckCarried()
		ch.lastComm = ch.ctx.eng.Now()
		return
	}
	if ch.health != HealthHealthy || ch.resumeOnRx {
		// No live RDMA path to put this on; control traffic is advisory
		// (cumulative acks re-ride the next message).
		return
	}
	buf := make([]byte, h.wireBytes())
	h.encode(buf)
	wr := &rnic.SendWR{Op: rnic.OpSend, Len: len(buf), Data: buf}
	ch.ctx.flow.postDirect(ch.qp, wr, func(cqe rnic.CQE) {
		if cqe.Status != rnic.StatusOK && !ch.closed && cqe.QPN == ch.qp.QPN {
			// Same stale-flush guard as the data path: only the current
			// QP's completions may fail the channel.
			ch.fail(fmt.Errorf("xrdma: ctrl send failed: %v", cqe.Status))
		}
	})
	if h.Kind == kindAck {
		ch.Counters.AcksSent++
		ch.ctx.Stats.AcksSent++
	}
	ch.noteAckCarried()
	ch.lastComm = ch.ctx.eng.Now()
}

// noteAckCarried records that the current RTA went out with some message.
func (ch *Channel) noteAckCarried() {
	ch.lastAckVal = ch.rx.ackValue()
	ch.recvSinceAck = 0
	ch.ctx.eng.Cancel(ch.ackEv)
	ch.ackEv = sim.Event{}
}

// maybeAck emits a standalone ack after AckEvery deliveries, or arms the
// delayed-ack timer (§V-B: "after receiving N messages successfully but
// without any ACK, a standalone ACK message will be triggered").
func (ch *Channel) maybeAck() {
	if ch.closed || ch.rx.ackValue() == ch.lastAckVal {
		return
	}
	if ch.recvSinceAck >= ch.ctx.cfg.AckEvery {
		ch.sendCtrl(kindAck)
		return
	}
	if !ch.ackEv.Pending() {
		ch.ackEv = ch.ctx.eng.After(ch.ctx.cfg.AckDelay, func() {
			if !ch.closed && ch.rx.ackValue() > ch.lastAckVal {
				ch.sendCtrl(kindAck)
			}
		})
	}
}

// --- inbound ----------------------------------------------------------------

func (ch *Channel) handleInbound(cqe rnic.CQE) {
	c := ch.ctx
	ch.lastComm = c.eng.Now()
	h, hdrLen, err := decodeHdr(cqe.Data)
	ch.repostRecv(cqe.WRID)
	if err != nil {
		if errors.Is(err, errVersion) {
			var wireVer uint8
			if len(cqe.Data) > 2 {
				wireVer = cqe.Data[2]
			}
			c.noteVerMismatch(ch.Peer, ch.QPN(), wireVer, wireVer)
		}
		c.logf("inbound decode error from peer %d: %v", ch.Peer, err)
		return
	}
	var pay []byte
	if size := int(h.Size); size > 0 && len(cqe.Data) >= hdrLen+size {
		pay = cqe.Data[hdrLen : hdrLen+size]
	}
	ch.handleWire(&h, pay, false, cqe.Blame)
}

// handleWire is the transport-independent inbound path: RDMA receive
// completions and mock TCP messages both land here with a decoded header
// and the inline payload (if carried). rxBlame is the in-band fabric
// accumulator the message's trace bit collected (nil unless blame-traced).
func (ch *Channel) handleWire(h *wireHdr, pay []byte, overMock bool, rxBlame *telemetry.PktBlame) {
	c := ch.ctx
	if ch.resumeOnRx && !overMock {
		// First traffic over the recovered RDMA path: the peer's QP is
		// provably in RTS, release the held replay.
		ch.resumeOnRx = false
		ch.pump()
	}
	// Piggybacked cumulative ack (Algorithm 1 sender RECV_MESSAGE). A
	// rehydrated sender can hear an ack beyond its rewound send edge —
	// the peer acked tail messages the restarted instance has not
	// re-sequenced yet — so the edge clamps the ack; the replay re-earns
	// the remainder when those sequence numbers are reassigned.
	if h.Ack > ch.tx.acked {
		ack := h.Ack
		if ack > ch.tx.seq {
			ack = ch.tx.seq
		}
		ch.tx.ack(ack)
		ch.lastProgress = c.eng.Now()
		ch.nopInFlight = false
		ch.pump()
	}
	// Tenant label: a passive channel binds its tenant from the first
	// labelled frame (classic channels have no CHAN_OPEN to carry it).
	if h.Flags&flagTenant != 0 {
		if ch.tenant == nil {
			ch.tenant = c.resolveTenant(h)
		}
		if t := ch.tenant; t != nil && h.Kind.windowed() {
			t.Recvd++
			t.RxBytes += int64(h.Size)
		}
	}

	switch h.Kind {
	case kindAck:
		ch.nopInFlight = false
	case kindPathHint:
		// The peer's doctor blames the path our flow label picks.
		ch.doctorRef().noteHint(c, c.eng.Now())
	case kindNop:
		// Deadlock breaker: answer with an immediate ack.
		ch.sendCtrl(kindAck)
	case kindPing:
		ch.Counters.Pings++
		// The pong carries this node's clock (trace extension) so the
		// pinger can estimate the offset, NTP-style.
		pong := &wireHdr{Kind: kindPong, MsgID: h.MsgID, Flags: flagTraced, T1: int64(c.LocalClock())}
		ch.sendCtrlHdr(pong)
	case kindPong:
		ch.resolvePing(h)
	case kindWinGrant:
		ch.handleWinGrant(h)
	case kindWinRevoke:
		ch.handleWinRevoke(h)
	case kindReadReq:
		ch.serveMockRead(h)
	case kindReadResp:
		ch.resolveMockRead(h, pay)
	case kindWriteImm:
		ch.applyMockWrite(h, pay)
	case kindReq, kindResp:
		size := int(h.Size)
		msg := &Msg{
			Ch: ch, Data: pay, Len: size, IsReq: h.Kind == kindReq,
			MsgID: h.MsgID, Seq: h.Seq, RecvAt: c.eng.Now(),
			T1: sim.Time(h.T1), Traced: h.Flags&flagTraced != 0,
		}
		if h.Flags&flagBlame != 0 && rxBlame != nil {
			mb := &msgBlame{rx: rxBlame}
			if h.Kind == kindResp {
				mb.reqQueue = sim.Duration(h.BQueue)
				mb.reqPause = sim.Duration(h.BPause)
				mb.reasm = sim.Duration(h.BReasm)
				mb.handler = sim.Duration(h.BHandler)
				mb.ecn = h.BECN
			}
			msg.blame = mb
		}
		if !ch.rx.receive(h.Seq, true) {
			// A cutover replay. If the original delivery completed, just
			// refresh the (evidently lost) ack. If it was announced as a
			// rendezvous whose pull died with the old transport, this
			// inline replay IS the payload — deliver it.
			if ch.rx.isRecved(h.Seq) {
				ch.sendCtrl(kindAck)
				return
			}
			ch.rx.markRecved(h.Seq)
		}
		ch.deliver(msg)
	case kindLargeReq, kindLargeResp:
		size := int(h.Size)
		msg := &Msg{
			Ch: ch, Len: size, IsReq: h.Kind == kindLargeReq,
			MsgID: h.MsgID, Seq: h.Seq,
			T1: sim.Time(h.T1), Traced: h.Flags&flagTraced != 0,
		}
		if !ch.rx.receive(h.Seq, false) {
			if ch.rx.isRecved(h.Seq) {
				ch.sendCtrl(kindAck)
				return
			}
			if ch.pulls[h.Seq] {
				// A pull for this sequence is already in flight (the
				// replay raced a surviving fetch); let it finish.
				return
			}
		}
		seqNo := h.Seq
		if ch.pulls == nil {
			ch.pulls = make(map[uint64]bool)
		}
		ch.pulls[seqNo] = true
		raddr, rkey := h.Addr, h.RKey
		c.Mem.Alloc(size, func(buf Buffer, err error) {
			if ch.closed || ch.mock != nil || ch.health != HealthHealthy {
				if err == nil {
					c.Mem.Free(buf)
				}
				delete(ch.pulls, seqNo)
				return
			}
			if err != nil {
				delete(ch.pulls, seqNo)
				ch.fail(fmt.Errorf("xrdma: rendezvous alloc: %w", err))
				return
			}
			pullStart := c.eng.Now()
			pullQP := ch.qp
			c.flow.fetchRemote(ch.qp, raddr, rkey, buf, size, func(st rnic.Status) {
				// A completion from a pre-recovery transport is stale news:
				// the channel already cut over, and the replayed announce
				// owns the pull marker for this sequence now.
				stale := ch.qp != pullQP || ch.mock != nil
				if !stale {
					delete(ch.pulls, seqNo)
				}
				if ch.closed {
					c.Mem.Free(buf)
					return
				}
				if st != rnic.StatusOK {
					c.Mem.Free(buf)
					if !stale {
						ch.fail(fmt.Errorf("xrdma: rendezvous read failed: %v", st))
					}
					return
				}
				// The pull is one-sided READ residency: attribute it to the
				// read.fetch stage on the timeline.
				c.tel.Trace.Complete(telemetry.StageReadFetch.String(), c.track,
					pullStart, c.eng.Now().Sub(pullStart), int64(h.MsgID))
				if ch.rx.isRecved(seqNo) {
					// A replayed announce re-pulled this message and won
					// the race; drop the duplicate payload.
					c.Mem.Free(buf)
					return
				}
				msg.Data = buf.Bytes()
				msg.RecvAt = c.eng.Now()
				msg.release = func() { c.Mem.Free(buf) }
				ch.Counters.LargeRecv++
				ch.rx.markRecved(seqNo)
				ch.deliver(msg)
			})
		})
	default:
		c.logf("unknown message kind %d from peer %d", h.Kind, ch.Peer)
	}
}

// deliver hands a completed inbound message to the application (inline
// messages at arrival — in order among themselves — and rendezvous
// messages when their pull finishes) and advances the ack machinery.
func (ch *Channel) deliver(msg *Msg) {
	c := ch.ctx
	ch.Counters.MsgsRecv++
	ch.Counters.BytesRecv += int64(msg.Len)
	c.tel.Trace.Instant("msg.deliver", c.track, c.eng.Now(), int64(msg.Len))
	if msg.Traced {
		c.trace.onRecv(ch, msg)
	}
	if msg.IsReq {
		if c.cfg.RequestRetries > 0 {
			// MsgID-level idempotency: a client retry arrives under a
			// fresh wire sequence, so the seq window can't dedup it.
			if ent, dup := ch.respCache[msg.MsgID]; dup {
				if ent.replied {
					// The original response is evidently lost; re-send it
					// from cache without waking the application again.
					ch.enqueue(&pendingSend{kind: kindResp, data: ent.data, size: ent.size, msgID: msg.MsgID})
				}
			} else {
				ch.rememberReq(msg.MsgID)
				if ch.onMessage != nil {
					ch.onMessage(msg)
				}
			}
		} else if ch.onMessage != nil {
			ch.onMessage(msg)
		}
	} else {
		rs, ok := ch.pending[msg.MsgID]
		if ok {
			delete(ch.pending, msg.MsgID)
			ch.Counters.RespsRecv++
			if ch.retryTokens < retryBudgetCap {
				ch.retryTokens += retryCreditPerSuccess
				if ch.retryTokens > retryBudgetCap {
					ch.retryTokens = retryBudgetCap
				}
			}
			ch.doctorRef().observeRTT(c.eng.Now().Sub(rs.sentAt))
			if t := ch.tenant; t != nil {
				t.RTTCount++
				t.RTTSumNs += int64(c.eng.Now().Sub(rs.sentAt))
			}
			if rs.traced || msg.Traced {
				c.trace.onResponse(ch, msg, rs.sentAt)
			}
			if rs.blame != nil && msg.blame != nil {
				c.trace.onBlame(ch, msg, rs)
			}
			if rs.cb != nil {
				rs.cb(msg, nil)
			}
		}
	}
	if msg.release != nil {
		msg.release()
		msg.release = nil
		msg.Data = nil
	}
	ch.recvSinceAck++
	ch.maybeAck()
}

// --- middleware-level ping (XR-Ping, §VI-B) -----------------------------------

type pingState struct {
	sentAt    sim.Time
	sentClock sim.Time
	cb        func(rtt sim.Duration, off sim.Duration, err error)
}

// Ping measures middleware-to-middleware RTT on this channel and estimates
// the clock offset to the peer (the clock-sync service of §VI-A).
func (ch *Channel) Ping(cb func(rtt sim.Duration, offset sim.Duration, err error)) {
	if ch.closed {
		cb(0, 0, ErrChannelClosed)
		return
	}
	if ch.attach != attachDone {
		// Unattached mux descriptor: a ping is traffic like any other, so it
		// triggers the lazy attach and re-issues itself once the wire is up.
		ch.attachCBs = append(ch.attachCBs, func(err error) {
			if err != nil {
				cb(0, 0, err)
				return
			}
			ch.Ping(cb)
		})
		ch.requestAttach()
		return
	}
	id := ch.ctx.nextMsgID()
	if ch.pings == nil {
		ch.pings = make(map[uint64]*pingState)
	}
	ch.pings[id] = &pingState{sentAt: ch.ctx.eng.Now(), sentClock: ch.ctx.LocalClock(), cb: cb}
	ch.sendCtrlHdr(&wireHdr{Kind: kindPing, MsgID: id})
}

func (ch *Channel) resolvePing(h *wireHdr) {
	st, ok := ch.pings[h.MsgID]
	if !ok {
		return
	}
	delete(ch.pings, h.MsgID)
	now := ch.ctx.eng.Now()
	rtt := now.Sub(st.sentAt)
	// NTP-style offset: peer stamped its clock (h.T1) at the midpoint.
	t3 := ch.ctx.LocalClock()
	offset := sim.Duration(sim.Time(h.T1) - (st.sentClock+t3)/2)
	ch.ctx.toff[ch.Peer] = offset
	if st.cb != nil {
		st.cb(rtt, offset, nil)
	}
}

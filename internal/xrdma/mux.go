package xrdma

import (
	"encoding/binary"
	"errors"
	"fmt"

	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/verbs"
)

// QP multiplexing (Config.QPsPerPeer > 0): the connection-scaling layer.
// Per-channel QPs are §III Issue 1's scalability killer — at 4000 hosts a
// full-mesh service needs millions of QPs, each with its own receive pool
// and NIC-side WQE/ICM state. The mux plane shares a small pool of QPs
// per peer node instead: channels become flyweight protocol state (seq-ack
// window + counters), every receive lands in the context's SRQ, and the
// wire header's Chan field demultiplexes inbound messages to the owning
// channel. Channels are lazy descriptors until the first send triggers a
// QP-pool attach (a CHAN_OPEN/CHAN_ACCEPT handshake over the shared QP),
// bounded by an admission cap so a process-start connection storm
// serializes deterministically instead of thundering onto the CM.
//
// Failure domains move with the sharing: keepalive probes, path-doctor
// scoring and ECMP re-pathing, and health recovery all run per shared QP.
// One sick QP rotates its flow label once for all attached channels; one
// broken QP re-establishes once, and every attached channel replays its
// unacked window tail over the replacement — the Algorithm 1 dedup makes
// each cutover exactly-once per channel.

// ErrMuxDisabled is returned when mux-only APIs run on a legacy context.
var ErrMuxDisabled = errors.New("xrdma: QP multiplexing not enabled (Config.QPsPerPeer == 0)")

// Channel attach states. The zero value means "established" so legacy
// channels (and passive muxed channels, created attached) need no setup.
const (
	attachDone    uint8 = iota // established; send path live
	attachLazy                 // descriptor only; first send triggers attach
	attachQueued               // waiting for an admission slot
	attachPending              // CHAN_OPEN in flight (or mux QP still dialing)
)

type muxQPState uint8

const (
	muxDialing muxQPState = iota
	muxReady
	muxDegraded
	muxRecovering
)

// peerMux is the per-peer QP pool: at most Config.QPsPerPeer shared QPs,
// filled on demand and then assigned round-robin.
type peerMux struct {
	peer  fabric.NodeID
	port  int
	slots []*muxQP
	next  int
}

// muxQP is one shared QP and the channels multiplexed onto it.
type muxQP struct {
	c         *Context
	pm        *peerMux // nil on the passive (accepting) side
	slot      int
	initiator bool
	peer      fabric.NodeID
	port      int // establishment port — also the reattach rendezvous
	qp        *rnic.QP
	state     muxQPState
	dead      bool

	chans    map[uint32]*Channel // local cid → attached channel
	peerCIDs map[uint32]uint32   // peer cid → local cid (CHAN_OPEN dedup)
	cids     []uint32            // attach order == ascending cid (deterministic walks)

	epoch    uint64 // invalidates stale dials/timers
	attempts int
	qpns     []uint32 // every local QPN this mux QP has owned

	lastComm  sim.Time
	kaProbing bool
	kaProbeAt sim.Time

	// Hot-upgrade plane: the version and capability set every channel on
	// this shared QP inherits (0/0 = legacy v1 + baselineCaps).
	negVer   uint8
	peerCaps uint32

	// The shared-QP path doctor: counters on a shared QP aggregate every
	// channel's symptoms, so scoring (and the flow-label rotation cure)
	// must run once per QP — per-channel doctors would each see the full
	// delta and rotate the label K times per sick scan.
	doctor pathDoctor

	// Weighted DRR at the shared SQ; nil unless the context is tenanted.
	sched *sqSched
}

// --- mux hello (CM private data) --------------------------------------------

const (
	muxHelloMagic = 0x5158 // "XQ" — mux QP establishment
	// Mux hello format versions: 1 is the legacy 12-byte layout, 2 appends
	// the 6-byte negotiation block ([minVer,maxVer] + capability bitmap).
	muxHelloFmt    = 1
	muxHelloFmtMax = 2
)

func encodeMuxHello(slot int, reattach bool, targetQPN uint32) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint16(b, muxHelloMagic)
	b[2] = muxHelloFmt
	if reattach {
		b[3] = 1
	}
	binary.LittleEndian.PutUint16(b[4:], uint16(slot))
	binary.LittleEndian.PutUint32(b[6:], targetQPN)
	return b
}

// muxHelloBytes is the dial-time hello: the legacy 12-byte format on the
// v1 plane (byte-identical to the pre-negotiation build), or the format-2
// layout carrying this context's version range and capability bitmap.
func (c *Context) muxHelloBytes(slot int, reattach bool, targetQPN uint32) []byte {
	if !c.helloEnabled() {
		return encodeMuxHello(slot, reattach, targetQPN)
	}
	b := make([]byte, 18)
	copy(b, encodeMuxHello(slot, reattach, targetQPN))
	b[2] = muxHelloFmtMax
	h := c.localHello()
	b[12] = h.minVer
	b[13] = h.maxVer
	binary.LittleEndian.PutUint32(b[14:], h.caps)
	return b
}

type muxHello struct {
	slot     int
	reattach bool
	target   uint32

	// Negotiation block (format 2 only). neg distinguishes "legacy hello,
	// assume v1 + baselineCaps" from an explicit offer.
	neg            bool
	minVer, maxVer uint8
	caps           uint32
}

// muxHelloVerdict classifies CM private data for the Listen dispatcher.
type muxHelloVerdict uint8

const (
	muxHelloNo     muxHelloVerdict = iota // not a mux hello (try chanHello / legacy)
	muxHelloYes                           // well-formed mux hello
	muxHelloBadVer                        // mux hello in a format this build does not speak
)

func parseMuxHello(b []byte) (muxHello, muxHelloVerdict) {
	if len(b) < 12 || binary.LittleEndian.Uint16(b) != muxHelloMagic {
		return muxHello{}, muxHelloNo
	}
	if b[2] < muxHelloFmt || b[2] > muxHelloFmtMax {
		// A future hello format: loudly classified (counted + rejected by
		// the caller) instead of the old silent drop that left the dialer
		// waiting out its CM timeout.
		return muxHello{minVer: b[2], maxVer: b[2]}, muxHelloBadVer
	}
	h := muxHello{
		slot:     int(binary.LittleEndian.Uint16(b[4:])),
		reattach: b[3] == 1,
		target:   binary.LittleEndian.Uint32(b[6:]),
	}
	if b[2] >= 2 {
		if len(b) < 18 {
			return muxHello{minVer: b[2], maxVer: b[2]}, muxHelloBadVer
		}
		h.neg = true
		h.minVer = b[12]
		h.maxVer = b[13]
		h.caps = binary.LittleEndian.Uint32(b[14:])
	}
	return h, muxHelloYes
}

// --- context surface ---------------------------------------------------------

func (c *Context) muxEnabled() bool { return c.cfg.QPsPerPeer > 0 }

func (c *Context) nextCID() uint32 { c.cidSeq++; return c.cidSeq }

// muxDepth is the shared QP's send-queue capacity: it must cover the sum
// of the attached channels' windows (queue storage grows lazily, so the
// generous cap is free until used).
func (c *Context) muxDepth() int {
	if d := c.cfg.MuxQPDepth; d > 0 {
		return d
	}
	return 4096
}

// muxDialTimeout budgets a mux redial. Unlike per-channel recovery,
// which dials with recycled QPs from the QP cache, shared QPs are
// SRQ-bound and cannot be cached — both sides pay the full QP
// create+modify hardware-command cost inside the dial window, so the
// configured timeout alone would expire right as the accept lands.
func (c *Context) muxDialTimeout() sim.Duration {
	return c.cfg.RecoverDialTimeout + 2*rnic.QPCreateCost + 8*rnic.QPModifyCost
}

// ChannelTo returns a lazy channel descriptor to (node, port): a few
// hundred bytes of state and no QP, window or buffer until the first send
// (or Ping) triggers the attach handshake. Requires QP multiplexing.
// Options label the descriptor (WithTenant) before any frame leaves.
func (c *Context) ChannelTo(node fabric.NodeID, port int, opts ...ChannelOpt) (*Channel, error) {
	if !c.muxEnabled() {
		return nil, ErrMuxDisabled
	}
	now := c.eng.Now()
	ch := &Channel{
		ctx: c, Peer: node, cid: c.nextCID(), muxPort: port,
		attach: attachLazy, lastComm: now, lastProgress: now, OpenedAt: now,
		retryTokens: retryBudgetCap,
	}
	for _, opt := range opts {
		if err := opt(ch); err != nil {
			return nil, err
		}
	}
	c.chanByCID[ch.cid] = ch
	return ch, nil
}

// requestAttach moves a lazy descriptor toward establishment, honoring
// the admission cap.
func (ch *Channel) requestAttach() {
	if ch.attach != attachLazy || ch.closed {
		return
	}
	c := ch.ctx
	if c.drain != DrainServing {
		// A draining node starts no new work: refuse loudly instead of
		// parking — the admission FIFO is being flushed, not served.
		c.Stats.DrainRefusals++
		c.tel.Flight.Record(c.eng.Now(), telemetry.CatDrain, int32(c.Node()), 0, int64(ch.cid), drainEvRefusal)
		ch.finishAttach(ErrDraining)
		return
	}
	// Shed gate: under global memory pressure, or while this channel's
	// tenant is in a shed episode, new attaches queue instead of
	// establishing — graceful degradation reusing the admission FIFO.
	if ch.shedGated() {
		ch.attach = attachQueued
		c.attachQ = append(c.attachQ, ch)
		if t := ch.tenant; t != nil {
			t.AttachSheds++
			c.tel.Flight.Record(c.eng.Now(), telemetry.CatTenantShed, int32(c.Node()), uint32(t.id), int64(ch.cid), 1)
		}
		return
	}
	if lim := c.cfg.AttachAdmission; lim > 0 && c.attachActive >= lim {
		ch.attach = attachQueued
		c.attachQ = append(c.attachQ, ch)
		return
	}
	ch.startAttach()
}

func (ch *Channel) startAttach() {
	c := ch.ctx
	ch.attach = attachPending
	c.attachActive++
	mx := c.muxFor(ch.Peer, ch.muxPort)
	ch.mx = mx
	mx.enroll(ch)
}

// attachRelease frees one admission slot and starts the first FIFO head
// whose shed gate (if any) has lifted; still-gated heads rotate to the
// tail and wait for the attachKick when their episode ends.
func (c *Context) attachRelease() {
	if c.attachActive > 0 {
		c.attachActive--
	}
	for scan := len(c.attachQ); scan > 0 && len(c.attachQ) > 0; scan-- {
		next := c.attachQ[0]
		c.attachQ = c.attachQ[1:]
		if next.closed || next.attach != attachQueued {
			continue
		}
		if next.shedGated() {
			c.attachQ = append(c.attachQ, next)
			continue
		}
		next.startAttach()
		return
	}
}

// finishAttach completes (or fails) a lazy channel's establishment.
func (ch *Channel) finishAttach(err error) {
	c := ch.ctx
	held := ch.attach == attachPending
	cbs := ch.attachCBs
	ch.attachCBs = nil
	if err != nil {
		ch.attach = attachLazy // teardown below must not re-release
		if held {
			c.attachRelease()
		}
		for _, cb := range cbs {
			cb(err)
		}
		if !ch.closed {
			c.Stats.ChannelsBroken++
			ch.teardown(err)
		}
		return
	}
	ch.attach = attachDone
	ch.tx = newTxWindow(c.cfg.WindowDepth)
	ch.rx = newRxWindow(c.cfg.WindowDepth)
	ch.qp = ch.mx.qp
	// Channels inherit the shared QP's negotiated version and caps: the
	// hello ran once per transport, not once per flyweight channel.
	ch.setNegotiated(ch.mx.negVer, ch.mx.peerCaps)
	c.Stats.ChannelsOpened++
	ch.registerGauges()
	if held {
		c.attachRelease()
	}
	for _, cb := range cbs {
		cb(nil)
	}
	ch.pump()
}

// muxFor picks (creating on demand) the shared QP a new channel attaches
// to: fill the pool first, then round-robin, replacing dead slots.
func (c *Context) muxFor(peer fabric.NodeID, port int) *muxQP {
	pm := c.mux[peer]
	if pm == nil {
		pm = &peerMux{peer: peer, port: port}
		c.mux[peer] = pm
	}
	if len(pm.slots) < c.cfg.QPsPerPeer {
		mx := c.newMuxQP(pm, len(pm.slots))
		pm.slots = append(pm.slots, mx)
		return mx
	}
	i := pm.next % len(pm.slots)
	pm.next++
	mx := pm.slots[i]
	if mx.dead {
		mx = c.newMuxQP(pm, i)
		pm.slots[i] = mx
	}
	return mx
}

func (c *Context) newMuxQP(pm *peerMux, slot int) *muxQP {
	mx := &muxQP{
		c: c, pm: pm, slot: slot, initiator: true, peer: pm.peer, port: pm.port,
		state:    muxDialing,
		chans:    make(map[uint32]*Channel),
		peerCIDs: make(map[uint32]uint32),
	}
	mx.initSched()
	c.muxQPs = append(c.muxQPs, mx)
	epoch := mx.epoch
	hello := c.muxHelloBytes(slot, false, 0)
	c.ensureSRQ()
	c.cm.Connect(pm.peer, pm.port, hello, nil, c.muxDepth(), c.sendCQ, c.recvCQ, c.srq, func(conn *verbs.Conn, err error) {
		if mx.epoch != epoch || mx.dead {
			if err == nil {
				c.vctx.NIC.DestroyQP(conn.QP)
			}
			return
		}
		if err != nil {
			mx.teardownAll(fmt.Errorf("xrdma: mux dial to %d:%d: %w", pm.peer, pm.port, err))
			return
		}
		mx.established(conn)
	})
	return mx
}

// established installs the freshly dialed QP and opens every waiting
// channel. The acceptor's REP carries the settled negotiation verdict
// (absent from legacy acceptors → v1 + baselineCaps).
func (mx *muxQP) established(conn *verbs.Conn) {
	if verdict, ok := parseChanHello(conn.PeerData); ok {
		mx.negVer = verdict.maxVer
		mx.peerCaps = verdict.caps
	}
	mx.installQP(conn.QP)
	mx.state = muxReady
	mx.lastComm = mx.c.eng.Now()
	for _, ch := range mx.channels() {
		if ch.attach == attachPending {
			mx.sendChanOpen(ch)
		}
	}
}

func (mx *muxQP) installQP(qp *rnic.QP) {
	c := mx.c
	mx.qp = qp
	c.muxByQPN[qp.QPN] = mx
	c.muxRecoverIdx[qp.QPN] = mx
	mx.qpns = append(mx.qpns, qp.QPN)
}

// enroll attaches a channel to this mux QP; the CHAN_OPEN goes out as
// soon as the QP is live.
func (mx *muxQP) enroll(ch *Channel) {
	mx.chans[ch.cid] = ch
	mx.cids = append(mx.cids, ch.cid)
	if mx.state == muxReady {
		mx.sendChanOpen(ch)
	}
}

// detach removes a channel (teardown).
func (mx *muxQP) detach(ch *Channel) {
	delete(mx.chans, ch.cid)
	for i, cid := range mx.cids {
		if cid == ch.cid {
			mx.cids = append(mx.cids[:i], mx.cids[i+1:]...)
			break
		}
	}
	if ch.peerCID != 0 {
		delete(mx.peerCIDs, ch.peerCID)
	}
}

// channels snapshots attached channels in ascending cid order (cids are
// assigned monotonically, so attach order is already sorted).
func (mx *muxQP) channels() []*Channel {
	out := make([]*Channel, 0, len(mx.cids))
	for _, cid := range mx.cids {
		if ch := mx.chans[cid]; ch != nil && !ch.closed {
			out = append(out, ch)
		}
	}
	return out
}

// initSched attaches the weighted DRR scheduler when the context is
// tenanted; zero-tenant configs keep the direct post path bit-for-bit.
func (mx *muxQP) initSched() {
	if len(mx.c.cfg.Tenants) == 0 {
		return
	}
	mx.sched = newSQSched(mx.c, func() uint32 {
		if mx.qp != nil {
			return mx.qp.QPN
		}
		return 0
	})
}

func (mx *muxQP) sendChanOpen(ch *Channel) {
	h := &wireHdr{Kind: kindChanOpen, Chan: ch.cid, MsgID: uint64(ch.muxPort)}
	if t := ch.tenant; t != nil {
		// The label rides the open so the passive side binds the tenant
		// before the first data frame arrives.
		h.Flags |= flagTenant
		h.Tenant = t.id
		h.TLabel = t.label
	}
	mx.sendCtrl(h)
}

// sendCtrl emits a mux-plane control frame directly on the shared QP.
func (mx *muxQP) sendCtrl(h *wireHdr) {
	if mx.dead || mx.state != muxReady {
		return
	}
	buf := make([]byte, h.wireBytes())
	h.encode(buf)
	wr := &rnic.SendWR{Op: rnic.OpSend, Len: len(buf), Data: buf}
	mx.c.flow.postDirect(mx.qp, wr, func(cqe rnic.CQE) {
		if cqe.Status != rnic.StatusOK && !mx.dead && cqe.QPN == mx.qp.QPN {
			// Stale-flush guard: completions from an already-replaced QP
			// must not re-fail the adopted one.
			mx.fail(fmt.Errorf("xrdma: mux ctrl send failed: %v", cqe.Status))
		}
	})
	mx.lastComm = mx.c.eng.Now()
}

// --- passive side ------------------------------------------------------------

// acceptMux handles a mux hello on an application Listen port: a fresh
// shared QP (attach) or the re-establishment of a broken one (reattach).
func (c *Context) acceptMux(req *verbs.ConnReq, hello muxHello, port int) {
	if c.srq == nil {
		req.Reject("mux requires SRQ mode")
		return
	}
	c.ensureSRQ()
	if hello.reattach {
		mx := c.muxRecoverIdx[hello.target]
		if mx == nil || mx.dead || mx.peer != req.From {
			req.Reject("no such mux QP")
			return
		}
		if mx.state == muxReady {
			// The dialer noticed the fault first; park our side so the
			// adoption runs from a consistent state.
			mx.fail(fmt.Errorf("peer-initiated mux recovery"))
		}
		c.vctx.NIC.CreateQP(c.muxDepth(), c.muxDepth(), c.sendCQ, c.recvCQ, c.srq, func(qp *rnic.QP) {
			req.Accept(qp, func(conn *verbs.Conn, err error) {
				if err != nil || mx.dead {
					c.vctx.NIC.DestroyQP(qp)
					return
				}
				mx.adopt(conn, false)
			})
		})
		return
	}
	if c.drain != DrainServing {
		// Fresh shared-QP establishment is new work; a draining node
		// refuses it (reattach above still serves in-flight channels).
		c.refuseDraining(req)
		return
	}
	ver, caps, ok := c.settle(chanHello{minVer: hello.minVer, maxVer: hello.maxVer, caps: hello.caps}, hello.neg)
	if !ok {
		c.noteVerMismatch(req.From, 0, hello.minVer, hello.maxVer)
		req.Reject(errVersion.Error())
		return
	}
	mx := &muxQP{
		c: c, slot: hello.slot, initiator: false, peer: req.From, port: port,
		state:    muxDialing,
		chans:    make(map[uint32]*Channel),
		peerCIDs: make(map[uint32]uint32),
		negVer:   ver, peerCaps: caps,
	}
	if hello.neg {
		req.ReplyData = encodeChanHello(chanHello{minVer: ver, maxVer: ver, caps: caps})
	}
	mx.initSched()
	c.muxQPs = append(c.muxQPs, mx)
	c.vctx.NIC.CreateQP(c.muxDepth(), c.muxDepth(), c.sendCQ, c.recvCQ, c.srq, func(qp *rnic.QP) {
		req.Accept(qp, func(conn *verbs.Conn, err error) {
			if err != nil {
				c.vctx.NIC.DestroyQP(qp)
				mx.dead = true
				return
			}
			mx.installQP(conn.QP)
			mx.state = muxReady
			mx.lastComm = c.eng.Now()
		})
	})
}

// --- inbound demux -----------------------------------------------------------

// handleRecv routes one receive completion on a shared QP: mux-plane
// control frames are handled here, everything else demultiplexes to the
// owning channel by the header's Chan field (the receiver's cid).
func (mx *muxQP) handleRecv(cqe rnic.CQE) {
	c := mx.c
	if cqe.Status != rnic.StatusOK {
		c.recycleSRQ(cqe.WRID)
		mx.fail(fmt.Errorf("xrdma: mux recv completion error: %v", cqe.Status))
		return
	}
	mx.lastComm = c.eng.Now()
	h, hdrLen, err := decodeHdr(cqe.Data)
	var wireVer uint8
	if len(cqe.Data) > 2 {
		wireVer = cqe.Data[2]
	}
	c.recycleSRQ(cqe.WRID)
	if err != nil {
		if errors.Is(err, errVersion) {
			// A frame from a release outside our version range: counted as
			// an upgrade-plane event, not lumped in with corruption.
			c.noteVerMismatch(mx.peer, cqe.QPN, wireVer, wireVer)
		}
		c.logf("mux inbound decode error from peer %d: %v", mx.peer, err)
		return
	}
	switch h.Kind {
	case kindChanOpen:
		mx.handleChanOpen(&h)
	case kindChanAccept:
		mx.handleChanAccept(&h)
	case kindChanClose:
		if ch := mx.chans[h.Chan]; ch != nil {
			ch.peerClosed = true
			if ch.attach == attachPending {
				// The peer refused our CHAN_OPEN (it is draining): resolve
				// the waiting attach loudly instead of letting it hang.
				ch.finishAttach(ErrDraining)
				return
			}
			ch.teardown(nil)
		}
	case kindMuxSick:
		// The responder's doctor gave up on the shared QP (e.g. inbound
		// corruption its own flow-label rotation cannot cure). Recovery is
		// initiator-owned: treat the report as our own escalation.
		if mx.initiator {
			mx.fail(fmt.Errorf("xrdma: peer reported shared QP sick"))
		}
	case kindPathHint:
		// The peer's doctor blames the path this QP's flow label picks.
		mx.doctor.noteHint(c, c.eng.Now())
	default:
		ch := mx.chans[h.Chan]
		if ch == nil || ch.closed {
			return
		}
		var pay []byte
		if size := int(h.Size); size > 0 && len(cqe.Data) >= hdrLen+size {
			pay = cqe.Data[hdrLen : hdrLen+size]
		}
		ch.lastComm = mx.lastComm
		ch.handleWire(&h, pay, false, cqe.Blame)
	}
}

// handleChanOpen creates the passive half of a muxed channel. The peer's
// cid keys the dedup: a replayed open (lost accept across a mux
// recovery) only re-sends the accept.
func (mx *muxQP) handleChanOpen(h *wireHdr) {
	c := mx.c
	if lcid, dup := mx.peerCIDs[h.Chan]; dup {
		mx.sendCtrl(&wireHdr{Kind: kindChanAccept, Chan: h.Chan, MsgID: uint64(lcid)})
		return
	}
	if c.drain != DrainServing {
		// New channel over an existing shared QP is still new work: close
		// it back so the dialer's attach fails with ErrDraining instead of
		// hanging until the restart.
		c.Stats.DrainRefusals++
		c.tel.Flight.Record(c.eng.Now(), telemetry.CatDrain, int32(c.Node()), mx.qp.QPN, int64(h.Chan), drainEvRefusal)
		mx.sendCtrl(&wireHdr{Kind: kindChanClose, Chan: h.Chan})
		return
	}
	now := c.eng.Now()
	ch := &Channel{
		ctx: c, Peer: mx.peer, cid: c.nextCID(), peerCID: h.Chan, mx: mx, qp: mx.qp,
		muxPort: int(h.MsgID),
		tx:      newTxWindow(c.cfg.WindowDepth), rx: newRxWindow(c.cfg.WindowDepth),
		lastComm: now, lastProgress: now, OpenedAt: now, retryTokens: retryBudgetCap,
	}
	ch.setNegotiated(mx.negVer, mx.peerCaps)
	if h.Flags&flagTenant != 0 && len(c.tenants) > 0 {
		ch.tenant = c.resolveTenant(h)
	}
	c.chanByCID[ch.cid] = ch
	mx.chans[ch.cid] = ch
	mx.cids = append(mx.cids, ch.cid)
	mx.peerCIDs[ch.peerCID] = ch.cid
	c.Stats.ChannelsOpened++
	ch.registerGauges()
	mx.sendCtrl(&wireHdr{Kind: kindChanAccept, Chan: h.Chan, MsgID: uint64(ch.cid)})
	if c.onChannel != nil {
		c.onChannel(ch)
	}
}

func (mx *muxQP) handleChanAccept(h *wireHdr) {
	ch := mx.c.chanByCID[h.Chan]
	if ch == nil || ch.closed || ch.attach == attachDone {
		return
	}
	ch.peerCID = uint32(h.MsgID)
	mx.peerCIDs[ch.peerCID] = ch.cid
	ch.finishAttach(nil)
}

// --- shared-QP keepalive (§V-A at mux granularity) ---------------------------

// keepalive probes one shared QP: one zero-byte write covers every
// attached channel, so the probe load is O(QPs), not O(channels).
func (mx *muxQP) keepalive(now sim.Time) {
	if mx.dead || mx.state != muxReady {
		return
	}
	c := mx.c
	cfg := &c.cfg
	if mx.kaProbing {
		nicCfg := &c.vctx.NIC.Cfg
		deadline := sim.Duration(nicCfg.RetryLimit+2) * nicCfg.RetransTimeout
		if cfg.KeepaliveTimeout > deadline {
			deadline = cfg.KeepaliveTimeout
		}
		if now.Sub(mx.kaProbeAt) > deadline {
			c.Stats.KeepaliveFails++
			c.tel.Flight.Trip(now, telemetry.CatKeepaliveFail, int32(c.Node()), mx.qp.QPN)
			c.logf("keepalive: peer %d unreachable, failing mux qpn=%d (%d channels)", mx.peer, mx.qp.QPN, len(mx.chans))
			mx.fail(ErrPeerDead)
		}
		return
	}
	if now.Sub(mx.lastComm) < cfg.KeepaliveInterval {
		return
	}
	mx.kaProbing = true
	mx.kaProbeAt = now
	c.Stats.KeepaliveProbes++
	c.tel.Flight.Record(now, telemetry.CatKeepaliveProbe, int32(c.Node()), mx.qp.QPN, int64(mx.peer), 0)
	wr := &rnic.SendWR{Op: rnic.OpWrite, Len: 0}
	c.flow.postDirect(mx.qp, wr, func(cqe rnic.CQE) {
		if mx.dead || cqe.QPN != mx.qp.QPN {
			return // stale completion from a replaced QP
		}
		mx.kaProbing = false
		if cqe.Status != rnic.StatusOK {
			c.Stats.KeepaliveFails++
			c.tel.Flight.Trip(c.eng.Now(), telemetry.CatKeepaliveFail, int32(c.Node()), mx.qp.QPN)
			mx.fail(ErrPeerDead)
			return
		}
		mx.lastComm = c.eng.Now()
	})
}

// --- shared-QP recovery ------------------------------------------------------

// fail parks every attached channel and starts re-establishing the
// shared QP. The QP is the failure domain: channels recover together,
// each replaying its own unacked tail exactly once.
func (mx *muxQP) fail(cause error) {
	c := mx.c
	if mx.dead || mx.state == muxDegraded || mx.state == muxRecovering {
		return
	}
	if mx.state == muxDialing {
		mx.teardownAll(cause)
		return
	}
	if !mx.initiator {
		// Only the initiator can redial a shared QP — the passive side has
		// no dial route. Ask it to. When sickness was declared by the path
		// doctor (not a hard verbs error) the QP is still in RTS, so this
		// ctrl frame rides the reliable wire. Fire-and-forget (nil cb): if
		// the QP really is broken the post just flushes and the initiator's
		// keepalive finds out on its own.
		h := &wireHdr{Kind: kindMuxSick}
		buf := make([]byte, h.wireBytes())
		h.encode(buf)
		c.flow.postDirect(mx.qp, &rnic.SendWR{Op: rnic.OpSend, Len: len(buf), Data: buf}, nil)
	}
	now := c.eng.Now()
	mx.state = muxDegraded
	mx.epoch++
	mx.attempts = 0
	mx.kaProbing = false
	if mx.sched != nil {
		// Queued unposted frames drop here; requeueUnacked replays them
		// through the scheduler after adoption.
		mx.sched.reset()
	}
	c.Stats.Degraded++
	c.tel.Flight.Trip(now, telemetry.CatChannelDegraded, int32(c.Node()), mx.qp.QPN)
	c.tel.Trace.Instant("mux.degraded", c.track, now, int64(mx.peer))
	c.logf("mux qpn=%d peer=%d degraded (%d channels): %v", mx.qp.QPN, mx.peer, len(mx.chans), cause)
	for _, ch := range mx.channels() {
		if ch.attach != attachDone {
			continue // still waiting for accept; re-opened after recovery
		}
		ch.setHealth(HealthDegraded)
		ch.degradedAt = now
		c.eng.Cancel(ch.ackEv)
		ch.ackEv = sim.Event{}
		ch.kaProbing = false
		ch.nopInFlight = false
		ch.stallFlag = false
	}
	if mx.initiator {
		mx.scheduleRedial(cause)
		return
	}
	epoch := mx.epoch
	c.eng.AfterBg(c.recoverGrace(), func() {
		if mx.dead || mx.epoch != epoch || mx.state == muxReady {
			return
		}
		mx.teardownAll(cause)
	})
}

func (mx *muxQP) scheduleRedial(cause error) {
	c := mx.c
	if mx.attempts >= c.cfg.RecoverRetries {
		mx.teardownAll(cause)
		return
	}
	epoch := mx.epoch
	c.eng.AfterBg(recoverBackoffDur(c, mx.attempts), func() {
		if mx.dead || mx.epoch != epoch || mx.state != muxDegraded {
			return
		}
		mx.tryRedial(cause)
	})
}

func (mx *muxQP) tryRedial(cause error) {
	c := mx.c
	if !c.vctx.NIC.Alive() {
		mx.attempts++
		mx.scheduleRedial(cause)
		return
	}
	mx.state = muxRecovering
	mx.attempts++
	c.Stats.RecoverAttempts++
	mx.epoch++
	epoch := mx.epoch
	settled := false
	c.eng.AfterBg(c.muxDialTimeout(), func() {
		if settled || mx.dead || mx.epoch != epoch {
			return
		}
		settled = true
		mx.state = muxDegraded
		mx.scheduleRedial(cause)
	})
	hello := c.muxHelloBytes(mx.slot, true, mx.qp.RemoteQPN)
	c.ensureSRQ()
	c.cm.Connect(mx.peer, mx.port, hello, nil, c.muxDepth(), c.sendCQ, c.recvCQ, c.srq, func(conn *verbs.Conn, err error) {
		if settled || mx.dead || mx.epoch != epoch {
			if err == nil {
				c.vctx.NIC.DestroyQP(conn.QP)
			}
			return
		}
		settled = true
		if err != nil {
			mx.state = muxDegraded
			mx.scheduleRedial(cause)
			return
		}
		mx.adopt(conn, true)
	})
}

// adopt swaps in the replacement shared QP and resumes every attached
// channel: each replays its unacked tail through the normal pump (the
// receiver's window dedups survivors), pending attaches re-send their
// CHAN_OPEN, and the passive side holds each channel's replay until the
// dialer's per-channel NOP beacon proves the new QP is in RTS.
func (mx *muxQP) adopt(conn *verbs.Conn, initiator bool) {
	c := mx.c
	now := c.eng.Now()
	if mx.qp != nil {
		delete(c.muxByQPN, mx.qp.QPN)
		// Shared QPs are SRQ-bound and never enter the (per-channel) QP
		// cache: a recycled SRQ QP handed to an exclusive channel could
		// not post per-channel receives.
		c.vctx.NIC.DestroyQP(mx.qp)
	}
	mx.installQP(conn.QP)
	mx.state = muxReady
	mx.epoch++
	mx.attempts = 0
	mx.kaProbing = false
	mx.lastComm = now
	mx.doctor.resetEpisode()
	if mx.sched != nil {
		mx.sched.reset()
	}
	c.Stats.Recoveries++
	c.tel.Flight.Record(now, telemetry.CatChannelRecovered, int32(c.Node()), mx.qp.QPN, int64(mx.peer), int64(len(mx.chans)))
	c.tel.Trace.Instant("mux.recovered", c.track, now, int64(mx.peer))
	c.logf("mux peer=%d recovered on qpn=%d (%d channels, initiator=%v)", mx.peer, mx.qp.QPN, len(mx.chans), initiator)
	for _, ch := range mx.channels() {
		if ch.attach != attachDone {
			if initiator && ch.attach == attachPending {
				mx.sendChanOpen(ch)
			}
			continue
		}
		ch.qp = mx.qp
		ch.requeueUnacked()
		ch.kaProbing = false
		ch.nopInFlight = false
		ch.stallFlag = false
		ch.lastComm = now
		ch.lastProgress = now
		ch.pulls = nil
		ch.setHealth(HealthHealthy)
		if initiator {
			ch.resumeOnRx = false
			ch.sendCtrl(kindNop) // per-channel beacon: our QP is RTS
			ch.pump()
		} else {
			ch.resumeOnRx = true
		}
	}
}

// teardownAll is the terminal path: the redial budget ran out (or the
// initial dial failed), so every channel on this QP dies. Muxed channels
// have no per-channel Mock fallback — the shared QP is the unit of
// fate (DESIGN §12).
func (mx *muxQP) teardownAll(cause error) {
	if mx.dead {
		return
	}
	mx.dead = true
	mx.epoch++
	c := mx.c
	if mx.sched != nil {
		mx.sched.reset()
	}
	c.logf("mux peer=%d beyond recovery (%d channels): %v", mx.peer, len(mx.chans), cause)
	for _, ch := range mx.channels() {
		if ch.attach == attachPending || ch.attach == attachQueued {
			ch.finishAttach(cause)
			continue
		}
		c.Stats.ChannelsBroken++
		ch.teardown(cause)
	}
	if mx.qp != nil {
		delete(c.muxByQPN, mx.qp.QPN)
		c.vctx.NIC.DestroyQP(mx.qp)
		mx.qp = nil
	}
	for _, q := range mx.qpns {
		if c.muxRecoverIdx[q] == mx {
			delete(c.muxRecoverIdx, q)
		}
	}
}

// --- shared-QP path doctor ---------------------------------------------------

// pathScan runs the gray-failure scorer once per shared QP. The shared
// QP's counters aggregate every attached channel's symptoms, so one scan
// (and at most one flow-label rotation) covers them all — per-channel
// doctors would each see the full counter delta and rotate K times per
// sick tick. Escalation hands the whole QP to the mux recovery machine.
func (mx *muxQP) pathScan(now sim.Time) {
	c := mx.c
	d := &mx.doctor
	if mx.dead || mx.qp == nil {
		return
	}
	retx := mx.qp.Counters.Retransmits
	rnr := mx.qp.Counters.RNRNakRecv
	corrupt := mx.qp.Counters.CorruptDrops
	if mx.state != muxReady || !d.inited {
		d.resync(retx, rnr, corrupt)
		return
	}
	if d.scoreScan(retx, rnr, corrupt) {
		v := d.verdict
		c.tel.Flight.Record(now, telemetry.CatPathVerdict, int32(c.Node()), mx.qp.QPN, int64(v), int64(d.score*100))
		c.tel.Trace.Instant("path.verdict", c.track, now, int64(v))
		d.log = append(d.log, fmt.Sprintf("t=%v node=%d path=%v score=%d", now, c.Node(), v, int64(d.score*100)))
		for _, ch := range mx.channels() {
			if ch.onPathVerdict != nil {
				ch.onPathVerdict(v)
			}
		}
	}
	switch d.verdict {
	case PathClean:
		d.sickScans = 0
		if d.rotations > 0 {
			d.cleanScans++
			if d.cleanScans >= pdCleanScansToForgive {
				d.rotations = 0
				d.cleanScans = 0
			}
		}
	case PathSuspect:
		d.cleanScans = 0
	case PathSick:
		d.cleanScans = 0
		d.maybeHint(c, now, func() { mx.sendCtrl(&wireHdr{Kind: kindPathHint}) })
		d.rotateOrEscalate(c, mx.qp.QPN, now, func(err error) { mx.fail(err) })
	}
}

package xrdma

import (
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
)

// flowCtl implements §V-C: the context limits outstanding RDMA work
// requests to N, queueing the excess, and splits large one-sided
// operations into moderate fixed-size fragments so a single huge WR cannot
// monopolise the RNIC pipeline. Both mechanisms are pure software on top
// of the verbs API — "without specific hardware or software constraints".
type flowCtl struct {
	ctx         *Context
	limit       int
	outstanding int
	queue       []flowItem

	// Counters.
	Queued    int64 // WRs that had to wait for a slot
	Fragments int64 // fragments produced by splitting
	Posted    int64
	PeakQueue int
}

type flowItem struct {
	qp *rnic.QP
	wr *rnic.SendWR
	cb func(rnic.CQE)
}

func newFlowCtl(ctx *Context, limit int) *flowCtl {
	return &flowCtl{ctx: ctx, limit: limit}
}

// post submits a WR under the outstanding limit; cb fires on completion.
// The limit governs the bulk one-sided data plane (the fragmented READs of
// the rendezvous path): §V-C's congestion problem is "large size requests
// block the RNIC". Inline SENDs are already bounded by the per-channel
// seq-ack window, so they bypass the queue — throttling them would only
// add latency to the traffic flow control exists to protect.
func (f *flowCtl) post(qp *rnic.QP, wr *rnic.SendWR, cb func(rnic.CQE)) {
	if wr.Op == rnic.OpRead && f.outstanding >= f.limit {
		f.Queued++
		f.queue = append(f.queue, flowItem{qp: qp, wr: wr, cb: cb})
		if len(f.queue) > f.PeakQueue {
			f.PeakQueue = len(f.queue)
		}
		return
	}
	f.doPost(qp, wr, cb)
}

// postDirect bypasses the limiter — keepalive probes and acks are tiny
// and must not sit behind queued bulk data.
func (f *flowCtl) postDirect(qp *rnic.QP, wr *rnic.SendWR, cb func(rnic.CQE)) {
	wr.ID = f.ctx.nextWRID()
	if cb != nil {
		f.ctx.wrCBs[wr.ID] = cb
	}
	if err := qp.PostSend(wr); err != nil {
		delete(f.ctx.wrCBs, wr.ID)
		if cb != nil {
			cb(rnic.CQE{WRID: wr.ID, QPN: qp.QPN, Op: wr.Op, Status: rnic.StatusFlushed})
		}
	}
}

func (f *flowCtl) doPost(qp *rnic.QP, wr *rnic.SendWR, cb func(rnic.CQE)) {
	wr.ID = f.ctx.nextWRID()
	counted := wr.Op == rnic.OpRead
	if counted {
		f.outstanding++
	}
	f.Posted++
	f.ctx.wrCBs[wr.ID] = func(cqe rnic.CQE) {
		if counted {
			f.outstanding--
			f.pump()
		}
		if cb != nil {
			cb(cqe)
		}
	}
	if err := qp.PostSend(wr); err != nil {
		// QP unusable (broken mid-flight): complete as flushed.
		delete(f.ctx.wrCBs, wr.ID)
		if counted {
			f.outstanding--
		}
		if cb != nil {
			cb(rnic.CQE{WRID: wr.ID, QPN: qp.QPN, Op: wr.Op, Status: rnic.StatusFlushed})
		}
		f.pump()
	}
}

func (f *flowCtl) pump() {
	for f.outstanding < f.limit && len(f.queue) > 0 {
		it := f.queue[0]
		f.queue = f.queue[1:]
		f.doPost(it.qp, it.wr, it.cb)
	}
}

// ---------------------------------------------------------------------------
// Tenant admission: token-bucket rate limiting + send-window partition.
//
// admit runs in pump() immediately before transmit, so a true return is
// always followed by exactly one frame: tokens are charged here, the
// window slot in transmit. A false return parks the channel on the
// tenant's FIFO waiter list; acks, refills and rewinds wake it. A
// zero-tenant context never reaches any of this.

func (t *Tenant) admit(ch *Channel, cost int) bool {
	if t.cfg.SendWindow > 0 && t.inflight >= t.cfg.SendWindow {
		t.WinStalls++
		t.wait(ch)
		return false
	}
	if t.cfg.RateBps > 0 {
		t.refill()
		if t.tokens < float64(cost) {
			t.RateStalls++
			t.wait(ch)
			t.armRefill(cost)
			return false
		}
		t.tokens -= float64(cost)
	}
	return true
}

// refill credits tokens for the time elapsed since the last refill,
// capped at the bucket depth.
func (t *Tenant) refill() {
	now := t.ctx.eng.Now()
	if dt := now.Sub(t.lastRefill); dt > 0 {
		t.tokens += float64(t.cfg.RateBps) * float64(dt) / float64(sim.Second)
		if depth := float64(t.cfg.BurstBytes); t.tokens > depth {
			t.tokens = depth
		}
	}
	t.lastRefill = now
}

// armRefill schedules one wake at the instant the bucket covers cost.
// Only one refill event exists per tenant, so a thundering herd of
// stalled channels costs a single timer.
func (t *Tenant) armRefill(cost int) {
	if t.refillArmed {
		return
	}
	deficit := float64(cost) - t.tokens
	if deficit <= 0 {
		deficit = 1
	}
	d := sim.Duration(deficit*float64(sim.Second)/float64(t.cfg.RateBps)) + 1
	t.refillArmed = true
	t.ctx.eng.AfterBg(d, func() {
		t.refillArmed = false
		t.wakeWaiters()
	})
}

func (t *Tenant) wait(ch *Channel) {
	if ch.tenantWaiting {
		return
	}
	ch.tenantWaiting = true
	t.waiters = append(t.waiters, ch)
}

// wakeWaiters re-pumps every parked channel in FIFO order. The slice is
// swapped out first: a still-blocked channel re-registers, which must
// not grow the list being walked.
func (t *Tenant) wakeWaiters() {
	if len(t.waiters) == 0 {
		return
	}
	ws := t.waiters
	t.waiters = nil
	for _, ch := range ws {
		ch.tenantWaiting = false
		if !ch.closed {
			ch.pump()
		}
	}
}

// noteSend charges one window-partition slot at transmit time.
func (t *Tenant) noteSend(ch *Channel) {
	t.inflight++
	ch.tenantInflight++
}

// noteAcked releases the slot when the frame's ack lands.
func (t *Tenant) noteAcked(ch *Channel) {
	t.inflight--
	ch.tenantInflight--
	t.wakeWaiters()
}

// tenantRewind reconciles the partition when a channel's tx window is
// rewound (teardown, QP adoption replay): the channel's contribution is
// in-flight no longer; requeueUnacked re-charges what it re-transmits.
func (ch *Channel) tenantRewind() {
	t := ch.tenant
	if t == nil || ch.tenantInflight == 0 {
		return
	}
	t.inflight -= ch.tenantInflight
	ch.tenantInflight = 0
	t.wakeWaiters()
}

// fetchRemote pulls size bytes from a peer's staged buffer into local
// registered memory using fragmented RDMA READs — the "read replace
// write" data path (§IV-C) with §V-C fragmentation. done fires once every
// fragment has landed; a failed fragment reports its status.
func (f *flowCtl) fetchRemote(qp *rnic.QP, raddr uint64, rkey uint32, local Buffer, size int, done func(rnic.Status)) {
	frag := f.ctx.cfg.FragmentSize
	if frag <= 0 || frag > size {
		frag = size
	}
	n := (size + frag - 1) / frag
	if n == 0 {
		n = 1
	}
	if n > 1 {
		f.Fragments += int64(n)
	}
	remaining := n
	failed := rnic.StatusOK
	for off := 0; off < size || (size == 0 && off == 0); off += frag {
		seg := size - off
		if seg > frag {
			seg = frag
		}
		wr := &rnic.SendWR{
			Op:    rnic.OpRead,
			Len:   seg,
			Local: local.Addr + uint64(off),
			RAddr: raddr + uint64(off),
			RKey:  rkey,
		}
		f.post(qp, wr, func(cqe rnic.CQE) {
			if cqe.Status != rnic.StatusOK && failed == rnic.StatusOK {
				failed = cqe.Status
			}
			remaining--
			if remaining == 0 {
				done(failed)
			}
		})
		if size == 0 {
			break
		}
	}
}

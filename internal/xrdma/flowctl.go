package xrdma

import (
	"xrdma/internal/rnic"
)

// flowCtl implements §V-C: the context limits outstanding RDMA work
// requests to N, queueing the excess, and splits large one-sided
// operations into moderate fixed-size fragments so a single huge WR cannot
// monopolise the RNIC pipeline. Both mechanisms are pure software on top
// of the verbs API — "without specific hardware or software constraints".
type flowCtl struct {
	ctx         *Context
	limit       int
	outstanding int
	queue       []flowItem

	// Counters.
	Queued    int64 // WRs that had to wait for a slot
	Fragments int64 // fragments produced by splitting
	Posted    int64
	PeakQueue int
}

type flowItem struct {
	qp *rnic.QP
	wr *rnic.SendWR
	cb func(rnic.CQE)
}

func newFlowCtl(ctx *Context, limit int) *flowCtl {
	return &flowCtl{ctx: ctx, limit: limit}
}

// post submits a WR under the outstanding limit; cb fires on completion.
// The limit governs the bulk one-sided data plane (the fragmented READs of
// the rendezvous path): §V-C's congestion problem is "large size requests
// block the RNIC". Inline SENDs are already bounded by the per-channel
// seq-ack window, so they bypass the queue — throttling them would only
// add latency to the traffic flow control exists to protect.
func (f *flowCtl) post(qp *rnic.QP, wr *rnic.SendWR, cb func(rnic.CQE)) {
	if wr.Op == rnic.OpRead && f.outstanding >= f.limit {
		f.Queued++
		f.queue = append(f.queue, flowItem{qp: qp, wr: wr, cb: cb})
		if len(f.queue) > f.PeakQueue {
			f.PeakQueue = len(f.queue)
		}
		return
	}
	f.doPost(qp, wr, cb)
}

// postDirect bypasses the limiter — keepalive probes and acks are tiny
// and must not sit behind queued bulk data.
func (f *flowCtl) postDirect(qp *rnic.QP, wr *rnic.SendWR, cb func(rnic.CQE)) {
	wr.ID = f.ctx.nextWRID()
	if cb != nil {
		f.ctx.wrCBs[wr.ID] = cb
	}
	if err := qp.PostSend(wr); err != nil {
		delete(f.ctx.wrCBs, wr.ID)
		if cb != nil {
			cb(rnic.CQE{WRID: wr.ID, QPN: qp.QPN, Op: wr.Op, Status: rnic.StatusFlushed})
		}
	}
}

func (f *flowCtl) doPost(qp *rnic.QP, wr *rnic.SendWR, cb func(rnic.CQE)) {
	wr.ID = f.ctx.nextWRID()
	counted := wr.Op == rnic.OpRead
	if counted {
		f.outstanding++
	}
	f.Posted++
	f.ctx.wrCBs[wr.ID] = func(cqe rnic.CQE) {
		if counted {
			f.outstanding--
			f.pump()
		}
		if cb != nil {
			cb(cqe)
		}
	}
	if err := qp.PostSend(wr); err != nil {
		// QP unusable (broken mid-flight): complete as flushed.
		delete(f.ctx.wrCBs, wr.ID)
		if counted {
			f.outstanding--
		}
		if cb != nil {
			cb(rnic.CQE{WRID: wr.ID, QPN: qp.QPN, Op: wr.Op, Status: rnic.StatusFlushed})
		}
		f.pump()
	}
}

func (f *flowCtl) pump() {
	for f.outstanding < f.limit && len(f.queue) > 0 {
		it := f.queue[0]
		f.queue = f.queue[1:]
		f.doPost(it.qp, it.wr, it.cb)
	}
}

// fetchRemote pulls size bytes from a peer's staged buffer into local
// registered memory using fragmented RDMA READs — the "read replace
// write" data path (§IV-C) with §V-C fragmentation. done fires once every
// fragment has landed; a failed fragment reports its status.
func (f *flowCtl) fetchRemote(qp *rnic.QP, raddr uint64, rkey uint32, local Buffer, size int, done func(rnic.Status)) {
	frag := f.ctx.cfg.FragmentSize
	if frag <= 0 || frag > size {
		frag = size
	}
	n := (size + frag - 1) / frag
	if n == 0 {
		n = 1
	}
	if n > 1 {
		f.Fragments += int64(n)
	}
	remaining := n
	failed := rnic.StatusOK
	for off := 0; off < size || (size == 0 && off == 0); off += frag {
		seg := size - off
		if seg > frag {
			seg = frag
		}
		wr := &rnic.SendWR{
			Op:    rnic.OpRead,
			Len:   seg,
			Local: local.Addr + uint64(off),
			RAddr: raddr + uint64(off),
			RKey:  rkey,
		}
		f.post(qp, wr, func(cqe rnic.CQE) {
			if cqe.Status != rnic.StatusOK && failed == rnic.StatusOK {
				failed = cqe.Status
			}
			remaining--
			if remaining == 0 {
				done(failed)
			}
		})
		if size == 0 {
			break
		}
	}
}

package xrdma

import (
	"encoding/binary"
	"fmt"

	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/verbs"
)

// Channel recovery: the health state machine's transient-fault path.
// When a channel's RDMA plane breaks (flushed QP, keepalive death, NIC
// restart) and the context was built with Options.RecoverPort, the
// channel enters Degraded instead of switching straight to Mock: traffic
// is held, and the lower node ID re-dials the peer's recovery listener
// through the QP cache with exponential backoff plus jitter and a
// bounded retry budget. The replacement connection is adopted on both
// sides and the unacked window tail replays — the seq-ack window of
// Algorithm 1 dedups the overlap, so the cutover is exactly-once in both
// directions. When the budget runs out the channel proceeds to the Mock
// fallback (or tears down), from which periodic failback probes try to
// return to RDMA.

const recoverHelloMagic = 0x5243 // "CR" — channel recovery

// recoverHello names the broken channel three ways: the peer-side QPN the
// dialer last saw (the fast recovery-index key), plus the immutable
// establishment-time QPN pair — the listener's first QPN and the dialer's
// first QPN. The latter two are the channel's identity: local QPNs are
// recycled through the QP cache, so with several channels to one peer the
// index entry for a recycled QPN can come to name a sibling channel, and
// only the establishment pair (which no adoption ever rewrites) tells the
// listener which protocol state this dial actually belongs to.
func recoverHello(targetQPN, targetQPN0, dialerQPN0 uint32) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint16(b, recoverHelloMagic)
	binary.LittleEndian.PutUint32(b[2:], targetQPN)
	binary.LittleEndian.PutUint32(b[6:], targetQPN0)
	binary.LittleEndian.PutUint32(b[10:], dialerQPN0)
	return b
}

func parseRecoverHello(b []byte) (target, target0, dialer0 uint32, ok bool) {
	if len(b) < 16 || binary.LittleEndian.Uint16(b) != recoverHelloMagic {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint32(b[2:]),
		binary.LittleEndian.Uint32(b[6:]),
		binary.LittleEndian.Uint32(b[10:]), true
}

// isChannelIdentity reports whether this channel IS the one the dialing
// peer means: the establishment-time QPN pair matches in both directions.
func (ch *Channel) isChannelIdentity(from fabric.NodeID, target0, dialer0 uint32) bool {
	return ch.Peer == from && len(ch.qpns) > 0 && ch.qpns[0] == target0 && ch.peerQPN0 == dialer0
}

// indexChannel records a channel's ownership of a local QPN for the
// recovery rendezvous.
func (c *Context) indexChannel(ch *Channel, qpn uint32) {
	if c.recoverPort <= 0 {
		return
	}
	c.recoverIdx[qpn] = ch
	ch.qpns = append(ch.qpns, qpn)
}

// recoverGrace bounds how long the passive side stays Degraded waiting
// for the dialer: the full dial budget worth of timeouts and backoffs on
// top of the mock grace, so both sides converge on the same outcome.
func (c *Context) recoverGrace() sim.Duration {
	return c.mockGrace() +
		sim.Duration(c.cfg.RecoverRetries)*(c.cfg.RecoverDialTimeout+c.cfg.RecoverBackoffMax)
}

// recoverBackoff is the delay before dial attempt n (0-based):
// exponential, capped, with ±25% jitter to decorrelate fleet-wide retry
// storms after a shared fault (a downed switch degrades many channels at
// once).
func (ch *Channel) recoverBackoff(attempt int) sim.Duration {
	return recoverBackoffDur(ch.ctx, attempt)
}

// recoverBackoffDur is the shared dial-backoff schedule — per-channel
// recovery and shared-QP (mux) redials draw from the same context RNG.
func recoverBackoffDur(c *Context, attempt int) sim.Duration {
	cfg := &c.cfg
	d := cfg.RecoverBackoff << uint(attempt)
	if d <= 0 || d > cfg.RecoverBackoffMax {
		d = cfg.RecoverBackoffMax
	}
	if d <= 0 {
		d = sim.Millisecond
	}
	return d - d/4 + sim.Duration(c.rng.Float64()*float64(d)/2)
}

// enterDegraded parks a channel whose RDMA path failed: traffic is held
// in the send queue, the broken QP is kept (its QPN stays the channel's
// identity until a replacement is adopted), and re-establishment begins.
func (ch *Channel) enterDegraded(cause error) {
	c := ch.ctx
	now := c.eng.Now()
	ch.setHealth(HealthDegraded)
	ch.degradedAt = now
	ch.recAttempts = 0
	ch.recEpoch++
	c.Stats.Degraded++
	c.tel.Flight.Trip(now, telemetry.CatChannelDegraded, int32(c.Node()), ch.qp.QPN)
	c.tel.Trace.Instant("ch.degraded", c.track, now, int64(ch.Peer))
	c.logf("channel qpn=%d peer=%d degraded: %v", ch.qp.QPN, ch.Peer, cause)

	// The receive pool is useless while the QP is broken (and may be
	// gone entirely after a NIC restart); fresh buffers arrive with the
	// replacement connection.
	for id, buf := range ch.recvBufs {
		delete(ch.recvBufs, id)
		c.Mem.Free(buf)
	}
	c.eng.Cancel(ch.ackEv)
	ch.ackEv = sim.Event{}
	ch.kaProbing = false
	ch.nopInFlight = false
	ch.stallFlag = false

	if c.Node() < ch.Peer {
		ch.scheduleRecoverDial(cause)
		return
	}
	// Passive side: wait for the dialer, bounded.
	epoch := ch.recEpoch
	c.eng.AfterBg(c.recoverGrace(), func() {
		if ch.closed || ch.recEpoch != epoch || ch.mock != nil || ch.health == HealthHealthy {
			return
		}
		ch.proceedToFallback(cause)
	})
}

func (ch *Channel) scheduleRecoverDial(cause error) {
	c := ch.ctx
	if ch.recAttempts >= c.cfg.RecoverRetries {
		ch.proceedToFallback(cause)
		return
	}
	epoch := ch.recEpoch
	c.eng.AfterBg(ch.recoverBackoff(ch.recAttempts), func() {
		if ch.closed || ch.recEpoch != epoch || ch.mock != nil || ch.health == HealthHealthy {
			return
		}
		ch.tryRecover(cause)
	})
}

// tryRecover runs one re-establishment dial through the QP cache.
func (ch *Channel) tryRecover(cause error) {
	c := ch.ctx
	if !c.vctx.NIC.Alive() {
		// The local machine itself is down; a restart revives the NIC,
		// so keep re-arming within the budget.
		ch.recAttempts++
		ch.scheduleRecoverDial(cause)
		return
	}
	ch.setHealth(HealthRecovering)
	ch.recAttempts++
	c.Stats.RecoverAttempts++
	ch.recEpoch++
	epoch := ch.recEpoch
	ch.dialReplacement(epoch, func() {
		if ch.closed || ch.recEpoch != epoch || ch.mock != nil || ch.health == HealthHealthy {
			return
		}
		ch.setHealth(HealthDegraded)
		ch.scheduleRecoverDial(cause)
	})
}

// dialReplacement dials the peer's recovery listener and adopts the
// resulting connection. The CM has no cancellation, so the attempt owns
// an epoch and a settled flag: the dial timeout claims the attempt
// first on a dead peer, and a late completion quietly returns whatever
// resources it acquired.
func (ch *Channel) dialReplacement(epoch uint64, onFail func()) {
	c := ch.ctx
	stale := func() bool { return ch.closed || ch.recEpoch != epoch }
	c.allocRecvBufs(func(bufs []Buffer) {
		if stale() {
			c.freeBufs(bufs)
			onFail()
			return
		}
		settled := false
		c.eng.AfterBg(c.cfg.RecoverDialTimeout, func() {
			if settled || stale() {
				return
			}
			settled = true
			c.freeBufs(bufs)
			onFail()
		})
		qp := c.QPs.Get()
		done := func(conn *verbs.Conn, err error) {
			if settled || stale() {
				// Late completion after timeout/adoption/teardown.
				if err == nil {
					c.QPs.Put(conn.QP)
				} else if qp != nil {
					c.QPs.Put(qp)
				}
				return
			}
			settled = true
			if err != nil {
				if qp != nil {
					c.QPs.Put(qp)
				}
				c.freeBufs(bufs)
				onFail()
				return
			}
			ch.adopt(conn, bufs, true)
		}
		var own0 uint32
		if len(ch.qpns) > 0 {
			own0 = ch.qpns[0]
		}
		hello := recoverHello(ch.peerQPN, ch.peerQPN0, own0)
		if qp != nil {
			c.cm.Connect(ch.Peer, c.recoverPort, hello, qp, c.qpDepth(), nil, nil, nil, done)
			return
		}
		var srq *rnic.SRQ
		if c.cfg.UseSRQ {
			c.ensureSRQ()
			srq = c.srq
		}
		c.cm.Connect(ch.Peer, c.recoverPort, hello, nil, c.qpDepth(), c.sendCQ, c.recvCQ, srq, done)
	})
}

// listenRecover accepts re-establishment dials for degraded (or
// fallen-back) channels, matched by the QPN named in the hello.
func (c *Context) listenRecover() {
	c.cm.Listen(c.recoverPort, func(req *verbs.ConnReq) {
		target, target0, dialer0, ok := parseRecoverHello(req.PrivateData)
		if !ok {
			req.Reject("bad recovery hello")
			return
		}
		ch := c.recoverIdx[target]
		if ch != nil && (ch.closed || !ch.isChannelIdentity(req.From, target0, dialer0)) {
			// The indexed QPN was recycled to a sibling channel (or the
			// entry is plain stale); fall back to the identity scan so a
			// dial never cross-adopts another channel's protocol state.
			ch = nil
		}
		if ch == nil {
			for _, cand := range c.sortedChannels() {
				if !cand.closed && cand.isChannelIdentity(req.From, target0, dialer0) {
					ch = cand
					break
				}
			}
		}
		if ch == nil {
			req.Reject("no such channel")
			return
		}
		if ch.mock == nil && ch.health == HealthHealthy {
			// The dialer noticed a fault this side hasn't seen yet
			// (failure detection is not synchronized); degrade first so
			// adoption runs from a consistent state.
			ch.enterDegraded(fmt.Errorf("peer-initiated recovery"))
		}
		c.allocRecvBufs(func(bufs []Buffer) {
			if ch.closed {
				c.freeBufs(bufs)
				req.Reject("channel closed")
				return
			}
			c.withQP(func(qp *rnic.QP) {
				req.Accept(qp, func(conn *verbs.Conn, err error) {
					if err != nil || ch.closed {
						c.QPs.Put(qp)
						c.freeBufs(bufs)
						return
					}
					ch.adopt(conn, bufs, false)
				})
			})
		})
	})
}

// adopt installs a freshly established replacement connection: the
// broken QP (or the mock transport) is surrendered, the replacement
// posts a fresh receive pool, and the unacked windowed tail requeues for
// replay. The dialer pumps immediately and sends a NOP beacon; the
// passive side holds its replay until the beacon (or any RDMA traffic)
// proves the dialer's QP reached RTS, because sends posted earlier would
// race the dialer's RTR transition.
func (ch *Channel) adopt(conn *verbs.Conn, bufs []Buffer, initiator bool) {
	c := ch.ctx
	now := c.eng.Now()
	failback := ch.mock != nil
	if failback {
		if initiator {
			ch.closeMock()
		} else if ch.mock.conn != nil {
			// Keep draining the mock conn until the dialer closes it —
			// the windowed dedup makes the overlap harmless.
			ch.mock.conn.OnClose = nil
		}
		ch.mock = nil
		c.Stats.Failbacks++
		c.tel.Flight.Record(now, telemetry.CatFailback, int32(c.Node()), conn.QP.QPN, int64(ch.Peer), 0)
		c.tel.Trace.Instant("ch.failback", c.track, now, int64(ch.Peer))
	} else {
		if ch.qp != nil {
			delete(c.channels, ch.qp.QPN)
			c.QPs.Put(ch.qp)
		} else if n := len(ch.qpns); n > 0 && c.channels[ch.qpns[n-1]] == ch {
			// Rehydrated channel (drain.go) adopting its first post-restart
			// transport: it was parked in the table under the last QPN it
			// owned before the restart.
			delete(c.channels, ch.qpns[n-1])
		}
		outage := now.Sub(ch.degradedAt)
		c.recHist.Observe(int64(outage))
		c.tel.Trace.Complete("ch.outage", c.track, ch.degradedAt, outage, int64(ch.Peer))
	}
	ch.unregisterGauges()
	ch.qp = conn.QP
	ch.peerQPN = conn.QP.RemoteQPN
	c.channels[ch.qp.QPN] = ch
	c.indexChannel(ch, ch.qp.QPN)
	if ch.recvBufs == nil && len(bufs) > 0 {
		ch.recvBufs = make(map[uint64]Buffer, len(bufs))
	}
	for _, buf := range bufs {
		id := c.nextWRID()
		ch.recvBufs[id] = buf
		if err := ch.qp.PostRecv(rnic.RecvWR{ID: id, Addr: buf.Addr, Len: buf.Len}); err != nil {
			delete(ch.recvBufs, id)
			c.Mem.Free(buf)
		}
	}
	ch.registerGauges()
	ch.recEpoch++
	ch.recAttempts = 0
	ch.kaProbing = false
	ch.nopInFlight = false
	ch.stallFlag = false
	ch.lastComm = now
	ch.lastProgress = now
	ch.pulls = nil // lazily re-created on the next rendezvous announce
	c.Stats.Recoveries++
	c.tel.Flight.Record(now, telemetry.CatChannelRecovered, int32(c.Node()), ch.qp.QPN, int64(ch.Peer), int64(now.Sub(ch.degradedAt)))
	c.logf("channel peer=%d recovered on qpn=%d after %v (failback=%v)", ch.Peer, ch.qp.QPN, now.Sub(ch.degradedAt), failback)
	ch.requeueUnacked()
	// The adopted QP starts with zero counters and a full rotation
	// budget; the doctor must not blame it for the old path's symptoms.
	ch.doctor.resetEpisode()
	ch.setHealth(HealthHealthy)
	if initiator {
		ch.resumeOnRx = false
		ch.sendCtrl(kindNop) // beacon: our QP is RTS
		ch.pump()
	} else {
		ch.resumeOnRx = true
	}
}

// requeueUnacked rewinds the send window to the ack edge and moves the
// unacked tail back to the head of the send queue in sequence order; the
// normal pump re-transmits with identical sequence numbers, so the
// receiver can dedup anything that survived the old transport.
func (ch *Channel) requeueUnacked() {
	if ch.tx.seq == ch.tx.acked {
		return
	}
	var replay []*pendingSend
	for s := ch.tx.acked + 1; s <= ch.tx.seq; s++ {
		ps := ch.sent[s]
		if ps == nil {
			continue
		}
		delete(ch.sent, s)
		ps.staging = false
		if ps.staged.Valid() && ps.staged.region != nil && ps.staged.region.dead {
			// The staging buffer died with the NIC's registered memory;
			// restage from ps.data on the way out.
			ps.staged = Buffer{}
		}
		ps.ready = ps.staged.Valid()
		replay = append(replay, ps)
	}
	ch.tx.rewind()
	ch.tenantRewind()
	ch.sendQ = append(replay, ch.sendQ...)
}

// proceedToFallback gives up on RDMA re-establishment: Mock when
// configured, terminal teardown otherwise.
func (ch *Channel) proceedToFallback(cause error) {
	c := ch.ctx
	if ch.closed || ch.mock != nil {
		return
	}
	if c.cfg.MockEnabled && c.tcp != nil && c.mockPort > 0 {
		ch.switchToMock(cause)
		return
	}
	c.Stats.ChannelsBroken++
	c.logf("channel qpn=%d peer=%d beyond recovery: %v", ch.QPN(), ch.Peer, cause)
	ch.teardown(cause)
}

// armFailback schedules the next RDMA probe for a channel running on the
// Mock fallback (§VI-C: the fallback is meant to be temporary).
func (ch *Channel) armFailback() {
	c := ch.ctx
	if c.recoverPort <= 0 || c.cfg.FailbackInterval <= 0 || c.Node() >= ch.Peer {
		return
	}
	d := c.cfg.FailbackInterval
	d += sim.Duration(c.rng.Float64() * float64(d) / 4)
	epoch := ch.recEpoch
	c.eng.AfterBg(d, func() {
		if ch.closed || ch.mock == nil || !ch.mock.ready || ch.recEpoch != epoch {
			return
		}
		ch.tryFailback()
	})
}

// tryFailback probes the RDMA path with a single recovery dial; messages
// keep flowing over TCP during the probe and the window dedups the
// cutover if it succeeds.
func (ch *Channel) tryFailback() {
	c := ch.ctx
	if !c.vctx.NIC.Alive() {
		ch.armFailback()
		return
	}
	ch.setHealth(HealthRecovering)
	c.Stats.RecoverAttempts++
	ch.recEpoch++
	epoch := ch.recEpoch
	ch.dialReplacement(epoch, func() {
		if ch.closed || ch.mock == nil {
			return
		}
		ch.setHealth(HealthFallback)
		if ch.mock.conn == nil || !ch.mock.ready {
			// The fallback died while we probed; re-run its rendezvous.
			ch.connectMock(fmt.Errorf("mock lost during failback probe"))
			return
		}
		ch.armFailback()
	})
}

package xrdma

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"xrdma/internal/telemetry"
)

// runBlamedEchoes drives count traced echo round trips over a two-node
// world with every message sampled onto the blame plane and the trace
// timeline enabled, and returns the world plus its telemetry set.
func runBlamedEchoes(t *testing.T, count int) (*testWorld, *telemetry.Set) {
	t.Helper()
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.ReqRspMode = true
		cfg.TraceSampleN = 1
	})
	tel := telemetry.For(w.eng)
	tel.Trace.Enable(1 << 12)
	cli, srv := w.connect(t, 0, 1, 5600)
	echoServer(srv)
	got := 0
	for i := 0; i < count; i++ {
		err := cli.SendMsg([]byte("where did my p99 go?"), 0, func(m *Msg, err error) {
			if err != nil {
				t.Fatalf("echo %d: %v", i, err)
			}
			got++
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	w.eng.Run()
	if got != count {
		t.Fatalf("completed %d/%d echoes", got, count)
	}
	if n := tel.Blame.Count(); n != int64(count) {
		t.Fatalf("blame plane observed %d messages, want %d", n, count)
	}
	return w, tel
}

// TestBlameSpansNestInChromeTrace exports the timeline as Chrome
// trace_event JSON and checks the blame decomposition renders as spans:
// one "blame.msg" parent per traced message, with every stage span
// carrying the same message id tiled strictly inside its parent.
func TestBlameSpansNestInChromeTrace(t *testing.T) {
	const msgs = 8
	_, tel := runBlamedEchoes(t, msgs)

	var buf bytes.Buffer
	if err := tel.Trace.WriteJSON(&buf, "blame-test"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v\n%s", err, buf.String())
	}

	isStage := map[string]bool{}
	for s := telemetry.Stage(0); s < telemetry.StageCount; s++ {
		isStage[s.String()] = true
	}
	// Parent spans: one complete ("X") event per traced message, keyed
	// by the message id in args.v.
	type span struct{ ts, end float64 }
	parents := map[int64]span{}
	for _, e := range doc.TraceEvents {
		if e.Name != "blame.msg" {
			continue
		}
		if e.Ph != "X" || e.Pid == 0 {
			t.Fatalf("blame.msg must be a complete event with a pid: %+v", e)
		}
		parents[int64(e.Args["v"].(float64))] = span{e.Ts, e.Ts + e.Dur}
	}
	if len(parents) != msgs {
		t.Fatalf("got %d blame.msg parent spans, want %d", len(parents), msgs)
	}
	// Child spans: every stage event must reference a parent and lie
	// inside it (EmitSpans clamps the tiling to the parent's extent).
	// ts/dur are microseconds printed at ns resolution, so allow one
	// rounding quantum of slack.
	const eps = 0.002
	children := 0
	for _, e := range doc.TraceEvents {
		if !isStage[e.Name] {
			continue
		}
		children++
		p, ok := parents[int64(e.Args["v"].(float64))]
		if !ok {
			t.Fatalf("stage span %q has no blame.msg parent: %+v", e.Name, e)
		}
		if e.Ts < p.ts-eps || e.Ts+e.Dur > p.end+eps {
			t.Fatalf("stage span %q [%f,%f] escapes parent [%f,%f]",
				e.Name, e.Ts, e.Ts+e.Dur, p.ts, p.end)
		}
	}
	if children < msgs {
		t.Fatalf("only %d stage spans for %d traced messages", children, msgs)
	}
}

// TestFlightDumpCarriesBlameSummary freezes the flight recorder after a
// traced workload and checks the dump captured the blame verdict of that
// instant — the "what was eating my p99 when the invariant tripped" line.
func TestFlightDumpCarriesBlameSummary(t *testing.T) {
	w, tel := runBlamedEchoes(t, 4)
	d := tel.Flight.ForceDump(w.eng.Now(), "blame summary drill")
	if !strings.HasPrefix(d.Blame, "blame: n=4") {
		t.Fatalf("dump blame summary = %q, want frozen verdict for 4 messages", d.Blame)
	}
	if !strings.Contains(d.Blame, "top=") {
		t.Fatalf("dump blame summary names no top stage: %q", d.Blame)
	}
	if !strings.Contains(d.String(), d.Blame) {
		t.Fatalf("rendered dump omits the blame line:\n%s", d.String())
	}
}

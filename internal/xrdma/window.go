package xrdma

import "fmt"

// The seq-ack window of Algorithm 1. Sequence numbers start at 1 and are
// assigned per windowed message. The sender may have at most depth
// messages between ACKED and SEQ; the receiver tracks WTA (highest
// received) and RTA (highest ready-to-ack, i.e. contiguous and fully
// received), delivering in order. This is what guarantees RNR-free
// operation: the receiver pre-posts depth receive buffers, and the sender
// never has more than depth windowed messages outstanding.

// txWindow is the sender half.
type txWindow struct {
	depth uint64
	seq   uint64 // last assigned sequence (paper: SEQ)
	acked uint64 // highest cumulatively acked (paper: ACKED)

	// onAcked callbacks by seq, fired as the ack edge advances
	// (Algorithm 1's call on_acked(messages[i])).
	pending map[uint64]func()

	// Stalls counts times the window was full at send (queueing events).
	Stalls int64
}

func newTxWindow(depth int) *txWindow {
	return &txWindow{depth: uint64(depth), pending: make(map[uint64]func())}
}

// canSend reports whether a window slot is free.
func (w *txWindow) canSend() bool { return w.seq-w.acked < w.depth }

// next assigns the next sequence number; onAcked (optional) fires when
// the peer acknowledges it.
func (w *txWindow) next(onAcked func()) uint64 {
	if !w.canSend() {
		panic("xrdma: txWindow overflow — caller must check canSend")
	}
	w.seq++
	if onAcked != nil {
		w.pending[w.seq] = onAcked
	}
	return w.seq
}

// inflight reports unacknowledged windowed messages.
func (w *txWindow) inflight() uint64 { return w.seq - w.acked }

// ack advances the cumulative ack edge, firing on_acked callbacks in
// order. Acks never regress; a stale ack is ignored.
func (w *txWindow) ack(ack uint64) {
	if ack > w.seq {
		panic(fmt.Sprintf("xrdma: ack %d beyond seq %d", ack, w.seq))
	}
	for w.acked < ack {
		w.acked++
		if fn, ok := w.pending[w.acked]; ok {
			delete(w.pending, w.acked)
			fn()
		}
	}
}

// rewind drops the unacked tail, moving the send edge back to the ack
// edge. A recovering channel re-queues everything unacked through the
// normal send path, which re-assigns the same sequence numbers, so the
// per-seq callbacks registered for the old transmissions are discarded.
func (w *txWindow) rewind() {
	w.seq = w.acked
	w.pending = make(map[uint64]func())
}

// rxWindow is the receiver half. It tracks which in-window sequences are
// fully received so RTA (the cumulative ack edge) advances only through
// contiguous completed messages — Algorithm 1's receiver. Application
// delivery is the channel's business and happens as soon as a message's
// payload is available: inline messages deliver at arrival (hence in
// order among themselves), rendezvous messages deliver when their pull
// completes. Acks stay strictly cumulative either way.
type rxWindow struct {
	depth  uint64
	wta    uint64 // highest sequence received (paper: WTA)
	rta    uint64 // highest ready-to-ack, contiguous (paper: RTA)
	recved []bool
}

func newRxWindow(depth int) *rxWindow {
	return &rxWindow{depth: uint64(depth), recved: make([]bool, depth)}
}

// receive registers an arriving windowed message and reports whether it
// is fresh. recved=false marks a rendezvous message whose payload is
// still being pulled (markRecved completes it). Both transports deliver
// in order, so a fresh message carries exactly wta+1; anything beyond
// that indicates a protocol bug and panics loudly. Sequences at or below
// wta are duplicates — a recovery replay from a sender that never saw
// our ack — and return false so the channel can re-ack without
// re-delivering.
func (w *rxWindow) receive(seq uint64, recved bool) bool {
	if seq <= w.wta {
		return false
	}
	if seq != w.wta+1 {
		panic(fmt.Sprintf("xrdma: out-of-order window receive seq=%d wta=%d", seq, w.wta))
	}
	if seq-w.rta > w.depth {
		panic(fmt.Sprintf("xrdma: window overrun seq=%d rta=%d depth=%d — peer violated the window", seq, w.rta, w.depth))
	}
	w.wta = seq
	w.recved[seq%w.depth] = recved
	if recved {
		w.advance()
	}
	return true
}

// isRecved reports whether seq's payload has been fully received (and,
// for anything at or below the ack edge, delivered). Only meaningful for
// sequences already registered via receive.
func (w *rxWindow) isRecved(seq uint64) bool {
	if seq <= w.rta {
		return true
	}
	if seq > w.wta {
		return false
	}
	return w.recved[seq%w.depth]
}

// markRecved flags a rendezvous message as fully pulled (Algorithm 1's
// rdma_read_done) and advances RTA through any contiguous ready run.
func (w *rxWindow) markRecved(seq uint64) {
	if seq <= w.rta || seq > w.wta {
		return // stale retry duplicate — tolerated
	}
	w.recved[seq%w.depth] = true
	w.advance()
}

func (w *rxWindow) advance() {
	for w.rta < w.wta && w.recved[(w.rta+1)%w.depth] {
		w.rta++
	}
}

// ackValue is the cumulative ack to piggyback on outbound traffic.
func (w *rxWindow) ackValue() uint64 { return w.rta }

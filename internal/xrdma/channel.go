package xrdma

import (
	"errors"
	"fmt"
	"sort"

	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/verbs"
)

// Errors surfaced through channel callbacks.
var (
	ErrChannelClosed = errors.New("xrdma: channel closed")
	ErrPeerDead      = errors.New("xrdma: keepalive declared peer dead")
	ErrTimeout       = errors.New("xrdma: request timed out")
	ErrNICRestart    = errors.New("xrdma: local NIC restarted")
	// ErrDraining refuses work on a node that entered the drain lifecycle
	// (drain.go): new attaches and inbound establishment are rejected loudly
	// so callers park-and-retry against the restarted instance instead of
	// misreading the refusal as a fault.
	ErrDraining = errors.New("xrdma: context draining")
)

// HealthState is the channel's fault-tolerance state machine. Healthy
// runs on RDMA; Degraded has lost the RDMA path and holds traffic while
// re-establishment is attempted; Fallback runs on the TCP Mock
// transport; Recovering has a re-establishment (or failback) dial in
// flight. The seq-ack window of Algorithm 1 makes every cutover between
// transports exactly-once in both directions.
type HealthState uint8

const (
	HealthHealthy HealthState = iota
	HealthDegraded
	HealthFallback
	HealthRecovering
)

func (h HealthState) String() string {
	switch h {
	case HealthDegraded:
		return "degraded"
	case HealthFallback:
		return "fallback"
	case HealthRecovering:
		return "recovering"
	default:
		return "healthy"
	}
}

// ChannelStats are per-channel counters (the netstat-like rows of
// XR-Stat, §VI-B).
type ChannelStats struct {
	MsgsSent, MsgsRecv   int64
	BytesSent, BytesRecv int64
	ReqsSent, RespsRecv  int64
	LargeSent, LargeRecv int64
	AcksSent, NopsSent   int64
	WindowStalls         int64
	SendQueuePeak        int
	Pings                int64
	ReqRetries           int64

	// One-sided dataplane (onesided.go).
	Reads, Writes         int64
	ReadBytes, WriteBytes int64
	RemoteAccessErrs      int64
}

// Channel is an established X-RDMA connection (one QP pair plus the
// application-layer protocol state).
type Channel struct {
	ctx  *Context
	qp   *rnic.QP
	Peer fabric.NodeID

	tx *txWindow
	rx *rxWindow

	sendQ   []*pendingSend
	pending map[uint64]*reqState // msgID → response waiter

	recvBufs map[uint64]Buffer // recv WR id → buffer (per-channel mode)

	lastComm     sim.Time
	lastProgress sim.Time
	kaProbeAt    sim.Time
	kaProbing    bool

	recvSinceAck int
	lastAckVal   uint64
	ackEv        sim.Event
	nopInFlight  bool
	nopAt        sim.Time // when the in-flight NOP was sent (re-arm deadline)
	stallFlag    bool

	pings map[uint64]*pingState

	closed bool
	broken bool

	// Hot-upgrade plane (negotiate.go): the header version this channel
	// settled on (0 = legacy, treated as hdrVersion) and the AND of both
	// sides' capability bitmaps (0 = legacy, treated as baselineCaps).
	// Optional wire extensions are gated on peerCaps per-channel, so a
	// v2 context emits v1 frames to v1 peers. (Packed into the padding
	// behind the bools above: the flyweight descriptor budget —
	// BenchmarkIdleChannelFootprint — is one malloc size class tight.)
	negVer   uint8
	peerCaps uint32

	onMessage func(*Msg)
	onClose   func(error)

	mock    *mockState
	mockQPN uint32

	// Health state machine (chaos hardening).
	health      HealthState
	degradedAt  sim.Time
	peerQPN     uint32 // peer's latest QPN — refreshed on every adoption
	peerQPN0    uint32 // peer's QPN at establishment — immutable channel identity
	recEpoch    uint64 // invalidates stale recovery dials
	recAttempts int
	qpns        []uint32 // every local QPN this channel has owned (recoverIdx keys)
	resumeOnRx  bool     // passive side: hold replay until the peer's QP is live
	onHealth    func(HealthState)

	// sent keeps windowed messages by sequence until acked, so a
	// recovery or fallback cutover can replay the unacked tail
	// exactly-once. pulls guards against double rendezvous reads when an
	// announce is replayed.
	sent  map[uint64]*pendingSend
	pulls map[uint64]bool

	// Gray-failure plane (pathdoctor.go): the per-path scorer, the
	// request-retry token bucket and the receiver-side idempotency cache
	// that makes retried requests exactly-once at the application.
	doctor        pathDoctor
	onPathVerdict func(PathVerdict)
	retryTokens   float64
	respCache     map[uint64]*respEntry
	respOrder     []uint64

	// blameSuspect force-samples the next few requests after a slow-op
	// incident so the blame plane always has hop logs for the tail.
	blameSuspect int

	// One-sided plane (onesided.go): windows the peer granted us, emulated
	// reads in flight over the mock transport, and the observers.
	remoteWins  map[uint64]RemoteWindow
	osReads     map[uint64]*osRead
	onWindow    func(RemoteWindow)
	onWinRevoke func(uint64)
	onWriteImm  func(imm uint32, addr uint64, n int)

	// QP multiplexing (mux.go): cid is the context-unique channel id
	// (0 = exclusive legacy channel) and peerCID the peer's id for this
	// channel — what outbound headers carry in Chan. mx is the shared QP
	// this channel rides; attach tracks the lazy-establishment state and
	// attachCBs fire when it settles. peerClosed suppresses the CHAN_CLOSE
	// echo when the peer tore down first.
	cid        uint32
	peerCID    uint32
	mx         *muxQP
	muxPort    int
	attach     uint8
	attachCBs  []func(error)
	peerClosed bool

	// Tenancy plane (tenant.go): the channel's tenant (nil = untenanted),
	// its contribution to the tenant's in-flight window partition (for
	// rewind reconciliation), and whether it is parked on the tenant's
	// waiter FIFO.
	tenant         *Tenant
	tenantInflight int
	tenantWaiting  bool

	// telNames are the per-channel gauge names registered for XR-Stat,
	// kept for unregistration when the QPN is recycled. aggregated marks
	// channels folded into the per-peer aggregate row instead
	// (Config.ChannelGaugeLimit).
	telNames   []string
	aggregated bool

	Counters ChannelStats
	OpenedAt sim.Time
}

type pendingSend struct {
	kind    msgKind
	data    []byte
	size    int
	msgID   uint64
	staged  Buffer
	staging bool
	ready   bool // small, or staged
	oneWay  bool

	// Blame plane: enqAt feeds the tx-window-stall stage; echo rides a
	// response to a blame-sampled request (the remote stage mirror).
	enqAt sim.Time
	echo  *respEcho
}

type reqState struct {
	cb     func(*Msg, error)
	sentAt sim.Time
	traced bool

	// Retry state (RequestRetries > 0 only): the payload is retained so
	// timeoutScan can re-issue the request under the same MsgID.
	retries int
	data    []byte
	size    int

	// Blame plane: requester-side raw material for the stage breakdown,
	// stamped at transmit (nil unless the request was blame-sampled).
	blame *reqBlame
}

// reqBlame is the requester half of a blame trace: local timestamps, the
// WR whose lifecycle gives SQ-wait and serialization, the in-band fabric
// accumulator, and the QP recovery-counter watermarks at transmit.
type reqBlame struct {
	enqAt, txAt    sim.Time
	wr             *rnic.SendWR
	acc            *telemetry.PktBlame
	rtoRef, rnrRef int64
}

// respEcho is the responder half: what the responder knows about the
// request's journey, mirrored back inside the response's blame extension.
type respEcho struct {
	reqQueue, reqPause sim.Duration
	ecn                int64
	reasm              sim.Duration
	recvAt             sim.Time
}

// msgBlame hangs off a delivered blame-traced message: the inbound fabric
// accumulator plus (responses only) the decoded remote stage mirror.
type msgBlame struct {
	rx                 *telemetry.PktBlame
	reqQueue, reqPause sim.Duration
	reasm, handler     sim.Duration
	ecn                int64
}

// respEntry is one receiver-side idempotency record: a retried request
// arrives with a fresh wire sequence (the seq window cannot catch it),
// so dedup keys on MsgID. Once the application replies, the response is
// retained so a later duplicate can be answered without re-invoking the
// handler.
type respEntry struct {
	data    []byte
	size    int
	replied bool
}

// Msg is a delivered message: a request to serve or a response to consume.
// Data is only valid during the handler; use Retain to keep it.
type Msg struct {
	Ch    *Channel
	Data  []byte
	Len   int
	IsReq bool
	MsgID uint64
	Seq   uint64

	// RecvAt is the local engine time the payload became available.
	RecvAt sim.Time
	// T1 is the sender's clock at send time (req-rsp mode only).
	T1     sim.Time
	Traced bool

	// blame is non-nil when the message carried the blame bit end-to-end
	// (causal trace plane); requests use it to seed the response mirror.
	blame *msgBlame

	replied bool
	release func() // frees a rendezvous buffer after the handler
}

// Blamed reports whether this message rode the causal blame trace plane.
func (m *Msg) Blamed() bool { return m.blame != nil }

// Retain copies the payload so it survives the handler.
func (m *Msg) Retain() []byte {
	if m.Data == nil {
		return nil
	}
	cp := make([]byte, len(m.Data))
	copy(cp, m.Data)
	return cp
}

// --- establishment ----------------------------------------------------------

// OnChannel installs the accept handler for listened ports.
func (c *Context) OnChannel(fn func(*Channel)) { c.onChannel = fn }

// Listen accepts X-RDMA channels on the given CM port (xrdma_listen).
// Receive buffers are allocated before the CM reply goes out, so the
// dialer can never race ahead of the receive queue — RNR-free from the
// very first message.
func (c *Context) Listen(port int) error {
	if err := c.cm.Listen(port, func(req *verbs.ConnReq) {
		switch hello, verdict := parseMuxHello(req.PrivateData); verdict {
		case muxHelloYes:
			// A mux-plane dial (shared-QP establishment or reattach), not a
			// per-channel connection.
			c.acceptMux(req, hello, port)
			return
		case muxHelloBadVer:
			// A mux hello from a release whose hello format we don't speak:
			// count and reject loudly instead of the old silent drop, which
			// left the dialer waiting out its CM timeout with no clue.
			c.noteVerMismatch(req.From, 0, hello.minVer, hello.maxVer)
			req.Reject(errVersion.Error())
			return
		}
		if c.drain != DrainServing {
			c.refuseDraining(req)
			return
		}
		offer, present := parseChanHello(req.PrivateData)
		ver, caps, ok := c.settle(offer, present)
		if !ok {
			c.noteVerMismatch(req.From, 0, offer.minVer, offer.maxVer)
			req.Reject(errVersion.Error())
			return
		}
		if present {
			// The REP carries the settled verdict back to the dialer. Legacy
			// dialers sent no hello and get the byte-identical legacy REP.
			req.ReplyData = encodeChanHello(chanHello{minVer: ver, maxVer: ver, caps: caps})
		}
		c.allocRecvBufs(func(bufs []Buffer) {
			c.withQP(func(qp *rnic.QP) {
				req.Accept(qp, func(conn *verbs.Conn, err error) {
					if err != nil {
						c.QPs.Put(qp)
						c.freeBufs(bufs)
						return
					}
					ch := c.newChannel(conn, bufs)
					ch.setNegotiated(ver, caps)
					if c.onChannel != nil {
						c.onChannel(ch)
					}
				})
			})
		})
	}); err != nil {
		return err
	}
	c.listenPorts = append(c.listenPorts, port)
	return nil
}

// allocRecvBufs obtains the standing receive pool for one channel; the
// allocation overlaps the (much slower) connection handshake.
func (c *Context) allocRecvBufs(cb func([]Buffer)) {
	if c.cfg.UseSRQ {
		cb(nil)
		return
	}
	n := c.cfg.WindowDepth + c.cfg.CtrlReserve
	bufs := make([]Buffer, 0, n)
	remaining := n
	for i := 0; i < n; i++ {
		c.Mem.Alloc(c.recvBufSize(), func(b Buffer, err error) {
			if err == nil {
				bufs = append(bufs, b)
			}
			remaining--
			if remaining == 0 {
				cb(bufs)
			}
		})
	}
}

func (c *Context) freeBufs(bufs []Buffer) {
	for _, b := range bufs {
		c.Mem.Free(b)
	}
}

// Connect establishes a channel to (node, port) (xrdma_connect). The QP
// cache is consulted first; on a miss a QP is created through the slow
// hardware path.
func (c *Context) Connect(node fabric.NodeID, port int, done func(*Channel, error)) {
	if c.muxEnabled() {
		// Mux mode: Connect is ChannelTo plus an eager attach, so callers
		// that want an established channel still get one.
		ch, err := c.ChannelTo(node, port)
		if err != nil {
			done(nil, err)
			return
		}
		if done != nil {
			ch.attachCBs = append(ch.attachCBs, func(err error) {
				if err != nil {
					done(nil, err)
					return
				}
				done(ch, nil)
			})
		}
		ch.requestAttach()
		return
	}
	var srq *rnic.SRQ
	if c.cfg.UseSRQ {
		c.ensureSRQ()
		srq = c.srq
	}
	hello := c.chanHelloData()
	c.allocRecvBufs(func(bufs []Buffer) {
		if qp := c.QPs.Get(); qp != nil {
			c.cm.Connect(node, port, hello, qp, c.qpDepth(), nil, nil, nil, func(conn *verbs.Conn, err error) {
				if err != nil {
					c.QPs.Put(qp)
					c.freeBufs(bufs)
					done(nil, mapDialErr(err))
					return
				}
				ch := c.newChannel(conn, bufs)
				ch.adoptPeerData(conn.PeerData)
				done(ch, nil)
			})
			return
		}
		c.cm.Connect(node, port, hello, nil, c.qpDepth(), c.sendCQ, c.recvCQ, srq, func(conn *verbs.Conn, err error) {
			if err != nil {
				c.freeBufs(bufs)
				done(nil, mapDialErr(err))
				return
			}
			ch := c.newChannel(conn, bufs)
			ch.adoptPeerData(conn.PeerData)
			done(ch, nil)
		})
	})
}

// withQP obtains a QP from the cache or creates one asynchronously.
func (c *Context) withQP(fn func(*rnic.QP)) {
	if qp := c.QPs.Get(); qp != nil {
		fn(qp)
		return
	}
	var srq *rnic.SRQ
	if c.cfg.UseSRQ {
		c.ensureSRQ()
		srq = c.srq
	}
	c.vctx.NIC.CreateQP(c.qpDepth(), c.qpDepth(), c.sendCQ, c.recvCQ, srq, fn)
}

func (c *Context) qpDepth() int {
	return 2*c.cfg.WindowDepth + c.cfg.CtrlReserve + c.cfg.MaxOutstandingWRs + 8
}

func (c *Context) newChannel(conn *verbs.Conn, bufs []Buffer) *Channel {
	ch := &Channel{
		ctx:          c,
		qp:           conn.QP,
		Peer:         conn.Remote,
		tx:           newTxWindow(c.cfg.WindowDepth),
		peerQPN:      conn.QP.RemoteQPN,
		peerQPN0:     conn.QP.RemoteQPN,
		lastComm:     c.eng.Now(),
		lastProgress: c.eng.Now(),
		OpenedAt:     c.eng.Now(),
		retryTokens:  retryBudgetCap,
	}
	ch.rx = newRxWindow(c.cfg.WindowDepth)
	c.channels[ch.qp.QPN] = ch
	c.indexChannel(ch, ch.qp.QPN)
	c.Stats.ChannelsOpened++
	// Post the pre-allocated standing receive pool — the buffers whose
	// footprint the §III Issue-1 formula describes. The flyweight layout
	// allocates the per-channel maps (pending, recvBufs, sent, pulls,
	// pings) on first use only, so an idle channel carries none of them.
	if len(bufs) > 0 {
		ch.recvBufs = make(map[uint64]Buffer, len(bufs))
	}
	for _, buf := range bufs {
		id := c.nextWRID()
		ch.recvBufs[id] = buf
		if err := ch.qp.PostRecv(rnic.RecvWR{ID: id, Addr: buf.Addr, Len: buf.Len}); err != nil {
			delete(ch.recvBufs, id)
			c.Mem.Free(buf)
		}
	}
	ch.registerGauges()
	return ch
}

// registerGauges publishes the XR-Stat row for this channel under
// "xrdma.<node>.ch.<qpn>." (exclusive QPs) or "xrdma.<node>.mch.<cid>."
// (muxed — the cid is the stable identity, the QPN changes across shared-
// QP recoveries). Past Config.ChannelGaugeLimit the channel folds into
// its peer's aggregate row instead, so the registry stays O(peers) at
// 100k channels. Closures evaluate at snapshot time only.
func (ch *Channel) registerGauges() {
	c := ch.ctx
	if lim := c.cfg.ChannelGaugeLimit; lim > 0 && c.gaugedChannels >= lim {
		c.aggregateChannel(ch)
		return
	}
	c.gaugedChannels++
	var prefix string
	if ch.mx != nil {
		prefix = fmt.Sprintf("%s.mch.%d.", c.track, ch.cid)
	} else {
		prefix = fmt.Sprintf("%s.ch.%d.", c.track, ch.qp.QPN)
	}
	gauges := []struct {
		name string
		fn   func() int64
	}{
		{"peer", func() int64 { return int64(ch.Peer) }},
		{"sent", func() int64 { return ch.Counters.MsgsSent }},
		{"recv", func() int64 { return ch.Counters.MsgsRecv }},
		{"txbytes", func() int64 { return ch.Counters.BytesSent }},
		{"rxbytes", func() int64 { return ch.Counters.BytesRecv }},
		{"stalls", func() int64 { return ch.Counters.WindowStalls }},
		{"rnr", func() int64 { return ch.qp.Counters.RNRNakRecv }},
		{"retx", func() int64 { return ch.qp.Counters.Retransmits }},
		{"inflight", func() int64 { return int64(ch.tx.inflight()) }},
		{"state", func() int64 { return int64(ch.health) }},
		{"path_score", func() int64 { return ch.PathScore() }},
		{"path_verdict", func() int64 { return int64(ch.doctorRef().verdict) }},
		{"rehashes", func() int64 { return ch.doctorRef().rehashes }},
		{"req_retries", func() int64 { return ch.Counters.ReqRetries }},
		{"reads", func() int64 { return ch.Counters.Reads }},
		{"writes", func() int64 { return ch.Counters.Writes }},
		{"rdbytes", func() int64 { return ch.Counters.ReadBytes }},
		{"wrbytes", func() int64 { return ch.Counters.WriteBytes }},
		{"raerrs", func() int64 { return ch.Counters.RemoteAccessErrs }},
		{"ver", func() int64 { return int64(ch.NegotiatedVersion()) }},
		{"caps", func() int64 { return int64(ch.PeerCaps()) }},
		{"drain", func() int64 { return int64(c.drain) }},
	}
	if ch.mx != nil {
		// The shared QP a muxed channel currently rides (rnr/retx above are
		// that QP's counters, shared with its sibling channels).
		gauges = append(gauges, struct {
			name string
			fn   func() int64
		}{"qpn", func() int64 { return int64(ch.qp.QPN) }})
	}
	for _, g := range gauges {
		n := prefix + g.name
		ch.telNames = append(ch.telNames, n)
		c.tel.Reg.GaugeFunc(n, g.fn)
	}
}

// unregisterGauges removes the channel's row so a recycled QPN can host a
// fresh channel's gauges. Idempotent.
func (ch *Channel) unregisterGauges() {
	c := ch.ctx
	if ch.aggregated {
		ch.aggregated = false
		if a := c.peerAggs[ch.Peer]; a != nil {
			delete(a.set, ch)
		}
		c.aggChannels--
		return
	}
	if len(ch.telNames) > 0 {
		c.gaugedChannels--
	}
	for _, n := range ch.telNames {
		c.tel.Reg.Unregister(n)
	}
	ch.telNames = nil
}

// peerAgg is one per-peer aggregate gauge row: the channels whose
// individual gauges were suppressed by ChannelGaugeLimit. Sums iterate
// the set at snapshot time — int64 addition is order-independent, so the
// registry digest stays deterministic.
type peerAgg struct {
	set map[*Channel]struct{}
}

// aggregateChannel folds a channel into its peer's aggregate row,
// creating the row's gauges on the peer's first suppressed channel.
func (c *Context) aggregateChannel(ch *Channel) {
	if c.peerAggs == nil {
		c.peerAggs = make(map[fabric.NodeID]*peerAgg)
	}
	a := c.peerAggs[ch.Peer]
	if a == nil {
		a = &peerAgg{set: make(map[*Channel]struct{})}
		c.peerAggs[ch.Peer] = a
		prefix := fmt.Sprintf("%s.peeragg.%d.", c.track, ch.Peer)
		sum := func(f func(*Channel) int64) func() int64 {
			return func() int64 {
				var t int64
				for m := range a.set {
					t += f(m)
				}
				return t
			}
		}
		reg := c.tel.Reg
		reg.GaugeFunc(prefix+"chans", func() int64 { return int64(len(a.set)) })
		reg.GaugeFunc(prefix+"sent", sum(func(m *Channel) int64 { return m.Counters.MsgsSent }))
		reg.GaugeFunc(prefix+"recv", sum(func(m *Channel) int64 { return m.Counters.MsgsRecv }))
		reg.GaugeFunc(prefix+"txbytes", sum(func(m *Channel) int64 { return m.Counters.BytesSent }))
		reg.GaugeFunc(prefix+"rxbytes", sum(func(m *Channel) int64 { return m.Counters.BytesRecv }))
		reg.GaugeFunc(prefix+"req_retries", sum(func(m *Channel) int64 { return m.Counters.ReqRetries }))
	}
	a.set[ch] = struct{}{}
	ch.aggregated = true
	c.aggChannels++
}

// repostRecv returns one consumed receive buffer to the RQ.
func (ch *Channel) repostRecv(wrID uint64) {
	c := ch.ctx
	if c.cfg.UseSRQ {
		c.recycleSRQ(wrID)
		return
	}
	buf, ok := ch.recvBufs[wrID]
	if !ok || ch.closed || ch.qp.State == rnic.QPError {
		return
	}
	delete(ch.recvBufs, wrID)
	id := ch.ctx.nextWRID()
	ch.recvBufs[id] = buf
	if err := ch.qp.PostRecv(rnic.RecvWR{ID: id, Addr: buf.Addr, Len: buf.Len}); err != nil {
		delete(ch.recvBufs, id)
		ch.ctx.Mem.Free(buf)
	}
}

// --- teardown ----------------------------------------------------------------

// Close releases the channel gracefully: the QP is reset into the QP
// cache, receive buffers return to the memory cache.
func (ch *Channel) Close() {
	ch.teardown(nil)
}

func (ch *Channel) fail(err error) {
	if ch.closed {
		return
	}
	if ch.mx != nil {
		// Muxed channels share their QP's fate: the shared QP is the
		// failure domain, and its recovery resumes every attached channel
		// exactly once (mux.go).
		ch.mx.fail(err)
		return
	}
	if ch.mock != nil {
		// Already degraded to TCP; stale RDMA completions are expected
		// while the broken QP flushes.
		return
	}
	if ch.health != HealthHealthy {
		// Already degraded; the recovery machinery owns the channel and
		// further flushed completions carry no new information.
		return
	}
	if ch.ctx.recoverPort > 0 {
		// Health state machine: hold traffic and try to re-establish
		// RDMA before giving up on it.
		ch.enterDegraded(err)
		return
	}
	if ch.ctx.cfg.MockEnabled && ch.ctx.tcp != nil {
		// §VI-C: switch to TCP instead of dying.
		ch.switchToMock(err)
		return
	}
	ch.ctx.Stats.ChannelsBroken++
	ch.ctx.logf("channel qpn=%d peer=%d broken: %v", ch.qp.QPN, ch.Peer, err)
	ch.teardown(err)
}

func (ch *Channel) teardown(err error) {
	if ch.closed {
		return
	}
	ch.closed = true
	ch.broken = err != nil
	c := ch.ctx
	ch.unregisterGauges()
	if ch.cid != 0 {
		// Mux plane: descriptors and muxed channels live in chanByCID, and
		// an attached channel tells its peer (unless the peer closed first
		// — then the CHAN_CLOSE would just echo forever).
		delete(c.chanByCID, ch.cid)
		if ch.mx != nil {
			if ch.attach == attachDone && !ch.peerClosed {
				ch.mx.sendCtrl(&wireHdr{Kind: kindChanClose, Chan: ch.peerCID})
			}
			ch.mx.detach(ch)
		}
		if ch.attach == attachPending {
			ch.attach = attachLazy
			c.attachRelease()
		}
	} else if ch.qp != nil {
		delete(c.channels, ch.qp.QPN)
	} else {
		// Rehydrated channel that never re-adopted a QP: it sits in the
		// channel table under its pre-restart QPNs (drain.go).
		for _, q := range ch.qpns {
			if c.channels[q] == ch {
				delete(c.channels, q)
			}
		}
	}
	for i, w := range c.mockWaiters {
		if w == ch {
			c.mockWaiters = append(c.mockWaiters[:i], c.mockWaiters[i+1:]...)
			break
		}
	}
	c.Stats.ChannelsClosed++
	// Fail outstanding requests.
	failErr := err
	if failErr == nil {
		failErr = ErrChannelClosed
	}
	for id, rs := range ch.pending {
		delete(ch.pending, id)
		if rs.cb != nil {
			rs.cb(nil, failErr)
		}
	}
	ch.pending = nil
	// In-flight emulated one-sided reads can never complete on a dead
	// channel; fail them like pending requests.
	for id, rs := range ch.osReads {
		delete(ch.osReads, id)
		if rs.cb != nil {
			rs.cb(nil, failErr)
		}
	}
	ch.osReads = nil
	ch.remoteWins = nil
	for _, ps := range ch.sendQ {
		if ps.staged.Valid() {
			c.Mem.Free(ps.staged)
		}
	}
	ch.sendQ = nil
	// Transmitted-but-unacked rendezvous payloads are still staged; a
	// dead channel can never get their acks, so reclaim them here (the
	// §V-A keepalive reclamation must leave no memory behind).
	for _, ps := range ch.sent {
		if ps.staged.Valid() {
			c.Mem.Free(ps.staged)
		}
	}
	ch.sent = nil
	// Return window credits held by the unacked tail and drop their
	// on-ack closures — the channel is dead, nothing will ack, and the
	// keepalive reclamation contract is "no resource left behind". The
	// tenant's window partition gets its slots back the same way.
	if ch.tx != nil {
		ch.tx.rewind()
	}
	ch.tenantRewind()
	for _, q := range ch.qpns {
		if c.recoverIdx[q] == ch {
			delete(c.recoverIdx, q)
		}
	}
	ch.recEpoch++ // strand any in-flight recovery dial
	// Receive buffers back to the cache, and the flyweight maps back to
	// nil — a closed channel costs only its struct.
	for id, buf := range ch.recvBufs {
		delete(ch.recvBufs, id)
		c.Mem.Free(buf)
	}
	ch.recvBufs = nil
	ch.pulls = nil
	ch.pings = nil
	ch.respCache = nil
	ch.respOrder = nil
	c.eng.Cancel(ch.ackEv)
	// The QP (reset) goes to the cache for fast re-establishment. A
	// mocked channel already surrendered its QP when it switched; a muxed
	// channel never owned the shared QP; a lazy descriptor has none.
	if ch.mock != nil {
		ch.closeMock()
	} else if ch.cid == 0 && ch.qp != nil {
		c.QPs.Put(ch.qp)
	}
	if ch.onClose != nil {
		ch.onClose(err)
	}
}

// Closed reports whether the channel is down.
func (ch *Channel) Closed() bool { return ch.closed }

// OnMessage installs the request handler.
func (ch *Channel) OnMessage(fn func(*Msg)) { ch.onMessage = fn }

// OnClose installs the teardown notification.
func (ch *Channel) OnClose(fn func(error)) { ch.onClose = fn }

// Context returns the owning context.
func (ch *Channel) Context() *Context { return ch.ctx }

// QPN exposes the local queue pair number (diagnostics). Muxed channels
// report the shared QP; unattached descriptors report 0.
func (ch *Channel) QPN() uint32 {
	if ch.qp == nil {
		return 0
	}
	return ch.qp.QPN
}

// QPCounters exposes the hardware-level counters (XR-Stat). For muxed
// channels these are the shared QP's counters.
func (ch *Channel) QPCounters() rnic.QPCounters {
	if ch.qp == nil {
		return rnic.QPCounters{}
	}
	return ch.qp.Counters
}

// CID exposes the mux-plane channel id (0 = exclusive legacy channel).
func (ch *Channel) CID() uint32 { return ch.cid }

// Attached reports whether the channel has live transport state (always
// true for legacy channels; false for lazy mux descriptors).
func (ch *Channel) Attached() bool { return ch.attach == attachDone }

// Inflight reports windowed messages awaiting ack.
func (ch *Channel) Inflight() int {
	if ch.tx == nil {
		return 0
	}
	return int(ch.tx.inflight())
}

// Health reports the channel's fault-tolerance state.
func (ch *Channel) Health() HealthState { return ch.health }

// OnHealthChange installs an observer for health transitions — drills
// and tests record recovery timelines through it.
func (ch *Channel) OnHealthChange(fn func(HealthState)) { ch.onHealth = fn }

func (ch *Channel) setHealth(h HealthState) {
	if ch.health == h {
		return
	}
	ch.health = h
	if ch.onHealth != nil {
		ch.onHealth(h)
	}
}

// --- keepalive (§V-A) --------------------------------------------------------

func (ch *Channel) keepaliveCheck(now sim.Time) {
	if ch.closed || ch.mock != nil || ch.health != HealthHealthy || ch.resumeOnRx {
		return
	}
	if ch.mx != nil {
		// Shared-QP channels are probed once per QP (mux.keepalive), not
		// once per channel — the probe load is O(QPs).
		return
	}
	cfg := &ch.ctx.cfg
	if ch.kaProbing {
		// The probe is a reliable RC write: its failure (retry
		// exhaustion) arrives through the completion below, so the
		// wall-clock backstop must sit above the RC retry horizon —
		// declaring death while the NIC is still legitimately
		// retransmitting would turn every loss burst into a false
		// positive.
		nicCfg := &ch.ctx.vctx.NIC.Cfg
		deadline := sim.Duration(nicCfg.RetryLimit+2) * nicCfg.RetransTimeout
		if cfg.KeepaliveTimeout > deadline {
			deadline = cfg.KeepaliveTimeout
		}
		if now.Sub(ch.kaProbeAt) > deadline {
			ch.ctx.Stats.KeepaliveFails++
			ch.ctx.tel.Flight.Trip(now, telemetry.CatKeepaliveFail, int32(ch.ctx.Node()), ch.qp.QPN)
			ch.ctx.tel.Trace.Instant("keepalive.fail", ch.ctx.track, now, int64(ch.Peer))
			ch.ctx.logf("keepalive: peer %d unreachable, reclaiming channel qpn=%d", ch.Peer, ch.qp.QPN)
			ch.fail(ErrPeerDead)
		}
		return
	}
	if now.Sub(ch.lastComm) < cfg.KeepaliveInterval {
		return
	}
	// Probe: zero-byte RDMA write — acked by the peer RNIC without
	// waking its application or touching RDMA-enabled memory.
	ch.kaProbing = true
	ch.kaProbeAt = now
	ch.ctx.Stats.KeepaliveProbes++
	ch.ctx.tel.Flight.Record(now, telemetry.CatKeepaliveProbe, int32(ch.ctx.Node()), ch.qp.QPN, int64(ch.Peer), 0)
	ch.ctx.tel.Trace.Instant("keepalive.probe", ch.ctx.track, now, int64(ch.Peer))
	wr := &rnic.SendWR{Op: rnic.OpWrite, Len: 0}
	ch.ctx.flow.postDirect(ch.qp, wr, func(cqe rnic.CQE) {
		if ch.closed {
			return
		}
		ch.kaProbing = false
		if cqe.Status != rnic.StatusOK {
			ch.ctx.Stats.KeepaliveFails++
			now := ch.ctx.eng.Now()
			ch.ctx.tel.Flight.Trip(now, telemetry.CatKeepaliveFail, int32(ch.ctx.Node()), ch.qp.QPN)
			ch.ctx.tel.Trace.Instant("keepalive.fail", ch.ctx.track, now, int64(ch.Peer))
			ch.fail(ErrPeerDead)
			return
		}
		ch.lastComm = ch.ctx.eng.Now()
	})
}

// --- deadlock breaker (§V-B) --------------------------------------------------

func (ch *Channel) deadlockCheck() {
	if ch.closed || ch.resumeOnRx || ch.attach != attachDone {
		return
	}
	if ch.nopInFlight {
		// A NOP is out soliciting an ack. If the reply was dropped while
		// the peer was transiently degraded (its ctrl plane holds frames),
		// the flag would latch forever — re-arm after a generous wait
		// instead of trusting one frame.
		if ch.ctx.eng.Now().Sub(ch.nopAt) < 4*ch.ctx.cfg.DeadlockScan {
			return
		}
		ch.nopInFlight = false
	}
	if ch.mock != nil {
		if !ch.mock.ready {
			return
		}
	} else if ch.health != HealthHealthy {
		return
	}
	if len(ch.sendQ) == 0 || ch.tx.canSend() {
		return
	}
	if ch.ctx.eng.Now().Sub(ch.lastProgress) < ch.ctx.cfg.DeadlockScan {
		return
	}
	// Window full with no progress: fire the reserved NOP to solicit an
	// ack from the peer.
	ch.nopInFlight = true
	ch.nopAt = ch.ctx.eng.Now()
	ch.Counters.NopsSent++
	ch.ctx.Stats.NopsSent++
	now := ch.ctx.eng.Now()
	ch.ctx.tel.Flight.Trip(now, telemetry.CatWindowStall, int32(ch.ctx.Node()), ch.qp.QPN)
	ch.ctx.tel.Trace.Instant("window.stall", ch.ctx.track, now, int64(len(ch.sendQ)))
	ch.sendCtrl(kindNop)
}

// Request-retry budget (gRPC-style): a channel starts with a full token
// bucket, every retry spends a token, every clean response drips a
// fraction back. Under a persistent fault the bucket drains and retries
// stop — amplification is provably bounded even when every request in
// flight times out at once.
const (
	retryBudgetCap        = 8.0
	retryCreditPerSuccess = 0.1
)

// respCacheCap bounds the receiver-side idempotency cache (FIFO evict).
const respCacheCap = 512

// expireRequests times out pending requests older than the deadline.
// When RequestRetries is enabled and the budget allows, a timed-out
// request is re-issued under the same MsgID instead of failing — the
// receiver's MsgID dedup keeps delivery exactly-once.
func (ch *Channel) expireRequests(deadline sim.Time) {
	c := ch.ctx
	now := c.eng.Now()
	// Snapshot the expired MsgIDs and process them in ascending (= issue)
	// order: map iteration order is randomized, and both which requests
	// win the finite retry tokens and the wire order of re-issues must be
	// identical run to run for the grayhaul digest to hold.
	var expired []uint64
	for id, rs := range ch.pending {
		if rs.sentAt < deadline {
			expired = append(expired, id)
		}
	}
	if len(expired) == 0 {
		return
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, id := range expired {
		rs := ch.pending[id]
		if rs == nil {
			continue // removed by an earlier expiry's callback
		}
		if c.cfg.RequestRetries > 0 && rs.retries < c.cfg.RequestRetries &&
			ch.retryTokens >= 1 && !ch.closed {
			ch.retryTokens--
			rs.retries++
			rs.sentAt = now
			ch.Counters.ReqRetries++
			c.Stats.ReqRetries++
			c.tel.Flight.Record(now, telemetry.CatReqRetry, int32(c.Node()), ch.qp.QPN, int64(id), int64(rs.retries))
			c.tel.Trace.Instant("req.retry", c.track, now, int64(rs.retries))
			ps := &pendingSend{kind: kindReq, data: rs.data, size: rs.size, msgID: id}
			backoff := c.cfg.RetryBackoff << uint(rs.retries-1)
			if backoff > 0 {
				c.eng.AfterBg(backoff, func() {
					if ch.closed {
						return
					}
					if _, still := ch.pending[id]; !still {
						return // the original response arrived after all
					}
					ch.enqueue(ps)
				})
			} else {
				ch.enqueue(ps)
			}
			continue
		}
		delete(ch.pending, id)
		c.Stats.ReqTimeouts++
		c.tel.Flight.Record(now, telemetry.CatReqTimeout, int32(c.Node()), ch.qp.QPN, int64(id), int64(rs.retries))
		if rs.cb != nil {
			rs.cb(nil, ErrTimeout)
		}
	}
}

// rememberReq records an inbound request MsgID in the idempotency cache,
// evicting the oldest entry once the cache is full.
func (ch *Channel) rememberReq(msgID uint64) {
	if ch.respCache == nil {
		ch.respCache = make(map[uint64]*respEntry)
	}
	ch.respCache[msgID] = &respEntry{}
	ch.respOrder = append(ch.respOrder, msgID)
	if len(ch.respOrder) > respCacheCap {
		old := ch.respOrder[0]
		ch.respOrder = ch.respOrder[1:]
		delete(ch.respCache, old)
	}
}

// String renders a one-line XR-Stat row.
func (ch *Channel) String() string {
	return fmt.Sprintf("qpn=%d peer=%d inflight=%d sent=%d recv=%d stalls=%d rnr=%d",
		ch.QPN(), ch.Peer, ch.Inflight(), ch.Counters.MsgsSent, ch.Counters.MsgsRecv,
		ch.Counters.WindowStalls, ch.QPCounters().RNRNakRecv)
}

package xrdma

import (
	"testing"
	"testing/quick"

	"xrdma/internal/sim"
)

func memWorld(t testing.TB, mutate func(*Config)) (*testWorld, *MemCache) {
	t.Helper()
	w := newWorld(t, 1, func(i int, cfg *Config) {
		cfg.MRSize = 1 << 20
		if mutate != nil {
			mutate(cfg)
		}
	})
	return w, w.ctxs[0].Mem
}

func TestMemCacheGrowAndAlloc(t *testing.T) {
	w, m := memWorld(t, nil)
	var bufs []Buffer
	for i := 0; i < 8; i++ {
		m.Alloc(200<<10, func(b Buffer, err error) {
			if err != nil {
				t.Fatal(err)
			}
			bufs = append(bufs, b)
		})
	}
	w.eng.Run()
	if len(bufs) != 8 {
		t.Fatalf("allocated %d/8", len(bufs))
	}
	if m.Regions() < 2 {
		t.Fatalf("8×200KB in 1MB regions should grow ≥2, got %d", m.Regions())
	}
	if m.InUseBytes != 8*200<<10 {
		t.Fatalf("in-use = %d", m.InUseBytes)
	}
	// No overlaps.
	for i := range bufs {
		for j := i + 1; j < len(bufs); j++ {
			a, b := bufs[i], bufs[j]
			if a.MR == b.MR && a.Addr < b.Addr+uint64(b.Len) && b.Addr < a.Addr+uint64(a.Len) {
				t.Fatalf("overlapping allocations %d and %d", i, j)
			}
		}
	}
	for _, b := range bufs {
		m.Free(b)
	}
	if m.InUseBytes != 0 {
		t.Fatalf("in-use after free = %d", m.InUseBytes)
	}
}

func TestMemCacheCoalescing(t *testing.T) {
	w, m := memWorld(t, nil)
	var bufs []Buffer
	for i := 0; i < 4; i++ {
		m.Alloc(256<<10, func(b Buffer, err error) { bufs = append(bufs, b) })
	}
	w.eng.Run()
	if m.Regions() != 1 {
		t.Fatalf("4×256KB should fit one 1MB region, got %d regions", m.Regions())
	}
	// Free all; a full-region alloc must then succeed without growth.
	for _, b := range bufs {
		m.Free(b)
	}
	got := false
	m.Alloc(1<<20, func(b Buffer, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = true
	})
	w.eng.Run()
	if !got {
		t.Fatal("full-region alloc failed")
	}
	if m.Regions() != 1 {
		t.Fatalf("coalescing failed: grew to %d regions", m.Regions())
	}
}

func TestMemCacheOversizeRejected(t *testing.T) {
	w, m := memWorld(t, nil)
	var gotErr error
	m.Alloc(2<<20, func(b Buffer, err error) { gotErr = err })
	w.eng.Run()
	if gotErr == nil {
		t.Fatal("allocation above MR size must fail")
	}
}

func TestMemCacheShrink(t *testing.T) {
	w, m := memWorld(t, func(cfg *Config) { cfg.MemShrinkIdle = 5 * sim.Millisecond })
	var bufs []Buffer
	for i := 0; i < 6; i++ {
		m.Alloc(512<<10, func(b Buffer, err error) { bufs = append(bufs, b) })
	}
	w.eng.Run()
	grown := m.Regions()
	if grown < 3 {
		t.Fatalf("regions = %d", grown)
	}
	for _, b := range bufs {
		m.Free(b)
	}
	w.eng.RunFor(200 * sim.Millisecond)
	if m.Regions() >= grown {
		t.Fatalf("idle regions not reclaimed: %d → %d", grown, m.Regions())
	}
	if m.Regions() < 1 {
		t.Fatal("shrink must keep one warm region")
	}
	if m.Shrinks == 0 {
		t.Fatal("shrink counter untouched")
	}
}

// Property: any alloc/free interleaving keeps accounting consistent and
// allocations disjoint.
func TestMemCacheAllocatorProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		w, m := memWorld(t, nil)
		live := []Buffer{}
		ok := true
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				idx := int(op/3) % len(live)
				m.Free(live[idx])
				live = append(live[:idx], live[idx+1:]...)
			} else {
				size := int(op%64)*1024 + 64
				m.Alloc(size, func(b Buffer, err error) {
					if err != nil {
						ok = false
						return
					}
					live = append(live, b)
				})
				w.eng.Run()
			}
		}
		var want int64
		for i, a := range live {
			want += int64(a.Len)
			for j := i + 1; j < len(live); j++ {
				b := live[j]
				if a.MR == b.MR && a.Addr < b.Addr+uint64(b.Len) && b.Addr < a.Addr+uint64(a.Len) {
					return false
				}
			}
		}
		return ok && m.InUseBytes == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQPCachePutGet(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, _ := w.connect(t, 0, 1, 5100)
	q := w.ctxs[0].QPs
	if q.Len() != 0 {
		t.Fatal("cache should start empty")
	}
	cli.Close()
	w.eng.Run()
	if q.Len() != 1 {
		t.Fatalf("cache len = %d after close", q.Len())
	}
	h0, m0 := q.Hits, q.Misses
	qp := q.Get()
	if qp == nil {
		t.Fatal("Get returned nil with cache populated")
	}
	if q.Get() != nil {
		t.Fatal("cache should be empty now")
	}
	if q.Hits != h0+1 || q.Misses != m0+1 {
		t.Fatalf("hits/misses delta = %d/%d", q.Hits-h0, q.Misses-m0)
	}
	// Returned QP must be reusable from RESET.
	if qp.State.String() != "RESET" {
		t.Fatalf("cached QP in state %v", qp.State)
	}
	q.Put(qp)
	q.Put(nil) // no-op
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
}

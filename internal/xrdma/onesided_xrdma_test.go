package xrdma

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"xrdma/internal/sim"
)

// exposeGranted registers a size-byte window on the server context and
// grants it over srv's ctrl plane; returns the owner window and the
// client's received view, with the advertised geometry verified.
func exposeGranted(t *testing.T, w *testWorld, cli, srv *Channel, size int) (*Window, RemoteWindow) {
	t.Helper()
	var win *Window
	srv.ctx.ExposeWindow(size, func(wi *Window, err error) {
		if err != nil {
			t.Fatalf("expose: %v", err)
		}
		win = wi
	})
	var got RemoteWindow
	var seen bool
	cli.OnWindow(func(rw RemoteWindow) { got, seen = rw, true })
	w.eng.Run()
	if win == nil {
		t.Fatal("window registration never completed")
	}
	srv.GrantWindow(win)
	w.eng.Run()
	if !seen {
		t.Fatal("window grant never arrived")
	}
	if got.ID != win.ID || got.Addr != win.Base() || got.RKey != win.RKey() || got.Len != size {
		t.Fatalf("grant advertised %+v, window is id=%d base=%#x rkey=%d len=%d",
			got, win.ID, win.Base(), win.RKey(), size)
	}
	return win, got
}

func TestOneSidedReadRemote(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5300)
	win, rw := exposeGranted(t, w, cli, srv, 8192)
	pat := win.Bytes()
	for i := range pat {
		pat[i] = byte(i*31 + 7)
	}
	var got []byte
	cli.ReadRemote(rw, 128, 4096, func(b []byte, err error) {
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append([]byte(nil), b...)
	})
	w.eng.Run()
	if !bytes.Equal(got, pat[128:128+4096]) {
		t.Fatal("one-sided read returned corrupted data")
	}
	if cli.Counters.Reads != 1 || cli.Counters.ReadBytes != 4096 {
		t.Fatalf("read counters: %+v", cli.Counters)
	}
	if cli.Counters.RemoteAccessErrs != 0 {
		t.Fatalf("spurious access errors: %+v", cli.Counters)
	}
	// The whole point of the READ path: the responder's middleware never
	// woke up — no message reached the server channel.
	if srv.Counters.MsgsRecv != 0 {
		t.Fatalf("one-sided read woke the responder: %+v", srv.Counters)
	}
}

func TestOneSidedWriteRemoteImm(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5301)
	win, rw := exposeGranted(t, w, cli, srv, 4096)
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i ^ 0x5a)
	}
	var imm uint32
	var addr uint64
	var n int
	var fired bool
	srv.OnWriteImm(func(i uint32, a uint64, ln int) { imm, addr, n, fired = i, a, ln, true })
	var done bool
	cli.WriteRemote(rw, 256, data, 0xfeedface, func(err error) {
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		done = true
	})
	w.eng.Run()
	if !done || !fired {
		t.Fatalf("write done=%v wakeup=%v", done, fired)
	}
	if imm != 0xfeedface || n != len(data) || addr != rw.Addr+256 {
		t.Fatalf("imm delivery: imm=%#x addr=%#x n=%d (want imm=0xfeedface addr=%#x n=%d)",
			imm, addr, n, rw.Addr+256, len(data))
	}
	if !bytes.Equal(win.Bytes()[256:256+1024], data) {
		t.Fatal("write payload did not land in the window")
	}
	if cli.Counters.Writes != 1 || cli.Counters.WriteBytes != 1024 {
		t.Fatalf("write counters: %+v", cli.Counters)
	}
}

// TestOneSidedRevokedWindowRead proves revocation is enforced by the
// memory system: the owner deregisters without telling the peer, and the
// peer's next READ draws a remote-access NAK that surfaces as
// ErrRemoteAccess, is counted at both ends, and breaks the channel the
// way real hardware breaks the QP.
func TestOneSidedRevokedWindowRead(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5302)
	win, rw := exposeGranted(t, w, cli, srv, 4096)
	win.Revoke() // peer deliberately NOT told: the rkey itself must be dead

	var gotErr error
	cli.ReadRemote(rw, 0, 512, func(_ []byte, err error) { gotErr = err })
	w.eng.RunFor(50 * sim.Millisecond)

	if !errors.Is(gotErr, ErrRemoteAccess) {
		t.Fatalf("want ErrRemoteAccess, got %v", gotErr)
	}
	if cli.Counters.RemoteAccessErrs != 1 {
		t.Fatalf("requester access-err counter: %+v", cli.Counters)
	}
	if w.nics[1].Counters.AccessErrors == 0 {
		t.Fatal("responder NIC never counted the access NAK")
	}
	if !cli.Closed() {
		t.Fatal("access NAK must break the channel like a hardware QP error")
	}
	if _, ok := w.ctxs[1].tel.Reg.Value("rnic.1.remote_access_errs"); !ok {
		t.Fatal("remote_access_errs gauge not registered")
	}
}

func TestOneSidedWindowRevokeFrame(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5303)
	win, _ := exposeGranted(t, w, cli, srv, 1024)
	var revoked uint64
	cli.OnWindowRevoke(func(id uint64) { revoked = id })
	srv.RevokeWindow(win)
	w.eng.Run()
	if revoked != win.ID {
		t.Fatalf("revoke frame carried id %d, want %d", revoked, win.ID)
	}
	if _, ok := cli.PeerWindow(win.ID); ok {
		t.Fatal("revoked window still advertised at the peer")
	}
	if !win.Revoked() {
		t.Fatal("RevokeWindow must also enforce locally")
	}
}

// TestOneSidedMockEmulation drives the same window API over the TCP
// fallback: reads and writes keep working (degraded), and a bounds
// violation surfaces as ErrRemoteAccess counted at both ends instead of
// a silent drop.
func TestOneSidedMockEmulation(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) { cfg.MockEnabled = true })
	cli, srv := w.connect(t, 0, 1, 5304)
	if err := cli.ForceMock(); err != nil {
		t.Fatal(err)
	}
	if err := srv.ForceMock(); err != nil {
		t.Fatal(err)
	}
	w.eng.RunFor(10 * sim.Millisecond)
	if !cli.Mocked() || !srv.Mocked() {
		t.Fatal("mock cutover failed")
	}
	win, rw := exposeGranted(t, w, cli, srv, 2048)
	pat := win.Bytes()
	for i := range pat {
		pat[i] = byte(i * 3)
	}

	var got []byte
	cli.ReadRemote(rw, 64, 512, func(b []byte, err error) {
		if err != nil {
			t.Fatalf("mock read: %v", err)
		}
		got = append([]byte(nil), b...)
	})
	w.eng.Run()
	if !bytes.Equal(got, pat[64:64+512]) {
		t.Fatal("mock-emulated read corrupted")
	}
	if cli.Counters.Reads != 1 || cli.Counters.ReadBytes != 512 {
		t.Fatalf("mock read counters: %+v", cli.Counters)
	}

	var imm uint32
	var fired bool
	srv.OnWriteImm(func(i uint32, _ uint64, _ int) { imm, fired = i, true })
	data := []byte("degraded but correct")
	cli.WriteRemote(rw, 0, data, 42, func(err error) {
		if err != nil {
			t.Fatalf("mock write: %v", err)
		}
	})
	w.eng.Run()
	if !fired || imm != 42 {
		t.Fatalf("mock write wakeup: fired=%v imm=%d", fired, imm)
	}
	if !bytes.Equal(win.Bytes()[:len(data)], data) {
		t.Fatal("mock write payload did not land")
	}

	// Out-of-bounds read: the responder bounds-checks against its exposed
	// windows and answers with a flagged failure, never a silent drop.
	var gotErr error
	cli.ReadRemote(rw, uint64(rw.Len), 64, func(_ []byte, err error) { gotErr = err })
	w.eng.Run()
	if !errors.Is(gotErr, ErrRemoteAccess) {
		t.Fatalf("mock violation: want ErrRemoteAccess, got %v", gotErr)
	}
	if cli.Counters.RemoteAccessErrs != 1 || srv.Counters.RemoteAccessErrs != 1 {
		t.Fatalf("violation counters: cli=%+v srv=%+v", cli.Counters, srv.Counters)
	}
	// Mock mode is the degraded plane: the violation must NOT tear the
	// channel down (there is no QP to break).
	if cli.Closed() || srv.Closed() {
		t.Fatal("mock violation must not close the channel")
	}
}

func TestOneSidedClosedChannel(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5305)
	_, rw := exposeGranted(t, w, cli, srv, 1024)
	cli.Close()
	var rerr, werr error
	cli.ReadRemote(rw, 0, 64, func(_ []byte, err error) { rerr = err })
	cli.WriteRemote(rw, 0, []byte("x"), 0, func(err error) { werr = err })
	if !errors.Is(rerr, ErrChannelClosed) || !errors.Is(werr, ErrChannelClosed) {
		t.Fatalf("closed channel: read=%v write=%v", rerr, werr)
	}
}

// TestOneSidedMetricsExposition is the satellite check that the new
// gauges flow through every consumer for free: XRStat grows the
// READS/WRITES/RDBYTES/RAERRS columns and the Prometheus exposition
// picks the per-channel and NIC counters up without any new plumbing.
func TestOneSidedMetricsExposition(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5306)
	win, rw := exposeGranted(t, w, cli, srv, 1024)
	copy(win.Bytes(), bytes.Repeat([]byte{0xab}, 1024))
	cli.ReadRemote(rw, 0, 256, func(_ []byte, err error) {
		if err != nil {
			t.Fatalf("read: %v", err)
		}
	})
	w.eng.Run()

	tbl := XRStat(w.ctxs[0])
	for _, col := range []string{"READS", "WRITES", "RDBYTES", "RAERRS"} {
		if !strings.Contains(tbl, col) {
			t.Fatalf("XRStat missing %s column:\n%s", col, tbl)
		}
	}
	if v, _ := w.ctxs[0].tel.Reg.Value(fmt.Sprintf("xrdma.0.ch.%d.rdbytes", cli.QPN())); v != 256 {
		t.Fatalf("rdbytes gauge = %d, want 256", v)
	}

	var b bytes.Buffer
	if err := w.ctxs[0].tel.Reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	expo := b.String()
	for _, frag := range []string{"_reads", "_writes", "_rdbytes", "_raerrs", "remote_access_errs"} {
		if !strings.Contains(expo, frag) {
			t.Fatalf("prometheus exposition missing %q", frag)
		}
	}
}

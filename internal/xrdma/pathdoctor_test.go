package xrdma

import (
	"encoding/binary"
	"testing"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// retryKnobs compresses the request-retry clocks for the drills below.
func retryKnobs(retries int) func(int, *Config) {
	return func(_ int, cfg *Config) {
		cfg.MockEnabled = false
		cfg.RequestTimeout = 2 * sim.Millisecond
		cfg.RequestRetries = retries
		cfg.RetryBackoff = 0
		cfg.StatsInterval = 500 * sim.Microsecond
	}
}

// TestFlowLabelSteersECMP: rotating a QP's flow label must change the
// effective flow key so the ToR's deterministic ECMP hash can pick a
// different uplink — and the connection must keep working across the
// rotation (go-back-N absorbs any transient reorder).
func TestFlowLabelSteersECMP(t *testing.T) {
	w := newWorld(t, 8, nil)
	cli, srv := w.connect(t, 0, 4, 5600) // cross-ToR on SmallClos: 2 uplinks
	echoServer(srv)

	base := cli.FlowHash()
	baseIdx := fabric.ECMPIndex(base, 2)
	// Find a label that steers onto the other uplink; with 2 candidates a
	// handful of draws must suffice.
	var steered uint64
	for label := uint64(1); label < 32; label++ {
		if err := w.ctxs[0].vctx.ModifyFlowLabel(cli.qp.QPN, label); err != nil {
			t.Fatal(err)
		}
		if cli.FlowHash() == base {
			t.Fatalf("label %d left the flow hash unchanged", label)
		}
		if fabric.ECMPIndex(cli.FlowHash(), 2) != baseIdx {
			steered = label
			break
		}
	}
	if steered == 0 {
		t.Fatal("no label in [1,32) steered the flow onto the other uplink")
	}

	// Traffic still flows on the rotated path.
	var resp bool
	cli.SendMsg([]byte("after rotation"), 0, func(m *Msg, err error) {
		if err != nil {
			t.Fatalf("post-rotation response: %v", err)
		}
		resp = true
	})
	w.eng.Run()
	if !resp {
		t.Fatal("no response after flow-label rotation")
	}

	// Label 0 restores the canonical path.
	if err := w.ctxs[0].vctx.ModifyFlowLabel(cli.qp.QPN, 0); err != nil {
		t.Fatal(err)
	}
	if cli.FlowHash() != base {
		t.Fatal("label 0 did not restore the canonical flow key")
	}
}

// TestRequestRetryExactlyOnce: a black-holed request (the server never
// replies) is retried exactly RequestRetries times, the server sees the
// request exactly once (MsgID dedup swallows the duplicates), and the
// caller finally gets ErrTimeout.
func TestRequestRetryExactlyOnce(t *testing.T) {
	const budget = 3
	w := newWorld(t, 2, retryKnobs(budget))
	cli, srv := w.connect(t, 0, 1, 5601)

	delivered := 0
	srv.OnMessage(func(m *Msg) {
		delivered++ // never reply: the request is black-holed
	})

	var gotErr error
	calls := 0
	cli.SendMsg([]byte("doomed"), 0, func(m *Msg, err error) {
		calls++
		gotErr = err
	})
	w.eng.RunFor(50 * sim.Millisecond)

	if delivered != 1 {
		t.Errorf("server handler ran %d times, want exactly 1 (dedup)", delivered)
	}
	if cli.Counters.ReqRetries != budget {
		t.Errorf("client retried %d times, want %d", cli.Counters.ReqRetries, budget)
	}
	if calls != 1 || gotErr != ErrTimeout {
		t.Errorf("callback: %d calls, err=%v; want 1 call with ErrTimeout", calls, gotErr)
	}
	if w.ctxs[0].Stats.ReqTimeouts != 1 {
		t.Errorf("ReqTimeouts=%d, want 1", w.ctxs[0].Stats.ReqTimeouts)
	}
}

// TestRequestRetryCachedResend: when the retry races a response that was
// merely slow (not lost), the receiver answers the duplicate from its
// response cache without re-running the application handler, and the
// client consumes exactly one response.
func TestRequestRetryCachedResend(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) {
		retryKnobs(2)(i, cfg)
		cfg.RetryBackoff = 4 * sim.Millisecond // retry lands after the slow reply
	})
	cli, srv := w.connect(t, 0, 1, 5602)

	handled := 0
	srv.OnMessage(func(m *Msg) {
		handled++
		data := m.Retain()
		mm := m
		w.eng.After(5*sim.Millisecond, func() { mm.Reply(data, 0) })
	})

	resps, errs := 0, 0
	cli.SendMsg([]byte("slowpoke"), 0, func(m *Msg, err error) {
		if err != nil {
			errs++
			return
		}
		resps++
	})
	w.eng.RunFor(50 * sim.Millisecond)

	if handled != 1 {
		t.Errorf("server handler ran %d times, want 1 — duplicate must be served from cache", handled)
	}
	if resps != 1 || errs != 0 {
		t.Errorf("client saw resps=%d errs=%d, want exactly one response", resps, errs)
	}
	if cli.Counters.ReqRetries < 1 {
		t.Errorf("no retry fired — test not exercising the race")
	}
	// Both wire responses arrived (original + cached resend); only the
	// first satisfied the pending request.
	if cli.Counters.RespsRecv != 1 {
		t.Errorf("RespsRecv=%d, want 1 (duplicate response must be dropped)", cli.Counters.RespsRecv)
	}
}

// TestRetryBudgetBoundsAmplification: the token bucket caps total
// retries across the channel no matter how many requests time out at
// once — the defining property of a gRPC-style retry budget.
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	w := newWorld(t, 2, retryKnobs(3))
	cli, srv := w.connect(t, 0, 1, 5603)

	blackhole := false
	srv.OnMessage(func(m *Msg) {
		if !blackhole {
			m.Reply(m.Retain(), m.Len)
		}
	})

	// A few clean exchanges first (credits cannot push tokens past the cap).
	okResps := 0
	for i := 0; i < 5; i++ {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(i))
		cli.SendMsg(buf, 0, func(m *Msg, err error) {
			if err == nil {
				okResps++
			}
		})
	}
	w.eng.RunFor(10 * sim.Millisecond)
	if okResps != 5 {
		t.Fatalf("warmup: %d/5 responses", okResps)
	}

	// Now 20 requests all black-holed: per-request budget would allow 60
	// retries, the channel bucket must stop at its cap.
	blackhole = true
	timeouts := 0
	for i := 0; i < 20; i++ {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(100+i))
		cli.SendMsg(buf, 0, func(m *Msg, err error) {
			if err == ErrTimeout {
				timeouts++
			}
		})
	}
	w.eng.RunFor(100 * sim.Millisecond)

	if timeouts != 20 {
		t.Errorf("%d/20 requests timed out", timeouts)
	}
	if got := cli.Counters.ReqRetries; got > int64(retryBudgetCap) {
		t.Errorf("channel issued %d retries, budget cap is %v", got, retryBudgetCap)
	}
	if cli.Counters.ReqRetries == 0 {
		t.Errorf("no retries at all — budget not exercised")
	}
}

// TestRetryTokenOrderDeterministic: when more requests expire at once
// than the token bucket can fund, the winners must be the oldest
// requests, re-issued in ascending MsgID order — never whichever entries
// a randomized map walk yields first. Retry order is part of the
// deterministic grayhaul digest.
func TestRetryTokenOrderDeterministic(t *testing.T) {
	w := newWorld(t, 2, retryKnobs(3))
	cli, srv := w.connect(t, 0, 1, 5605)
	srv.OnMessage(func(m *Msg) {}) // black hole: every request expires

	// All 20 requests expire in the same scan; the bucket funds exactly
	// retryBudgetCap of them.
	const n = 20
	for i := 0; i < n; i++ {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(i))
		cli.SendMsg(buf, 0, func(m *Msg, err error) {})
	}
	w.eng.RunFor(50 * sim.Millisecond)

	var ids []uint64
	dump := w.ctxs[0].tel.Flight.ForceDump(w.eng.Now(), "retry audit")
	for _, e := range dump.Events {
		if e.Cat == telemetry.CatReqRetry {
			ids = append(ids, uint64(e.A))
		}
	}
	if len(ids) != int(retryBudgetCap) {
		t.Fatalf("%d retries recorded, want %v (one full bucket)", len(ids), retryBudgetCap)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("retries out of issue order: %v", ids)
		}
	}
	// The 20 requests got consecutive MsgIDs, so the oldest-first winners
	// are a consecutive run.
	if ids[len(ids)-1]-ids[0] != uint64(len(ids)-1) {
		t.Errorf("retry tokens not spent on the oldest requests: %v", ids)
	}
}

// TestRetryPayloadOwned: with retries enabled SendMsg must copy the
// payload — the caller is free to scribble on its buffer the moment
// SendMsg returns, and a later retry must still transmit the original
// bytes.
func TestRetryPayloadOwned(t *testing.T) {
	w := newWorld(t, 2, retryKnobs(1))
	cli, srv := w.connect(t, 0, 1, 5606)
	echoServer(srv)

	buf := []byte("original-bytes")
	if err := cli.SendMsg(buf, 0, func(m *Msg, err error) {}); err != nil {
		t.Fatal(err)
	}
	if len(cli.pending) != 1 {
		t.Fatalf("pending=%d, want 1", len(cli.pending))
	}
	for _, rs := range cli.pending {
		if len(rs.data) == 0 || &rs.data[0] == &buf[0] {
			t.Fatal("retry state aliases the caller's buffer")
		}
		copy(buf, "clobbered!!!!!")
		if string(rs.data) != "original-bytes" {
			t.Fatalf("retained payload mutated with the caller's buffer: %q", rs.data)
		}
	}
	w.eng.Run()
}

// TestPathDoctorInertWithoutFaults: on a healthy fabric the doctor must
// be a pure observer — verdict clean, no rotations, no RNG draws that
// could perturb the golden runs.
func TestPathDoctorInertWithoutFaults(t *testing.T) {
	w := newWorld(t, 2, func(_ int, cfg *Config) {
		cfg.StatsInterval = 500 * sim.Microsecond
	})
	cli, srv := w.connect(t, 0, 1, 5604)
	echoServer(srv)
	for i := 0; i < 50; i++ {
		cli.SendMsg([]byte("steady"), 0, func(m *Msg, err error) {})
	}
	w.eng.RunFor(20 * sim.Millisecond)
	if v := cli.PathVerdict(); v != PathClean {
		t.Errorf("verdict %v on a clean fabric", v)
	}
	if cli.Rehashes() != 0 || w.ctxs[0].Stats.PathRehashes != 0 {
		t.Errorf("doctor rotated labels with no fault present")
	}
	if len(cli.PathLog()) != 0 {
		t.Errorf("unexpected verdict transitions: %v", cli.PathLog())
	}
}

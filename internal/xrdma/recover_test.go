package xrdma

import (
	"encoding/binary"
	"testing"

	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/tcpnet"
	"xrdma/internal/verbs"
)

// recoverWorld is a testWorld with the health state machine armed: a
// recovery listener on every node, compressed failure-detection clocks,
// and a short RC retry horizon so degrade→recover cycles fit millisecond
// tests.
func newRecoverWorld(t testing.TB, n int, mutate func(i int, cfg *Config)) *testWorld {
	t.Helper()
	eng := sim.NewEngine()
	fab := fabric.New(eng, fabric.DefaultConfig(), 1)
	top := fabric.SmallClos()
	if n > top.Hosts() {
		top = fabric.ClusterClos(n)
	}
	fabric.BuildClos(fab, top)
	net := verbs.NewCMNetwork()
	mon := NewMonitor()
	w := &testWorld{eng: eng, fab: fab, mon: mon}
	nicCfg := rnic.DefaultConfig()
	nicCfg.RetransTimeout = 2 * sim.Millisecond
	nicCfg.RetryLimit = 3
	for i := 0; i < n; i++ {
		host := fab.Host(fabric.NodeID(i))
		nic := rnic.New(eng, host, nicCfg)
		w.nics = append(w.nics, nic)
		vc := verbs.Open(nic)
		cm := verbs.NewCM(vc, net, host)
		cfg := DefaultConfig()
		cfg.MockEnabled = true
		cfg.KeepaliveInterval = 2 * sim.Millisecond
		cfg.KeepaliveTimeout = 8 * sim.Millisecond
		cfg.MockDialRetries = 4
		cfg.MockDialBackoff = sim.Millisecond
		cfg.RecoverRetries = 8
		cfg.RecoverBackoff = sim.Millisecond
		cfg.RecoverBackoffMax = 8 * sim.Millisecond
		cfg.RecoverDialTimeout = 5 * sim.Millisecond
		cfg.FailbackInterval = 25 * sim.Millisecond
		if mutate != nil {
			mutate(i, &cfg)
		}
		tcp := tcpnet.New(eng, host, tcpnet.DefaultConfig())
		ctx := NewContext(Options{
			Verbs: vc, CM: cm, Host: host, Config: cfg, Monitor: mon,
			TCP: tcp, MockPort: 9000, RecoverPort: 9100, Seed: uint64(i + 1),
		})
		w.ctxs = append(w.ctxs, ctx)
	}
	return w
}

// idStream drives a steady stream of 16-byte id-stamped requests over ch
// and tallies exact delivery on the server side.
type idStream struct {
	sent     uint64
	sendErrs int
	resps    map[uint64]int
	recvd    map[uint64]int
}

func newIDStream(srv *Channel) *idStream {
	s := &idStream{resps: map[uint64]int{}, recvd: map[uint64]int{}}
	srv.OnMessage(func(m *Msg) {
		id := binary.LittleEndian.Uint64(m.Data)
		s.recvd[id]++
		m.Reply(m.Data[:8], 0)
	})
	return s
}

// run issues one request every interval until stop (relative to now).
func (s *idStream) run(eng *sim.Engine, cli *Channel, interval, stop sim.Duration) {
	start := eng.Now()
	var tick func()
	tick = func() {
		if eng.Now().Sub(start) >= stop {
			return
		}
		id := s.sent
		s.sent++
		buf := make([]byte, 16)
		binary.LittleEndian.PutUint64(buf, id)
		if err := cli.SendMsg(buf, 0, func(m *Msg, err error) {
			if err == nil {
				s.resps[binary.LittleEndian.Uint64(m.Data)]++
			}
		}); err != nil {
			s.sendErrs++
		}
		eng.AfterBg(interval, tick)
	}
	eng.AfterBg(interval, tick)
}

// check asserts exactly-once delivery and full response coverage.
func (s *idStream) check(t *testing.T) {
	t.Helper()
	dups, lost := 0, 0
	for id := uint64(0); id < s.sent; id++ {
		switch n := s.recvd[id]; {
		case n == 0:
			lost++
		case n > 1:
			dups++
		}
	}
	if dups != 0 || lost != 0 {
		t.Errorf("of %d sent: %d duplicated, %d lost", s.sent, dups, lost)
	}
	if len(s.resps) != int(s.sent) {
		t.Errorf("%d responses for %d requests", len(s.resps), s.sent)
	}
	if s.sendErrs != 0 {
		t.Errorf("%d sends rejected", s.sendErrs)
	}
}

// TestTransientFaultRecoversOverRDMA: a pulled-and-replugged server cable
// must end with both ends Healthy on a fresh QP, with zero message loss
// or duplication across the outage.
func TestTransientFaultRecoversOverRDMA(t *testing.T) {
	w := newRecoverWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5000)
	s := newIDStream(srv)
	s.run(w.eng, cli, 500*sim.Microsecond, 150*sim.Millisecond)

	w.eng.AfterBg(20*sim.Millisecond, func() { w.fab.SetHostLink(1, false) })
	w.eng.AfterBg(60*sim.Millisecond, func() { w.fab.SetHostLink(1, true) })
	w.eng.RunFor(400 * sim.Millisecond)

	if cli.Health() != HealthHealthy || cli.Mocked() {
		t.Fatalf("client ended health=%v mocked=%v, want healthy over RDMA", cli.Health(), cli.Mocked())
	}
	if srv.Health() != HealthHealthy || srv.Mocked() {
		t.Fatalf("server ended health=%v mocked=%v", srv.Health(), srv.Mocked())
	}
	if w.ctxs[0].Stats.Degraded == 0 {
		t.Fatal("fault never detected — test is vacuous")
	}
	if w.ctxs[0].Stats.Recoveries == 0 && w.ctxs[0].Stats.Failbacks == 0 {
		t.Fatal("channel never re-established RDMA")
	}
	s.check(t)
}

// TestPermanentNicLossFallsBackToMock: a dead HCA with a living TCP stack
// must land both ends on the Mock fallback and keep serving.
func TestPermanentNicLossFallsBackToMock(t *testing.T) {
	w := newRecoverWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5000)
	s := newIDStream(srv)
	s.run(w.eng, cli, 500*sim.Microsecond, 200*sim.Millisecond)

	w.eng.AfterBg(20*sim.Millisecond, func() { w.nics[1].Crash() })
	w.eng.RunFor(500 * sim.Millisecond)

	if !cli.Mocked() || !srv.Mocked() {
		t.Fatalf("mocked: cli=%v srv=%v, want both on fallback", cli.Mocked(), srv.Mocked())
	}
	if cli.closed || srv.closed {
		t.Fatal("channel torn down instead of falling back")
	}
	if w.ctxs[0].Stats.MockSwitches == 0 {
		t.Fatal("no mock switch recorded")
	}
	s.check(t)

	// The fallback still carries fresh traffic.
	var echoed bool
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, 1<<40)
	s.recvd[1<<40] = -1 // out-of-stream probe; pre-seed so check() stays clean
	if err := cli.SendMsg(buf, 0, func(m *Msg, err error) { echoed = err == nil }); err != nil {
		t.Fatal(err)
	}
	w.eng.RunFor(20 * sim.Millisecond)
	if !echoed {
		t.Fatal("request over established fallback got no response")
	}
}

// TestFailbackRestoresRDMA: once the crashed HCA reboots, the periodic
// failback probe must pull the channel off the Mock fallback and back
// onto a fresh QP — exactly once per message, across both cutovers.
func TestFailbackRestoresRDMA(t *testing.T) {
	w := newRecoverWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5000)
	s := newIDStream(srv)
	s.run(w.eng, cli, 500*sim.Microsecond, 400*sim.Millisecond)

	w.eng.AfterBg(20*sim.Millisecond, func() { w.nics[1].Crash() })
	w.eng.AfterBg(250*sim.Millisecond, func() {
		w.nics[1].Restart()
		w.ctxs[1].OnNICRestart()
	})
	w.eng.RunFor(800 * sim.Millisecond)

	if cli.Health() != HealthHealthy || cli.Mocked() {
		t.Fatalf("client ended health=%v mocked=%v, want healthy over RDMA", cli.Health(), cli.Mocked())
	}
	if srv.Health() != HealthHealthy || srv.Mocked() {
		t.Fatalf("server ended health=%v mocked=%v", srv.Health(), srv.Mocked())
	}
	if w.ctxs[0].Stats.MockSwitches == 0 {
		t.Fatal("never fell back to mock — restart came too early for the test's point")
	}
	if w.ctxs[0].Stats.Failbacks == 0 {
		t.Fatal("no failback recorded")
	}
	s.check(t)
}

// TestParkedMockConnExpiryRaceOrders (satellite): an inbound mock conn
// nobody claims must (a) leave the parked list the moment the dialer
// gives up on it, and (b) be force-closed by the grace timer when the
// dialer is patient — in both orders, no conn outlives the grace and the
// parked list ends empty.
func TestParkedMockConnExpiryRaceOrders(t *testing.T) {
	// Order A: conn dies before the grace fires.
	w := newRecoverWorld(t, 2, nil)
	w.connect(t, 0, 1, 5000)
	srvCtx := w.ctxs[1]
	var dialed *tcpnet.Conn
	w.ctxs[0].tcp.Dial(1, 9000, func(conn *tcpnet.Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		dialed = conn
		conn.Send(mockHello(0xdead), 0, nil) // QPN no channel owns → parked
	})
	w.eng.RunFor(2 * sim.Millisecond)
	if len(srvCtx.mockParked) != 1 {
		t.Fatalf("parked list has %d entries, want 1", len(srvCtx.mockParked))
	}
	dialed.Close()
	w.eng.RunFor(2 * sim.Millisecond)
	if len(srvCtx.mockParked) != 0 {
		t.Fatalf("dead conn still parked (%d entries)", len(srvCtx.mockParked))
	}
	// The grace timer must cope with the entry being long gone.
	w.eng.RunFor(2 * srvCtx.mockGrace())

	// Order B: grace fires first and closes the still-open conn.
	w2 := newRecoverWorld(t, 2, nil)
	w2.connect(t, 0, 1, 5000)
	srvCtx2 := w2.ctxs[1]
	var dialed2 *tcpnet.Conn
	w2.ctxs[0].tcp.Dial(1, 9000, func(conn *tcpnet.Conn, err error) {
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		dialed2 = conn
		conn.Send(mockHello(0xbeef), 0, nil)
	})
	w2.eng.RunFor(2 * sim.Millisecond)
	if len(srvCtx2.mockParked) != 1 {
		t.Fatalf("parked list has %d entries, want 1", len(srvCtx2.mockParked))
	}
	w2.eng.RunFor(2 * srvCtx2.mockGrace())
	if len(srvCtx2.mockParked) != 0 {
		t.Fatalf("grace expired but %d conns still parked", len(srvCtx2.mockParked))
	}
	if dialed2.Open() {
		t.Fatal("grace-expired parked conn left open")
	}
}

// TestParkedMockConnBuffersEarlyFrames (satellite): a dialer that
// attaches and replays before this side notices its own failure must not
// lose those frames — the parked conn buffers them and the claim replays
// them into the channel.
func TestParkedMockConnBuffersEarlyFrames(t *testing.T) {
	// Disable recovery dials on the client so a NIC loss goes straight to
	// mock; leave the server's keepalive slow so the client's dial is
	// parked for a long stretch while the server still thinks the channel
	// is fine.
	w := newRecoverWorld(t, 2, func(i int, cfg *Config) {
		cfg.RecoverRetries = 1
		if i == 1 {
			cfg.KeepaliveInterval = 40 * sim.Millisecond
			cfg.KeepaliveTimeout = 160 * sim.Millisecond
		}
	})
	cli, srv := w.connect(t, 0, 1, 5000)
	s := newIDStream(srv)
	s.run(w.eng, cli, 500*sim.Microsecond, 100*sim.Millisecond)
	w.eng.AfterBg(20*sim.Millisecond, func() { w.nics[1].Crash() })
	w.eng.RunFor(600 * sim.Millisecond)
	if !cli.Mocked() || !srv.Mocked() {
		t.Fatalf("mocked: cli=%v srv=%v", cli.Mocked(), srv.Mocked())
	}
	s.check(t)
}

// TestKeepaliveDeathMidRendezvousNoLeak (satellite): when the peer dies
// for good in the middle of a large rendezvous transfer — and no
// fallback plane is configured — the teardown must return every window
// credit and memory-cache buffer; nothing may leak.
func TestKeepaliveDeathMidRendezvousNoLeak(t *testing.T) {
	w := newRecoverWorld(t, 2, func(i int, cfg *Config) {
		cfg.MockEnabled = false // permanent fault with nowhere to go
	})
	cli, srv := w.connect(t, 0, 1, 5000)
	srv.OnMessage(func(m *Msg) {}) // swallow; the transfer won't finish

	big := make([]byte, 64<<10) // rendezvous-sized
	var sendErr error
	var cbRan bool
	if err := cli.SendMsg(big, 0, func(m *Msg, err error) {
		cbRan = true
		sendErr = err
	}); err != nil {
		t.Fatal(err)
	}
	// Let the announce go out and the peer's pull begin, then kill the
	// server mid-flight.
	w.eng.RunFor(50 * sim.Microsecond)
	w.nics[1].Crash()
	w.ctxs[1].Close()
	w.eng.RunFor(800 * sim.Millisecond)

	if !cli.closed {
		t.Fatalf("client channel still open (health=%v) after permanent peer death", cli.Health())
	}
	if !cbRan || sendErr == nil {
		t.Fatal("pending send never failed back to the caller")
	}
	if got := w.ctxs[0].Mem.InUseBytes; got != 0 {
		t.Errorf("client memory cache leaks %d bytes after teardown", got)
	}
	if got := cli.tx.inflight(); got != 0 {
		t.Errorf("client window still holds %d credits", got)
	}
	if len(cli.sent) != 0 || len(cli.sendQ) != 0 {
		t.Errorf("replay state leaks: %d sent records, %d queued", len(cli.sent), len(cli.sendQ))
	}
	if w.ctxs[0].Stats.ChannelsBroken == 0 {
		t.Error("broken-channel counter never moved")
	}
}

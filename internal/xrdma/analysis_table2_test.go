package xrdma

import (
	"strings"
	"testing"

	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// Table II (§VI-A) maps production bug classes to the tracking method
// that catches them. Each test here injects one bug class with the
// analysis framework's own fault-injection surface and asserts that (a)
// the advertised tracking method observes the incident and (b) the
// flight recorder's automatic dump names the culprit event category, so
// an operator reading the dump sees what the paper's Table II promises.

// dumpNaming returns the first flight dump whose rendering mentions the
// given category name, or "" with ok=false.
func dumpNaming(tel *telemetry.Set, category string) (string, bool) {
	for _, d := range tel.Flight.Dumps() {
		if s := d.String(); strings.Contains(s, category) {
			return s, true
		}
	}
	return "", false
}

// Bug class "packet drop": the filter drops every data packet; the
// reliability layer retransmits until the QP errors out, and the dump
// must show the drops that caused the exhaustion.
func TestTable2DropCaughtByFilterAndFlightDump(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.KeepaliveInterval = 0 // isolate the drop path from keepalive
	})
	cli, srv := w.connect(t, 0, 1, 5100)
	echoServer(srv)
	if err := w.ctxs[0].SetFlag("filter_drop_rate", "1"); err != nil {
		t.Fatal(err)
	}
	var sendErr error
	cli.SendMsg([]byte("doomed"), 0, func(_ *Msg, err error) { sendErr = err })
	// RetryLimit x RetransTimeout ≈ 140 ms until retry exhaustion.
	w.eng.RunFor(500 * sim.Millisecond)

	tel := telemetry.For(w.eng)
	if len(tel.Flight.Dumps()) == 0 {
		t.Fatal("retry exhaustion produced no flight dump")
	}
	dump, ok := dumpNaming(tel, "retransmit.exhausted")
	if !ok {
		t.Fatalf("no dump names retransmit.exhausted:\n%s", tel.Flight.Dumps()[0].String())
	}
	if !strings.Contains(dump, "filter.drop") {
		t.Fatalf("dump does not show the filter drops that caused the exhaustion:\n%s", dump)
	}
	if !strings.Contains(dump, "retransmit") {
		t.Fatalf("dump does not show the retransmit storm:\n%s", dump)
	}
	if sendErr == nil && !cli.Closed() && !cli.Mocked() {
		t.Fatal("total drop left the channel nominally healthy")
	}
}

// Bug class "slow operation": req-rsp tracing with an absurdly low
// threshold must flag every message as slow on both ends, and a manual
// dump (the operator pressing the button) must carry slow.op events.
func TestTable2SlowOpCaughtByTracer(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.ReqRspMode = true
		cfg.SlowThreshold = 1 * sim.Nanosecond
	})
	cli, srv := w.connect(t, 0, 1, 5101)
	echoServer(srv)
	for i := 0; i < 5; i++ {
		cli.SendMsg([]byte("slow"), 0, func(*Msg, error) {})
	}
	w.eng.Run()

	if got := w.ctxs[1].Tracer().SlowOps; got == 0 {
		t.Fatal("receiver tracer recorded no slow one-way operations")
	}
	if got := w.ctxs[0].Tracer().SlowOps; got == 0 {
		t.Fatal("requester tracer recorded no slow RTTs")
	}
	tel := telemetry.For(w.eng)
	tel.Flight.ForceDump(w.eng.Now(), "operator slow-op investigation")
	if dump, ok := dumpNaming(tel, "slow.op"); !ok {
		t.Fatalf("forced dump does not name slow.op:\n%s", dump)
	}
}

// Bug class "connection leak": the peer dies silently; keepalive must
// declare it dead, reclaim the channel's resources (no leak) and leave a
// dump naming keepalive.fail.
func TestTable2LeakCaughtByKeepaliveReclamation(t *testing.T) {
	w := newWorld(t, 2, nil) // default keepalive: 10 ms probe, 50 ms timeout
	cli, srv := w.connect(t, 0, 1, 5102)
	echoServer(srv)
	var closeErr error
	cli.OnClose(func(err error) { closeErr = err })
	w.nics[1].Crash()
	// Probe failure surfaces after the RC retry horizon (≈160 ms).
	w.eng.RunFor(600 * sim.Millisecond)

	if w.ctxs[0].Stats.KeepaliveFails == 0 {
		t.Fatal("keepalive never declared the crashed peer dead")
	}
	if !cli.Closed() {
		t.Fatal("dead channel not reclaimed — connection leak")
	}
	if w.ctxs[0].NumChannels() != 0 {
		t.Fatalf("context still tracks %d channels after reclamation", w.ctxs[0].NumChannels())
	}
	if closeErr != ErrPeerDead {
		t.Fatalf("close reason = %v, want ErrPeerDead", closeErr)
	}
	tel := telemetry.For(w.eng)
	if _, ok := dumpNaming(tel, "keepalive.fail"); !ok {
		t.Fatal("no flight dump names keepalive.fail")
	}
}

// Bug class "RDMA path failure": forcing the mock switch must keep the
// message flow alive over TCP and leave a dump naming mock.switch.
func TestTable2FallbackCaughtByMockSwitch(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) {
		cfg.MockEnabled = true
	})
	cli, srv := w.connect(t, 0, 1, 5103)
	echoServer(srv)
	if err := cli.ForceMock(); err != nil {
		t.Fatal(err)
	}
	w.eng.Run()
	if !cli.Mocked() {
		t.Fatal("channel did not switch to the TCP mock")
	}
	if w.ctxs[0].Stats.MockSwitches == 0 {
		t.Fatal("context counted no mock switches")
	}
	// Delivery must survive the degradation.
	var resp *Msg
	cli.SendMsg([]byte("over tcp"), 0, func(m *Msg, err error) {
		if err != nil {
			t.Fatalf("send over mock: %v", err)
		}
		resp = m
	})
	w.eng.Run()
	if resp == nil {
		t.Fatal("no response over the TCP fallback")
	}
	tel := telemetry.For(w.eng)
	if _, ok := dumpNaming(tel, "mock.switch"); !ok {
		t.Fatal("no flight dump names mock.switch")
	}
}

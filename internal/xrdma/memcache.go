package xrdma

import (
	"errors"
	"fmt"
	"sort"

	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// MemCache manages per-context RDMA-enabled memory as a pool of
// identically sized MRs (4 MB by default, §IV-E — LITE showed thousands of
// small MRs collapse, so regions are few and large). Within a region a
// binary buddy allocator hands out power-of-two blocks (512 B minimum):
// split on alloc, merge with the buddy on free, so a drained region always
// recovers its full-capacity block and external fragmentation is bounded.
// When capacity runs out the cache grows by registering a new MR (paying
// the driver's registration latency) — unless Config.MemPoolBytes caps the
// pool, in which case exhaustion fails the allocation with ErrOutOfMemory
// instead of stalling. Fully free regions idle longer than MemShrinkIdle
// are reclaimed; under memory pressure (MemHighWater of the cap) idle
// regions are evicted immediately.
//
// Tenancy: AllocT charges the allocation's block-rounded size against the
// tenant's MemBudget and rejects overruns synchronously with
// ErrTenantBudget (never a silent stall), starting a shed episode.
//
// With MemIsolation on (§VI-C), each allocation is framed by canary bytes
// so out-of-bound writes are detectable via CheckIntegrity.
type MemCache struct {
	ctx      *Context
	mrSize   int
	mode     rnic.RegMode
	capBytes int // buddy-managed capacity per region: pow2 floor of mrSize
	maxOrder int // log2(capBytes / memBuddyMin)

	regions []*memRegion
	growing bool
	gen     int // bumped by Reset so in-flight grows land in the right era
	waiters []memWaiter

	// Counters (Fig. 11c plots Occupy vs In-use against bandwidth).
	// InUseBytes counts requested bytes (plus canaries in isolation mode);
	// PoolInUseBytes counts the block-rounded footprint the budget and
	// watermark math run on — the difference is internal fragmentation.
	InUseBytes     int64
	PoolInUseBytes int64
	Allocs, Frees  int64
	Grows, Shrinks int64
	Evictions      int64
	Corruptions    int64
}

const canary = 0x5C
const canaryLen = 8

// memBuddyMin is the smallest buddy block handed out.
const memBuddyMin = 512

type memRegion struct {
	mr *rnic.MR
	// free[o] holds the sorted byte offsets of free blocks of order o
	// (block size memBuddyMin<<o). Allocation takes the lowest offset of
	// the smallest sufficient order — fully deterministic.
	free     [][]int
	inUse    int // block-rounded bytes in use
	lastUsed sim.Time
	dead     bool // region lost to a NIC restart; frees become no-ops
}

type memWaiter struct {
	size   int
	tenant *Tenant
	cb     func(Buffer, error)
}

// Buffer is an allocation from the cache: registered memory usable as an
// RDMA target.
type Buffer struct {
	MR   *rnic.MR
	Addr uint64
	Len  int

	region   *memRegion
	off      int // block byte offset within the region
	totalLen int // buddy block size (>= Len + canaries)
	tenant   *Tenant
}

// Valid reports whether the buffer is a real allocation.
func (b Buffer) Valid() bool { return b.MR != nil }

// Bytes exposes the backing storage.
func (b Buffer) Bytes() []byte { return b.MR.Slice(b.Addr, b.Len) }

// ErrOutOfMemory is surfaced when the pool is capped (Config.MemPoolBytes)
// and growth would exceed it.
var ErrOutOfMemory = errors.New("xrdma: memory cache exhausted")

// ErrTenantBudget rejects an allocation that would push its tenant past
// its configured MemBudget.
var ErrTenantBudget = errors.New("xrdma: tenant memory budget exceeded")

func newMemCache(ctx *Context, mrSize int, mode rnic.RegMode) *MemCache {
	capBytes := memBuddyMin
	for capBytes*2 <= mrSize {
		capBytes *= 2
	}
	if capBytes > mrSize {
		capBytes = mrSize // degenerate: mrSize below the minimum block
	}
	maxOrder := 0
	for memBuddyMin<<maxOrder < capBytes {
		maxOrder++
	}
	return &MemCache{ctx: ctx, mrSize: mrSize, mode: mode, capBytes: capBytes, maxOrder: maxOrder}
}

// OccupiedBytes is the total registered capacity.
func (m *MemCache) OccupiedBytes() int64 { return int64(len(m.regions)) * int64(m.mrSize) }

// Regions reports the number of live MRs.
func (m *MemCache) Regions() int { return len(m.regions) }

func (m *MemCache) pad() int {
	if m.ctx.cfg.MemIsolation {
		return 2 * canaryLen
	}
	return 0
}

// blockFor is the buddy block size backing a request of this many bytes.
func (m *MemCache) blockFor(size int) int {
	total := size + m.pad()
	block := memBuddyMin
	for block < total {
		block *= 2
	}
	return block
}

// Alloc returns a buffer of the given size, growing the cache (and thus
// completing asynchronously) when needed. size must fit one region.
func (m *MemCache) Alloc(size int, cb func(Buffer, error)) {
	m.AllocT(nil, size, cb)
}

// AllocT is the tenant-charged variant: the block-rounded size counts
// against t's MemBudget, and overruns fail synchronously with
// ErrTenantBudget so the caller can degrade instead of stalling.
func (m *MemCache) AllocT(t *Tenant, size int, cb func(Buffer, error)) {
	if size+m.pad() > m.capBytes {
		cb(Buffer{}, fmt.Errorf("xrdma: allocation %d exceeds MR size %d", size, m.mrSize))
		return
	}
	if t != nil && t.cfg.MemBudget > 0 {
		if block := int64(m.blockFor(size)); t.memUsed+block > t.cfg.MemBudget {
			t.noteBudgetReject(block)
			cb(Buffer{}, ErrTenantBudget)
			return
		}
	}
	if b, ok := m.tryAlloc(t, size); ok {
		cb(b, nil)
		return
	}
	m.waiters = append(m.waiters, memWaiter{size: size, tenant: t, cb: cb})
	m.grow()
}

// AllocNow is the non-blocking variant; ok=false when the cache would
// have to grow.
func (m *MemCache) AllocNow(size int) (Buffer, bool) {
	return m.tryAlloc(nil, size)
}

// AllocNowT is AllocNow with tenant budget accounting.
func (m *MemCache) AllocNowT(t *Tenant, size int) (Buffer, bool) {
	if t != nil && t.cfg.MemBudget > 0 {
		if block := int64(m.blockFor(size)); t.memUsed+block > t.cfg.MemBudget {
			t.noteBudgetReject(block)
			return Buffer{}, false
		}
	}
	return m.tryAlloc(t, size)
}

func (m *MemCache) tryAlloc(t *Tenant, size int) (Buffer, bool) {
	total := size + m.pad()
	if total > m.capBytes {
		return Buffer{}, false
	}
	block := m.blockFor(size)
	order := 0
	for memBuddyMin<<order < block {
		order++
	}
	for _, r := range m.regions {
		off, ok := r.takeBlock(order, m.maxOrder)
		if !ok {
			continue
		}
		r.inUse += block
		r.lastUsed = m.ctx.eng.Now()
		m.InUseBytes += int64(total)
		m.PoolInUseBytes += int64(block)
		m.Allocs++
		if t != nil {
			t.memUsed += int64(block)
		}
		b := Buffer{MR: r.mr, region: r, off: off, totalLen: block, tenant: t, Len: size}
		if m.ctx.cfg.MemIsolation {
			b.Addr = r.mr.Base + uint64(off) + canaryLen
			m.paintCanaries(b)
		} else {
			b.Addr = r.mr.Base + uint64(off)
		}
		m.checkPressure()
		return b, true
	}
	return Buffer{}, false
}

// takeBlock pops the lowest free block of the smallest sufficient order,
// splitting larger blocks down and pushing the upper halves back.
func (r *memRegion) takeBlock(order, maxOrder int) (int, bool) {
	o := order
	for o <= maxOrder && len(r.free[o]) == 0 {
		o++
	}
	if o > maxOrder {
		return 0, false
	}
	off := r.free[o][0]
	r.popFront(o)
	for o > order {
		o--
		r.pushSorted(o, off+memBuddyMin<<o)
	}
	return off, true
}

// popFront removes the first (lowest) offset while keeping the slice's
// capacity, so steady-state allocation never touches the heap.
func (r *memRegion) popFront(o int) {
	lst := r.free[o]
	copy(lst, lst[1:])
	r.free[o] = lst[:len(lst)-1]
}

func (r *memRegion) pushSorted(o, off int) {
	lst := r.free[o]
	i := sort.SearchInts(lst, off)
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = off
	r.free[o] = lst
}

// Free returns a buffer to the cache, checking canaries in isolation mode
// and merging the block with its buddy chain. Buffers whose region died in
// a NIC restart are silently dropped — their storage is gone with the MR.
func (m *MemCache) Free(b Buffer) {
	if !b.Valid() || b.region == nil || b.region.dead {
		return
	}
	if m.ctx.cfg.MemIsolation && !m.checkCanaries(b) {
		m.Corruptions++
		m.ctx.logf("memcache: out-of-bound write detected at %#x (+%d)", b.Addr, b.Len)
	}
	r := b.region
	block := b.totalLen
	r.inUse -= block
	r.lastUsed = m.ctx.eng.Now()
	m.InUseBytes -= int64(b.Len + m.pad())
	m.PoolInUseBytes -= int64(block)
	m.Frees++
	if b.tenant != nil {
		b.tenant.memUsed -= int64(block)
	}
	order := 0
	for memBuddyMin<<order < block {
		order++
	}
	m.mergeFree(r, b.off, order)
	m.checkPressure()
	m.serveWaiters()
}

// mergeFree inserts the block and coalesces with its buddy while the buddy
// is free, restoring the region's full-capacity block when it drains.
func (m *MemCache) mergeFree(r *memRegion, off, order int) {
	for order < m.maxOrder {
		size := memBuddyMin << order
		buddy := off ^ size
		lst := r.free[order]
		i := sort.SearchInts(lst, buddy)
		if i >= len(lst) || lst[i] != buddy {
			break
		}
		copy(lst[i:], lst[i+1:])
		r.free[order] = lst[:len(lst)-1]
		if buddy < off {
			off = buddy
		}
		order++
	}
	r.pushSorted(order, off)
}

func (m *MemCache) paintCanaries(b Buffer) {
	buf := b.MR.Slice(b.MR.Base+uint64(b.off), 2*canaryLen+b.Len)
	for i := 0; i < canaryLen; i++ {
		buf[i] = canary
		buf[2*canaryLen+b.Len-1-i] = canary
	}
}

func (m *MemCache) checkCanaries(b Buffer) bool {
	buf := b.MR.Slice(b.MR.Base+uint64(b.off), 2*canaryLen+b.Len)
	for i := 0; i < canaryLen; i++ {
		if buf[i] != canary || buf[2*canaryLen+b.Len-1-i] != canary {
			return false
		}
	}
	return true
}

// CheckIntegrity verifies canaries of a live buffer (debug hook).
func (m *MemCache) CheckIntegrity(b Buffer) bool {
	if !m.ctx.cfg.MemIsolation {
		return true
	}
	return m.checkCanaries(b)
}

// Reset abandons every region after the NIC lost its registered memory
// (machine reboot). Buffers handed out earlier become no-ops on Free;
// pending waiters are served from freshly registered regions.
func (m *MemCache) Reset() {
	for _, r := range m.regions {
		r.dead = true
	}
	m.regions = nil
	m.InUseBytes = 0
	m.PoolInUseBytes = 0
	for _, t := range m.ctx.tenants {
		t.memUsed = 0
	}
	m.gen++
	m.growing = false
	m.checkPressure()
	if len(m.waiters) > 0 {
		m.grow()
	}
}

// grow registers one more MR asynchronously; waiters are served when it
// lands. A capped pool (Config.MemPoolBytes) that cannot grow fails the
// waiters with ErrOutOfMemory instead — exhaustion is an error the caller
// sees, never a stall.
func (m *MemCache) grow() {
	if m.growing {
		return
	}
	if capB := m.ctx.cfg.MemPoolBytes; capB > 0 && m.OccupiedBytes()+int64(m.mrSize) > capB {
		m.failWaiters()
		return
	}
	m.growing = true
	m.Grows++
	gen := m.gen
	m.ctx.pd.RegMR(m.mrSize, m.mode, func(mr *rnic.MR) {
		if gen != m.gen {
			// The cache was reset while this registration was in flight:
			// the MR belongs to the pre-restart NIC and is already dead.
			return
		}
		m.growing = false
		r := &memRegion{mr: mr, free: make([][]int, m.maxOrder+1), lastUsed: m.ctx.eng.Now()}
		r.free[m.maxOrder] = append(r.free[m.maxOrder], 0)
		m.regions = append(m.regions, r)
		m.serveWaiters()
		if len(m.waiters) > 0 {
			m.grow()
		}
	})
}

func (m *MemCache) failWaiters() {
	if len(m.waiters) == 0 {
		return
	}
	c := m.ctx
	c.tel.Flight.Record(c.eng.Now(), telemetry.CatMemPressure, int32(c.Node()), 0,
		m.OccupiedBytes(), c.cfg.MemPoolBytes)
	ws := m.waiters
	m.waiters = nil
	for _, w := range ws {
		w.cb(Buffer{}, ErrOutOfMemory)
	}
}

func (m *MemCache) serveWaiters() {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		// Re-check the budget at serve time: the tenant may have crossed it
		// while this waiter sat behind a grow.
		if t := w.tenant; t != nil && t.cfg.MemBudget > 0 {
			if block := int64(m.blockFor(w.size)); t.memUsed+block > t.cfg.MemBudget {
				m.waiters = m.waiters[1:]
				t.noteBudgetReject(block)
				w.cb(Buffer{}, ErrTenantBudget)
				continue
			}
		}
		b, ok := m.tryAlloc(w.tenant, w.size)
		if !ok {
			return
		}
		m.waiters = m.waiters[1:]
		w.cb(b, nil)
	}
}

// checkPressure runs the watermark machine over the block-rounded
// footprint when the pool is capped: crossing high water evicts idle
// regions and sheds new attaches; dropping under low water clears it.
func (m *MemCache) checkPressure() {
	capB := m.ctx.cfg.MemPoolBytes
	if capB <= 0 {
		return
	}
	hw, lw := m.ctx.cfg.MemHighWater, m.ctx.cfg.MemLowWater
	if hw <= 0 {
		hw = 0.85
	}
	if lw <= 0 {
		lw = 0.70
	}
	used := float64(m.PoolInUseBytes)
	switch {
	case !m.ctx.memPressure && used > hw*float64(capB):
		m.evictIdle()
		m.ctx.setMemPressure(true)
	case m.ctx.memPressure && used < lw*float64(capB):
		m.ctx.setMemPressure(false)
	}
}

// evictIdle deregisters fully-free regions immediately (watermark-driven
// eviction — no MemShrinkIdle wait), keeping at least one region warm.
func (m *MemCache) evictIdle() {
	kept := m.regions[:0]
	freed := 0
	for _, r := range m.regions {
		if r.inUse == 0 && len(m.regions)-freed > 1 {
			m.ctx.pd.DeregMR(r.mr)
			r.dead = true
			m.Evictions++
			freed++
			continue
		}
		kept = append(kept, r)
	}
	m.regions = kept
}

// shrink reclaims fully-free regions idle past the configured threshold
// (called from the context's periodic timer). At least one region is kept
// warm.
func (m *MemCache) shrink() {
	now := m.ctx.eng.Now()
	kept := m.regions[:0]
	freed := 0
	for _, r := range m.regions {
		remaining := len(m.regions) - freed
		if r.inUse == 0 && now.Sub(r.lastUsed) > m.ctx.cfg.MemShrinkIdle && remaining > 1 {
			m.ctx.pd.DeregMR(r.mr)
			r.dead = true
			m.Shrinks++
			freed++
			continue
		}
		kept = append(kept, r)
	}
	m.regions = kept
}

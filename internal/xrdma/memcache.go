package xrdma

import (
	"errors"
	"fmt"

	"xrdma/internal/rnic"
	"xrdma/internal/sim"
)

// MemCache manages per-context RDMA-enabled memory as a pool of
// identically sized MRs (4 MB by default, §IV-E — LITE showed thousands of
// small MRs collapse, so regions are few and large). Allocation is
// first-fit within a region; when capacity runs out the cache grows by
// registering a new MR (paying the driver's registration latency); fully
// free regions idle longer than MemShrinkIdle are reclaimed.
//
// With MemIsolation on (§VI-C), each allocation is framed by canary bytes
// and placed in the high, stack-adjacent address range the registry
// already uses, so out-of-bound writes are detectable via CheckIntegrity.
type MemCache struct {
	ctx    *Context
	mrSize int
	mode   rnic.RegMode

	regions []*memRegion
	growing bool
	gen     int // bumped by Reset so in-flight grows land in the right era
	waiters []memWaiter

	// Counters (Fig. 11c plots Occupy vs In-use against bandwidth).
	InUseBytes     int64
	Allocs, Frees  int64
	Grows, Shrinks int64
	Corruptions    int64
}

const canary = 0x5C
const canaryLen = 8

type memRegion struct {
	mr       *rnic.MR
	free     []span // sorted by offset, coalesced
	inUse    int
	lastUsed sim.Time
	dead     bool // region lost to a NIC restart; frees become no-ops
}

type span struct{ off, len int }

type memWaiter struct {
	size int
	cb   func(Buffer, error)
}

// Buffer is an allocation from the cache: registered memory usable as an
// RDMA target.
type Buffer struct {
	MR   *rnic.MR
	Addr uint64
	Len  int

	region   *memRegion
	off      int
	totalLen int // including canaries
}

// Valid reports whether the buffer is a real allocation.
func (b Buffer) Valid() bool { return b.MR != nil }

// Bytes exposes the backing storage.
func (b Buffer) Bytes() []byte { return b.MR.Slice(b.Addr, b.Len) }

// ErrOutOfMemory is surfaced when growth itself fails (not used by the
// default unbounded policy, but kept for bounded configurations).
var ErrOutOfMemory = errors.New("xrdma: memory cache exhausted")

func newMemCache(ctx *Context, mrSize int, mode rnic.RegMode) *MemCache {
	return &MemCache{ctx: ctx, mrSize: mrSize, mode: mode}
}

// OccupiedBytes is the total registered capacity.
func (m *MemCache) OccupiedBytes() int64 { return int64(len(m.regions)) * int64(m.mrSize) }

// Regions reports the number of live MRs.
func (m *MemCache) Regions() int { return len(m.regions) }

// Alloc returns a buffer of the given size, growing the cache (and thus
// completing asynchronously) when needed. size must fit one region.
func (m *MemCache) Alloc(size int, cb func(Buffer, error)) {
	pad := 0
	if m.ctx.cfg.MemIsolation {
		pad = 2 * canaryLen
	}
	if size+pad > m.mrSize {
		cb(Buffer{}, fmt.Errorf("xrdma: allocation %d exceeds MR size %d", size, m.mrSize))
		return
	}
	if b, ok := m.tryAlloc(size); ok {
		cb(b, nil)
		return
	}
	m.waiters = append(m.waiters, memWaiter{size: size, cb: cb})
	m.grow()
}

// AllocNow is the non-blocking variant; ok=false when the cache would
// have to grow.
func (m *MemCache) AllocNow(size int) (Buffer, bool) {
	return m.tryAlloc(size)
}

func (m *MemCache) tryAlloc(size int) (Buffer, bool) {
	total := size
	if m.ctx.cfg.MemIsolation {
		total += 2 * canaryLen
	}
	for _, r := range m.regions {
		for i, s := range r.free {
			if s.len < total {
				continue
			}
			off := s.off
			if s.len == total {
				r.free = append(r.free[:i], r.free[i+1:]...)
			} else {
				r.free[i] = span{off: s.off + total, len: s.len - total}
			}
			r.inUse += total
			r.lastUsed = m.ctx.eng.Now()
			m.InUseBytes += int64(total)
			m.Allocs++
			b := Buffer{MR: r.mr, region: r, off: off, totalLen: total}
			if m.ctx.cfg.MemIsolation {
				b.Addr = r.mr.Base + uint64(off) + canaryLen
				b.Len = size
				m.paintCanaries(b)
			} else {
				b.Addr = r.mr.Base + uint64(off)
				b.Len = size
			}
			return b, true
		}
	}
	return Buffer{}, false
}

// Free returns a buffer to the cache, checking canaries in isolation mode.
// Buffers whose region died in a NIC restart are silently dropped — their
// storage is gone along with the MR.
func (m *MemCache) Free(b Buffer) {
	if !b.Valid() || b.region == nil || b.region.dead {
		return
	}
	if m.ctx.cfg.MemIsolation && !m.checkCanaries(b) {
		m.Corruptions++
		m.ctx.logf("memcache: out-of-bound write detected at %#x (+%d)", b.Addr, b.Len)
	}
	r := b.region
	r.inUse -= b.totalLen
	r.lastUsed = m.ctx.eng.Now()
	m.InUseBytes -= int64(b.totalLen)
	m.Frees++
	m.insertFree(r, span{off: b.off, len: b.totalLen})
	m.serveWaiters()
}

func (m *MemCache) insertFree(r *memRegion, s span) {
	i := 0
	for i < len(r.free) && r.free[i].off < s.off {
		i++
	}
	r.free = append(r.free, span{})
	copy(r.free[i+1:], r.free[i:])
	r.free[i] = s
	// Coalesce with neighbours.
	if i+1 < len(r.free) && r.free[i].off+r.free[i].len == r.free[i+1].off {
		r.free[i].len += r.free[i+1].len
		r.free = append(r.free[:i+1], r.free[i+2:]...)
	}
	if i > 0 && r.free[i-1].off+r.free[i-1].len == r.free[i].off {
		r.free[i-1].len += r.free[i].len
		r.free = append(r.free[:i], r.free[i+1:]...)
	}
}

func (m *MemCache) paintCanaries(b Buffer) {
	buf := b.MR.Slice(b.MR.Base+uint64(b.off), b.totalLen)
	for i := 0; i < canaryLen; i++ {
		buf[i] = canary
		buf[b.totalLen-1-i] = canary
	}
}

func (m *MemCache) checkCanaries(b Buffer) bool {
	buf := b.MR.Slice(b.MR.Base+uint64(b.off), b.totalLen)
	for i := 0; i < canaryLen; i++ {
		if buf[i] != canary || buf[b.totalLen-1-i] != canary {
			return false
		}
	}
	return true
}

// CheckIntegrity verifies canaries of a live buffer (debug hook).
func (m *MemCache) CheckIntegrity(b Buffer) bool {
	if !m.ctx.cfg.MemIsolation {
		return true
	}
	return m.checkCanaries(b)
}

// Reset abandons every region after the NIC lost its registered memory
// (machine reboot). Buffers handed out earlier become no-ops on Free;
// pending waiters are served from freshly registered regions.
func (m *MemCache) Reset() {
	for _, r := range m.regions {
		r.dead = true
	}
	m.regions = nil
	m.InUseBytes = 0
	m.gen++
	m.growing = false
	if len(m.waiters) > 0 {
		m.grow()
	}
}

// grow registers one more MR asynchronously; waiters are served when it
// lands.
func (m *MemCache) grow() {
	if m.growing {
		return
	}
	m.growing = true
	m.Grows++
	gen := m.gen
	m.ctx.pd.RegMR(m.mrSize, m.mode, func(mr *rnic.MR) {
		if gen != m.gen {
			// The cache was reset while this registration was in flight:
			// the MR belongs to the pre-restart NIC and is already dead.
			return
		}
		m.growing = false
		m.regions = append(m.regions, &memRegion{
			mr:       mr,
			free:     []span{{off: 0, len: m.mrSize}},
			lastUsed: m.ctx.eng.Now(),
		})
		m.serveWaiters()
		if len(m.waiters) > 0 {
			m.grow()
		}
	})
}

func (m *MemCache) serveWaiters() {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		b, ok := m.tryAlloc(w.size)
		if !ok {
			return
		}
		m.waiters = m.waiters[1:]
		w.cb(b, nil)
	}
}

// shrink reclaims fully-free regions idle past the configured threshold
// (called from the context's periodic timer). At least one region is kept
// warm.
func (m *MemCache) shrink() {
	now := m.ctx.eng.Now()
	kept := m.regions[:0]
	freed := 0
	for _, r := range m.regions {
		remaining := len(m.regions) - freed
		if r.inUse == 0 && now.Sub(r.lastUsed) > m.ctx.cfg.MemShrinkIdle && remaining > 1 {
			m.ctx.pd.DeregMR(r.mr)
			m.Shrinks++
			freed++
			continue
		}
		kept = append(kept, r)
	}
	m.regions = kept
}

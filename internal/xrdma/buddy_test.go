package xrdma

import (
	"errors"
	"sync"
	"testing"

	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// TestBuddySplitMergeInvariants exercises the buddy allocator's core
// contract: odd-sized requests round up to power-of-two blocks (internal
// fragmentation is visible as PoolInUseBytes − InUseBytes), frees merge
// with their buddies in any order, and a fully drained region recovers
// its single full-capacity block.
func TestBuddySplitMergeInvariants(t *testing.T) {
	w, m := memWorld(t, nil)

	sizes := []int{300, 700, 5000, 100 << 10, 512, 9000}
	blocks := []int64{512, 1024, 8192, 128 << 10, 512, 16 << 10}
	bufs := make([]Buffer, len(sizes))
	for i, sz := range sizes {
		i, sz := i, sz
		m.Alloc(sz, func(b Buffer, err error) {
			if err != nil {
				t.Errorf("alloc %d: %v", sz, err)
			}
			bufs[i] = b
		})
	}
	w.eng.Run()

	if m.Regions() != 1 {
		t.Fatalf("regions = %d, want 1 (all blocks fit one region)", m.Regions())
	}
	var wantReq, wantBlock int64
	for i, sz := range sizes {
		wantReq += int64(sz)
		wantBlock += blocks[i]
	}
	if m.InUseBytes != wantReq {
		t.Errorf("InUseBytes = %d, want requested sum %d", m.InUseBytes, wantReq)
	}
	if m.PoolInUseBytes != wantBlock {
		t.Errorf("PoolInUseBytes = %d, want block-rounded sum %d", m.PoolInUseBytes, wantBlock)
	}

	// Free in interleaved order: merges must not depend on LIFO discipline.
	for _, i := range []int{3, 0, 5, 2, 4, 1} {
		m.Free(bufs[i])
	}
	if m.InUseBytes != 0 || m.PoolInUseBytes != 0 {
		t.Fatalf("after freeing all: in-use %d / pool %d, want 0/0", m.InUseBytes, m.PoolInUseBytes)
	}

	// The strongest merge invariant: the drained region hands out its full
	// capacity as ONE block again, with no growth.
	full, ok := m.AllocNow(1 << 20)
	if !ok {
		t.Fatal("full-capacity alloc failed after drain — buddies did not re-merge")
	}
	if m.Regions() != 1 {
		t.Fatalf("regions = %d after full-capacity alloc, want 1", m.Regions())
	}
	m.Free(full)
}

// TestTenantMemBudget pins the budget accounting contract: charges are
// block-rounded, overruns reject synchronously with ErrTenantBudget (and
// count as MemRejects + a tenant.shed flight dump naming the tenant), and
// frees restore headroom.
func TestTenantMemBudget(t *testing.T) {
	w, m := memWorld(t, func(cfg *Config) {
		cfg.Tenants = []TenantConfig{{Name: "a", MemBudget: 64 << 10}}
		cfg.TenantShedCooldown = 1 * sim.Millisecond
	})
	ten := w.ctxs[0].Tenant("a")
	if ten == nil {
		t.Fatal("tenant a not registered")
	}

	// 40 KiB rounds to a 64 KiB block — exactly the budget, so it fits.
	var first Buffer
	m.AllocT(ten, 40<<10, func(b Buffer, err error) {
		if err != nil {
			t.Fatalf("in-budget alloc: %v", err)
		}
		first = b
	})
	w.eng.Run()
	if got := ten.MemUsed(); got != 64<<10 {
		t.Fatalf("MemUsed = %d, want block-rounded 64KiB", got)
	}

	// One more byte of block is an overrun: synchronous, loud, counted.
	var rejected error
	m.AllocT(ten, 512, func(_ Buffer, err error) { rejected = err })
	if !errors.Is(rejected, ErrTenantBudget) {
		t.Fatalf("overrun alloc err = %v, want ErrTenantBudget (synchronously)", rejected)
	}
	if ten.MemRejects != 1 {
		t.Errorf("MemRejects = %d, want 1", ten.MemRejects)
	}
	if _, ok := m.AllocNowT(ten, 512); ok {
		t.Error("AllocNowT admitted an over-budget allocation")
	}
	if ten.MemRejects != 2 {
		t.Errorf("MemRejects = %d after AllocNowT, want 2", ten.MemRejects)
	}

	// The first breach of the episode trips a flight dump whose QPN field
	// names the culprit tenant id.
	var shed int
	for _, d := range w.ctxs[0].Telemetry().Flight.Dumps() {
		if d.Reason == telemetry.CatTenantShed {
			shed++
			if d.QPN != uint32(ten.ID()) {
				t.Errorf("shed dump names tenant %d, want %d", d.QPN, ten.ID())
			}
		}
	}
	if shed == 0 {
		t.Error("budget breach tripped no tenant.shed flight dump")
	}

	// Freeing restores headroom: the same request now succeeds.
	m.Free(first)
	if got := ten.MemUsed(); got != 0 {
		t.Fatalf("MemUsed = %d after free, want 0", got)
	}
	if b, ok := m.AllocNowT(ten, 512); !ok {
		t.Fatal("alloc after free should succeed")
	} else {
		m.Free(b)
	}
	w.eng.Run()
}

// TestMemPoolCapRejectsLoudly: a capped pool (Config.MemPoolBytes) fails
// exhausted allocations with ErrOutOfMemory the moment growth is denied —
// never a silent stall — and the registered footprint stays under the cap
// through the whole test including teardown.
func TestMemPoolCapRejectsLoudly(t *testing.T) {
	const capBytes = 1 << 20 // exactly one region
	w, m := memWorld(t, func(cfg *Config) {
		cfg.MemPoolBytes = capBytes
	})

	var full Buffer
	m.Alloc(1<<20, func(b Buffer, err error) {
		if err != nil {
			t.Fatalf("first alloc: %v", err)
		}
		full = b
	})
	w.eng.Run()
	if m.OccupiedBytes() > capBytes {
		t.Fatalf("occupied %d exceeds cap %d", m.OccupiedBytes(), capBytes)
	}

	// Pool is full and may not grow: the failure must be synchronous.
	var got error
	m.Alloc(512, func(_ Buffer, err error) { got = err })
	if !errors.Is(got, ErrOutOfMemory) {
		t.Fatalf("exhausted alloc err = %v, want ErrOutOfMemory without running the engine", got)
	}
	if m.Grows != 1 {
		t.Errorf("Grows = %d, want 1 (cap denied the second)", m.Grows)
	}

	// Headroom restored by a free, not by growth.
	m.Free(full)
	if b, ok := m.AllocNow(512); !ok {
		t.Fatal("alloc after free should succeed from the existing region")
	} else {
		m.Free(b)
	}
	w.eng.Run()
	if m.InUseBytes != 0 || m.InUseBytes > capBytes || m.OccupiedBytes() > capBytes {
		t.Fatalf("teardown: in-use %d, occupied %d, cap %d", m.InUseBytes, m.OccupiedBytes(), capBytes)
	}
}

// TestMemWatermarkEvictionDeterministic drives the watermark machine over
// a capped pool: crossing high water evicts idle regions immediately, and
// the whole counter trajectory is a pure function of the call sequence —
// two identical runs may not diverge by a single counter.
func TestMemWatermarkEvictionDeterministic(t *testing.T) {
	run := func() (evictions, shrinks, regions int64, inUse int64) {
		w, m := memWorld(t, func(cfg *Config) {
			cfg.MemPoolBytes = 4 << 20
			cfg.MemHighWater = 0.6
			cfg.MemLowWater = 0.3
		})
		alloc := func(n int) []Buffer {
			bufs := make([]Buffer, n)
			for i := 0; i < n; i++ {
				i := i
				m.Alloc(1<<20, func(b Buffer, err error) {
					if err != nil {
						t.Errorf("alloc region %d: %v", i, err)
					}
					bufs[i] = b
				})
			}
			w.eng.Run()
			return bufs
		}
		// Fill the cap: 4 regions, all busy — pressure latches but nothing
		// is idle, so nothing can be evicted.
		bufs := alloc(4)
		if m.Evictions != 0 {
			t.Errorf("evicted %d busy regions", m.Evictions)
		}
		for _, b := range bufs {
			m.Free(b)
		}
		// Refill 3 of the 4 now-idle regions: crossing high water (2.4 MiB)
		// finds exactly one fully-free region to evict.
		bufs = alloc(3)
		if m.Evictions != 1 {
			t.Errorf("Evictions = %d, want 1", m.Evictions)
		}
		if m.Regions() != 3 {
			t.Errorf("Regions = %d after eviction, want 3", m.Regions())
		}
		for _, b := range bufs {
			m.Free(b)
		}
		w.eng.Run()
		return m.Evictions, m.Shrinks, int64(m.Regions()), m.InUseBytes
	}
	e1, s1, r1, u1 := run()
	e2, s2, r2, u2 := run()
	if e1 != e2 || s1 != s2 || r1 != r2 || u1 != u2 {
		t.Fatalf("two identical runs diverge: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			e1, s1, r1, u1, e2, s2, r2, u2)
	}
	if u1 != 0 {
		t.Fatalf("in-use %d at teardown, want 0", u1)
	}
}

// TestTenantAllocRace runs four fully independent tenanted worlds on
// concurrent goroutines doing budget-charged alloc/free churn. Worlds
// share no state, so -race failures here mean the allocator or tenant
// accounting leaked a global.
func TestTenantAllocRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, m := memWorld(t, func(cfg *Config) {
				cfg.Tenants = []TenantConfig{{Name: "a", MemBudget: 256 << 10}}
				cfg.TenantShedCooldown = 1 * sim.Millisecond
			})
			ten := w.ctxs[0].Tenant("a")
			var live []Buffer
			for i := 0; i < 400; i++ {
				sz := 512 << (i % 6) // 512 B .. 16 KiB
				m.AllocT(ten, sz, func(b Buffer, err error) {
					if err == nil {
						live = append(live, b)
					}
				})
				if len(live) > 8 {
					m.Free(live[0])
					live = live[1:]
				}
				w.eng.Run()
			}
			for _, b := range live {
				m.Free(b)
			}
			w.eng.Run()
			if m.InUseBytes != 0 || ten.MemUsed() != 0 {
				t.Errorf("world leaked: in-use %d, tenant %d", m.InUseBytes, ten.MemUsed())
			}
		}()
	}
	wg.Wait()
}

// BenchmarkBuddyAlloc measures the steady-state alloc/free path: after the
// free lists warm up, popFront/pushSorted reuse slice capacity so a mixed
// working set runs at zero heap allocations per operation.
func BenchmarkBuddyAlloc(b *testing.B) {
	w, m := memWorld(b, nil)
	m.Alloc(512, func(Buffer, error) {})
	w.eng.Run() // registers the region

	sizes := [...]int{512, 2048, 16 << 10, 64 << 10}
	var live [16]Buffer
	// Warm-up pass: grow every free-list slice to its steady-state footprint.
	for i := 0; i < 4*len(live); i++ {
		if buf, ok := m.AllocNow(sizes[i%len(sizes)]); ok {
			m.Free(live[i%len(live)])
			live[i%len(live)] = buf
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, ok := m.AllocNow(sizes[i%len(sizes)])
		if !ok {
			b.Fatal("steady-state alloc failed")
		}
		m.Free(live[i%len(live)])
		live[i%len(live)] = buf
	}
}

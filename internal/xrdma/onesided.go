package xrdma

import (
	"errors"
	"fmt"

	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// One-sided dataplane (§IV-C "read replace write", generalised): an MR
// window is a dedicated registered region a context deliberately exposes
// to a peer, granted and revoked over the existing ctrl-frame plane. The
// peer then reads it with RDMA READ (ReadRemote) or updates it with RDMA
// WRITE+immediate (WriteRemote) — no send window slot, no receiver wakeup
// on reads, and reliability entirely inherited from the RNIC's shared
// go-back-N/RTO machinery. Over the TCP mock fallback the same API is
// emulated with READ_REQ/READ_RESP/WRITE_IMM frames so applications keep
// working (degraded) through a §VI-C cutover.
//
// Ownership invariants:
//   - A Window owns a dedicated MR; Revoke deregisters it, so any
//     in-flight or later remote access fails with a remote-access NAK at
//     the RNIC — revocation is enforced by the memory system, not by
//     trusting the peer to honour the WIN_REVOKE frame.
//   - RemoteWindow values are advisory bookkeeping: the rkey is the only
//     capability, and the responder's Memory.Lookup bounds check is the
//     only authority.

// Errors surfaced by one-sided operations.
var (
	ErrRemoteAccess = errors.New("xrdma: remote access violation")
	ErrNoPath       = errors.New("xrdma: one-sided op needs a live transport")
)

// flagRAErr marks a mock READ_RESP as a remote-access failure (the TCP
// emulation's stand-in for the RNIC's access NAK).
const flagRAErr = 1 << 3

// Window is a locally exposed MR window.
type Window struct {
	ID  uint64
	Len int

	ctx     *Context
	mr      *rnic.MR
	revoked bool
}

// RemoteWindow is a peer-granted window: where ReadRemote/WriteRemote may
// aim. Received via OnWindow when the peer sends a WIN_GRANT frame.
type RemoteWindow struct {
	ID   uint64
	Addr uint64
	RKey uint32
	Len  int
}

// osRead tracks one mock-emulated READ in flight (MsgID-correlated).
type osRead struct {
	cb    func([]byte, error)
	start sim.Time
	size  int
}

// ExposeWindow registers a dedicated MR of the given size and hands the
// window back once the (slow, RegCost-modelled) registration completes.
// The window is not visible to any peer until GrantWindow announces it.
func (c *Context) ExposeWindow(size int, done func(*Window, error)) {
	c.pd.RegMR(size, c.cfg.MemMode, func(mr *rnic.MR) {
		if mr == nil {
			done(nil, errors.New("xrdma: window registration failed"))
			return
		}
		c.winSeq++
		w := &Window{ID: c.winSeq, Len: size, ctx: c, mr: mr}
		if c.windows == nil {
			c.windows = make(map[uint64]*Window)
		}
		c.windows[w.ID] = w
		done(w, nil)
	})
}

// Base returns the window's registered base address.
func (w *Window) Base() uint64 { return w.mr.Base }

// RKey returns the window's remote key.
func (w *Window) RKey() uint32 { return w.mr.RKey }

// Bytes exposes the window's backing storage (the owner's view).
func (w *Window) Bytes() []byte { return w.mr.Slice(w.mr.Base, w.Len) }

// Revoked reports whether the window has been withdrawn.
func (w *Window) Revoked() bool { return w.revoked }

// Revoke withdraws the window: the dedicated MR is deregistered, so any
// later (or in-flight) remote access draws a remote-access NAK from the
// RNIC. Idempotent. Peers that were granted the window should also be
// told via RevokeWindow so they stop trying.
func (w *Window) Revoke() {
	if w.revoked {
		return
	}
	w.revoked = true
	delete(w.ctx.windows, w.ID)
	w.ctx.pd.DeregMR(w.mr)
}

// lookupWindow resolves an exposed window by rkey with bounds checking —
// the mock plane's stand-in for Memory.Lookup. At most one window holds a
// given rkey, so the map scan is order-independent.
func (c *Context) lookupWindow(rkey uint32, addr uint64, size int) *Window {
	for _, w := range c.windows {
		if w.mr.RKey != rkey {
			continue
		}
		if addr >= w.mr.Base && addr+uint64(size) <= w.mr.Base+uint64(w.Len) {
			return w
		}
		return nil
	}
	return nil
}

// GrantWindow announces a window to this channel's peer over the ctrl
// plane. The peer observes it via OnWindow. A peer that did not advertise
// the one-sided capability in negotiation never sees a WIN_GRANT — the
// grant is silently withheld (and logged), since a v1 build would treat
// the frame as noise.
func (ch *Channel) GrantWindow(w *Window) {
	if !ch.peerCap(capOneSided) {
		ch.ctx.logf("win.grant withheld: peer %d lacks one-sided capability", ch.Peer)
		return
	}
	ch.sendCtrlHdr(&wireHdr{
		Kind: kindWinGrant, MsgID: w.ID,
		Addr: w.mr.Base, RKey: w.mr.RKey, Size: uint32(w.Len),
	})
}

// RevokeWindow tells the peer the window is gone and enforces the
// revocation locally (deregistering the MR). The frame is advisory; the
// deregistration is the guarantee.
func (ch *Channel) RevokeWindow(w *Window) {
	ch.sendCtrlHdr(&wireHdr{Kind: kindWinRevoke, MsgID: w.ID})
	w.Revoke()
}

// OnWindow installs the observer for peer-granted windows.
func (ch *Channel) OnWindow(fn func(RemoteWindow)) { ch.onWindow = fn }

// OnWindowRevoke installs the observer for peer-revoked windows (called
// with the window id).
func (ch *Channel) OnWindowRevoke(fn func(uint64)) { ch.onWinRevoke = fn }

// OnWriteImm installs the handler for inbound one-sided WRITE+imm: the
// data is already placed in the target window when the handler runs; imm,
// the landing address and the length are all it gets — by design, the
// whole point of the immediate is a wakeup without a message body.
func (ch *Channel) OnWriteImm(fn func(imm uint32, addr uint64, n int)) { ch.onWriteImm = fn }

// PeerWindow returns a previously granted remote window by id.
func (ch *Channel) PeerWindow(id uint64) (RemoteWindow, bool) {
	rw, ok := ch.remoteWins[id]
	return rw, ok
}

// ReadRemote pulls size bytes from the peer window at offset off using
// fragmented RDMA READ (flow-controlled like the rendezvous path). cb
// receives the data — valid only during the callback — or an error; a
// remote-access NAK surfaces as ErrRemoteAccess wrapped in the error and
// breaks the channel, exactly as the hardware would break the QP. Over
// the TCP mock the read is emulated with READ_REQ/READ_RESP frames.
func (ch *Channel) ReadRemote(win RemoteWindow, off uint64, size int, cb func([]byte, error)) {
	c := ch.ctx
	if ch.closed {
		cb(nil, ErrChannelClosed)
		return
	}
	if ch.attach != attachDone {
		ch.attachCBs = append(ch.attachCBs, func(err error) {
			if err != nil {
				cb(nil, err)
				return
			}
			ch.ReadRemote(win, off, size, cb)
		})
		ch.requestAttach()
		return
	}
	start := c.eng.Now()
	id := c.nextMsgID()
	ch.Counters.Reads++
	if ch.mock != nil {
		if !ch.mock.ready {
			cb(nil, ErrNoPath)
			return
		}
		if ch.osReads == nil {
			ch.osReads = make(map[uint64]*osRead)
		}
		ch.osReads[id] = &osRead{cb: cb, start: start, size: size}
		ch.sendCtrlHdr(&wireHdr{
			Kind: kindReadReq, MsgID: id,
			Addr: win.Addr + off, RKey: win.RKey, Size: uint32(size),
		})
		return
	}
	if ch.health != HealthHealthy {
		// Speculative op with no path: fail fast so the caller's RPC
		// fallback engages instead of queueing behind recovery.
		cb(nil, ErrNoPath)
		return
	}
	if size == 0 {
		// Zero-byte probe: no buffer, no rkey check — an RTT measurement.
		c.flow.fetchRemote(ch.qp, win.Addr+off, win.RKey, Buffer{}, 0, func(st rnic.Status) {
			ch.readDone(id, start, 0, Buffer{}, st, cb)
		})
		return
	}
	c.Mem.Alloc(size, func(buf Buffer, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		if ch.closed || ch.mock != nil || ch.health != HealthHealthy {
			c.Mem.Free(buf)
			cb(nil, ErrNoPath)
			return
		}
		c.flow.fetchRemote(ch.qp, win.Addr+off, win.RKey, buf, size, func(st rnic.Status) {
			ch.readDone(id, start, size, buf, st, cb)
		})
	})
}

// readDone completes one RDMA-path ReadRemote: stats, blame, callback,
// buffer reclamation, and channel failure on a broken QP.
func (ch *Channel) readDone(id uint64, start sim.Time, size int, buf Buffer, st rnic.Status, cb func([]byte, error)) {
	c := ch.ctx
	if st != rnic.StatusOK {
		if buf.Valid() {
			c.Mem.Free(buf)
		}
		err := fmt.Errorf("xrdma: remote read failed: %v: %w", st, ErrRemoteAccess)
		if st != rnic.StatusRemoteAccessErr {
			err = fmt.Errorf("xrdma: remote read failed: %v", st)
		} else {
			ch.Counters.RemoteAccessErrs++
		}
		cb(nil, err)
		if !ch.closed && st != rnic.StatusFlushed {
			// The QP broke under the read (access NAK, retry exhaustion):
			// hand the channel to the health machinery like any send fault.
			ch.fail(err)
		}
		return
	}
	ch.Counters.ReadBytes += int64(size)
	ch.noteOneSided(telemetry.StageReadFetch, id, start)
	if buf.Valid() {
		cb(buf.Bytes()[:size], nil)
		c.Mem.Free(buf)
	} else {
		cb(nil, nil)
	}
}

// WriteRemote places data into the peer window at offset off with RDMA
// WRITE+immediate; the peer's OnWriteImm handler fires with imm once the
// data is placed. cb(nil) fires when the local completion (hardware ack)
// confirms remote placement. Over the TCP mock the write travels inline
// as a WRITE_IMM frame and cb fires on TCP delivery.
func (ch *Channel) WriteRemote(win RemoteWindow, off uint64, data []byte, imm uint32, cb func(error)) {
	c := ch.ctx
	if ch.closed {
		cb(ErrChannelClosed)
		return
	}
	if ch.attach != attachDone {
		ch.attachCBs = append(ch.attachCBs, func(err error) {
			if err != nil {
				cb(err)
				return
			}
			ch.WriteRemote(win, off, data, imm, cb)
		})
		ch.requestAttach()
		return
	}
	start := c.eng.Now()
	id := c.nextMsgID()
	ch.Counters.Writes++
	if ch.mock != nil {
		if !ch.mock.ready {
			cb(ErrNoPath)
			return
		}
		h := &wireHdr{
			Kind: kindWriteImm, MsgID: id, Imm: imm,
			Addr: win.Addr + off, RKey: win.RKey, Size: uint32(len(data)),
		}
		ch.sendCtrlPayload(h, data, func(err error) {
			if err != nil {
				cb(err)
				return
			}
			ch.Counters.WriteBytes += int64(len(data))
			ch.noteOneSided(telemetry.StageWriteFlush, id, start)
			cb(nil)
		})
		return
	}
	if ch.health != HealthHealthy {
		cb(ErrNoPath)
		return
	}
	wr := &rnic.SendWR{
		Op: rnic.OpWriteImm, Len: len(data), Data: data,
		RAddr: win.Addr + off, RKey: win.RKey, Imm: imm,
	}
	c.flow.post(ch.qp, wr, func(cqe rnic.CQE) {
		if cqe.Status != rnic.StatusOK {
			err := fmt.Errorf("xrdma: remote write failed: %v", cqe.Status)
			if cqe.Status == rnic.StatusRemoteAccessErr {
				ch.Counters.RemoteAccessErrs++
				err = fmt.Errorf("xrdma: remote write failed: %v: %w", cqe.Status, ErrRemoteAccess)
			}
			cb(err)
			if !ch.closed && cqe.Status != rnic.StatusFlushed && cqe.QPN == ch.qp.QPN {
				ch.fail(err)
			}
			return
		}
		ch.Counters.WriteBytes += int64(len(data))
		ch.noteOneSided(telemetry.StageWriteFlush, id, start)
		cb(nil)
	})
	ch.lastComm = c.eng.Now()
}

// noteOneSided attributes one completed one-sided op to its blame stage:
// a timeline span always (when tracing is on), plus a blame record when
// the op falls in the causal-trace sample — the same sampling policy the
// two-sided plane uses.
func (ch *Channel) noteOneSided(stage telemetry.Stage, id uint64, start sim.Time) {
	c := ch.ctx
	d := c.eng.Now().Sub(start)
	c.tel.Trace.Complete(stage.String(), c.track, start, d, int64(id))
	if c.cfg.ReqRspMode && ch.mock == nil && ch.blameSampled(id) {
		rec := telemetry.BlameRec{
			MsgID: id, Node: int32(c.Node()), QPN: ch.qp.QPN,
			At: start, RTT: d,
		}
		rec.Dur[stage] = d
		c.tel.Blame.Observe(&rec)
	}
}

// --- inbound (ctrl-plane + mock emulation) ----------------------------------

// handleWinGrant records a peer-granted window.
func (ch *Channel) handleWinGrant(h *wireHdr) {
	rw := RemoteWindow{ID: h.MsgID, Addr: h.Addr, RKey: h.RKey, Len: int(h.Size)}
	if ch.remoteWins == nil {
		ch.remoteWins = make(map[uint64]RemoteWindow)
	}
	ch.remoteWins[h.MsgID] = rw
	if ch.onWindow != nil {
		ch.onWindow(rw)
	}
}

// handleWinRevoke forgets a peer-revoked window.
func (ch *Channel) handleWinRevoke(h *wireHdr) {
	delete(ch.remoteWins, h.MsgID)
	if ch.onWinRevoke != nil {
		ch.onWinRevoke(h.MsgID)
	}
}

// serveMockRead answers an emulated READ: bounds-check against the
// exposed windows (the mock plane's Memory.Lookup) and reply with the
// bytes or a flagged access failure — never a silent drop.
func (ch *Channel) serveMockRead(h *wireHdr) {
	c := ch.ctx
	size := int(h.Size)
	w := c.lookupWindow(h.RKey, h.Addr, size)
	if w == nil && size > 0 {
		ch.Counters.RemoteAccessErrs++
		now := c.eng.Now()
		c.tel.Flight.Record(now, telemetry.CatRemoteAccess, int32(c.Node()), ch.QPN(), int64(ch.Peer), 3)
		c.tel.Trace.Instant("remote.access", c.track, now, int64(h.MsgID))
		ch.sendCtrlHdr(&wireHdr{Kind: kindReadResp, MsgID: h.MsgID, Flags: flagRAErr})
		return
	}
	resp := &wireHdr{Kind: kindReadResp, MsgID: h.MsgID, Size: h.Size}
	var data []byte
	if size > 0 {
		data = w.mr.Slice(h.Addr, size)
	}
	ch.sendCtrlPayload(resp, data, nil)
}

// resolveMockRead completes an emulated READ at the requester.
func (ch *Channel) resolveMockRead(h *wireHdr, pay []byte) {
	st, ok := ch.osReads[h.MsgID]
	if !ok {
		return
	}
	delete(ch.osReads, h.MsgID)
	if h.Flags&flagRAErr != 0 {
		ch.Counters.RemoteAccessErrs++
		st.cb(nil, ErrRemoteAccess)
		return
	}
	ch.Counters.ReadBytes += int64(h.Size)
	ch.noteOneSided(telemetry.StageReadFetch, h.MsgID, st.start)
	st.cb(pay, nil)
}

// applyMockWrite places an emulated WRITE+imm into the target window and
// wakes the application, mirroring the RNIC's DMA + immediate delivery.
// A violation is counted and flight-recorded on the responder (the mock
// transport has no NAK to send back — the write already "completed" at
// the TCP layer).
func (ch *Channel) applyMockWrite(h *wireHdr, pay []byte) {
	c := ch.ctx
	size := int(h.Size)
	w := c.lookupWindow(h.RKey, h.Addr, size)
	if w == nil && size > 0 {
		ch.Counters.RemoteAccessErrs++
		now := c.eng.Now()
		c.tel.Flight.Record(now, telemetry.CatRemoteAccess, int32(c.Node()), ch.QPN(), int64(ch.Peer), 4)
		c.tel.Trace.Instant("remote.access", c.track, now, int64(h.MsgID))
		return
	}
	if size > 0 && pay != nil {
		copy(w.mr.Slice(h.Addr, size), pay)
	}
	if ch.onWriteImm != nil {
		ch.onWriteImm(h.Imm, h.Addr, size)
	}
}

// handleWriteImmCQE delivers an RDMA-path inbound WRITE+imm: the NIC
// already placed the data in the window MR; the consumed receive WQE is
// reposted and the immediate handed to the application. Runs before
// header decoding in dispatchRecv — a WRITE+imm carries no wire header in
// the receive buffer.
func (ch *Channel) handleWriteImmCQE(cqe rnic.CQE) {
	ch.lastComm = ch.ctx.eng.Now()
	ch.repostRecv(cqe.WRID)
	if ch.onWriteImm != nil {
		ch.onWriteImm(cqe.Imm, cqe.Addr, cqe.Len)
	}
}

// sendCtrlPayload emits a window-exempt ctrl frame carrying a payload
// (mock READ_RESP / WRITE_IMM emulation; RDMA ctrl frames ride SEND). cb,
// when non-nil, fires once the frame is handed to the transport.
func (ch *Channel) sendCtrlPayload(h *wireHdr, data []byte, cb func(error)) {
	if ch.closed || ch.rx == nil {
		if cb != nil {
			cb(ErrChannelClosed)
		}
		return
	}
	h.Ack = ch.rx.ackValue()
	if ch.mx != nil {
		h.Chan = ch.peerCID
	}
	hb := h.wireBytes()
	buf := make([]byte, hb+len(data))
	h.encode(buf)
	copy(buf[hb:], data)
	if ch.mock != nil {
		if !ch.mock.ready {
			if cb != nil {
				cb(ErrNoPath)
			}
			return
		}
		ch.mock.conn.Send(buf, len(buf), cb)
		ch.noteAckCarried()
		ch.lastComm = ch.ctx.eng.Now()
		return
	}
	if ch.health != HealthHealthy || ch.resumeOnRx {
		if cb != nil {
			cb(ErrNoPath)
		}
		return
	}
	wr := &rnic.SendWR{Op: rnic.OpSend, Len: len(buf), Data: buf}
	ch.ctx.flow.postDirect(ch.qp, wr, func(cqe rnic.CQE) {
		if cqe.Status != rnic.StatusOK {
			if cb != nil {
				cb(fmt.Errorf("xrdma: ctrl send failed: %v", cqe.Status))
			}
			if !ch.closed && cqe.QPN == ch.qp.QPN {
				ch.fail(fmt.Errorf("xrdma: ctrl send failed: %v", cqe.Status))
			}
			return
		}
		if cb != nil {
			cb(nil)
		}
	})
	ch.noteAckCarried()
	ch.lastComm = ch.ctx.eng.Now()
}

package xrdma

import (
	"fmt"
	"sort"

	"xrdma/internal/fabric"
	"xrdma/internal/rnic"
	"xrdma/internal/sim"
	"xrdma/internal/tcpnet"
	"xrdma/internal/telemetry"
	"xrdma/internal/verbs"
)

// Context is X-RDMA's per-thread execution domain (§IV-B): it owns the
// completion queues, the memory and QP caches, the flow controller, the
// per-thread timer and every channel created on it. All callbacks run
// inside the context's run-to-complete poll loop — no locks, no cross-
// context sharing.
type Context struct {
	eng  *sim.Engine
	vctx *verbs.Context
	cm   *verbs.CM
	host *fabric.Host
	cfg  Config

	pd   *verbs.PD
	Mem  *MemCache
	QPs  *QPCache
	flow *flowCtl

	sendCQ, recvCQ *rnic.CQ
	srq            *rnic.SRQ
	srqPrimed      bool              // first fill done (deferred: see ensureSRQ)
	srqBufs        map[uint64]Buffer // recv WR id → buffer (SRQ mode)

	channels map[uint32]*Channel // by local QPN
	wrCBs    map[uint64]func(rnic.CQE)
	wrSeq    uint64
	msgSeq   uint64

	// One-sided plane (onesided.go): exposed MR windows by window id.
	windows map[uint64]*Window
	winSeq  uint64

	onChannel func(*Channel)

	// Reused CQE buffers: pollOnce drains into these so the poll loop is
	// allocation-free (dispatch closures copy the CQE values they need).
	scqeBuf, rcqeBuf []rnic.CQE

	// Hybrid polling state (§IV-B).
	pollEv      sim.Event
	lastPoll    sim.Time
	idlePolls   int
	eventMode   bool
	busyUntil   sim.Time
	started     bool
	eventFD     int
	wakePending bool

	// Analysis framework.
	trace   *Tracer
	logbuf  []LogEntry
	flagLog []flagChange
	rng     *sim.RNG
	monitor *Monitor

	// Mock (TCP fallback).
	tcp         *tcpnet.Stack
	mockPort    int
	mockWaiters []*Channel
	mockParked  []*parkedMock

	// Recovery (health state machine). recoverPort > 0 enables RDMA
	// re-establishment for degraded channels; recoverIdx maps every
	// local QPN a channel has ever owned to the channel, because a
	// dialing peer names the last QPN it saw — possibly several
	// adoptions (or a fallback) ago.
	recoverPort int
	recoverIdx  map[uint32]*Channel

	// QP multiplexing (mux.go, Config.QPsPerPeer > 0). chanByCID holds
	// every mux-plane channel (lazy descriptors included) by its
	// context-unique cid; muxByQPN demultiplexes receive completions;
	// muxRecoverIdx is the reattach rendezvous (every QPN a shared QP has
	// ever owned); muxQPs is the creation-order scan list — deterministic
	// where the maps are not. attachQ/attachActive implement the
	// admission cap on concurrent lazy attaches.
	mux           map[fabric.NodeID]*peerMux
	muxByQPN      map[uint32]*muxQP
	muxRecoverIdx map[uint32]*muxQP
	chanByCID     map[uint32]*Channel
	muxQPs        []*muxQP
	cidSeq        uint32
	attachQ       []*Channel
	attachActive  int

	// Tenancy plane (Config.Tenants): the tenant table in id order, the
	// name index, the global memory-pressure gate (MemPoolBytes
	// watermarks) and the count of frames whose label named no local
	// tenant (graceful default treatment).
	tenants       []*Tenant
	tenantByName  map[string]*Tenant
	memPressure   bool
	tenantUnknown int64

	// Gauge-limit plane (Config.ChannelGaugeLimit): individually gauged
	// channel count, per-peer aggregate rows, and how many channels were
	// folded into them (the XR-Stat truncation note).
	gaugedChannels int
	aggChannels    int
	peerAggs       map[fabric.NodeID]*peerAgg

	// Hot-upgrade plane (drain.go): the Serving→Draining→Drained
	// lifecycle, the handoff callback armed by Drain, the drain deadline,
	// and every CM port this context listens on (so Shutdown can release
	// them for the restarted instance).
	drain         DrainState
	drainCB       func([]byte)
	drainDeadline sim.Time
	drainStarted  sim.Time
	listenPorts   []int

	// Clock skew of this node (set by the cluster harness) and the
	// estimated offset table from the clock-sync service.
	clockSkew sim.Duration
	toff      map[fabric.NodeID]sim.Duration

	// Telemetry: the engine-keyed set, this node's track name
	// ("xrdma.<node>") and the pre-resolved RTT histogram handle.
	tel     *telemetry.Set
	track   string
	rttHist telemetry.Histogram
	recHist telemetry.Histogram

	Stats ContextStats
}

// ContextStats aggregates per-context counters for XR-Stat / Monitor.
type ContextStats struct {
	Polls           int64
	SlowPolls       int64
	EventWakes      int64
	Dispatched      int64
	ChannelsOpened  int64
	ChannelsClosed  int64
	ChannelsBroken  int64
	KeepaliveProbes int64
	KeepaliveFails  int64
	NopsSent        int64
	AcksSent        int64
	ReqTimeouts     int64
	ReqRetries      int64
	MockSwitches    int64
	Degraded        int64
	RecoverAttempts int64
	Recoveries      int64
	Failbacks       int64
	PathRehashes    int64
	PathEscalations int64
	PathHints       int64 // PATH_HINT frames sent (RX-attributed sickness)
	PathHintsRecv   int64

	// Hot-upgrade plane: version-negotiation failures (disjoint ranges or
	// foreign-version frames), establishment attempts refused because the
	// node was draining, and channels rehydrated from a handoff blob.
	VerMismatches int64
	DrainRefusals int64
	Rehydrated    int64
}

// LogEntry is one line of the self-adaptive log (§VI-A method III).
type LogEntry struct {
	At   sim.Time
	Text string
}

// Options wires a Context to its node.
type Options struct {
	Verbs   *verbs.Context
	CM      *verbs.CM
	Host    *fabric.Host
	Config  Config
	Monitor *Monitor
	// TCP enables the Mock fallback plane; MockPort is where this node
	// accepts mock connections.
	TCP      *tcpnet.Stack
	MockPort int
	// RecoverPort, when non-zero, enables the channel health state
	// machine: degraded channels re-establish RDMA through a CM listener
	// on this port instead of failing straight to Mock/teardown.
	RecoverPort int
	// ClockSkew offsets this node's local clock (tracing experiments).
	ClockSkew sim.Duration
	Seed      uint64
}

// NewContext builds a context and starts its poll loop and timers.
func NewContext(o Options) *Context {
	c := &Context{
		eng:         o.Verbs.Eng,
		vctx:        o.Verbs,
		cm:          o.CM,
		host:        o.Host,
		cfg:         o.Config,
		channels:    make(map[uint32]*Channel),
		wrCBs:       make(map[uint64]func(rnic.CQE)),
		rng:         sim.NewRNG(o.Seed ^ 0x9e37),
		monitor:     o.Monitor,
		tcp:         o.TCP,
		mockPort:    o.MockPort,
		recoverPort: o.RecoverPort,
		recoverIdx:  make(map[uint32]*Channel),
		clockSkew:   o.ClockSkew,
		toff:        make(map[fabric.NodeID]sim.Duration),
		eventFD:     int(o.Host.ID)*16 + 3,
	}
	c.tel = telemetry.For(c.eng)
	c.track = fmt.Sprintf("xrdma.%d", c.host.ID)
	c.rttHist = c.tel.Reg.Histogram(c.track + ".rtt_ns")
	c.recHist = c.tel.Reg.Histogram(c.track + ".recovery_ns")
	c.pd = c.vctx.AllocPD()
	c.Mem = newMemCache(c, c.cfg.MRSize, c.cfg.MemMode)
	c.QPs = newQPCache(c, 4096)
	c.flow = newFlowCtl(c, c.cfg.MaxOutstandingWRs)
	c.sendCQ = rnic.NewCQ(8192)
	c.recvCQ = rnic.NewCQ(8192)
	c.trace = newTracer(c)
	c.registerGauges()
	if len(c.cfg.Tenants) > 0 {
		c.initTenants()
	}
	if c.cfg.QPsPerPeer > 0 {
		// QP multiplexing implies SRQ receives: shared QPs cannot post
		// per-channel receive pools.
		c.cfg.UseSRQ = true
		c.mux = make(map[fabric.NodeID]*peerMux)
		c.muxByQPN = make(map[uint32]*muxQP)
		c.muxRecoverIdx = make(map[uint32]*muxQP)
		c.chanByCID = make(map[uint32]*Channel)
	}
	if c.cfg.UseSRQ {
		// The queue object is a few words; the buffer fill (SRQSize
		// receive buffers out of the memory cache) waits for ensureSRQ
		// at the first QP that references the queue, so an idle context
		// in a large world costs none of it.
		c.srq = rnic.NewSRQ(c.cfg.SRQSize)
		c.srqBufs = make(map[uint64]Buffer)
	}
	c.sendCQ.OnCompletion(c.wake)
	c.recvCQ.OnCompletion(c.wake)
	if c.monitor != nil {
		c.monitor.register(c)
	}
	if c.tcp != nil && c.mockPort > 0 {
		c.listenMock()
	}
	if c.recoverPort > 0 {
		c.listenRecover()
	}
	c.startPolling()
	c.startTimers()
	return c
}

// registerGauges publishes every ContextStats field plus the live
// resource levels into the engine's metric registry. GaugeFuncs are
// evaluated only at snapshot time, so the hot path pays nothing.
func (c *Context) registerGauges() {
	reg, s := c.tel.Reg, &c.Stats
	for _, g := range []struct {
		name string
		fn   func() int64
	}{
		{"polls", func() int64 { return s.Polls }},
		{"slow_polls", func() int64 { return s.SlowPolls }},
		{"event_wakes", func() int64 { return s.EventWakes }},
		{"dispatched", func() int64 { return s.Dispatched }},
		{"channels_opened", func() int64 { return s.ChannelsOpened }},
		{"channels_closed", func() int64 { return s.ChannelsClosed }},
		{"channels_broken", func() int64 { return s.ChannelsBroken }},
		{"keepalive_probes", func() int64 { return s.KeepaliveProbes }},
		{"keepalive_fails", func() int64 { return s.KeepaliveFails }},
		{"nops_sent", func() int64 { return s.NopsSent }},
		{"acks_sent", func() int64 { return s.AcksSent }},
		{"req_timeouts", func() int64 { return s.ReqTimeouts }},
		{"req_retries", func() int64 { return s.ReqRetries }},
		{"mock_switches", func() int64 { return s.MockSwitches }},
		{"degraded", func() int64 { return s.Degraded }},
		{"recover_attempts", func() int64 { return s.RecoverAttempts }},
		{"recoveries", func() int64 { return s.Recoveries }},
		{"failbacks", func() int64 { return s.Failbacks }},
		{"path_rehashes", func() int64 { return s.PathRehashes }},
		{"path_escalations", func() int64 { return s.PathEscalations }},
		{"path_hints", func() int64 { return s.PathHints }},
		{"path_hints_recv", func() int64 { return s.PathHintsRecv }},
		{"ver_mismatches", func() int64 { return s.VerMismatches }},
		{"drain_refusals", func() int64 { return s.DrainRefusals }},
		{"rehydrated", func() int64 { return s.Rehydrated }},
		{"drain_state", func() int64 { return int64(c.drain) }},
		{"channels", func() int64 { return int64(len(c.channels) + len(c.chanByCID)) }},
		{"mux_qps", func() int64 { return int64(len(c.muxQPs)) }},
		{"agg_channels", func() int64 { return int64(c.aggChannels) }},
		{"mem_occupied", func() int64 { return c.Mem.OccupiedBytes() }},
		{"mem_inuse", func() int64 { return c.Mem.InUseBytes }},
		{"mem_pool_inuse", func() int64 { return c.Mem.PoolInUseBytes }},
		{"mem_evictions", func() int64 { return c.Mem.Evictions }},
		{"tenant_unknown", func() int64 { return c.tenantUnknown }},
		{"qp_cache", func() int64 { return int64(c.QPs.Len()) }},
		{"slow_ops", func() int64 { return c.trace.SlowOps }},
	} {
		reg.GaugeFunc(c.track+"."+g.name, g.fn)
	}
}

// Telemetry returns the engine-keyed telemetry set this context reports
// into (shared with the fabric and every NIC on the same engine).
func (c *Context) Telemetry() *telemetry.Set { return c.tel }

// Node returns this context's fabric node id.
func (c *Context) Node() fabric.NodeID { return c.host.ID }

// Engine exposes the simulation engine.
func (c *Context) Engine() *sim.Engine { return c.eng }

// Config returns a copy of the current configuration.
func (c *Context) Config() Config { return c.cfg }

// NumChannels reports live channels — exclusive-QP channels plus every
// mux-plane channel (attached or still a lazy descriptor).
func (c *Context) NumChannels() int { return len(c.channels) + len(c.chanByCID) }

// Channels returns a snapshot of live channels (XR-Stat).
func (c *Context) Channels() []*Channel {
	out := make([]*Channel, 0, len(c.channels)+len(c.chanByCID))
	for _, ch := range c.channels {
		out = append(out, ch)
	}
	for _, ch := range c.chanByCID {
		out = append(out, ch)
	}
	return out
}

// LocalClock is the node's wall clock including configured skew.
func (c *Context) LocalClock() sim.Time { return c.eng.Now().Add(c.clockSkew) }

func (c *Context) nextWRID() uint64  { c.wrSeq++; return c.wrSeq }
func (c *Context) nextMsgID() uint64 { c.msgSeq++; return c.msgSeq }

func (c *Context) logf(format string, args ...any) {
	c.logbuf = append(c.logbuf, LogEntry{At: c.eng.Now(), Text: fmt.Sprintf(format, args...)})
}

// Log returns the accumulated self-adaptive log.
func (c *Context) Log() []LogEntry { return c.logbuf }

// FlagLog returns the history of online configuration changes.
func (c *Context) FlagLog() []flagChange { return c.flagLog }

// --- Table I: event-fd surface ---------------------------------------------

// GetEventFD returns the pollable descriptor (xrdma_get_event_fd). The
// model returns a stable synthetic fd; select/poll/epoll integration is
// the hybrid poller itself.
func (c *Context) GetEventFD() int { return c.eventFD }

// ProcessEvent drains pending completions once (xrdma_process_event) —
// what an application calls after its own epoll wakes it on the event fd.
func (c *Context) ProcessEvent() int { return c.pollOnce() }

// Polling polls the context once (xrdma_polling); returns the number of
// completions processed.
func (c *Context) Polling() int { return c.pollOnce() }

// RegMem registers application memory (xrdma_reg_mem).
func (c *Context) RegMem(size int, done func(*rnic.MR)) {
	c.pd.RegMR(size, c.cfg.MemMode, done)
}

// DeregMem releases application memory (xrdma_dereg_mem).
func (c *Context) DeregMem(mr *rnic.MR) { c.pd.DeregMR(mr) }

// --- polling ----------------------------------------------------------------

func (c *Context) startPolling() {
	c.started = true
	c.lastPoll = c.eng.Now()
	c.schedulePoll(c.cfg.PollInterval)
}

func (c *Context) schedulePoll(d sim.Duration) {
	if c.pollEv.Pending() {
		return
	}
	c.pollEv = c.eng.After(d, c.pollTick)
}

// spinDetect is how quickly a busy-polling thread notices a fresh CQE.
const spinDetect = 100 * sim.Nanosecond

// wake is the comp-channel callback. In event mode it models the epoll
// wake latency; in polling mode the spinning thread notices new
// completions after only a spin-detect delay, so the pending poll tick is
// pulled forward.
func (c *Context) wake() {
	if c.eventMode {
		if c.wakePending {
			return
		}
		c.wakePending = true
		c.Stats.EventWakes++
		c.eng.After(2*sim.Microsecond, func() {
			c.wakePending = false
			c.eventMode = false
			c.idlePolls = 0
			c.schedulePoll(0)
		})
		return
	}
	soon := c.eng.Now().Add(spinDetect)
	if c.pollEv.Pending() {
		if c.pollEv.At() <= soon {
			return
		}
		c.eng.Cancel(c.pollEv)
	}
	c.pollEv = c.eng.After(spinDetect, c.pollTick)
}

func (c *Context) pollTick() {
	if !c.started {
		return
	}
	// Application work can hog the run-to-complete thread; the poller
	// cannot run before it finishes (this is how slow-poll incidents
	// happen, §VI-A method II).
	if c.busyUntil > c.eng.Now() {
		c.eng.At(c.busyUntil, c.pollTick)
		return
	}
	n := c.pollOnce()
	if n == 0 {
		c.idlePolls++
		if c.idlePolls >= 64 {
			// Hybrid polling: long idle → event mode (epoll).
			c.eventMode = true
			return
		}
	} else {
		c.idlePolls = 0
	}
	c.schedulePoll(c.cfg.PollInterval)
}

// pollOnce drains both CQs and dispatches completions, charging the
// middleware's per-message software cost.
func (c *Context) pollOnce() int {
	now := c.eng.Now()
	gap := now.Sub(c.lastPoll)
	if gap > c.cfg.PollingWarnCycle && c.Stats.Polls > 0 {
		c.Stats.SlowPolls++
		c.tel.Flight.Record(now, telemetry.CatSlowPoll, int32(c.Node()), 0, int64(gap), 0)
		c.tel.Trace.Instant("slow.poll", c.track, now, int64(gap))
		c.logf("slow poll: %v gap (threshold %v)", gap, c.cfg.PollingWarnCycle)
	}
	c.lastPoll = now
	c.Stats.Polls++

	c.scqeBuf = c.sendCQ.PollAppend(c.scqeBuf[:0], 128)
	c.rcqeBuf = c.recvCQ.PollAppend(c.rcqeBuf[:0], 128)
	scqes, rcqes := c.scqeBuf, c.rcqeBuf
	n := len(scqes) + len(rcqes)
	if n == 0 {
		return 0
	}
	c.Stats.Dispatched += int64(n)
	t := now.Add(c.cfg.PollCost)
	for _, cqe := range scqes {
		cqe := cqe
		t = t.Add(c.cfg.PerMsgCost)
		c.eng.At(t, func() { c.dispatchSend(cqe) })
	}
	for _, cqe := range rcqes {
		cqe := cqe
		cost := c.cfg.PerMsgCost
		if c.cfg.ReqRspMode {
			cost += c.cfg.TraceCost
		}
		t = t.Add(cost)
		c.eng.At(t, func() { c.dispatchRecv(cqe) })
	}
	c.busyUntil = t
	return n
}

func (c *Context) dispatchSend(cqe rnic.CQE) {
	if cb, ok := c.wrCBs[cqe.WRID]; ok {
		delete(c.wrCBs, cqe.WRID)
		cb(cqe)
		return
	}
	// Completion for an unknown WR: a flushed duplicate after error
	// handling already ran. Ignore.
}

func (c *Context) dispatchRecv(cqe rnic.CQE) {
	ch, ok := c.channels[cqe.QPN]
	if !ok {
		if mx, mok := c.muxByQPN[cqe.QPN]; mok {
			mx.handleRecv(cqe)
			return
		}
		// Channel already torn down; recycle the SRQ buffer if any.
		if c.srq != nil {
			if buf, ok := c.srqBufs[cqe.WRID]; ok {
				delete(c.srqBufs, cqe.WRID)
				c.Mem.Free(buf)
				c.fillSRQ()
			}
		}
		return
	}
	if cqe.Status != rnic.StatusOK {
		ch.fail(fmt.Errorf("xrdma: recv completion error: %v", cqe.Status))
		return
	}
	if cqe.Op == rnic.OpWriteImm {
		// One-sided WRITE+imm: the payload was DMA'd straight into the
		// target window, so the receive buffer holds no wire header.
		ch.handleWriteImmCQE(cqe)
		return
	}
	ch.handleInbound(cqe)
}

// InjectWork simulates the application occupying the thread for d —
// used by jitter experiments to create slow-poll incidents.
func (c *Context) InjectWork(d sim.Duration) {
	now := c.eng.Now()
	if c.busyUntil < now {
		c.busyUntil = now
	}
	c.busyUntil = c.busyUntil.Add(d)
}

// --- timers -----------------------------------------------------------------

func (c *Context) startTimers() {
	c.armKeepaliveScan()
	c.armDeadlockScan()
	c.armHousekeeping()
}

func (c *Context) armKeepaliveScan() {
	period := c.cfg.KeepaliveInterval / 2
	if period <= 0 {
		period = 5 * sim.Millisecond
	}
	c.eng.AfterBg(period, func() {
		if !c.started {
			return
		}
		c.keepaliveScan()
		c.armKeepaliveScan()
	})
}

func (c *Context) armDeadlockScan() {
	c.eng.AfterBg(c.cfg.DeadlockScan, func() {
		if !c.started {
			return
		}
		for _, ch := range c.channels {
			ch.deadlockCheck()
		}
		for _, mx := range c.muxQPs {
			for _, ch := range mx.channels() {
				ch.deadlockCheck()
			}
		}
		c.armDeadlockScan()
	})
}

func (c *Context) armHousekeeping() {
	period := c.cfg.StatsInterval
	if period <= 0 {
		period = 10 * sim.Millisecond
	}
	c.eng.AfterBg(period, func() {
		if !c.started {
			return
		}
		c.Mem.shrink()
		c.timeoutScan()
		c.pathScan()
		if c.monitor != nil {
			c.monitor.sample(c)
		}
		c.armHousekeeping()
	})
}

func (c *Context) timeoutScan() {
	if c.cfg.RequestTimeout <= 0 {
		return
	}
	deadline := c.eng.Now().Add(-c.cfg.RequestTimeout)
	for _, ch := range c.sortedChannels() {
		ch.expireRequests(deadline)
	}
}

// sortedChannels snapshots the channel set in ascending QPN order. Every
// housekeeping scan that makes order-dependent decisions (retry-token
// spending, RNG draws, backoff scheduling) must walk channels through
// this, never the map — map iteration order is randomized and would leak
// into the deterministic digests.
func (c *Context) sortedChannels() []*Channel {
	if len(c.channels) == 0 && len(c.chanByCID) == 0 {
		return nil
	}
	qpns := make([]int, 0, len(c.channels))
	for q := range c.channels {
		qpns = append(qpns, int(q))
	}
	sort.Ints(qpns)
	chs := make([]*Channel, 0, len(qpns)+len(c.chanByCID))
	for _, q := range qpns {
		if ch := c.channels[uint32(q)]; ch != nil {
			chs = append(chs, ch)
		}
	}
	// Mux-plane channels follow in ascending-cid order: cids are handed out
	// monotonically, so each shared QP's creation-order cid slice is already
	// sorted and the concatenation across QPs only needs one pass.
	if len(c.chanByCID) > 0 {
		cids := make([]int, 0, len(c.chanByCID))
		for id := range c.chanByCID {
			cids = append(cids, int(id))
		}
		sort.Ints(cids)
		for _, id := range cids {
			if ch := c.chanByCID[uint32(id)]; ch != nil {
				chs = append(chs, ch)
			}
		}
	}
	return chs
}

func (c *Context) keepaliveScan() {
	if c.cfg.KeepaliveInterval <= 0 {
		return
	}
	now := c.eng.Now()
	for _, ch := range c.channels {
		ch.keepaliveCheck(now)
	}
	// Shared QPs probe once per QP, not once per channel: liveness is a
	// property of the transport underneath, and O(QPs) probes is the point
	// of multiplexing.
	for _, mx := range c.muxQPs {
		mx.keepalive(now)
	}
}

// Close tears down the context: all channels close, timers stop.
func (c *Context) Close() {
	for _, ch := range c.Channels() {
		ch.Close()
	}
	c.started = false
}

// OnNICRestart rebuilds memory-dependent state after the local NIC came
// back from a crash with its registered memory gone (a machine reboot in
// the chaos scenarios): the memory cache drops its dead regions and every
// channel is failed so the health machinery re-establishes it on fresh
// QPs and MRs. SRQ mode is not rebuilt — the chaos drills run per-channel
// receive queues.
func (c *Context) OnNICRestart() {
	c.Mem.Reset()
	for _, ch := range c.Channels() {
		ch.fail(ErrNICRestart)
	}
}

// --- SRQ support -------------------------------------------------------------

// ensureSRQ performs the deferred first fill. Called wherever a QP is
// created with the shared queue attached; until then the context holds an
// empty SRQ and no receive buffers.
func (c *Context) ensureSRQ() {
	if c.srq == nil || c.srqPrimed {
		return
	}
	c.srqPrimed = true
	c.fillSRQ()
}

// fillSRQ keeps the shared receive queue topped up (§VII-F). Buffers come
// from the memory cache like per-channel receives.
func (c *Context) fillSRQ() {
	size := c.recvBufSize()
	for c.srq.Len() < c.cfg.SRQSize {
		buf, ok := c.Mem.AllocNow(size)
		if !ok {
			// Grow asynchronously, then continue filling.
			c.Mem.Alloc(size, func(b Buffer, err error) {
				if err != nil {
					return
				}
				id := c.nextWRID()
				c.srqBufs[id] = b
				c.srq.Post(rnic.RecvWR{ID: id, Addr: b.Addr, Len: b.Len})
				c.fillSRQ()
			})
			return
		}
		id := c.nextWRID()
		c.srqBufs[id] = buf
		if err := c.srq.Post(rnic.RecvWR{ID: id, Addr: buf.Addr, Len: buf.Len}); err != nil {
			c.srqBufs[id] = Buffer{}
			delete(c.srqBufs, id)
			c.Mem.Free(buf)
			return
		}
	}
}

// recycleSRQ reposts one consumed SRQ buffer under a fresh WR id. Shared-QP
// receives and per-channel SRQ reposts both land here.
func (c *Context) recycleSRQ(wrID uint64) {
	buf, ok := c.srqBufs[wrID]
	if !ok {
		return
	}
	delete(c.srqBufs, wrID)
	id := c.nextWRID()
	c.srqBufs[id] = buf
	if err := c.srq.Post(rnic.RecvWR{ID: id, Addr: buf.Addr, Len: buf.Len}); err != nil {
		delete(c.srqBufs, id)
		c.Mem.Free(buf)
	}
}

func (c *Context) recvBufSize() int {
	n := hdrSize + traceExtSize + blameExtSize + c.cfg.SmallMsgSize
	if len(c.cfg.Tenants) > 0 {
		// Labelled data frames carry the tenant extension; zero-tenant
		// contexts keep the legacy size so their allocation pattern (and
		// golden digests) stay byte-identical.
		n += tenantExtSize
	}
	return n
}

// --- filter sync -------------------------------------------------------------

// syncFilter installs/updates the NIC fault-injection hook from the
// online filter flags (§VI-C "Emulate Fault").
func (c *Context) syncFilter() {
	if c.cfg.FilterDropRate <= 0 && c.cfg.FilterDelay <= 0 {
		c.vctx.NIC.FaultHook = nil
		return
	}
	drop := c.cfg.FilterDropRate
	delay := c.cfg.FilterDelay
	c.vctx.NIC.FaultHook = func(p *fabric.Packet) (bool, sim.Duration) {
		if p.Class == fabric.ClassCtrl {
			return false, 0 // keep hardware acks/CNPs intact
		}
		if drop > 0 && c.rng.Float64() < drop {
			c.tel.Flight.Record(c.eng.Now(), telemetry.CatFilterDrop, int32(c.Node()), 0, int64(p.Size), 0)
			return true, 0
		}
		return false, delay
	}
}

package xrdma

import (
	"encoding/binary"
	"fmt"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/tcpnet"
	"xrdma/internal/telemetry"
)

// Mock (§VI-C): when the RDMA path collapses — heavy anomaly, protocol
// stack failure, broken QP — a channel can temporarily switch to the TCP
// network, keeping the application's message flow alive at degraded
// performance. The side with the lower node ID dials the peer's mock
// port; the other side waits for the inbound connection and matches it to
// the broken channel by QPN.
//
// The mock transport carries the same wire headers (Seq/Ack included) as
// the RDMA path, so the seq-ack window spans both transports: a cutover
// in either direction replays the unacked tail and the receiver's window
// dedups whatever already made it across — exactly-once, both directions.

type mockState struct {
	conn    *tcpnet.Conn
	ready   bool
	waiting bool
}

const mockHelloMagic = 0x584D // "XM"

func mockHello(targetQPN uint32) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint16(b, mockHelloMagic)
	binary.LittleEndian.PutUint32(b[2:], targetQPN)
	return b
}

func parseMockHello(b []byte) (uint32, bool) {
	if len(b) < 8 || binary.LittleEndian.Uint16(b) != mockHelloMagic {
		return 0, false
	}
	return binary.LittleEndian.Uint32(b[2:]), true
}

// listenMock accepts fallback connections for broken channels. A hello
// can arrive before this side has noticed its own RDMA failure (the two
// keepalive clocks are independent), so unmatched connections are parked
// briefly instead of rejected.
func (c *Context) listenMock() {
	c.tcp.Listen(c.mockPort, func(conn *tcpnet.Conn) {
		conn.OnMessage = func(m tcpnet.Message) {
			qpn, ok := parseMockHello(m.Data)
			if !ok {
				// A hello this build doesn't recognize — most likely a
				// foreign-release peer. Counted and flight-logged (the old
				// silent close left the dialer retrying blind).
				c.noteVerMismatch(conn.Remote, 0, 0, 0)
				conn.Close()
				return
			}
			// Find the waiting channel that owned this QPN.
			for _, ch := range c.mockWaiters {
				if ch.mockQPN == qpn {
					ch.attachMock(conn)
					return
				}
			}
			// The peer switched but this side's channel is still live or
			// degraded (failure detection is not synchronized): adopt the
			// switch. The recovery index resolves QPNs from adoptions ago.
			ch := c.channels[qpn]
			if ch == nil {
				ch = c.recoverIdx[qpn]
			}
			if ch != nil && !ch.closed && c.cfg.MockEnabled {
				if ch.mock != nil {
					// Redial of an already-mocked channel (the old conn
					// died on the peer's side first).
					if old := ch.mock.conn; old != nil && old != conn {
						old.OnClose = nil
						old.Close()
						ch.mock.conn = nil
						ch.mock.ready = false
					}
					ch.attachMock(conn)
					return
				}
				ch.enterMockMode(fmt.Errorf("peer-initiated mock switch"))
				ch.attachMock(conn)
				return
			}
			c.parkMockConn(qpn, conn)
		}
	})
}

type parkedMock struct {
	qpn  uint32
	conn *tcpnet.Conn
	// buf holds frames the dialer pumped before this side claimed the
	// conn: the dialer attaches (and replays its unacked tail) as soon as
	// the TCP handshake completes, which can be a full failure-detection
	// gap before the local channel degrades. Dropping those frames would
	// lose them for good — the mock transport is reliable, so nothing
	// retransmits them short of another cutover.
	buf [][]byte
}

// parkMockConn holds an unmatched inbound mock connection until the local
// channel notices its failure and claims it. A parked conn that dies
// (peer gave up) leaves the list immediately, and the grace timer closes
// whatever is still unclaimed — parked conns never outlive the grace.
func (c *Context) parkMockConn(qpn uint32, conn *tcpnet.Conn) {
	p := &parkedMock{qpn: qpn, conn: conn}
	c.mockParked = append(c.mockParked, p)
	conn.OnMessage = func(m tcpnet.Message) {
		b := make([]byte, len(m.Data))
		copy(b, m.Data)
		p.buf = append(p.buf, b)
	}
	conn.OnClose = func(error) {
		for i, q := range c.mockParked {
			if q == p {
				c.mockParked = append(c.mockParked[:i], c.mockParked[i+1:]...)
				return
			}
		}
	}
	grace := c.mockGrace()
	c.eng.AfterBg(grace, func() {
		for i, q := range c.mockParked {
			if q == p {
				c.mockParked = append(c.mockParked[:i], c.mockParked[i+1:]...)
				conn.OnClose = nil
				conn.Close()
				return
			}
		}
	})
}

// claimParkedMock is called when a channel enters mock-waiting state: an
// early-arriving peer connection may already be parked. Dead parked conns
// (closed between the OnClose callback and now) are discarded.
func (c *Context) claimParkedMock(qpn uint32) *parkedMock {
	for i := 0; i < len(c.mockParked); i++ {
		p := c.mockParked[i]
		if p.qpn != qpn {
			continue
		}
		c.mockParked = append(c.mockParked[:i], c.mockParked[i+1:]...)
		p.conn.OnClose = nil
		if p.conn.Open() {
			return p
		}
		i--
	}
	return nil
}

// enterMockMode releases a channel's RDMA resources; the send queue and
// the unacked window tail stay with the channel and replay over the mock
// transport once it attaches.
func (ch *Channel) enterMockMode(cause error) {
	c := ch.ctx
	c.Stats.MockSwitches++
	now := c.eng.Now()
	c.tel.Flight.Trip(now, telemetry.CatMockSwitch, int32(c.Node()), ch.qp.QPN)
	c.tel.Trace.Instant("mock.switch", c.track, now, int64(ch.Peer))
	c.logf("channel qpn=%d peer=%d switching to TCP mock (%v)", ch.qp.QPN, ch.Peer, cause)

	ch.mock = &mockState{}
	ch.mockQPN = ch.qp.QPN
	ch.setHealth(HealthFallback)
	ch.recEpoch++ // strand any in-flight recovery dial
	ch.resumeOnRx = false

	// Staged rendezvous payloads are RDMA-only; the mock transport sends
	// every message inline from ps.data, so release them — both the
	// unsent queue and the transmitted-but-unacked tail a cutover will
	// replay.
	for _, ps := range ch.sendQ {
		if ps.staged.Valid() {
			c.Mem.Free(ps.staged)
			ps.staged = Buffer{}
		}
		ps.ready = false
		ps.staging = false
	}
	for _, ps := range ch.sent {
		if ps.staged.Valid() {
			c.Mem.Free(ps.staged)
			ps.staged = Buffer{}
		}
		ps.ready = false
		ps.staging = false
	}

	// Release RDMA resources: the QP recycles through the cache, the
	// receive buffers return to the memory cache. The XR-Stat row goes
	// with them — the recycled QPN may soon host a new channel.
	ch.unregisterGauges()
	delete(c.channels, ch.qp.QPN)
	for id, buf := range ch.recvBufs {
		delete(ch.recvBufs, id)
		c.Mem.Free(buf)
	}
	c.eng.Cancel(ch.ackEv)
	ch.ackEv = sim.Event{}
	ch.kaProbing = false
	ch.nopInFlight = false
	ch.stallFlag = false
	c.QPs.Put(ch.qp)
}

// switchToMock degrades a failing channel onto TCP instead of killing it.
func (ch *Channel) switchToMock(cause error) {
	ch.enterMockMode(cause)
	ch.connectMock(cause)
}

// connectMock runs the mock rendezvous for a channel already in mock
// mode: the lower node ID dials, the higher one waits (claiming an
// early-parked conn if the dialer beat it here).
func (ch *Channel) connectMock(cause error) {
	c := ch.ctx
	if c.Node() < ch.Peer {
		ch.mockDial(cause, 0)
		return
	}
	if p := c.claimParkedMock(ch.mockQPN); p != nil {
		ch.attachMock(p.conn)
		// Deliver frames the dialer sent while the conn sat parked, in
		// arrival order; the window dedups anything replayed again later.
		for _, b := range p.buf {
			if ch.mock == nil || ch.mock.conn != p.conn {
				break
			}
			ch.mockInbound(tcpnet.Message{Data: b, Len: len(b)})
		}
		return
	}
	ch.mock.waiting = true
	c.mockWaiters = append(c.mockWaiters, ch)
	// Give the dialer a bounded window; a vanished peer must not leak a
	// parked channel. Failure detection on the two sides can differ by a
	// full RC retry horizon, so the window must cover at least two.
	wait := c.mockGrace()
	c.eng.AfterBg(wait, func() {
		if !ch.closed && ch.mock != nil && ch.mock.waiting {
			ch.teardown(fmt.Errorf("xrdma: mock fallback never connected (after %v)", cause))
		}
	})
}

// mockDial is the dialer side of the mock rendezvous, retried with
// exponential backoff: a single failed dial (the peer's listener mid-
// restart, a dropped SYN) used to be terminal, turning transient races
// into hard teardowns.
func (ch *Channel) mockDial(cause error, attempt int) {
	c := ch.ctx
	c.tcp.Dial(ch.Peer, c.peerMockPort(ch.Peer), func(conn *tcpnet.Conn, err error) {
		if ch.closed || ch.mock == nil || ch.mock.ready {
			if err == nil {
				conn.Close()
			}
			return
		}
		if err == nil {
			conn.Send(mockHello(ch.peerQPN), 0, nil)
			ch.attachMock(conn)
			return
		}
		retries := c.cfg.MockDialRetries
		if retries < 1 {
			retries = 1
		}
		if attempt+1 >= retries {
			ch.teardown(fmt.Errorf("xrdma: mock dial failed after %d attempts: %v (after %v)", attempt+1, err, cause))
			return
		}
		backoff := c.cfg.MockDialBackoff << uint(attempt)
		if backoff <= 0 {
			backoff = sim.Millisecond
		}
		c.eng.AfterBg(backoff, func() {
			if ch.closed || ch.mock == nil || ch.mock.ready {
				return
			}
			ch.mockDial(cause, attempt+1)
		})
	})
}

// mockGrace bounds how long one side waits for the other to notice the
// failure: two RC retry horizons, or the keepalive timeout if larger.
func (c *Context) mockGrace() sim.Duration {
	nic := &c.vctx.NIC.Cfg
	g := 2 * sim.Duration(nic.RetryLimit+2) * nic.RetransTimeout
	if 2*c.cfg.KeepaliveTimeout > g {
		g = 2 * c.cfg.KeepaliveTimeout
	}
	return g
}

// peerMockPort assumes a fleet-wide mock port convention (same port
// everywhere), which is how production config rolls out.
func (c *Context) peerMockPort(_ fabric.NodeID) int { return c.mockPort }

func (ch *Channel) attachMock(conn *tcpnet.Conn) {
	c := ch.ctx
	if ch.mock == nil {
		ch.mock = &mockState{}
	}
	// Remove from waiters if present.
	for i, w := range c.mockWaiters {
		if w == ch {
			c.mockWaiters = append(c.mockWaiters[:i], c.mockWaiters[i+1:]...)
			break
		}
	}
	ch.mock.conn = conn
	ch.mock.ready = true
	ch.mock.waiting = false
	conn.OnMessage = func(m tcpnet.Message) { ch.mockInbound(m) }
	conn.OnClose = func(err error) {
		if ch.closed || ch.mock == nil || ch.mock.conn != conn {
			return
		}
		ch.mock.conn = nil
		ch.mock.ready = false
		if ch.health == HealthRecovering {
			// A failback probe is in flight; its completion decides
			// whether to adopt RDMA or rebuild the mock conn.
			return
		}
		if c.recoverPort > 0 {
			// The fallback plane hiccupped but the channel can survive:
			// re-run the mock rendezvous.
			ch.connectMock(fmt.Errorf("xrdma: mock transport closed: %v", err))
			return
		}
		ch.teardown(fmt.Errorf("xrdma: mock transport closed: %v", err))
	}
	ch.setHealth(HealthFallback)
	// Replay the unacked window tail (the receiver's window dedups), then
	// drain whatever queued while disconnected.
	ch.requeueUnacked()
	ch.armFailback()
	ch.pump()
}

func (ch *Channel) mockInbound(m tcpnet.Message) {
	h, hdrLen, err := decodeHdr(m.Data)
	if err != nil {
		return
	}
	ch.lastComm = ch.ctx.eng.Now()
	var pay []byte
	if size := int(h.Size); size > 0 && m.Data != nil && len(m.Data) >= hdrLen+size {
		pay = m.Data[hdrLen : hdrLen+size]
	}
	ch.handleWire(&h, pay, true, nil)
}

// Mocked reports whether the channel is running over the TCP fallback.
func (ch *Channel) Mocked() bool { return ch.mock != nil }

// ForceMock switches a healthy channel to TCP (the manual tuning-system
// toggle). Requires MockEnabled and a TCP stack.
func (ch *Channel) ForceMock() error {
	if ch.ctx.tcp == nil || ch.ctx.mockPort == 0 {
		return fmt.Errorf("xrdma: mock plane not configured")
	}
	if ch.mock != nil || ch.closed {
		return nil
	}
	ch.switchToMock(fmt.Errorf("manual switch"))
	return nil
}

func (ch *Channel) closeMock() {
	if ch.mock != nil && ch.mock.conn != nil {
		conn := ch.mock.conn
		ch.mock.conn = nil
		conn.OnClose = nil
		conn.Close()
	}
}

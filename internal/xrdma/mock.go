package xrdma

import (
	"encoding/binary"
	"fmt"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/tcpnet"
	"xrdma/internal/telemetry"
)

// Mock (§VI-C): when the RDMA path collapses — heavy anomaly, protocol
// stack failure, broken QP — a channel can temporarily switch to the TCP
// network, keeping the application's message flow alive at degraded
// performance. The side with the lower node ID dials the peer's mock
// port; the other side waits for the inbound connection and matches it to
// the broken channel by QPN.

type mockState struct {
	conn    *tcpnet.Conn
	ready   bool
	waiting bool
	q       []mockQueued
}

type mockQueued struct {
	kind  msgKind
	data  []byte
	size  int
	msgID uint64
}

const mockHelloMagic = 0x584D // "XM"

func mockHello(targetQPN uint32) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint16(b, mockHelloMagic)
	binary.LittleEndian.PutUint32(b[2:], targetQPN)
	return b
}

func parseMockHello(b []byte) (uint32, bool) {
	if len(b) < 8 || binary.LittleEndian.Uint16(b) != mockHelloMagic {
		return 0, false
	}
	return binary.LittleEndian.Uint32(b[2:]), true
}

// listenMock accepts fallback connections for broken channels. A hello
// can arrive before this side has noticed its own RDMA failure (the two
// keepalive clocks are independent), so unmatched connections are parked
// briefly instead of rejected.
func (c *Context) listenMock() {
	c.tcp.Listen(c.mockPort, func(conn *tcpnet.Conn) {
		conn.OnMessage = func(m tcpnet.Message) {
			qpn, ok := parseMockHello(m.Data)
			if !ok {
				conn.Close()
				return
			}
			// Find the waiting channel that owned this QPN.
			for _, ch := range c.mockWaiters {
				if ch.mockQPN == qpn {
					ch.attachMock(conn)
					return
				}
			}
			// The peer switched but this side's channel is still live
			// (failure detection is not synchronized): adopt the switch.
			if ch, live := c.channels[qpn]; live && c.cfg.MockEnabled {
				ch.enterMockMode(fmt.Errorf("peer-initiated mock switch"))
				ch.attachMock(conn)
				return
			}
			c.parkMockConn(qpn, conn)
		}
	})
}

type parkedMock struct {
	qpn  uint32
	conn *tcpnet.Conn
}

func (c *Context) parkMockConn(qpn uint32, conn *tcpnet.Conn) {
	c.mockParked = append(c.mockParked, parkedMock{qpn: qpn, conn: conn})
	grace := c.mockGrace()
	c.eng.AfterBg(grace, func() {
		for i, p := range c.mockParked {
			if p.conn == conn {
				c.mockParked = append(c.mockParked[:i], c.mockParked[i+1:]...)
				conn.Close()
				return
			}
		}
	})
}

// claimParkedMock is called when a channel enters mock-waiting state: an
// early-arriving peer connection may already be parked.
func (c *Context) claimParkedMock(qpn uint32) *tcpnet.Conn {
	for i, p := range c.mockParked {
		if p.qpn == qpn {
			c.mockParked = append(c.mockParked[:i], c.mockParked[i+1:]...)
			return p.conn
		}
	}
	return nil
}

// enterMockMode releases a channel's RDMA resources and migrates its
// unsent queue to the (not yet connected) mock transport.
func (ch *Channel) enterMockMode(cause error) {
	c := ch.ctx
	c.Stats.MockSwitches++
	now := c.eng.Now()
	c.tel.Flight.Trip(now, telemetry.CatMockSwitch, int32(c.Node()), ch.qp.QPN)
	c.tel.Trace.Instant("mock.switch", c.track, now, int64(ch.Peer))
	c.logf("channel qpn=%d peer=%d switching to TCP mock (%v)", ch.qp.QPN, ch.Peer, cause)

	ch.mock = &mockState{}
	ch.mockQPN = ch.qp.QPN

	// Unsent queue migrates to the mock transport.
	for _, ps := range ch.sendQ {
		kind := ps.kind
		ch.mock.q = append(ch.mock.q, mockQueued{kind: kind, data: ps.data, size: ps.size, msgID: ps.msgID})
		if ps.staged.Valid() {
			c.Mem.Free(ps.staged)
		}
	}
	ch.sendQ = nil

	// Release RDMA resources: the QP recycles through the cache, the
	// receive buffers return to the memory cache. The XR-Stat row goes
	// with them — the recycled QPN may soon host a new channel.
	ch.unregisterGauges()
	delete(c.channels, ch.qp.QPN)
	for id, buf := range ch.recvBufs {
		delete(ch.recvBufs, id)
		c.Mem.Free(buf)
	}
	c.QPs.Put(ch.qp)
}

// switchToMock degrades a failing channel onto TCP instead of killing it.
func (ch *Channel) switchToMock(cause error) {
	c := ch.ctx
	remoteQPN := ch.qp.RemoteQPN
	ch.enterMockMode(cause)

	if c.Node() < ch.Peer {
		// Dialer side.
		c.tcp.Dial(ch.Peer, c.peerMockPort(ch.Peer), func(conn *tcpnet.Conn, err error) {
			if err != nil || ch.closed {
				ch.teardown(fmt.Errorf("xrdma: mock dial failed: %v (after %v)", err, cause))
				return
			}
			conn.Send(mockHello(remoteQPN), 0, nil)
			ch.attachMock(conn)
		})
	} else {
		if conn := c.claimParkedMock(ch.mockQPN); conn != nil {
			ch.attachMock(conn)
			return
		}
		ch.mock.waiting = true
		c.mockWaiters = append(c.mockWaiters, ch)
		// Give the dialer a bounded window; a vanished peer must not
		// leak a parked channel. Failure detection on the two sides can
		// differ by a full RC retry horizon, so the window must cover
		// at least two of them.
		wait := c.mockGrace()
		c.eng.AfterBg(wait, func() {
			if !ch.closed && ch.mock != nil && ch.mock.waiting {
				ch.teardown(fmt.Errorf("xrdma: mock fallback never connected (after %v)", cause))
			}
		})
	}
}

// mockGrace bounds how long one side waits for the other to notice the
// failure: two RC retry horizons, or the keepalive timeout if larger.
func (c *Context) mockGrace() sim.Duration {
	nic := &c.vctx.NIC.Cfg
	g := 2 * sim.Duration(nic.RetryLimit+2) * nic.RetransTimeout
	if 2*c.cfg.KeepaliveTimeout > g {
		g = 2 * c.cfg.KeepaliveTimeout
	}
	return g
}

// peerMockPort assumes a fleet-wide mock port convention (same port
// everywhere), which is how production config rolls out.
func (c *Context) peerMockPort(_ fabric.NodeID) int { return c.mockPort }

func (ch *Channel) attachMock(conn *tcpnet.Conn) {
	c := ch.ctx
	if ch.mock == nil {
		ch.mock = &mockState{}
	}
	// Remove from waiters if present.
	for i, w := range c.mockWaiters {
		if w == ch {
			c.mockWaiters = append(c.mockWaiters[:i], c.mockWaiters[i+1:]...)
			break
		}
	}
	ch.mock.conn = conn
	ch.mock.ready = true
	ch.mock.waiting = false
	conn.OnMessage = func(m tcpnet.Message) { ch.mockInbound(m) }
	conn.OnClose = func(err error) {
		if !ch.closed {
			ch.teardown(fmt.Errorf("xrdma: mock transport closed: %v", err))
		}
	}
	// Flush queued messages.
	q := ch.mock.q
	ch.mock.q = nil
	for _, it := range q {
		ch.mockTransmit(it)
	}
}

// mockSend routes a message over the TCP fallback.
func (ch *Channel) mockSend(kind msgKind, data []byte, size int, msgID uint64) error {
	it := mockQueued{kind: kind, data: data, size: size, msgID: msgID}
	if !ch.mock.ready {
		ch.mock.q = append(ch.mock.q, it)
		return nil
	}
	ch.mockTransmit(it)
	return nil
}

func (ch *Channel) mockTransmit(it mockQueued) {
	h := wireHdr{Kind: it.kind, MsgID: it.msgID, Size: uint32(it.size)}
	hb := h.wireBytes()
	var buf []byte
	wireLen := hb + it.size
	if it.data != nil {
		buf = make([]byte, hb+len(it.data))
		h.encode(buf)
		copy(buf[hb:], it.data)
	} else {
		buf = make([]byte, hb)
		h.encode(buf)
	}
	ch.Counters.MsgsSent++
	ch.Counters.BytesSent += int64(it.size)
	ch.mock.conn.Send(buf, wireLen, nil)
}

func (ch *Channel) mockInbound(m tcpnet.Message) {
	h, hdrLen, err := decodeHdr(m.Data)
	if err != nil {
		return
	}
	size := int(h.Size)
	var pay []byte
	if size > 0 && m.Data != nil && len(m.Data) >= hdrLen+size {
		pay = m.Data[hdrLen : hdrLen+size]
	}
	msg := &Msg{
		Ch: ch, Data: pay, Len: size, IsReq: h.Kind == kindReq,
		MsgID: h.MsgID, RecvAt: ch.ctx.eng.Now(),
	}
	ch.Counters.MsgsRecv++
	ch.Counters.BytesRecv += int64(size)
	if msg.IsReq {
		if ch.onMessage != nil {
			ch.onMessage(msg)
		}
		return
	}
	if rs, ok := ch.pending[h.MsgID]; ok {
		delete(ch.pending, h.MsgID)
		ch.Counters.RespsRecv++
		if rs.cb != nil {
			rs.cb(msg, nil)
		}
	}
}

// Mocked reports whether the channel is running over the TCP fallback.
func (ch *Channel) Mocked() bool { return ch.mock != nil }

// ForceMock switches a healthy channel to TCP (the manual tuning-system
// toggle). Requires MockEnabled and a TCP stack.
func (ch *Channel) ForceMock() error {
	if ch.ctx.tcp == nil || ch.ctx.mockPort == 0 {
		return fmt.Errorf("xrdma: mock plane not configured")
	}
	if ch.mock != nil || ch.closed {
		return nil
	}
	ch.switchToMock(fmt.Errorf("manual switch"))
	return nil
}

func (ch *Channel) closeMock() {
	if ch.mock != nil && ch.mock.conn != nil {
		conn := ch.mock.conn
		ch.mock.conn = nil
		conn.OnClose = nil
		conn.Close()
	}
}

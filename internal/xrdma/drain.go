package xrdma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
	"xrdma/internal/verbs"
)

// Graceful drain and rolling restart (hot-upgrade plane). A production
// middleware is upgraded node by node under live traffic: Drain moves the
// context Serving→Draining→Drained — new establishment is refused loudly
// (ErrDraining), in-flight requests run to completion under a bounded
// deadline, and the surviving protocol state (peer rendezvous keys, the
// seq-ack window floors, the unacked replay tail, tenant bindings, granted
// MR windows, the negotiation verdict) is frozen into a handoff blob. The
// restarted instance — possibly at a bumped protocol version — rehydrates
// the blob and re-establishes each channel through the recovery plane; the
// seq-ack window of Algorithm 1 dedups the replayed tail, so the restart
// is exactly-once in both directions.
//
// Scope: the blob covers classic (exclusive-QP) channels. Mux-plane
// contexts drain and refuse like everyone else, but shared-QP channels are
// not serialized — their flyweight descriptors re-attach lazily on first
// use after the restart. The receiver-side idempotency cache (respCache)
// does not survive either: a deployment that drains under RequestRetries>0
// accepts at-least-once for requests retried across the restart window.

// DrainState is the context's drain lifecycle.
type DrainState uint8

const (
	DrainServing DrainState = iota
	DrainDraining
	DrainDrained
)

func (d DrainState) String() string {
	switch d {
	case DrainDraining:
		return "draining"
	case DrainDrained:
		return "drained"
	default:
		return "serving"
	}
}

// Drain flight-event codes (the B value of CatDrain records).
const (
	drainEvStart     = iota // context entered Draining
	drainEvRefusal          // establishment/attach refused while draining
	drainEvQuiesce          // every channel quiesced inside the deadline
	drainEvForced           // deadline expired; waiters failed, tail frozen
	drainEvHandoff          // handoff blob sealed
	drainEvRehydrate        // one channel restored from a handoff blob
)

// drainRejectReason is the CM reject text a draining listener sends; the
// dialer's mapDialErr recognizes it and surfaces ErrDraining instead of a
// generic rejection.
const drainRejectReason = "draining"

// drainDeadlineDefault bounds the quiesce phase when the config is silent.
const drainDeadlineDefault = 50 * sim.Millisecond

// errRestartHandoff is the recovery cause for rehydrated channels.
var errRestartHandoff = errors.New("xrdma: restart handoff")

// DrainPhase reports where the context is in the drain lifecycle.
func (c *Context) DrainPhase() DrainState { return c.drain }

// refuseDraining rejects one inbound CM establishment on a draining node:
// counted, flight-logged, and named — the dialer sees ErrDraining, not a
// corruption-shaped failure.
func (c *Context) refuseDraining(req *verbs.ConnReq) {
	c.Stats.DrainRefusals++
	now := c.eng.Now()
	c.tel.Flight.Record(now, telemetry.CatDrain, int32(c.Node()), 0, int64(req.From), drainEvRefusal)
	c.tel.Trace.Instant("drain.refuse", c.track, now, int64(req.From))
	req.Reject(drainRejectReason)
}

// mapDialErr translates a peer's drain refusal into ErrDraining on the
// dialing side; every other dial error passes through untouched.
func mapDialErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, verbs.ErrRejected) && strings.Contains(err.Error(), drainRejectReason) {
		return fmt.Errorf("%w: %v", ErrDraining, err)
	}
	return err
}

// Drain begins the graceful shutdown: Serving→Draining now, then Drained
// once every channel quiesces (or the deadline forces the issue), at which
// point cb receives the handoff blob for the restarted instance. Calling
// Drain on a non-Serving context returns ErrDraining.
func (c *Context) Drain(cb func(blob []byte)) error {
	if c.drain != DrainServing {
		return ErrDraining
	}
	now := c.eng.Now()
	dl := c.cfg.DrainDeadline
	if dl <= 0 {
		dl = drainDeadlineDefault
	}
	c.drain = DrainDraining
	c.drainCB = cb
	c.drainStarted = now
	c.drainDeadline = now.Add(dl)
	c.tel.Flight.Record(now, telemetry.CatDrain, int32(c.Node()), 0, int64(c.NumChannels()), drainEvStart)
	c.tel.Trace.Instant("drain.start", c.track, now, int64(c.NumChannels()))
	c.logf("drain: Serving→Draining, %d channels, deadline %v", c.NumChannels(), dl)
	// Flush the attach admission FIFO instead of serving it: queued lazy
	// attaches (including tenant-shed parkees, PR 8) fail with ErrDraining
	// now. attachRelease rotates still-gated heads back to the tail, so
	// leaving them queued on a node that will never lift the gate again
	// would strand their callbacks forever.
	q := c.attachQ
	c.attachQ = nil
	for _, ch := range q {
		if ch.closed || ch.attach != attachQueued {
			continue
		}
		c.Stats.DrainRefusals++
		c.tel.Flight.Record(now, telemetry.CatDrain, int32(c.Node()), 0, int64(ch.cid), drainEvRefusal)
		ch.finishAttach(ErrDraining)
	}
	c.drainScan()
	return nil
}

// drainQuiesced reports whether this channel holds no in-flight work: no
// unacked windowed messages, nothing queued, no response waiters, no
// rendezvous pulls, no emulated one-sided reads, no attach in flight.
func (ch *Channel) drainQuiesced() bool {
	if ch.closed {
		return true
	}
	if ch.attach == attachPending || ch.attach == attachQueued {
		return false
	}
	if ch.tx != nil && ch.tx.inflight() > 0 {
		return false
	}
	return len(ch.sendQ) == 0 && len(ch.pending) == 0 &&
		len(ch.pulls) == 0 && len(ch.osReads) == 0
}

// drainScan polls the quiesce condition until it holds or the deadline
// passes, then seals the handoff blob.
func (c *Context) drainScan() {
	if c.drain != DrainDraining || !c.started {
		return
	}
	now := c.eng.Now()
	all := true
	for _, ch := range c.sortedChannels() {
		if !ch.drainQuiesced() {
			all = false
			break
		}
	}
	if !all && now < c.drainDeadline {
		period := (c.drainDeadline.Sub(c.drainStarted)) / 64
		if period < 10*sim.Microsecond {
			period = 10 * sim.Microsecond
		}
		c.eng.AfterBg(period, c.drainScan)
		return
	}
	if all {
		c.tel.Flight.Record(now, telemetry.CatDrain, int32(c.Node()), 0, int64(now.Sub(c.drainStarted)), drainEvQuiesce)
		c.logf("drain: quiesced after %v", now.Sub(c.drainStarted))
	} else {
		// Deadline forced: response waiters fail loudly now — their
		// requests stay in the frozen tail and replay after the restart
		// (the peer's window dedups any that already landed), so the
		// operations themselves are not lost, only these callers' waits.
		forced := 0
		for _, ch := range c.sortedChannels() {
			forced += ch.failWaiters(ErrDraining)
		}
		c.tel.Flight.Record(now, telemetry.CatDrain, int32(c.Node()), 0, int64(forced), drainEvForced)
		c.logf("drain: deadline forced with %d waiters failed", forced)
	}
	c.drain = DrainDrained
	blob := c.encodeHandoff()
	c.tel.Flight.Record(now, telemetry.CatDrain, int32(c.Node()), 0, int64(len(blob)), drainEvHandoff)
	c.tel.Trace.Instant("drain.handoff", c.track, now, int64(len(blob)))
	c.logf("drain: Draining→Drained, handoff blob %dB", len(blob))
	if cb := c.drainCB; cb != nil {
		c.drainCB = nil
		cb(blob)
	}
}

// failWaiters fails every pending response waiter and emulated one-sided
// read on this channel, in ascending MsgID order (map iteration order must
// not leak into the deterministic digests). Returns how many were failed.
func (ch *Channel) failWaiters(err error) int {
	n := 0
	if len(ch.pending) > 0 {
		ids := make([]uint64, 0, len(ch.pending))
		for id := range ch.pending {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			rs := ch.pending[id]
			if rs == nil {
				continue
			}
			delete(ch.pending, id)
			n++
			if rs.cb != nil {
				rs.cb(nil, err)
			}
		}
	}
	if len(ch.osReads) > 0 {
		ids := make([]uint64, 0, len(ch.osReads))
		for id := range ch.osReads {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			rs := ch.osReads[id]
			if rs == nil {
				continue
			}
			delete(ch.osReads, id)
			n++
			if rs.cb != nil {
				rs.cb(nil, err)
			}
		}
	}
	return n
}

// --- handoff blob ------------------------------------------------------------

const (
	handoffMagic = 0x4858 // "XH"
	handoffVer   = 1

	// Hostile-blob hardening caps: a corrupt or adversarial count field
	// must not drive a multi-gigabyte allocation before the length checks
	// can catch it.
	handoffMaxChans = 1 << 16
	handoffMaxQPNs  = 64
	handoffMaxTail  = 1 << 20
	handoffMaxWins  = 1 << 16
)

var errBadHandoff = errors.New("xrdma: malformed handoff blob")

// handoffChan is one serialized channel: identity, negotiation verdict,
// window floors, the unacked replay tail, and peer-granted MR windows.
type handoffChan struct {
	peer     fabric.NodeID
	qpns     []uint32
	peerQPN  uint32
	peerQPN0 uint32
	negVer   uint8
	caps     uint32
	label    [8]byte
	txFloor  uint64
	rxFloor  uint64
	tail     []handoffMsg
	wins     []RemoteWindow
}

type handoffMsg struct {
	kind   uint8
	oneWay bool
	msgID  uint64
	size   uint32
	data   []byte
}

// encodeHandoff freezes every classic channel's protocol state. The tail
// is the unacked windowed messages (sent but not cumulatively acked) in
// sequence order, followed by queued-but-unsequenced sends — exactly what
// requeueUnacked would replay after a recovery, frozen across the restart
// instead.
func (c *Context) encodeHandoff() []byte {
	var recs []handoffChan
	for _, ch := range c.sortedChannels() {
		if ch.cid != 0 || ch.closed || ch.mock != nil || len(ch.qpns) == 0 {
			continue
		}
		r := handoffChan{
			peer:     ch.Peer,
			qpns:     ch.qpns,
			peerQPN:  ch.peerQPN,
			peerQPN0: ch.peerQPN0,
			negVer:   ch.negVer,
			caps:     ch.peerCaps,
			txFloor:  ch.tx.acked,
			rxFloor:  ch.rx.rta,
		}
		if t := ch.tenant; t != nil {
			r.label = t.label
		}
		for s := ch.tx.acked + 1; s <= ch.tx.seq; s++ {
			ps := ch.sent[s]
			if ps == nil {
				continue
			}
			r.tail = append(r.tail, handoffMsgFrom(ps))
		}
		for _, ps := range ch.sendQ {
			r.tail = append(r.tail, handoffMsgFrom(ps))
		}
		if len(ch.remoteWins) > 0 {
			ids := make([]uint64, 0, len(ch.remoteWins))
			for id := range ch.remoteWins {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				r.wins = append(r.wins, ch.remoteWins[id])
			}
		}
		recs = append(recs, r)
	}

	var b []byte
	u16 := func(v uint16) { b = binary.LittleEndian.AppendUint16(b, v) }
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u16(handoffMagic)
	b = append(b, handoffVer, 0)
	// The MsgID allocator floor: the restarted instance must never reuse a
	// MsgID the old one issued, or the peer's idempotency cache would
	// swallow fresh requests as duplicates.
	u64(c.msgSeq)
	u32(uint32(len(recs)))
	for _, r := range recs {
		u32(uint32(r.peer))
		b = append(b, uint8(len(r.qpns)))
		for _, q := range r.qpns {
			u32(q)
		}
		u32(r.peerQPN)
		u32(r.peerQPN0)
		b = append(b, r.negVer)
		u32(r.caps)
		b = append(b, r.label[:]...)
		u64(r.txFloor)
		u64(r.rxFloor)
		u32(uint32(len(r.tail)))
		for _, m := range r.tail {
			b = append(b, m.kind, boolByte(m.oneWay))
			u64(m.msgID)
			u32(m.size)
			u32(uint32(len(m.data)))
			b = append(b, m.data...)
		}
		u32(uint32(len(r.wins)))
		for _, w := range r.wins {
			u64(w.ID)
			u64(w.Addr)
			u32(w.RKey)
			u32(uint32(w.Len))
		}
	}
	return b
}

func handoffMsgFrom(ps *pendingSend) handoffMsg {
	m := handoffMsg{kind: uint8(ps.kind), oneWay: ps.oneWay, msgID: ps.msgID, size: uint32(ps.size)}
	if ps.data != nil {
		m.data = append([]byte(nil), ps.data...)
	} else if ps.staged.Valid() {
		// The payload only lives in the staging buffer (size-only callers
		// aside); copy it out so the replay can restage it after restart.
		m.data = append([]byte(nil), ps.staged.Bytes()[:ps.size]...)
	}
	return m
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// handoff is a decoded blob: the MsgID allocator floor plus every
// serialized channel.
type handoff struct {
	msgSeq uint64
	chans  []handoffChan
}

// decodeHandoff parses a handoff blob defensively: every length is checked
// before it is trusted, counts are capped, and a blob from a future
// release (unknown blobVer) is an explicit error — the restarted instance
// must never limp along on half-parsed state.
func decodeHandoff(b []byte) (*handoff, error) {
	r := &handoffReader{b: b}
	if r.u16() != handoffMagic {
		return nil, fmt.Errorf("%w: bad magic", errBadHandoff)
	}
	if v := r.u8(); v != handoffVer {
		return nil, fmt.Errorf("%w: unknown blob version %d", errBadHandoff, v)
	}
	r.u8() // reserved
	h := &handoff{msgSeq: r.u64()}
	n := int(r.u32())
	if n < 0 || n > handoffMaxChans {
		return nil, fmt.Errorf("%w: channel count %d", errBadHandoff, n)
	}
	recs := make([]handoffChan, 0, min(n, 256))
	for i := 0; i < n; i++ {
		var rec handoffChan
		rec.peer = fabric.NodeID(r.u32())
		nq := int(r.u8())
		if nq > handoffMaxQPNs {
			return nil, fmt.Errorf("%w: qpn count %d", errBadHandoff, nq)
		}
		for j := 0; j < nq; j++ {
			rec.qpns = append(rec.qpns, r.u32())
		}
		rec.peerQPN = r.u32()
		rec.peerQPN0 = r.u32()
		rec.negVer = r.u8()
		rec.caps = r.u32()
		copy(rec.label[:], r.bytes(8))
		rec.txFloor = r.u64()
		rec.rxFloor = r.u64()
		nt := int(r.u32())
		if nt > handoffMaxTail {
			return nil, fmt.Errorf("%w: tail count %d", errBadHandoff, nt)
		}
		for j := 0; j < nt; j++ {
			var m handoffMsg
			m.kind = r.u8()
			m.oneWay = r.u8() != 0
			m.msgID = r.u64()
			m.size = r.u32()
			dl := int(r.u32())
			if r.bad || dl < 0 || dl > len(r.b)-r.off {
				return nil, fmt.Errorf("%w: tail payload length", errBadHandoff)
			}
			if dl > 0 {
				m.data = append([]byte(nil), r.bytes(dl)...)
			}
			rec.tail = append(rec.tail, m)
		}
		nw := int(r.u32())
		if nw > handoffMaxWins {
			return nil, fmt.Errorf("%w: window count %d", errBadHandoff, nw)
		}
		for j := 0; j < nw; j++ {
			rec.wins = append(rec.wins, RemoteWindow{
				ID: r.u64(), Addr: r.u64(), RKey: r.u32(), Len: int(r.u32()),
			})
		}
		if r.bad {
			return nil, fmt.Errorf("%w: truncated at channel %d", errBadHandoff, i)
		}
		recs = append(recs, rec)
	}
	if r.bad {
		return nil, fmt.Errorf("%w: truncated", errBadHandoff)
	}
	h.chans = recs
	return h, nil
}

// handoffReader is a bounds-checked cursor; any overrun latches bad
// instead of panicking, and the caller checks once per record.
type handoffReader struct {
	b   []byte
	off int
	bad bool
}

func (r *handoffReader) bytes(n int) []byte {
	if r.bad || n < 0 || r.off+n > len(r.b) {
		r.bad = true
		return make([]byte, n)
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *handoffReader) u8() uint8   { return r.bytes(1)[0] }
func (r *handoffReader) u16() uint16 { return binary.LittleEndian.Uint16(r.bytes(2)) }
func (r *handoffReader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }
func (r *handoffReader) u64() uint64 { return binary.LittleEndian.Uint64(r.bytes(8)) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- restart -----------------------------------------------------------------

// Shutdown releases everything the restarted instance will need to
// re-acquire: CM and TCP listeners, QPs (exclusive and shared), timers
// (started=false strands every armed scan), per-channel gauges, and the
// memory cache's registered regions. App callbacks do NOT fire — the
// process is going down, not the peers.
func (c *Context) Shutdown() {
	c.started = false
	for _, p := range c.listenPorts {
		c.cm.Unlisten(p)
	}
	c.listenPorts = nil
	if c.recoverPort > 0 {
		c.cm.Unlisten(c.recoverPort)
	}
	if c.tcp != nil && c.mockPort > 0 {
		c.tcp.Unlisten(c.mockPort)
	}
	for _, ch := range c.sortedChannels() {
		if ch.closed {
			continue
		}
		ch.closed = true
		ch.recEpoch++ // strand in-flight recovery dials
		ch.unregisterGauges()
		c.eng.Cancel(ch.ackEv)
		if ch.mock != nil {
			ch.closeMock()
		} else if ch.cid == 0 && ch.qp != nil {
			c.vctx.NIC.DestroyQP(ch.qp)
		}
	}
	c.channels = make(map[uint32]*Channel)
	if c.chanByCID != nil {
		c.chanByCID = make(map[uint32]*Channel)
	}
	c.recoverIdx = make(map[uint32]*Channel)
	for _, mx := range c.muxQPs {
		if !mx.dead {
			mx.dead = true
			if mx.qp != nil {
				c.vctx.NIC.DestroyQP(mx.qp)
			}
		}
	}
	for id := range c.srqBufs {
		delete(c.srqBufs, id)
	}
	// Registered memory does not survive the process: drop the cache's
	// regions and zero the accounting, so leak assertions on the old
	// instance see a clean slate.
	c.Mem.Reset()
	c.logf("shutdown: context released (drain=%v)", c.drain)
}

// Rehydrate restores channels from a handoff blob on a freshly started
// context (typically at a bumped protocol version). Each channel comes
// back Degraded with its window floors, replay tail, tenant binding and
// negotiation verdict intact — the recovery plane re-establishes the
// transport (lower node id dials; the higher side waits, bounded), and the
// replay dedups against the peer's window exactly like a transient-fault
// recovery. The serialized negotiation verdict is kept as-is: a restarted
// v2 node keeps speaking v1 on channels negotiated with v1 peers.
func (c *Context) Rehydrate(blob []byte) error {
	if c.recoverPort <= 0 {
		return errors.New("xrdma: Rehydrate requires Options.RecoverPort")
	}
	h, err := decodeHandoff(blob)
	if err != nil {
		return err
	}
	if h.msgSeq > c.msgSeq {
		c.msgSeq = h.msgSeq
	}
	now := c.eng.Now()
	for i := range h.chans {
		r := &h.chans[i]
		if len(r.qpns) == 0 {
			continue
		}
		ch := &Channel{
			ctx:          c,
			Peer:         r.peer,
			peerQPN:      r.peerQPN,
			peerQPN0:     r.peerQPN0,
			health:       HealthDegraded,
			degradedAt:   now,
			lastComm:     now,
			lastProgress: now,
			OpenedAt:     now,
			retryTokens:  retryBudgetCap,
			negVer:       r.negVer,
			peerCaps:     r.caps,
		}
		ch.tx = newTxWindow(c.cfg.WindowDepth)
		ch.tx.seq, ch.tx.acked = r.txFloor, r.txFloor
		ch.rx = newRxWindow(c.cfg.WindowDepth)
		ch.rx.wta, ch.rx.rta = r.rxFloor, r.rxFloor
		if r.label != ([8]byte{}) {
			ch.tenant = c.tenantByLabel(r.label)
		}
		for _, m := range r.tail {
			ch.sendQ = append(ch.sendQ, &pendingSend{
				kind: msgKind(m.kind), data: m.data, size: int(m.size),
				msgID: m.msgID, oneWay: m.oneWay, enqAt: now,
			})
		}
		for _, w := range r.wins {
			if ch.remoteWins == nil {
				ch.remoteWins = make(map[uint64]RemoteWindow, len(r.wins))
			}
			ch.remoteWins[w.ID] = w
		}
		// Index every pre-restart QPN for the recovery rendezvous (the
		// peer dials naming the last QPN it saw), and park the channel in
		// the table under the newest one — QPNs are NIC-monotonic, so a
		// fresh QP can never collide with it, and adopt() clears the
		// placeholder when the replacement transport lands.
		for _, q := range r.qpns {
			c.indexChannel(ch, q)
		}
		c.channels[r.qpns[len(r.qpns)-1]] = ch
		c.Stats.Rehydrated++
		c.Stats.ChannelsOpened++
		c.tel.Flight.Record(now, telemetry.CatDrain, int32(c.Node()), r.qpns[len(r.qpns)-1], int64(r.peer), drainEvRehydrate)
		c.tel.Trace.Instant("drain.rehydrate", c.track, now, int64(r.peer))
		c.logf("rehydrate: channel peer=%d qpn=%d ver=%d tail=%d", r.peer, r.qpns[len(r.qpns)-1], ch.NegotiatedVersion(), len(r.tail))
		if c.onChannel != nil {
			c.onChannel(ch)
		}
		if c.Node() < ch.Peer {
			ch.scheduleRecoverDial(errRestartHandoff)
		} else {
			epoch := ch.recEpoch
			c.eng.AfterBg(c.recoverGrace(), func() {
				if ch.closed || ch.recEpoch != epoch || ch.mock != nil || ch.health == HealthHealthy {
					return
				}
				ch.proceedToFallback(errRestartHandoff)
			})
		}
	}
	return nil
}

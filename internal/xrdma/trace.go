package xrdma

import (
	"fmt"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// Tracer implements §VI-A: in req-rsp mode each traced message carries the
// sender's clock; the receiver, knowing the estimated clock offset from
// the sync service, decomposes request latency into network time and the
// rest. Records live in a bounded ring consumed by XR-Stat / the monitor.
type Tracer struct {
	ctx  *Context
	ring *telemetry.Ring[TraceRecord]

	// Slow-operation incidents (threshold = Config.SlowThreshold).
	SlowOps int64
}

// TraceRecord is one measured message (xrdma_trace_req's raw material).
type TraceRecord struct {
	Peer  fabric.NodeID
	MsgID uint64
	Kind  string
	// One-way estimate: receiverClock − T1 − offset (valid when a clock
	// offset for the peer is known; otherwise raw and skew-polluted).
	OneWay sim.Duration
	// RTT for completed request/response pairs (0 otherwise).
	RTT sim.Duration
	At  sim.Time
}

// tracerRingCap is the default record ring capacity; Config.TraceRingCap
// overrides it per context (XR-Stat reports how much the ring truncated).
const tracerRingCap = 4096

func newTracer(ctx *Context) *Tracer {
	cap := ctx.cfg.TraceRingCap
	if cap <= 0 {
		cap = tracerRingCap
	}
	return &Tracer{ctx: ctx, ring: telemetry.NewRing[TraceRecord](cap)}
}

// push appends one record, overwriting the oldest when full. O(1): the
// telemetry ring advances head/tail cursors instead of shifting elements.
func (t *Tracer) push(r TraceRecord) { t.ring.Push(r) }

// Records returns a copy of the trace ring (oldest first).
func (t *Tracer) Records() []TraceRecord { return t.ring.Snapshot() }

// Dropped reports how many records were overwritten since creation.
func (t *Tracer) Dropped() uint64 { return t.ring.Dropped() }

// onSend currently only counts; send-side state rides in the header.
func (t *Tracer) onSend(ch *Channel, h *wireHdr) {}

// onRecv computes the one-way latency of a traced inbound message.
func (t *Tracer) onRecv(ch *Channel, m *Msg) {
	off := t.ctx.toff[ch.Peer]
	oneWay := sim.Duration(t.ctx.LocalClock()-m.T1) + off
	kind := "RESP"
	if m.IsReq {
		kind = "REQ"
	}
	now := t.ctx.eng.Now()
	rec := TraceRecord{Peer: ch.Peer, MsgID: m.MsgID, Kind: kind, OneWay: oneWay, At: now}
	if oneWay > t.ctx.cfg.SlowThreshold {
		t.SlowOps++
		ch.blameSuspect = blameSuspectBudget
		t.ctx.tel.Flight.Record(now, telemetry.CatSlowOp, int32(t.ctx.Node()), ch.qp.QPN, int64(oneWay), int64(m.MsgID))
		t.ctx.tel.Trace.Instant("slow.op", t.ctx.track, now, int64(oneWay))
		t.ctx.logf("slow %s msg %d from %d: one-way %v", kind, m.MsgID, ch.Peer, oneWay)
	}
	t.push(rec)
}

// onResponse records the full RTT of a completed request.
func (t *Tracer) onResponse(ch *Channel, m *Msg, sentAt sim.Time) {
	now := t.ctx.eng.Now()
	rtt := now.Sub(sentAt)
	t.push(TraceRecord{Peer: ch.Peer, MsgID: m.MsgID, Kind: "RTT", RTT: rtt, At: now})
	t.ctx.rttHist.Observe(int64(rtt))
	t.ctx.tel.Trace.Complete("rtt", t.ctx.track, sentAt, rtt, int64(m.MsgID))
	if rtt > 2*t.ctx.cfg.SlowThreshold {
		t.SlowOps++
		ch.blameSuspect = blameSuspectBudget
		t.ctx.tel.Flight.Record(now, telemetry.CatSlowOp, int32(t.ctx.Node()), ch.qp.QPN, int64(rtt), int64(m.MsgID))
		t.ctx.tel.Trace.Instant("slow.op", t.ctx.track, now, int64(rtt))
		t.ctx.logf("slow request %d to %d: rtt %v", m.MsgID, ch.Peer, rtt)
	}
}

// onBlame reconstructs a blame-traced request's critical path the moment
// its response is delivered. Requester-local stages come from the WR
// lifecycle and QP recovery-counter deltas; request-direction fabric and
// remote stages arrive mirrored in the response's blame extension; the
// response direction rides its own in-band accumulator. Whatever the
// stamps don't cover is the residual (base propagation + software costs).
func (t *Tracer) onBlame(ch *Channel, m *Msg, rs *reqState) {
	c := t.ctx
	b, mb := rs.blame, m.blame
	now := c.eng.Now()
	rec := telemetry.BlameRec{
		MsgID: m.MsgID, Node: int32(c.Node()), QPN: ch.qp.QPN,
		At: b.enqAt, RTT: now.Sub(b.enqAt),
	}
	if t := ch.tenant; t != nil {
		rec.Tenant = t.id
	}
	_, started, finished := b.wr.TxTimes()
	rec.Dur[telemetry.StageTxStall] = b.txAt.Sub(b.enqAt)
	if started > b.txAt {
		rec.Dur[telemetry.StageSQWait] = started.Sub(b.txAt)
	}
	if finished > started {
		rec.Dur[telemetry.StageSerialize] = finished.Sub(started)
	}
	// Remote mirror (request-direction fabric + responder stages).
	rec.Dur[telemetry.StageFabricQueue] = mb.reqQueue
	rec.Dur[telemetry.StagePFCPause] = mb.reqPause
	rec.Dur[telemetry.StageReassembly] = mb.reasm
	rec.Dur[telemetry.StageHandler] = mb.handler
	rec.ECN = mb.ecn
	// Response-direction in-band accumulator.
	if rx := mb.rx; rx != nil {
		rec.Dur[telemetry.StageFabricQueue] += rx.Queue
		rec.Dur[telemetry.StagePFCPause] += rx.Pause
		rec.ECN += rx.ECN
		if rx.FirstAt > 0 && m.RecvAt > rx.FirstAt {
			rec.Dur[telemetry.StageReassembly] += m.RecvAt.Sub(rx.FirstAt)
		}
	}
	// Request-direction loss recovery: this QP's cumulative recovery
	// residency since transmit (negative deltas mean the channel moved to
	// a fresh QP mid-flight — nothing attributable).
	if d := ch.qp.Counters.RTORecoveryNs - b.rtoRef; d > 0 {
		rec.Dur[telemetry.StageRTORecovery] = sim.Duration(d)
	}
	if d := ch.qp.Counters.RNRRecoveryNs - b.rnrRef; d > 0 {
		rec.Dur[telemetry.StageRNRRecovery] = sim.Duration(d)
	}
	// PFC pause is a sub-component of fabric queueing, so it is excluded
	// from the attribution sum (it would double count).
	var attributed sim.Duration
	for s := telemetry.Stage(0); s < telemetry.StageResidual; s++ {
		if s == telemetry.StagePFCPause {
			continue
		}
		attributed += rec.Dur[s]
	}
	if resid := rec.RTT - attributed; resid > 0 {
		rec.Dur[telemetry.StageResidual] = resid
	}
	c.tel.Blame.Observe(&rec)
	c.tel.Blame.EmitSpans(c.tel.Trace, c.track, &rec)
}

// Tracer returns the context's tracer (xrdma_trace_req's query surface).
func (c *Context) Tracer() *Tracer { return c.trace }

// SyncClock runs the clock synchronisation service against the channel's
// peer: a few pings, median offset retained for trace decomposition.
func (ch *Channel) SyncClock(rounds int, done func(offset sim.Duration, err error)) {
	if rounds <= 0 {
		rounds = 3
	}
	offsets := make([]sim.Duration, 0, rounds)
	var step func()
	step = func() {
		ch.Ping(func(rtt, off sim.Duration, err error) {
			if err != nil {
				done(0, err)
				return
			}
			offsets = append(offsets, off)
			if len(offsets) < rounds {
				step()
				return
			}
			// median
			for i := 1; i < len(offsets); i++ {
				for j := i; j > 0 && offsets[j] < offsets[j-1]; j-- {
					offsets[j], offsets[j-1] = offsets[j-1], offsets[j]
				}
			}
			med := offsets[len(offsets)/2]
			ch.ctx.toff[ch.Peer] = med
			done(med, nil)
		})
	}
	step()
}

// ClockOffset returns the current offset estimate for a peer.
func (c *Context) ClockOffset(peer fabric.NodeID) (sim.Duration, bool) {
	off, ok := c.toff[peer]
	return off, ok
}

func (r TraceRecord) String() string {
	if r.Kind == "RTT" {
		return fmt.Sprintf("[%v] msg %d peer %d rtt=%v", r.At, r.MsgID, r.Peer, r.RTT)
	}
	return fmt.Sprintf("[%v] %s %d peer %d oneway=%v", r.At, r.Kind, r.MsgID, r.Peer, r.OneWay)
}

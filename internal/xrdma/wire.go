package xrdma

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// X-RDMA reconstructs the payload so that every message carries a header
// inside it (§VI-A). The header is a fixed 64-byte block, followed by an
// optional 16-byte trace extension in req-rsp mode, followed by an
// optional 40-byte blame extension (responses to blame-sampled requests
// only), followed by the application payload (for inline messages).

const (
	hdrMagic   = 0x5852 // "XR"
	hdrVersion = 1
	// hdrVersionMax is the highest header version this build understands.
	// v2 frames share the v1 64-byte layout; the bump is a negotiation
	// handle — a channel only emits v2 (and the capabilities gated on it,
	// e.g. drain hints) after the hello handshake proves the peer accepts
	// it. decodeHdr accepts the whole [hdrVersion, hdrVersionMax] range so
	// mixed-version clusters interoperate without a synchronized restart.
	hdrVersionMax = 2

	hdrSize      = 64
	traceExtSize = 16
	// blameExtSize is the response-only stage mirror: the responder echoes
	// the request's fabric residency plus its own reassembly/handler time so
	// the requester can reconstruct the full causal path. Blame-sampled
	// requests add zero wire bytes; only their responses carry this block.
	blameExtSize = 40
	// tenantExtSize carries the sender's tenant label so a passive peer can
	// resolve the numeric tenant id against its own Config.Tenants table.
	// Only labelled channels set flagTenant; zero-tenant worlds never emit it.
	tenantExtSize = 8
	// tenantLabelMax bounds tenant names on the wire.
	tenantLabelMax = tenantExtSize
)

type msgKind uint8

const (
	kindReq       msgKind = iota // request, payload inline
	kindResp                     // response, payload inline
	kindAck                      // standalone ack (window-exempt)
	kindNop                      // deadlock breaker, solicits an ack
	kindLargeReq                 // rendezvous: request payload staged at sender
	kindLargeResp                // rendezvous: response payload staged at responder
	kindReadDone                 // receiver finished pulling a staged buffer
	kindPing                     // middleware-level ping (XR-Ping)
	kindPong
	kindChanOpen   // mux plane: open a channel over a shared QP
	kindChanAccept // mux plane: accept reply carrying the acceptor's cid
	kindChanClose  // mux plane: peer tore its half of a muxed channel down
	kindMuxSick    // mux plane: responder asks the initiator to redial the shared QP
	kindPathHint   // path doctor: receiver-side symptoms implicate the peer's TX path
	kindWinGrant   // one-sided plane: peer exposes an MR window (Addr/RKey/Size, MsgID = window id)
	kindWinRevoke  // one-sided plane: peer withdrew a window (MsgID = window id)
	kindReadReq    // one-sided plane, mock fallback: emulated RDMA READ request
	kindReadResp   // one-sided plane, mock fallback: emulated READ response segment, payload inline
	kindWriteImm   // one-sided plane, mock fallback: emulated WRITE+imm, payload inline, Imm notifies
)

func (k msgKind) String() string {
	names := [...]string{"REQ", "RESP", "ACK", "NOP", "LARGE_REQ", "LARGE_RESP", "READ_DONE", "PING", "PONG",
		"CHAN_OPEN", "CHAN_ACCEPT", "CHAN_CLOSE", "MUX_SICK", "PATH_HINT",
		"WIN_GRANT", "WIN_REVOKE", "READ_REQ", "READ_RESP", "WRITE_IMM"}
	if int(k) < len(names) {
		return names[k]
	}
	return "?"
}

// windowed reports whether this kind occupies a seq-ack window slot.
// Control messages are window-exempt so acks can always flow; the
// one-sided kinds are window-exempt by design — real RDMA READ/WRITE
// never wakes the receiver's send window, and the mock emulation must
// preserve that property.
func (k msgKind) windowed() bool {
	switch k {
	case kindReq, kindResp, kindLargeReq, kindLargeResp:
		return true
	}
	return false
}

const (
	flagTraced = 1 << iota // trace extension present
	flagOneWay             // request wants no response
	flagBlame              // causal blame trace: responses carry the stage mirror
	_                      // 1<<3 is flagRAErr (one-sided plane, onesided.go)
	flagTenant             // tenant label extension present, Tenant field meaningful
)

// wireHdr is the decoded header.
type wireHdr struct {
	Kind  msgKind
	Ver   uint8 // header version (0 encodes as hdrVersion; decode reports the peer's)
	Flags uint16
	Seq   uint64 // window sequence (0 for window-exempt kinds)
	Ack   uint64 // piggybacked cumulative ack (receiver's RTA)
	MsgID uint64 // request/response correlation
	Size  uint32 // application payload size
	Addr  uint64 // staged buffer address (rendezvous kinds)
	RKey  uint32 // staged buffer / window rkey
	Chan   uint32  // receiver-side channel id (QP multiplexing; 0 = exclusive QP)
	Imm    uint32  // WRITE+imm immediate value (one-sided kinds; 0 otherwise)
	Tenant uint16  // sender's tenant id (0 = untenanted; meaningful with flagTenant)
	TLabel [8]byte // tenant label extension payload (flagTenant only)
	T1     int64   // trace: sender clock at send (req-rsp mode)

	// Blame extension (flagBlame responses): the responder's mirror of
	// remote stages, all in nanoseconds except BECN (a mark count).
	BQueue   int64 // request-direction switch egress-queue residency
	BPause   int64 // request-direction PFC pause share of that residency
	BReasm   int64 // receiver reassembly: first fragment at NIC → dispatch
	BHandler int64 // application handler: dispatch → response transmit
	BECN     int64 // request-direction ECN marks
}

// hasBlameExt reports whether the wire layout includes the blame block:
// only responses mirror stages back (requests carry just the flag).
func (h *wireHdr) hasBlameExt() bool {
	return h.Flags&flagBlame != 0 && h.Kind == kindResp
}

// hasTenantExt reports whether the wire layout includes the tenant label
// block. Unlike the blame mirror it is kind-agnostic: CHAN_OPEN and data
// frames both carry it when the sending channel is labelled.
func (h *wireHdr) hasTenantExt() bool {
	return h.Flags&flagTenant != 0
}

// encode writes the header (and trace extension when flagged) into buf and
// returns the number of bytes written.
func (h *wireHdr) encode(buf []byte) int {
	binary.LittleEndian.PutUint16(buf[0:], hdrMagic)
	if h.Ver == 0 {
		buf[2] = hdrVersion
	} else {
		buf[2] = h.Ver
	}
	buf[3] = byte(h.Kind)
	binary.LittleEndian.PutUint16(buf[4:], h.Flags)
	binary.LittleEndian.PutUint32(buf[6:], h.Size)
	binary.LittleEndian.PutUint64(buf[10:], h.Seq)
	binary.LittleEndian.PutUint64(buf[18:], h.Ack)
	binary.LittleEndian.PutUint64(buf[26:], h.MsgID)
	binary.LittleEndian.PutUint64(buf[34:], h.Addr)
	binary.LittleEndian.PutUint32(buf[42:], h.RKey)
	// Bytes 46..49 were reserved-zero until the mux plane claimed them, so
	// a zero Chan keeps the encoding byte-identical to the legacy layout.
	binary.LittleEndian.PutUint32(buf[46:], h.Chan)
	// Bytes 50..53 likewise sat in the padding until the one-sided plane
	// claimed them for the immediate value.
	binary.LittleEndian.PutUint32(buf[50:], h.Imm)
	// Bytes 54..55 were padding until the tenancy plane claimed them for the
	// tenant id; a zero Tenant keeps the encoding byte-identical to before.
	binary.LittleEndian.PutUint16(buf[54:], h.Tenant)
	n := hdrSize
	if h.Flags&flagTraced != 0 {
		binary.LittleEndian.PutUint64(buf[hdrSize:], uint64(h.T1))
		n += traceExtSize
	}
	if h.hasBlameExt() {
		binary.LittleEndian.PutUint64(buf[n:], uint64(h.BQueue))
		binary.LittleEndian.PutUint64(buf[n+8:], uint64(h.BPause))
		binary.LittleEndian.PutUint64(buf[n+16:], uint64(h.BReasm))
		binary.LittleEndian.PutUint64(buf[n+24:], uint64(h.BHandler))
		binary.LittleEndian.PutUint64(buf[n+32:], uint64(h.BECN))
		n += blameExtSize
	}
	if h.hasTenantExt() {
		copy(buf[n:n+tenantExtSize], h.TLabel[:])
		n += tenantExtSize
	}
	return n
}

// wireBytes is the total header length for this message.
func (h *wireHdr) wireBytes() int {
	n := hdrSize
	if h.Flags&flagTraced != 0 {
		n += traceExtSize
	}
	if h.hasBlameExt() {
		n += blameExtSize
	}
	if h.hasTenantExt() {
		n += tenantExtSize
	}
	return n
}

// errBadHeader marks undecodable inbound messages (foreign traffic or
// corruption).
var errBadHeader = errors.New("xrdma: bad message header")

// errVersion marks a structurally sound header whose version this build
// does not speak. It is deliberately NOT errBadHeader: a fleet mid-upgrade
// must be able to tell "peer runs a future release" apart from corruption,
// so version mismatches get their own counter and flight category instead
// of being misdiagnosed as bitrot.
var errVersion = errors.New("xrdma: unsupported header version")

// decode parses a header from buf.
func decodeHdr(buf []byte) (wireHdr, int, error) {
	var h wireHdr
	if len(buf) < hdrSize {
		return h, 0, fmt.Errorf("%w: %d bytes", errBadHeader, len(buf))
	}
	if binary.LittleEndian.Uint16(buf[0:]) != hdrMagic {
		return h, 0, fmt.Errorf("%w: magic %#x", errBadHeader, binary.LittleEndian.Uint16(buf[0:]))
	}
	if buf[2] < hdrVersion || buf[2] > hdrVersionMax {
		return h, 0, fmt.Errorf("%w: version %d", errVersion, buf[2])
	}
	h.Ver = buf[2]
	h.Kind = msgKind(buf[3])
	h.Flags = binary.LittleEndian.Uint16(buf[4:])
	h.Size = binary.LittleEndian.Uint32(buf[6:])
	h.Seq = binary.LittleEndian.Uint64(buf[10:])
	h.Ack = binary.LittleEndian.Uint64(buf[18:])
	h.MsgID = binary.LittleEndian.Uint64(buf[26:])
	h.Addr = binary.LittleEndian.Uint64(buf[34:])
	h.RKey = binary.LittleEndian.Uint32(buf[42:])
	h.Chan = binary.LittleEndian.Uint32(buf[46:])
	h.Imm = binary.LittleEndian.Uint32(buf[50:])
	h.Tenant = binary.LittleEndian.Uint16(buf[54:])
	n := hdrSize
	if h.Flags&flagTraced != 0 {
		if len(buf) < hdrSize+traceExtSize {
			return h, 0, fmt.Errorf("%w: truncated trace extension", errBadHeader)
		}
		h.T1 = int64(binary.LittleEndian.Uint64(buf[hdrSize:]))
		n += traceExtSize
	}
	if h.hasBlameExt() {
		if len(buf) < n+blameExtSize {
			return h, 0, fmt.Errorf("%w: truncated blame extension", errBadHeader)
		}
		h.BQueue = int64(binary.LittleEndian.Uint64(buf[n:]))
		h.BPause = int64(binary.LittleEndian.Uint64(buf[n+8:]))
		h.BReasm = int64(binary.LittleEndian.Uint64(buf[n+16:]))
		h.BHandler = int64(binary.LittleEndian.Uint64(buf[n+24:]))
		h.BECN = int64(binary.LittleEndian.Uint64(buf[n+32:]))
		n += blameExtSize
	}
	if h.hasTenantExt() {
		if len(buf) < n+tenantExtSize {
			return h, 0, fmt.Errorf("%w: truncated tenant extension", errBadHeader)
		}
		copy(h.TLabel[:], buf[n:n+tenantExtSize])
		n += tenantExtSize
	}
	return h, n, nil
}

package xrdma

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// X-RDMA reconstructs the payload so that every message carries a header
// inside it (§VI-A). The header is a fixed 64-byte block, followed by an
// optional 16-byte trace extension in req-rsp mode, followed by the
// application payload (for inline messages).

const (
	hdrMagic   = 0x5852 // "XR"
	hdrVersion = 1

	hdrSize      = 64
	traceExtSize = 16
)

type msgKind uint8

const (
	kindReq       msgKind = iota // request, payload inline
	kindResp                     // response, payload inline
	kindAck                      // standalone ack (window-exempt)
	kindNop                      // deadlock breaker, solicits an ack
	kindLargeReq                 // rendezvous: request payload staged at sender
	kindLargeResp                // rendezvous: response payload staged at responder
	kindReadDone                 // receiver finished pulling a staged buffer
	kindPing                     // middleware-level ping (XR-Ping)
	kindPong
)

func (k msgKind) String() string {
	names := [...]string{"REQ", "RESP", "ACK", "NOP", "LARGE_REQ", "LARGE_RESP", "READ_DONE", "PING", "PONG"}
	if int(k) < len(names) {
		return names[k]
	}
	return "?"
}

// windowed reports whether this kind occupies a seq-ack window slot.
// Control messages are window-exempt so acks can always flow.
func (k msgKind) windowed() bool {
	switch k {
	case kindReq, kindResp, kindLargeReq, kindLargeResp:
		return true
	}
	return false
}

const (
	flagTraced = 1 << iota // trace extension present
	flagOneWay             // request wants no response
)

// wireHdr is the decoded header.
type wireHdr struct {
	Kind  msgKind
	Flags uint16
	Seq   uint64 // window sequence (0 for window-exempt kinds)
	Ack   uint64 // piggybacked cumulative ack (receiver's RTA)
	MsgID uint64 // request/response correlation
	Size  uint32 // application payload size
	Addr  uint64 // staged buffer address (rendezvous kinds)
	RKey  uint32 // staged buffer rkey
	T1    int64  // trace: sender clock at send (req-rsp mode)
}

// encode writes the header (and trace extension when flagged) into buf and
// returns the number of bytes written.
func (h *wireHdr) encode(buf []byte) int {
	binary.LittleEndian.PutUint16(buf[0:], hdrMagic)
	buf[2] = hdrVersion
	buf[3] = byte(h.Kind)
	binary.LittleEndian.PutUint16(buf[4:], h.Flags)
	binary.LittleEndian.PutUint32(buf[6:], h.Size)
	binary.LittleEndian.PutUint64(buf[10:], h.Seq)
	binary.LittleEndian.PutUint64(buf[18:], h.Ack)
	binary.LittleEndian.PutUint64(buf[26:], h.MsgID)
	binary.LittleEndian.PutUint64(buf[34:], h.Addr)
	binary.LittleEndian.PutUint32(buf[42:], h.RKey)
	n := hdrSize
	if h.Flags&flagTraced != 0 {
		binary.LittleEndian.PutUint64(buf[hdrSize:], uint64(h.T1))
		n += traceExtSize
	}
	return n
}

// wireBytes is the total header length for this message.
func (h *wireHdr) wireBytes() int {
	if h.Flags&flagTraced != 0 {
		return hdrSize + traceExtSize
	}
	return hdrSize
}

// errBadHeader marks undecodable inbound messages (foreign traffic or
// corruption).
var errBadHeader = errors.New("xrdma: bad message header")

// decode parses a header from buf.
func decodeHdr(buf []byte) (wireHdr, int, error) {
	var h wireHdr
	if len(buf) < hdrSize {
		return h, 0, fmt.Errorf("%w: %d bytes", errBadHeader, len(buf))
	}
	if binary.LittleEndian.Uint16(buf[0:]) != hdrMagic {
		return h, 0, fmt.Errorf("%w: magic %#x", errBadHeader, binary.LittleEndian.Uint16(buf[0:]))
	}
	if buf[2] != hdrVersion {
		return h, 0, fmt.Errorf("%w: version %d", errBadHeader, buf[2])
	}
	h.Kind = msgKind(buf[3])
	h.Flags = binary.LittleEndian.Uint16(buf[4:])
	h.Size = binary.LittleEndian.Uint32(buf[6:])
	h.Seq = binary.LittleEndian.Uint64(buf[10:])
	h.Ack = binary.LittleEndian.Uint64(buf[18:])
	h.MsgID = binary.LittleEndian.Uint64(buf[26:])
	h.Addr = binary.LittleEndian.Uint64(buf[34:])
	h.RKey = binary.LittleEndian.Uint32(buf[42:])
	n := hdrSize
	if h.Flags&flagTraced != 0 {
		if len(buf) < hdrSize+traceExtSize {
			return h, 0, fmt.Errorf("%w: truncated trace extension", errBadHeader)
		}
		h.T1 = int64(binary.LittleEndian.Uint64(buf[hdrSize:]))
		n += traceExtSize
	}
	return h, n, nil
}

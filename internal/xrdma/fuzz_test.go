package xrdma

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeHdr hardens the wire-header parser against hostile or
// corrupted inbound bytes: decodeHdr must never panic or over-read, and
// every successful decode must be internally consistent (sane length,
// round-trippable through encode). The brownout fault class delivers
// genuinely damaged frames to this parser, so "never crash" is a
// production invariant, not fuzz hygiene.
func FuzzDecodeHdr(f *testing.F) {
	mk := func(h wireHdr) []byte {
		buf := make([]byte, h.wireBytes())
		h.encode(buf)
		return buf
	}
	// Valid headers of every kind — one-sided kinds included, so the
	// corpus always exercises the WIN_GRANT/WIN_REVOKE/READ_REQ/READ_RESP/
	// WRITE_IMM layouts — plain and traced.
	for k := kindReq; k <= kindWriteImm; k++ {
		f.Add(mk(wireHdr{Kind: k, Seq: 7, Ack: 3, MsgID: 99, Size: 1024}))
	}
	f.Add(mk(wireHdr{Kind: kindResp, Flags: flagTraced, Seq: 1, MsgID: 2, T1: 123456789}))
	f.Add(mk(wireHdr{Kind: kindResp, Flags: flagBlame, Seq: 4, MsgID: 5, Size: 64}))
	f.Add(mk(wireHdr{Kind: kindResp, Flags: flagTraced | flagBlame, Seq: 6, MsgID: 7, T1: 42}))
	f.Add(mk(wireHdr{Kind: kindReq, Flags: flagOneWay, Size: 16}))
	f.Add(mk(wireHdr{Kind: kindLargeReq, Size: 1 << 20, Addr: 0xdeadbeef, RKey: 42}))
	// One-sided plane shapes: a window grant (Addr/RKey/Size carry the
	// window), a revoke (id only), an emulated READ round trip including
	// the flagged access failure, and a WRITE+imm with a live immediate.
	f.Add(mk(wireHdr{Kind: kindWinGrant, MsgID: 11, Addr: 0x10000, RKey: 7, Size: 65536}))
	f.Add(mk(wireHdr{Kind: kindWinRevoke, MsgID: 11}))
	f.Add(mk(wireHdr{Kind: kindReadReq, MsgID: 12, Addr: 0x10040, RKey: 7, Size: 256}))
	f.Add(mk(wireHdr{Kind: kindReadResp, MsgID: 12, Size: 256}))
	f.Add(mk(wireHdr{Kind: kindReadResp, MsgID: 13, Flags: flagRAErr}))
	f.Add(mk(wireHdr{Kind: kindWriteImm, MsgID: 14, Addr: 0x10080, RKey: 7, Size: 64, Imm: 0xfeedface}))
	// Hostile shapes: empty, short, bad magic, bad version, truncated
	// trace extension, flag soup.
	f.Add([]byte{})
	f.Add([]byte{0x58})
	f.Add(bytes.Repeat([]byte{0xff}, hdrSize-1))
	f.Add(bytes.Repeat([]byte{0x00}, hdrSize))
	bad := mk(wireHdr{Kind: kindReq})
	binary.LittleEndian.PutUint16(bad, 0x4242)
	f.Add(bad)
	vbad := mk(wireHdr{Kind: kindReq})
	vbad[2] = 9
	f.Add(vbad)
	trunc := mk(wireHdr{Kind: kindReq, Flags: flagTraced, T1: 1})
	f.Add(trunc[:hdrSize])
	soup := mk(wireHdr{Kind: kindPong, Flags: 0xffff, T1: -1})
	f.Add(soup)
	// Hostile one-sided shapes: an unknown future kind, a WRITE+imm whose
	// Size claims far more payload than any frame carries, and a READ
	// response cut off mid-header.
	unknown := mk(wireHdr{Kind: kindWriteImm + 1, Size: 64})
	f.Add(unknown)
	huge := mk(wireHdr{Kind: kindWriteImm, Size: ^uint32(0), Imm: 1})
	f.Add(huge)
	cut := mk(wireHdr{Kind: kindReadResp, MsgID: 9, Size: 512})
	f.Add(cut[:50])
	// Tenant plane shapes: a labelled data frame, a labelled CHAN_OPEN,
	// the label riding alongside trace+blame extensions, and hostile
	// variants — an unknown tenant id with a foreign label, and a frame
	// whose label extension is cut off.
	f.Add(mk(wireHdr{Kind: kindReq, Flags: flagTenant, Tenant: 1, TLabel: [8]byte{'m', 'o', 'u', 's', 'e'}, Size: 256}))
	f.Add(mk(wireHdr{Kind: kindChanOpen, Flags: flagTenant, Tenant: 2, TLabel: [8]byte{'e', 'l', 'e', 'p', 'h', 'a', 'n', 't'}, Chan: 9}))
	f.Add(mk(wireHdr{Kind: kindResp, Flags: flagTraced | flagBlame | flagTenant, Tenant: 1, TLabel: [8]byte{'t'}, T1: 9}))
	f.Add(mk(wireHdr{Kind: kindReq, Flags: flagTenant, Tenant: 0xffff, TLabel: [8]byte{0xff, 0xfe, 0xfd}}))
	tcut := mk(wireHdr{Kind: kindReq, Flags: flagTenant, Tenant: 3, TLabel: [8]byte{'x'}})
	f.Add(tcut[:len(tcut)-3])

	f.Fuzz(func(t *testing.T, b []byte) {
		h, n, err := decodeHdr(b)
		if err != nil {
			return
		}
		// No over-read, and the consumed length matches the layout.
		if n > len(b) {
			t.Fatalf("decodeHdr consumed %d of %d bytes", n, len(b))
		}
		want := hdrSize
		if h.Flags&flagTraced != 0 {
			want += traceExtSize
		}
		if h.hasBlameExt() {
			want += blameExtSize
		}
		if h.hasTenantExt() {
			want += tenantExtSize
		}
		if n != want {
			t.Fatalf("consumed %d bytes, layout says %d (flags %#x)", n, want, h.Flags)
		}
		// Round-trip: re-encoding the decoded header must reproduce the
		// consumed prefix bit-for-bit (the parser invents nothing).
		out := make([]byte, h.wireBytes())
		if m := h.encode(out); m != n {
			t.Fatalf("re-encode wrote %d bytes, decode consumed %d", m, n)
		}
		// Bytes 0..55 are all decoded fields now that the tenant plane
		// claimed 54..55 for the tenant id; the round-trip must preserve
		// every one of them.
		if !bytes.Equal(out[:56], b[:56]) {
			t.Fatalf("fixed fields diverge after round-trip:\n in=%x\nout=%x", b[:56], out[:56])
		}
		if h.Flags&flagTraced != 0 && !bytes.Equal(out[hdrSize:hdrSize+8], b[hdrSize:hdrSize+8]) {
			t.Fatalf("trace extension diverges after round-trip")
		}
	})
}

package xrdma

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeHdr hardens the wire-header parser against hostile or
// corrupted inbound bytes: decodeHdr must never panic or over-read, and
// every successful decode must be internally consistent (sane length,
// round-trippable through encode). The brownout fault class delivers
// genuinely damaged frames to this parser, so "never crash" is a
// production invariant, not fuzz hygiene.
func FuzzDecodeHdr(f *testing.F) {
	mk := func(h wireHdr) []byte {
		buf := make([]byte, h.wireBytes())
		h.encode(buf)
		return buf
	}
	// Valid headers of every kind — one-sided kinds included, so the
	// corpus always exercises the WIN_GRANT/WIN_REVOKE/READ_REQ/READ_RESP/
	// WRITE_IMM layouts — plain and traced.
	for k := kindReq; k <= kindWriteImm; k++ {
		f.Add(mk(wireHdr{Kind: k, Seq: 7, Ack: 3, MsgID: 99, Size: 1024}))
	}
	f.Add(mk(wireHdr{Kind: kindResp, Flags: flagTraced, Seq: 1, MsgID: 2, T1: 123456789}))
	f.Add(mk(wireHdr{Kind: kindResp, Flags: flagBlame, Seq: 4, MsgID: 5, Size: 64}))
	f.Add(mk(wireHdr{Kind: kindResp, Flags: flagTraced | flagBlame, Seq: 6, MsgID: 7, T1: 42}))
	f.Add(mk(wireHdr{Kind: kindReq, Flags: flagOneWay, Size: 16}))
	f.Add(mk(wireHdr{Kind: kindLargeReq, Size: 1 << 20, Addr: 0xdeadbeef, RKey: 42}))
	// One-sided plane shapes: a window grant (Addr/RKey/Size carry the
	// window), a revoke (id only), an emulated READ round trip including
	// the flagged access failure, and a WRITE+imm with a live immediate.
	f.Add(mk(wireHdr{Kind: kindWinGrant, MsgID: 11, Addr: 0x10000, RKey: 7, Size: 65536}))
	f.Add(mk(wireHdr{Kind: kindWinRevoke, MsgID: 11}))
	f.Add(mk(wireHdr{Kind: kindReadReq, MsgID: 12, Addr: 0x10040, RKey: 7, Size: 256}))
	f.Add(mk(wireHdr{Kind: kindReadResp, MsgID: 12, Size: 256}))
	f.Add(mk(wireHdr{Kind: kindReadResp, MsgID: 13, Flags: flagRAErr}))
	f.Add(mk(wireHdr{Kind: kindWriteImm, MsgID: 14, Addr: 0x10080, RKey: 7, Size: 64, Imm: 0xfeedface}))
	// Hostile shapes: empty, short, bad magic, bad version, truncated
	// trace extension, flag soup.
	f.Add([]byte{})
	f.Add([]byte{0x58})
	f.Add(bytes.Repeat([]byte{0xff}, hdrSize-1))
	f.Add(bytes.Repeat([]byte{0x00}, hdrSize))
	bad := mk(wireHdr{Kind: kindReq})
	binary.LittleEndian.PutUint16(bad, 0x4242)
	f.Add(bad)
	vbad := mk(wireHdr{Kind: kindReq})
	vbad[2] = 9
	f.Add(vbad)
	trunc := mk(wireHdr{Kind: kindReq, Flags: flagTraced, T1: 1})
	f.Add(trunc[:hdrSize])
	soup := mk(wireHdr{Kind: kindPong, Flags: 0xffff, T1: -1})
	f.Add(soup)
	// Hostile one-sided shapes: an unknown future kind, a WRITE+imm whose
	// Size claims far more payload than any frame carries, and a READ
	// response cut off mid-header.
	unknown := mk(wireHdr{Kind: kindWriteImm + 1, Size: 64})
	f.Add(unknown)
	huge := mk(wireHdr{Kind: kindWriteImm, Size: ^uint32(0), Imm: 1})
	f.Add(huge)
	cut := mk(wireHdr{Kind: kindReadResp, MsgID: 9, Size: 512})
	f.Add(cut[:50])
	// Tenant plane shapes: a labelled data frame, a labelled CHAN_OPEN,
	// the label riding alongside trace+blame extensions, and hostile
	// variants — an unknown tenant id with a foreign label, and a frame
	// whose label extension is cut off.
	f.Add(mk(wireHdr{Kind: kindReq, Flags: flagTenant, Tenant: 1, TLabel: [8]byte{'m', 'o', 'u', 's', 'e'}, Size: 256}))
	f.Add(mk(wireHdr{Kind: kindChanOpen, Flags: flagTenant, Tenant: 2, TLabel: [8]byte{'e', 'l', 'e', 'p', 'h', 'a', 'n', 't'}, Chan: 9}))
	f.Add(mk(wireHdr{Kind: kindResp, Flags: flagTraced | flagBlame | flagTenant, Tenant: 1, TLabel: [8]byte{'t'}, T1: 9}))
	f.Add(mk(wireHdr{Kind: kindReq, Flags: flagTenant, Tenant: 0xffff, TLabel: [8]byte{0xff, 0xfe, 0xfd}}))
	tcut := mk(wireHdr{Kind: kindReq, Flags: flagTenant, Tenant: 3, TLabel: [8]byte{'x'}})
	f.Add(tcut[:len(tcut)-3])
	// Hot-upgrade plane shapes: v2 frames (the negotiated bump shares the
	// v1 layout), a v2 frame carrying every extension at once, hostile
	// version bytes (zero and future — both must resolve to errVersion,
	// never a panic or a misparse), and a channel-negotiation hello sitting
	// where a data header should be.
	f.Add(mk(wireHdr{Ver: hdrVersionMax, Kind: kindReq, Seq: 8, Ack: 6, MsgID: 100, Size: 512}))
	f.Add(mk(wireHdr{Ver: hdrVersionMax, Kind: kindResp, Flags: flagTraced | flagBlame | flagTenant, Tenant: 1, TLabel: [8]byte{'u'}, T1: 77}))
	f.Add(mk(wireHdr{Ver: hdrVersionMax, Kind: kindWinGrant, MsgID: 21, Addr: 0x20000, RKey: 9, Size: 4096}))
	vzero := mk(wireHdr{Kind: kindReq})
	vzero[2] = 0
	f.Add(vzero)
	f.Add(append(encodeChanHello(chanHello{minVer: 1, maxVer: 2, caps: baselineCaps | capDrainHint}), make([]byte, hdrSize)...))

	f.Fuzz(func(t *testing.T, b []byte) {
		h, n, err := decodeHdr(b)
		if err != nil {
			return
		}
		// No over-read, and the consumed length matches the layout.
		if n > len(b) {
			t.Fatalf("decodeHdr consumed %d of %d bytes", n, len(b))
		}
		want := hdrSize
		if h.Flags&flagTraced != 0 {
			want += traceExtSize
		}
		if h.hasBlameExt() {
			want += blameExtSize
		}
		if h.hasTenantExt() {
			want += tenantExtSize
		}
		if n != want {
			t.Fatalf("consumed %d bytes, layout says %d (flags %#x)", n, want, h.Flags)
		}
		// Round-trip: re-encoding the decoded header must reproduce the
		// consumed prefix bit-for-bit (the parser invents nothing).
		out := make([]byte, h.wireBytes())
		if m := h.encode(out); m != n {
			t.Fatalf("re-encode wrote %d bytes, decode consumed %d", m, n)
		}
		// Bytes 0..55 are all decoded fields now that the tenant plane
		// claimed 54..55 for the tenant id; the round-trip must preserve
		// every one of them.
		if !bytes.Equal(out[:56], b[:56]) {
			t.Fatalf("fixed fields diverge after round-trip:\n in=%x\nout=%x", b[:56], out[:56])
		}
		if h.Flags&flagTraced != 0 && !bytes.Equal(out[hdrSize:hdrSize+8], b[hdrSize:hdrSize+8]) {
			t.Fatalf("trace extension diverges after round-trip")
		}
		// Version sanity: decode only admits the range this build speaks.
		if h.Ver < hdrVersion || h.Ver > hdrVersionMax {
			t.Fatalf("decodeHdr admitted version %d outside [%d, %d]", h.Ver, hdrVersion, hdrVersionMax)
		}
	})
}

// FuzzParseChanHello hardens the negotiation-hello parser: CM private
// data is peer-controlled bytes, and a hostile hello must either parse
// into a well-formed offer or be treated as a legacy (no-hello) peer —
// never crash, never half-parse.
func FuzzParseChanHello(f *testing.F) {
	f.Add(encodeChanHello(chanHello{minVer: 1, maxVer: 1, caps: baselineCaps}))
	f.Add(encodeChanHello(chanHello{minVer: 1, maxVer: 2, caps: baselineCaps | capDrainHint}))
	f.Add(encodeChanHello(chanHello{minVer: 2, maxVer: 2, caps: 0}))
	f.Add(encodeChanHello(chanHello{minVer: 255, maxVer: 0, caps: ^uint32(0)}))
	f.Add([]byte{})
	f.Add([]byte{0x56, 0x58})                  // magic alone, truncated
	f.Add(bytes.Repeat([]byte{0xff}, 16))      // flag soup, wrong magic
	f.Add(append(encodeChanHello(chanHello{minVer: 1, maxVer: 2, caps: 7}), 0xAA, 0xBB)) // trailing garbage

	f.Fuzz(func(t *testing.T, b []byte) {
		h, ok := parseChanHello(b)
		if !ok {
			return
		}
		// A parsed hello round-trips bit-for-bit over its fixed prefix.
		out := encodeChanHello(h)
		if !bytes.Equal(out, b[:chanHelloSize]) {
			t.Fatalf("hello diverges after round-trip:\n in=%x\nout=%x", b[:chanHelloSize], out)
		}
		// And negotiating any parsed offer against any local range must
		// never panic, regardless of how inverted the peer's range is.
		for _, local := range []chanHello{
			{minVer: 1, maxVer: 1, caps: baselineCaps},
			{minVer: 1, maxVer: 2, caps: baselineCaps | capDrainHint},
			{minVer: 2, maxVer: 2, caps: 0},
		} {
			ver, caps, ok := negotiate(local, h)
			if ok && (ver < local.minVer || ver > local.maxVer) {
				t.Fatalf("negotiate settled on %d outside local [%d, %d]", ver, local.minVer, local.maxVer)
			}
			if ok && caps&^local.caps != 0 {
				t.Fatalf("negotiate granted caps %#x the local side never offered", caps)
			}
		}
	})
}

// FuzzDecodeHandoff hardens the restart-handoff parser: the blob crosses
// a process boundary (and, in production, a disk or RPC hop), so a
// truncated, corrupted, or adversarial blob must fail loudly — bounded
// allocations, no panic, no over-read, and never a half-parsed channel
// set handed to Rehydrate.
func FuzzDecodeHandoff(f *testing.F) {
	le := binary.LittleEndian
	base := func(n uint32) []byte {
		b := le.AppendUint16(nil, handoffMagic)
		b = append(b, handoffVer, 0)
		b = le.AppendUint64(b, 9)
		b = le.AppendUint32(b, n)
		return b
	}
	// One well-formed single-channel blob with a tail message and a window.
	rec := le.AppendUint32(nil, 2) // peer
	rec = append(rec, 1)           // one QPN
	rec = le.AppendUint32(rec, 104)
	rec = le.AppendUint32(rec, 55) // peerQPN
	rec = le.AppendUint32(rec, 55) // peerQPN0
	rec = append(rec, 1)           // negVer
	rec = le.AppendUint32(rec, baselineCaps)
	rec = append(rec, []byte("tenant-a")...)
	rec = le.AppendUint64(rec, 10) // txFloor
	rec = le.AppendUint64(rec, 12) // rxFloor
	rec = le.AppendUint32(rec, 1)  // one tail message
	rec = append(rec, 1, 0)
	rec = le.AppendUint64(rec, 11) // msgID
	rec = le.AppendUint32(rec, 3)  // size
	rec = le.AppendUint32(rec, 3)  // dataLen
	rec = append(rec, 'a', 'b', 'c')
	rec = le.AppendUint32(rec, 1) // one window
	rec = le.AppendUint64(rec, 1)
	rec = le.AppendUint64(rec, 0x10000)
	rec = le.AppendUint32(rec, 7)
	rec = le.AppendUint32(rec, 65536)
	good := append(base(1), rec...)
	f.Add(good)
	f.Add(base(0))
	f.Add(good[:len(good)-5])            // truncated mid-window
	f.Add(base(1 << 20))                 // channel-count bomb
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	fut := base(0)
	fut[2] = 9
	f.Add(fut) // future blob version

	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := decodeHandoff(b)
		if err != nil {
			return
		}
		// Decoded state must respect every hardening cap, and every byte
		// slice must be owned (within the blob's length budget).
		if len(h.chans) > handoffMaxChans {
			t.Fatalf("%d channels decoded past the cap", len(h.chans))
		}
		for _, c := range h.chans {
			if len(c.qpns) > handoffMaxQPNs || len(c.tail) > handoffMaxTail || len(c.wins) > handoffMaxWins {
				t.Fatalf("record breaches caps: qpns=%d tail=%d wins=%d", len(c.qpns), len(c.tail), len(c.wins))
			}
			for _, m := range c.tail {
				if len(m.data) > len(b) {
					t.Fatalf("tail payload %d bytes from a %d-byte blob", len(m.data), len(b))
				}
			}
		}
	})
}

package xrdma

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeHdr hardens the wire-header parser against hostile or
// corrupted inbound bytes: decodeHdr must never panic or over-read, and
// every successful decode must be internally consistent (sane length,
// round-trippable through encode). The brownout fault class delivers
// genuinely damaged frames to this parser, so "never crash" is a
// production invariant, not fuzz hygiene.
func FuzzDecodeHdr(f *testing.F) {
	mk := func(h wireHdr) []byte {
		buf := make([]byte, h.wireBytes())
		h.encode(buf)
		return buf
	}
	// Valid headers of every kind, plain and traced.
	for k := kindReq; k <= kindPong; k++ {
		f.Add(mk(wireHdr{Kind: k, Seq: 7, Ack: 3, MsgID: 99, Size: 1024}))
	}
	f.Add(mk(wireHdr{Kind: kindResp, Flags: flagTraced, Seq: 1, MsgID: 2, T1: 123456789}))
	f.Add(mk(wireHdr{Kind: kindResp, Flags: flagBlame, Seq: 4, MsgID: 5, Size: 64}))
	f.Add(mk(wireHdr{Kind: kindResp, Flags: flagTraced | flagBlame, Seq: 6, MsgID: 7, T1: 42}))
	f.Add(mk(wireHdr{Kind: kindReq, Flags: flagOneWay, Size: 16}))
	f.Add(mk(wireHdr{Kind: kindLargeReq, Size: 1 << 20, Addr: 0xdeadbeef, RKey: 42}))
	// Hostile shapes: empty, short, bad magic, bad version, truncated
	// trace extension, flag soup.
	f.Add([]byte{})
	f.Add([]byte{0x58})
	f.Add(bytes.Repeat([]byte{0xff}, hdrSize-1))
	f.Add(bytes.Repeat([]byte{0x00}, hdrSize))
	bad := mk(wireHdr{Kind: kindReq})
	binary.LittleEndian.PutUint16(bad, 0x4242)
	f.Add(bad)
	vbad := mk(wireHdr{Kind: kindReq})
	vbad[2] = 9
	f.Add(vbad)
	trunc := mk(wireHdr{Kind: kindReq, Flags: flagTraced, T1: 1})
	f.Add(trunc[:hdrSize])
	soup := mk(wireHdr{Kind: kindPong, Flags: 0xffff, T1: -1})
	f.Add(soup)

	f.Fuzz(func(t *testing.T, b []byte) {
		h, n, err := decodeHdr(b)
		if err != nil {
			return
		}
		// No over-read, and the consumed length matches the layout.
		if n > len(b) {
			t.Fatalf("decodeHdr consumed %d of %d bytes", n, len(b))
		}
		want := hdrSize
		if h.Flags&flagTraced != 0 {
			want += traceExtSize
		}
		if h.hasBlameExt() {
			want += blameExtSize
		}
		if n != want {
			t.Fatalf("consumed %d bytes, layout says %d (flags %#x)", n, want, h.Flags)
		}
		// Round-trip: re-encoding the decoded header must reproduce the
		// consumed prefix bit-for-bit (the parser invents nothing).
		out := make([]byte, h.wireBytes())
		if m := h.encode(out); m != n {
			t.Fatalf("re-encode wrote %d bytes, decode consumed %d", m, n)
		}
		if !bytes.Equal(out[:46], b[:46]) {
			t.Fatalf("fixed fields diverge after round-trip:\n in=%x\nout=%x", b[:46], out[:46])
		}
		if h.Flags&flagTraced != 0 && !bytes.Equal(out[hdrSize:hdrSize+8], b[hdrSize:hdrSize+8]) {
			t.Fatalf("trace extension diverges after round-trip")
		}
	})
}

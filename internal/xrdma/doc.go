// Package xrdma implements the X-RDMA middleware — the paper's primary
// contribution (the internal/core role in this repository's layout). It
// provides the three data structures (Context, Channel, Msg) and the small
// API surface of Table I on top of the verbs facade:
//
//   - a run-to-complete, per-context execution model with hybrid polling
//     (§IV-B);
//   - the mixed message model: small messages inline over SEND, large
//     messages announced over SEND and pulled by the receiving side with
//     fragmented RDMA READ — "read replace write" (§IV-C);
//   - the application-layer seq-ack window of Algorithm 1, which makes
//     channels RNR-free and application-aware (§V-B), with the NOP
//     deadlock breaker;
//   - keepalive probes built from zero-byte RDMA writes (§V-A);
//   - flow control by fragmentation and outstanding-WR queueing to
//     complement DCQCN under incast (§V-C);
//   - resource management: a per-context memory cache of 4 MB MRs and a
//     QP cache that recycles reset QPs to cut establishment time (§IV-E);
//   - the analysis framework: tracing with clock synchronisation,
//     per-channel statistics, online/offline configuration, fault
//     injection (Filter), TCP fallback (Mock) and a cluster monitor
//     (§VI).
package xrdma

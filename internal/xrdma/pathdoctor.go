package xrdma

import (
	"errors"
	"fmt"

	"xrdma/internal/sim"
	"xrdma/internal/telemetry"
)

// Path doctor: the gray-failure plane. The PR 3 health machine answers a
// binary question — is the peer reachable at all — and its remedies are
// heavyweight (QP re-establishment, TCP fallback). Production postmortems
// are dominated by the other failure shape: a browned-out optic on one
// spine path that RC go-back-N silently absorbs at a permanent latency
// and goodput cost. The doctor closes that gap with a per-channel EWMA
// score fed by deltas of counters the stack already keeps (QP
// retransmits, RNR NAKs, per-QP corrupt drops, RTT inflation against a
// learned baseline). The verdict — Clean / Suspect / Sick — is about the
// *path*, deliberately distinct from the health state: a sick path never
// triggers a needless QP teardown. The cure is ECMP re-pathing: rotate
// the QP's flow label (the RoCEv2 UDP-source-port trick) so the fabric's
// deterministic per-flow hash steers the connection onto a different
// equal-cost path, with seeded label choice, bounded rotations and a
// cooldown. Only when every tried path stays sick does the doctor
// escalate to the PR 3 recovery machine via ch.fail.

// PathVerdict classifies a channel's network path.
type PathVerdict uint8

const (
	// PathClean: no symptoms beyond noise.
	PathClean PathVerdict = iota
	// PathSuspect: elevated symptoms; keep watching, don't act yet.
	PathSuspect
	// PathSick: sustained symptoms; rotate the flow label.
	PathSick
)

func (v PathVerdict) String() string {
	switch v {
	case PathSuspect:
		return "suspect"
	case PathSick:
		return "sick"
	default:
		return "clean"
	}
}

// ErrPathSick is the escalation cause handed to the health machine when
// every rotation budgeted for the sick episode failed to find a clean
// path — at that point the fault is not one ECMP leg but the peer or the
// whole fabric slice, which is exactly the PR 3 machinery's job.
var ErrPathSick = errors.New("xrdma: every ECMP path stayed sick")

// Doctor tuning. The weights rank symptom severity: a retransmit means
// the RTO expired (whole-window stall), a corrupt drop means physical
// damage, an RNR NAK merely means the peer was briefly unprovisioned.
// Thresholds are in EWMA score points; one scan with a single retransmit
// already clears the suspect bar, sustained symptoms clear the sick bar.
const (
	pdWeightRetx    = 3.0
	pdWeightRNR     = 1.0
	pdWeightCorrupt = 2.0
	pdEWMA          = 0.5 // new-sample weight of the score EWMA
	pdSuspectScore  = 1.0
	pdSickScore     = 3.0
	// RTT inflation: mean-RTT / learned-baseline above this ratio adds
	// (ratio - bar) * weight score points, capped below the sick bar.
	// The cap is load-bearing: RTT is measured request→response, so a
	// backlog draining after a re-path (or a send-queue stall) reports
	// stale, enormous samples — corroborating evidence for Suspect, but
	// only the hardware counters (retransmits, corrupt drops), which
	// cannot implicate the new path, may push the verdict to Sick.
	pdRTTInflationBar    = 1.5
	pdRTTInflationWeight = 2.0
	pdRTTContribCap      = 1.9
	// Baseline learning rate while the path is symptom-free.
	pdBaselineEWMA = 0.1
	// Consecutive clean scans before a past episode's rotation count is
	// forgiven (a freshly rotated path must prove itself before the
	// budget resets).
	pdCleanScansToForgive = 4
	// Sick scans tolerated after the rotation budget is spent before the
	// doctor escalates to the health machine.
	pdSickScansToEscalate = 3
	// Peer hinting. Rotating this QP's flow label only re-paths its own
	// transmit direction; the symptoms a doctor reads off the RX side —
	// corrupt drops, inflated request→response RTT — implicate the path
	// the PEER's flow label picks, which only the peer can rotate. When a
	// sick episode's evidence is RX-dominated the doctor sends a
	// PATH_HINT control frame; the receiving doctor folds pdHintBoost
	// into its next scan as transmit-side evidence. The boost is sized so
	// a single hint only reaches Suspect — one false accusation never
	// rotates a healthy path — while a REPEATED accusation (another hint
	// within the streak window) doubles the boost and forces the sick
	// verdict: the peer has now said twice that its receive side is
	// suffering on the path our flow label picks.
	pdHintBoost           = 4.0
	pdHintStreakWindowMul = 8 // × PathRehashCooldown
)

// pathDoctor is the per-channel scorer state. It lives inside Channel
// and is driven synchronously from the context housekeeping tick — no
// events of its own, so a zero-fault run's event sequence is untouched.
type pathDoctor struct {
	score   float64
	verdict PathVerdict
	baseRTT float64 // learned clean-path mean RTT (ns)
	inited  bool

	// Counter watermarks for delta extraction.
	lastRetx    int64
	lastRNR     int64
	lastCorrupt int64

	// RTT accrual between scans (fed by deliver on every response).
	rttSum int64
	rttCnt int64

	// Sick-episode state.
	rotations     int // rotations spent this episode
	cleanScans    int
	sickScans     int // sick scans after the rotation budget ran out
	cooldownUntil sim.Time

	// Episode evidence, split by the direction it implicates: txEvid is
	// what rotating OUR flow label can cure (retransmits, RNR, peer
	// hints), rxEvid what only the peer's rotation can (RX corrupt
	// drops, round-trip inflation). Drives the hint-vs-rotate decision.
	txEvid        float64
	rxEvid        float64
	boost         float64 // pending PATH_HINT evidence, consumed next scan
	hintMuteUntil sim.Time
	hintStreak    int // consecutive hints within the streak window
	lastHintAt    sim.Time
	hintsSent     int64
	hintsRecv     int64

	rehashes      int64 // lifetime rotations (gauge)
	firstRehashAt sim.Time

	// log is the deterministic verdict/rehash history the grayhaul
	// digest compares bit-for-bit across runs and -j parallelism.
	log []string
}

// observeRTT accrues one request→response RTT sample. Plain field
// arithmetic on the delivery path; the scan consumes and resets it.
func (d *pathDoctor) observeRTT(rtt sim.Duration) {
	d.rttSum += int64(rtt)
	d.rttCnt++
}

// resync re-bases the counter watermarks, discarding accrued symptoms.
// Used when the channel is not scannable (degraded, mocked, closed) and
// after a recovery adoption, so a fresh QP never inherits stale blame.
func (d *pathDoctor) resync(retx, rnr, corrupt int64) {
	d.lastRetx, d.lastRNR, d.lastCorrupt = retx, rnr, corrupt
	d.rttSum, d.rttCnt = 0, 0
	d.txEvid, d.rxEvid, d.boost = 0, 0, 0
	d.hintStreak, d.lastHintAt = 0, 0
	d.inited = true
}

// resetEpisode clears verdict state after a recovery adoption: the new
// QP starts clean with a full rotation budget (lifetime counters and the
// learned RTT baseline survive).
func (d *pathDoctor) resetEpisode() {
	d.score = 0
	d.verdict = PathClean
	d.rotations = 0
	d.cleanScans = 0
	d.sickScans = 0
	d.cooldownUntil = 0
	d.txEvid, d.rxEvid, d.boost = 0, 0, 0
	d.hintStreak, d.lastHintAt = 0, 0
	d.inited = false
}

// pathScan drives every channel's doctor once per housekeeping tick, in
// QPN order so any seeded label draws consume the RNG deterministically
// regardless of map iteration order. Shared (mux) QPs are scanned after
// the exclusive channels, one doctor per QP, in creation order.
func (c *Context) pathScan() {
	if !c.cfg.PathDoctor || (len(c.channels) == 0 && len(c.muxQPs) == 0) {
		return
	}
	now := c.eng.Now()
	for _, ch := range c.sortedChannels() {
		if ch.mx != nil {
			continue // scanned through the shared QP below
		}
		ch.pathScan(now)
	}
	for _, mx := range c.muxQPs {
		mx.pathScan(now)
	}
}

// scoreScan folds one tick's counter deltas and RTT samples into the
// EWMA score and re-derives the verdict; reports whether the verdict
// changed. Shared by the per-channel and per-shared-QP scans.
func (d *pathDoctor) scoreScan(retx, rnr, corrupt int64) bool {
	dRetx := retx - d.lastRetx
	dRNR := rnr - d.lastRNR
	dCorrupt := corrupt - d.lastCorrupt
	d.lastRetx, d.lastRNR, d.lastCorrupt = retx, rnr, corrupt
	if dRetx < 0 {
		dRetx = 0
	}
	if dRNR < 0 {
		dRNR = 0
	}
	if dCorrupt < 0 {
		dCorrupt = 0
	}
	// txRaw implicates the path our own flow label picks; rxRaw the
	// peer's. A received PATH_HINT is the peer's RX evidence about our
	// TX path, so the pending boost lands on the tx side.
	txRaw := pdWeightRetx*float64(dRetx) + pdWeightRNR*float64(dRNR) + d.boost
	d.boost = 0
	rxRaw := pdWeightCorrupt * float64(dCorrupt)

	var mean float64
	if d.rttCnt > 0 {
		mean = float64(d.rttSum) / float64(d.rttCnt)
	}
	d.rttSum, d.rttCnt = 0, 0
	if mean > 0 {
		if d.baseRTT == 0 {
			d.baseRTT = mean
		} else if infl := mean / d.baseRTT; infl > pdRTTInflationBar {
			contrib := (infl - pdRTTInflationBar) * pdRTTInflationWeight
			if contrib > pdRTTContribCap {
				contrib = pdRTTContribCap
			}
			// Round-trip inflation cannot name a direction; it counts
			// toward the verdict but, for attribution, toward the side
			// only the peer can cure — our own rotation is already
			// justified by the hardware counters when the TX path is at
			// fault.
			rxRaw += contrib
		} else if txRaw == 0 && rxRaw == 0 {
			// Symptom-free scan: keep learning the clean baseline.
			d.baseRTT = (1-pdBaselineEWMA)*d.baseRTT + pdBaselineEWMA*mean
		}
	}
	d.txEvid += txRaw
	d.rxEvid += rxRaw

	d.score = (1-pdEWMA)*d.score + pdEWMA*(txRaw+rxRaw)

	v := PathClean
	switch {
	case d.score >= pdSickScore:
		v = PathSick
	case d.score >= pdSuspectScore:
		v = PathSuspect
	}
	if v == PathClean {
		// Episode over: attribution restarts at the next symptom.
		d.txEvid, d.rxEvid = 0, 0
	}
	if v == d.verdict {
		return false
	}
	d.verdict = v
	return true
}

// pathScan runs one scoring pass over this channel.
func (ch *Channel) pathScan(now sim.Time) {
	if ch.qp == nil {
		return // lazy descriptor (or mocked from birth): no path to judge
	}
	c := ch.ctx
	d := &ch.doctor
	retx := ch.qp.Counters.Retransmits
	rnr := ch.qp.Counters.RNRNakRecv
	corrupt := ch.qp.Counters.CorruptDrops
	if ch.closed || ch.mock != nil || ch.health != HealthHealthy {
		// Not our jurisdiction: the health machine owns the channel.
		// Keep the watermarks fresh so recovery traffic isn't blamed.
		d.resync(retx, rnr, corrupt)
		return
	}
	if !d.inited {
		d.resync(retx, rnr, corrupt)
		return
	}

	if d.scoreScan(retx, rnr, corrupt) {
		v := d.verdict
		c.tel.Flight.Record(now, telemetry.CatPathVerdict, int32(c.Node()), ch.qp.QPN, int64(v), int64(d.score*100))
		c.tel.Trace.Instant("path.verdict", c.track, now, int64(v))
		d.log = append(d.log, fmt.Sprintf("t=%v node=%d path=%v score=%d", now, c.Node(), v, int64(d.score*100)))
		if ch.onPathVerdict != nil {
			ch.onPathVerdict(v)
		}
	}

	switch d.verdict {
	case PathClean:
		d.sickScans = 0
		if d.rotations > 0 {
			d.cleanScans++
			if d.cleanScans >= pdCleanScansToForgive {
				d.rotations = 0
				d.cleanScans = 0
			}
		}
	case PathSuspect:
		d.cleanScans = 0
	case PathSick:
		d.cleanScans = 0
		d.maybeHint(c, now, func() { ch.sendCtrl(kindPathHint) })
		d.rotateOrEscalate(c, ch.qp.QPN, now, func(err error) { ch.fail(err) })
	}
}

// maybeHint sends the peer a PATH_HINT when this sick episode's evidence
// is dominated by symptoms only the peer's flow-label rotation can cure
// (RX corrupt drops, round-trip inflation). Rate-limited by the rehash
// cooldown so a long-sick episode nudges the peer once per settle
// window, not once per scan.
func (d *pathDoctor) maybeHint(c *Context, now sim.Time, send func()) {
	if send == nil || now < d.hintMuteUntil {
		return
	}
	if d.rxEvid == 0 || d.rxEvid < d.txEvid {
		return
	}
	d.hintMuteUntil = now.Add(c.cfg.PathRehashCooldown)
	d.hintsSent++
	c.Stats.PathHints++
	c.tel.Trace.Instant("path.hint", c.track, now, 0)
	d.log = append(d.log, fmt.Sprintf("t=%v node=%d hint-sent", now, c.Node()))
	send()
}

// noteHint folds a received PATH_HINT into the next scan: the peer's
// receive side is suffering on the path OUR flow label picks. Hints in
// a streak (separated by less than the streak window) escalate the
// boost; a lone hint cannot push a symptom-free doctor past Suspect.
func (d *pathDoctor) noteHint(c *Context, now sim.Time) {
	d.hintsRecv++
	c.Stats.PathHintsRecv++
	if d.lastHintAt != 0 && now.Sub(d.lastHintAt) <= pdHintStreakWindowMul*c.cfg.PathRehashCooldown {
		d.hintStreak++
	} else {
		d.hintStreak = 1
	}
	d.lastHintAt = now
	b := pdHintBoost
	if d.hintStreak > 1 {
		b = 2 * pdHintBoost
	}
	if d.boost < b {
		d.boost = b
	}
	d.log = append(d.log, fmt.Sprintf("t=%v node=%d hint-recv #%d", now, c.Node(), d.hintStreak))
}

// rotateOrEscalate is the Sick-verdict remedy: rotate the flow label
// while the episode budget lasts, otherwise count the path as terminally
// sick and hand the QP's owner to the health machine through escalate
// (ch.fail for exclusive channels, mx.fail for shared QPs).
func (d *pathDoctor) rotateOrEscalate(c *Context, qpn uint32, now sim.Time, escalate func(error)) {
	if now < d.cooldownUntil {
		// Give the freshly rotated path its settle time before judging
		// it (in-flight go-back-N recovery from the old path still bleeds
		// into the counters).
		return
	}
	if d.rotations < c.cfg.PathRehashLimit {
		// Seeded label choice: deterministic per run, never zero (zero
		// means "canonical path", the one we are fleeing).
		label := c.rng.Uint64() | 1
		if err := c.vctx.ModifyFlowLabel(qpn, label); err != nil {
			c.logf("path doctor: rehash qpn=%d failed: %v", qpn, err)
			d.sickScans++ // an unrotatable QP burns escalation credit
		} else {
			sickScore := int64(d.score * 100) // the score that triggered this rotation
			d.rotations++
			d.rehashes++
			if d.firstRehashAt == 0 {
				d.firstRehashAt = now
			}
			c.Stats.PathRehashes++
			d.cooldownUntil = now.Add(c.cfg.PathRehashCooldown)
			// The new path is judged on its own symptoms: drop the score
			// back to the suspect bar rather than zero so a still-sick
			// path re-crosses the sick bar within a scan or two.
			d.score = pdSuspectScore
			d.sickScans = 0
			d.txEvid, d.rxEvid = 0, 0
			c.tel.Flight.Record(now, telemetry.CatPathRehash, int32(c.Node()), qpn, int64(d.rotations), int64(label&0xffff))
			c.tel.Trace.Instant("path.rehash", c.track, now, int64(d.rotations))
			d.log = append(d.log, fmt.Sprintf("t=%v node=%d rehash #%d", now, c.Node(), d.rotations))
			c.logf("path doctor: qpn=%d sick (score=%d), rotated flow label (#%d)", qpn, sickScore, d.rotations)
			return
		}
	} else {
		d.sickScans++
	}
	if d.sickScans >= pdSickScansToEscalate {
		c.Stats.PathEscalations++
		d.log = append(d.log, fmt.Sprintf("t=%v node=%d escalate", now, c.Node()))
		c.logf("path doctor: qpn=%d every tried path sick, escalating to recovery", qpn)
		d.resetEpisode()
		escalate(ErrPathSick)
	}
}

// --- channel surface ---------------------------------------------------------

// doctorRef resolves the doctor that owns this channel's path: the
// shared QP's doctor when muxed (one path, one scorer, shared by every
// channel on the QP), the channel's own otherwise.
func (ch *Channel) doctorRef() *pathDoctor {
	if ch.mx != nil {
		return &ch.mx.doctor
	}
	return &ch.doctor
}

// PathVerdict reports the doctor's current classification of this
// channel's network path.
func (ch *Channel) PathVerdict() PathVerdict { return ch.doctorRef().verdict }

// PathScore reports the EWMA path score in centi-points (what the
// path_score gauge exports).
func (ch *Channel) PathScore() int64 { return int64(ch.doctorRef().score * 100) }

// Rehashes reports lifetime flow-label rotations on this channel's path.
func (ch *Channel) Rehashes() int64 { return ch.doctorRef().rehashes }

// FirstRehashAt reports when the doctor first rotated this channel's
// flow label (0 = never) — drills assert the detection window with it.
func (ch *Channel) FirstRehashAt() sim.Time { return ch.doctorRef().firstRehashAt }

// FlowHash exposes the QP's effective ECMP flow key so experiments can
// predict (and then brown out) the exact spine path this channel rides.
func (ch *Channel) FlowHash() uint64 {
	if ch.qp == nil {
		return 0
	}
	return ch.qp.FlowHash()
}

// PathLog returns the doctor's deterministic verdict/rehash history.
func (ch *Channel) PathLog() []string { return ch.doctorRef().log }

// OnPathVerdict installs an observer for verdict transitions.
func (ch *Channel) OnPathVerdict(fn func(PathVerdict)) { ch.onPathVerdict = fn }

package xrdma

import (
	"runtime"
	"testing"

	"xrdma/internal/fabric"
)

// BenchmarkIdleChannelFootprint measures what one idle flyweight channel
// descriptor costs on the heap — the number the 4000-node fit depends on.
// ChannelTo allocates the descriptor and its registry slot but no QP, no
// window, no buffers and no gauges; bytes/conn is the end-to-end heap
// delta per descriptor including its share of the context's cid map.
func BenchmarkIdleChannelFootprint(b *testing.B) {
	w := newWorld(b, 2, func(_ int, cfg *Config) {
		cfg.QPsPerPeer = 2
		cfg.ChannelGaugeLimit = 8
	})
	ctx := w.ctxs[0]
	chans := make([]*Channel, 0, b.N)

	runtime.GC()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := ctx.ChannelTo(fabric.NodeID(1), 7000)
		if err != nil {
			b.Fatal(err)
		}
		chans = append(chans, ch)
	}
	b.StopTimer()

	runtime.GC()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/float64(b.N), "bytes/conn")
	} else {
		b.ReportMetric(0, "bytes/conn")
	}
	runtime.KeepAlive(chans)
}

// BenchmarkMuxSharedQPSend times one request/response round trip on a
// channel multiplexed over a shared QP pool — the per-message cost of the
// demux plane (wire-header channel routing, SRQ recycling, window
// accounting) on top of the raw rnic send path. Informational: the
// allocs/op here include the Msg plumbing; the 0-alloc gate lives on
// rnic's BenchmarkUntracedSendPath.
func BenchmarkMuxSharedQPSend(b *testing.B) {
	w := newWorld(b, 2, muxKnobs(2))
	clients, servers := openMuxed(b, w, 0, 1, 6000, 4)
	for _, srv := range servers {
		echoServer(srv)
	}
	payload := make([]byte, 64)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := clients[i%len(clients)]
		var got bool
		err := ch.SendMsg(payload, 0, func(m *Msg, err error) {
			if err != nil {
				b.Fatalf("response err: %v", err)
			}
			got = true
		})
		if err != nil {
			b.Fatal(err)
		}
		w.eng.Run()
		if !got {
			b.Fatal("no response")
		}
	}
}

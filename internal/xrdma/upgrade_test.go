package xrdma

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"xrdma/internal/fabric"
	"xrdma/internal/sim"
	"xrdma/internal/verbs"
)

// --- negotiation units -------------------------------------------------------

func TestNegotiateMatrix(t *testing.T) {
	v2caps := baselineCaps | capDrainHint
	cases := []struct {
		name string
		a, b chanHello
		ver  uint8
		caps uint32
		ok   bool
	}{
		{"v1-v1", chanHello{1, 1, baselineCaps}, chanHello{1, 1, baselineCaps}, 1, baselineCaps, true},
		{"v2-v1", chanHello{1, 2, v2caps}, chanHello{1, 1, baselineCaps}, 1, baselineCaps, true},
		{"v2-v2", chanHello{1, 2, v2caps}, chanHello{1, 2, v2caps}, 2, v2caps, true},
		{"disjoint", chanHello{2, 2, v2caps}, chanHello{1, 1, baselineCaps}, 0, 0, false},
		{"overlap-edge", chanHello{1, 2, capBlame}, chanHello{2, 3, baselineCaps}, 2, capBlame, true},
	}
	for _, tc := range cases {
		ver, caps, ok := negotiate(tc.a, tc.b)
		if ver != tc.ver || caps != tc.caps || ok != tc.ok {
			t.Errorf("%s: negotiate(%+v, %+v) = (%d, %#x, %v), want (%d, %#x, %v)",
				tc.name, tc.a, tc.b, ver, caps, ok, tc.ver, tc.caps, tc.ok)
		}
		// Negotiation must be symmetric.
		rver, rcaps, rok := negotiate(tc.b, tc.a)
		if rver != ver || rcaps != caps || rok != ok {
			t.Errorf("%s: negotiate is asymmetric", tc.name)
		}
	}
}

func TestChanHelloCodec(t *testing.T) {
	h := chanHello{minVer: 1, maxVer: 2, caps: baselineCaps | capDrainHint}
	got, ok := parseChanHello(encodeChanHello(h))
	if !ok || got != h {
		t.Fatalf("roundtrip: got %+v ok=%v, want %+v", got, ok, h)
	}
	if _, ok := parseChanHello(nil); ok {
		t.Fatal("nil private data parsed as a hello")
	}
	if _, ok := parseChanHello([]byte{1, 2, 3}); ok {
		t.Fatal("short blob parsed as a hello")
	}
	foreign := encodeChanHello(h)
	foreign[0] ^= 0xff // break the magic
	if _, ok := parseChanHello(foreign); ok {
		t.Fatal("foreign magic parsed as a hello")
	}
}

// --- handoff blob hardening --------------------------------------------------

func TestHandoffDecodeHostile(t *testing.T) {
	le := binary.LittleEndian
	// base is a well-formed blob header announcing n channel records.
	base := func(n uint32) []byte {
		b := le.AppendUint16(nil, handoffMagic)
		b = append(b, handoffVer, 0)
		b = le.AppendUint64(b, 7) // msgSeq floor
		b = le.AppendUint32(b, n)
		return b
	}
	// recPrefix is one record up to (and including) the tail count.
	recPrefix := func(nq uint8, nt uint32) []byte {
		b := le.AppendUint32(nil, 1) // peer
		b = append(b, nq)
		for i := uint8(0); i < nq; i++ {
			b = le.AppendUint32(b, uint32(100+i))
		}
		b = le.AppendUint32(b, 55)         // peerQPN
		b = le.AppendUint32(b, 55)         // peerQPN0
		b = append(b, 1)                   // negVer
		b = le.AppendUint32(b, baselineCaps)
		b = append(b, make([]byte, 8)...)  // label
		b = le.AppendUint64(b, 10)         // txFloor
		b = le.AppendUint64(b, 12)         // rxFloor
		b = le.AppendUint32(b, nt)         // tail count
		return b
	}

	hostile := []struct {
		name string
		blob []byte
	}{
		{"nil", nil},
		{"bad-magic", append(le.AppendUint16(nil, 0xBEEF), make([]byte, 14)...)},
		{"future-version", func() []byte {
			b := base(0)
			b[2] = 9
			return b
		}()},
		{"truncated-header", base(0)[:6]},
		{"channel-count-bomb", base(1 << 20)},
		{"truncated-record", base(1)},
		{"qpn-count-bomb", append(append(base(1), le.AppendUint32(nil, 1)...), 65)},
		{"tail-count-bomb", append(base(1), recPrefix(1, handoffMaxTail+1)...)},
		{"tail-payload-overrun", func() []byte {
			b := append(base(1), recPrefix(0, 1)...)
			b = append(b, 1, 0)            // kind, oneWay
			b = le.AppendUint64(b, 3)      // msgID
			b = le.AppendUint32(b, 64)     // size
			b = le.AppendUint32(b, 1<<30)  // dataLen far beyond the buffer
			return b
		}()},
	}
	for _, tc := range hostile {
		if _, err := decodeHandoff(tc.blob); !errors.Is(err, errBadHandoff) {
			t.Errorf("%s: decodeHandoff = %v, want errBadHandoff", tc.name, err)
		}
	}

	// A well-formed empty blob decodes cleanly and carries the MsgID floor.
	h, err := decodeHandoff(base(0))
	if err != nil || len(h.chans) != 0 || h.msgSeq != 7 {
		t.Fatalf("empty blob: h=%+v err=%v", h, err)
	}
}

// --- on-the-wire negotiation -------------------------------------------------

// TestVersionNegotiationWire drives the mixed-version establishment
// matrix: v2↔v2 settles on 2 with the drain-hint capability, any pairing
// with a legacy (no-hello) build settles on 1 with the baseline caps, and
// a disjoint range is refused loudly with a counted mismatch.
func TestVersionNegotiationWire(t *testing.T) {
	w := newWorld(t, 4, func(i int, cfg *Config) {
		switch i {
		case 1, 2:
			cfg.ProtoVerMax = 2 // v2-capable, still speaks v1
		case 3:
			cfg.ProtoVerMin, cfg.ProtoVerMax = 2, 2 // v2-only
		}
	})

	cli, srv := w.connect(t, 1, 2, 5000)
	if cli.NegotiatedVersion() != 2 || srv.NegotiatedVersion() != 2 {
		t.Fatalf("v2-v2 settled (%d, %d), want (2, 2)", cli.NegotiatedVersion(), srv.NegotiatedVersion())
	}
	if !cli.peerCap(capDrainHint) || !srv.peerCap(capDrainHint) {
		t.Fatal("v2-v2 pair lost the drain-hint capability")
	}

	cli, srv = w.connect(t, 0, 2, 5001) // legacy dials v2
	if cli.NegotiatedVersion() != 1 || srv.NegotiatedVersion() != 1 {
		t.Fatalf("legacy-v2 settled (%d, %d), want (1, 1)", cli.NegotiatedVersion(), srv.NegotiatedVersion())
	}
	if cli.PeerCaps() != baselineCaps || srv.PeerCaps() != baselineCaps {
		t.Fatalf("legacy-v2 caps (%#x, %#x), want baseline", cli.PeerCaps(), srv.PeerCaps())
	}

	cli, srv = w.connect(t, 1, 0, 5002) // v2 dials legacy
	if cli.NegotiatedVersion() != 1 || srv.NegotiatedVersion() != 1 {
		t.Fatalf("v2-legacy settled (%d, %d), want (1, 1)", cli.NegotiatedVersion(), srv.NegotiatedVersion())
	}
	if cli.peerCap(capDrainHint) || srv.peerCap(capDrainHint) {
		t.Fatal("legacy peer granted the v2-only drain hint")
	}

	// Disjoint: the v2-only build dials a legacy listener.
	var dialErr error
	w.ctxs[3].Connect(fabric.NodeID(0), 5002, func(_ *Channel, err error) { dialErr = err })
	w.eng.Run()
	if dialErr == nil || !strings.Contains(dialErr.Error(), "unsupported header version") {
		t.Fatalf("disjoint dial error = %v, want version rejection", dialErr)
	}
	if w.ctxs[0].Stats.VerMismatches != 1 {
		t.Fatalf("legacy listener counted %d mismatches, want 1", w.ctxs[0].Stats.VerMismatches)
	}

	// Disjoint the other way: a legacy build dials the v2-only listener.
	w.ctxs[3].OnChannel(func(*Channel) {})
	if err := w.ctxs[3].Listen(5003); err != nil {
		t.Fatal(err)
	}
	dialErr = nil
	w.ctxs[0].Connect(fabric.NodeID(3), 5003, func(_ *Channel, err error) { dialErr = err })
	w.eng.Run()
	if dialErr == nil || !strings.Contains(dialErr.Error(), "unsupported header version") {
		t.Fatalf("legacy→v2-only dial error = %v, want version rejection", dialErr)
	}
	if w.ctxs[3].Stats.VerMismatches != 1 {
		t.Fatalf("v2-only listener counted %d mismatches, want 1", w.ctxs[3].Stats.VerMismatches)
	}
}

// --- drain -------------------------------------------------------------------

// TestDrainRefusesEstablishment: a draining node refuses new channels
// with ErrDraining (not a corruption-shaped failure) and counts the
// refusals; a second Drain is rejected.
func TestDrainRefusesEstablishment(t *testing.T) {
	w := newWorld(t, 2, nil)
	w.ctxs[1].OnChannel(func(*Channel) {})
	if err := w.ctxs[1].Listen(5000); err != nil {
		t.Fatal(err)
	}
	var blob []byte
	if err := w.ctxs[1].Drain(func(b []byte) { blob = b }); err != nil {
		t.Fatal(err)
	}
	w.eng.Run()
	if w.ctxs[1].DrainPhase() != DrainDrained {
		t.Fatalf("phase %v, want drained", w.ctxs[1].DrainPhase())
	}
	h, err := decodeHandoff(blob)
	if err != nil || len(h.chans) != 0 {
		t.Fatalf("idle-node handoff: %+v err=%v", h, err)
	}

	var dialErr error
	w.ctxs[0].Connect(fabric.NodeID(1), 5000, func(_ *Channel, err error) { dialErr = err })
	w.eng.Run()
	if !errors.Is(dialErr, ErrDraining) {
		t.Fatalf("dial into draining node: %v, want ErrDraining", dialErr)
	}
	if w.ctxs[1].Stats.DrainRefusals == 0 {
		t.Fatal("refusal not counted")
	}
	if err := w.ctxs[1].Drain(nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("double Drain = %v, want ErrDraining", err)
	}
}

// TestDrainWaitsForInflight: a request in flight when Drain starts runs
// to completion — the waiter is served, not failed — before the node
// moves to Drained.
func TestDrainWaitsForInflight(t *testing.T) {
	w := newWorld(t, 2, nil)
	cli, srv := w.connect(t, 0, 1, 5000)
	srv.OnMessage(func(m *Msg) {
		w.eng.AfterBg(3*sim.Millisecond, func() { m.Reply([]byte("late"), 0) })
	})
	var gotResp bool
	var respErr error
	if err := cli.SendMsg([]byte("req"), 0, func(m *Msg, err error) {
		gotResp, respErr = err == nil, err
	}); err != nil {
		t.Fatal(err)
	}
	var drainedAt sim.Time
	w.eng.AfterBg(100*sim.Microsecond, func() {
		if err := w.ctxs[0].Drain(func([]byte) { drainedAt = w.eng.Now() }); err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	w.eng.RunFor(30 * sim.Millisecond)
	if !gotResp {
		t.Fatalf("in-flight request failed during graceful drain: %v", respErr)
	}
	if drainedAt == 0 {
		t.Fatal("drain never completed")
	}
	if drainedAt < sim.Time(3*sim.Millisecond) {
		t.Fatalf("drained at %v, before the in-flight response landed", drainedAt)
	}
}

// TestDrainForcedFailsWaiters: when the deadline expires with a response
// still owed, the waiter fails loudly with ErrDraining and the request
// stays replayable in the handoff tail. (Handoff serialization needs the
// recovery plane — without it there is nothing a restarted instance could
// re-establish through, so the blob only covers recovery-indexed
// channels.)
func TestDrainForcedFailsWaiters(t *testing.T) {
	w := newRecoverWorld(t, 2, func(i int, cfg *Config) { cfg.DrainDeadline = 2 * sim.Millisecond })
	cli, srv := w.connect(t, 0, 1, 5000)
	srv.OnMessage(func(*Msg) {}) // never replies
	var werr error
	if err := cli.SendMsg([]byte("req"), 0, func(_ *Msg, err error) { werr = err }); err != nil {
		t.Fatal(err)
	}
	var blob []byte
	w.eng.AfterBg(200*sim.Microsecond, func() {
		if err := w.ctxs[0].Drain(func(b []byte) { blob = b }); err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	w.eng.RunFor(30 * sim.Millisecond)
	if !errors.Is(werr, ErrDraining) {
		t.Fatalf("forced-drain waiter got %v, want ErrDraining", werr)
	}
	h, err := decodeHandoff(blob)
	if err != nil || len(h.chans) != 1 {
		t.Fatalf("handoff: %+v err=%v", h, err)
	}
	if h.chans[0].peer != 1 || h.msgSeq == 0 {
		t.Fatalf("handoff record: %+v msgSeq=%d", h.chans[0], h.msgSeq)
	}
}

// TestDrainFlushesShedParkedAttaches: lazy mux channels parked in the
// admission FIFO by a shed gate (PR 8) must not deadlock a drain — the
// flush fails their callbacks with ErrDraining instead of serving or
// stranding them.
func TestDrainFlushesShedParkedAttaches(t *testing.T) {
	w := newWorld(t, 2, func(i int, cfg *Config) { cfg.QPsPerPeer = 2 })
	w.ctxs[1].OnChannel(func(*Channel) {})
	if err := w.ctxs[1].Listen(6000); err != nil {
		t.Fatal(err)
	}
	c0 := w.ctxs[0]
	c0.memPressure = true // shed gate: every attach parks in the FIFO
	var errs []error
	for k := 0; k < 3; k++ {
		ch, err := c0.ChannelTo(fabric.NodeID(1), 6000)
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.SendMsg([]byte("x"), 0, func(_ *Msg, err error) {
			errs = append(errs, err)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(c0.attachQ); got != 3 {
		t.Fatalf("parked %d attaches, want 3", got)
	}
	if err := c0.Drain(func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	w.eng.Run()
	if len(c0.attachQ) != 0 {
		t.Fatalf("admission FIFO not flushed: %d left", len(c0.attachQ))
	}
	if len(errs) != 3 {
		t.Fatalf("%d of 3 parked sends resolved", len(errs))
	}
	for _, err := range errs {
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("parked send resolved with %v, want ErrDraining", err)
		}
	}
	if c0.DrainPhase() != DrainDrained {
		t.Fatalf("phase %v, want drained", c0.DrainPhase())
	}
	if c0.Stats.DrainRefusals < 3 {
		t.Fatalf("refusals %d, want ≥3", c0.Stats.DrainRefusals)
	}
}

// --- restart -----------------------------------------------------------------

// restartCtx replaces one node's context in place, the white-box analogue
// of cluster.Restart: the NIC, CM endpoint and TCP stack survive, the
// middleware instance is rebuilt (possibly at a mutated configuration).
func restartCtx(w *testWorld, i int, mutate func(*Config)) *Context {
	old := w.ctxs[i]
	cfg := old.Config()
	if mutate != nil {
		mutate(&cfg)
	}
	old.Shutdown()
	vc := verbs.Open(w.nics[i])
	ctx := NewContext(Options{
		Verbs: vc, CM: old.cm, Host: old.host, Config: cfg, Monitor: w.mon,
		TCP: old.tcp, MockPort: old.mockPort, RecoverPort: old.recoverPort,
		Seed: uint64(i + 101),
	})
	w.ctxs[i] = ctx
	return ctx
}

// TestRollingRestartExactlyOnce: drain the server under a live request
// stream, restart it at a bumped protocol version, rehydrate the handoff
// blob, and let the recovery plane re-establish — zero lost, zero
// duplicated operations, and the rehydrated channel keeps its v1 verdict
// with the legacy peer.
func TestRollingRestartExactlyOnce(t *testing.T) {
	w := newRecoverWorld(t, 2, func(i int, cfg *Config) {
		cfg.DrainDeadline = 4 * sim.Millisecond
	})
	cli, srv := w.connect(t, 0, 1, 5000)
	s := newIDStream(srv)
	s.run(w.eng, cli, 500*sim.Microsecond, 150*sim.Millisecond)

	var newSrv *Context
	var rehydrated *Channel
	w.eng.AfterBg(20*sim.Millisecond, func() {
		oldSeq := w.ctxs[1].msgSeq
		err := w.ctxs[1].Drain(func(blob []byte) {
			h, derr := decodeHandoff(blob)
			if derr != nil {
				t.Errorf("handoff decode: %v", derr)
				return
			}
			if len(h.chans) != 1 || h.chans[0].peer != 0 {
				t.Errorf("handoff: %+v", h.chans)
			}
			newSrv = restartCtx(w, 1, func(cfg *Config) { cfg.ProtoVerMax = 2 })
			newSrv.OnChannel(func(ch *Channel) {
				rehydrated = ch
				ch.OnMessage(func(m *Msg) {
					id := binary.LittleEndian.Uint64(m.Data)
					s.recvd[id]++
					m.Reply(m.Data[:8], 0)
				})
			})
			if rerr := newSrv.Rehydrate(blob); rerr != nil {
				t.Errorf("rehydrate: %v", rerr)
			}
			if newSrv.msgSeq < oldSeq {
				t.Errorf("MsgID floor regressed: %d < %d", newSrv.msgSeq, oldSeq)
			}
		})
		if err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	w.eng.RunFor(400 * sim.Millisecond)

	if newSrv == nil {
		t.Fatal("restart never happened")
	}
	if newSrv.Stats.Rehydrated != 1 {
		t.Fatalf("Rehydrated = %d, want 1", newSrv.Stats.Rehydrated)
	}
	if rehydrated == nil || rehydrated.Closed() {
		t.Fatal("rehydrated channel dead")
	}
	if cli.Health() != HealthHealthy || cli.Mocked() {
		t.Fatalf("client ended health=%v mocked=%v, want healthy over RDMA", cli.Health(), cli.Mocked())
	}
	if rehydrated.Health() != HealthHealthy {
		t.Fatalf("rehydrated channel ended %v, want healthy", rehydrated.Health())
	}
	// The restarted build is v2-capable, but this channel was negotiated
	// with a legacy peer: the serialized verdict pins it to v1.
	if rehydrated.NegotiatedVersion() != hdrVersion {
		t.Fatalf("rehydrated channel speaks v%d, want v%d", rehydrated.NegotiatedVersion(), hdrVersion)
	}
	if w.ctxs[0].Stats.Degraded == 0 {
		t.Fatal("client never noticed the restart — test is vacuous")
	}
	s.check(t)
}

// TestRestartDuringRendezvousMemClean: the sender restarts while a large
// rendezvous transfer is mid-pull. The transfer must land exactly once
// (replayed from the handoff tail, deduped by the window), and no staged
// or receive memory may leak on any instance — old, new, or peer.
func TestRestartDuringRendezvousMemClean(t *testing.T) {
	w := newRecoverWorld(t, 2, func(i int, cfg *Config) {
		cfg.DrainDeadline = 100 * sim.Microsecond
	})
	cli, srv := w.connect(t, 0, 1, 5010)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	deliveries := 0
	srv.OnMessage(func(m *Msg) {
		if !bytes.Equal(m.Data, payload) {
			t.Error("rendezvous payload corrupted across restart")
		}
		deliveries++
		m.Reply([]byte("ok"), 0)
	})
	var werr error
	if err := cli.SendMsg(payload, 0, func(_ *Msg, err error) { werr = err }); err != nil {
		t.Fatal(err)
	}

	var newCli *Context
	var newCh *Channel
	w.eng.AfterBg(30*sim.Microsecond, func() {
		err := w.ctxs[0].Drain(func(blob []byte) {
			old := w.ctxs[0]
			newCli = restartCtx(w, 0, nil)
			if old.Mem.InUseBytes != 0 {
				t.Errorf("old context leaks %dB after Shutdown", old.Mem.InUseBytes)
			}
			newCli.OnChannel(func(ch *Channel) { newCh = ch })
			if rerr := newCli.Rehydrate(blob); rerr != nil {
				t.Errorf("rehydrate: %v", rerr)
			}
		})
		if err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	w.eng.RunFor(300 * sim.Millisecond)

	if deliveries != 1 {
		t.Fatalf("rendezvous delivered %d times, want exactly once", deliveries)
	}
	// The waiter was failed at the forced deadline; the operation itself
	// survived in the tail — that is the drain contract.
	if werr != nil && !errors.Is(werr, ErrDraining) {
		t.Fatalf("waiter failed with %v, want ErrDraining (or served)", werr)
	}
	if w.ctxs[1].Stats.Degraded == 0 {
		t.Fatal("server never saw the restart — transfer completed before drain, test is vacuous")
	}
	if newCh == nil {
		t.Fatal("no rehydrated channel")
	}
	newCh.Close()
	w.eng.RunFor(20 * sim.Millisecond)
	if newCli.Mem.InUseBytes != 0 {
		t.Errorf("restarted client leaks %dB", newCli.Mem.InUseBytes)
	}
	if w.ctxs[1].Mem.InUseBytes != 0 {
		t.Errorf("server leaks %dB", w.ctxs[1].Mem.InUseBytes)
	}
}

package xrdma

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestHdrRoundTrip(t *testing.T) {
	h := wireHdr{
		Kind: kindLargeReq, Ver: hdrVersion, Flags: flagOneWay, Seq: 12345, Ack: 12000,
		MsgID: 999, Size: 1 << 20, Addr: 0x7f00_1234_0000, RKey: 42,
	}
	buf := make([]byte, h.wireBytes())
	n := h.encode(buf)
	if n != hdrSize {
		t.Fatalf("encoded %d bytes", n)
	}
	got, n2, err := decodeHdr(buf)
	if err != nil || n2 != n {
		t.Fatalf("decode: %v (%d)", err, n2)
	}
	if got != h {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", got, h)
	}
}

func TestHdrTraceExtension(t *testing.T) {
	h := wireHdr{Kind: kindReq, Flags: flagTraced, Seq: 1, T1: 123456789}
	buf := make([]byte, h.wireBytes())
	n := h.encode(buf)
	if n != hdrSize+traceExtSize {
		t.Fatalf("traced header length %d", n)
	}
	got, _, err := decodeHdr(buf)
	if err != nil || got.T1 != 123456789 {
		t.Fatalf("trace extension lost: %v %d", err, got.T1)
	}
}

func TestHdrRejectsGarbage(t *testing.T) {
	if _, _, err := decodeHdr(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, _, err := decodeHdr(make([]byte, hdrSize)); err == nil {
		t.Fatal("zero magic decoded")
	}
	h := wireHdr{Kind: kindReq}
	buf := make([]byte, hdrSize)
	h.encode(buf)
	buf[2] = 99 // wrong version
	if _, _, err := decodeHdr(buf); !errors.Is(err, errVersion) {
		t.Fatalf("foreign version must surface errVersion, got %v", err)
	}
	buf[2] = 0 // below the negotiable floor
	if _, _, err := decodeHdr(buf); !errors.Is(err, errVersion) {
		t.Fatalf("version 0 must surface errVersion, got %v", err)
	}
	buf[2] = hdrVersionMax // top of the negotiable window decodes fine
	if _, _, err := decodeHdr(buf); err != nil {
		t.Fatalf("hdrVersionMax must decode: %v", err)
	}
	// Truncated trace extension.
	ht := wireHdr{Kind: kindReq, Flags: flagTraced}
	buf2 := make([]byte, hdrSize+traceExtSize)
	ht.encode(buf2)
	if _, _, err := decodeHdr(buf2[:hdrSize]); err == nil {
		t.Fatal("truncated trace extension decoded")
	}
}

// Property: encode/decode is the identity on all field values.
func TestHdrRoundTripProperty(t *testing.T) {
	prop := func(kind uint8, flags uint16, seq, ack, msgID, addr uint64, size, rkey uint32, t1 int64) bool {
		// Ver ranges over the negotiable window; 0 encodes as hdrVersion
		// and decodes back as the explicit value.
		ver := hdrVersion + uint8(kind)%(hdrVersionMax-hdrVersion+1)
		h := wireHdr{
			Kind: msgKind(kind % 9), Ver: ver, Flags: flags & (flagTraced | flagOneWay),
			Seq: seq, Ack: ack, MsgID: msgID, Size: size, Addr: addr, RKey: rkey,
		}
		if h.Flags&flagTraced != 0 {
			h.T1 = t1
		}
		buf := make([]byte, h.wireBytes())
		h.encode(buf)
		got, _, err := decodeHdr(buf)
		return err == nil && got == h
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKindProperties(t *testing.T) {
	for k := kindReq; k <= kindPong; k++ {
		if k.String() == "?" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	windowedKinds := map[msgKind]bool{kindReq: true, kindResp: true, kindLargeReq: true, kindLargeResp: true}
	for k := kindReq; k <= kindPong; k++ {
		if k.windowed() != windowedKinds[k] {
			t.Fatalf("windowed(%v) wrong", k)
		}
	}
}

package xrdma

import "xrdma/internal/rnic"

// QPCache recycles reset queue pairs so connection establishment skips the
// expensive CreateQP hardware command (§IV-E: establishment drops from
// 3946 µs to 2451 µs, a 38% saving in the paper's measurement). QPs enter
// the cache when channels close or break; Connect pops one when available.
type QPCache struct {
	ctx  *Context
	free []*rnic.QP
	cap  int

	Hits, Misses int64
	Recycled     int64
}

func newQPCache(ctx *Context, capacity int) *QPCache {
	return &QPCache{ctx: ctx, cap: capacity}
}

// Len reports cached QPs.
func (q *QPCache) Len() int { return len(q.free) }

// Get pops a recycled QP, or nil (miss → caller creates).
func (q *QPCache) Get() *rnic.QP {
	if len(q.free) == 0 {
		q.Misses++
		return nil
	}
	qp := q.free[len(q.free)-1]
	q.free = q.free[:len(q.free)-1]
	q.Hits++
	return qp
}

// Put resets a QP and shelves it. QPs in any state are accepted: the
// reset (IBV_QPS_RESET, §IV-E) clears error state and makes them
// reusable. Beyond capacity the QP is destroyed instead.
func (q *QPCache) Put(qp *rnic.QP) {
	if qp == nil {
		return
	}
	nic := q.ctx.vctx.NIC
	if qp.SendQueueLen() > 0 {
		// In-flight WRs must flush, not vanish: their completion callbacks
		// own staged buffers and flow-control slots, and a silent reset
		// would strand both. Destroy runs the error flush; the cache just
		// forgoes reuse this once.
		nic.DestroyQP(qp)
		return
	}
	if len(q.free) >= q.cap {
		nic.DestroyQP(qp)
		return
	}
	if err := nic.ModifyQPNow(qp, rnic.QPReset, 0, 0); err != nil {
		nic.DestroyQP(qp)
		return
	}
	q.Recycled++
	q.free = append(q.free, qp)
}

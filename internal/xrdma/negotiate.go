package xrdma

import (
	"encoding/binary"

	"xrdma/internal/fabric"
	"xrdma/internal/telemetry"
)

// Protocol version negotiation (hot-upgrade plane). X-RDMA's header was
// designed so the middleware can roll through a fleet without a
// synchronized restart: mixed-version clusters are a first-class operating
// mode. The hello below rides the CM private data of every channel (and
// shared-QP) establishment when the local build offers more than the
// baseline version; both sides settle on the highest common version and
// the intersection of their capability bitmaps, and every optional wire
// extension is gated per-channel on the settled caps — a v2 node emits v1
// frames to v1 peers, and a disjoint version range is a counted,
// flight-logged negotiation failure instead of a corruption-shaped error.

// Capability bits advertised in the hello. A bit names an optional wire
// extension (or verb family) the sender is willing to receive; a channel
// only emits an extension when the peer advertised the matching bit.
const (
	capBlame    uint32 = 1 << iota // blame stage-mirror extension on responses
	capTenant                      // tenant label extension on data frames
	capOneSided                    // one-sided verbs (WIN_GRANT / READ / WRITE+imm)
	capDrainHint                   // v2-only: drain state piggybacked in hellos
)

// baselineCaps is what a peer that sent no hello (a pre-negotiation build,
// or one configured to the legacy v1 plane) is assumed to accept: every
// extension that existed before negotiation did. capDrainHint is excluded
// — it is the v2 carrot, only ever granted by an explicit hello.
const baselineCaps uint32 = capBlame | capTenant | capOneSided

const (
	chanHelloMagic = 0x5856 // "XV" — distinct from mux (0x5158) and recovery (0x5243) hellos
	chanHelloSize  = 8
)

// chanHello is the negotiation offer: the version range this build speaks
// and the extensions it accepts. The reply reuses the same shape with
// minVer == maxVer == the settled version and caps == the intersection.
type chanHello struct {
	minVer, maxVer uint8
	caps           uint32
}

func encodeChanHello(h chanHello) []byte {
	b := make([]byte, chanHelloSize)
	binary.LittleEndian.PutUint16(b[0:], chanHelloMagic)
	b[2] = h.minVer
	b[3] = h.maxVer
	binary.LittleEndian.PutUint32(b[4:], h.caps)
	return b
}

// parseChanHello recognizes a negotiation hello in CM private data. A nil
// or foreign blob is not an error — it marks a legacy peer and the caller
// falls back to v1 + baselineCaps.
func parseChanHello(b []byte) (chanHello, bool) {
	if len(b) < chanHelloSize || binary.LittleEndian.Uint16(b[0:]) != chanHelloMagic {
		return chanHello{}, false
	}
	return chanHello{
		minVer: b[2],
		maxVer: b[3],
		caps:   binary.LittleEndian.Uint32(b[4:]),
	}, true
}

// negotiate settles two offers: the highest version inside both ranges and
// the AND of the capability sets. ok is false when the ranges are disjoint
// — the caller must refuse the connection loudly (never silently downgrade
// below a peer's stated minimum).
func negotiate(a, b chanHello) (ver uint8, caps uint32, ok bool) {
	hi := a.maxVer
	if b.maxVer < hi {
		hi = b.maxVer
	}
	lo := a.minVer
	if b.minVer > lo {
		lo = b.minVer
	}
	if hi < lo {
		return 0, 0, false
	}
	return hi, a.caps & b.caps, true
}

// protoRange is this context's offered [minVer, maxVer], clamped to what
// the build actually decodes. Zero config fields mean the legacy v1 plane.
func (c *Context) protoRange() (lo, hi uint8) {
	lo, hi = hdrVersion, hdrVersion
	if c.cfg.ProtoVerMax > 0 {
		hi = uint8(c.cfg.ProtoVerMax)
		if hi > hdrVersionMax {
			hi = hdrVersionMax
		}
	}
	if c.cfg.ProtoVerMin > 0 {
		lo = uint8(c.cfg.ProtoVerMin)
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// protoCaps is the capability set this context advertises.
func (c *Context) protoCaps() uint32 {
	if c.cfg.ProtoCaps != 0 {
		return c.cfg.ProtoCaps
	}
	if lo, hi := c.protoRange(); hi > hdrVersion && lo <= hdrVersion+1 {
		// A v2-capable node offers the drain hint on top of the baseline.
		return baselineCaps | capDrainHint
	}
	return baselineCaps
}

// helloEnabled reports whether establishment should carry a negotiation
// hello at all. The legacy default (ProtoVerMax unset) emits none, keeping
// every CM exchange byte-identical to the pre-negotiation build — private
// data length feeds packet sizes and therefore the golden digests.
func (c *Context) helloEnabled() bool {
	_, hi := c.protoRange()
	return hi > hdrVersion
}

// localHello is the offer this context dials and listens with.
func (c *Context) localHello() chanHello {
	lo, hi := c.protoRange()
	return chanHello{minVer: lo, maxVer: hi, caps: c.protoCaps()}
}

// chanHelloData is the dial-time private data: nil on the legacy plane.
func (c *Context) chanHelloData() []byte {
	if !c.helloEnabled() {
		return nil
	}
	return encodeChanHello(c.localHello())
}

// settle negotiates against an inbound offer (or its absence). present ==
// false marks a legacy peer: v1 + baselineCaps, always ok.
func (c *Context) settle(peer chanHello, present bool) (ver uint8, caps uint32, ok bool) {
	if !present {
		peer = chanHello{minVer: hdrVersion, maxVer: hdrVersion, caps: baselineCaps}
	}
	return negotiate(c.localHello(), peer)
}

// noteVerMismatch counts a negotiation failure (or an inbound frame with a
// version outside our range) and records it in the flight recorder — the
// operator-visible difference between "peer runs a foreign release" and
// corruption.
func (c *Context) noteVerMismatch(peer fabric.NodeID, qpn uint32, peerLo, peerHi uint8) {
	c.Stats.VerMismatches++
	lo, hi := c.protoRange()
	now := c.eng.Now()
	c.tel.Flight.Record(now, telemetry.CatVerMismatch, int32(c.Node()), qpn,
		int64(peer), int64(peerLo)|int64(peerHi)<<8|int64(lo)<<16|int64(hi)<<24)
	c.tel.Trace.Instant("ver.mismatch", c.track, now, int64(peerHi))
	c.logf("version negotiation failed: peer=%d offers [%d,%d], local [%d,%d]",
		peer, peerLo, peerHi, lo, hi)
}

// NegotiatedVersion reports the header version this channel settled on
// (hdrVersion when the peer is a legacy build or negotiation never ran).
func (ch *Channel) NegotiatedVersion() uint8 {
	if ch.negVer == 0 {
		return hdrVersion
	}
	return ch.negVer
}

// PeerCaps reports the effective capability set for this channel.
func (ch *Channel) PeerCaps() uint32 {
	if ch.negVer == 0 && ch.peerCaps == 0 {
		return baselineCaps
	}
	return ch.peerCaps
}

// peerCap gates an optional wire extension on the settled capability set.
func (ch *Channel) peerCap(bit uint32) bool {
	return ch.PeerCaps()&bit != 0
}

// setNegotiated installs a settled verdict on the channel.
func (ch *Channel) setNegotiated(ver uint8, caps uint32) {
	ch.negVer = ver
	ch.peerCaps = caps
}

// adoptPeerData consumes the responder's REP private data on the dialing
// side: a hello-shaped reply carries the settled verdict, anything else
// marks a legacy responder.
func (ch *Channel) adoptPeerData(pdata []byte) {
	if verdict, ok := parseChanHello(pdata); ok {
		ch.setNegotiated(verdict.maxVer, verdict.caps)
	}
}

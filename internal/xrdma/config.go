package xrdma

import (
	"fmt"
	"sort"

	"xrdma/internal/rnic"
	"xrdma/internal/sim"
)

// Config mirrors Table III: "online" parameters may be changed on a
// running context through SetFlag (the XR-Adm path); "offline" parameters
// are fixed at context creation.
type Config struct {
	// --- online ---------------------------------------------------------

	// KeepaliveInterval is the idle time after which a zero-byte write
	// probe is sent (keepalive_intv_ms).
	KeepaliveInterval sim.Duration
	// KeepaliveTimeout declares the peer dead when a probe gets no
	// hardware ack for this long.
	KeepaliveTimeout sim.Duration
	// SlowThreshold: operations slower than this are recorded in the
	// slow-op log (slow_threshold).
	SlowThreshold sim.Duration
	// PollingWarnCycle: a gap between two polls longer than this is a
	// slow-poll incident (polling_warn_cycle).
	PollingWarnCycle sim.Duration
	// TraceSampleMask: a message is traced when (msgID & mask) == 0 and
	// the context is in req-rsp mode. 0 traces everything.
	TraceSampleMask uint64
	// TraceSampleN enables the causal blame plane (req-rsp mode only):
	// every Nth request carries the blame bit end-to-end and every stage
	// stamps residency into its hop log; additionally, a slow-op incident
	// force-samples the next few messages on that channel. 0 disables the
	// plane entirely (the default — the untraced path stays bare).
	TraceSampleN uint64
	// ReqRspMode turns on the tracing header (default off = bare-data,
	// "to push for extreme performance", §VI-A).
	ReqRspMode bool
	// PathDoctor enables the per-channel gray-failure scorer: counter
	// deltas (retransmits, RNR NAKs, corrupt drops, RTT inflation) feed
	// an EWMA score whose verdict (clean/suspect/sick) drives ECMP
	// re-pathing through flow-label rotation.
	PathDoctor bool
	// FilterDropRate / FilterDelay drive the fault-injection Filter.
	FilterDropRate float64
	FilterDelay    sim.Duration

	// --- offline --------------------------------------------------------

	// SmallMsgSize is the inline/rendezvous threshold (small_msg_size),
	// 4 KB by default.
	SmallMsgSize int
	// WindowDepth is the seq-ack in-flight message window per channel.
	WindowDepth int
	// CtrlReserve is the number of extra receive buffers kept for
	// window-exempt control messages (acks, NOPs).
	CtrlReserve int
	// AckEvery: a standalone ack is emitted after this many received
	// messages without reverse traffic.
	AckEvery int
	// AckDelay flushes pending acks after this time even below AckEvery.
	AckDelay sim.Duration
	// DeadlockScan is the per-context timer period for the NOP deadlock
	// breaker.
	DeadlockScan sim.Duration
	// FragmentSize splits large RDMA READ/WRITE work requests (§V-C);
	// 64 KB in production.
	FragmentSize int
	// MaxOutstandingWRs is the flow-control queueing limit N (§V-C).
	MaxOutstandingWRs int
	// MRSize is the memory-cache region granularity (4 MB; §IV-E).
	MRSize int
	// MemMode selects the registration mode (§VII-F: non-continuous in
	// production).
	MemMode rnic.RegMode
	// MemIsolation turns on canary-guarded allocations (§VI-C).
	MemIsolation bool
	// MemShrinkIdle reclaims a fully-free MR after this idle time.
	MemShrinkIdle sim.Duration
	// UseSRQ shares one receive queue across the context's channels
	// (§VII-F: supported, disabled by default — it can reintroduce RNR).
	UseSRQ bool
	// SRQSize is the shared receive queue depth when UseSRQ is set.
	SRQSize int
	// QPsPerPeer enables QP multiplexing: channels to the same peer node
	// share a pool of at most this many QPs, demultiplexed by the wire
	// header's channel id, with receives posted to the SRQ (UseSRQ is
	// forced on). 0 keeps the legacy one-QP-per-channel layout. This is
	// the RDMAvisor-style fix for §III Issue 1: per-connection state stops
	// scaling with connection count.
	QPsPerPeer int
	// MuxQPDepth is the send-queue capacity of a shared (muxed) QP. It
	// must cover the sum of the attached channels' windows; the queue is
	// lazily grown storage, so a generous cap costs nothing up front.
	MuxQPDepth int
	// AttachAdmission caps concurrent lazy-channel attach handshakes per
	// context (0 = unlimited): a connection storm at process start is
	// serialized into a deterministic FIFO instead of thundering onto the
	// CM.
	AttachAdmission int
	// ChannelGaugeLimit bounds per-channel telemetry rows: beyond this
	// many gauged channels the context switches to per-peer aggregate
	// gauges so the registry doesn't balloon at 100k channels (0 = every
	// channel gets its own row, the legacy behavior).
	ChannelGaugeLimit int
	// PollInterval is the busy-polling period of the hybrid poller.
	PollInterval sim.Duration
	// PollCost is the CPU cost charged per poll iteration.
	PollCost sim.Duration
	// PerMsgCost is the middleware software overhead per dispatched
	// message (X-RDMA's thin data path).
	PerMsgCost sim.Duration
	// TraceCost is the extra per-message cost in req-rsp mode (§VII-A
	// measures ≈200 ns, a 2–4% ping-pong latency increase).
	TraceCost sim.Duration
	// TraceRingCap overrides the tracer record ring capacity (0 = 4096).
	TraceRingCap int
	// RequestTimeout fails pending requests that got no response (0 =
	// never). Checked by a coarse per-context timer.
	RequestTimeout sim.Duration
	// RequestRetries re-issues a timed-out request (same MsgID, fresh
	// wire sequence) up to this many times before surfacing ErrTimeout,
	// under the channel's retry budget. 0 disables retries entirely.
	// Both ends must run with retries enabled: the receiver's idempotent
	// dedup cache is gated on the same knob.
	RequestRetries int
	// RetryBackoff delays each re-issue, doubling per attempt (0 =
	// immediate re-issue on the timeout scan that caught it).
	RetryBackoff sim.Duration
	// PathRehashLimit bounds flow-label rotations per sick episode; once
	// exhausted the doctor escalates to the channel health machine.
	PathRehashLimit int
	// PathRehashCooldown is the minimum settle time between rotations —
	// a fresh path needs a few scans of symptoms before it is judged.
	PathRehashCooldown sim.Duration
	// MockEnabled lets a channel fall back to TCP when RDMA breaks.
	MockEnabled bool
	// MockDialRetries bounds how often a fallback TCP dial is retried
	// before the channel is declared dead (the first failure used to be
	// terminal, which turned transient dial races into hard teardowns).
	MockDialRetries int
	// MockDialBackoff is the delay before the first mock redial; it
	// doubles per attempt.
	MockDialBackoff sim.Duration
	// RecoverRetries bounds RDMA re-establishment attempts for a degraded
	// channel before it gives up and falls back to Mock (or tears down).
	// Recovery as a whole is enabled per context via Options.RecoverPort.
	RecoverRetries int
	// RecoverBackoff is the initial delay between recovery dials; it
	// doubles per attempt up to RecoverBackoffMax, with ±25% jitter.
	RecoverBackoff sim.Duration
	// RecoverBackoffMax caps the exponential recovery backoff.
	RecoverBackoffMax sim.Duration
	// RecoverDialTimeout abandons a single recovery dial that got no
	// REP/REJ (the peer's control plane may be dead with its NIC).
	RecoverDialTimeout sim.Duration
	// FailbackInterval is how often a channel running on the Mock
	// fallback probes RDMA to fail back (0 = stay on Mock forever).
	FailbackInterval sim.Duration
	// StatsInterval drives periodic statistics sampling.
	StatsInterval sim.Duration

	// --- tenancy plane (offline) -----------------------------------------

	// Tenants declares the context's tenant table. Tenant ids are assigned
	// by position (index+1; id 0 is "untenanted"), so both ends of a wire
	// must declare the same table for labels to resolve. Empty = the legacy
	// single-implicit-tenant plane, byte-identical on the wire.
	Tenants []TenantConfig
	// MemPoolBytes caps the MemCache's total registered memory across all
	// regions (0 = unbounded, the legacy behavior). When a grow would
	// exceed the cap, fully-free regions are evicted first; if none exist
	// the allocation fails with ErrOutOfMemory instead of stalling.
	MemPoolBytes int64
	// MemHighWater / MemLowWater are fractions of MemPoolBytes: crossing
	// high water puts the context under memory pressure (new attaches are
	// queued, idle regions evicted); dropping below low water clears it.
	MemHighWater float64
	MemLowWater  float64
	// TenantSQBurst bounds the DRR scheduler's outstanding data WRs per
	// shared QP: below the burst the SQ posts directly, above it frames
	// queue per-tenant and drain in weighted deficit-round-robin order.
	TenantSQBurst int
	// TenantQuantum is the DRR quantum in bytes per unit of tenant weight.
	TenantQuantum int
	// TenantShedCooldown is how long a tenant sheds new attaches after a
	// budget breach; each further breach extends the episode.
	TenantShedCooldown sim.Duration

	// --- hot-upgrade plane (offline) --------------------------------------

	// ProtoVerMin / ProtoVerMax bound the header versions this context
	// offers in the hello handshake (0 = hdrVersion, i.e. the legacy v1
	// plane: no hello is emitted and the wire stays byte-identical to
	// pre-negotiation builds). A dialer with ProtoVerMax > hdrVersion is
	// invalid and clamped to hdrVersionMax. Both sides settle on the
	// highest common version; no overlap is a counted, flight-logged
	// negotiation failure (never a corruption-shaped error).
	ProtoVerMin int
	ProtoVerMax int
	// ProtoCaps is the capability bitmap offered in the hello (0 =
	// baselineCaps: blame ext + tenant ext + one-sided verbs). A channel
	// only exercises a capability both sides advertise.
	ProtoCaps uint32
	// DrainDeadline bounds Context.Drain's quiesce phase: in-flight
	// requests get this long to complete before the remaining tail is
	// frozen into the handoff blob for post-restart replay (0 = 50ms).
	DrainDeadline sim.Duration
}

// TenantConfig declares one tenant of the isolation plane. Zero values
// mean "unlimited" for every limit, so a bare {Name: "x"} tenant is
// labelled and observable but unconstrained.
type TenantConfig struct {
	// Name identifies the tenant; at most 8 bytes travel on the wire as
	// the label extension.
	Name string
	// Weight is the DRR scheduling weight at shared SQs (default 1).
	Weight int
	// RateBps is the token-bucket send rate in wire bytes/second (0 =
	// unlimited).
	RateBps int64
	// BurstBytes is the token-bucket depth (default: RateBps/100 min 64KiB).
	BurstBytes int64
	// SendWindow caps the tenant's in-flight windowed frames across all of
	// its channels — the send-window partition (0 = unlimited).
	SendWindow int
	// MemBudget caps the tenant's registered-memory footprint in the buddy
	// pool, counted in block-rounded bytes (0 = unlimited). Exceeding it
	// rejects the allocation with ErrTenantBudget and starts a shed episode.
	MemBudget int64
}

// DefaultConfig returns the production defaults described in the paper.
func DefaultConfig() Config {
	return Config{
		KeepaliveInterval: 10 * sim.Millisecond,
		KeepaliveTimeout:  50 * sim.Millisecond,
		SlowThreshold:     100 * sim.Microsecond,
		PollingWarnCycle:  50 * sim.Microsecond,
		TraceSampleMask:   0,
		TraceSampleN:      0,
		ReqRspMode:        false,
		PathDoctor:        true,

		SmallMsgSize:       4096,
		WindowDepth:        32,
		CtrlReserve:        16,
		AckEvery:           8,
		AckDelay:           50 * sim.Microsecond,
		DeadlockScan:       500 * sim.Microsecond,
		FragmentSize:       64 << 10,
		MaxOutstandingWRs:  64,
		MRSize:             4 << 20,
		MemMode:            rnic.RegNonContinuous,
		MemIsolation:       false,
		MemShrinkIdle:      100 * sim.Millisecond,
		UseSRQ:             false,
		SRQSize:            4096,
		QPsPerPeer:         0,
		MuxQPDepth:         4096,
		AttachAdmission:    0,
		ChannelGaugeLimit:  0,
		PollInterval:       1 * sim.Microsecond,
		PollCost:           60 * sim.Nanosecond,
		PerMsgCost:         100 * sim.Nanosecond,
		TraceCost:          50 * sim.Nanosecond,
		RequestTimeout:     0,
		RequestRetries:     0,
		RetryBackoff:       0,
		PathRehashLimit:    3,
		PathRehashCooldown: 20 * sim.Millisecond,
		MockEnabled:        false,
		MockDialRetries:    3,
		MockDialBackoff:    2 * sim.Millisecond,

		RecoverRetries:     4,
		RecoverBackoff:     1 * sim.Millisecond,
		RecoverBackoffMax:  50 * sim.Millisecond,
		RecoverDialTimeout: 25 * sim.Millisecond,
		FailbackInterval:   100 * sim.Millisecond,

		StatsInterval: 10 * sim.Millisecond,

		MemHighWater:       0.85,
		MemLowWater:        0.70,
		TenantSQBurst:      4,
		TenantQuantum:      4096,
		TenantShedCooldown: 5 * sim.Millisecond,
	}
}

// SetFlag changes an online parameter by name on a running context —
// Table I's xrdma_set_flag, driven in production by XR-Adm. Offline
// parameters are rejected.
func (c *Context) SetFlag(name, value string) error {
	set, ok := onlineFlags[name]
	if !ok {
		if _, offline := offlineFlagNames[name]; offline {
			return fmt.Errorf("xrdma: %q is an offline parameter (fixed at context creation)", name)
		}
		return fmt.Errorf("xrdma: unknown flag %q", name)
	}
	if err := set(c, value); err != nil {
		return fmt.Errorf("xrdma: set %s=%q: %w", name, value, err)
	}
	c.flagLog = append(c.flagLog, flagChange{At: c.eng.Now(), Name: name, Value: value})
	return nil
}

// OnlineFlagNames lists the dynamically settable parameters (sorted).
func OnlineFlagNames() []string {
	names := make([]string, 0, len(onlineFlags))
	for n := range onlineFlags {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

type flagChange struct {
	At    sim.Time
	Name  string
	Value string
}

func parseDurMS(v string) (sim.Duration, error) {
	var ms float64
	if _, err := fmt.Sscanf(v, "%g", &ms); err != nil {
		return 0, err
	}
	return sim.Duration(ms * float64(sim.Millisecond)), nil
}

func parseDurUS(v string) (sim.Duration, error) {
	var us float64
	if _, err := fmt.Sscanf(v, "%g", &us); err != nil {
		return 0, err
	}
	return sim.Duration(us * float64(sim.Microsecond)), nil
}

var onlineFlags = map[string]func(*Context, string) error{
	"keepalive_intv_ms": func(c *Context, v string) error {
		d, err := parseDurMS(v)
		if err != nil {
			return err
		}
		c.cfg.KeepaliveInterval = d
		return nil
	},
	"keepalive_timeout_ms": func(c *Context, v string) error {
		d, err := parseDurMS(v)
		if err != nil {
			return err
		}
		c.cfg.KeepaliveTimeout = d
		return nil
	},
	"slow_threshold_us": func(c *Context, v string) error {
		d, err := parseDurUS(v)
		if err != nil {
			return err
		}
		c.cfg.SlowThreshold = d
		return nil
	},
	"polling_warn_cycle_us": func(c *Context, v string) error {
		d, err := parseDurUS(v)
		if err != nil {
			return err
		}
		c.cfg.PollingWarnCycle = d
		return nil
	},
	"trace_sample_mask": func(c *Context, v string) error {
		var m uint64
		if _, err := fmt.Sscanf(v, "%d", &m); err != nil {
			return err
		}
		c.cfg.TraceSampleMask = m
		return nil
	},
	"trace_sample_n": func(c *Context, v string) error {
		var n uint64
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
			return err
		}
		c.cfg.TraceSampleN = n
		return nil
	},
	"reqrsp_mode": func(c *Context, v string) error {
		switch v {
		case "on", "true", "1":
			c.cfg.ReqRspMode = true
		case "off", "false", "0":
			c.cfg.ReqRspMode = false
		default:
			return fmt.Errorf("want on/off")
		}
		return nil
	},
	"path_doctor": func(c *Context, v string) error {
		switch v {
		case "on", "true", "1":
			c.cfg.PathDoctor = true
		case "off", "false", "0":
			c.cfg.PathDoctor = false
		default:
			return fmt.Errorf("want on/off")
		}
		return nil
	},
	"filter_drop_rate": func(c *Context, v string) error {
		var r float64
		if _, err := fmt.Sscanf(v, "%g", &r); err != nil {
			return err
		}
		if r < 0 || r > 1 {
			return fmt.Errorf("rate out of [0,1]")
		}
		c.cfg.FilterDropRate = r
		c.syncFilter()
		return nil
	},
	"filter_delay_us": func(c *Context, v string) error {
		d, err := parseDurUS(v)
		if err != nil {
			return err
		}
		c.cfg.FilterDelay = d
		c.syncFilter()
		return nil
	},
}

var offlineFlagNames = map[string]struct{}{
	"use_srq":                 {},
	"srq_size":                {},
	"qps_per_peer":            {},
	"mux_qp_depth":            {},
	"attach_admission":        {},
	"channel_gauge_limit":     {},
	"small_msg_size":          {},
	"window_depth":            {},
	"fragment_size":           {},
	"max_outstanding":         {},
	"mr_size":                 {},
	"mem_mode":                {},
	"poll_interval":           {},
	"mock_dial_retries":       {},
	"request_retries":         {},
	"retry_backoff_ms":        {},
	"path_rehash_limit":       {},
	"path_rehash_cooldown_ms": {},
	"recover_retries":         {},
	"recover_backoff_ms":      {},
	"recover_dial_timeout_ms": {},
	"failback_interval_ms":    {},
	"trace_ring_cap":          {},
	"tenants":                 {},
	"mem_pool_bytes":          {},
	"mem_highwater":           {},
	"mem_lowwater":            {},
	"tenant_sq_burst":         {},
	"tenant_quantum":          {},
	"tenant_shed_cooldown_ms": {},
	"proto_ver_min":           {},
	"proto_ver_max":           {},
	"proto_caps":              {},
	"drain_deadline_ms":       {},
}
